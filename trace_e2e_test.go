package tierdb

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"tierdb/internal/server"
	"tierdb/internal/server/client"
	"tierdb/internal/trace"
)

// spansByName indexes one trace's spans by name.
func spansByName(spans []*trace.Span) map[string][]*trace.Span {
	out := make(map[string][]*trace.Span)
	for _, s := range spans {
		out[s.Name] = append(out[s.Name], s)
	}
	return out
}

// requireLineage walks child's parent links upward and asserts it
// reaches a span named anc.
func requireLineage(t *testing.T, spans []*trace.Span, child *trace.Span, anc string) {
	t.Helper()
	byID := make(map[trace.SpanID]*trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for cur := child; cur != nil; cur = byID[cur.Parent] {
		if cur.Name == anc {
			return
		}
		if cur.Parent == 0 {
			break
		}
	}
	t.Errorf("span %q is not a descendant of %q", child.Name, anc)
}

// TestTraceEndToEnd is the acceptance test for distributed tracing: a
// query sent through the client over loopback TCP yields one TraceID
// whose span tree contains the client send, server admission, engine
// execution (with per-operator children) and WAL commit spans, all with
// consistent parent links and ordered clocks — and the same tree is
// servable as JSON from /trace/{id}.
func TestTraceEndToEnd(t *testing.T) {
	db, err := Open(Config{
		ListenAddr:      "127.0.0.1:0",
		ObsAddr:         "127.0.0.1:0",
		WALDir:          t.TempDir(),
		TraceSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Client and server share the process, so handing the client the
	// database's tracer lands both halves of every trace in one ring —
	// exactly what a /trace/{id} lookup then reassembles.
	c, err := client.Dial(client.Config{Addr: db.ServerAddr(), PoolSize: 1, Tracer: db.Tracer()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fields := []Field{
		{Name: "id", Type: Int64Type},
		{Name: "tag", Type: StringType, Width: 8},
	}
	if err := c.CreateTable("orders", fields); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := c.Insert("orders", []Value{Int(i), String("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Select("orders", []server.Predicate{client.Between("id", Int(10), Int(19))}, "id"); err != nil {
		t.Fatal(err)
	}

	ring := db.Tracer().Ring()
	var insertTrace, selectTrace trace.TraceID
	for _, s := range ring.Snapshot() {
		if s.Name != "client.send" {
			continue
		}
		for _, a := range s.Attrs {
			if a.Key != "op" {
				continue
			}
			switch a.Value() {
			case "insert":
				insertTrace = s.Trace
			case "select":
				selectTrace = s.Trace
			}
		}
	}
	if insertTrace == 0 || selectTrace == 0 {
		t.Fatal("client.send spans for insert and select not found in the ring")
	}

	// --- the select trace: client → server → exec with operator children.
	sel := ring.ByTrace(selectTrace)
	byName := spansByName(sel)
	for _, name := range []string{"client.send", "server.request", "server.admission", "server.engine", "exec.query"} {
		if len(byName[name]) != 1 {
			t.Fatalf("select trace: want exactly 1 %q span, got %d", name, len(byName[name]))
		}
	}
	execOps := 0
	for name, spans := range byName {
		if name == "exec.query" || !strings.HasPrefix(name, "exec.") {
			continue
		}
		execOps += len(spans)
		for _, s := range spans {
			if s.Parent != byName["exec.query"][0].ID {
				t.Errorf("operator span %q not parented under exec.query", name)
			}
		}
	}
	if execOps == 0 {
		t.Error("select trace has no per-operator exec.* children")
	}
	requireLineage(t, sel, byName["exec.query"][0], "server.engine")
	requireLineage(t, sel, byName["server.engine"][0], "client.send")
	assertClockSanity(t, sel)

	// --- the insert trace: the WAL commit is a traced child.
	ins := ring.ByTrace(insertTrace)
	insNames := spansByName(ins)
	if len(insNames["wal.commit"]) != 1 {
		t.Fatalf("insert trace: want 1 wal.commit span, got %d", len(insNames["wal.commit"]))
	}
	if len(insNames["wal.append"]) != 1 {
		t.Fatalf("insert trace: want 1 wal.append span, got %d", len(insNames["wal.append"]))
	}
	requireLineage(t, ins, insNames["wal.append"][0], "wal.commit")
	requireLineage(t, ins, insNames["wal.commit"][0], "server.engine")
	assertClockSanity(t, ins)

	// --- the same tree is servable over HTTP as JSON.
	resp, err := http.Get(db.ObsURL() + "/trace/" + selectTrace.String())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: %d: %s", selectTrace, resp.StatusCode, body)
	}
	var reply struct {
		TraceID string        `json:"trace_id"`
		Spans   []*trace.Node `json:"spans"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("trace reply is not JSON: %v\n%s", err, body)
	}
	if reply.TraceID != selectTrace.String() {
		t.Errorf("trace reply id %q != %q", reply.TraceID, selectTrace)
	}
	if len(reply.Spans) != 1 || reply.Spans[0].Span.Name != "client.send" {
		t.Fatalf("trace reply should have the single client.send root, got %d roots", len(reply.Spans))
	}
	// And the text rendering names the whole path.
	resp, err = http.Get(db.ObsURL() + "/trace/" + selectTrace.String() + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"client.send", "server.request", "exec.query"} {
		if !strings.Contains(string(text), name) {
			t.Errorf("text rendering missing %q:\n%s", name, text)
		}
	}
}

// assertClockSanity checks every span's interval is ordered and nested
// inside its parent's (same-process wall clocks are comparable).
func assertClockSanity(t *testing.T, spans []*trace.Span) {
	t.Helper()
	byID := make(map[trace.SpanID]*trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.EndNs < s.StartNs {
			t.Errorf("span %q ends before it starts", s.Name)
		}
		if p := byID[s.Parent]; p != nil {
			if s.StartNs < p.StartNs || s.EndNs > p.EndNs {
				t.Errorf("span %q [%d,%d] escapes parent %q [%d,%d]",
					s.Name, s.StartNs, s.EndNs, p.Name, p.StartNs, p.EndNs)
			}
		}
	}
}
