package tierdb

import (
	"context"
	"encoding/json"
	"fmt"
	"net"

	"tierdb/internal/obsrv"
	"tierdb/internal/server"
	"tierdb/internal/value"
)

// Network service errors, re-exported for callers of the client
// package that only import tierdb.
var (
	// ErrOverloaded is how the service layer sheds load when admission
	// control (Config.MaxSessions / Config.MaxInflight) is saturated.
	ErrOverloaded = server.ErrOverloaded
	// ErrDraining answers requests that arrive during graceful
	// shutdown.
	ErrDraining = server.ErrDraining
)

// Serve serves the tierdb wire protocol on the given listener until the
// database is closed. It blocks; run it in a goroutine when the caller
// owns the listener (Config.ListenAddr does this automatically).
func (db *DB) Serve(l net.Listener) error {
	db.obsMu.Lock()
	if db.srvAddr == "" {
		db.srvAddr = l.Addr().String()
	}
	db.obsMu.Unlock()
	return db.srv.Serve(l)
}

// ServerAddr returns the address the service layer is listening on
// ("host:port"), or "" when no listener is serving. With ListenAddr
// ":0" this reports the actual port.
func (db *DB) ServerAddr() string {
	db.obsMu.Lock()
	defer db.obsMu.Unlock()
	return db.srvAddr
}

// dbEngine adapts *DB to the service layer's engine interface. It lives
// in the root package so internal/server stays root-decoupled (and
// testable against fakes).
type dbEngine struct {
	db *DB
}

func (e dbEngine) CreateTable(ctx context.Context, name string, fields []Field) error {
	_, err := e.db.CreateTable(name, fields)
	return err
}

func (e dbEngine) Insert(ctx context.Context, table string, row []value.Value) error {
	t, err := e.db.Table(table)
	if err != nil {
		return err
	}
	return t.InsertCtx(ctx, row)
}

func (e dbEngine) Delete(ctx context.Context, table string, id uint64) error {
	t, err := e.db.Table(table)
	if err != nil {
		return err
	}
	tx := e.db.Begin()
	if err := t.Delete(tx, id); err != nil {
		if aerr := e.db.Abort(tx); aerr != nil {
			return fmt.Errorf("%w (abort failed: %v)", err, aerr)
		}
		return err
	}
	return e.db.CommitCtx(ctx, tx)
}

func (e dbEngine) Update(ctx context.Context, table string, id uint64, row []value.Value) error {
	t, err := e.db.Table(table)
	if err != nil {
		return err
	}
	tx := e.db.Begin()
	if err := t.Update(tx, id, row); err != nil {
		if aerr := e.db.Abort(tx); aerr != nil {
			return fmt.Errorf("%w (abort failed: %v)", err, aerr)
		}
		return err
	}
	return e.db.CommitCtx(ctx, tx)
}

func (e dbEngine) BulkLoad(ctx context.Context, table string, rows [][]value.Value) error {
	t, err := e.db.Table(table)
	if err != nil {
		return err
	}
	return t.BulkLoadCtx(ctx, rows)
}

func (e dbEngine) Select(ctx context.Context, table string, preds []server.Predicate, project []string, traced bool) (*server.Result, string, error) {
	t, err := e.db.Table(table)
	if err != nil {
		return nil, "", err
	}
	ps := make([]Predicate, 0, len(preds))
	for _, p := range preds {
		var pred Predicate
		var err error
		if p.Op == server.PredBetween {
			pred, err = t.Between(p.Column, p.Value, p.Hi)
		} else {
			pred, err = t.Eq(p.Column, p.Value)
		}
		if err != nil {
			return nil, "", err
		}
		ps = append(ps, pred)
	}
	var res *SelectResult
	rendered := ""
	if traced {
		var tr *QueryTrace
		res, tr, err = t.SelectTracedCtx(ctx, nil, ps, project...)
		if err == nil {
			rendered = tr.String()
		}
	} else {
		res, err = t.SelectCtx(ctx, nil, ps, project...)
	}
	if err != nil {
		return nil, "", err
	}
	return &server.Result{IDs: res.IDs, Rows: res.Rows}, rendered, nil
}

func (e dbEngine) Explain(ctx context.Context, table string, specs []ExplainSpec, project []string, analyze bool) ([]byte, error) {
	plan, err := e.db.Explain(ctx, table, specs, project, analyze)
	if err != nil {
		return nil, err
	}
	return json.Marshal(plan)
}

func (e dbEngine) Checkpoint(ctx context.Context) error { return e.db.Checkpoint() }

func (e dbEngine) StatsJSON() ([]byte, error) {
	return json.Marshal(e.db.Stats())
}

func (e dbEngine) Rows(table string) (int, error) {
	t, err := e.db.Table(table)
	if err != nil {
		return 0, err
	}
	return t.Rows(), nil
}

func (e dbEngine) Tables() []string { return e.db.Tables() }

func (e dbEngine) Advise(table string, query []byte) ([]byte, error) {
	t, err := e.db.Table(table)
	if err != nil {
		return nil, err
	}
	var q obsrv.AdvisorQuery
	if len(query) > 0 {
		if err := json.Unmarshal(query, &q); err != nil {
			return nil, fmt.Errorf("tierdb: bad advisor query: %w", err)
		}
	}
	rep, err := t.Advise(q)
	if err != nil {
		return nil, err
	}
	return json.Marshal(rep)
}

func (e dbEngine) ApplyLayout(table string, inDRAM []bool) error {
	t, err := e.db.Table(table)
	if err != nil {
		return err
	}
	return t.ApplyLayout(Layout{InDRAM: inDRAM})
}

func (e dbEngine) Adaptive(sub byte) ([]byte, error) {
	switch sub {
	case server.AdaptiveEnable:
		e.db.SetAdaptive(true)
	case server.AdaptiveDisable:
		e.db.SetAdaptive(false)
	case server.AdaptiveStatus:
	default:
		return nil, fmt.Errorf("tierdb: unknown adaptive subcommand %d", sub)
	}
	return json.Marshal(e.db.AdaptiveStatus())
}
