package tierdb

import (
	"strings"
	"testing"
)

// TestDBStats drives a small workload through the public API and checks
// the engine-wide snapshot reflects it across layers: executor,
// transactions, delta, AMM cache and the device model.
func TestDBStats(t *testing.T) {
	db, tbl := openLoaded(t, 2000)

	// Evict two columns so queries touch the device through the cache.
	layout := []bool{true, true, false, false}
	if err := tbl.Inner().ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Int(9001), Int(1), Float(1), String("x")}); err != nil {
		t.Fatal(err)
	}
	region, err := tbl.Eq("region", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	amount, err := tbl.Between("amount", Float(0), Float(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Select(nil, []Predicate{region, amount}, "id"); err != nil {
		t.Fatal(err)
	}

	snap := db.Stats()
	for _, name := range []string{
		"exec.queries", "exec.rows.qualified", "exec.rows.scanned",
		"mvcc.tx.begin", "mvcc.tx.commit", "delta.inserts", "table.merges",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if snap.Counters["amm.hits"]+snap.Counters["amm.misses"] <= 0 {
		t.Error("cache saw no traffic")
	}
	if snap.Counters["device.3d_xpoint.page_reads"] <= 0 {
		t.Error("device model saw no page reads")
	}
	if !strings.Contains(snap.Render(), "exec.queries") {
		t.Error("render misses exec.queries")
	}
}

// TestSelectTraced checks the public traced-query path end to end.
func TestSelectTraced(t *testing.T) {
	db, tbl := openLoaded(t, 2000)
	region, err := tbl.Eq("region", Int(5))
	if err != nil {
		t.Fatal(err)
	}
	res, tr, err := tbl.SelectTraced(nil, []Predicate{region}, "id", "amount")
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.Table != "orders" || tr.Device != "3D XPoint" {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.RowsQualified != len(res.IDs) || len(res.IDs) != 250 {
		t.Errorf("rows = %d (trace %d), want 250", len(res.IDs), tr.RowsQualified)
	}
	if len(tr.Predicates) != 1 || len(tr.Operators) == 0 {
		t.Errorf("trace content: predicates=%d operators=%d", len(tr.Predicates), len(tr.Operators))
	}
	if tr.DRAMNs <= 0 {
		t.Error("trace has no modeled DRAM cost")
	}
	// Traced queries feed the plan cache like Select.
	if db == nil || tbl.PlanCache().Len() == 0 {
		t.Error("traced query not recorded in plan cache")
	}
}

// TestDisableMetrics proves the off switch: no registry, empty
// snapshot, queries still run.
func TestDisableMetrics(t *testing.T) {
	db, err := Open(Config{DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.Registry() != nil {
		t.Error("disabled instance has a registry")
	}
	tbl, err := db.CreateTable("t", testFields())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.BulkLoad([][]Value{{Int(1), Int(2), Float(3), String("a")}}); err != nil {
		t.Fatal(err)
	}
	region, err := tbl.Eq("region", Int(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Select(nil, []Predicate{region})
	if err != nil || len(res.IDs) != 1 {
		t.Fatalf("select on unmetered db: %v, %d rows", err, len(res.IDs))
	}
	snap := db.Stats()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("disabled metrics produced a non-empty snapshot: %+v", snap)
	}
}
