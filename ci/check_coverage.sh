#!/usr/bin/env bash
# Coverage gate: total statement coverage must stay within 1.0 point of
# the checked-in floor (ci/coverage_floor.txt).
#
# The floor is a ratchet, not a target: bump it when a PR lands real
# coverage (and CI will hold the line there), never lower it to make a
# red build green — delete tests consciously or not at all.
set -euo pipefail
cd "$(dirname "$0")/.."

go test -count=1 -coverprofile=coverage.out ./...
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
floor=$(tr -d '[:space:]' < ci/coverage_floor.txt)

echo "total statement coverage: ${total}% (floor ${floor}%, tolerance 1.0)"
if ! awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t >= f - 1.0) }'; then
    echo "FAIL: coverage ${total}% is more than 1.0 point below the floor ${floor}%" >&2
    echo "either restore the lost tests or (for a conscious removal) lower ci/coverage_floor.txt in the same PR" >&2
    exit 1
fi
