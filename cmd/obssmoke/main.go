// Command obssmoke is the CI observability smoke test: it boots an
// engine with the observability server on a random port, drives a
// small skewed workload, then fetches every endpoint like an external
// scraper would and exits non-zero on any non-200 response, an
// exposition that fails the strict Prometheus parser, or an advisor
// answer without a usable recommendation.
//
//	go run ./cmd/obssmoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"tierdb"
	"tierdb/internal/obsrv"
)

func fetch(base, path string) ([]byte, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return body, nil
}

func run() error {
	db, err := tierdb.Open(tierdb.Config{
		Device:             "CSSD",
		CacheFrames:        128,
		ObsAddr:            "127.0.0.1:0",
		SlowQueryThreshold: 100 * time.Microsecond,
		// Fast cycles so the smoke test can watch the adaptive daemon
		// tick; the default guardrails stay on.
		AdaptiveInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	tbl, err := db.CreateTable("orders", []tierdb.Field{
		{Name: "id", Type: tierdb.Int64Type},
		{Name: "region", Type: tierdb.Int64Type},
		{Name: "amount", Type: tierdb.Int64Type},
		{Name: "payload", Type: tierdb.Int64Type},
	})
	if err != nil {
		return err
	}
	rows := make([][]tierdb.Value, 50_000)
	for i := range rows {
		rows[i] = []tierdb.Value{
			tierdb.Int(int64(i)), tierdb.Int(int64(i % 25)),
			tierdb.Int(int64(i % 1000)), tierdb.Int(int64(i % 7)),
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		return err
	}
	// Hot column evicted, cold ones resident: the advisor must object.
	if err := tbl.ApplyLayout(tierdb.Layout{InDRAM: []bool{true, false, true, true}}); err != nil {
		return err
	}
	region, err := tbl.Eq("region", tierdb.Int(7))
	if err != nil {
		return err
	}
	for i := 0; i < 20; i++ {
		if _, err := tbl.Select(nil, []tierdb.Predicate{region}, "amount"); err != nil {
			return err
		}
	}
	base := db.ObsURL()
	fmt.Printf("observability server at %s\n", base)

	exposition, err := fetch(base, "/metrics")
	if err != nil {
		return err
	}
	if err := obsrv.ValidateExposition(exposition); err != nil {
		return fmt.Errorf("/metrics failed the exposition parser: %w", err)
	}
	for _, series := range []string{"tierdb_build_info{", "tierdb_uptime_seconds "} {
		if !bytes.Contains(exposition, []byte(series)) {
			return fmt.Errorf("/metrics missing the %s series", series)
		}
	}
	fmt.Printf("/metrics: %d bytes of valid exposition (build info + uptime present)\n", len(exposition))

	body, err := fetch(base, "/healthz")
	if err != nil {
		return err
	}
	if strings.TrimSpace(string(body)) != "ok" {
		return fmt.Errorf("/healthz answered %q, want ok", body)
	}
	body, err = fetch(base, "/readyz")
	if err != nil {
		return err
	}
	if strings.TrimSpace(string(body)) != "ready" {
		return fmt.Errorf("/readyz answered %q, want ready", body)
	}
	fmt.Println("/healthz, /readyz: ok")

	if _, err := fetch(base, "/debug/pprof/goroutine?debug=1"); err != nil {
		return err
	}
	fmt.Println("/debug/pprof/goroutine: ok")

	body, err = fetch(base, "/workload")
	if err != nil {
		return err
	}
	var wl struct {
		Tables []tierdb.TableWorkloadReport `json:"tables"`
	}
	if err := json.Unmarshal(body, &wl); err != nil {
		return fmt.Errorf("/workload: %w", err)
	}
	if len(wl.Tables) != 1 || len(wl.Tables[0].Plans) == 0 {
		return fmt.Errorf("/workload reported no captured plans: %s", body)
	}
	fmt.Printf("/workload: %d plans over %d columns\n", len(wl.Tables[0].Plans), len(wl.Tables[0].Columns))

	body, err = fetch(base, "/traces")
	if err != nil {
		return err
	}
	var traces struct {
		Added uint64 `json:"added"`
	}
	if err := json.Unmarshal(body, &traces); err != nil {
		return fmt.Errorf("/traces: %w", err)
	}
	if traces.Added == 0 {
		return fmt.Errorf("/traces captured nothing")
	}
	fmt.Printf("/traces: %d captured\n", traces.Added)

	body, err = fetch(base, "/layout/advisor?table=orders")
	if err != nil {
		return err
	}
	var adv struct {
		Reports []*tierdb.AdvisorReport `json:"reports"`
	}
	if err := json.Unmarshal(body, &adv); err != nil {
		return fmt.Errorf("/layout/advisor: %w", err)
	}
	if len(adv.Reports) != 1 {
		return fmt.Errorf("/layout/advisor returned %d reports, want 1", len(adv.Reports))
	}
	rep := adv.Reports[0]
	if !rep.Changed || len(rep.Recommended.InDRAM) != 4 {
		return fmt.Errorf("advisor did not recommend fixing the bad layout: %s", body)
	}
	if err := tbl.ApplyLayout(tierdb.Layout{InDRAM: rep.Recommended.InDRAM}); err != nil {
		return fmt.Errorf("recommendation not applicable: %w", err)
	}
	fmt.Printf("/layout/advisor: recommendation applied (modeled cost %.4g -> %.4g)\n",
		rep.Current.ModeledCost, rep.Recommended.ModeledCost)

	// Reallocation-aware advice: the same question with a nonzero beta
	// charges moves against the incumbent placement. The answer must
	// echo the beta, and whatever it recommends must be applicable.
	body, err = fetch(base, "/layout/advisor?table=orders&beta=1e-10")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, &adv); err != nil {
		return fmt.Errorf("/layout/advisor?beta: %w", err)
	}
	if len(adv.Reports) != 1 || adv.Reports[0].Beta != 1e-10 {
		return fmt.Errorf("/layout/advisor?beta did not echo beta: %s", body)
	}
	if err := tbl.ApplyLayout(tierdb.Layout{InDRAM: adv.Reports[0].Recommended.InDRAM}); err != nil {
		return fmt.Errorf("beta recommendation not applicable: %w", err)
	}
	fmt.Println("/layout/advisor?beta=1e-10: reallocation-aware recommendation applied")

	// EXPLAIN ANALYZE over HTTP: the plan must parse, carry operator
	// nodes with modeled costs and attribute the placement.
	body, err = fetch(base, "/explain?table=orders&q=region=7&project=amount&analyze=1")
	if err != nil {
		return err
	}
	var plan tierdb.ExplainPlan
	if err := json.Unmarshal(body, &plan); err != nil {
		return fmt.Errorf("/explain: %w", err)
	}
	if plan.Table != "orders" || plan.Mode != "analyze" {
		return fmt.Errorf("/explain answered the wrong plan: %s", body)
	}
	if len(plan.Nodes) == 0 || len(plan.Placement.Columns) == 0 {
		return fmt.Errorf("/explain plan has no nodes or placement attribution: %s", body)
	}
	if plan.Placement.CurrentCost <= 0 {
		return fmt.Errorf("/explain modeled no cost: %s", body)
	}
	fmt.Printf("/explain: %d nodes, modeled %.4gs, regret %.4gs\n",
		len(plan.Nodes), plan.Placement.CurrentCost, plan.Placement.Regret)

	// The adaptive daemon ticks every 50ms; scrape its endpoint until at
	// least one cycle has been accounted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body, err = fetch(base, "/layout/adaptive")
		if err != nil {
			return err
		}
		var rep tierdb.AdaptiveReport
		if err := json.Unmarshal(body, &rep); err != nil {
			return fmt.Errorf("/layout/adaptive: %w", err)
		}
		if !rep.Enabled {
			return fmt.Errorf("/layout/adaptive reports the daemon disabled: %s", body)
		}
		if rep.Cycles >= 1 {
			fmt.Printf("/layout/adaptive: %d cycles, %d applies, %d skips\n",
				rep.Cycles, rep.Applies, rep.Skips)
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/layout/adaptive never completed a cycle: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "obssmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("observability smoke: ok")
}
