// Command benchrunner regenerates the paper's evaluation: every table
// and figure, printed as aligned text reports.
//
// Usage:
//
//	benchrunner                 # run everything (Table II without the
//	                            # N=20000/50000 instances)
//	benchrunner -exp fig3       # run one experiment
//	benchrunner -exp table2 -full
//	benchrunner -seed 7         # change the workload seed
//	benchrunner -list           # list experiment ids
//
// The "ci" experiment additionally emits a machine-readable artifact
// for the CI bench-regression gate:
//
//	benchrunner -exp ci -json BENCH_ci.json
//	benchrunner -exp ci -json BENCH_ci.json -baseline bench_baseline.json
//
// With -baseline, gate metrics are compared against the checked-in
// baseline and the run exits non-zero when any cost metric regresses
// (or any rate falls) by more than -tolerance (default 10 %).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"tierdb/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (empty = all)")
		seed     = flag.Int64("seed", 42, "workload generation seed")
		full     = flag.Bool("full", false, "include the largest Table II instances (N=20000, 50000)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut  = flag.String("json", "", "write the ci experiment's BenchStats to this file (JSON)")
		baseline = flag.String("baseline", "", "compare the ci BenchStats against this baseline file; exit 1 on regression")
		tol      = flag.Float64("tolerance", 0.10, "relative regression tolerance for -baseline (0.10 = 10%)")
	)
	flag.Parse()

	var ciStats *experiments.BenchStats
	runners := map[string]func() (*experiments.Report, error){
		"ci": func() (*experiments.Report, error) {
			stats, report, err := experiments.CIBench(*seed)
			if err == nil {
				ciStats = &stats
			}
			return report, err
		},
		"table1": func() (*experiments.Report, error) { return experiments.Table1(*seed) },
		"fig3":   func() (*experiments.Report, error) { return experiments.Fig3(*seed) },
		"fig4":   func() (*experiments.Report, error) { return experiments.Fig4(*seed) },
		"fig5":   func() (*experiments.Report, error) { return experiments.Fig5(*seed) },
		"fig6":   func() (*experiments.Report, error) { return experiments.Fig6(*seed) },
		"table2": func() (*experiments.Report, error) { return experiments.Table2(*full) },
		"table3": func() (*experiments.Report, error) { return experiments.Table3(*seed) },
		"fig7":   func() (*experiments.Report, error) { return experiments.Fig7(*seed) },
		"fig8":   func() (*experiments.Report, error) { return experiments.Fig8(*seed) },
		"fig9a":  func() (*experiments.Report, error) { return experiments.Fig9a(*seed) },
		"fig9b":  func() (*experiments.Report, error) { return experiments.Fig9b(*seed) },
		"table4": func() (*experiments.Report, error) { return experiments.Table4(*seed) },
		"pscan":  func() (*experiments.Report, error) { return experiments.PScan(*seed) },
	}
	order := make([]string, 0, len(runners))
	for id := range runners {
		order = append(order, id)
	}
	sort.Strings(order)

	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}

	ids := order
	if *exp != "" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	failed := false
	for _, id := range ids {
		report, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(report)
	}

	if (*jsonOut != "" || *baseline != "") && ciStats == nil {
		fmt.Fprintln(os.Stderr, "benchrunner: -json/-baseline need the ci experiment (use -exp ci or run all)")
		os.Exit(2)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(ciStats, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: encode %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: read baseline: %v\n", err)
			os.Exit(1)
		}
		var base experiments.BenchStats
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: parse baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		regressions := experiments.CompareBenchStats(*ciStats, base, *tol)
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "benchrunner: REGRESSION: %s\n", r)
			}
			fmt.Fprintf(os.Stderr, "benchrunner: %d gate metric(s) regressed vs %s; see DESIGN.md for the baseline-update procedure\n", len(regressions), *baseline)
			os.Exit(1)
		}
		fmt.Printf("bench gate: all metrics within %.0f%% of %s\n", *tol*100, *baseline)
	}
	if failed {
		os.Exit(1)
	}
}
