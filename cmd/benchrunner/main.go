// Command benchrunner regenerates the paper's evaluation: every table
// and figure, printed as aligned text reports.
//
// Usage:
//
//	benchrunner                 # run everything (Table II without the
//	                            # N=20000/50000 instances)
//	benchrunner -exp fig3       # run one experiment
//	benchrunner -exp table2 -full
//	benchrunner -seed 7         # change the workload seed
//	benchrunner -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tierdb/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id to run (empty = all)")
		seed = flag.Int64("seed", 42, "workload generation seed")
		full = flag.Bool("full", false, "include the largest Table II instances (N=20000, 50000)")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	runners := map[string]func() (*experiments.Report, error){
		"table1": func() (*experiments.Report, error) { return experiments.Table1(*seed) },
		"fig3":   func() (*experiments.Report, error) { return experiments.Fig3(*seed) },
		"fig4":   func() (*experiments.Report, error) { return experiments.Fig4(*seed) },
		"fig5":   func() (*experiments.Report, error) { return experiments.Fig5(*seed) },
		"fig6":   func() (*experiments.Report, error) { return experiments.Fig6(*seed) },
		"table2": func() (*experiments.Report, error) { return experiments.Table2(*full) },
		"table3": func() (*experiments.Report, error) { return experiments.Table3(*seed) },
		"fig7":   func() (*experiments.Report, error) { return experiments.Fig7(*seed) },
		"fig8":   func() (*experiments.Report, error) { return experiments.Fig8(*seed) },
		"fig9a":  func() (*experiments.Report, error) { return experiments.Fig9a(*seed) },
		"fig9b":  func() (*experiments.Report, error) { return experiments.Fig9b(*seed) },
		"table4": func() (*experiments.Report, error) { return experiments.Table4(*seed) },
		"pscan":  func() (*experiments.Report, error) { return experiments.PScan(*seed) },
	}
	order := make([]string, 0, len(runners))
	for id := range runners {
		order = append(order, id)
	}
	sort.Strings(order)

	if *list {
		for _, id := range order {
			fmt.Println(id)
		}
		return
	}

	ids := order
	if *exp != "" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	failed := false
	for _, id := range ids {
		report, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(report)
	}
	if failed {
		os.Exit(1)
	}
}
