// Command tierdbd runs a tierdb instance as a network daemon: the wire
// protocol (inserts, bulk loads, selects, checkpoints, stats, layout
// advice) on -listen and, optionally, the observability HTTP endpoints
// on -obs. SIGINT/SIGTERM trigger a graceful drain: the server stops
// accepting, inflight requests finish and answer, and only then do the
// WAL and merge scheduler wind down — so every acknowledged write is
// on disk when the process exits.
//
//	tierdbd -listen :7070 -obs :7071 -waldir /var/lib/tierdb/wal
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tierdb"
)

func main() {
	var (
		listen       = flag.String("listen", ":7070", "wire-protocol listen address")
		obs          = flag.String("obs", "", "observability HTTP listen address (empty: off)")
		waldir       = flag.String("waldir", "", "write-ahead log directory (empty: volatile)")
		sync         = flag.String("sync", "always", "WAL sync policy: always, group or off")
		device       = flag.String("device", "", `secondary-storage model ("CSSD", "ESSD", "HDD", "3D XPoint")`)
		cacheFrames  = flag.Int("cache-frames", 1024, "AMM page cache size in 4 KB frames")
		parallelism  = flag.Int("parallelism", 0, "scan worker goroutines (<=1: serial)")
		maxSessions  = flag.Int("max-sessions", 0, "cap on concurrent sessions (0: default)")
		maxInflight  = flag.Int("max-inflight", 0, "cap on requests executing at once (0: default)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain bound on shutdown")
		mergeRows    = flag.Int("merge-rows", 0, "delta rows that trigger a background merge (0: off)")
		mergeBytes   = flag.Int64("merge-bytes", 0, "delta bytes that trigger a background merge (0: off)")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		logFormat    = flag.String("log-format", "text", "log encoding: text or json")
		requestLog   = flag.Bool("request-log", false, "emit one structured event per network request")
		sampleRate   = flag.Float64("trace-sample-rate", 0, "fraction of requests traced end to end [0,1]")
		version      = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(versionString(tierdb.Build()))
		return
	}
	var policy tierdb.SyncPolicy
	switch *sync {
	case "always":
		policy = tierdb.SyncAlways
	case "group":
		policy = tierdb.SyncGroup
	case "off":
		policy = tierdb.SyncOff
	default:
		fmt.Fprintf(os.Stderr, "tierdbd: unknown -sync %q (want always, group or off)\n", *sync)
		os.Exit(1)
	}
	cfg := tierdb.Config{
		Device:          *device,
		CacheFrames:     *cacheFrames,
		Parallelism:     *parallelism,
		WALDir:          *waldir,
		SyncPolicy:      policy,
		ListenAddr:      *listen,
		ObsAddr:         *obs,
		MaxSessions:     *maxSessions,
		MaxInflight:     *maxInflight,
		DrainTimeout:    *drainTimeout,
		MergeDeltaRows:  *mergeRows,
		MergeDeltaBytes: *mergeBytes,
		LogLevel:        *logLevel,
		LogFormat:       *logFormat,
		RequestLog:      *requestLog,
		TraceSampleRate: *sampleRate,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tierdbd:", err)
		os.Exit(1)
	}
}

// versionString renders -version output: the same version, revision and
// Go version the tierdb_build_info metric series carries.
func versionString(bi tierdb.BuildInfo) string {
	s := "tierdbd " + bi.Version
	if bi.Revision != "" {
		s += " (" + bi.Revision + ")"
	}
	return s + " " + bi.GoVersion
}

func run(cfg tierdb.Config) error {
	db, err := tierdb.Open(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("tierdbd: serving on %s\n", db.ServerAddr())
	if cfg.ObsAddr != "" {
		fmt.Printf("tierdbd: observability on %s\n", db.ObsURL())
	}
	if cfg.WALDir == "" {
		fmt.Println("tierdbd: WARNING: no -waldir, data is volatile")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("tierdbd: %s, draining\n", s)
	if err := db.Close(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("tierdbd: clean shutdown")
	return nil
}
