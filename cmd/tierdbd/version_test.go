package main

import (
	"strings"
	"testing"

	"tierdb"
)

// TestVersionString pins the -version rendering against the same build
// metadata tierdb_build_info exports.
func TestVersionString(t *testing.T) {
	got := versionString(tierdb.BuildInfo{Version: "v1.2.3", Revision: "abc123", GoVersion: "go1.99"})
	if got != "tierdbd v1.2.3 (abc123) go1.99" {
		t.Errorf("versionString = %q", got)
	}
	got = versionString(tierdb.BuildInfo{Version: "(devel)", GoVersion: "go1.99"})
	if got != "tierdbd (devel) go1.99" {
		t.Errorf("versionString without revision = %q", got)
	}
}

// TestVersionMatchesBuildInfo checks the live metadata feeding -version
// is the series' data: non-empty version and Go version.
func TestVersionMatchesBuildInfo(t *testing.T) {
	bi := tierdb.Build()
	if bi.Version == "" || bi.GoVersion == "" {
		t.Fatalf("Build() = %+v, want non-empty version and goversion", bi)
	}
	out := versionString(bi)
	if !strings.Contains(out, bi.Version) || !strings.Contains(out, bi.GoVersion) {
		t.Errorf("versionString(%+v) = %q", bi, out)
	}
}
