// Command loadgen is a closed-loop load generator for the tierdb
// network service. Each worker runs its own request loop against the
// server — insert-heavy or read-heavy per -read-frac — and the run
// ends with an accounting check: the server-visible row count must
// equal preloaded rows plus exactly the inserts the server
// acknowledged. Overload sheds (ErrOverloaded) are expected under
// pressure, count as rejects, and back off; any other error fails the
// run.
//
// Two modes:
//
//	loadgen -addr host:port        # drive an external tierdbd
//	loadgen -selftest              # boot a full server in-process
//
// -selftest is the CI soak: one process hosts both halves over real
// loopback TCP (so `go run -race ./cmd/loadgen -selftest` race-checks
// client, server and engine together), runs the workload with
// background merges enabled, drains, then reopens the WAL directory
// and proves every acknowledged write survived.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tierdb"
	"tierdb/internal/server"
	"tierdb/internal/server/client"
	"tierdb/internal/trace"
)

const tableName = "load"

var fields = []tierdb.Field{
	{Name: "id", Type: tierdb.Int64Type},
	{Name: "amount", Type: tierdb.Float64Type},
	{Name: "tag", Type: tierdb.StringType, Width: 8},
}

type opts struct {
	addr        string
	selftest    bool
	workers     int
	duration    time.Duration
	readFrac    float64
	pool        int
	preload     int
	checkpoints bool
	mergeRows   int
	sampleRate  float64
}

func main() {
	var o opts
	flag.StringVar(&o.addr, "addr", "", "tierdbd address to drive (mutually exclusive with -selftest)")
	flag.BoolVar(&o.selftest, "selftest", false, "boot an in-process server over loopback TCP and drive it")
	flag.IntVar(&o.workers, "workers", 4, "concurrent closed-loop workers")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "how long to run the workload")
	flag.Float64Var(&o.readFrac, "read-frac", 0.5, "fraction of operations that are reads")
	flag.IntVar(&o.pool, "pool", 4, "client connection pool size")
	flag.IntVar(&o.preload, "preload", 10_000, "rows bulk-loaded before the timed run")
	flag.BoolVar(&o.checkpoints, "checkpoints", false, "issue periodic checkpoints (needs a WAL-backed server)")
	flag.IntVar(&o.mergeRows, "merge-rows", 20_000, "selftest: delta rows that trigger background merges")
	flag.Float64Var(&o.sampleRate, "trace-sample-rate", 0.01, "fraction of requests traced end to end [0,1]")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(o opts) error {
	if o.selftest == (o.addr != "") {
		return errors.New("need exactly one of -addr or -selftest")
	}

	var walDir string
	var db *tierdb.DB
	if o.selftest {
		var err error
		walDir, err = os.MkdirTemp("", "loadgen-selftest-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(walDir)
		db, err = tierdb.Open(tierdb.Config{
			ListenAddr:     "127.0.0.1:0",
			WALDir:         walDir,
			SyncPolicy:     tierdb.SyncGroup,
			MergeDeltaRows: o.mergeRows,
		})
		if err != nil {
			return err
		}
		o.addr = db.ServerAddr()
		o.checkpoints = true
		fmt.Printf("selftest server on %s (wal %s, merges at %d delta rows)\n",
			o.addr, walDir, o.mergeRows)
	}

	acked, err := workload(o)
	if err != nil {
		if db != nil {
			db.Close()
		}
		return err
	}

	if !o.selftest {
		return nil
	}

	// Drain, then recover from the WAL alone: the accounting must hold
	// across the restart for every write the server acknowledged.
	if err := db.Close(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	db2, err := tierdb.Open(tierdb.Config{WALDir: walDir})
	if err != nil {
		return fmt.Errorf("reopen after drain: %w", err)
	}
	defer db2.Close()
	tbl, err := db2.Table(tableName)
	if err != nil {
		return fmt.Errorf("reopen after drain: %w", err)
	}
	want := o.preload + int(acked)
	if got := tbl.Rows(); got != want {
		return fmt.Errorf("recovery mismatch: %d rows on disk, %d acked (%d preload + %d inserts)",
			got, want, o.preload, acked)
	}
	fmt.Printf("recovery check: %d rows survived drain + WAL reopen\n", want)
	return nil
}

// workload runs the timed closed loop and the live accounting check.
// It returns the number of acknowledged inserts.
func workload(o opts) (int64, error) {
	// The client-side tracer samples requests end to end; the slowest
	// traced request's trace ID goes into the final report so it can be
	// pulled up as a span tree via /trace/{id} on the server's
	// observability endpoints.
	tracer := trace.New(trace.Options{SampleRate: o.sampleRate})
	var slowMu sync.Mutex
	var slowest *trace.Span
	tracer.SetOnEnd(func(s *trace.Span) {
		if s.Name != "client.send" {
			return
		}
		slowMu.Lock()
		if slowest == nil || s.Duration() > slowest.Duration() {
			slowest = s
		}
		slowMu.Unlock()
	})
	c, err := client.Dial(client.Config{Addr: o.addr, PoolSize: o.pool, Tracer: tracer})
	if err != nil {
		return 0, err
	}
	defer c.Close()

	if err := c.CreateTable(tableName, fields); err != nil {
		return 0, err
	}
	var nextID atomic.Int64
	if o.preload > 0 {
		rows := make([][]tierdb.Value, o.preload)
		for i := range rows {
			id := nextID.Add(1)
			rows[i] = mkRow(id)
		}
		if err := c.BulkLoad(tableName, rows); err != nil {
			return 0, err
		}
		fmt.Printf("preloaded %d rows\n", o.preload)
	}

	var (
		acked, reads, rejects atomic.Int64
		failures              atomic.Int64
		errMu                 sync.Mutex
		firstErr              string
	)
	recordFailure := func(err error) {
		failures.Add(1)
		errMu.Lock()
		if firstErr == "" {
			firstErr = err.Error()
		}
		errMu.Unlock()
	}
	recorders := make([]*recorder, o.workers)
	deadline := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		rec := newRecorder()
		recorders[w] = rec
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			backoff := time.Millisecond
			for i := 0; time.Now().Before(deadline); i++ {
				var err error
				start := time.Now()
				isRead := rng.Float64() < o.readFrac
				switch {
				case isRead && i%64 == 63:
					_, _, err = c.SelectTraced(tableName,
						[]server.Predicate{client.Eq("id", tierdb.Int(1+rng.Int63n(max64(1, nextID.Load()))))}, "id")
				case isRead && i%64 == 31:
					_, err = c.Stats()
				case isRead:
					lo := 1 + rng.Int63n(max64(1, nextID.Load()))
					_, err = c.Select(tableName,
						[]server.Predicate{client.Between("id", tierdb.Int(lo), tierdb.Int(lo+99))}, "id")
				case o.checkpoints && i%2048 == 1024:
					err = c.Checkpoint()
				default:
					id := nextID.Add(1)
					err = c.Insert(tableName, mkRow(id))
					if err != nil {
						// The insert did not happen; the ID is simply
						// never observed again. Only acked inserts
						// count toward the final row total.
						if errors.Is(err, server.ErrOverloaded) || errors.Is(err, server.ErrDraining) {
							rejects.Add(1)
							err = nil
							time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
							backoff = minDur(backoff*2, 100*time.Millisecond)
							continue
						}
					} else {
						acked.Add(1)
					}
				}
				if err != nil {
					if errors.Is(err, server.ErrOverloaded) || errors.Is(err, server.ErrDraining) {
						rejects.Add(1)
						time.Sleep(backoff)
						backoff = minDur(backoff*2, 100*time.Millisecond)
						continue
					}
					recordFailure(err)
					continue
				}
				backoff = time.Millisecond
				if isRead {
					reads.Add(1)
				}
				rec.observe(time.Since(start))
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	merged := mergeRecorders(recorders)
	total := acked.Load() + reads.Load()
	fmt.Printf("ran %d workers for %s: %d acked inserts, %d reads, %d rejects, %d failures\n",
		o.workers, o.duration, acked.Load(), reads.Load(), rejects.Load(), failures.Load())
	if n := len(merged.samples); n > 0 {
		fmt.Printf("throughput: %.0f ops/s   latency p50 %s  p95 %s  p99 %s  max %s\n",
			float64(total)/o.duration.Seconds(),
			merged.quantile(0.50), merged.quantile(0.95),
			merged.quantile(0.99), merged.quantile(1.0))
	}
	slowMu.Lock()
	if slowest != nil {
		fmt.Printf("slowest traced request: %s in %s, trace %s (GET /trace/%s on the observability server)\n",
			slowest.Name, slowest.Duration(), slowest.Trace, slowest.Trace)
	}
	slowMu.Unlock()
	if f := failures.Load(); f > 0 {
		return acked.Load(), fmt.Errorf("%d request failures (first: %s)", f, firstErr)
	}

	// Accounting: the table must hold exactly what the server acked.
	want := o.preload + int(acked.Load())
	got, err := c.Rows(tableName)
	if err != nil {
		return acked.Load(), fmt.Errorf("final row count: %w", err)
	}
	if got != want {
		return acked.Load(), fmt.Errorf("accounting mismatch: server reports %d rows, %d acked (%d preload + %d inserts)",
			got, want, o.preload, acked.Load())
	}
	fmt.Printf("accounting check: %d rows == %d preload + %d acked inserts\n", got, o.preload, acked.Load())
	return acked.Load(), nil
}

func mkRow(id int64) []tierdb.Value {
	return []tierdb.Value{
		tierdb.Int(id),
		tierdb.Float(float64(id) / 3),
		tierdb.String(fmt.Sprintf("w%06d", id%1_000_000)),
	}
}

// recorder collects per-worker latencies without cross-worker sharing.
type recorder struct {
	samples []time.Duration
}

func newRecorder() *recorder { return &recorder{samples: make([]time.Duration, 0, 1<<16)} }

func (r *recorder) observe(d time.Duration) { r.samples = append(r.samples, d) }

func mergeRecorders(rs []*recorder) *recorder {
	m := &recorder{}
	for _, r := range rs {
		m.samples = append(m.samples, r.samples...)
	}
	sort.Slice(m.samples, func(i, j int) bool { return m.samples[i] < m.samples[j] })
	return m
}

// quantile returns the q-th latency quantile; samples must be sorted.
func (r *recorder) quantile(q float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	i := int(q * float64(len(r.samples)-1))
	return r.samples[i]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
