package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tierdb/internal/explain"
	"tierdb/internal/server/client"
)

// runExplain implements `tierctl explain`: EXPLAIN/ANALYZE one query
// against a running tierdbd and render the plan as a text tree or JSON.
func runExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	addr := fs.String("addr", "", "tierdbd wire-protocol address (host:port)")
	table := fs.String("table", "", "table to explain against")
	query := fs.String("q", "", "predicates as col=val,col=lo..hi (comma separated)")
	project := fs.String("project", "", "comma-separated projection columns (optional)")
	analyze := fs.Bool("analyze", false, "execute the query and annotate the plan with observed costs")
	asJSON := fs.Bool("json", false, "print the raw JSON plan instead of the text tree")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *addr == "" || *table == "" {
		fail("explain needs -addr ADDR and -table NAME (see tierctl explain -h)")
	}
	specs, err := explain.ParseQuerySpec(*query)
	if err != nil {
		fail("%v", err)
	}
	var proj []string
	if *project != "" {
		proj = strings.Split(*project, ",")
	}
	c, err := client.Dial(client.Config{Addr: *addr})
	if err != nil {
		fail("%v", err)
	}
	defer c.Close()
	plan, err := c.Explain(*table, specs, proj, *analyze)
	if err != nil {
		fail("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fail("%v", err)
		}
		return
	}
	fmt.Print(explain.RenderText(plan))
}
