// The stats subcommand renders engine metrics as a human-readable
// report:
//
//	tierctl stats -snapshot BENCH_ci.json     # render a saved snapshot
//	tierctl stats -demo                       # run a demo workload live
//	tierctl stats -addr localhost:7070        # fetch from a live instance
//	tierctl stats -addr localhost:7070 -watch 2s   # live refresh
//
// -snapshot accepts either a raw metrics snapshot or a benchrunner
// BENCH_*.json artifact (whose "snapshot" field is used). -addr fetches
// /stats.json from a running instance's observability server
// (tierdb.Config.ObsAddr).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"tierdb"
	"tierdb/internal/metrics"
)

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	snapshotPath := fs.String("snapshot", "", "render a saved metrics snapshot or BENCH_*.json artifact")
	demo := fs.Bool("demo", false, "run a built-in demo workload and print its stats and a query trace")
	addr := fs.String("addr", "", "fetch live stats from a running instance's observability address (host:port or http://...)")
	watch := fs.Duration("watch", 0, "with -addr: clear the screen and refresh every interval (e.g. 2s)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	switch {
	case *addr != "":
		if err := watchStats(os.Stdout, *addr, *watch); err != nil {
			fail("%v", err)
		}
	case *snapshotPath != "":
		out, err := renderStatsFile(*snapshotPath)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(out)
	case *demo:
		if err := statsDemo(); err != nil {
			fail("%v", err)
		}
	default:
		fail("stats needs -snapshot FILE, -demo or -addr ADDR (see tierctl stats -h)")
	}
}

// fetchStats pulls /stats.json from a live observability server.
func fetchStats(addr string) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	base := strings.TrimSuffix(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(base + "/stats.json")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s/stats.json: %s", base, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("parse %s/stats.json: %w", base, err)
	}
	return snap, nil
}

// watchStats renders live stats once, or repeatedly every interval
// when watch > 0 (clearing the terminal between refreshes). One-shot
// mode fails on the first fetch error; watch mode treats fetch errors
// as transient — it keeps retrying with capped exponential backoff so
// a dashboard survives a server restart instead of exiting the moment
// the port blips.
func watchStats(out *os.File, addr string, watch time.Duration) error {
	return watchLoop(out, addr, watch, time.Sleep, 0)
}

// maxWatchBackoff caps the retry backoff between failed fetches in
// watch mode.
const maxWatchBackoff = 15 * time.Second

// watchLoop is watchStats with an injectable sleep and a bounded count
// of successful renders (rounds <= 0: unbounded), so tests can drive
// the retry path without wall-clock delays.
func watchLoop(out io.Writer, addr string, watch time.Duration, sleep func(time.Duration), rounds int) error {
	backoff := watch
	fails := 0
	for done := 0; ; {
		snap, err := fetchStats(addr)
		if err != nil {
			if watch <= 0 {
				return err
			}
			fails++
			fmt.Fprintf(out, "fetch from %s failed (attempt %d): %v — retrying in %s\n",
				addr, fails, err, backoff)
			sleep(backoff)
			if backoff *= 2; backoff > maxWatchBackoff {
				backoff = maxWatchBackoff
			}
			continue
		}
		fails = 0
		backoff = watch
		if watch > 0 {
			fmt.Fprint(out, "\033[H\033[2J")
		}
		fmt.Fprintf(out, "engine metrics from %s at %s\n\n", addr, time.Now().Format(time.RFC3339))
		fmt.Fprint(out, statsReport(snap))
		if watch <= 0 {
			return nil
		}
		if done++; rounds > 0 && done >= rounds {
			return nil
		}
		sleep(watch)
	}
}

// renderStatsFile loads a snapshot file and renders the report.
func renderStatsFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	// A benchrunner artifact wraps the snapshot; try that shape first.
	var artifact struct {
		Snapshot metrics.Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		return "", fmt.Errorf("parse %s: %w", path, err)
	}
	snap := artifact.Snapshot
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) == 0 {
		if err := json.Unmarshal(data, &snap); err != nil {
			return "", fmt.Errorf("parse %s: %w", path, err)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "engine metrics from %s\n\n", path)
	b.WriteString(statsReport(snap))
	return b.String(), nil
}

// statsReport renders a snapshot with a derived summary ahead of the
// full instrument dump.
func statsReport(snap metrics.Snapshot) string {
	var b strings.Builder
	if q := snap.Counters["exec.queries"]; q > 0 {
		fmt.Fprintf(&b, "queries: %d (%d parallel, %d scan-to-probe switchovers)\n",
			q, snap.Counters["exec.queries.parallel"], snap.Counters["exec.switch.scan_to_probe"])
	}
	hits, misses := snap.Counters["amm.hits"], snap.Counters["amm.misses"]
	if hits+misses > 0 {
		fmt.Fprintf(&b, "amm hit rate: %.2f%% (%d hits, %d misses, %d evictions)\n",
			100*float64(hits)/float64(hits+misses), hits, misses, snap.Counters["amm.evictions"])
	}
	if begun := snap.Counters["mvcc.tx.begin"]; begun > 0 {
		fmt.Fprintf(&b, "transactions: %d begun, %d committed, %d aborted\n",
			begun, snap.Counters["mvcc.tx.commit"], snap.Counters["mvcc.tx.abort"])
	}
	if swaps := snap.Counters["merge.swaps"]; swaps > 0 || snap.Counters["merge.failures"] > 0 {
		fmt.Fprintf(&b, "merges: %d online swaps (%d rows folded, %d stragglers re-based, %d failures); delta %d active / %d frozen rows\n",
			swaps, snap.Counters["merge.rows"], snap.Counters["merge.stragglers"],
			snap.Counters["merge.failures"],
			snap.Gauges["delta.active_rows"].Value, snap.Gauges["delta.frozen_rows"].Value)
	}
	if cycles := snap.Counters["adaptive.cycles"]; cycles > 0 {
		fmt.Fprintf(&b, "adaptive placement: %d cycles (%d applies, %d skips, %d errors); %d bytes moved\n",
			cycles, snap.Counters["adaptive.applies"], snap.Counters["adaptive.skips"],
			snap.Counters["adaptive.errors"], snap.Counters["adaptive.moved_bytes"])
	}
	if reqs := snap.Counters["server.requests_total"]; reqs > 0 || snap.Gauges["server.sessions"].Value > 0 {
		fmt.Fprintf(&b, "server: %d requests (%d rejects, %d errors); %d sessions, %d inflight\n",
			reqs, snap.Counters["server.rejects"], snap.Counters["server.errors"],
			snap.Gauges["server.sessions"].Value, snap.Gauges["server.inflight"].Value)
	}
	if appends := snap.Counters["wal.appends"]; appends > 0 || snap.Counters["wal.replayed_records"] > 0 {
		fmt.Fprintf(&b, "wal: %d appends (%d bytes, %d fsyncs, %d checkpoints); recovery replayed %d records in %s modeled\n",
			appends, snap.Counters["wal.bytes"], snap.Counters["wal.fsyncs"],
			snap.Counters["wal.checkpoints"], snap.Counters["wal.replayed_records"],
			time.Duration(snap.Counters["wal.recovery_ns"]))
	}
	if b.Len() > 0 {
		b.WriteByte('\n')
	}
	b.WriteString(snap.Render())
	return b.String()
}

// statsDemo opens an in-memory engine, runs a small tiered workload and
// prints the per-query trace plus the engine-wide report.
func statsDemo() error {
	db, err := tierdb.Open(tierdb.Config{Device: "CSSD", CacheFrames: 128})
	if err != nil {
		return err
	}
	defer db.Close()
	tbl, err := db.CreateTable("demo", []tierdb.Field{
		{Name: "id", Type: tierdb.Int64Type},
		{Name: "region", Type: tierdb.Int64Type},
		{Name: "amount", Type: tierdb.Int64Type},
	})
	if err != nil {
		return err
	}
	rows := make([][]tierdb.Value, 20_000)
	for i := range rows {
		rows[i] = []tierdb.Value{
			tierdb.Int(int64(i)), tierdb.Int(int64(i % 50)), tierdb.Int(int64(i % 1000)),
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		return err
	}
	if err := tbl.Inner().ApplyLayout([]bool{true, true, false}); err != nil {
		return err
	}
	region, err := tbl.Eq("region", tierdb.Int(7))
	if err != nil {
		return err
	}
	amount, err := tbl.Between("amount", tierdb.Int(0), tierdb.Int(500))
	if err != nil {
		return err
	}
	_, trace, err := tbl.SelectTraced(nil, []tierdb.Predicate{region, amount}, "id")
	if err != nil {
		return err
	}
	fmt.Println("demo query trace:")
	fmt.Println(trace)
	fmt.Println(statsReport(db.Stats()))
	return nil
}
