package main

import (
	"strings"
	"testing"

	"tierdb"
)

// TestFetchStats round-trips stats from a live instance's
// observability server — the path behind `tierctl stats -addr`.
func TestFetchStats(t *testing.T) {
	db, err := tierdb.Open(tierdb.Config{ObsAddr: "127.0.0.1:0", CacheFrames: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", []tierdb.Field{
		{Name: "id", Type: tierdb.Int64Type},
		{Name: "v", Type: tierdb.Int64Type},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]tierdb.Value, 500)
	for i := range rows {
		rows[i] = []tierdb.Value{tierdb.Int(int64(i)), tierdb.Int(int64(i % 5))}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	p, err := tbl.Eq("v", tierdb.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Select(nil, []tierdb.Predicate{p}); err != nil {
		t.Fatal(err)
	}

	// Both bare host:port and full http:// URLs are accepted.
	for _, addr := range []string{db.ObsURL(), strings.TrimPrefix(db.ObsURL(), "http://")} {
		snap, err := fetchStats(addr)
		if err != nil {
			t.Fatalf("fetchStats(%q): %v", addr, err)
		}
		if snap.Counters["exec.queries"] < 1 {
			t.Errorf("fetchStats(%q): exec.queries = %d", addr, snap.Counters["exec.queries"])
		}
		if !strings.Contains(statsReport(snap), "exec.queries") {
			t.Errorf("fetched snapshot renders without exec.queries")
		}
	}

	if _, err := fetchStats("127.0.0.1:1"); err == nil {
		t.Error("fetchStats against a dead port succeeded")
	}
}
