package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchSurvivesRestart proves `tierctl stats -addr -watch` does not
// exit on a transient fetch error: a server that fails its first
// requests (a restart window) is retried with growing backoff until it
// answers again.
func TestWatchSurvivesRestart(t *testing.T) {
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The first three fetches hit the "server is restarting"
		// window; everything after recovers.
		if requests.Add(1) <= 3 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"counters":{"exec.queries":7,"server.requests_total":42}}`))
	}))
	defer srv.Close()

	var out strings.Builder
	var sleeps []time.Duration
	sleep := func(d time.Duration) { sleeps = append(sleeps, d) }

	const watch = time.Millisecond
	if err := watchLoop(&out, srv.URL, watch, sleep, 2); err != nil {
		t.Fatalf("watch loop exited on a transient error: %v", err)
	}

	text := out.String()
	if got := strings.Count(text, "retrying in"); got != 3 {
		t.Errorf("saw %d retry notes, want 3:\n%s", got, text)
	}
	if got := strings.Count(text, "engine metrics from"); got != 2 {
		t.Errorf("rendered %d reports, want 2:\n%s", got, text)
	}
	if !strings.Contains(text, "server: 42 requests") {
		t.Errorf("report lacks the server summary line:\n%s", text)
	}
	// Backoff doubles between consecutive failures, then the loop goes
	// back to plain watch-interval sleeps.
	want := []time.Duration{watch, 2 * watch, 4 * watch, watch}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleeps = %v, want %v", sleeps, want)
		}
	}
}

// TestWatchBackoffCap proves the retry backoff saturates instead of
// growing without bound.
func TestWatchBackoffCap(t *testing.T) {
	var requests atomic.Int64
	const outage = 10
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) <= outage {
			http.Error(w, "down", http.StatusBadGateway)
			return
		}
		w.Write([]byte(`{"counters":{}}`))
	}))
	defer srv.Close()

	var out strings.Builder
	var sleeps []time.Duration
	if err := watchLoop(&out, srv.URL, 10*time.Second,
		func(d time.Duration) { sleeps = append(sleeps, d) }, 1); err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != outage {
		t.Fatalf("%d sleeps, want %d", len(sleeps), outage)
	}
	for i, d := range sleeps {
		if d > maxWatchBackoff {
			t.Fatalf("sleep %d = %s exceeds the %s cap", i, d, maxWatchBackoff)
		}
	}
	if sleeps[outage-1] != maxWatchBackoff {
		t.Fatalf("backoff %s never reached the cap %s", sleeps[outage-1], maxWatchBackoff)
	}
}

// TestWatchOneShotStillFails pins the unchanged one-shot semantics:
// without -watch, a fetch error is fatal.
func TestWatchOneShotStillFails(t *testing.T) {
	var out strings.Builder
	if err := watchLoop(&out, "127.0.0.1:1", 0, func(time.Duration) {}, 0); err == nil {
		t.Fatal("one-shot fetch against a dead port succeeded")
	}
}
