// Command tierctl runs the column selection model on a workload
// description and prints the recommended data placement.
//
// The workload is a JSON file:
//
//	{
//	  "columns": [
//	    {"name": "BELNR", "size": 67108864, "selectivity": 1e-6, "pinned": false},
//	    ...
//	  ],
//	  "queries": [
//	    {"columns": ["BELNR", "BUKRS"], "frequency": 1200},
//	    ...
//	  ]
//	}
//
// Usage:
//
//	tierctl -workload w.json -w 0.2                 # explicit solution
//	tierctl -workload w.json -budget 1073741824 -method ilp
//	tierctl -workload w.json -frontier               # Pareto sweep
//	tierctl -example 50,500 -w 0.3                   # built-in Example 1
//	tierctl stats -snapshot BENCH_ci.json            # render saved engine metrics
//	tierctl stats -demo                              # live demo workload + trace
//	tierctl stats -addr localhost:7070 -watch 2s     # live stats from a running instance
//	tierctl explain -addr localhost:7070 -table orders -q region=7,amount=100..200
//	tierctl explain -addr localhost:7070 -table orders -q region=7 -analyze -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tierdb/internal/core"
)

type jsonColumn struct {
	Name        string  `json:"name"`
	Size        int64   `json:"size"`
	Selectivity float64 `json:"selectivity"`
	Pinned      bool    `json:"pinned,omitempty"`
}

type jsonQuery struct {
	Columns   []json.RawMessage `json:"columns"`
	Frequency float64           `json:"frequency"`
}

type jsonWorkload struct {
	Columns []jsonColumn `json:"columns"`
	Queries []jsonQuery  `json:"queries"`
}

func loadWorkload(path string) (*core.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var jw jsonWorkload
	if err := json.Unmarshal(data, &jw); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	byName := make(map[string]int, len(jw.Columns))
	w := &core.Workload{}
	for i, c := range jw.Columns {
		byName[c.Name] = i
		w.Columns = append(w.Columns, core.Column{
			Name:        c.Name,
			Size:        c.Size,
			Selectivity: c.Selectivity,
			Pinned:      c.Pinned,
		})
	}
	for qi, q := range jw.Queries {
		cols := make([]int, 0, len(q.Columns))
		for _, raw := range q.Columns {
			var name string
			if err := json.Unmarshal(raw, &name); err == nil {
				idx, ok := byName[name]
				if !ok {
					return nil, fmt.Errorf("query %d references unknown column %q", qi, name)
				}
				cols = append(cols, idx)
				continue
			}
			var idx int
			if err := json.Unmarshal(raw, &idx); err != nil {
				return nil, fmt.Errorf("query %d: column reference %s is neither name nor index", qi, raw)
			}
			cols = append(cols, idx)
		}
		w.Queries = append(w.Queries, core.Query{Columns: cols, Frequency: q.Frequency})
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tierctl: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		runStats(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		runExplain(os.Args[2:])
		return
	}
	var (
		workloadPath = flag.String("workload", "", "workload JSON file")
		example      = flag.String("example", "", "generate Example 1 instead: N,Q[,seed]")
		budget       = flag.Int64("budget", 0, "DRAM budget in bytes")
		relBudget    = flag.Float64("w", 0, "relative DRAM budget in [0,1]")
		method       = flag.String("method", "explicit", "ilp | explicit | filling | greedy | h1 | h2 | h3")
		beta         = flag.Float64("beta", 0, "reallocation cost per byte (uses -current)")
		currentPath  = flag.String("current", "", "JSON array of booleans: current allocation y")
		frontier     = flag.Bool("frontier", false, "print the Pareto frontier over w = 0.05..1")
		verbose      = flag.Bool("v", false, "print the per-column decision")
	)
	flag.Parse()

	var w *core.Workload
	var err error
	switch {
	case *workloadPath != "":
		w, err = loadWorkload(*workloadPath)
		if err != nil {
			fail("%v", err)
		}
	case *example != "":
		parts := strings.Split(*example, ",")
		if len(parts) < 2 {
			fail("-example needs N,Q[,seed]")
		}
		n, err1 := strconv.Atoi(parts[0])
		q, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fail("-example needs numeric N,Q")
		}
		seed := int64(42)
		if len(parts) > 2 {
			s, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				fail("bad seed %q", parts[2])
			}
			seed = s
		}
		w, err = core.Example1(core.Example1Config{Columns: n, Queries: q, Seed: seed})
		if err != nil {
			fail("%v", err)
		}
	default:
		fail("need -workload file or -example N,Q (see -h)")
	}

	params := core.DefaultCostParams()

	if *frontier {
		var budgets []float64
		for f := 0.05; f <= 1.0001; f += 0.05 {
			budgets = append(budgets, f)
		}
		points, err := core.Frontier(w, params, budgets, core.FrontierILP)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("%-8s  %-14s  %-12s  %s\n", "w", "memory", "relPerf", "columns in DRAM")
		for _, pt := range points {
			fmt.Printf("%-8.2f  %-14d  %-12.4f  %d\n",
				pt.RelativeBudget, pt.Allocation.Memory, pt.RelativePerformance, pt.Allocation.CountInDRAM())
		}
		return
	}

	b := *budget
	if b == 0 {
		if *relBudget <= 0 {
			fail("need -budget or -w")
		}
		b = int64(*relBudget * float64(w.TotalSize()))
	}

	var current []bool
	if *currentPath != "" {
		data, err := os.ReadFile(*currentPath)
		if err != nil {
			fail("%v", err)
		}
		if err := json.Unmarshal(data, &current); err != nil {
			fail("parse current allocation: %v", err)
		}
	}

	var alloc core.Allocation
	switch *method {
	case "ilp":
		alloc, err = core.OptimalILPRealloc(w, params, b, current, *beta)
	case "explicit":
		alloc, err = core.ExplicitForBudget(w, params, b, current, *beta)
	case "filling":
		alloc, err = core.FillingForBudget(w, params, b, current, *beta)
	case "greedy":
		alloc, err = core.GreedyRatio(w, params, b)
	case "h1":
		alloc, err = core.SolveHeuristic(w, params, b, core.HeuristicFrequency)
	case "h2":
		alloc, err = core.SolveHeuristic(w, params, b, core.HeuristicSelectivity)
	case "h3":
		alloc, err = core.SolveHeuristic(w, params, b, core.HeuristicSelectivityFrequency)
	default:
		fail("unknown method %q", *method)
	}
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("method:               %s\n", *method)
	fmt.Printf("budget:               %d bytes (w=%.3f)\n", b, float64(b)/float64(w.TotalSize()))
	fmt.Printf("memory used:          %d bytes\n", alloc.Memory)
	fmt.Printf("columns in DRAM:      %d / %d\n", alloc.CountInDRAM(), len(w.Columns))
	fmt.Printf("estimated scan cost:  %.6g\n", alloc.Cost)
	fmt.Printf("relative performance: %.4f\n", core.RelativePerformance(w, params, alloc))
	if *verbose {
		fmt.Println("\ncolumn placement:")
		for i, c := range w.Columns {
			tier := "SSCG (secondary storage)"
			if alloc.InDRAM[i] {
				tier = "MRC (DRAM)"
			}
			fmt.Printf("  %-24s %12d B  sel=%-10.3g %s\n", c.Name, c.Size, c.Selectivity, tier)
		}
	}
}
