package main

import (
	"os"
	"path/filepath"
	"testing"

	"tierdb/internal/explain"
)

// explainFixture is a fully hand-constructed ANALYZE plan so the golden
// test pins the renderer itself, with every field under test control
// rather than live server output.
func explainFixture() *explain.Plan {
	return &explain.Plan{
		Table:          "orders",
		Mode:           explain.ModeAnalyze,
		Device:         "nvme",
		Parallelism:    4,
		ProbeThreshold: 0.05,
		TraceID:        "00000000deadbeef",
		WallNs:         152_340,
		RowsQualified:  37,
		PageReads:      12,
		DRAMNs:         41_000,
		DeviceNs:       88_500,
		Nodes: []explain.Node{
			{
				Operator: "scan", Partition: "main", Path: "sscg",
				Column: 1, ColumnName: "region", Predicate: "region = 7",
				Tier: "secondary", ModeledCost: 0.002, ModeledFraction: 1,
				EstimatedSelectivity: 0.01, ObservedSelectivity: 0.012,
				MisestimateRatio: 1.2, RowsIn: 10000, RowsOut: 120,
				ObservedNs: 90_000, PageReads: 12,
			},
			{
				Operator: "probe", Partition: "main", Path: "mrc",
				Column: 2, ColumnName: "amount", Predicate: "amount between 100 and 200",
				Tier: "dram", ModeledCost: 0.00004, ModeledFraction: 0.01,
				EstimatedSelectivity: 0.25, ObservedSelectivity: 0.3083,
				MisestimateRatio: 1.23, RowsIn: 120, RowsOut: 37,
				ObservedNs: 30_000, Morsels: 4,
				SwitchedToProbe: true, CandidateFraction: 0.012,
			},
			{
				Operator: "visible", Partition: "main", Column: -1,
				RowsIn: 37, RowsOut: 37, ObservedNs: 2_000,
			},
			{
				Operator: "materialize", Column: -1, ColumnName: "amount",
				Tier: "dram", RowsIn: 37, RowsOut: 37, ObservedNs: 9_000,
			},
		},
		Placement: explain.Attribution{
			CurrentCost:     0.00204,
			RecommendedCost: 0.0000604,
			Regret:          0.0019796,
			Columns: []explain.ColumnAttribution{
				{
					Column: 1, Name: "region", SizeBytes: 2 << 20,
					Selectivity: 0.01, SelectivitySource: "observed", ObservedSamples: 9,
					TierNow: "secondary", TierRecommended: "dram",
					ScanFraction: 1, ModeledCost: 0.002, RecommendedCost: 0.00002,
					Regret: 0.00198,
				},
				{
					Column: 2, Name: "amount", SizeBytes: 4 << 20,
					Selectivity: 0.25, SelectivitySource: "estimated",
					TierNow: "dram", TierRecommended: "dram",
					ScanFraction: 0.01, ModeledCost: 0.00004, RecommendedCost: 0.0000404,
					Regret: -0.0000004,
				},
			},
		},
	}
}

// TestExplainGolden renders the fixture plan and compares it byte for
// byte against the golden file; run with -update to regenerate after an
// intentional format change.
func TestExplainGolden(t *testing.T) {
	out := explain.RenderText(explainFixture())
	golden := filepath.Join("testdata", "explain_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("explain rendering drifted from golden file (re-run with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// TestExplainGoldenPlanOnly pins the EXPLAIN-only header path: no wall
// summary line and no observed columns on the nodes.
func TestExplainGoldenPlanOnly(t *testing.T) {
	p := explainFixture()
	p.Mode = explain.ModeExplain
	out := explain.RenderText(p)
	golden := filepath.Join("testdata", "explain_plan_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("explain rendering drifted from golden file (re-run with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}
