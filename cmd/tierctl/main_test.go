package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleWorkload = `{
  "columns": [
    {"name": "BELNR", "size": 67108864, "selectivity": 1e-6},
    {"name": "BUKRS", "size": 1048576, "selectivity": 0.125, "pinned": true},
    {"name": "PAYLOAD", "size": 134217728, "selectivity": 0.5}
  ],
  "queries": [
    {"columns": ["BELNR", "BUKRS"], "frequency": 1200},
    {"columns": [0], "frequency": 400}
  ]
}`

func writeSample(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadWorkload(t *testing.T) {
	w, err := loadWorkload(writeSample(t, sampleWorkload))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Columns) != 3 || len(w.Queries) != 2 {
		t.Fatalf("shape: %d cols, %d queries", len(w.Columns), len(w.Queries))
	}
	if !w.Columns[1].Pinned {
		t.Error("pinned flag lost")
	}
	// Name and index references both resolve.
	if w.Queries[0].Columns[0] != 0 || w.Queries[0].Columns[1] != 1 {
		t.Errorf("query 0 columns = %v", w.Queries[0].Columns)
	}
	if w.Queries[1].Columns[0] != 0 {
		t.Errorf("query 1 columns = %v", w.Queries[1].Columns)
	}
	if w.Queries[0].Frequency != 1200 {
		t.Errorf("frequency = %g", w.Queries[0].Frequency)
	}
}

func TestLoadWorkloadErrors(t *testing.T) {
	if _, err := loadWorkload(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := loadWorkload(writeSample(t, "{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := loadWorkload(writeSample(t, `{
		"columns": [{"name": "a", "size": 10, "selectivity": 0.5}],
		"queries": [{"columns": ["nope"], "frequency": 1}]
	}`)); err == nil {
		t.Error("unknown column name accepted")
	}
	if _, err := loadWorkload(writeSample(t, `{
		"columns": [{"name": "a", "size": 10, "selectivity": 0.5}],
		"queries": [{"columns": [true], "frequency": 1}]
	}`)); err == nil {
		t.Error("non-name non-index column ref accepted")
	}
	if _, err := loadWorkload(writeSample(t, `{
		"columns": [{"name": "a", "size": -5, "selectivity": 0.5}],
		"queries": []
	}`)); err == nil {
		t.Error("invalid workload accepted")
	}
}
