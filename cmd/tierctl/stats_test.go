package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestStatsGolden renders the checked-in snapshot fixture and compares
// it against the golden report byte for byte; run with -update to
// regenerate the golden file after an intentional format change.
func TestStatsGolden(t *testing.T) {
	out, err := renderStatsFile(filepath.Join("testdata", "stats_snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "stats_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("stats report drifted from golden file (re-run with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// TestStatsSummaryLines pins the derived summary lines the fixture is
// expected to exercise — in particular the adaptive-placement and
// server lines, which only render when their instruments are present.
// A careless -update that dropped them from the fixture would pass the
// byte-for-byte golden check; this guard would still fail.
func TestStatsSummaryLines(t *testing.T) {
	out, err := renderStatsFile(filepath.Join("testdata", "stats_snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"adaptive placement: 12 cycles (3 applies, 8 skips, 1 errors); 65536 bytes moved",
		"server: 400 requests (5 rejects, 2 errors); 4 sessions, 1 inflight",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing summary line %q:\n%s", want, out)
		}
	}
}

// TestStatsRendersRawSnapshot accepts a bare snapshot (no benchrunner
// wrapper) too.
func TestStatsRendersRawSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	raw := `{"counters": {"exec.queries": 3, "amm.hits": 1, "amm.misses": 1}}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := renderStatsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"queries: 3", "amm hit rate: 50.00%", "exec.queries"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStatsFileErrors(t *testing.T) {
	if _, err := renderStatsFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := renderStatsFile(bad); err == nil {
		t.Error("bad JSON accepted")
	}
}
