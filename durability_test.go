package tierdb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tierdb/internal/wal"
)

// walConfig opens a DB on an injected in-memory filesystem.
func walConfig(fs wal.FS, policy SyncPolicy) Config {
	return Config{
		WALDir:     "wal",
		SyncPolicy: policy,
		// Long enough that the SyncGroup flusher never fires during a
		// test: background syncs would make crash states nondeterministic.
		GroupCommitInterval: time.Hour,
		walFS:               fs,
	}
}

var walFields = []Field{
	{Name: "id", Type: Int64Type},
	{Name: "tag", Type: StringType, Width: 8},
}

// rowState is the oracle's view of one table: whether it exists and the
// multiset of visible (id, tag) tuples.
type rowState struct {
	exists bool
	rows   map[string]int
}

func mkState(keys ...string) rowState {
	s := rowState{exists: true, rows: map[string]int{}}
	for _, k := range keys {
		s.rows[k]++
	}
	return s
}

func stateEqual(a, b rowState) bool {
	if a.exists != b.exists || len(a.rows) != len(b.rows) {
		return false
	}
	for k, n := range a.rows {
		if b.rows[k] != n {
			return false
		}
	}
	return true
}

func (s rowState) String() string {
	if !s.exists {
		return "<no table>"
	}
	keys := make([]string, 0, len(s.rows))
	for k, n := range s.rows {
		keys = append(keys, fmt.Sprintf("%s x%d", k, n))
	}
	return "{" + strings.Join(keys, ", ") + "}"
}

// visibleState reads the recovered database's actual state.
func visibleState(t *testing.T, db *DB) rowState {
	t.Helper()
	tbl, err := db.Table("t")
	if err != nil {
		return rowState{}
	}
	got := rowState{exists: true, rows: map[string]int{}}
	inner := tbl.Inner()
	snap := inner.Manager().LastCommit()
	for id := RowID(0); id < RowID(inner.MainRows()+inner.DeltaRows()); id++ {
		if !inner.Visible(id, snap, 0) {
			continue
		}
		tuple, err := inner.GetTuple(uint64(id))
		if err != nil {
			t.Fatalf("visible row %d unreadable: %v", id, err)
		}
		got.rows[fmt.Sprintf("%d|%s", tuple[0].Int(), tuple[1].Str())]++
	}
	return got
}

// findRowID locates a visible row by content (row ids are not stable
// across merges, so scripts address rows the way redo records do).
func findRowID(t *testing.T, tbl *Table, id int64, tag string) RowID {
	t.Helper()
	inner := tbl.Inner()
	snap := inner.Manager().LastCommit()
	for r := RowID(0); r < RowID(inner.MainRows()+inner.DeltaRows()); r++ {
		if !inner.Visible(r, snap, 0) {
			continue
		}
		tuple, err := inner.GetTuple(uint64(r))
		if err != nil {
			t.Fatalf("get tuple %d: %v", r, err)
		}
		if tuple[0].Int() == id && tuple[1].Str() == tag {
			return r
		}
	}
	t.Fatalf("no visible row (%d, %s)", id, tag)
	return 0
}

// walStep is one scripted, individually-acknowledged operation plus the
// exact state the database must show once the step is durable.
type walStep struct {
	name string
	// barrier marks a step whose acknowledgement forces ALL prior state
	// durable regardless of sync policy (checkpoints fsync internally).
	barrier bool
	run     func(t *testing.T, db *DB) error
	state   rowState
}

func insertStep(name string, id int64, tag string, after rowState) walStep {
	return walStep{name: name, state: after, run: func(t *testing.T, db *DB) error {
		tbl, err := db.Table("t")
		if err != nil {
			return err
		}
		return tbl.Insert([]Value{Int(id), String(tag)})
	}}
}

// crashScript is the deterministic workload the sweep drives: DDL, single
// and multi-op transactions, a content-addressed delete, a bulk load
// whose merge relocates rows, a mid-stream checkpoint, and an update.
// states[i] below is the expected visible state after the first i steps.
func crashScript() []walStep {
	return []walStep{
		{name: "create", state: mkState(), run: func(t *testing.T, db *DB) error {
			_, err := db.CreateTable("t", walFields)
			return err
		}},
		insertStep("ins1", 1, "a", mkState("1|a")),
		insertStep("ins2", 2, "b", mkState("1|a", "2|b")),
		{name: "txpair", state: mkState("1|a", "2|b", "3|c", "4|d"), run: func(t *testing.T, db *DB) error {
			tbl, err := db.Table("t")
			if err != nil {
				return err
			}
			tx := db.Begin()
			if err := tbl.InsertTx(tx, []Value{Int(3), String("c")}); err != nil {
				db.Abort(tx)
				return err
			}
			if err := tbl.InsertTx(tx, []Value{Int(4), String("d")}); err != nil {
				db.Abort(tx)
				return err
			}
			return db.Commit(tx)
		}},
		{name: "del2", state: mkState("1|a", "3|c", "4|d"), run: func(t *testing.T, db *DB) error {
			tbl, err := db.Table("t")
			if err != nil {
				return err
			}
			id := findRowID(t, tbl, 2, "b")
			tx := db.Begin()
			if err := tbl.Delete(tx, id); err != nil {
				db.Abort(tx)
				return err
			}
			return db.Commit(tx)
		}},
		{name: "bulk", state: mkState("1|a", "3|c", "4|d", "5|e", "6|f"), run: func(t *testing.T, db *DB) error {
			tbl, err := db.Table("t")
			if err != nil {
				return err
			}
			return tbl.BulkLoad([][]Value{
				{Int(5), String("e")},
				{Int(6), String("f")},
			})
		}},
		{name: "ckpt", barrier: true, state: mkState("1|a", "3|c", "4|d", "5|e", "6|f"), run: func(t *testing.T, db *DB) error {
			return db.Checkpoint()
		}},
		insertStep("ins7", 7, "g", mkState("1|a", "3|c", "4|d", "5|e", "6|f", "7|g")),
		{name: "upd1", state: mkState("1|A", "3|c", "4|d", "5|e", "6|f", "7|g"), run: func(t *testing.T, db *DB) error {
			tbl, err := db.Table("t")
			if err != nil {
				return err
			}
			id := findRowID(t, tbl, 1, "a")
			tx := db.Begin()
			if err := tbl.Update(tx, id, []Value{Int(1), String("A")}); err != nil {
				db.Abort(tx)
				return err
			}
			return db.Commit(tx)
		}},
		insertStep("ins8", 8, "h", mkState("1|A", "3|c", "4|d", "5|e", "6|f", "7|g", "8|h")),
	}
}

// scriptStates returns the oracle state sequence: states[0] is the empty
// database, states[i] the state after the first i steps.
func scriptStates(steps []walStep) []rowState {
	states := make([]rowState, len(steps)+1)
	states[0] = rowState{}
	for i, s := range steps {
		states[i+1] = s.state
	}
	return states
}

// runScript drives the workload until it completes or the injected
// crash poisons the filesystem. It returns how many steps were
// acknowledged and how many were attempted (acked plus at most one
// in-flight step whose record may or may not have reached the disk).
func runScript(t *testing.T, fs *wal.CrashFS, policy SyncPolicy) (acked, attempted int) {
	t.Helper()
	steps := crashScript()
	db, err := Open(walConfig(fs, policy))
	if err != nil {
		if !fs.Crashed() {
			t.Fatalf("open failed without a crash: %v", err)
		}
		return 0, 0
	}
	defer db.Close() // post-crash close errors are expected; ignore
	for i, s := range steps {
		attempted = i + 1
		if err := s.run(t, db); err != nil {
			if !fs.Crashed() {
				t.Fatalf("step %s failed without a crash: %v", s.name, err)
			}
			return acked, attempted
		}
		acked = i + 1
	}
	return acked, attempted
}

// checkRecovered opens a recovered filesystem image and asserts the
// visible state is prefix-consistent: exactly the state after some
// prefix of the acked+in-flight step sequence, no shorter than the
// durability floor the sync policy guarantees.
func checkRecovered(t *testing.T, rec *wal.CrashFS, policy SyncPolicy, floor, attempted int, label string) {
	t.Helper()
	states := scriptStates(crashScript())
	db, err := Open(walConfig(rec, policy))
	if err != nil {
		t.Fatalf("%s: recovery must never fail, got: %v", label, err)
	}
	defer db.Close()
	got := visibleState(t, db)
	// Adjacent steps can share a state (a checkpoint changes no rows), so
	// credit the highest matching prefix.
	match := -1
	for i := attempted; i >= 0; i-- {
		if stateEqual(got, states[i]) {
			match = i
			break
		}
	}
	if match < 0 {
		t.Fatalf("%s: recovered state %v matches no step prefix (attempted %d)", label, got, attempted)
	}
	if match < floor {
		t.Fatalf("%s: recovered state %v is step prefix %d, below the durability floor %d — an acknowledged commit was lost",
			label, got, match, floor)
	}
	// Replay must leave a writable, consistent database behind.
	tbl, err := db.Table("t")
	if err == nil {
		if err := tbl.Insert([]Value{Int(99), String("post")}); err != nil {
			t.Fatalf("%s: recovered database rejects writes: %v", label, err)
		}
	}
}

// durabilityFloor computes the lowest legal recovered prefix: under
// SyncAlways every acknowledged step is fsynced before its ack; under
// the weaker policies only steps at or before an acknowledged barrier
// (checkpoint) are guaranteed.
func durabilityFloor(policy SyncPolicy, acked int) int {
	if policy == SyncAlways {
		return acked
	}
	floor := 0
	for i, s := range crashScript() {
		if s.barrier && i+1 <= acked {
			floor = i + 1
		}
	}
	return floor
}

// TestCrashPointSweep is the durability proof: for every sync policy it
// crashes the engine at EVERY mutating filesystem operation of a
// workload covering DDL, transactions, deletes across a merge, a
// checkpoint and updates; each crash state is recovered under all three
// disk-survival models and must land exactly on a committed prefix —
// with zero acknowledged loss under SyncAlways.
func TestCrashPointSweep(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncGroup, SyncOff} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			t.Parallel()
			// Probe run with injection disabled counts the op space.
			probe := wal.NewMemFS()
			if acked, attempted := runScript(t, probe, policy); acked != attempted {
				t.Fatalf("probe run crashed: %d/%d steps", acked, attempted)
			}
			total := probe.Ops()
			if total < 20 {
				t.Fatalf("probe run used only %d mutating ops; sweep would be vacuous", total)
			}
			for crashAt := 1; crashAt <= total; crashAt++ {
				fs := wal.NewCrashFS(crashAt)
				acked, attempted := runScript(t, fs, policy)
				if !fs.Crashed() {
					t.Fatalf("crashAt=%d: workload finished without crashing", crashAt)
				}
				floor := durabilityFloor(policy, acked)
				for _, mode := range wal.RecoverModes() {
					label := fmt.Sprintf("crashAt=%d acked=%d %s", crashAt, acked, mode)
					checkRecovered(t, fs.Recover(mode, 0), policy, floor, attempted, label)
				}
			}
		})
	}
}

// TestRecrashDuringRecovery injects a second crash into recovery itself
// (which truncates torn tails and opens a fresh segment) and then
// recovers cleanly: replay must be idempotent — the doubly-recovered
// state obeys the same prefix-consistency and zero-loss bounds.
func TestRecrashDuringRecovery(t *testing.T) {
	probe := wal.NewMemFS()
	runScript(t, probe, SyncAlways)
	total := probe.Ops()
	for _, crashAt := range []int{total / 4, total / 2, 3 * total / 4, total - 1} {
		if crashAt < 1 {
			continue
		}
		fs := wal.NewCrashFS(crashAt)
		acked, attempted := runScript(t, fs, SyncAlways)
		for _, mode := range wal.RecoverModes() {
			for again := 1; again <= 8; again++ {
				rec := fs.Recover(mode, again)
				db, err := Open(walConfig(rec, SyncAlways))
				if err == nil {
					// Recovery finished before the second crash point.
					db.Close()
				} else if !rec.Crashed() {
					t.Fatalf("crashAt=%d %s again=%d: open failed without crash: %v", crashAt, mode, again, err)
				}
				label := fmt.Sprintf("crashAt=%d %s recrash=%d", crashAt, mode, again)
				// A crash mid-recovery only drops what the first recovery
				// wrote, never what the workload synced.
				checkRecovered(t, rec.Recover(wal.RecoverDropUnsynced, 0), SyncAlways, acked, attempted, label)
			}
		}
	}
}

// TestWALRecoveryRoundTrip is the straight-line integration check: a
// cleanly closed database reopens from its WAL directory with rows,
// schema, layout and both index kinds intact — twice.
func TestWALRecoveryRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	db, err := Open(walConfig(fs, SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", walFields)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 100)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), String(fmt.Sprintf("r%d", i%10))}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout(Layout{InDRAM: []bool{true, false}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCompositeIndex("id", "tag"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tbl.Delete(tx, findRowID(t, tbl, 7, "r7")); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		db2, err := Open(walConfig(fs, SyncAlways))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		tbl2, err := db2.Table("t")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tbl2.Rows() != 99 {
			t.Fatalf("round %d: rows = %d, want 99", round, tbl2.Rows())
		}
		layout := tbl2.Layout()
		if !layout[0] || layout[1] {
			t.Fatalf("round %d: layout = %v, want [true false]", round, layout)
		}
		if tbl2.Inner().Index(0) == nil {
			t.Fatalf("round %d: single-column index not replayed", round)
		}
		if len(tbl2.Inner().CompositeIndexes()) != 1 {
			t.Fatalf("round %d: composite index not replayed", round)
		}
		ids, err := tbl2.LookupComposite([]string{"id", "tag"}, []Value{Int(42), String("r2")})
		if err != nil || len(ids) != 1 {
			t.Fatalf("round %d: composite lookup = %v, %v", round, ids, err)
		}
		stats := db2.Stats()
		if stats.Counters["wal.replayed_records"] == 0 {
			t.Fatalf("round %d: wal.replayed_records = 0 after replaying a populated log", round)
		}
		if stats.Counters["wal.recovery_ns"] == 0 {
			t.Fatalf("round %d: wal.recovery_ns not reported", round)
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestCheckpointTruncatesWALDirectory verifies log reclamation: after a
// checkpoint only the fresh segment and the table snapshots remain, and
// recovery from that trimmed directory still yields the full state.
func TestCheckpointTruncatesWALDirectory(t *testing.T) {
	fs := wal.NewMemFS()
	db, err := Open(walConfig(fs, SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", walFields)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tbl.Insert([]Value{Int(int64(i)), String("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	segs, snaps := 0, 0
	for _, n := range names {
		switch {
		case strings.HasSuffix(n, ".log"):
			segs++
		case strings.HasSuffix(n, wal.SnapSuffix):
			snaps++
		default:
			t.Errorf("unexpected file %q in WAL dir", n)
		}
	}
	if segs != 1 || snaps != 1 {
		t.Fatalf("after checkpoint: %d segments, %d snapshots; want 1 and 1 (%v)", segs, snaps, names)
	}
	// Post-checkpoint writes land in the fresh segment.
	if err := tbl.Insert([]Value{Int(1000), String("y")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(walConfig(fs, SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Rows() != 51 {
		t.Fatalf("recovered rows = %d, want 51", tbl2.Rows())
	}
}

// TestScheduledMergeCheckpoints verifies the tentpole's scheduler hook:
// once the background merge fires, the WAL is checkpointed without any
// manual call, so the log stays short under steady writes.
func TestScheduledMergeCheckpoints(t *testing.T) {
	fs := wal.NewMemFS()
	cfg := walConfig(fs, SyncAlways)
	cfg.MergeDeltaRows = 10
	cfg.MergeInterval = time.Millisecond
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", walFields)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := tbl.Insert([]Value{Int(int64(i)), String("m")}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if db.Stats().Counters["wal.checkpoints"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler never checkpointed after merging")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRestoreTableIntoDurableDB verifies that restoring an external
// snapshot into a WAL-backed database survives a restart: RestoreTable
// checkpoints immediately, since the restored rows are not in the log.
func TestRestoreTableIntoDurableDB(t *testing.T) {
	src, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := src.CreateTable("ext", walFields)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 30)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), String("s")}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ext.snap"
	if err := tbl.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	src.Close()

	fs := wal.NewMemFS()
	db, err := Open(walConfig(fs, SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RestoreTable(path); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(walConfig(fs, SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Table("ext")
	if err != nil {
		t.Fatalf("restored table lost across restart: %v", err)
	}
	if got.Rows() != 30 {
		t.Fatalf("restored table has %d rows after restart, want 30", got.Rows())
	}
}

// TestCommitRollsBackWhenLogDies pins the no-false-ack property from the
// engine's public surface: once the log cannot be written, commits fail
// and their rows never become visible.
func TestCommitRollsBackWhenLogDies(t *testing.T) {
	probe := wal.NewMemFS()
	db, err := Open(walConfig(probe, SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", walFields)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{Int(1), String("a")}); err != nil {
		t.Fatal(err)
	}
	ops := probe.Ops()
	db.Close()

	// Same workload, but the very next mutating op after the first
	// insert's ack kills the disk.
	fs := wal.NewCrashFS(ops + 1)
	db2, err := Open(walConfig(fs, SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.CreateTable("t", walFields)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl2.Insert([]Value{Int(1), String("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl2.Insert([]Value{Int(2), String("b")}); !errors.Is(err, wal.ErrCrashed) {
		t.Fatalf("commit on a dead log returned %v, want ErrCrashed", err)
	}
	if n := tbl2.Rows(); n != 1 {
		t.Fatalf("failed commit left %d rows visible, want 1", n)
	}
}

// BenchmarkRecovery measures restart cost against the MRC share of the
// checkpointed layout — the paper's reduced-recovery-time argument:
// fewer DRAM-resident columns mean less data must be decoded back into
// memory before the engine serves queries. Wall time covers snapshot
// load plus replay of a 200-commit log tail; the modeled clock
// (device+DRAM) is reported alongside.
func BenchmarkRecovery(b *testing.B) {
	const cols, rows, tail = 8, 2000, 200
	fields := make([]Field, cols)
	for c := range fields {
		fields[c] = Field{Name: fmt.Sprintf("c%d", c), Type: Int64Type}
	}
	for _, mrc := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("mrc=%d-of-%d", mrc, cols), func(b *testing.B) {
			fs := wal.NewMemFS()
			db, err := Open(walConfig(fs, SyncOff))
			if err != nil {
				b.Fatal(err)
			}
			tbl, err := db.CreateTable("t", fields)
			if err != nil {
				b.Fatal(err)
			}
			data := make([][]Value, rows)
			for i := range data {
				r := make([]Value, cols)
				for c := range r {
					r[c] = Int(int64(i*cols + c))
				}
				data[i] = r
			}
			if err := tbl.BulkLoad(data); err != nil {
				b.Fatal(err)
			}
			layout := make([]bool, cols)
			for c := 0; c < mrc; c++ {
				layout[c] = true
			}
			if err := tbl.ApplyLayout(Layout{InDRAM: layout}); err != nil {
				b.Fatal(err)
			}
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < tail; i++ {
				r := make([]Value, cols)
				for c := range r {
					r[c] = Int(int64(i))
				}
				if err := tbl.Insert(r); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var modeled time.Duration
			for i := 0; i < b.N; i++ {
				// Recover a fresh deep copy so each iteration replays the
				// same on-disk image.
				img := fs.Recover(wal.RecoverKeepUnsynced, 0)
				db2, err := Open(walConfig(img, SyncOff))
				if err != nil {
					b.Fatal(err)
				}
				modeled += db2.Clock().Elapsed()
				b.StopTimer()
				db2.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(modeled.Nanoseconds())/float64(b.N), "modeled-ns/op")
		})
	}
}
