// Package tierdb is a tiered main memory-optimized HTAP storage engine
// with workload-driven, Pareto-optimal data placement — a from-scratch
// Go reproduction of Boissier, Schlosser and Uflacker, "Hybrid Data
// Layouts for Tiered HTAP Databases with Pareto-Optimal Data
// Placements" (ICDE 2018).
//
// Each table consists of a DRAM-resident, write-optimized delta
// partition and a read-optimized main partition whose attributes are
// either Memory-Resident Columns (MRCs, dictionary-encoded, bit-packed,
// DRAM) or grouped row-oriented and uncompressed into a
// Secondary-Storage Column Group (SSCG) on a modeled storage device.
// Which attributes stay in DRAM is decided by the paper's column
// selection model: an integer linear program over the observed workload
// with selection interaction, its Pareto-efficient penalty relaxation,
// and the solver-free explicit solution.
//
// Typical use:
//
//	db, _ := tierdb.Open(tierdb.Config{Device: "3D XPoint", CacheFrames: 1024})
//	tbl, _ := db.CreateTable("orders", fields)
//	tbl.BulkLoad(rows)
//	tbl.Select(...)                               // queries feed the plan cache
//	layout, _ := tbl.RecommendLayout(tierdb.PlacementOptions{RelativeBudget: 0.2})
//	tbl.ApplyLayout(layout)                       // evict cold columns
package tierdb

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tierdb/internal/amm"
	"tierdb/internal/device"
	"tierdb/internal/exec"
	"tierdb/internal/metrics"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/server"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/telemetry"
	"tierdb/internal/trace"
	"tierdb/internal/value"
	"tierdb/internal/wal"
)

// Re-exported building blocks of the storage layer.
type (
	// Field declares one table attribute.
	Field = schema.Field
	// Value is a dynamically typed cell value.
	Value = value.Value
	// RowID addresses a visible row (stable between merges).
	RowID = table.RowID
	// Tx is a transaction handle.
	Tx = mvcc.Tx
	// DeviceProfile describes a secondary-storage device model.
	DeviceProfile = device.Profile
	// StatsSnapshot is a point-in-time copy of every engine metric; see
	// DB.Stats.
	StatsSnapshot = metrics.Snapshot
	// QueryTrace records what one traced query execution did; see
	// Table.SelectTraced.
	QueryTrace = metrics.Trace
)

// Value constructors.
var (
	// Int builds an Int64 value.
	Int = value.NewInt
	// Float builds a Float64 value.
	Float = value.NewFloat
	// String builds a String value.
	String = value.NewString
)

// Column type constants.
const (
	Int64Type   = value.Int64
	Float64Type = value.Float64
	StringType  = value.String
)

// Config configures a database instance.
type Config struct {
	// Device names the secondary-storage model backing SSCGs: "CSSD",
	// "ESSD", "HDD" or "3D XPoint". Empty selects 3D XPoint.
	Device string
	// CacheFrames sizes the AMM page cache in 4 KB frames; 0 disables
	// caching.
	CacheFrames int
	// Threads is the concurrency level assumed by the device timing
	// model; defaults to 1.
	Threads int
	// Parallelism is the number of worker goroutines for morsel-driven
	// main-partition scans; values <= 1 select the serial executor.
	// Results are identical to serial execution at any level.
	Parallelism int
	// PageFile, when set, backs pages with a real file at this path
	// instead of memory (the timing model still applies).
	PageFile string
	// DisableMetrics turns the engine's observability layer off. Metrics
	// are on by default; disabled instances hand out nil instruments,
	// which cost nothing on the hot paths.
	DisableMetrics bool
	// MergeDeltaRows triggers a background online merge of a table once
	// its active delta holds at least this many rows; 0 disables the
	// row threshold. Manual Table.MergeAsync works regardless.
	MergeDeltaRows int
	// MergeDeltaBytes triggers a background online merge once a table's
	// delta footprint reaches this many bytes; 0 disables the byte
	// threshold.
	MergeDeltaBytes int64
	// MergeInterval is how often the merge scheduler checks the
	// thresholds; 0 selects DefaultMergeInterval. Irrelevant when both
	// thresholds are 0.
	MergeInterval time.Duration
	// ObsAddr, when set, serves the observability HTTP endpoints
	// (/metrics, /stats.json, /traces, /workload, /layout/advisor,
	// /debug/pprof/) on this address for the lifetime of the instance.
	// Use ObsAddr ":0" with ObsURL to grab a random port. Endpoints can
	// also be served on a caller-owned listener via ServeObservability.
	ObsAddr string
	// SlowQueryThreshold routes every query whose wall time reaches it
	// into the slow-query trace ring (/traces?slow=1) in addition to the
	// recent ring; 0 disables the slow log.
	SlowQueryThreshold time.Duration
	// TraceRingSize bounds the recent and slow trace rings; 0 selects
	// DefaultTraceRingSize.
	TraceRingSize int
	// DisableCapture turns runtime workload capture off: no query trace
	// rings and no observed-selectivity EWMAs. The observability server
	// still works but /traces 404s and the layout advisor falls back to
	// static selectivity estimates.
	DisableCapture bool
	// WALDir, when set, makes the instance durable: every commit is
	// written to a group-committed, CRC-framed write-ahead log in this
	// directory before it is acknowledged, checkpoints truncate the log,
	// and Open recovers state (checkpoint snapshots plus log replay) from
	// whatever a crash left behind. Empty keeps the engine purely
	// in-memory.
	WALDir string
	// SyncPolicy selects when the log is fsynced relative to commit
	// acknowledgement: SyncAlways (default, zero loss), SyncGroup
	// (background interval, bounded loss window) or SyncOff (OS-paced).
	// Ignored without WALDir.
	SyncPolicy SyncPolicy
	// GroupCommitInterval is the background fsync cadence under
	// SyncGroup; 0 selects wal.DefaultGroupInterval. Ignored otherwise.
	GroupCommitInterval time.Duration
	// ListenAddr, when set, serves the tierdb wire protocol (the
	// tierdbd network service: inserts, bulk loads, selects,
	// checkpoints, stats, layout advice) on this TCP address for the
	// lifetime of the instance. Use ":0" with ServerAddr to grab a
	// random port; Close drains sessions before the WAL and merge
	// scheduler wind down. Endpoints can also be served on a
	// caller-owned listener via Serve.
	ListenAddr string
	// MaxSessions caps concurrent network sessions; further connects
	// are shed with a typed overloaded error instead of queuing. 0
	// selects server.DefaultMaxSessions. Ignored without ListenAddr.
	MaxSessions int
	// MaxInflight caps network requests executing in the engine at
	// once; excess requests are answered with ErrOverloaded
	// immediately. 0 selects server.DefaultMaxInflight. Ignored
	// without ListenAddr.
	MaxInflight int
	// DrainTimeout bounds how long Close waits for inflight network
	// requests before force-closing their sessions; 0 selects
	// server.DefaultDrainTimeout. Ignored without ListenAddr.
	DrainTimeout time.Duration
	// AdaptiveInterval, when > 0, turns on self-driving placement: the
	// adaptive scheduler rotates each table's workload window every
	// interval, re-solves the explicit column selection model with
	// reallocation costs (y = current layout) and applies the result
	// online, gated by hysteresis guardrails. 0 leaves periodic
	// adaptation off; DB.AdaptOnce, DB.SetAdaptive and the wire
	// protocol's adaptive opcode work regardless.
	AdaptiveInterval time.Duration
	// AdaptiveAlpha, when > 0, makes the daemon solve the penalty form
	// F(x) + alpha*M(x) (alpha = DRAM price per byte-second) instead of
	// the hard-budget form — the placement breathes with the workload.
	AdaptiveAlpha float64
	// AdaptiveBeta is the reallocation cost per moved byte (paper
	// formulation (6)-(7)); higher values make placements stickier. 0
	// re-solves from scratch each cycle.
	AdaptiveBeta float64
	// AdaptiveBudget caps each table's DRAM bytes in the hard-budget
	// form; 0 re-solves within the table's current modeled footprint.
	// Ignored when AdaptiveAlpha > 0.
	AdaptiveBudget int64
	// AdaptiveMinGain is the minimum relative modeled-cost improvement
	// a re-solve must promise before its layout is applied; 0 selects
	// DefaultAdaptiveMinGain.
	AdaptiveMinGain float64
	// AdaptiveMaxMove caps the fraction of a table's bytes one cycle
	// may relocate; 0 selects DefaultAdaptiveMaxMove.
	AdaptiveMaxMove float64
	// AdaptiveCooldown is how many cycles a table sits out after a
	// flip-back apply; 0 selects DefaultAdaptiveCooldown.
	AdaptiveCooldown int
	// Logger receives the engine's structured log records: listener
	// failures, scheduler errors, adaptive placement decisions, and —
	// with RequestLog — one event per network request. Nil builds a
	// default logger from LogLevel/LogFormat writing to stderr.
	Logger *slog.Logger
	// LogLevel is the default logger's minimum level: "debug", "info",
	// "warn" or "error" (empty = info). Ignored when Logger is set.
	LogLevel string
	// LogFormat selects the default logger's encoding: "text" (default)
	// or "json". Ignored when Logger is set.
	LogFormat string
	// RequestLog, when true, emits one structured wide event per
	// network request (trace ID, opcode, table, rows, queue wait,
	// duration, status) through the logger at info level.
	RequestLog bool
	// TraceSampleRate is the fraction of locally rooted requests traced
	// end to end into the span ring behind /trace/{id}, in [0,1]. 0
	// (the default) records nothing locally; requests arriving with a
	// wire trace header are always recorded — the sampling decision was
	// made by the client. Unsampled requests cost nothing.
	TraceSampleRate float64
	// TraceSpanRingSize bounds the in-memory span ring; 0 selects
	// trace.DefaultRingSize (4096 spans).
	TraceSpanRingSize int

	// walFS overrides the log's filesystem; tests inject the
	// crash-injection FS here. Nil selects the real OS filesystem.
	walFS wal.FS
}

// DefaultTraceRingSize is how many recent (and slow) query traces the
// observability rings retain when Config.TraceRingSize is zero.
const DefaultTraceRingSize = 128

// DB is a database instance: a shared transaction manager, a modeled
// secondary-storage device with a virtual clock, and a set of tables.
type DB struct {
	mu       sync.Mutex
	mgr      *mvcc.Manager
	clock    *storage.Clock
	store    storage.Store
	cache    *amm.Cache
	profile  device.Profile
	threads  int
	parallel int
	registry *metrics.Registry
	tables   map[string]*Table
	sched    *mergeScheduler
	adapt    *adaptiveScheduler
	wal      *wal.Log
	ckptMu   sync.Mutex

	recent     *metrics.TraceRing
	slow       *metrics.TraceRing
	slowThresh time.Duration
	selCapture bool

	obsMu   sync.Mutex
	obsSrvs []*http.Server
	obsAddr string
	srv     *server.Server
	srvAddr string

	log    *slog.Logger
	tracer *trace.Tracer
	start  time.Time
	// ready flips on once Open finished (recovery included) and off as
	// Close begins; /readyz reports it.
	ready atomic.Bool
}

// Open creates a database instance.
func Open(cfg Config) (*DB, error) {
	if cfg.Device == "" {
		cfg.Device = "3D XPoint"
	}
	profile, err := device.ByName(cfg.Device)
	if err != nil {
		return nil, err
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	var base storage.Store
	if cfg.PageFile != "" {
		fs, err := storage.NewFileStore(cfg.PageFile)
		if err != nil {
			return nil, err
		}
		base = fs
	} else {
		base = storage.NewMemStore()
	}
	clock := &storage.Clock{}
	timed := storage.NewTimedStore(base, profile, clock, cfg.Threads)
	var registry *metrics.Registry
	if !cfg.DisableMetrics {
		registry = metrics.NewRegistry()
	}
	timed.Observe(registry)
	var cache *amm.Cache
	if cfg.CacheFrames > 0 {
		cache, err = amm.New(cfg.CacheFrames, timed)
		if err != nil {
			return nil, err
		}
		cache.Observe(registry)
	}
	mgr := mvcc.NewManager()
	mgr.Observe(registry)
	db := &DB{
		mgr:      mgr,
		clock:    clock,
		store:    timed,
		cache:    cache,
		profile:  profile,
		threads:  cfg.Threads,
		parallel: cfg.Parallelism,
		registry: registry,
		tables:   make(map[string]*Table),
		start:    time.Now(),
	}
	db.log = cfg.Logger
	if db.log == nil {
		db.log = telemetry.New(telemetry.Options{
			Level:  cfg.LogLevel,
			Format: cfg.LogFormat,
		})
	}
	db.tracer = trace.New(trace.Options{
		SampleRate: cfg.TraceSampleRate,
		RingSize:   cfg.TraceSpanRingSize,
	})
	if !cfg.DisableCapture {
		size := cfg.TraceRingSize
		if size <= 0 {
			size = DefaultTraceRingSize
		}
		db.recent = metrics.NewTraceRing(size)
		db.slow = metrics.NewTraceRing(size)
		db.slowThresh = cfg.SlowQueryThreshold
		db.selCapture = true
	}
	if cfg.WALDir != "" {
		if err := db.openDurability(cfg); err != nil {
			db.store.Close()
			return nil, err
		}
	}
	db.sched = startMergeScheduler(db, cfg)
	db.adapt = startAdaptiveScheduler(db, cfg)
	db.srv = server.New(dbEngine{db}, server.Config{
		MaxSessions:  cfg.MaxSessions,
		MaxInflight:  cfg.MaxInflight,
		DrainTimeout: cfg.DrainTimeout,
		Registry:     registry,
		Tracer:       db.tracer,
		Logger:       db.log,
		RequestLog:   cfg.RequestLog,
	})
	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("tierdb: service listener: %w", err)
		}
		db.srvAddr = ln.Addr().String()
		go func() {
			// Serve returns nil on graceful drain; anything else means
			// the accept loop died and the process is running without
			// network service.
			if err := db.srv.Serve(ln); err != nil {
				db.log.Error("service listener failed", "err", err)
			}
		}()
	}
	if cfg.ObsAddr != "" {
		ln, err := net.Listen("tcp", cfg.ObsAddr)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("tierdb: observability listener: %w", err)
		}
		db.obsAddr = ln.Addr().String()
		go func() {
			if err := db.ServeObservability(ln); err != nil {
				db.log.Error("observability listener failed", "err", err)
			}
		}()
	}
	db.ready.Store(true)
	return db, nil
}

// Ready reports whether the instance finished opening (WAL recovery
// included) and is accepting work; it turns false again the moment
// Close begins. Served as /readyz on the observability endpoints.
func (db *DB) Ready() bool { return db.ready.Load() }

// Tracer returns the instance's distributed tracer. In-process clients
// pass it as the client package's Config.Tracer so their "client.send"
// spans land in the same ring as the server-side spans and /trace/{id}
// shows the whole request tree.
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// Logger returns the instance's structured logger.
func (db *DB) Logger() *slog.Logger { return db.log }

// Registry exposes the engine's metrics registry (nil when metrics are
// disabled); advanced callers register their own instruments on it.
func (db *DB) Registry() *metrics.Registry { return db.registry }

// Stats returns a point-in-time snapshot of every engine metric:
// executor access-path counts, AMM cache effectiveness, per-device IO,
// delta and transaction activity. The zero snapshot is returned when
// metrics are disabled.
func (db *DB) Stats() StatsSnapshot { return db.registry.Snapshot() }

// Clock returns the virtual clock accumulating modeled device and DRAM
// time; experiment harnesses report its Elapsed as "measured" runtime.
func (db *DB) Clock() *storage.Clock { return db.clock }

// Device returns the configured device profile.
func (db *DB) Device() DeviceProfile { return db.profile }

// Begin starts a transaction shared across the database's tables.
func (db *DB) Begin() *Tx { return db.mgr.Begin() }

// Commit commits a transaction.
func (db *DB) Commit(tx *Tx) error {
	_, err := db.mgr.Commit(tx)
	return err
}

// CommitCtx commits a transaction; a request trace span carried by ctx
// (see tierdb/internal/trace) receives the WAL commit/append/fsync
// child spans.
func (db *DB) CommitCtx(ctx context.Context, tx *Tx) error {
	_, err := db.mgr.CommitCtx(ctx, tx)
	return err
}

// Abort rolls a transaction back.
func (db *DB) Abort(tx *Tx) error { return db.mgr.Abort(tx) }

// CreateTable creates an empty table; all columns start DRAM-resident.
func (db *DB) CreateTable(name string, fields []Field) (*Table, error) {
	s, err := schema.New(fields)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("tierdb: table %q already exists", name)
	}
	inner, err := table.New(name, s, table.Options{
		Store:    db.store,
		Cache:    db.cache,
		Manager:  db.mgr,
		Registry: db.registry,
	})
	if err != nil {
		return nil, err
	}
	t := newTableHandle(db, inner)
	db.tables[name] = t
	if db.wal != nil {
		// Registered before the append (both under db.mu), so a
		// concurrent checkpoint that truncates the segment holding this
		// record necessarily listed — and snapshotted — the table.
		if err := db.wal.AppendCreateTable(name, s.Fields()); err != nil {
			delete(db.tables, name)
			return nil, fmt.Errorf("tierdb: create table not durable: %w", err)
		}
	}
	return t, nil
}

// newExecutor builds the per-table executor bound to the database's
// virtual clock.
func newExecutor(db *DB, inner *table.Table) *exec.Executor {
	return exec.New(inner, exec.Options{
		Clock:              db.clock,
		Threads:            db.threads,
		Parallelism:        db.parallel,
		Registry:           db.registry,
		TraceRing:          db.recent,
		SlowRing:           db.slow,
		SlowQueryThreshold: db.slowThresh,
		DisableSelCapture:  !db.selCapture,
	})
}

// Table returns an existing table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("tierdb: no table %q", name)
}

// Tables returns the table names in undefined order.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	return out
}

// Close shuts the instance down in dependency order: first the network
// service layer drains (stop accepting, answer stragglers with
// ErrDraining, wait for inflight requests to finish), then the
// observability servers stop, the adaptive placement and merge
// schedulers wind down (waiting for an in-flight cycle or merge), the
// write-ahead log syncs and closes, and finally the underlying page
// store is released. Draining before the schedulers and WAL is what
// guarantees no network request is mid-commit when the log closes.
func (db *DB) Close() error {
	db.ready.Store(false)
	db.srv.Shutdown()
	db.obsMu.Lock()
	srvs := db.obsSrvs
	db.obsSrvs = nil
	db.obsMu.Unlock()
	for _, srv := range srvs {
		srv.Close()
	}
	db.adapt.shutdown()
	db.sched.shutdown()
	if db.wal != nil {
		if err := db.wal.Close(); err != nil {
			db.store.Close()
			return err
		}
	}
	return db.store.Close()
}
