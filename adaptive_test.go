package tierdb

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tierdb/internal/core"
	"tierdb/internal/server/client"
	"tierdb/internal/workload"
)

// The drift harness: a scripted workload that changes character in
// phases (scan-heavy on two analytic columns, then point-heavy on a
// different set plus key lookups, then mixed). Each phase's plan mix is
// replayed deterministically against a live DB between AdaptOnce
// cycles, and the adapted layout is compared against an offline oracle
// solve of that phase's true workload.
//
// All drift predicates are single-column equalities on uniformly
// distributed columns, so the observed-selectivity EWMAs equal the
// static 1/distinct estimates exactly and the oracle sees the very
// same model inputs as the daemon.

// driftAlpha prices DRAM so columns filtered at least ~5 times per
// window stay resident (|S_i| = freq * (CSS-CMM) ≈ freq * 8.4e-10 per
// byte); driftBeta adds a small reallocation stickiness well below
// every phase's decision margin, so warm and cold solves agree.
const (
	driftAlpha = 4e-9
	driftBeta  = 2e-10
	driftRows  = 20_000
)

var driftFields = []Field{
	{Name: "id", Type: Int64Type},
	{Name: "a", Type: Int64Type},
	{Name: "b", Type: Int64Type},
	{Name: "c", Type: Int64Type},
	{Name: "d", Type: Int64Type},
	{Name: "e", Type: Int64Type},
	{Name: "pay", Type: Int64Type},
}

// driftDistinct[i] is the number of distinct values of column i
// (row i holds value rowIdx % distinct).
var driftDistinct = []int64{driftRows, 50, 40, 30, 20, 10, 1000}

// driftPlan is one strand of a phase: eq-filter the named column count
// times per cycle.
type driftPlan struct {
	col   int
	count int
}

type driftPhase struct {
	name  string
	plans []driftPlan
}

// driftPhases moves the hot set across the table: a/b, then c/d plus
// id point lookups, then a/d/e. Every listed frequency clears the
// driftAlpha threshold (>= ~5 per window), every unlisted column falls
// to zero benefit, so each phase has a distinct model answer.
var driftPhases = []driftPhase{
	{name: "scan-heavy", plans: []driftPlan{{1, 24}, {2, 24}}},
	{name: "point-heavy", plans: []driftPlan{{3, 24}, {4, 24}, {0, 6}}},
	{name: "mixed", plans: []driftPlan{{1, 12}, {4, 12}, {5, 18}}},
}

func driftConfig() Config {
	return Config{
		Device:          "CSSD",
		CacheFrames:     512,
		AdaptiveAlpha:   driftAlpha,
		AdaptiveBeta:    driftBeta,
		AdaptiveMaxMove: 1, // phase flips legitimately move most bytes
	}
}

func newDriftDB(t *testing.T, cfg Config) (*DB, *Table) {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("drift", driftFields)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, driftRows)
	for i := range rows {
		n := int64(i)
		rows[i] = []Value{
			Int(n), Int(n % 50), Int(n % 40), Int(n % 30), Int(n % 20), Int(n % 10), Int(n % 1000),
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// issueDriftBatch replays one cycle's worth of a phase's plan mix.
func issueDriftBatch(t *testing.T, tbl *Table, phase driftPhase, cycle int) {
	t.Helper()
	for _, p := range phase.plans {
		col := driftFields[p.col].Name
		for k := 0; k < p.count; k++ {
			v := int64(cycle*13+k*7) % driftDistinct[p.col]
			pred, err := tbl.Eq(col, Int(v))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tbl.Select(nil, []Predicate{pred}); err != nil {
				t.Fatalf("phase %s: select: %v", phase.name, err)
			}
		}
	}
}

// driftWorkload builds the phase's true model input from the current
// table statistics, with the same observed-EWMA override the daemon
// applies.
func driftWorkload(t *testing.T, tbl *Table, phase driftPhase) *core.Workload {
	t.Helper()
	plans := make([]workload.Plan, 0, len(phase.plans))
	for _, p := range phase.plans {
		plans = append(plans, workload.Plan{Columns: []int{p.col}, Count: float64(p.count)})
	}
	w, err := workload.ExtractPlans(tbl.Inner(), plans, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Columns {
		if sel, n := tbl.Inner().ObservedSelectivity(i); n >= int64(DefaultAdvisorMinSamples) && sel > 0 {
			w.Columns[i].Selectivity = sel
		}
	}
	return w
}

// driftObjective is what the penalty-mode daemon minimizes: scan cost
// plus DRAM rent.
func driftObjective(w *core.Workload, x []bool) float64 {
	return core.ScanCost(w, core.DefaultCostParams(), x) + driftAlpha*float64(core.MemoryUsed(w, x))
}

// TestAdaptiveDriftConvergence is the headline proof: within K=3
// cycles of each scripted phase change the daemon's applied layout is
// within eps=1% of an oracle offline Theorem-2 solve of that phase's
// true workload, and the layout never oscillates once converged.
func TestAdaptiveDriftConvergence(t *testing.T) {
	const (
		K             = 3
		cyclesPerStep = 5
		eps           = 0.01
	)
	db, tbl := newDriftDB(t, driftConfig())
	prev := tbl.Layout()
	converged := make([][]bool, 0, len(driftPhases))
	for _, phase := range driftPhases {
		layouts := [][]bool{prev}
		for cycle := 1; cycle <= cyclesPerStep; cycle++ {
			issueDriftBatch(t, tbl, phase, cycle)
			if err := db.AdaptOnce(); err != nil {
				t.Fatalf("phase %s cycle %d: AdaptOnce: %v", phase.name, cycle, err)
			}
			layouts = append(layouts, tbl.Layout())
		}
		lastChange := 0
		for i := 1; i < len(layouts); i++ {
			if !equalLayout(layouts[i], layouts[i-1]) {
				lastChange = i
			}
		}
		if lastChange > K {
			t.Fatalf("phase %s: layout still changing at cycle %d (> K=%d): %v",
				phase.name, lastChange, K, layouts)
		}
		if lastChange == 0 {
			t.Fatalf("phase %s: daemon never adapted to the drift (layout stuck at %v)", phase.name, prev)
		}
		applied := layouts[len(layouts)-1]
		w := driftWorkload(t, tbl, phase)
		oracle, err := core.ContinuousPenaltyRealloc(w, core.DefaultCostParams(), driftAlpha, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		appliedObj, oracleObj := driftObjective(w, applied), driftObjective(w, oracle.InDRAM)
		if appliedObj > oracleObj*(1+eps) {
			t.Fatalf("phase %s: converged objective %.6g exceeds oracle %.6g by more than %.0f%%\n applied %v\n oracle  %v",
				phase.name, appliedObj, oracleObj, 100*eps, applied, oracle.InDRAM)
		}
		if !equalLayout(applied, oracle.InDRAM) {
			t.Errorf("phase %s: converged layout %v != oracle %v (cost still within eps)",
				phase.name, applied, oracle.InDRAM)
		}
		converged = append(converged, applied)
		prev = applied
	}
	// The phases must have produced genuinely different placements —
	// otherwise the harness proved nothing about drift.
	for i := 0; i < len(converged); i++ {
		for j := i + 1; j < len(converged); j++ {
			if equalLayout(converged[i], converged[j]) {
				t.Errorf("phases %s and %s converged to the same layout %v",
					driftPhases[i].name, driftPhases[j].name, converged[i])
			}
		}
	}
	rep := db.AdaptiveStatus()
	if rep.Applies < uint64(len(driftPhases)) {
		t.Errorf("adaptive report: %d applies, want >= %d", rep.Applies, len(driftPhases))
	}
	if rep.Cycles != uint64(len(driftPhases)*cyclesPerStep) {
		t.Errorf("adaptive report: %d cycles, want %d", rep.Cycles, len(driftPhases)*cyclesPerStep)
	}
	snap := db.Stats()
	if got := snap.Counters["adaptive.applies"]; got != int64(rep.Applies) {
		t.Errorf("adaptive.applies counter = %d, report says %d", got, rep.Applies)
	}
	if snap.Counters["adaptive.moved_bytes"] <= 0 {
		t.Error("adaptive.moved_bytes counter not incremented")
	}
}

// TestAdaptiveMinGainGuardrail: a drift whose modeled gain stays under
// AdaptiveMinGain must produce no apply, and the decision must say so.
func TestAdaptiveMinGainGuardrail(t *testing.T) {
	cfg := driftConfig()
	cfg.AdaptiveMinGain = 0.999 // nothing short of free DRAM clears this
	db, tbl := newDriftDB(t, cfg)
	before := tbl.Layout()
	for cycle := 1; cycle <= 3; cycle++ {
		issueDriftBatch(t, tbl, driftPhases[0], cycle)
		if err := db.AdaptOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if !equalLayout(tbl.Layout(), before) {
		t.Fatalf("sub-min-gain drift was applied: %v -> %v", before, tbl.Layout())
	}
	rep := db.AdaptiveStatus()
	if rep.Applies != 0 {
		t.Fatalf("report shows %d applies, want 0", rep.Applies)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("report has %d tables, want 1", len(rep.Tables))
	}
	d := rep.Tables[0]
	if d.Action != "skipped" || !strings.Contains(d.Reason, "below min gain") {
		t.Fatalf("decision = %s (%s), want skipped below min gain", d.Action, d.Reason)
	}
	if got := db.Stats().Counters["adaptive.skips"]; got < 3 {
		t.Errorf("adaptive.skips = %d, want >= 3", got)
	}
}

// TestAdaptiveMoveCapGuardrail: capping the per-cycle moved fraction
// low enough blocks the same drift the default config applies.
func TestAdaptiveMoveCapGuardrail(t *testing.T) {
	cfg := driftConfig()
	cfg.AdaptiveMaxMove = 0.01 // the first re-solve wants to evict most of the table
	db, tbl := newDriftDB(t, cfg)
	before := tbl.Layout()
	issueDriftBatch(t, tbl, driftPhases[0], 1)
	if err := db.AdaptOnce(); err != nil {
		t.Fatal(err)
	}
	if !equalLayout(tbl.Layout(), before) {
		t.Fatalf("over-cap move was applied: %v -> %v", before, tbl.Layout())
	}
	rep := db.AdaptiveStatus()
	if len(rep.Tables) != 1 || !strings.Contains(rep.Tables[0].Reason, "per-cycle cap") {
		t.Fatalf("decision = %+v, want per-cycle cap skip", rep.Tables)
	}
}

// TestAdaptiveEmptyWindow: a cycle with no recorded plans must not
// touch the layout (the daemon would otherwise evict everything the
// moment the workload pauses).
func TestAdaptiveEmptyWindow(t *testing.T) {
	db, tbl := newDriftDB(t, driftConfig())
	before := tbl.Layout()
	if err := db.AdaptOnce(); err != nil {
		t.Fatal(err)
	}
	if !equalLayout(tbl.Layout(), before) {
		t.Fatalf("empty window changed layout: %v -> %v", before, tbl.Layout())
	}
	rep := db.AdaptiveStatus()
	if len(rep.Tables) != 1 || !strings.Contains(rep.Tables[0].Reason, "no workload") {
		t.Fatalf("decision = %+v, want no-workload skip", rep.Tables)
	}
}

// TestAdaptiveFlipBackCooldown forces the oscillation damper: after
// the daemon undoes its own previous apply (a flip-back), further
// moves must sit out AdaptiveCooldown cycles — the flap rate is
// bounded by the cooldown, not the cycle cadence.
func TestAdaptiveFlipBackCooldown(t *testing.T) {
	cfg := driftConfig()
	cfg.AdaptiveCooldown = 2
	db, tbl := newDriftDB(t, cfg)
	cycleWith := func(phase driftPhase, n int) {
		t.Helper()
		issueDriftBatch(t, tbl, phase, n)
		if err := db.AdaptOnce(); err != nil {
			t.Fatal(err)
		}
	}
	cycleWith(driftPhases[0], 1)
	layoutA := tbl.Layout()
	cycleWith(driftPhases[1], 2)
	layoutB := tbl.Layout()
	if equalLayout(layoutA, layoutB) {
		t.Fatal("phases produced identical layouts; flip-back cannot be exercised")
	}
	// Back to phase 0: the recommendation equals the layout we last
	// moved away from — an apply, but flagged as a flip-back.
	cycleWith(driftPhases[0], 3)
	if !equalLayout(tbl.Layout(), layoutA) {
		t.Fatalf("flip-back not applied: %v", tbl.Layout())
	}
	rep := db.AdaptiveStatus()
	if len(rep.Tables) != 1 || !strings.Contains(rep.Tables[0].Reason, "flip-back") {
		t.Fatalf("flip-back apply not flagged: %+v", rep.Tables)
	}
	// The workload flips again, but the daemon is cooling down: the
	// next AdaptiveCooldown cycles must hold the layout still.
	for i := 0; i < cfg.AdaptiveCooldown; i++ {
		cycleWith(driftPhases[1], 4+i)
		if !equalLayout(tbl.Layout(), layoutA) {
			t.Fatalf("cooldown cycle %d moved the layout: %v", i, tbl.Layout())
		}
		rep = db.AdaptiveStatus()
		if !strings.Contains(rep.Tables[0].Reason, "cooldown") {
			t.Fatalf("cooldown cycle %d decision: %+v", i, rep.Tables[0])
		}
	}
	// Cooldown expired: the still-drifted workload may move again.
	cycleWith(driftPhases[1], 9)
	if !equalLayout(tbl.Layout(), layoutB) {
		t.Fatalf("post-cooldown cycle did not re-apply: %v", tbl.Layout())
	}
}

// TestAdaptiveBudgetFormDefault: with no alpha and no explicit budget
// the daemon re-solves under the table's current DRAM footprint
// ("spend these same bytes better"). On an all-resident table that
// re-solve can only shuffle indifferent columns (evicting never-queried
// ones changes no modeled cost), and the min-gain guardrail must stop
// exactly that: zero modeled gain never moves bytes.
func TestAdaptiveBudgetFormDefault(t *testing.T) {
	cfg := driftConfig()
	cfg.AdaptiveAlpha, cfg.AdaptiveBeta = 0, 0
	db, tbl := newDriftDB(t, cfg)
	before := tbl.Layout()
	issueDriftBatch(t, tbl, driftPhases[0], 1)
	if err := db.AdaptOnce(); err != nil {
		t.Fatal(err)
	}
	if !equalLayout(tbl.Layout(), before) {
		t.Fatalf("footprint-budget re-solve moved the layout: %v", tbl.Layout())
	}
	rep := db.AdaptiveStatus()
	if len(rep.Tables) != 1 {
		t.Fatalf("report has %d tables, want 1", len(rep.Tables))
	}
	d := rep.Tables[0]
	if d.Action != "skipped" || d.Improvement != 0 || !strings.Contains(d.Reason, "below min gain") {
		t.Fatalf("decision = %+v, want zero-gain min-gain skip", d)
	}
}

// TestAdaptiveWarmColdBetaZeroEquivalence pins the daemon's
// reallocation-aware solve against the cold offline solver: with
// beta=0 the warm path (current layout as y) and a from-scratch Solve
// must agree on modeled cost to within 1e-9 for arbitrary workloads.
func TestAdaptiveWarmColdBetaZeroEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	costs := core.DefaultCostParams()
	for iter := 0; iter < 300; iter++ {
		w := randomDriftWorkload(rng)
		budget := 1 + rng.Int63n(w.TotalSize())
		current := make([]bool, len(w.Columns))
		for i := range current {
			current[i] = rng.Intn(2) == 0
		}
		daemon := &adaptiveScheduler{budget: budget} // alpha=0, beta=0: budget form
		warm, err := daemon.solve(w, costs, current)
		if err != nil {
			t.Fatalf("iter %d: warm solve: %v", iter, err)
		}
		cold, err := Solve(w, PlacementOptions{Budget: budget, Method: MethodExplicit})
		if err != nil {
			t.Fatalf("iter %d: cold solve: %v", iter, err)
		}
		if diff := math.Abs(warm.Cost - cold.EstimatedCost); diff > 1e-9 {
			t.Fatalf("iter %d: warm cost %.12g vs cold %.12g (diff %g, budget %d)\n warm %v\n cold %v",
				iter, warm.Cost, cold.EstimatedCost, diff, budget, warm.InDRAM, cold.InDRAM)
		}
	}
}

// randomDriftWorkload builds a random valid model input.
func randomDriftWorkload(rng *rand.Rand) *core.Workload {
	nCols := 1 + rng.Intn(10)
	cols := make([]core.Column, nCols)
	for i := range cols {
		cols[i] = core.Column{
			Name:        driftColName(i),
			Size:        1 + rng.Int63n(1<<20),
			Selectivity: 1e-6 + rng.Float64()*(1-1e-6),
		}
	}
	nQueries := 1 + rng.Intn(8)
	queries := make([]core.Query, 0, nQueries)
	for j := 0; j < nQueries; j++ {
		perm := rng.Perm(nCols)
		k := 1 + rng.Intn(nCols)
		queries = append(queries, core.Query{
			Columns:   perm[:k],
			Frequency: float64(1 + rng.Intn(100)),
		})
	}
	return &core.Workload{Columns: cols, Queries: queries}
}

func driftColName(i int) string { return string(rune('a' + i%26)) }

// TestAdaptivePeriodicDaemon exercises the real timer path: a short
// interval applies the placement without any AdaptOnce, and the
// runtime toggle flips the enabled flag.
func TestAdaptivePeriodicDaemon(t *testing.T) {
	cfg := driftConfig()
	cfg.AdaptiveInterval = 5 * time.Millisecond
	db, tbl := newDriftDB(t, cfg)
	if !db.AdaptiveEnabled() {
		t.Fatal("AdaptiveInterval > 0 should enable the periodic loop")
	}
	issueDriftBatch(t, tbl, driftPhases[0], 1)
	deadline := time.Now().Add(10 * time.Second)
	for db.AdaptiveStatus().Applies == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("periodic daemon never applied; report %+v", db.AdaptiveStatus())
		}
		time.Sleep(2 * time.Millisecond)
	}
	db.SetAdaptive(false)
	if db.AdaptiveEnabled() {
		t.Fatal("SetAdaptive(false) did not stick")
	}
	db.SetAdaptive(true)
	if !db.AdaptiveEnabled() {
		t.Fatal("SetAdaptive(true) did not stick")
	}
}

// TestAdaptiveOpcode drives the adaptive subcommands over the real
// wire protocol: status, enable, disable.
func TestAdaptiveOpcode(t *testing.T) {
	cfg := driftConfig()
	cfg.ListenAddr = "127.0.0.1:0"
	db, tbl := newDriftDB(t, cfg)
	c, err := client.Dial(client.Config{Addr: db.ServerAddr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.AdaptiveStatus()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Enabled {
		t.Fatal("daemon enabled without AdaptiveInterval")
	}
	if rep, err = c.SetAdaptive(true); err != nil || !rep.Enabled {
		t.Fatalf("enable over the wire: rep=%+v err=%v", rep, err)
	}
	if !db.AdaptiveEnabled() {
		t.Fatal("wire enable did not reach the daemon")
	}
	if rep, err = c.SetAdaptive(false); err != nil || rep.Enabled {
		t.Fatalf("disable over the wire: rep=%+v err=%v", rep, err)
	}
	// A drift applied by AdaptOnce is visible in the wire report.
	issueDriftBatch(t, tbl, driftPhases[0], 1)
	if err := db.AdaptOnce(); err != nil {
		t.Fatal(err)
	}
	rep, err = c.AdaptiveStatus()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applies != 1 || len(rep.Tables) != 1 || rep.Tables[0].Action != "applied" {
		t.Fatalf("wire report after apply: %+v", rep)
	}
}

// TestAdaptiveAfterClose: AdaptOnce on a closed DB fails cleanly.
func TestAdaptiveAfterClose(t *testing.T) {
	db, err := Open(driftConfig())
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.AdaptOnce(); err != ErrClosed {
		t.Fatalf("AdaptOnce after Close = %v, want ErrClosed", err)
	}
}
