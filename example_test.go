package tierdb_test

import (
	"fmt"
	"log"

	"tierdb"
)

// Example demonstrates the full tiering loop: load a table, run a
// workload, ask the optimizer for a placement under a DRAM budget, and
// apply it — query results are unchanged while cold columns move to
// secondary storage.
func Example() {
	db, err := tierdb.Open(tierdb.Config{Device: "3D XPoint"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	tbl, err := db.CreateTable("events", []tierdb.Field{
		{Name: "id", Type: tierdb.Int64Type},
		{Name: "kind", Type: tierdb.Int64Type},
		{Name: "payload", Type: tierdb.StringType, Width: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	rows := make([][]tierdb.Value, 1000)
	for i := range rows {
		rows[i] = []tierdb.Value{
			tierdb.Int(int64(i)),
			tierdb.Int(int64(i % 4)),
			tierdb.String("payload data that is never filtered"),
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		log.Fatal(err)
	}

	// The workload only ever filters on "kind".
	byKind, _ := tbl.Eq("kind", tierdb.Int(2))
	for i := 0; i < 10; i++ {
		if _, err := tbl.Select(nil, []tierdb.Predicate{byKind}); err != nil {
			log.Fatal(err)
		}
	}

	layout, err := tbl.RecommendLayout(tierdb.PlacementOptions{
		RelativeBudget: 0.2,
		Method:         tierdb.MethodILP,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		log.Fatal(err)
	}

	res, err := tbl.Select(nil, []tierdb.Predicate{byKind})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kind=2 rows: %d\n", len(res.IDs))
	fmt.Printf("kind in DRAM: %v, payload in DRAM: %v\n", layout.InDRAM[1], layout.InDRAM[2])
	// Output:
	// kind=2 rows: 250
	// kind in DRAM: true, payload in DRAM: false
}
