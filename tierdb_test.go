package tierdb

import (
	"path/filepath"
	"testing"
)

func testFields() []Field {
	return []Field{
		{Name: "id", Type: Int64Type},
		{Name: "region", Type: Int64Type},
		{Name: "amount", Type: Float64Type},
		{Name: "note", Type: StringType, Width: 16},
	}
}

func openLoaded(t *testing.T, n int) (*DB, *Table) {
	t.Helper()
	db, err := Open(Config{Device: "3D XPoint", CacheFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("orders", testFields())
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, n)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Int(int64(i % 8)), Float(float64(i) / 2), String("n")}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Device: "tape"}); err == nil {
		t.Error("unknown device accepted")
	}
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Device().Name != "3D XPoint" {
		t.Errorf("default device = %q", db.Device().Name)
	}
}

func TestCreateAndLookupTable(t *testing.T) {
	db, _ := openLoaded(t, 10)
	if _, err := db.CreateTable("orders", testFields()); err == nil {
		t.Error("duplicate table accepted")
	}
	tbl, err := db.Table("orders")
	if err != nil || tbl.Name() != "orders" {
		t.Errorf("Table lookup: %v, %v", tbl, err)
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("missing table lookup succeeded")
	}
	if names := db.Tables(); len(names) != 1 || names[0] != "orders" {
		t.Errorf("Tables = %v", names)
	}
	if len(tbl.Columns()) != 4 {
		t.Error("Columns wrong")
	}
}

func TestSelectAndProjection(t *testing.T) {
	_, tbl := openLoaded(t, 100)
	p, err := tbl.Eq("region", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Select(nil, []Predicate{p}, "id", "amount")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 13 { // ids 3, 11, ..., 99
		t.Errorf("matches = %d, want 13", len(res.IDs))
	}
	for i, id := range res.IDs {
		if res.Rows[i][0].Int() != int64(id) {
			t.Errorf("projection mismatch at %d", i)
		}
	}
	if _, err := tbl.Eq("missing", Int(0)); err == nil {
		t.Error("unknown predicate column accepted")
	}
	if _, err := tbl.Select(nil, nil, "missing"); err == nil {
		t.Error("unknown projected column accepted")
	}
}

func TestSelectFeedsPlanCache(t *testing.T) {
	_, tbl := openLoaded(t, 50)
	p1, _ := tbl.Eq("region", Int(1))
	p2, _ := tbl.Between("id", Int(0), Int(10))
	for i := 0; i < 5; i++ {
		if _, err := tbl.Select(nil, []Predicate{p1, p2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Select(nil, []Predicate{p1}); err != nil {
		t.Fatal(err)
	}
	plans := tbl.PlanCache().Plans()
	if len(plans) != 2 {
		t.Fatalf("plans = %d, want 2", len(plans))
	}
	if plans[0].Count != 5 {
		t.Errorf("top plan count = %g", plans[0].Count)
	}
}

func TestRecommendAndApplyLayout(t *testing.T) {
	_, tbl := openLoaded(t, 2000)
	p1, _ := tbl.Eq("region", Int(1))
	p2, _ := tbl.Between("id", Int(5), Int(10))
	for i := 0; i < 100; i++ {
		if _, err := tbl.Select(nil, []Predicate{p1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Select(nil, []Predicate{p2}); err != nil {
		t.Fatal(err)
	}

	full := tbl.MemoryBytes()
	layout, err := tbl.RecommendLayout(PlacementOptions{RelativeBudget: 0.3, Method: MethodILP})
	if err != nil {
		t.Fatal(err)
	}
	// amount and note are never filtered: evicted first.
	if layout.InDRAM[2] || layout.InDRAM[3] {
		t.Error("unfiltered columns kept in DRAM under tight budget")
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	if tbl.MemoryBytes() >= full {
		t.Error("memory footprint did not shrink")
	}
	if tbl.SecondaryBytes() == 0 {
		t.Error("nothing moved to secondary storage")
	}
	// Queries still produce the same results after eviction.
	res, err := tbl.Select(nil, []Predicate{p1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 250 {
		t.Errorf("matches after eviction = %d, want 250", len(res.IDs))
	}
}

func TestRecommendLayoutPinned(t *testing.T) {
	_, tbl := openLoaded(t, 500)
	p, _ := tbl.Eq("region", Int(1))
	if _, err := tbl.Select(nil, []Predicate{p}); err != nil {
		t.Fatal(err)
	}
	layout, err := tbl.RecommendLayout(PlacementOptions{
		RelativeBudget: 0.9,
		Pinned:         []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !layout.InDRAM[0] {
		t.Error("pinned column evicted")
	}
	if _, err := tbl.RecommendLayout(PlacementOptions{Pinned: []string{"missing"}}); err == nil {
		t.Error("unknown pinned column accepted")
	}
}

func TestTransactionsThroughFacade(t *testing.T) {
	db, tbl := openLoaded(t, 10)
	tx := db.Begin()
	if err := tbl.InsertTx(tx, []Value{Int(100), Int(1), Float(1), String("tx")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(tx, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 10 {
		t.Errorf("rows = %d, want 10", tbl.Rows())
	}
	tx2 := db.Begin()
	if err := tbl.Update(tx2, 5, []Value{Int(5), Int(7), Float(9), String("upd")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 10 {
		t.Errorf("rows after merge = %d", tbl.Rows())
	}
	// Abort path.
	tx3 := db.Begin()
	if err := tbl.InsertTx(tx3, []Value{Int(999), Int(0), Float(0), String("x")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Abort(tx3); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 10 {
		t.Error("aborted insert leaked")
	}
}

func TestInsertAutoTransaction(t *testing.T) {
	_, tbl := openLoaded(t, 5)
	if err := tbl.Insert([]Value{Int(50), Int(1), Float(2), String("auto")}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 6 {
		t.Errorf("rows = %d", tbl.Rows())
	}
	// Invalid row aborts cleanly.
	if err := tbl.Insert([]Value{Int(1)}); err == nil {
		t.Error("short row accepted")
	}
	if tbl.Rows() != 6 {
		t.Error("failed insert changed row count")
	}
}

func TestGetAndSum(t *testing.T) {
	_, tbl := openLoaded(t, 20)
	row, err := tbl.Get(7)
	if err != nil || row[0].Int() != 7 {
		t.Errorf("Get = %v, %v", row, err)
	}
	v, err := tbl.GetValue(7, "region")
	if err != nil || v.Int() != 7 {
		t.Errorf("GetValue = %v, %v", v, err)
	}
	if _, err := tbl.GetValue(7, "missing"); err == nil {
		t.Error("unknown column accepted")
	}
	total, err := tbl.Sum("amount", []RowID{0, 2, 4})
	if err != nil || total != 0+1+2 {
		t.Errorf("Sum = %g, %v", total, err)
	}
	if _, err := tbl.Sum("missing", nil); err == nil {
		t.Error("unknown sum column accepted")
	}
}

func TestIndexThroughFacade(t *testing.T) {
	_, tbl := openLoaded(t, 100)
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("missing"); err == nil {
		t.Error("unknown index column accepted")
	}
	p, _ := tbl.Eq("id", Int(42))
	res, err := tbl.Select(nil, []Predicate{p})
	if err != nil || len(res.IDs) != 1 || res.IDs[0] != 42 {
		t.Errorf("indexed select = %v, %v", res, err)
	}
}

func TestFrontierThroughFacade(t *testing.T) {
	_, tbl := openLoaded(t, 1000)
	p1, _ := tbl.Eq("region", Int(1))
	p2, _ := tbl.Eq("id", Int(3))
	for i := 0; i < 10; i++ {
		tbl.Select(nil, []Predicate{p1})
		tbl.Select(nil, []Predicate{p1, p2})
	}
	points, err := tbl.Frontier([]float64{0, 0.25, 0.5, 0.75, 1}, MethodILP)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].RelativePerformance < points[i-1].RelativePerformance-1e-9 {
			t.Error("frontier not monotone")
		}
	}
	if _, err := tbl.Frontier([]float64{0.5}, MethodFrequency); err == nil {
		t.Error("heuristic frontier accepted")
	}
}

func TestSolveStandalone(t *testing.T) {
	w := &Workload{
		Columns: []WorkloadColumn{
			{Name: "a", Size: 100, Selectivity: 0.01},
			{Name: "b", Size: 100, Selectivity: 0.5},
		},
		Queries: []WorkloadQuery{{Columns: []int{0, 1}, Frequency: 10}},
	}
	for _, m := range []Method{MethodILP, MethodExplicit, MethodFilling, MethodGreedyRatio,
		MethodFrequency, MethodSelectivity, MethodSelectivityFrequency} {
		l, err := Solve(w, PlacementOptions{Budget: 100, Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if l.Memory > 100 {
			t.Errorf("%s: memory %d over budget", m, l.Memory)
		}
		if m.String() == "" {
			t.Error("empty method name")
		}
	}
	if _, err := Solve(w, PlacementOptions{Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Solve(w, PlacementOptions{Current: []bool{true}}); err == nil {
		t.Error("mismatched current accepted")
	}
}

func TestReallocationThroughFacade(t *testing.T) {
	_, tbl := openLoaded(t, 1000)
	p1, _ := tbl.Eq("region", Int(1))
	for i := 0; i < 20; i++ {
		tbl.Select(nil, []Predicate{p1})
	}
	// With a prohibitive beta the recommendation keeps the current
	// (all-DRAM) layout for columns that fit.
	layout, err := tbl.RecommendLayout(PlacementOptions{
		RelativeBudget: 1.0,
		Method:         MethodILP,
		Beta:           1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range layout.InDRAM {
		if !in {
			t.Errorf("column %d evicted despite prohibitive beta and full budget", i)
		}
	}
}

func TestFileBackedDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	db, err := Open(Config{Device: "CSSD", PageFile: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", testFields())
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 100)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Int(int64(i % 3)), Float(1), String("f")}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	layout, err := Solve(&Workload{
		Columns: []WorkloadColumn{
			{Name: "id", Size: 800, Selectivity: 0.01},
			{Name: "region", Size: 800, Selectivity: 0.33},
			{Name: "amount", Size: 800, Selectivity: 0.5},
			{Name: "note", Size: 1600, Selectivity: 1},
		},
		Queries: []WorkloadQuery{{Columns: []int{0}, Frequency: 10}},
	}, PlacementOptions{Budget: 900, Method: MethodILP})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	row, err := tbl.Get(42)
	if err != nil || row[0].Int() != 42 {
		t.Errorf("file-backed Get = %v, %v", row, err)
	}
	if db.Clock().Reads() == 0 {
		t.Error("no timed page reads recorded")
	}
}

func TestVirtualClockAccumulates(t *testing.T) {
	db, tbl := openLoaded(t, 2000)
	layout, err := tbl.RecommendLayout(PlacementOptions{RelativeBudget: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	db.Clock().Reset()
	for i := 0; i < 10; i++ {
		if _, err := tbl.Get(RowID(i * 100)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Clock().Elapsed() == 0 {
		t.Error("clock did not advance on tiered reconstruction")
	}
}
