package tierdb

import (
	"fmt"

	"tierdb/internal/core"
	"tierdb/internal/forecast"
	"tierdb/internal/persist"
	"tierdb/internal/table"
	"tierdb/internal/workload"
)

// ForecastOptions tunes workload prediction (paper Section VI: feed the
// model with anticipated instead of historical query frequencies).
type ForecastOptions = forecast.Options

// Forecast methods.
const (
	// ForecastSES uses simple exponential smoothing.
	ForecastSES = forecast.MethodSES
	// ForecastHolt adds a linear trend (default).
	ForecastHolt = forecast.MethodHolt
	// ForecastLastWindow uses the newest window verbatim.
	ForecastLastWindow = forecast.MethodLastWindow
	// ForecastMean averages all windows.
	ForecastMean = forecast.MethodMean
)

// CloseWorkloadWindow freezes the current workload window into the
// table's history (moving-window tracking). Call it at fixed intervals
// — e.g. daily — so RecommendForecastLayout can extrapolate per-plan
// frequency trends.
func (t *Table) CloseWorkloadWindow() {
	t.history.CloseWindow()
}

// WorkloadWindows returns the number of closed workload windows.
func (t *Table) WorkloadWindows() int { return t.history.Windows() }

// RecommendForecastLayout predicts the next window's query frequencies
// from the table's workload history and optimizes the placement for the
// anticipated workload. At least one window must be closed.
func (t *Table) RecommendForecastLayout(opts PlacementOptions, fopts ForecastOptions) (Layout, error) {
	series := t.history.Series()
	if t.history.Windows() == 0 || len(series) == 0 {
		return Layout{}, fmt.Errorf("tierdb: no closed workload windows to forecast from")
	}
	pinnedIdx, err := t.resolve(opts.Pinned)
	if err != nil {
		return Layout{}, err
	}
	// Template: one query per distinct plan; frequencies filled by the
	// forecast.
	template := &core.Workload{Queries: make([]core.Query, len(series))}
	fseries := make([]forecast.Series, len(series))
	for i, s := range series {
		template.Queries[i] = core.Query{Columns: s.Columns, Frequency: 1}
		fseries[i] = forecast.Series(s.Counts)
	}
	s := t.inner.Schema()
	template.Columns = make([]core.Column, s.Len())
	for i := 0; i < s.Len(); i++ {
		template.Columns[i] = core.Column{
			Name:        s.Field(i).Name,
			Size:        t.inner.ColumnBytes(i),
			Selectivity: t.inner.Selectivity(i),
		}
		if template.Columns[i].Size <= 0 {
			template.Columns[i].Size = 1
		}
	}
	for _, p := range pinnedIdx {
		template.Columns[p].Pinned = true
	}
	predicted, err := forecast.PredictWorkload(template, fseries, fopts)
	if err != nil {
		return Layout{}, err
	}
	if opts.Beta > 0 && opts.Current == nil {
		opts.Current = t.inner.Layout()
	}
	opts.Pinned = nil
	return Solve(predicted, opts)
}

// Snapshot persists the table (schema, layout, index definitions, all
// visible rows) to a file; restore with DB.RestoreTable.
func (t *Table) Snapshot(path string) error {
	return persist.SaveFile(path, t.inner)
}

// RestoreTable loads a table snapshot into this database, re-tiering it
// onto the database's device and registering it under its saved name.
// With a WAL configured the restored table is made durable by an
// immediate checkpoint (its rows are not in the log).
func (db *DB) RestoreTable(path string) (*Table, error) {
	inner, err := persist.LoadFile(path, table.Options{
		Store:   db.store,
		Cache:   db.cache,
		Manager: db.mgr,
	})
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	if _, exists := db.tables[inner.Name()]; exists {
		db.mu.Unlock()
		return nil, fmt.Errorf("tierdb: table %q already exists", inner.Name())
	}
	t := newTableHandle(db, inner)
	db.tables[inner.Name()] = t
	db.mu.Unlock()
	if db.wal != nil {
		if err := db.Checkpoint(); err != nil {
			db.mu.Lock()
			delete(db.tables, inner.Name())
			db.mu.Unlock()
			return nil, fmt.Errorf("tierdb: restored table not durable: %w", err)
		}
	}
	return t, nil
}

// CreateCompositeIndex builds a DRAM-resident multi-column index over
// the named columns (order-preserving key encoding over a B+-tree).
func (t *Table) CreateCompositeIndex(columns ...string) error {
	cols, err := t.resolve(columns)
	if err != nil {
		return err
	}
	if err := t.inner.CreateCompositeIndex(cols); err != nil {
		return err
	}
	if t.db.wal != nil {
		return t.db.wal.AppendIndex(t.Name(), cols)
	}
	return nil
}

// LookupComposite returns the rows whose column tuple equals key, via a
// previously created composite index.
func (t *Table) LookupComposite(columns []string, key []Value) ([]RowID, error) {
	cols, err := t.resolve(columns)
	if err != nil {
		return nil, err
	}
	snapshot := t.db.mgr.LastCommit()
	return t.inner.LookupComposite(cols, key, snapshot, 0)
}

// newTableHandle wraps an engine table in the public handle (shared by
// CreateTable and RestoreTable).
func newTableHandle(db *DB, inner *table.Table) *Table {
	return &Table{
		db:      db,
		inner:   inner,
		plans:   workload.NewPlanCache(),
		history: workload.NewHistory(64),
		exec:    newExecutor(db, inner),
	}
}
