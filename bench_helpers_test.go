package tierdb

import (
	"math/rand"

	"tierdb/internal/amm"
	"tierdb/internal/device"
	"tierdb/internal/exec"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/tpcc"
)

// buildCachedORDERLINE builds a tiered ORDERLINE with an AMM cache
// sized to the given fraction of its SSCG pages. Returns the table, an
// executor, the clock, and a hit-rate probe.
func buildCachedORDERLINE(cacheFraction float64) (*table.Table, *exec.Executor, *storage.Clock, func() float64, error) {
	clock := &storage.Clock{}
	timed := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, clock, 1)
	// Size the cache against the expected SSCG page count; build the
	// table first without a cache to learn it, then rebuild with one.
	probe, err := tpcc.BuildOrderLine(tpcc.Config{Warehouses: 4, OrdersPerDistrict: 40},
		table.Options{Store: storage.NewMemStore()}, tpcc.LayoutForBudget(0.2))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pages := probe.Group().PageCount()
	frames := int(float64(pages) * cacheFraction)
	if frames < 1 {
		frames = 1
	}
	cache, err := amm.New(frames, timed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tbl, err := tpcc.BuildOrderLine(tpcc.Config{Warehouses: 4, OrdersPerDistrict: 40},
		table.Options{Store: timed, Cache: cache}, tpcc.LayoutForBudget(0.2))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	e := exec.New(tbl, exec.Options{Clock: clock})
	return tbl, e, clock, func() float64 { return cache.Stats().HitRate() }, nil
}

// newZipf returns a zipfian row-index generator.
func newZipf(rows int) func() int {
	rng := rand.New(rand.NewSource(9))
	z := rand.NewZipf(rng, 1.2, 1, uint64(rows-1))
	return func() int { return int(z.Uint64()) }
}
