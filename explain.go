package tierdb

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"tierdb/internal/exec"
	"tierdb/internal/explain"
	"tierdb/internal/metrics"
	"tierdb/internal/trace"
)

// ExplainPlan is the structured EXPLAIN/ANALYZE result: one node per
// operator with modeled cost from the advisor's own model, observed
// execution detail in ANALYZE mode, and a placement attribution
// section pricing the live layout against the advisor's recommendation
// (the regret of the current placement). See internal/explain.
type ExplainPlan = explain.Plan

// ExplainSpec is the stringly-typed predicate form EXPLAIN accepts
// over the wire, via /explain and from tierctl; the table resolves
// values against its schema.
type ExplainSpec = explain.PredicateSpec

// RenderExplain renders a plan as the human-readable tree tierctl
// explain and /explain?format=text print.
func RenderExplain(p *ExplainPlan) string { return explain.RenderText(p) }

// Explain plans the query without executing it: the returned plan
// carries the filter ordering, access paths and modeled costs the
// executor would use, plus the placement attribution section. Nothing
// is charged, recorded or captured.
func (t *Table) Explain(predicates []Predicate, project ...string) (*ExplainPlan, error) {
	q, err := t.resolveQuery(predicates, project)
	if err != nil {
		return nil, err
	}
	tr, err := t.exec.Explain(q)
	if err != nil {
		return nil, err
	}
	return t.buildExplain(explain.ModeExplain, q, predicates, tr, 0, "")
}

// SelectExplained is Select plus an ANALYZE plan: the query executes
// normally (feeding the plan cache and observed selectivities exactly
// like Select) and the plan annotates every operator with observed
// wall time, rows, page reads and selectivity next to the modeled
// numbers. EXPLAIN is strictly opt-in — plain Select never pays for it.
func (t *Table) SelectExplained(tx *Tx, predicates []Predicate, project ...string) (*SelectResult, *ExplainPlan, error) {
	return t.SelectExplainedCtx(context.Background(), tx, predicates, project...)
}

// SelectExplainedCtx is SelectExplained with a context; a sampled
// request span carried by ctx links the plan to the trace tree via
// its trace id.
func (t *Table) SelectExplainedCtx(ctx context.Context, tx *Tx, predicates []Predicate, project ...string) (*SelectResult, *ExplainPlan, error) {
	q, err := t.prepQuery(predicates, project)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	res, tr, err := t.exec.RunTracedCtx(ctx, q, tx)
	if err != nil {
		return nil, nil, err
	}
	wall := time.Since(start).Nanoseconds()
	traceID := ""
	if span := trace.FromContext(ctx); span != nil {
		traceID = span.Trace.String()
	}
	plan, err := t.buildExplain(explain.ModeAnalyze, q, predicates, tr, wall, traceID)
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}

// Explain runs EXPLAIN (analyze=false) or EXPLAIN ANALYZE
// (analyze=true) for a query given in wire form: predicate values as
// strings, resolved against the named table's schema. This is the
// entry point the network server, the observability endpoint and
// tierctl share.
func (db *DB) Explain(ctx context.Context, table string, specs []ExplainSpec, project []string, analyze bool) (*ExplainPlan, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	preds := make([]Predicate, 0, len(specs))
	for _, s := range specs {
		p, err := t.compileSpec(s)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	if !analyze {
		return t.Explain(preds, project...)
	}
	_, plan, err := t.SelectExplainedCtx(ctx, nil, preds, project...)
	return plan, err
}

// compileSpec resolves one wire-form predicate against the schema,
// parsing operands by the column's type.
func (t *Table) compileSpec(s ExplainSpec) (Predicate, error) {
	c := t.inner.Schema().IndexOf(s.Column)
	if c < 0 {
		return Predicate{}, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), s.Column)
	}
	typ := t.inner.Schema().Field(c).Type
	parse := func(raw string) (Value, error) {
		switch typ {
		case Int64Type:
			n, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("tierdb: column %s: bad int64 %q", s.Column, raw)
			}
			return Int(n), nil
		case Float64Type:
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return Value{}, fmt.Errorf("tierdb: column %s: bad float64 %q", s.Column, raw)
			}
			return Float(f), nil
		default:
			return String(raw), nil
		}
	}
	switch s.Op {
	case "eq", "":
		v, err := parse(s.Value)
		if err != nil {
			return Predicate{}, err
		}
		return t.Eq(s.Column, v)
	case "between":
		lo, err := parse(s.Value)
		if err != nil {
			return Predicate{}, err
		}
		hi, err := parse(s.Hi)
		if err != nil {
			return Predicate{}, err
		}
		return t.Between(s.Column, lo, hi)
	default:
		return Predicate{}, fmt.Errorf("tierdb: unknown predicate op %q (want eq or between)", s.Op)
	}
}

// renderPredicate renders a resolved predicate for plan nodes.
func (t *Table) renderPredicate(p Predicate) string {
	name := t.inner.Schema().Field(p.Column).Name
	if p.Op == exec.Between {
		return fmt.Sprintf("%s between %s and %s", name, p.Value, p.Hi)
	}
	return fmt.Sprintf("%s = %s", name, p.Value)
}

// buildExplain assembles the plan: the advisor's solve (adviseInputs,
// with its zero-value defaults) supplies the model selectivities,
// sizes, live placement and recommended placement, so the placement
// section prices exactly what /layout/advisor would recommend right
// now; the executor's trace supplies the operators.
func (t *Table) buildExplain(mode explain.Mode, q exec.Query, preds []Predicate, tr *metrics.Trace, wallNs int64, traceID string) (*ExplainPlan, error) {
	t.db.registry.Counter("explain.plans").Inc()
	if mode == explain.ModeAnalyze {
		t.db.registry.Counter("explain.analyze").Inc()
	}
	in, err := t.adviseInputs(AdvisorQuery{})
	if err != nil {
		return nil, err
	}
	cols := make([]explain.ColumnInput, len(in.w.Columns))
	for i, c := range in.w.Columns {
		cols[i] = explain.ColumnInput{
			Name:              c.Name,
			SizeBytes:         c.Size,
			Selectivity:       c.Selectivity,
			SelectivitySource: in.sources[i],
			ObservedSamples:   in.samples[i],
			InDRAM:            in.current[i],
			Recommended:       in.alloc.InDRAM[i],
		}
	}
	// Distinct predicate columns, first-occurrence order: the model
	// prices each column once however many predicates touch it.
	seen := make(map[int]bool, len(q.Predicates))
	qcols := make([]int, 0, len(q.Predicates))
	displays := make([]explain.PredicateDisplay, 0, len(preds))
	for _, p := range q.Predicates {
		if !seen[p.Column] {
			seen[p.Column] = true
			qcols = append(qcols, p.Column)
		}
	}
	for _, p := range preds {
		displays = append(displays, explain.PredicateDisplay{Column: p.Column, Text: t.renderPredicate(p)})
	}
	return explain.Build(explain.Input{
		Table:          t.inner.Name(),
		Mode:           mode,
		Device:         tr.Device,
		Parallelism:    tr.Parallelism,
		ProbeThreshold: tr.ProbeThreshold,
		Costs:          in.costs,
		Columns:        cols,
		QueryColumns:   qcols,
		ProjectColumns: q.Project,
		Predicates:     displays,
		Trace:          tr,
		WallNs:         wallNs,
		TraceID:        traceID,
	})
}
