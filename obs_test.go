package tierdb

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"tierdb/internal/obsrv"
)

func obsGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestObservabilityEndToEnd boots a DB with the observability server on
// a random port, drives a skewed workload, and checks every endpoint
// against the acceptance criteria: /metrics parses as Prometheus text
// exposition, /workload reports the captured model inputs, /traces is
// bounded, and /layout/advisor returns a recommendation that differs
// from the current layout, whose modeled costs match the core model,
// and which ApplyLayout applies verbatim.
func TestObservabilityEndToEnd(t *testing.T) {
	db, err := Open(Config{
		Device:             "3D XPoint",
		CacheFrames:        64,
		ObsAddr:            "127.0.0.1:0",
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		TraceRingSize:      16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	base := db.ObsURL()
	if base == "" {
		t.Fatal("ObsURL empty with ObsAddr set")
	}

	tbl, err := db.CreateTable("orders", testFields())
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 5000)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Int(int64(i % 8)), Float(float64(i) / 2), String("n")}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	// Skewed workload: the region column dominates the plan cache, so a
	// tight budget must keep it resident and evict the rest.
	region, err := tbl.Eq("region", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := tbl.Select(nil, []Predicate{region}, "amount"); err != nil {
			t.Fatal(err)
		}
	}

	// /metrics must be valid Prometheus exposition.
	code, body := obsGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if err := obsrv.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}

	// /stats.json round-trips the snapshot.
	code, body = obsGet(t, base+"/stats.json")
	if code != http.StatusOK {
		t.Fatalf("/stats.json: status %d", code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/stats.json: %v", err)
	}
	if snap.Counters["exec.queries"] < 30 {
		t.Errorf("exec.queries = %d, want >= 30", snap.Counters["exec.queries"])
	}
	if snap.Counters["selectivity.samples"] < 30 {
		t.Errorf("selectivity.samples = %d, want >= 30", snap.Counters["selectivity.samples"])
	}

	// /traces holds at most TraceRingSize entries, newest first; the
	// 1ns threshold routes everything into the slow ring too.
	for _, path := range []string{"/traces", "/traces?slow=1"} {
		code, body = obsGet(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", path, code)
		}
		var reply struct {
			Added   uint64            `json:"added"`
			Entries []json.RawMessage `json:"entries"`
		}
		if err := json.Unmarshal(body, &reply); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if reply.Added < 30 {
			t.Errorf("%s: added %d, want >= 30", path, reply.Added)
		}
		if len(reply.Entries) != 16 {
			t.Errorf("%s: %d entries, want the ring bound 16", path, len(reply.Entries))
		}
	}

	// /workload reports the model inputs including observed EWMAs.
	code, body = obsGet(t, base+"/workload")
	if code != http.StatusOK {
		t.Fatalf("/workload: status %d", code)
	}
	var wl struct {
		Tables []TableWorkloadReport `json:"tables"`
	}
	if err := json.Unmarshal(body, &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Tables) != 1 || wl.Tables[0].Table != "orders" {
		t.Fatalf("/workload: %+v", wl)
	}
	regionCol := wl.Tables[0].Columns[1]
	if regionCol.Name != "region" || regionCol.AccessCount < 30 {
		t.Errorf("region column report: %+v", regionCol)
	}
	if regionCol.ObservedSamples < 30 || math.Abs(regionCol.ObservedSelectivity-0.125) > 1e-9 {
		t.Errorf("region observed selectivity: %+v (want 1/8 with >= 30 samples)", regionCol)
	}
	if len(wl.Tables[0].Plans) != 1 || wl.Tables[0].Plans[0].Count != 30 {
		t.Errorf("plan cache report: %+v", wl.Tables[0].Plans)
	}

	// Put the table into a deliberately bad placement — the hot region
	// column evicted, cold columns resident — then ask the advisor
	// whether the same bytes could be spent better (budget 0 = current
	// footprint).
	if err := tbl.ApplyLayout(Layout{InDRAM: []bool{true, false, true, true}}); err != nil {
		t.Fatal(err)
	}
	code, body = obsGet(t, base+"/layout/advisor?table=orders")
	if code != http.StatusOK {
		t.Fatalf("/layout/advisor: status %d: %s", code, body)
	}
	var adv struct {
		Reports []*AdvisorReport `json:"reports"`
	}
	if err := json.Unmarshal(body, &adv); err != nil {
		t.Fatal(err)
	}
	if len(adv.Reports) != 1 {
		t.Fatalf("advisor reports: %d", len(adv.Reports))
	}
	rep := adv.Reports[0]
	if !rep.Changed {
		t.Fatal("advisor found nothing to change in a layout with the hot column evicted")
	}
	if !rep.Recommended.InDRAM[1] {
		t.Error("advisor evicted the hot region column")
	}
	if rep.ObservedColumns < 1 || rep.Columns[1].SelectivitySource != "observed" {
		t.Errorf("advisor ignored observed selectivity: %+v", rep.Columns[1])
	}
	if rep.Recommended.ModeledCost >= rep.Current.ModeledCost {
		t.Errorf("recommendation does not improve: cur=%g rec=%g", rep.Current.ModeledCost, rep.Recommended.ModeledCost)
	}

	// The modeled costs must match the core model run independently on
	// the same inputs (observed selectivities, same budget).
	w, err := tbl.ExtractWorkload(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Columns {
		if sel, n := tbl.Inner().ObservedSelectivity(i); n >= DefaultAdvisorMinSamples {
			w.Columns[i].Selectivity = sel
		}
	}
	want, err := Solve(w, PlacementOptions{Budget: rep.BudgetBytes, Method: MethodExplicit})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want.EstimatedCost-rep.Recommended.ModeledCost) > 1e-9*math.Max(1, want.EstimatedCost) {
		t.Errorf("advisor cost %g != core cost %g", rep.Recommended.ModeledCost, want.EstimatedCost)
	}
	if math.Abs((rep.Recommended.ModeledCost-rep.Current.ModeledCost)-rep.CostDelta) > 1e-9 {
		t.Errorf("cost delta inconsistent: %g", rep.CostDelta)
	}

	// The recommendation applies verbatim.
	if err := tbl.ApplyLayout(Layout{InDRAM: rep.Recommended.InDRAM}); err != nil {
		t.Fatalf("ApplyLayout(recommendation): %v", err)
	}
	got := tbl.Layout()
	for i := range got {
		if got[i] != rep.Recommended.InDRAM[i] {
			t.Fatalf("layout after apply differs at column %d", i)
		}
	}
	// Queries still answer correctly on the re-tiered table.
	res, err := tbl.Select(nil, []Predicate{region}, "amount")
	if err != nil || len(res.IDs) != 5000/8 {
		t.Fatalf("select after re-tiering: %v, %d rows", err, len(res.IDs))
	}
	// Re-advising under the same budget is now a no-op.
	again, err := tbl.Advise(AdvisorQuery{BudgetBytes: rep.BudgetBytes})
	if err != nil {
		t.Fatal(err)
	}
	if again.Changed {
		t.Errorf("advisor wants further changes right after applying its advice: %+v", again.Recommended)
	}

	// pprof and the index answer.
	if code, _ := obsGet(t, base+"/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Errorf("pprof: status %d", code)
	}
	if code, _ := obsGet(t, base+"/"); code != http.StatusOK {
		t.Errorf("index: status %d", code)
	}
}

// TestObservabilityDisabledCapture proves DisableCapture: no rings, no
// EWMAs, but the server still answers.
func TestObservabilityDisabledCapture(t *testing.T) {
	db, err := Open(Config{ObsAddr: "127.0.0.1:0", DisableCapture: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", testFields())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.BulkLoad([][]Value{{Int(1), Int(2), Float(3), String("a")}}); err != nil {
		t.Fatal(err)
	}
	p, err := tbl.Eq("region", Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Select(nil, []Predicate{p}); err != nil {
		t.Fatal(err)
	}
	if _, n := tbl.Inner().ObservedSelectivity(1); n != 0 {
		t.Errorf("capture disabled but %d selectivity samples recorded", n)
	}
	if code, _ := obsGet(t, db.ObsURL()+"/traces"); code != http.StatusNotFound {
		t.Errorf("/traces with capture disabled: status %d, want 404", code)
	}
	if code, _ := obsGet(t, db.ObsURL()+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics with capture disabled: status %d", code)
	}
}
