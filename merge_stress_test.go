package tierdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// stressFields is the schema for the merge stress tests: a unique key,
// a low-cardinality region, and a payload string.
func stressFields() []Field {
	return []Field{
		{Name: "k", Type: Int64Type},
		{Name: "region", Type: Int64Type},
		{Name: "note", Type: StringType, Width: 8},
	}
}

func stressRow(k int64) []Value {
	return []Value{Int(k), Int(k % 7), String(fmt.Sprintf("n%d", k%5))}
}

// mustMerge folds the delta, retrying while a scheduler-started merge
// of the same table drains.
func mustMerge(t *testing.T, tbl *Table) {
	t.Helper()
	for {
		err := tbl.Merge()
		if err == nil {
			return
		}
		if !errors.Is(err, ErrMergeInProgress) {
			t.Fatalf("merge: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMergeSchedulerConcurrentStress runs N insert-only writers and M
// snapshot readers against a table whose merge scheduler is armed with a
// low row threshold, so several online merge cycles overlap the
// workload. Assertions are interleaving-independent:
//
//   - every reader repeats the same traced query inside one transaction
//     and must see identical row counts both times (snapshot
//     consistency across any merges that completed in between), and the
//     count must be a multiple of the per-key insert pattern;
//   - after the workload drains and a final manual merge folds the
//     delta, the table holds exactly initial + inserts − deletes rows
//     with the delta empty.
func TestMergeSchedulerConcurrentStress(t *testing.T) {
	const (
		writers   = 4
		readers   = 3
		perWriter = 300
		initial   = 500
		rounds    = 8
	)
	db, err := Open(Config{Device: "CSSD", CacheFrames: 256, MergeDeltaRows: 150, MergeInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("stress", stressFields())
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, initial)
	for i := range rows {
		rows[i] = stressRow(int64(i))
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Inner().ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, writers+readers+1)
	var wg sync.WaitGroup

	// Writers: disjoint key ranges, insert-only during the race phase.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(initial + w*perWriter)
			for i := int64(0); i < perWriter; i++ {
				if err := tbl.Insert(stressRow(base + i)); err != nil {
					errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
				if i%64 == 0 {
					if err := tbl.MergeAsync(); err != nil {
						errs <- fmt.Errorf("writer %d MergeAsync: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Readers: each round opens a transaction, runs the same traced
	// query twice and demands identical results — whatever merges or
	// inserts landed in between must be invisible inside the snapshot.
	region, err := tbl.Eq("region", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				tx := db.Begin()
				res1, _, err := tbl.SelectTraced(tx, []Predicate{region}, "k")
				if err != nil {
					errs <- fmt.Errorf("reader %d round %d first select: %w", r, round, err)
					return
				}
				res2, _, err := tbl.SelectTraced(tx, []Predicate{region}, "k")
				if err != nil {
					errs <- fmt.Errorf("reader %d round %d second select: %w", r, round, err)
					return
				}
				if len(res1.IDs) != len(res2.IDs) {
					errs <- fmt.Errorf("reader %d round %d: snapshot drifted, %d then %d rows",
						r, round, len(res1.IDs), len(res2.IDs))
					return
				}
				if err := db.Abort(tx); err != nil {
					errs <- fmt.Errorf("reader %d round %d abort: %w", r, round, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiescent phase: delete every 10th seed row (writers are done, so
	// RowIDs from a fresh query are stable until the next merge).
	mustMerge(t, tbl)
	all, err := tbl.Select(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	deletes := 0
	tx := db.Begin()
	for _, id := range all.IDs {
		k, err := tbl.GetValue(id, "k")
		if err != nil {
			t.Fatal(err)
		}
		if k.Int() < initial && k.Int()%10 == 0 {
			if err := tbl.Delete(tx, id); err != nil {
				t.Fatal(err)
			}
			deletes++
		}
	}
	if err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}

	// Final merge and exact accounting.
	mustMerge(t, tbl)
	want := initial + writers*perWriter - deletes
	if got := tbl.Rows(); got != want {
		t.Errorf("Rows = %d, want %d (%d initial + %d inserted - %d deleted)",
			got, want, initial, writers*perWriter, deletes)
	}
	if got := tbl.Inner().DeltaRows(); got != 0 {
		t.Errorf("DeltaRows after final merge = %d, want 0", got)
	}
	if tbl.Merging() {
		t.Error("Merging() true after final merge")
	}
	// Every key must be present exactly once.
	final, err := tbl.Select(nil, nil, "k")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, len(final.Rows))
	for _, row := range final.Rows {
		k := row[0].Int()
		if seen[k] {
			t.Fatalf("key %d appears twice after merges", k)
		}
		seen[k] = true
	}
	for k := int64(0); k < int64(initial+writers*perWriter); k++ {
		wantGone := k < initial && k%10 == 0
		if seen[k] == wantGone {
			t.Errorf("key %d: present=%v, want %v", k, seen[k], !wantGone)
		}
	}
}

// TestMergeAsyncAfterCloseAndShutdown exercises the scheduler's
// lifecycle: MergeAsync works while open, Close waits for the in-flight
// merge, and MergeAsync after Close reports ErrClosed. Close is safe to
// call twice.
func TestMergeAsyncAfterCloseAndShutdown(t *testing.T) {
	db, err := Open(Config{Device: "CSSD"})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("lifecycle", stressFields())
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 50; k++ {
		if err := tbl.Insert(stressRow(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.MergeAsync(); err != nil {
		t.Fatalf("MergeAsync while open: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The queued merge either completed before shutdown or was dropped;
	// either way the table still answers reads consistently.
	if got := tbl.Rows(); got != 50 {
		t.Errorf("Rows after close = %d, want 50", got)
	}
	if err := tbl.MergeAsync(); err != ErrClosed {
		t.Errorf("MergeAsync after close: %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
