package tierdb

import (
	"fmt"
	"sort"

	"tierdb/internal/core"
)

// GlobalLayout is a database-wide placement: one layout per table,
// computed from a single shared DRAM budget.
type GlobalLayout struct {
	// PerTable maps table names to their recommended layouts.
	PerTable map[string]Layout
	// Memory is the summed DRAM use of all placements.
	Memory int64
	// EstimatedCost is the summed modeled scan cost.
	EstimatedCost float64
}

// RecommendGlobalLayout optimizes the placement of every table's
// columns against one shared DRAM budget (paper Section III-G:
// "Enterprise systems often have thousands of tables. For those
// systems, it is unrealistic to expect that the database administrator
// will set memory budgets for each table manually."). All tables'
// workloads are combined into a single column selection problem —
// columns are namespaced by table, queries keep their per-table column
// sets — and solved jointly, so DRAM flows to whichever table's columns
// buy the most performance per byte.
//
// opts.Budget/RelativeBudget applies to the union of all tables;
// opts.Pinned is not supported here (pin per table via the workload).
func (db *DB) RecommendGlobalLayout(opts PlacementOptions) (GlobalLayout, error) {
	db.mu.Lock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	tables := make([]*Table, len(names))
	for i, name := range names {
		tables[i] = db.tables[name]
	}
	db.mu.Unlock()
	if len(tables) == 0 {
		return GlobalLayout{}, fmt.Errorf("tierdb: no tables to optimize")
	}
	if len(opts.Pinned) > 0 {
		return GlobalLayout{}, fmt.Errorf("tierdb: global optimization does not take name-based pins; pin via per-table workloads")
	}

	// Combine the per-table workloads, offsetting column indexes.
	combined := &Workload{}
	offsets := make([]int, len(tables))
	for i, t := range tables {
		w, err := t.ExtractWorkload(nil)
		if err != nil {
			return GlobalLayout{}, fmt.Errorf("tierdb: extract workload of %s: %w", t.Name(), err)
		}
		offsets[i] = len(combined.Columns)
		for ci, c := range w.Columns {
			c.Name = t.Name() + "." + c.Name
			_ = ci
			combined.Columns = append(combined.Columns, c)
		}
		for _, q := range w.Queries {
			cols := make([]int, len(q.Columns))
			for j, c := range q.Columns {
				cols[j] = c + offsets[i]
			}
			combined.Queries = append(combined.Queries, core.Query{Columns: cols, Frequency: q.Frequency})
		}
	}

	solved, err := Solve(combined, opts)
	if err != nil {
		return GlobalLayout{}, err
	}

	out := GlobalLayout{PerTable: make(map[string]Layout, len(tables))}
	costs := core.DefaultCostParams()
	if opts.Costs.CMM != 0 || opts.Costs.CSS != 0 {
		costs = opts.Costs
	}
	for i, t := range tables {
		n := t.Inner().Schema().Len()
		in := make([]bool, n)
		copy(in, solved.InDRAM[offsets[i]:offsets[i]+n])
		// Evaluate the per-table slice against its own workload for
		// reporting.
		w, err := t.ExtractWorkload(nil)
		if err != nil {
			return GlobalLayout{}, err
		}
		cost := core.ScanCost(w, costs, in)
		mem := core.MemoryUsed(w, in)
		layout := Layout{
			InDRAM:        in,
			EstimatedCost: cost,
			Memory:        mem,
			RelativePerformance: core.RelativePerformance(w, costs, core.Allocation{
				InDRAM: in, Cost: cost, Memory: mem,
			}),
		}
		out.PerTable[t.Name()] = layout
		out.Memory += mem
		out.EstimatedCost += cost
	}
	return out, nil
}

// ApplyGlobalLayout re-tiers every table to its slice of the global
// placement.
func (db *DB) ApplyGlobalLayout(g GlobalLayout) error {
	for name, layout := range g.PerTable {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		if err := t.ApplyLayout(layout); err != nil {
			return fmt.Errorf("tierdb: apply layout to %s: %w", name, err)
		}
	}
	return nil
}
