package tierdb

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (delegating to internal/experiments, which prints the same
// rows the paper reports), micro-benchmarks of the hot paths, and
// ablation benchmarks for the design choices called out in DESIGN.md.
// Ablations report their quality metric (cost or slowdown ratios) via
// b.ReportMetric.

import (
	"fmt"
	"testing"
	"time"

	"tierdb/internal/core"
	"tierdb/internal/device"
	"tierdb/internal/dsm"
	"tierdb/internal/exec"
	"tierdb/internal/experiments"
	"tierdb/internal/metrics"
	"tierdb/internal/schema"
	"tierdb/internal/solver"
	"tierdb/internal/sscg"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/tpcc"
	"tierdb/internal/value"
)

// benchReport runs one experiment per iteration; the report itself is
// the artifact (use cmd/benchrunner to print it).
func benchReport(b *testing.B, f func(int64) (*experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f(42)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// --- Paper tables and figures -------------------------------------------

func BenchmarkTable1ERPFilterSkew(b *testing.B) { benchReport(b, experiments.Table1) }
func BenchmarkFig3BSEGFrontier(b *testing.B)    { benchReport(b, experiments.Fig3) }
func BenchmarkFig4HeuristicGap(b *testing.B)    { benchReport(b, experiments.Fig4) }
func BenchmarkFig5InteractionGap(b *testing.B)  { benchReport(b, experiments.Fig5) }
func BenchmarkFig6SolutionStructure(b *testing.B) {
	benchReport(b, experiments.Fig6)
}
func BenchmarkTable2SolverScalability(b *testing.B) {
	benchReport(b, func(int64) (*experiments.Report, error) { return experiments.Table2(false) })
}
func BenchmarkTable3EndToEnd(b *testing.B) { benchReport(b, experiments.Table3) }
func BenchmarkFig7ReconstructionSweep(b *testing.B) {
	benchReport(b, experiments.Fig7)
}
func BenchmarkFig8TableShapes(b *testing.B) { benchReport(b, experiments.Fig8) }
func BenchmarkFig9aScanning(b *testing.B)   { benchReport(b, experiments.Fig9a) }
func BenchmarkFig9bProbing(b *testing.B)    { benchReport(b, experiments.Fig9b) }
func BenchmarkTable4Slowdowns(b *testing.B) { benchReport(b, experiments.Table4) }

// --- Micro-benchmarks of the hot paths -----------------------------------

func benchWorkload(b *testing.B, n, q int) *core.Workload {
	b.Helper()
	w, err := core.Example1(core.Example1Config{Columns: n, Queries: q, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkCoefficients(b *testing.B) {
	w := benchWorkload(b, 1000, 10000)
	p := core.DefaultCostParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Coefficients(w, p)
	}
}

func BenchmarkExplicitSolve(b *testing.B) {
	w := benchWorkload(b, 1000, 10000)
	p := core.DefaultCostParams()
	budget := int64(0.5 * float64(w.TotalSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExplicitForBudget(w, p, budget, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKnapsackSolve(b *testing.B) {
	w := benchWorkload(b, 500, 5000)
	p := core.DefaultCostParams()
	coeff := core.Coefficients(w, p)
	items := make([]solver.Item, len(w.Columns))
	for i, c := range w.Columns {
		items[i] = solver.Item{Value: -float64(c.Size) * coeff[i], Weight: c.Size}
	}
	budget := int64(0.5 * float64(w.TotalSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Knapsack01Opts(items, budget, solver.Options{RelativeGap: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable(b *testing.B, rows int, layout []bool) (*table.Table, *exec.Executor, *storage.Clock) {
	b.Helper()
	s := schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "a", Type: value.Int64},
		{Name: "b", Type: value.Int64},
		{Name: "payload", Type: value.String, Width: 32},
	})
	clock := &storage.Clock{}
	store := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, clock, 1)
	tbl, err := table.New("bench", s, table.Options{Store: store})
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]value.Value, rows)
	for i := range data {
		data[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 100)),
			value.NewInt(int64(i % 1000)),
			value.NewString(fmt.Sprintf("payload-%08d", i)),
		}
	}
	if err := tbl.BulkAppend(data); err != nil {
		b.Fatal(err)
	}
	if layout == nil {
		layout = []bool{true, true, true, true}
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		b.Fatal(err)
	}
	return tbl, exec.New(tbl, exec.Options{Clock: clock}), clock
}

func BenchmarkMRCScanEqual(b *testing.B) {
	tbl, e, _ := benchTable(b, 100000, nil)
	q := exec.Query{Predicates: []exec.Predicate{{Column: 1, Op: exec.Eq, Value: value.NewInt(42)}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(q, nil); err != nil {
			b.Fatal(err)
		}
	}
	_ = tbl
}

// BenchmarkParallelMRCScan measures the morsel-driven executor on a
// 1 M row MRC range scan at increasing worker counts. The headline
// metrics are on the virtual clock (the repo's "measured" runtime):
// modeled_ns per scan and the modeled speedup over Parallelism=1,
// which reaches ~4x at 4 workers where the DRAM bandwidth model
// saturates.
func BenchmarkParallelMRCScan(b *testing.B) {
	tbl, _, clock := benchTable(b, 1_000_000, nil)
	q := exec.Query{Predicates: []exec.Predicate{
		{Column: 2, Op: exec.Between, Value: value.NewInt(100), Hi: value.NewInt(500)},
	}}
	serial := exec.New(tbl, exec.Options{Clock: clock, Parallelism: 1})
	clock.Reset()
	if _, err := serial.Run(q, nil); err != nil {
		b.Fatal(err)
	}
	base := clock.Elapsed()
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			e := exec.New(tbl, exec.Options{Clock: clock, Parallelism: par})
			var modeled time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Reset()
				if _, err := e.Run(q, nil); err != nil {
					b.Fatal(err)
				}
				modeled = clock.Elapsed()
			}
			b.ReportMetric(float64(modeled.Nanoseconds()), "modeled_ns")
			b.ReportMetric(float64(base)/float64(modeled), "modeled_speedup_x")
		})
	}
}

// BenchmarkMetricsOverhead measures what the observability layer costs
// on the hottest path — the 1 M row parallel MRC range scan of
// BenchmarkParallelMRCScan — in three configurations: metrics disabled
// (nil registry: every instrument is a nil no-op), metrics enabled
// (atomic counters on the batched operator paths), and enabled with a
// per-query trace. The acceptance budget is <5% wall-clock overhead
// for the enabled case and ~0 for disabled; compare the ns/op of the
// sub-benchmarks.
func BenchmarkMetricsOverhead(b *testing.B) {
	tbl, _, clock := benchTable(b, 1_000_000, nil)
	q := exec.Query{Predicates: []exec.Predicate{
		{Column: 2, Op: exec.Between, Value: value.NewInt(100), Hi: value.NewInt(500)},
	}}
	b.Run("disabled", func(b *testing.B) {
		e := exec.New(tbl, exec.Options{Clock: clock, Parallelism: 4})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		e := exec.New(tbl, exec.Options{Clock: clock, Parallelism: 4, Registry: metrics.NewRegistry()})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled+trace", func(b *testing.B) {
		e := exec.New(tbl, exec.Options{Clock: clock, Parallelism: 4, Registry: metrics.NewRegistry()})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.RunTraced(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObservedSelectivityOverhead isolates what runtime
// selectivity capture adds to the 1 M row parallel MRC range scan:
// per query it is one qualifying-fraction computation, one EWMA CAS on
// the table and one histogram observation per predicate — nothing per
// row. The ns/op delta between capture=off and capture=on must stay
// well inside the BenchmarkMetricsOverhead enabled budget (<5% wall
// clock); in practice it is noise (<1%).
func BenchmarkObservedSelectivityOverhead(b *testing.B) {
	tbl, _, clock := benchTable(b, 1_000_000, nil)
	q := exec.Query{Predicates: []exec.Predicate{
		{Column: 2, Op: exec.Between, Value: value.NewInt(100), Hi: value.NewInt(500)},
	}}
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"capture=off", true},
		{"capture=on", false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			e := exec.New(tbl, exec.Options{
				Clock:             clock,
				Parallelism:       4,
				Registry:          metrics.NewRegistry(),
				DisableSelCapture: tc.disable,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(q, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if _, n := tbl.ObservedSelectivity(2); !tc.disable && n == 0 {
				b.Fatal("capture=on recorded no samples")
			}
		})
	}
}

func BenchmarkConjunctiveQuery(b *testing.B) {
	_, e, _ := benchTable(b, 100000, nil)
	q := exec.Query{Predicates: []exec.Predicate{
		{Column: 2, Op: exec.Eq, Value: value.NewInt(77)},
		{Column: 1, Op: exec.Between, Value: value.NewInt(0), Hi: value.NewInt(50)},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleReconstructionDRAM(b *testing.B) {
	_, e, _ := benchTable(b, 100000, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reconstruct(uint64(i % 100000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleReconstructionTiered(b *testing.B) {
	_, e, _ := benchTable(b, 100000, []bool{true, false, false, false})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reconstruct(uint64(i % 100000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaInsert(b *testing.B) {
	tbl, _, _ := benchTable(b, 10, nil)
	mgr := tbl.Manager()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := mgr.Begin()
		err := tbl.Insert(tx, []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 100)),
			value.NewInt(int64(i % 1000)),
			value.NewString("inserted-payload-xx"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.Commit(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tbl, _, _ := benchTable(b, 20000, []bool{true, false, false, false})
		mgr := tbl.Manager()
		for j := 0; j < 1000; j++ {
			tx := mgr.Begin()
			if err := tbl.Insert(tx, []value.Value{
				value.NewInt(int64(100000 + j)), value.NewInt(1), value.NewInt(2), value.NewString("d"),
			}); err != nil {
				b.Fatal(err)
			}
			if _, err := mgr.Commit(tx); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := tbl.Merge(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 5) --------------------------------------

// BenchmarkAblationSelectionInteraction quantifies the paper's central
// modeling claim: ignoring selection interaction (frequency counting,
// H1) costs real performance. Reports the cost ratio H1/ILP as
// "costx".
func BenchmarkAblationSelectionInteraction(b *testing.B) {
	w := benchWorkload(b, 50, 500)
	p := core.DefaultCostParams()
	budget := int64(0.5 * float64(w.TotalSize()))
	var ratio float64
	for i := 0; i < b.N; i++ {
		opt, err := core.OptimalILP(w, p, budget)
		if err != nil {
			b.Fatal(err)
		}
		h1, err := core.SolveHeuristic(w, p, budget, core.HeuristicFrequency)
		if err != nil {
			b.Fatal(err)
		}
		ratio = h1.Cost / opt.Cost
	}
	b.ReportMetric(ratio, "costx")
}

// BenchmarkAblationProbeThreshold sweeps the scan-to-probe switch point
// and reports the modeled query time at each setting for a selective
// conjunction on a tiered column. With a threshold of 1 the executor
// always probes the few candidates (fast here); the paper's absolute
// default (0.01 % of the tuple count) assumes production-scale tables —
// at this scaled-down row count it falls below the candidate fraction
// and forces a full SSCG scan, which is exactly the trade-off the
// ablation quantifies.
func BenchmarkAblationProbeThreshold(b *testing.B) {
	for _, threshold := range []float64{1.0, 0.01, exec.DefaultProbeThreshold} {
		b.Run(fmt.Sprintf("threshold=%g", threshold), func(b *testing.B) {
			clock := &storage.Clock{}
			store := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, clock, 1)
			tbl, err := tpcc.BuildOrderLine(tpcc.Config{Warehouses: 4, OrdersPerDistrict: 40},
				table.Options{Store: store}, tpcc.LayoutForBudget(0.2))
			if err != nil {
				b.Fatal(err)
			}
			e := exec.New(tbl, exec.Options{Clock: clock, ProbeThreshold: threshold})
			q := exec.Query{Predicates: []exec.Predicate{
				{Column: tpcc.OLWarehouseID, Op: exec.Eq, Value: value.NewInt(1)},
				{Column: tpcc.OLDistrictID, Op: exec.Eq, Value: value.NewInt(1)},
				{Column: tpcc.OLOrderID, Op: exec.Eq, Value: value.NewInt(5)},
				{Column: tpcc.OLQuantity, Op: exec.Between, Value: value.NewInt(1), Hi: value.NewInt(5)},
			}}
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				clock.Reset()
				if _, err := e.Run(q, nil); err != nil {
					b.Fatal(err)
				}
				virtual = clock.Elapsed()
			}
			b.ReportMetric(float64(virtual.Microseconds()), "virtual_us")
		})
	}
}

// BenchmarkAblationSSCGRowFormat compares the SSCG's row-oriented
// uncompressed format against the "disastrous" alternative the paper
// motivates against: a disk-resident dictionary-encoded column store,
// where a full-width reconstruction reads two pages per attribute
// (value vector + dictionary). Reports the modeled page-read ratio.
func BenchmarkAblationSSCGRowFormat(b *testing.B) {
	const attrs = 100
	var ratio float64
	for i := 0; i < b.N; i++ {
		// SSCG: one page for the whole 800-byte row.
		sscgPages := 1
		// Disk-resident columnar: 2 page accesses per attribute.
		columnarPages := 2 * attrs
		ratio = float64(columnarPages) / float64(sscgPages)
	}
	b.ReportMetric(ratio, "pagereads_x")
	b.ReportMetric(float64(device.XPoint.RandomReadTime(int64(2*attrs), 1).Microseconds()), "columnar_us")
	b.ReportMetric(float64(device.XPoint.RandomReadTime(1, 1).Microseconds()), "sscg_us")
}

// BenchmarkAblationCacheSize sweeps the AMM page cache size under a
// zipfian tuple-reconstruction workload and reports the hit rate.
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, fraction := range []float64{0.001, 0.02, 0.1} {
		b.Run(fmt.Sprintf("cache=%g", fraction), func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				tbl, e, _, cacheStats, err := buildCachedORDERLINE(fraction)
				if err != nil {
					b.Fatal(err)
				}
				rng := newZipf(tbl.MainRows())
				for j := 0; j < 5000; j++ {
					if _, err := e.Reconstruct(uint64(rng())); err != nil {
						b.Fatal(err)
					}
				}
				hitRate = cacheStats()
			}
			b.ReportMetric(hitRate, "hitrate")
		})
	}
}

// BenchmarkAblationFillingHeuristic reports the cost gap between the
// pure explicit solution (largest Pareto prefix) and the filling
// variant of Remark 2 at a tight budget.
func BenchmarkAblationFillingHeuristic(b *testing.B) {
	w := benchWorkload(b, 50, 500)
	p := core.DefaultCostParams()
	budget := int64(0.25 * float64(w.TotalSize()))
	var gap float64
	for i := 0; i < b.N; i++ {
		explicit, err := core.ExplicitForBudget(w, p, budget, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		filling, err := core.FillingForBudget(w, p, budget, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		gap = explicit.Cost / filling.Cost
	}
	b.ReportMetric(gap, "explicit_vs_filling_costx")
}

// BenchmarkAblationSSCGVsDSM compares the paper's chosen row-oriented
// SSCG against the rejected alternative, a disk-resident decomposed
// (columnar, DSM) group, with both real implementations on the same
// modeled device: DSM scans one attribute with ~W times fewer page
// reads, but pays W page reads per full-width tuple reconstruction —
// the trade-off behind the paper's "simple model is superior" decision
// (Sections I-B, II-A).
func BenchmarkAblationSSCGVsDSM(b *testing.B) {
	const width = 20
	fields := make([]schema.Field, width)
	for i := range fields {
		fields[i] = schema.Field{Name: fmt.Sprintf("c%d", i), Type: value.Int64}
	}
	rows := make([][]value.Value, 20000)
	for r := range rows {
		row := make([]value.Value, width)
		for c := range row {
			row[c] = value.NewInt(int64(r*31 + c))
		}
		rows[r] = row
	}

	rowClock := &storage.Clock{}
	rowGroup, err := sscg.Build(fields, rows,
		storage.NewTimedStore(storage.NewMemStore(), device.XPoint, rowClock, 1), nil)
	if err != nil {
		b.Fatal(err)
	}
	dsmClock := &storage.Clock{}
	dsmGroup, err := dsm.Build(fields, rows,
		storage.NewTimedStore(storage.NewMemStore(), device.XPoint, dsmClock, 1), nil)
	if err != nil {
		b.Fatal(err)
	}

	pred := func(v value.Value) bool { return v.Int()%997 == 0 }
	var scanRatio, recRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rowClock.Reset()
		if _, err := rowGroup.Scan(5, pred, nil, nil); err != nil {
			b.Fatal(err)
		}
		sscgScan := rowClock.Reads()
		dsmClock.Reset()
		if _, err := dsmGroup.Scan(5, pred, nil, nil); err != nil {
			b.Fatal(err)
		}
		dsmScan := dsmClock.Reads()

		rowClock.Reset()
		if _, err := rowGroup.ReadRow(12345); err != nil {
			b.Fatal(err)
		}
		sscgRec := rowClock.Reads()
		dsmClock.Reset()
		if _, err := dsmGroup.ReadRow(12345); err != nil {
			b.Fatal(err)
		}
		dsmRec := dsmClock.Reads()

		scanRatio = float64(sscgScan) / float64(dsmScan)
		recRatio = float64(dsmRec) / float64(sscgRec)
	}
	b.ReportMetric(scanRatio, "scan_sscg_vs_dsm_x")
	b.ReportMetric(recRatio, "reconstruct_dsm_vs_sscg_x")
}
