package tierdb

import (
	"fmt"
	"testing"

	"tierdb/internal/wal"
)

// adaptiveCrashConfig is the drift config with a WAL attached, so an
// adaptive apply is DDL-logged and checkpointed like any other layout
// change.
func adaptiveCrashConfig(fs wal.FS) Config {
	cfg := walConfig(fs, SyncAlways)
	cfg.Device = "CSSD"
	cfg.CacheFrames = 256
	cfg.AdaptiveAlpha = driftAlpha
	cfg.AdaptiveBeta = driftBeta
	cfg.AdaptiveMaxMove = 1
	return cfg
}

const adaptiveCrashRows = 2_000

// runAdaptiveCrashScript loads the drift table, replays one scan-heavy
// window and runs one adaptive cycle (layout apply + WAL append +
// checkpoint). It reports the layouts before and after the apply, the
// op count after the bulk load (the sweep starts past it), and whether
// the script ran to completion.
func runAdaptiveCrashScript(t *testing.T, fs *wal.CrashFS) (old, new []bool, preOps int, done bool) {
	t.Helper()
	db, err := Open(adaptiveCrashConfig(fs))
	if err != nil {
		if !fs.Crashed() {
			t.Fatalf("open failed without a crash: %v", err)
		}
		return nil, nil, 0, false
	}
	defer db.Close() // post-crash close errors are expected; ignore
	tbl, err := db.CreateTable("drift", driftFields)
	if err != nil {
		if !fs.Crashed() {
			t.Fatal(err)
		}
		return nil, nil, 0, false
	}
	rows := make([][]Value, adaptiveCrashRows)
	for i := range rows {
		n := int64(i)
		rows[i] = []Value{
			Int(n), Int(n % 50), Int(n % 40), Int(n % 30), Int(n % 20), Int(n % 10), Int(n % 1000),
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		if !fs.Crashed() {
			t.Fatal(err)
		}
		return nil, nil, 0, false
	}
	preOps = fs.Ops()
	old = tbl.Layout()
	issueDriftBatch(t, tbl, driftPhases[0], 1)
	if err := db.AdaptOnce(); err != nil {
		if !fs.Crashed() {
			t.Fatal(err)
		}
		return old, nil, preOps, false
	}
	new = tbl.Layout()
	// The apply itself may have hit the injected crash (reported as an
	// "error" decision, not an AdaptOnce error); only a clean run with a
	// changed layout counts as complete.
	done = !fs.Crashed() && !equalLayout(old, new)
	return old, new, preOps, done
}

// TestAdaptiveApplyCrashRecovery kills the filesystem at every mutating
// op from the first adaptive cycle onward (layout apply, WAL layout
// record, the checkpoint the daemon takes after applying). Every crash
// state must recover to EXACTLY the old or the new placement — never a
// torn mixture — with every loaded row intact, and the reopened
// database must re-converge to the drift's layout within one window.
func TestAdaptiveApplyCrashRecovery(t *testing.T) {
	probe := wal.NewMemFS()
	oldLayout, newLayout, preOps, done := runAdaptiveCrashScript(t, probe)
	if !done {
		t.Fatalf("probe run did not complete: old=%v new=%v", oldLayout, newLayout)
	}
	total := probe.Ops()
	if total <= preOps {
		t.Fatalf("adaptive cycle produced no mutating ops (%d..%d); sweep would be vacuous", preOps, total)
	}
	for crashAt := preOps + 1; crashAt <= total; crashAt++ {
		fs := wal.NewCrashFS(crashAt)
		runAdaptiveCrashScript(t, fs)
		if !fs.Crashed() {
			t.Fatalf("crashAt=%d: script finished without crashing", crashAt)
		}
		for _, mode := range wal.RecoverModes() {
			label := fmt.Sprintf("crashAt=%d %s", crashAt, mode)
			checkAdaptiveRecovered(t, fs.Recover(mode, 0), oldLayout, newLayout, label)
		}
	}
}

func checkAdaptiveRecovered(t *testing.T, rec *wal.CrashFS, oldLayout, newLayout []bool, label string) {
	t.Helper()
	db, err := Open(adaptiveCrashConfig(rec))
	if err != nil {
		t.Fatalf("%s: recovery must never fail, got: %v", label, err)
	}
	defer db.Close()
	tbl, err := db.Table("drift")
	if err != nil {
		t.Fatalf("%s: table lost: %v", label, err)
	}
	// SyncAlways: the acknowledged bulk load is durable in full.
	if got := tbl.Rows(); got != adaptiveCrashRows {
		t.Fatalf("%s: Rows = %d, want %d", label, got, adaptiveCrashRows)
	}
	got := tbl.Layout()
	if !equalLayout(got, oldLayout) && !equalLayout(got, newLayout) {
		t.Fatalf("%s: recovered layout %v is neither old %v nor new %v (torn apply)",
			label, got, oldLayout, newLayout)
	}
	// Re-converge: one fresh window of the same drift must land the
	// recovered database on the drift's placement.
	issueDriftBatch(t, tbl, driftPhases[0], 2)
	if err := db.AdaptOnce(); err != nil {
		t.Fatalf("%s: AdaptOnce after recovery: %v", label, err)
	}
	if got := tbl.Layout(); !equalLayout(got, newLayout) {
		t.Fatalf("%s: did not re-converge: layout %v, want %v", label, got, newLayout)
	}
}
