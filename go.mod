module tierdb

go 1.22
