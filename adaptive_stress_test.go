package tierdb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tierdb/internal/wal"
)

// TestAdaptiveMergeCheckpointRaceStress runs the adaptive placement
// daemon flat-out against everything it must coordinate with: an armed
// merge scheduler plus explicit MergeAsync kicks, concurrent writers
// and snapshot readers, and checkpoints truncating the WAL — all under
// the race detector (the CI merge-stress lane picks this test up by
// name). Assertions are interleaving-independent:
//
//   - no worker observes an error other than the documented
//     ErrMergeInProgress backoffs;
//   - after the workload drains, the table holds exactly
//     initial + inserts rows with every key present exactly once;
//   - no page stays pinned in the AMM cache (an adaptive apply racing a
//     scan must not leak a pin);
//   - the adaptive report stays coherent (cycles >= applies + skips
//     attributed to the one table).
func TestAdaptiveMergeCheckpointRaceStress(t *testing.T) {
	const (
		writers   = 3
		readers   = 3
		perWriter = 250
		initial   = 2_000
		adapts    = 40
		ckpts     = 10
	)
	cfg := walConfig(wal.NewMemFS(), SyncAlways)
	cfg.Device = "CSSD"
	cfg.CacheFrames = 256
	cfg.MergeDeltaRows = 200
	cfg.MergeInterval = 1
	cfg.AdaptiveAlpha = driftAlpha
	cfg.AdaptiveBeta = driftBeta
	cfg.AdaptiveMaxMove = 1
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("stress", stressFields())
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, initial)
	for i := range rows {
		rows[i] = stressRow(int64(i))
	}
	// The armed scheduler can race BulkLoad's final fold; the batch is
	// already appended and committed by then, so only a real failure is
	// fatal.
	if err := tbl.BulkLoad(rows); err != nil && !errors.Is(err, ErrMergeInProgress) {
		t.Fatal(err)
	}

	errs := make(chan error, writers+readers+2)
	var wg sync.WaitGroup
	var writersLive atomic.Int32
	writersLive.Store(writers)

	// Writers: disjoint key ranges, occasional explicit merge kicks on
	// top of the armed scheduler.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersLive.Add(-1)
			base := int64(initial + w*perWriter)
			for i := int64(0); i < perWriter; i++ {
				if err := tbl.Insert(stressRow(base + i)); err != nil {
					errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
				if i%50 == 0 {
					if err := tbl.MergeAsync(); err != nil {
						errs <- fmt.Errorf("writer %d MergeAsync: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Readers: filtered scans feeding the plan history the adaptive
	// daemon consumes, plus snapshot-consistency checks. These are the
	// scans whose pinned pages an in-flight ApplyLayout must not orphan.
	region, err := tbl.Eq("region", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; writersLive.Load() > 0 || round < 10; round++ {
				tx := db.Begin()
				res1, err := tbl.Select(tx, []Predicate{region}, "k")
				if err != nil {
					errs <- fmt.Errorf("reader %d round %d: %w", r, round, err)
					return
				}
				res2, err := tbl.Select(tx, []Predicate{region}, "k")
				if err != nil {
					errs <- fmt.Errorf("reader %d round %d repeat: %w", r, round, err)
					return
				}
				if len(res1.IDs) != len(res2.IDs) {
					errs <- fmt.Errorf("reader %d round %d: snapshot drifted %d -> %d",
						r, round, len(res1.IDs), len(res2.IDs))
					return
				}
				if err := db.Abort(tx); err != nil {
					errs <- fmt.Errorf("reader %d round %d abort: %w", r, round, err)
					return
				}
			}
		}(r)
	}

	// The adaptive daemon, driven synchronously so every cycle overlaps
	// live writers, readers, and merges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < adapts; i++ {
			if err := db.AdaptOnce(); err != nil && !errors.Is(err, ErrClosed) {
				errs <- fmt.Errorf("AdaptOnce %d: %w", i, err)
				return
			}
		}
	}()

	// Checkpoints serialize against merges and adaptive applies; each
	// one truncates the WAL while all of the above runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ckpts; i++ {
			if err := db.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint %d: %w", i, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Exact accounting after the dust settles.
	mustMerge(t, tbl)
	want := initial + writers*perWriter
	if got := tbl.Rows(); got != want {
		t.Errorf("Rows = %d, want %d", got, want)
	}
	final, err := tbl.Select(nil, nil, "k")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, len(final.Rows))
	for _, row := range final.Rows {
		k := row[0].Int()
		if seen[k] {
			t.Fatalf("key %d appears twice", k)
		}
		seen[k] = true
	}
	if len(seen) != want {
		t.Errorf("distinct keys = %d, want %d", len(seen), want)
	}

	// No scan or apply may leave a page pinned once everything drains.
	if db.cache != nil {
		if got := db.cache.PinnedFrames(); got != 0 {
			t.Errorf("PinnedFrames = %d after drain, want 0", got)
		}
	}

	rep := db.AdaptiveStatus()
	if rep.Cycles != adapts {
		t.Errorf("adaptive cycles = %d, want %d", rep.Cycles, adapts)
	}
	if rep.Applies+rep.Skips+rep.Errors != adapts {
		t.Errorf("adaptive accounting: applies %d + skips %d + errors %d != cycles %d",
			rep.Applies, rep.Skips, rep.Errors, adapts)
	}
	if rep.Errors != 0 {
		t.Errorf("adaptive errors = %d, want 0", rep.Errors)
	}
}
