package tierdb

import (
	"math"
	"testing"

	"tierdb/internal/core"
	"tierdb/internal/server/client"
	"tierdb/internal/trace"
)

// explainTestFields is the schema the explain acceptance tests load:
// a wide low-selectivity payload plus two filterable columns.
func explainTestFields() []Field {
	return []Field{
		{Name: "id", Type: Int64Type},
		{Name: "region", Type: Int64Type},
		{Name: "amount", Type: Int64Type},
		{Name: "note", Type: StringType, Width: 64},
	}
}

func explainTestRows(n int) [][]Value {
	rows := make([][]Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []Value{
			Int(int64(i)), Int(int64(i % 8)), Int(int64(i % 100)), String("note"),
		})
	}
	return rows
}

// TestExplainEndToEnd is the acceptance test for EXPLAIN/ANALYZE: an
// ANALYZE request over loopback TCP yields a plan whose modeled scan
// cost reproduces the solver's cost for the live placement within 1e-9,
// whose per-operator observed times are exactly the trace tree's
// exec.* span intervals, and whose placement regret drops to exactly
// zero once the advisor's recommendation is applied.
func TestExplainEndToEnd(t *testing.T) {
	db, err := Open(Config{
		ListenAddr:      "127.0.0.1:0",
		TraceSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := client.Dial(client.Config{Addr: db.ServerAddr(), PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.CreateTable("orders", explainTestFields()); err != nil {
		t.Fatal(err)
	}
	if err := c.BulkLoad("orders", explainTestRows(4000)); err != nil {
		t.Fatal(err)
	}

	specs := []ExplainSpec{
		{Column: "region", Op: "eq", Value: "3"},
		{Column: "amount", Op: "between", Value: "10", Hi: "40"},
	}
	plan, err := c.Explain("orders", specs, []string{"amount"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != "analyze" || plan.Table != "orders" {
		t.Fatalf("plan header = %s %s", plan.Mode, plan.Table)
	}
	if plan.WallNs <= 0 || plan.RowsQualified <= 0 {
		t.Fatalf("ANALYZE summary empty: wall %d rows %d", plan.WallNs, plan.RowsQualified)
	}

	// 1. Modeled cost: rebuild the single-query workload from the
	// table's own workload report — an independent surface — and check
	// the plan reproduces the solver's scan cost for the live placement.
	tbl, err := db.Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	rep := tbl.WorkloadReport()
	w := &core.Workload{Columns: make([]core.Column, len(rep.Columns))}
	x := make([]bool, len(rep.Columns))
	for i, col := range rep.Columns {
		size := col.SizeBytes
		if size < 1 {
			size = 1
		}
		w.Columns[i] = core.Column{Name: col.Name, Size: size, Selectivity: col.EstimatedSelectivity}
		x[i] = col.InDRAM
	}
	w.Queries = []core.Query{{Columns: []int{1, 2}, Frequency: 1}} // region, amount
	want := core.ScanCost(w, core.DefaultCostParams(), x)
	if diff := math.Abs(plan.Placement.CurrentCost - want); diff > 1e-9 {
		t.Errorf("plan current cost %.12g, solver says %.12g (diff %g)", plan.Placement.CurrentCost, want, diff)
	}
	var nodeSum float64
	for _, n := range plan.Nodes {
		nodeSum += n.ModeledCost
	}
	if diff := math.Abs(nodeSum - plan.Placement.CurrentCost); diff > 1e-9 {
		t.Errorf("node modeled costs sum to %.12g, placement total %.12g", nodeSum, plan.Placement.CurrentCost)
	}

	// 2. Observed operator timings must be the trace tree's: every
	// ANALYZE node has a matching exec.<operator> span with the same
	// interval, linked through the plan's trace id.
	if plan.TraceID == "" {
		t.Fatal("ANALYZE plan has no trace id despite sample rate 1")
	}
	id, err := trace.ParseTraceID(plan.TraceID)
	if err != nil {
		t.Fatalf("plan trace id %q: %v", plan.TraceID, err)
	}
	spans := db.Tracer().Ring().ByTrace(id)
	if len(spans) == 0 {
		t.Fatalf("no spans for trace %s", plan.TraceID)
	}
	type interval struct {
		name       string
		start, end int64
	}
	execSpans := make(map[interval]int)
	for _, s := range spans {
		if len(s.Name) > 5 && s.Name[:5] == "exec." {
			execSpans[interval{s.Name, s.StartNs, s.EndNs}]++
		}
	}
	for _, n := range plan.Nodes {
		key := interval{"exec." + n.Operator, n.StartNs, n.EndNs}
		if execSpans[key] == 0 {
			t.Errorf("node %s/%s [%d,%d] has no matching trace span; spans: %v",
				n.Partition, n.Operator, n.StartNs, n.EndNs, execSpans)
			continue
		}
		execSpans[key]--
		if n.ObservedNs != n.EndNs-n.StartNs {
			t.Errorf("node %s observed %dns, interval %dns", n.Operator, n.ObservedNs, n.EndNs-n.StartNs)
		}
	}

	// 3. Regret is exactly zero once the advisor's recommendation is
	// live. Applying a layout changes column footprints (MRC bytes vs
	// slot-width bytes), which can shift the next solve, so iterate the
	// apply→re-explain fixed point a few rounds; it must settle.
	regret := math.Inf(1)
	for i := 0; i < 5 && regret != 0; i++ {
		rep, err := tbl.Advise(AdvisorQuery{})
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.ApplyLayout(Layout{InDRAM: rep.Recommended.InDRAM}); err != nil {
			t.Fatal(err)
		}
		plan, err := c.Explain("orders", specs, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		regret = plan.Placement.Regret
	}
	if regret != 0 {
		t.Errorf("regret = %g after applying the advisor's recommendation, want exactly 0", regret)
	}
}

// BenchmarkExplainOverhead compares plain Select against
// SelectExplained on the same table: the Select sub-benchmark is the
// baseline proving EXPLAIN costs nothing when not requested (the
// machinery is strictly opt-in), the SelectExplained one prices ANALYZE.
func BenchmarkExplainOverhead(b *testing.B) {
	db, err := Open(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("orders", explainTestFields())
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.BulkLoad(explainTestRows(4000)); err != nil {
		b.Fatal(err)
	}
	region, err := tbl.Eq("region", Int(3))
	if err != nil {
		b.Fatal(err)
	}
	amount, err := tbl.Between("amount", Int(10), Int(40))
	if err != nil {
		b.Fatal(err)
	}
	preds := []Predicate{region, amount}

	b.Run("Select", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tbl.Select(nil, preds, "amount"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SelectExplained", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := tbl.SelectExplained(nil, preds, "amount"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
