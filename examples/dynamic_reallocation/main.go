// Dynamic workloads and reallocation costs (paper Section III-D): the
// workload shifts over time, and the optimizer must decide whether the
// performance gain of a new placement justifies the cost of moving
// columns between tiers. With beta = 0 every shift triggers churn; with
// a realistic beta, small shifts keep the current placement and only a
// sustained change reorganizes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tierdb"
)

const (
	attrs = 40
	rows  = 30_000
)

func main() {
	db, err := tierdb.Open(tierdb.Config{Device: "CSSD", CacheFrames: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fields := make([]tierdb.Field, attrs)
	for i := range fields {
		fields[i] = tierdb.Field{Name: fmt.Sprintf("C%02d", i), Type: tierdb.Int64Type}
	}
	tbl, err := db.CreateTable("metrics", fields)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	data := make([][]tierdb.Value, rows)
	for r := range data {
		row := make([]tierdb.Value, attrs)
		for c := range row {
			row[c] = tierdb.Int(int64(rng.Intn(500)))
		}
		data[r] = row
	}
	if err := tbl.BulkLoad(data); err != nil {
		log.Fatal(err)
	}

	// Phase 1: the workload filters columns 0-9.
	runPhase := func(hotLo, hotHi, queries int) {
		for i := 0; i < queries; i++ {
			c := hotLo + rng.Intn(hotHi-hotLo)
			p, _ := tbl.Eq(fields[c].Name, tierdb.Int(int64(rng.Intn(500))))
			if _, err := tbl.Select(nil, []tierdb.Predicate{p}); err != nil {
				log.Fatal(err)
			}
		}
	}
	countMoves := func(a, b []bool) int {
		n := 0
		for i := range a {
			if a[i] != b[i] {
				n++
			}
		}
		return n
	}

	fmt.Println("phase 1: columns C00-C09 are hot")
	runPhase(0, 10, 300)
	l1, err := tbl.RecommendLayout(tierdb.PlacementOptions{RelativeBudget: 0.3, Method: tierdb.MethodILP})
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.ApplyLayout(l1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  placed %d columns in DRAM (%.1f MB)\n\n", count(l1.InDRAM), mb(l1.Memory))

	// Phase 2: a small, transient shift — a handful of queries now
	// touch C10-C14. Reallocation costs (beta) keep the placement
	// stable; without them the optimizer would churn.
	fmt.Println("phase 2: transient queries on C10-C14 (20 executions)")
	tbl.PlanCache().Reset() // moving window: only recent history counts
	runPhase(0, 10, 280)
	runPhase(10, 15, 20)

	noBeta, err := tbl.RecommendLayout(tierdb.PlacementOptions{
		RelativeBudget: 0.3, Method: tierdb.MethodILP,
	})
	if err != nil {
		log.Fatal(err)
	}
	withBeta, err := tbl.RecommendLayout(tierdb.PlacementOptions{
		RelativeBudget: 0.3, Method: tierdb.MethodILP,
		Beta: 2e-8, // per-byte move cost ~ tens of ms per GB of nightly window
	})
	if err != nil {
		log.Fatal(err)
	}
	cur := tbl.Layout()
	fmt.Printf("  beta=0:   would move %d columns\n", countMoves(cur, noBeta.InDRAM))
	fmt.Printf("  beta>0:   moves %d columns (reallocation not worth its cost)\n\n",
		countMoves(cur, withBeta.InDRAM))

	// Phase 3: the shift becomes permanent — C10-C19 dominate. Now
	// even with beta the model reorganizes.
	fmt.Println("phase 3: sustained shift, C10-C19 dominate (400 executions)")
	tbl.PlanCache().Reset()
	runPhase(10, 20, 400)
	runPhase(0, 10, 20)
	sustained, err := tbl.RecommendLayout(tierdb.PlacementOptions{
		RelativeBudget: 0.3, Method: tierdb.MethodILP,
		Beta: 2e-8,
	})
	if err != nil {
		log.Fatal(err)
	}
	moves := countMoves(cur, sustained.InDRAM)
	fmt.Printf("  beta>0:   moves %d columns — the gain now outweighs the cost\n", moves)
	if err := tbl.ApplyLayout(sustained); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  applied; DRAM %.1f MB, secondary %.1f MB\n",
		mb(tbl.MemoryBytes()), mb(tbl.SecondaryBytes()))
}

func count(x []bool) int {
	n := 0
	for _, b := range x {
		if b {
			n++
		}
	}
	return n
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
