// Workload forecasting (paper Section VI, future work): instead of
// optimizing for the historical workload, tierdb tracks plan
// frequencies over moving windows, extrapolates each plan's trend with
// Holt double exponential smoothing, and places columns for the
// *anticipated* workload. A month-end-closing style scenario: reporting
// queries on the amount columns ramp up over the last days of the
// month, and the forecast promotes those columns to DRAM *before* the
// peak instead of after it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tierdb"
)

func main() {
	db, err := tierdb.Open(tierdb.Config{Device: "3D XPoint", CacheFrames: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	tbl, err := db.CreateTable("ledger", []tierdb.Field{
		{Name: "doc_id", Type: tierdb.Int64Type},
		{Name: "account", Type: tierdb.Int64Type},
		{Name: "period", Type: tierdb.Int64Type},
		{Name: "amount", Type: tierdb.Int64Type},
		{Name: "cost_center", Type: tierdb.Int64Type},
		{Name: "text", Type: tierdb.StringType, Width: 40},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	rows := make([][]tierdb.Value, 40_000)
	for i := range rows {
		rows[i] = []tierdb.Value{
			tierdb.Int(int64(i)),
			tierdb.Int(int64(rng.Intn(2000))),
			tierdb.Int(int64(202401 + rng.Intn(12))),
			tierdb.Int(int64(rng.Intn(100000))),
			tierdb.Int(int64(rng.Intn(300))),
			tierdb.String(fmt.Sprintf("posting %d", i)),
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		log.Fatal(err)
	}

	// Daily windows: OLTP lookups stay constant; closing-report queries
	// (period + cost_center + amount range) ramp up 5 -> 60.
	lookup := func() []tierdb.Predicate {
		p1, _ := tbl.Eq("doc_id", tierdb.Int(int64(rng.Intn(40_000))))
		return []tierdb.Predicate{p1}
	}
	closing := func() []tierdb.Predicate {
		p1, _ := tbl.Eq("period", tierdb.Int(202412))
		p2, _ := tbl.Eq("cost_center", tierdb.Int(int64(rng.Intn(300))))
		p3, _ := tbl.Between("amount", tierdb.Int(50_000), tierdb.Int(100_000))
		return []tierdb.Predicate{p1, p2, p3}
	}
	closingPerDay := []int{2, 10, 30, 70, 130}
	for day, n := range closingPerDay {
		for i := 0; i < 60; i++ {
			if _, err := tbl.Select(nil, lookup()); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			if _, err := tbl.Select(nil, closing()); err != nil {
				log.Fatal(err)
			}
		}
		tbl.CloseWorkloadWindow()
		fmt.Printf("day %d closed: %d lookups, %d closing reports\n", day+1, 60, n)
	}

	budget := tierdb.PlacementOptions{RelativeBudget: 0.35, Method: tierdb.MethodILP}

	// Historical placement: the cumulative plan cache still thinks the
	// closing queries are a minority.
	hist, err := tbl.RecommendLayout(budget)
	if err != nil {
		log.Fatal(err)
	}
	// Forecast placement: Holt sees the trend and provisions for the
	// next day's peak.
	pred, err := tbl.RecommendForecastLayout(budget,
		tierdb.ForecastOptions{Method: tierdb.ForecastHolt, Alpha: 0.7, Beta: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncolumn placement (historical vs forecast):")
	for i, f := range tbl.Columns() {
		fmt.Printf("  %-12s historical: %-5v forecast: %v\n", f.Name, hist.InDRAM[i], pred.InDRAM[i])
	}
	fmt.Printf("\nhistorical layout modeled cost: %.4g\n", hist.EstimatedCost)
	fmt.Printf("forecast   layout modeled cost: %.4g (for the anticipated workload)\n", pred.EstimatedCost)

	if err := tbl.ApplyLayout(pred); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied forecast layout: DRAM %.1f MB, secondary %.1f MB\n",
		float64(tbl.MemoryBytes())/(1<<20), float64(tbl.SecondaryBytes())/(1<<20))
}
