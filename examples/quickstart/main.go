// Quickstart: create a tiered table, run a workload, let the optimizer
// decide which columns stay in DRAM, and evict the rest to a modeled
// 3D XPoint device — without changing query results.
package main

import (
	"fmt"
	"log"

	"tierdb"
)

func main() {
	db, err := tierdb.Open(tierdb.Config{Device: "3D XPoint", CacheFrames: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	orders, err := db.CreateTable("orders", []tierdb.Field{
		{Name: "order_id", Type: tierdb.Int64Type},
		{Name: "customer_id", Type: tierdb.Int64Type},
		{Name: "status", Type: tierdb.Int64Type},
		{Name: "amount", Type: tierdb.Float64Type},
		{Name: "comment", Type: tierdb.StringType, Width: 48},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bulk load 50k orders.
	rows := make([][]tierdb.Value, 50_000)
	for i := range rows {
		rows[i] = []tierdb.Value{
			tierdb.Int(int64(i)),
			tierdb.Int(int64(i % 5000)),
			tierdb.Int(int64(i % 7)),
			tierdb.Float(float64(i%100000) / 100),
			tierdb.String(fmt.Sprintf("order comment %d", i)),
		}
	}
	if err := orders.BulkLoad(rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows, DRAM footprint %.1f MB\n",
		orders.Rows(), float64(orders.MemoryBytes())/(1<<20))

	// Run the application workload: lookups by customer, status scans.
	// Each Select feeds the plan cache the optimizer analyzes.
	byCustomer, _ := orders.Eq("customer_id", tierdb.Int(42))
	byStatus, _ := orders.Eq("status", tierdb.Int(3))
	for i := 0; i < 200; i++ {
		if _, err := orders.Select(nil, []tierdb.Predicate{byCustomer}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := orders.Select(nil, []tierdb.Predicate{byStatus, byCustomer}); err != nil {
			log.Fatal(err)
		}
	}

	// Ask the optimizer for a placement using 30% of the current
	// footprint; the ILP gives the Pareto-optimal answer.
	layout, err := orders.RecommendLayout(tierdb.PlacementOptions{
		RelativeBudget: 0.3,
		Method:         tierdb.MethodILP,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended placement: %d bytes in DRAM, modeled relative performance %.3f\n",
		layout.Memory, layout.RelativePerformance)
	for i, f := range orders.Columns() {
		tier := "-> SSCG (secondary storage)"
		if layout.InDRAM[i] {
			tier = "-> MRC  (DRAM)"
		}
		fmt.Printf("  %-12s %s\n", f.Name, tier)
	}

	// Apply it (a merge pass) and verify queries still work.
	if err := orders.ApplyLayout(layout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after eviction: DRAM %.1f MB, secondary storage %.1f MB\n",
		float64(orders.MemoryBytes())/(1<<20), float64(orders.SecondaryBytes())/(1<<20))

	res, err := orders.Select(nil, []tierdb.Predicate{byCustomer}, "order_id", "amount")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customer 42 still has %d orders; first: id=%v amount=%v\n",
		len(res.IDs), res.Rows[0][0], res.Rows[0][1])
	fmt.Printf("modeled device+DRAM time spent so far: %v\n", db.Clock().Elapsed())
}
