// TPC-C + CH-benCHmark: the paper's end-to-end scenario. An ORDERLINE
// table runs transactional deliveries (through the DRAM-resident delta)
// and the analytical CH query #19 under three layouts: fully
// DRAM-resident, w=0.2 (only the primary key in DRAM) and w=0.4
// (ol_quantity and ol_delivery_d back in DRAM). The modeled device
// clock shows the paper's pattern: deliveries are barely affected,
// the analytical query pays heavily at w=0.2 and recovers at w=0.4.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tierdb"
)

const (
	warehouses = 4
	districts  = 10
	orders     = 50
)

func buildOrderLine(db *tierdb.DB, name string) (*tierdb.Table, error) {
	tbl, err := db.CreateTable(name, []tierdb.Field{
		{Name: "ol_o_id", Type: tierdb.Int64Type},
		{Name: "ol_d_id", Type: tierdb.Int64Type},
		{Name: "ol_w_id", Type: tierdb.Int64Type},
		{Name: "ol_number", Type: tierdb.Int64Type},
		{Name: "ol_i_id", Type: tierdb.Int64Type},
		{Name: "ol_supply_w_id", Type: tierdb.Int64Type},
		{Name: "ol_delivery_d", Type: tierdb.Int64Type},
		{Name: "ol_quantity", Type: tierdb.Int64Type},
		{Name: "ol_amount", Type: tierdb.Float64Type},
		{Name: "ol_dist_info", Type: tierdb.StringType, Width: 24},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(3))
	var rows [][]tierdb.Value
	for w := 1; w <= warehouses; w++ {
		for d := 1; d <= districts; d++ {
			for o := 1; o <= orders; o++ {
				for l := 1; l <= 5+rng.Intn(11); l++ {
					delivery := int64(0)
					if o <= orders*2/3 {
						delivery = int64(20170000 + rng.Intn(365))
					}
					rows = append(rows, []tierdb.Value{
						tierdb.Int(int64(o)), tierdb.Int(int64(d)), tierdb.Int(int64(w)),
						tierdb.Int(int64(l)), tierdb.Int(int64(1 + rng.Intn(1000))),
						tierdb.Int(int64(w)), tierdb.Int(delivery),
						tierdb.Int(int64(1 + rng.Intn(10))),
						tierdb.Float(float64(rng.Intn(999999)) / 100),
						tierdb.String(fmt.Sprintf("dist-%02d-%08d", d, rng.Intn(1e8))),
					})
				}
			}
		}
	}
	if err := tbl.BulkLoad(rows); err != nil {
		return nil, err
	}
	return tbl, nil
}

// delivery stamps the lines of one order and returns their summed
// amount; the order lookup runs on MRC primary-key columns.
func delivery(db *tierdb.DB, tbl *tierdb.Table, w, d, o int) (float64, error) {
	pw, _ := tbl.Eq("ol_w_id", tierdb.Int(int64(w)))
	pd, _ := tbl.Eq("ol_d_id", tierdb.Int(int64(d)))
	po, _ := tbl.Eq("ol_o_id", tierdb.Int(int64(o)))
	tx := db.Begin()
	res, err := tbl.Select(tx, []tierdb.Predicate{pw, pd, po})
	if err != nil {
		db.Abort(tx)
		return 0, err
	}
	var amount float64
	for _, id := range res.IDs {
		row, err := tbl.Get(id)
		if err != nil {
			db.Abort(tx)
			return 0, err
		}
		amount += row[8].Float()
		row[6] = tierdb.Int(20180201)
		if err := tbl.Update(tx, id, row); err != nil {
			db.Abort(tx)
			return 0, err
		}
	}
	return amount, db.Commit(tx)
}

// chQuery19 sums ol_amount for a warehouse's lines with quantity in
// [qlo, qhi] — the paper's tiered-predicate stress case.
func chQuery19(tbl *tierdb.Table, w int, qlo, qhi int64) (float64, error) {
	pw, _ := tbl.Eq("ol_w_id", tierdb.Int(int64(w)))
	pq, _ := tbl.Between("ol_quantity", tierdb.Int(qlo), tierdb.Int(qhi))
	res, err := tbl.Select(nil, []tierdb.Predicate{pw, pq})
	if err != nil {
		return 0, err
	}
	return tbl.Sum("ol_amount", res.IDs)
}

func layoutFor(w float64) []bool {
	layout := make([]bool, 10)
	layout[0], layout[1], layout[2], layout[3] = true, true, true, true // PK
	if w >= 0.4 {
		layout[6], layout[7] = true, true // ol_delivery_d, ol_quantity
	}
	return layout
}

func runScenario(label string, inDRAM []bool) error {
	db, err := tierdb.Open(tierdb.Config{Device: "3D XPoint", CacheFrames: 128})
	if err != nil {
		return err
	}
	defer db.Close()
	tbl, err := buildOrderLine(db, "ORDERLINE")
	if err != nil {
		return err
	}
	if inDRAM != nil {
		if err := tbl.ApplyLayout(tierdb.Layout{InDRAM: inDRAM}); err != nil {
			return err
		}
	}

	db.Clock().Reset()
	firstUndelivered := orders*2/3 + 1
	for w := 1; w <= warehouses; w++ {
		for d := 1; d <= districts; d++ {
			if _, err := delivery(db, tbl, w, d, firstUndelivered); err != nil {
				return err
			}
		}
	}
	deliveryTime := db.Clock().Elapsed()

	db.Clock().Reset()
	var revenue float64
	for w := 1; w <= warehouses; w++ {
		r, err := chQuery19(tbl, w, 4, 4)
		if err != nil {
			return err
		}
		revenue += r
	}
	q19Time := db.Clock().Elapsed()

	fmt.Printf("%-22s DRAM %6.2f MB  SSCG %6.2f MB  deliveries %-12v Q19 %-12v (revenue %.2f)\n",
		label,
		float64(tbl.MemoryBytes())/(1<<20), float64(tbl.SecondaryBytes())/(1<<20),
		deliveryTime.Round(time.Microsecond), q19Time.Round(time.Microsecond), revenue)
	return nil
}

func main() {
	fmt.Printf("ORDERLINE: %d warehouses x %d districts x %d orders\n\n", warehouses, districts, orders)
	if err := runScenario("full DRAM (baseline)", nil); err != nil {
		log.Fatal(err)
	}
	if err := runScenario("w=0.2 (PK only)", layoutFor(0.2)); err != nil {
		log.Fatal(err)
	}
	if err := runScenario("w=0.4 (+qty, +date)", layoutFor(0.4)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npattern to observe (paper Table III): deliveries barely change;")
	fmt.Println("Q19 pays heavily at w=0.2 (tiered ol_quantity scan) and recovers at w=0.4.")
}
