// ERP tiering: an enterprise-style wide table (120 attributes, most of
// them never filtered) whose workload concentrates on a few restrictive
// columns — the paper's SAP BSEG scenario. The example sweeps the
// Pareto frontier, compares the model against the counting heuristics,
// and shows the ~78%-style "free" eviction of unfiltered attributes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tierdb"
)

const (
	attrs    = 120
	hotAttrs = 8  // frequently filtered, restrictive
	coldHot  = 25 // filtered rarely, usually with a hot attribute
	rows     = 20_000
)

func main() {
	db, err := tierdb.Open(tierdb.Config{Device: "3D XPoint", CacheFrames: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A wide accounting-line table: DOCNO is nearly unique (the BELNR
	// analogue), a few key columns are restrictive, the long tail is
	// payload that is reconstructed but never filtered.
	fields := make([]tierdb.Field, attrs)
	fields[0] = tierdb.Field{Name: "DOCNO", Type: tierdb.Int64Type}
	for i := 1; i < attrs; i++ {
		fields[i] = tierdb.Field{Name: fmt.Sprintf("A%03d", i), Type: tierdb.Int64Type}
	}
	tbl, err := db.CreateTable("ACCDOC", fields)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	data := make([][]tierdb.Value, rows)
	for r := range data {
		row := make([]tierdb.Value, attrs)
		row[0] = tierdb.Int(int64(r)) // unique document number
		for c := 1; c < attrs; c++ {
			distinct := 1000 // payload columns
			if c < hotAttrs {
				distinct = 50000 // restrictive keys
			} else if c < coldHot {
				distinct = 200
			}
			row[c] = tierdb.Int(int64(rng.Intn(distinct)))
		}
		data[r] = row
	}
	if err := tbl.BulkLoad(data); err != nil {
		log.Fatal(err)
	}

	// The workload: frequent lookups on DOCNO and the hot keys,
	// occasional filters on cold columns combined with a hot one.
	for i := 0; i < 500; i++ {
		hot := 1 + rng.Intn(hotAttrs-1)
		p1, _ := tbl.Eq("DOCNO", tierdb.Int(int64(rng.Intn(rows))))
		p2, _ := tbl.Eq(fields[hot].Name, tierdb.Int(int64(rng.Intn(1000))))
		if _, err := tbl.Select(nil, []tierdb.Predicate{p1, p2}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		cold := hotAttrs + rng.Intn(coldHot-hotAttrs)
		hot := 1 + rng.Intn(hotAttrs-1)
		p1, _ := tbl.Eq(fields[cold].Name, tierdb.Int(int64(rng.Intn(200))))
		p2, _ := tbl.Eq(fields[hot].Name, tierdb.Int(int64(rng.Intn(1000))))
		if _, err := tbl.Select(nil, []tierdb.Predicate{p1, p2}); err != nil {
			log.Fatal(err)
		}
	}

	w, err := tbl.ExtractWorkload(nil)
	if err != nil {
		log.Fatal(err)
	}
	var unfilteredBytes, totalBytes int64
	g := w.AccessCounts()
	for i, c := range w.Columns {
		totalBytes += c.Size
		if g[i] == 0 {
			unfilteredBytes += c.Size
		}
	}
	fmt.Printf("table: %d attributes, %d rows, %.1f MB as MRCs\n",
		attrs, rows, float64(totalBytes)/(1<<20))
	fmt.Printf("never-filtered attributes hold %.0f%% of the bytes (evictable for free)\n",
		100*float64(unfilteredBytes)/float64(totalBytes))

	// Pareto frontier over relative budgets.
	fmt.Println("\nefficient frontier (ILP):")
	points, err := tbl.Frontier([]float64{0.05, 0.1, 0.2, 0.3, 0.5, 1.0}, tierdb.MethodILP)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range points {
		fmt.Printf("  w=%.2f  %3d cols in DRAM  relative performance %.3f\n",
			pt.RelativeBudget, pt.Allocation.CountInDRAM(), pt.RelativePerformance)
	}

	// Model vs the counting heuristics at a tight budget.
	fmt.Println("\nmethod comparison at w=0.10:")
	for _, m := range []tierdb.Method{
		tierdb.MethodILP, tierdb.MethodExplicit,
		tierdb.MethodFrequency, tierdb.MethodSelectivity, tierdb.MethodSelectivityFrequency,
	} {
		l, err := tbl.RecommendLayout(tierdb.PlacementOptions{RelativeBudget: 0.10, Method: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s estimated cost %.4g  (rel. perf. %.3f)\n",
			m, l.EstimatedCost, l.RelativePerformance)
	}

	// Apply the explicit solution and show the footprint reduction.
	layout, err := tbl.RecommendLayout(tierdb.PlacementOptions{RelativeBudget: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	before := tbl.MemoryBytes()
	if err := tbl.ApplyLayout(layout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied w=0.10 layout: DRAM %.1f MB -> %.1f MB (%.0f%% evicted)\n",
		float64(before)/(1<<20), float64(tbl.MemoryBytes())/(1<<20),
		100*(1-float64(tbl.MemoryBytes())/float64(before)))

	// Reconstruction of a full 120-attribute tuple still needs only
	// one page access for all evicted attributes.
	row, err := tbl.Get(777)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full tuple reconstruction of DOCNO=%v: %d attributes materialized\n",
		row[0], len(row))
}
