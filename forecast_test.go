package tierdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tierdb/internal/persist"
)

// TestRestoreTableErrorPaths: restore must reject missing and corrupt
// snapshot files with a classified error and register nothing.
func TestRestoreTableErrorPaths(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.RestoreTable(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Error("missing snapshot file accepted")
	}
	corrupt := filepath.Join(t.TempDir(), "corrupt.snap")
	if err := os.WriteFile(corrupt, []byte("TIERDB02 then garbage bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RestoreTable(corrupt); !errors.Is(err, persist.ErrBadSnapshot) {
		t.Errorf("corrupt snapshot error = %v, want ErrBadSnapshot", err)
	}
	if len(db.Tables()) != 0 {
		t.Errorf("failed restores registered tables: %v", db.Tables())
	}
}

func TestForecastLayoutFollowsTrend(t *testing.T) {
	_, tbl := openLoaded(t, 2000)
	pRegion, _ := tbl.Eq("region", Int(1))
	pID, _ := tbl.Eq("id", Int(5))

	// Four windows: queries on "region" shrink, queries on "id" grow.
	regionCounts := []int{80, 60, 40, 20}
	idCounts := []int{5, 25, 50, 80}
	for wnd := 0; wnd < 4; wnd++ {
		for i := 0; i < regionCounts[wnd]; i++ {
			if _, err := tbl.Select(nil, []Predicate{pRegion}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < idCounts[wnd]; i++ {
			if _, err := tbl.Select(nil, []Predicate{pID}); err != nil {
				t.Fatal(err)
			}
		}
		tbl.CloseWorkloadWindow()
	}
	if tbl.WorkloadWindows() != 4 {
		t.Fatalf("windows = %d", tbl.WorkloadWindows())
	}

	// Budget for exactly one of the two filtered columns. "id" is the
	// bigger, growing column; Holt should prefer it even though the
	// cumulative history favors "region".
	idBytes := tbl.Inner().ColumnBytes(0)
	layout, err := tbl.RecommendForecastLayout(
		PlacementOptions{Budget: idBytes + 1024, Method: MethodILP},
		ForecastOptions{Method: ForecastHolt, Alpha: 0.8, Beta: 0.6},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !layout.InDRAM[0] {
		t.Errorf("forecast layout did not keep the growing column: %v", layout.InDRAM)
	}
	// The cumulative plan cache (no forecast) keeps "region" instead:
	// total region executions 200 vs id 160, and region is cheaper.
	cumulative, err := tbl.RecommendLayout(PlacementOptions{Budget: idBytes + 1024, Method: MethodILP})
	if err != nil {
		t.Fatal(err)
	}
	_ = cumulative // shape depends on sizes; key assertion is above
}

func TestForecastLayoutRequiresWindows(t *testing.T) {
	_, tbl := openLoaded(t, 100)
	if _, err := tbl.RecommendForecastLayout(PlacementOptions{RelativeBudget: 0.5}, ForecastOptions{}); err == nil {
		t.Error("forecast without windows accepted")
	}
	p, _ := tbl.Eq("region", Int(1))
	if _, err := tbl.Select(nil, []Predicate{p}); err != nil {
		t.Fatal(err)
	}
	tbl.CloseWorkloadWindow()
	layout, err := tbl.RecommendForecastLayout(PlacementOptions{RelativeBudget: 0.5}, ForecastOptions{Method: ForecastLastWindow})
	if err != nil {
		t.Fatal(err)
	}
	if layout.Memory <= 0 {
		t.Error("forecast layout placed nothing")
	}
	if _, err := tbl.RecommendForecastLayout(PlacementOptions{Pinned: []string{"missing"}}, ForecastOptions{}); err == nil {
		t.Error("unknown pinned column accepted")
	}
}

func TestSnapshotRestoreThroughFacade(t *testing.T) {
	db, tbl := openLoaded(t, 300)
	layout, err := tbl.RecommendLayout(PlacementOptions{RelativeBudget: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "orders.snap")
	if err := tbl.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	// Restore into a second database on a different device.
	db2, err := Open(Config{Device: "CSSD", CacheFrames: 32})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := db2.RestoreTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Rows() != 300 {
		t.Errorf("restored rows = %d", restored.Rows())
	}
	for i, in := range restored.Layout() {
		if in != layout.InDRAM[i] {
			t.Errorf("layout[%d] not restored", i)
		}
	}
	row, err := restored.Get(42)
	if err != nil || row[0].Int() != 42 {
		t.Errorf("restored Get = %v, %v", row, err)
	}
	// Restoring again collides on the name.
	if _, err := db2.RestoreTable(path); err == nil {
		t.Error("duplicate restore accepted")
	}
	_ = db
}

func TestCompositeIndexThroughFacade(t *testing.T) {
	_, tbl := openLoaded(t, 100)
	if err := tbl.CreateCompositeIndex("region", "note"); err != nil {
		t.Fatal(err)
	}
	ids, err := tbl.LookupComposite([]string{"region", "note"}, []Value{Int(3), String("n")})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 13 { // region == 3: ids 3, 11, ..., 99
		t.Errorf("composite lookup = %d rows, want 13", len(ids))
	}
	if err := tbl.CreateCompositeIndex("region", "missing"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tbl.LookupComposite([]string{"missing"}, []Value{Int(1)}); err == nil {
		t.Error("unknown lookup column accepted")
	}
}
