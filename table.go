package tierdb

import (
	"context"
	"fmt"

	"tierdb/internal/exec"
	"tierdb/internal/mvcc"
	"tierdb/internal/table"
	"tierdb/internal/trace"
	"tierdb/internal/value"
	"tierdb/internal/workload"
)

// Table is the public handle of a tiered table. Queries executed through
// Select feed the table's plan cache, which RecommendLayout analyzes.
type Table struct {
	db      *DB
	inner   *table.Table
	plans   *workload.PlanCache
	history *workload.History
	exec    *exec.Executor
}

// Predicate is a conjunctive filter; construct with Eq or Between.
type Predicate = exec.Predicate

// Eq builds an equality predicate on the named column.
func (t *Table) Eq(column string, v Value) (Predicate, error) {
	c := t.inner.Schema().IndexOf(column)
	if c < 0 {
		return Predicate{}, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), column)
	}
	return Predicate{Column: c, Op: exec.Eq, Value: v}, nil
}

// Between builds an inclusive range predicate on the named column.
func (t *Table) Between(column string, lo, hi Value) (Predicate, error) {
	c := t.inner.Schema().IndexOf(column)
	if c < 0 {
		return Predicate{}, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), column)
	}
	return Predicate{Column: c, Op: exec.Between, Value: lo, Hi: hi}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.inner.Name() }

// Columns returns the schema fields.
func (t *Table) Columns() []Field { return t.inner.Schema().Fields() }

// Rows returns the number of rows visible at the latest snapshot.
func (t *Table) Rows() int { return t.inner.VisibleCount() }

// BulkLoad appends rows outside any transaction and merges them into
// the main partition under the current layout. With a WAL configured
// the whole batch is one atomic, durable commit record.
func (t *Table) BulkLoad(rows [][]Value) error {
	return t.BulkLoadCtx(context.Background(), rows)
}

// BulkLoadCtx is BulkLoad with a context; a request trace span carried
// by ctx receives the WAL commit children plus a "merge.wait" span
// covering the delta-to-main merge.
func (t *Table) BulkLoadCtx(ctx context.Context, rows [][]Value) error {
	if t.db.wal == nil || len(rows) == 0 {
		if err := t.inner.BulkAppend(rows); err != nil {
			return err
		}
		return t.mergeCtx(ctx)
	}
	ops := make([]mvcc.RedoOp, len(rows))
	for i, r := range rows {
		ops[i] = mvcc.RedoOp{Table: t.Name(), Row: r}
	}
	_, err := t.db.mgr.BulkCommitCtx(ctx, ops, func(ts mvcc.Timestamp) error {
		return t.inner.BulkAppendAt(rows, ts)
	})
	if err != nil {
		return err
	}
	return t.mergeCtx(ctx)
}

// mergeCtx merges the delta partition under a "merge.wait" child span
// of the request trace (if any): the caller's wall-clock time spent
// waiting for the merge to complete.
func (t *Table) mergeCtx(ctx context.Context) error {
	span := trace.FromContext(ctx).Child("merge.wait", trace.String("table", t.Name()))
	err := t.inner.Merge()
	span.SetError(err)
	span.End()
	return err
}

// Insert appends one row in its own transaction.
func (t *Table) Insert(row []Value) error {
	return t.InsertCtx(context.Background(), row)
}

// InsertCtx is Insert with a context; a request trace span carried by
// ctx receives the WAL commit children.
func (t *Table) InsertCtx(ctx context.Context, row []Value) error {
	tx := t.db.Begin()
	if err := t.InsertTx(tx, row); err != nil {
		if aerr := t.db.Abort(tx); aerr != nil {
			return fmt.Errorf("%w (abort failed: %v)", err, aerr)
		}
		return err
	}
	return t.db.CommitCtx(ctx, tx)
}

// InsertTx appends one row within an existing transaction.
func (t *Table) InsertTx(tx *Tx, row []Value) error {
	if err := t.inner.Insert(tx, row); err != nil {
		return err
	}
	if t.db.wal != nil {
		tx.LogRedo(mvcc.RedoOp{Table: t.Name(), Row: append([]Value(nil), row...)})
	}
	return nil
}

// Delete removes a row within a transaction.
func (t *Table) Delete(tx *Tx, id RowID) error {
	if t.db.wal == nil {
		return t.inner.Delete(tx, id)
	}
	// Redo records are content-addressed (row ids do not survive a
	// merge), so capture the tuple before delete hides it from tx.
	tuple, err := t.inner.GetTuple(id)
	if err != nil {
		return err
	}
	if err := t.inner.Delete(tx, id); err != nil {
		return err
	}
	tx.LogRedo(mvcc.RedoOp{Table: t.Name(), Delete: true, Row: tuple})
	return nil
}

// Update replaces a row within a transaction (insert-only: delete +
// insert).
func (t *Table) Update(tx *Tx, id RowID, row []Value) error {
	if t.db.wal == nil {
		return t.inner.Update(tx, id, row)
	}
	if err := t.Delete(tx, id); err != nil {
		return err
	}
	return t.InsertTx(tx, row)
}

// SelectResult carries qualifying row ids and projected rows.
type SelectResult = exec.Result

// Select runs a conjunctive filter query at the latest snapshot (tx may
// be nil) projecting the named columns (none = positions only). The
// filtered column set is recorded in the plan cache for the placement
// optimizer.
func (t *Table) Select(tx *Tx, predicates []Predicate, project ...string) (*SelectResult, error) {
	return t.SelectCtx(context.Background(), tx, predicates, project...)
}

// SelectCtx is Select with a context; a request trace span carried by
// ctx receives the executor's "exec.query" child span family.
func (t *Table) SelectCtx(ctx context.Context, tx *Tx, predicates []Predicate, project ...string) (*SelectResult, error) {
	q, err := t.prepQuery(predicates, project)
	if err != nil {
		return nil, err
	}
	return t.exec.RunCtx(ctx, q, tx)
}

// prepQuery resolves projection names, records the filtered column set
// in the plan cache and workload history, and builds the exec query.
func (t *Table) prepQuery(predicates []Predicate, project []string) (exec.Query, error) {
	q, err := t.resolveQuery(predicates, project)
	if err != nil {
		return exec.Query{}, err
	}
	cols := make([]int, 0, len(predicates))
	for _, p := range predicates {
		cols = append(cols, p.Column)
	}
	if len(cols) > 0 {
		t.plans.Record(cols)
		t.history.Record(cols)
	}
	return q, nil
}

// resolveQuery resolves projection names without recording the query
// into the plan cache — plan-only introspection (Table.Explain) must
// not disturb the workload the advisor extracts.
func (t *Table) resolveQuery(predicates []Predicate, project []string) (exec.Query, error) {
	proj := make([]int, 0, len(project))
	for _, name := range project {
		c := t.inner.Schema().IndexOf(name)
		if c < 0 {
			return exec.Query{}, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), name)
		}
		proj = append(proj, c)
	}
	return exec.Query{Predicates: predicates, Project: proj}, nil
}

// SelectTraced is Select with per-query tracing: the returned trace
// records the filter ordering chosen, per-operator access paths
// (including scan-to-probe switchovers), morsels per worker, rows
// qualified and the modeled cost split per device. Traced queries feed
// the plan cache exactly like Select.
func (t *Table) SelectTraced(tx *Tx, predicates []Predicate, project ...string) (*SelectResult, *QueryTrace, error) {
	return t.SelectTracedCtx(context.Background(), tx, predicates, project...)
}

// SelectTracedCtx is SelectTraced with a context; see SelectCtx.
func (t *Table) SelectTracedCtx(ctx context.Context, tx *Tx, predicates []Predicate, project ...string) (*SelectResult, *QueryTrace, error) {
	q, err := t.prepQuery(predicates, project)
	if err != nil {
		return nil, nil, err
	}
	return t.exec.RunTracedCtx(ctx, q, tx)
}

// Get reconstructs a full tuple by row id.
func (t *Table) Get(id RowID) ([]Value, error) {
	return t.exec.Reconstruct(id)
}

// GetValue reads one cell.
func (t *Table) GetValue(id RowID, column string) (Value, error) {
	c := t.inner.Schema().IndexOf(column)
	if c < 0 {
		return value.Value{}, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), column)
	}
	return t.inner.GetValue(id, c)
}

// Sum aggregates a numeric column over the given rows.
func (t *Table) Sum(column string, ids []RowID) (float64, error) {
	c := t.inner.Schema().IndexOf(column)
	if c < 0 {
		return 0, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), column)
	}
	return t.exec.Sum(c, ids)
}

// CreateIndex builds a DRAM-resident B+-tree over the named column's
// main partition (indexes are never evicted).
func (t *Table) CreateIndex(column string) error {
	c := t.inner.Schema().IndexOf(column)
	if c < 0 {
		return fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), column)
	}
	if err := t.inner.CreateIndex(c); err != nil {
		return err
	}
	if t.db.wal != nil {
		return t.db.wal.AppendIndex(t.Name(), []int{c})
	}
	return nil
}

// Merge folds the delta partition into the main partition under the
// current layout.
func (t *Table) Merge() error { return t.inner.Merge() }

// Layout reports per column whether it is DRAM-resident (MRC).
func (t *Table) Layout() []bool { return t.inner.Layout() }

// MemoryBytes returns the table's DRAM footprint.
func (t *Table) MemoryBytes() int64 { return t.inner.MemoryBytes() }

// SecondaryBytes returns the table's secondary-storage footprint.
func (t *Table) SecondaryBytes() int64 { return t.inner.SecondaryBytes() }

// PlanCache exposes the recorded workload (distinct plans and counts).
func (t *Table) PlanCache() *workload.PlanCache { return t.plans }

// Inner exposes the underlying storage-engine table for advanced use
// (experiments, benchmarks).
func (t *Table) Inner() *table.Table { return t.inner }

// Executor exposes the table's query executor for advanced use.
func (t *Table) Executor() *exec.Executor { return t.exec }

// GroupBySum groups the given rows by one column and sums a numeric
// column within each group.
func (t *Table) GroupBySum(groupColumn, sumColumn string, ids []RowID) (map[Value]float64, error) {
	g := t.inner.Schema().IndexOf(groupColumn)
	if g < 0 {
		return nil, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), groupColumn)
	}
	a := t.inner.Schema().IndexOf(sumColumn)
	if a < 0 {
		return nil, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), sumColumn)
	}
	return t.exec.GroupBySum(g, a, ids)
}
