package tierdb

import (
	"fmt"

	"tierdb/internal/core"
	"tierdb/internal/workload"
)

// Re-exported column selection model (the paper's primary contribution,
// Section III). These aliases let applications use the optimization
// model standalone, without the storage engine.
type (
	// Workload is the column selection input: columns and queries.
	Workload = core.Workload
	// WorkloadColumn describes one column of the model.
	WorkloadColumn = core.Column
	// WorkloadQuery is one plan: filtered columns and frequency.
	WorkloadQuery = core.Query
	// CostParams calibrates the bandwidth-centric cost model.
	CostParams = core.CostParams
	// Allocation is a placement decision with its modeled cost.
	Allocation = core.Allocation
	// ParetoPoint is one point of the efficient frontier.
	ParetoPoint = core.ParetoPoint
)

// Method selects the placement algorithm.
type Method int

const (
	// MethodILP solves the integer program (2)-(3) exactly — the
	// efficient frontier.
	MethodILP Method = iota
	// MethodExplicit computes the Pareto-optimal explicit solution of
	// Theorem 2 (no solver, milliseconds even for tens of thousands of
	// columns).
	MethodExplicit
	// MethodFilling is the explicit solution plus the filling
	// heuristic of Remark 2.
	MethodFilling
	// MethodGreedyRatio is the general marginal-gain principle of
	// Remark 3 (re-evaluates the cost model each step).
	MethodGreedyRatio
	// MethodFrequency is benchmark heuristic H1 (most-used columns
	// first).
	MethodFrequency
	// MethodSelectivity is benchmark heuristic H2 (most restrictive
	// columns first).
	MethodSelectivity
	// MethodSelectivityFrequency is benchmark heuristic H3
	// (selectivity/frequency ratio).
	MethodSelectivityFrequency
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodILP:
		return "ILP (optimal)"
	case MethodExplicit:
		return "explicit (Theorem 2)"
	case MethodFilling:
		return "explicit + filling"
	case MethodGreedyRatio:
		return "greedy ratio (Remark 3)"
	case MethodFrequency:
		return "H1 (frequency)"
	case MethodSelectivity:
		return "H2 (selectivity)"
	case MethodSelectivityFrequency:
		return "H3 (selectivity/frequency)"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// PlacementOptions parameterizes RecommendLayout and Solve.
type PlacementOptions struct {
	// Budget is the DRAM budget in bytes; alternatively set
	// RelativeBudget.
	Budget int64
	// RelativeBudget is the budget as a fraction of the total column
	// bytes (w in the paper); used when Budget is zero.
	RelativeBudget float64
	// Method selects the algorithm; default MethodExplicit.
	Method Method
	// Beta is the per-byte reallocation cost (Section III-D); zero
	// ignores the current placement.
	Beta float64
	// Current is the current allocation y for reallocation-aware
	// optimization; nil derives it from the table layout (in
	// RecommendLayout) or treats everything as evicted (in Solve).
	Current []bool
	// Pinned lists column names forced to stay DRAM-resident.
	Pinned []string
	// Costs calibrates the cost model; zero value selects defaults.
	Costs CostParams
}

// Layout is a recommended placement together with its model estimates.
type Layout struct {
	// InDRAM is the per-column decision (index-aligned with the table
	// schema / workload columns).
	InDRAM []bool
	// EstimatedCost is the modeled workload scan cost F(x).
	EstimatedCost float64
	// Memory is M(x) in bytes.
	Memory int64
	// RelativePerformance is minimal cost / EstimatedCost (<= 1).
	RelativePerformance float64
}

// Solve runs the column selection model on a standalone workload.
func Solve(w *Workload, opts PlacementOptions) (Layout, error) {
	costs := opts.Costs
	if costs.CMM == 0 && costs.CSS == 0 {
		costs = core.DefaultCostParams()
	}
	budget := opts.Budget
	if budget == 0 && opts.RelativeBudget > 0 {
		budget = int64(opts.RelativeBudget * float64(w.TotalSize()))
	}
	if opts.Current != nil && len(opts.Current) != len(w.Columns) {
		return Layout{}, fmt.Errorf("tierdb: current allocation has %d entries, want %d", len(opts.Current), len(w.Columns))
	}

	var (
		alloc core.Allocation
		err   error
	)
	switch opts.Method {
	case MethodILP:
		alloc, err = core.OptimalILPRealloc(w, costs, budget, opts.Current, opts.Beta)
	case MethodExplicit:
		alloc, err = core.ExplicitForBudget(w, costs, budget, opts.Current, opts.Beta)
	case MethodFilling:
		alloc, err = core.FillingForBudget(w, costs, budget, opts.Current, opts.Beta)
	case MethodGreedyRatio:
		alloc, err = core.GreedyRatio(w, costs, budget)
	case MethodFrequency:
		alloc, err = core.SolveHeuristic(w, costs, budget, core.HeuristicFrequency)
	case MethodSelectivity:
		alloc, err = core.SolveHeuristic(w, costs, budget, core.HeuristicSelectivity)
	case MethodSelectivityFrequency:
		alloc, err = core.SolveHeuristic(w, costs, budget, core.HeuristicSelectivityFrequency)
	default:
		return Layout{}, fmt.Errorf("tierdb: unknown method %d", int(opts.Method))
	}
	if err != nil {
		return Layout{}, err
	}
	return Layout{
		InDRAM:              alloc.InDRAM,
		EstimatedCost:       alloc.Cost,
		Memory:              alloc.Memory,
		RelativePerformance: core.RelativePerformance(w, costs, alloc),
	}, nil
}

// ExtractWorkload builds the column selection input from the table's
// statistics and its recorded plan cache.
func (t *Table) ExtractWorkload(pinned []string) (*Workload, error) {
	pinnedIdx, err := t.resolve(pinned)
	if err != nil {
		return nil, err
	}
	return workload.Extract(t.inner, t.plans, pinnedIdx)
}

// RecommendLayout analyzes the table's plan cache and returns the
// placement for the requested budget. Columns never filtered are
// evicted first (they have zero benefit); the remaining placement
// follows the selected method. When Beta > 0 and Current is nil, the
// table's present layout serves as the reallocation baseline.
func (t *Table) RecommendLayout(opts PlacementOptions) (Layout, error) {
	w, err := t.ExtractWorkload(opts.Pinned)
	if err != nil {
		return Layout{}, err
	}
	if opts.Beta > 0 && opts.Current == nil {
		opts.Current = t.inner.Layout()
	}
	opts.Pinned = nil // already encoded in the workload
	return Solve(w, opts)
}

// ApplyLayout re-tiers the table's main partition to the recommendation
// (a merge pass; the paper schedules this in maintenance windows).
func (t *Table) ApplyLayout(l Layout) error {
	if err := t.inner.ApplyLayout(l.InDRAM); err != nil {
		return err
	}
	if t.db.wal != nil {
		return t.db.wal.AppendLayout(t.Name(), l.InDRAM)
	}
	return nil
}

// Frontier sweeps relative budgets and returns the efficient frontier
// of the table's workload (Figure 3). Method must be one of MethodILP,
// MethodExplicit or MethodFilling.
func (t *Table) Frontier(relativeBudgets []float64, m Method) ([]ParetoPoint, error) {
	w, err := t.ExtractWorkload(nil)
	if err != nil {
		return nil, err
	}
	return FrontierOf(w, relativeBudgets, m)
}

// FrontierOf computes frontier points on a standalone workload.
func FrontierOf(w *Workload, relativeBudgets []float64, m Method) ([]ParetoPoint, error) {
	var fm core.FrontierMethod
	switch m {
	case MethodILP:
		fm = core.FrontierILP
	case MethodExplicit:
		fm = core.FrontierContinuous
	case MethodFilling:
		fm = core.FrontierFilling
	default:
		return nil, fmt.Errorf("tierdb: frontier supports ILP, explicit and filling; got %s", m)
	}
	return core.Frontier(w, core.DefaultCostParams(), relativeBudgets, fm)
}

// resolve maps column names to schema positions.
func (t *Table) resolve(names []string) ([]int, error) {
	out := make([]int, 0, len(names))
	for _, n := range names {
		c := t.inner.Schema().IndexOf(n)
		if c < 0 {
			return nil, fmt.Errorf("tierdb: table %s has no column %q", t.inner.Name(), n)
		}
		out = append(out, c)
	}
	return out, nil
}
