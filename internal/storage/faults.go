package storage

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error produced by a FaultStore when a fault fires.
var ErrInjected = errors.New("storage: injected fault")

// FaultStore wraps a Store and fails operations on demand — a chaos
// testing aid used across the engine's failure-injection tests. Faults
// are armed by operation count: the Nth read (or write) after arming
// fails with ErrInjected, and subsequent operations succeed again
// (transient fault) or keep failing (sticky fault).
type FaultStore struct {
	inner Store

	readCountdown  atomic.Int64 // <0: disarmed
	writeCountdown atomic.Int64
	sticky         atomic.Bool
	readsFailed    atomic.Int64
	writesFailed   atomic.Int64
}

// NewFaultStore wraps inner with disarmed fault triggers.
func NewFaultStore(inner Store) *FaultStore {
	f := &FaultStore{inner: inner}
	f.readCountdown.Store(-1)
	f.writeCountdown.Store(-1)
	return f
}

// FailReadAfter arms the read fault: the n-th subsequent ReadPage
// fails (n=1 fails the next read). sticky keeps failing afterwards.
func (f *FaultStore) FailReadAfter(n int64, sticky bool) {
	f.readCountdown.Store(n)
	f.sticky.Store(sticky)
}

// FailWriteAfter arms the write fault.
func (f *FaultStore) FailWriteAfter(n int64, sticky bool) {
	f.writeCountdown.Store(n)
	f.sticky.Store(sticky)
}

// Disarm clears all fault triggers.
func (f *FaultStore) Disarm() {
	f.readCountdown.Store(-1)
	f.writeCountdown.Store(-1)
	f.sticky.Store(false)
}

// ReadsFailed returns how many reads were failed.
func (f *FaultStore) ReadsFailed() int64 { return f.readsFailed.Load() }

// WritesFailed returns how many writes were failed.
func (f *FaultStore) WritesFailed() int64 { return f.writesFailed.Load() }

// shouldFail decrements the countdown and reports whether this
// operation fails.
func (f *FaultStore) shouldFail(countdown *atomic.Int64) bool {
	for {
		n := countdown.Load()
		if n < 0 {
			return false
		}
		if n == 0 {
			// Countdown exhausted: sticky faults keep failing.
			return f.sticky.Load()
		}
		if countdown.CompareAndSwap(n, n-1) {
			if n == 1 {
				if !f.sticky.Load() {
					countdown.Store(-1)
				} else {
					countdown.Store(0)
				}
				return true
			}
			return false
		}
	}
}

// ReadPage implements Store.
func (f *FaultStore) ReadPage(id PageID, buf []byte) error {
	if f.shouldFail(&f.readCountdown) {
		f.readsFailed.Add(1)
		return ErrInjected
	}
	return f.inner.ReadPage(id, buf)
}

// WritePage implements Store.
func (f *FaultStore) WritePage(id PageID, buf []byte) error {
	if f.shouldFail(&f.writeCountdown) {
		f.writesFailed.Add(1)
		return ErrInjected
	}
	return f.inner.WritePage(id, buf)
}

// Allocate implements Store.
func (f *FaultStore) Allocate() (PageID, error) { return f.inner.Allocate() }

// FreePages forwards to the inner store (never faulted: freeing is
// in-memory metadata), implementing PageFreer when the inner store does.
func (f *FaultStore) FreePages(ids []PageID) error {
	if p, ok := f.inner.(PageFreer); ok {
		return p.FreePages(ids)
	}
	return nil
}

// NumPages implements Store.
func (f *FaultStore) NumPages() int64 { return f.inner.NumPages() }

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }
