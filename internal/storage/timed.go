package storage

import (
	"strings"
	"sync/atomic"
	"time"

	"tierdb/internal/device"
	"tierdb/internal/metrics"
)

// Clock accumulates modeled device time. It is the virtual clock the
// reproduction uses instead of the paper's physical testbed: every page
// access charges the modeled latency of the configured device, and
// experiment harnesses report Clock totals as "measured" runtimes.
// All methods are safe for concurrent use; concurrent workers each keep
// a share of the modeled time, mirroring per-thread wall-clock.
type Clock struct {
	nanos atomic.Int64
	reads atomic.Int64
}

// Advance adds d to the accumulated virtual time.
func (c *Clock) Advance(d time.Duration) {
	c.nanos.Add(int64(d))
}

// Elapsed returns the accumulated virtual time.
func (c *Clock) Elapsed() time.Duration {
	return time.Duration(c.nanos.Load())
}

// Reads returns the number of timed page reads.
func (c *Clock) Reads() int64 { return c.reads.Load() }

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.nanos.Store(0)
	c.reads.Store(0)
}

// Absorb merges per-worker clocks into c after a parallel phase of
// `workers` concurrent streams: the read count advances by the sum
// (every page access really happened), the elapsed time by the phase's
// modeled wall-clock — the slowest worker's share. Morsel-driven
// scheduling keeps workers balanced, so the slowest worker's time is
// the per-worker mean, charged here as sum/workers; using the mean
// rather than the literal maximum keeps the model deterministic even
// when the Go scheduler hands most morsels to one goroutine (few
// cores, GOMAXPROCS=1). Workers charging private clocks and one Absorb
// at the barrier replace a shared hot clock on the scan path.
func (c *Clock) Absorb(workers int, clocks ...*Clock) {
	if workers < 1 {
		workers = 1
	}
	var nanos, reads int64
	for _, w := range clocks {
		if w == nil {
			continue
		}
		nanos += w.nanos.Load()
		reads += w.reads.Load()
	}
	if nanos > 0 {
		c.nanos.Add((nanos + int64(workers) - 1) / int64(workers))
	}
	if reads > 0 {
		c.reads.Add(reads)
	}
}

// TimedStore wraps a Store and charges modeled device latencies for
// every page access to a Clock. Threads is the concurrency level the
// timing model assumes (queue-depth effects).
type TimedStore struct {
	inner   Store
	profile device.Profile
	clock   *Clock
	threads int
	m       storeInstruments
}

// storeInstruments holds the per-device metric handles. It is embedded
// by value, so Fork copies the handles and worker views feed the same
// instruments; all handles are nil (no-op) on unobserved stores.
type storeInstruments struct {
	pageReads      *metrics.Counter
	pageWrites     *metrics.Counter
	readBytes      *metrics.Counter
	writeBytes     *metrics.Counter
	modeledReadNs  *metrics.Counter
	modeledWriteNs *metrics.Counter
}

// Observe registers per-device IO instruments named
// device.<name>.{page_reads,page_writes,read_bytes,write_bytes,
// modeled_read_ns,modeled_write_ns}, where <name> is the device
// profile's name sanitized for the metric namespace ("3D XPoint" →
// "3d_xpoint"). A nil registry leaves the store unobserved.
func (s *TimedStore) Observe(r *metrics.Registry) {
	p := "device." + metricName(s.profile.Name)
	s.m = storeInstruments{
		pageReads:      r.Counter(p + ".page_reads"),
		pageWrites:     r.Counter(p + ".page_writes"),
		readBytes:      r.Counter(p + ".read_bytes"),
		writeBytes:     r.Counter(p + ".write_bytes"),
		modeledReadNs:  r.Counter(p + ".modeled_read_ns"),
		modeledWriteNs: r.Counter(p + ".modeled_write_ns"),
	}
}

// metricName lowercases a device name and folds every non-alphanumeric
// run into underscores so it can serve as a metric-name segment.
func metricName(name string) string {
	if name == "" {
		return "unknown"
	}
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// NewTimedStore wraps inner with the timing model of profile, charging
// time to clock assuming `threads` concurrent access streams.
func NewTimedStore(inner Store, profile device.Profile, clock *Clock, threads int) *TimedStore {
	if threads < 1 {
		threads = 1
	}
	return &TimedStore{inner: inner, profile: profile, clock: clock, threads: threads}
}

// Profile returns the device profile used for timing.
func (s *TimedStore) Profile() device.Profile { return s.profile }

// Clock returns the virtual clock time is charged to.
func (s *TimedStore) Clock() *Clock { return s.clock }

// Fork returns a view of the store that charges the given clock and
// assumes `threads` concurrent access streams; the underlying device
// and page data are shared. Parallel scan workers each fork a private
// clock so device time accumulates without a shared hot counter, and
// the executor merges the forks back with Clock.Absorb.
func (s *TimedStore) Fork(clock *Clock, threads int) *TimedStore {
	if threads < 1 {
		threads = 1
	}
	return &TimedStore{inner: s.inner, profile: s.profile, clock: clock, threads: threads, m: s.m}
}

// SetThreads adjusts the assumed concurrency level for subsequent
// accesses.
func (s *TimedStore) SetThreads(threads int) {
	if threads < 1 {
		threads = 1
	}
	s.threads = threads
}

// ReadPage implements Store, charging one random-read latency.
func (s *TimedStore) ReadPage(id PageID, buf []byte) error {
	d := s.profile.RandomReadTime(1, s.threads)
	s.clock.Advance(d)
	s.clock.reads.Add(1)
	s.m.pageReads.Inc()
	s.m.readBytes.Add(PageSize)
	s.m.modeledReadNs.Add(int64(d))
	return s.inner.ReadPage(id, buf)
}

// WritePage implements Store, charging one write latency.
func (s *TimedStore) WritePage(id PageID, buf []byte) error {
	s.clock.Advance(s.profile.WriteLatency)
	s.m.pageWrites.Inc()
	s.m.writeBytes.Add(PageSize)
	s.m.modeledWriteNs.Add(int64(s.profile.WriteLatency))
	return s.inner.WritePage(id, buf)
}

// Allocate implements Store (untimed; allocation is metadata).
func (s *TimedStore) Allocate() (PageID, error) { return s.inner.Allocate() }

// FreePages forwards to the inner store's freelist (untimed metadata),
// implementing PageFreer when the inner store does.
func (s *TimedStore) FreePages(ids []PageID) error {
	if f, ok := s.inner.(PageFreer); ok {
		return f.FreePages(ids)
	}
	return nil
}

// NumPages implements Store.
func (s *TimedStore) NumPages() int64 { return s.inner.NumPages() }

// Close implements Store.
func (s *TimedStore) Close() error { return s.inner.Close() }
