package storage

import (
	"errors"
	"sync"
	"testing"
)

func TestFaultStoreCountdown(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)

	// n=2: first read succeeds, second fails, third succeeds
	// (transient).
	fs.FailReadAfter(2, false)
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if err := fs.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2: %v, want ErrInjected", err)
	}
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("read 3: %v", err)
	}
	if fs.ReadsFailed() != 1 {
		t.Errorf("ReadsFailed = %d", fs.ReadsFailed())
	}
}

func TestFaultStoreSticky(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)
	fs.FailReadAfter(1, true)
	for i := 0; i < 3; i++ {
		if err := fs.ReadPage(id, buf); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky read %d: %v", i, err)
		}
	}
	fs.Disarm()
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestFaultStoreWrites(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)
	fs.FailWriteAfter(1, false)
	if err := fs.WritePage(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("write fault: %v", err)
	}
	if err := fs.WritePage(id, buf); err != nil {
		t.Fatalf("write after transient: %v", err)
	}
	if fs.WritesFailed() != 1 {
		t.Errorf("WritesFailed = %d", fs.WritesFailed())
	}
}

func TestFaultStoreConcurrentExactlyOneFailure(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	id, _ := fs.Allocate()
	fs.FailReadAfter(50, false)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 25; i++ {
				_ = fs.ReadPage(id, buf)
			}
		}()
	}
	wg.Wait()
	if fs.ReadsFailed() != 1 {
		t.Errorf("ReadsFailed = %d, want exactly 1", fs.ReadsFailed())
	}
}
