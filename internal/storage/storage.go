// Package storage provides the paged secondary-storage abstraction used
// by SSCGs: fixed 4 KB pages addressed by PageID, with an in-memory
// store for tests and deterministic benchmarks and a file-backed store
// for real IO. A timed wrapper charges modeled device latencies to a
// virtual clock, which substitutes for the paper's physical SSD/HDD/
// 3D XPoint testbed.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes (the paper's 4 KB unit of
// secondary-storage access).
const PageSize = 4096

// PageID addresses one page within a store.
type PageID uint64

// ErrPageOutOfRange is returned when a page id is not allocated.
var ErrPageOutOfRange = errors.New("storage: page id out of range")

// ErrPageFreed is returned when a freed page is accessed or double-freed
// — a use-after-free guard for the merge's page-reclamation path.
var ErrPageFreed = errors.New("storage: page freed")

// Store is the minimal page device interface: random page reads and
// writes plus allocation of new pages. Implementations must be safe for
// concurrent use.
type Store interface {
	// ReadPage copies page id into buf; buf must be PageSize bytes.
	ReadPage(id PageID, buf []byte) error
	// WritePage copies buf (PageSize bytes) into page id.
	WritePage(id PageID, buf []byte) error
	// Allocate appends a zeroed page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int64
	// Close releases underlying resources.
	Close() error
}

// PageFreer is an optional Store capability: freed pages return to a
// freelist and are handed out again by later Allocate calls (zeroed, as
// Allocate promises). The online merge frees a retired SSCG's pages
// once no reader references it, so repeated merges recycle storage
// instead of growing the store without bound. FreePages on an
// already-free or unallocated id is an error.
type PageFreer interface {
	FreePages(ids []PageID) error
}

// FreePages returns store's pages to its freelist when the store (or a
// wrapper chain ending in one) supports PageFreer; stores without the
// capability ignore the call. The boolean reports whether pages were
// actually freed.
func FreePages(store Store, ids []PageID) (bool, error) {
	if f, ok := store.(PageFreer); ok {
		return true, f.FreePages(ids)
	}
	return false, nil
}

func checkBuf(buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: buffer is %d bytes, want %d", len(buf), PageSize)
	}
	return nil
}

// MemStore is an in-memory page store. It is the default backend for
// simulations: data movement is real, device timing is modeled
// separately by the TimedStore wrapper.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
	free  []PageID
	freed map[PageID]bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{freed: make(map[PageID]bool)} }

// ReadPage implements Store.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	if err := checkBuf(buf); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(s.pages))
	}
	if s.freed[id] {
		return fmt.Errorf("%w: page %d is freed", ErrPageFreed, id)
	}
	copy(buf, s.pages[id])
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	if err := checkBuf(buf); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(s.pages))
	}
	if s.freed[id] {
		return fmt.Errorf("%w: page %d is freed", ErrPageFreed, id)
	}
	copy(s.pages[id], buf)
	return nil
}

// Allocate implements Store.
func (s *MemStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		delete(s.freed, id)
		clear(s.pages[id])
		return id, nil
	}
	s.pages = append(s.pages, make([]byte, PageSize))
	return PageID(len(s.pages) - 1), nil
}

// FreePages implements PageFreer.
func (s *MemStore) FreePages(ids []PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if int(id) >= len(s.pages) {
			return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(s.pages))
		}
		if s.freed[id] {
			return fmt.Errorf("%w: page %d double-freed", ErrPageFreed, id)
		}
		s.freed[id] = true
		s.free = append(s.free, id)
	}
	return nil
}

// FreeCount returns the number of pages currently on the freelist.
func (s *MemStore) FreeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.free)
}

// NumPages implements Store.
func (s *MemStore) NumPages() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.pages))
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore is a page store backed by a single file, using positional
// reads and writes. It demonstrates the real IO path of the engine.
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	n     int64
	path  string
	free  []PageID
	freed map[PageID]bool
}

// NewFileStore creates (or truncates) a page file at path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	return &FileStore{f: f, path: path, freed: make(map[PageID]bool)}, nil
}

// checkLive verifies id is allocated and not on the freelist.
func (s *FileStore) checkLive(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int64(id) >= s.n {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, s.n)
	}
	if s.freed[id] {
		return fmt.Errorf("%w: page %d is freed", ErrPageFreed, id)
	}
	return nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	if err := checkBuf(buf); err != nil {
		return err
	}
	if err := s.checkLive(id); err != nil {
		return err
	}
	if _, err := s.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	if err := checkBuf(buf); err != nil {
		return err
	}
	if err := s.checkLive(id); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		delete(s.freed, id)
		if _, err := s.f.WriteAt(make([]byte, PageSize), int64(id)*PageSize); err != nil {
			return 0, fmt.Errorf("storage: zero recycled page %d: %w", id, err)
		}
		return id, nil
	}
	id := PageID(s.n)
	if err := s.f.Truncate((s.n + 1) * PageSize); err != nil {
		return 0, fmt.Errorf("storage: grow page file: %w", err)
	}
	s.n++
	return id, nil
}

// FreePages implements PageFreer.
func (s *FileStore) FreePages(ids []PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if int64(id) >= s.n {
			return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, s.n)
		}
		if s.freed[id] {
			return fmt.Errorf("%w: page %d double-freed", ErrPageFreed, id)
		}
		s.freed[id] = true
		s.free = append(s.free, id)
	}
	return nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }
