package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tierdb/internal/device"
)

func testStoreRoundTrip(t *testing.T, s Store) {
	t.Helper()
	id1, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatalf("Allocate returned duplicate id %d", id1)
	}
	if s.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", s.NumPages())
	}
	w := make([]byte, PageSize)
	for i := range w {
		w[i] = byte(i % 251)
	}
	if err := s.WritePage(id2, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, PageSize)
	if err := s.ReadPage(id2, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, r) {
		t.Error("page round trip corrupted data")
	}
	// Fresh page reads back zeroed.
	if err := s.ReadPage(id1, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, make([]byte, PageSize)) {
		t.Error("fresh page not zeroed")
	}
	// Out-of-range and bad buffer sizes error.
	if err := s.ReadPage(99, r); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("out-of-range read: %v", err)
	}
	if err := s.WritePage(99, w); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("out-of-range write: %v", err)
	}
	if err := s.ReadPage(id1, make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
	if err := s.WritePage(id1, make([]byte, 10)); err == nil {
		t.Error("short write buffer accepted")
	}
}

func TestMemStore(t *testing.T) {
	testStoreRoundTrip(t, NewMemStore())
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testStoreRoundTrip(t, s)
	if s.Path() != path {
		t.Errorf("Path = %q, want %q", s.Path(), path)
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	s := NewMemStore()
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 200; i++ {
				id := ids[(g*31+i)%pages]
				for j := range buf {
					buf[j] = byte(g)
				}
				if err := s.WritePage(id, buf); err != nil {
					t.Error(err)
					return
				}
				if err := s.ReadPage(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTimedStoreChargesClock(t *testing.T) {
	var clock Clock
	ts := NewTimedStore(NewMemStore(), device.XPoint, &clock, 1)
	id, err := ts.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	const n = 100
	for i := 0; i < n; i++ {
		if err := ts.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	want := device.XPoint.RandomReadTime(n, 1)
	got := clock.Elapsed()
	if got < want*9/10 || got > want*11/10 {
		t.Errorf("clock = %v, want ~%v", got, want)
	}
	if clock.Reads() != n {
		t.Errorf("Reads = %d, want %d", clock.Reads(), n)
	}
	clock.Reset()
	if clock.Elapsed() != 0 || clock.Reads() != 0 {
		t.Error("Reset did not zero the clock")
	}
}

func TestTimedStoreWriteCharges(t *testing.T) {
	var clock Clock
	ts := NewTimedStore(NewMemStore(), device.CSSD, &clock, 1)
	id, _ := ts.Allocate()
	buf := make([]byte, PageSize)
	if err := ts.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if clock.Elapsed() < device.CSSD.WriteLatency {
		t.Errorf("write charged %v, want >= %v", clock.Elapsed(), device.CSSD.WriteLatency)
	}
}

func TestTimedStoreThreads(t *testing.T) {
	var clock Clock
	ts := NewTimedStore(NewMemStore(), device.HDD, &clock, 1)
	id, _ := ts.Allocate()
	buf := make([]byte, PageSize)
	if err := ts.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	qd1 := clock.Elapsed()
	clock.Reset()
	ts.SetThreads(8)
	if err := ts.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if clock.Elapsed() <= qd1 {
		t.Error("HDD concurrent read should be slower than QD1")
	}
	if ts.Profile().Name != "HDD" {
		t.Errorf("Profile = %q", ts.Profile().Name)
	}
	if ts.Clock() != &clock {
		t.Error("Clock accessor mismatch")
	}
	var elapsed time.Duration = ts.Clock().Elapsed()
	_ = elapsed
}
