package experiments

import (
	"fmt"
	"time"

	"tierdb/internal/device"
	"tierdb/internal/storage"
)

// Scan/probe workload shape of the paper's Figure 9: one integer
// attribute of a 10 M row table, stored in SSCGs of varying width.
const (
	scanRows = 10_000_000
	attrSize = 8
)

// dramScanBandwidth is the effective DRAM scan rate of a SIMD scan over
// an uncompressed-equivalent column (bytes of logical data per second).
const dramScanBandwidth = 10 << 30

// dramScanParallelism caps how far DRAM scans scale with threads
// (socket memory bandwidth saturates quickly on the paper's NUMA box).
const dramScanParallelism = 2

// dramProbe is the pipelined DRAM cost per probed position (independent
// accesses overlap, unlike the dependent dictionary decode).
const dramProbe = 25 * time.Nanosecond

// dramScanTime models scanning one attribute's logical bytes in DRAM.
func dramScanTime(bytes int64, threads int) time.Duration {
	par := threads
	if par > dramScanParallelism {
		par = dramScanParallelism
	}
	if par < 1 {
		par = 1
	}
	sec := float64(bytes) / (float64(dramScanBandwidth) * float64(par))
	return time.Duration(sec * float64(time.Second))
}

// deviceScanTime models scanning one attribute that lives in an SSCG of
// `width` integer attributes: every page of the group streams from the
// device, split across threads.
func deviceScanTime(p device.Profile, width, threads int) time.Duration {
	physical := int64(scanRows) * int64(width) * attrSize
	// Round up to whole pages.
	pages := (physical + storage.PageSize - 1) / storage.PageSize
	physical = pages * storage.PageSize
	if threads < 1 {
		threads = 1
	}
	return p.SequentialReadTime(physical/int64(threads), threads)
}

// deviceProbeTime models probing `count` positions: one synchronous
// 4 KB read per position per thread stream.
func deviceProbeTime(p device.Profile, count int64, threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	perThread := (count + int64(threads) - 1) / int64(threads)
	return p.RandomReadTime(perThread, threads)
}

// Fig9a regenerates Figure 9(a): runtime of scanning one attribute
// stored in SSCGs of width 1, 10 and 100, across devices and thread
// counts. Costs scale linearly with the SSCG width because each 4 KB
// page holds proportionally fewer values of the scanned attribute.
func Fig9a(int64) (*Report, error) {
	r := &Report{
		ID:     "fig9a",
		Title:  "Scanning a tiered attribute vs SSCG width (paper Fig. 9a)",
		Header: []string{"Device", "Threads", "scan 1/1", "scan 1/10", "scan 1/100", "DRAM (MRC)"},
	}
	widths := []int{1, 10, 100}
	for _, prof := range device.Profiles() {
		for _, threads := range []int{1, 8, 32} {
			cells := []string{prof.Name, fmt.Sprintf("%d", threads)}
			for _, w := range widths {
				cells = append(cells, deviceScanTime(prof, w, threads).Round(time.Millisecond).String())
			}
			cells = append(cells, dramScanTime(scanRows*attrSize, threads).Round(time.Millisecond).String())
			r.Rows = append(r.Rows, cells)
		}
	}
	// Linearity check for the note.
	t1 := deviceScanTime(device.ESSD, 1, 1)
	t100 := deviceScanTime(device.ESSD, 100, 1)
	r.AddNote("costs scale linearly with SSCG width: 1/100 vs 1/1 on ESSD = %.0fx (effective data per 4 KB page)",
		float64(t100)/float64(t1))
	h1 := deviceScanTime(device.HDD, 100, 1)
	h8 := deviceScanTime(device.HDD, 100, 8)
	r.AddNote("HDDs handle pure sequential requests well but slow down %.1fx with 8 concurrent scan streams",
		float64(h8*8)/float64(h1*1))
	return r, nil
}

// Fig9b regenerates Figure 9(b): probing a tiered attribute (SSCG width
// 100) at 0.1 %% and 10 %% selectivity across devices and thread counts.
// NAND devices need deep IO queues; HDDs collapse under concurrent
// random access.
func Fig9b(int64) (*Report, error) {
	r := &Report{
		ID:     "fig9b",
		Title:  "Probing a tiered attribute (SSCG 1/100) (paper Fig. 9b)",
		Header: []string{"Device", "Threads", "probe 0.1%", "probe 10%", "DRAM probe 0.1%", "DRAM probe 10%"},
	}
	counts := []int64{scanRows / 1000, scanRows / 10}
	for _, prof := range device.Profiles() {
		for _, threads := range []int{1, 8, 32} {
			cells := []string{prof.Name, fmt.Sprintf("%d", threads)}
			for _, c := range counts {
				cells = append(cells, deviceProbeTime(prof, c, threads).Round(time.Millisecond).String())
			}
			for _, c := range counts {
				cells = append(cells, (time.Duration(c) * dramProbe).Round(time.Microsecond).String())
			}
			r.Rows = append(r.Rows, cells)
		}
	}
	e1 := deviceProbeTime(device.ESSD, scanRows/1000, 1)
	e32 := deviceProbeTime(device.ESSD, scanRows/1000, 32)
	r.AddNote("ESSD probing speeds up %.0fx from 1 to 32 threads (bandwidth-optimized NAND needs large IO queues)",
		float64(e1)/float64(e32))
	h1 := deviceProbeTime(device.HDD, scanRows/1000, 1)
	h8 := deviceProbeTime(device.HDD, scanRows/1000, 8)
	r.AddNote("HDD probing degrades under concurrency: aggregate throughput %.1fx worse at 8 threads",
		float64(h8)*8/float64(h1)/8)
	return r, nil
}

// Table4 regenerates Table IV: relative slowdown of the altered access
// patterns against a fully DRAM-resident, dictionary-encoded columnar
// system. Tuple reconstructions use 3D XPoint (values < 1 are
// speedups); scanning and probing use the ESSD, matching the shape of
// the paper's numbers.
func Table4(seed int64) (*Report, error) {
	r := &Report{
		ID:     "table4",
		Title:  "Relative slowdown vs full DRAM residence (paper Table IV)",
		Header: []string{"Pattern", "1 Thread", "8 Threads", "32 Threads"},
	}
	const attrs = 200
	baseline := tupleOverhead + time.Duration(2*attrs)*dramTouch

	// Tuple reconstructions on 3D XPoint: 50 % and 100 % of attributes
	// SSCG-placed, uniform and zipfian accesses.
	type recRow struct {
		label   string
		inSSCG  int
		zipfian bool
	}
	for _, rr := range []recRow{
		{"Uni. tuple rec. (50% SSCG, XPoint)", attrs / 2, false},
		{"Uni. tuple rec. (100% SSCG, XPoint)", attrs, false},
		{"Zipf. tuple rec. (50% SSCG, XPoint)", attrs / 2, true},
		{"Zipf. tuple rec. (100% SSCG, XPoint)", attrs, true},
	} {
		cells := []string{rr.label}
		for _, threads := range []int{1, 8, 32} {
			m, err := newLatencyModel(200_000, attrs-rr.inSSCG, rr.inSSCG, device.XPoint, 0.02, threads, seed)
			if err != nil {
				return nil, err
			}
			rng := newRand(seed + int64(threads))
			var next accessor
			if rr.zipfian {
				next = zipfAccess(rng, 200_000)
			} else {
				next = uniformAccess(rng, 200_000)
			}
			stats, err := m.runReconstructions(5000, next)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.2f", float64(stats.mean)/float64(baseline)))
		}
		r.Rows = append(r.Rows, cells)
	}

	// Scanning 1/100 on the ESSD vs a DRAM MRC scan.
	cells := []string{"Scanning (1/100, ESSD)"}
	for _, threads := range []int{1, 8, 32} {
		dev := deviceScanTime(device.ESSD, 100, threads)
		dram := dramScanTime(scanRows*attrSize, threads)
		cells = append(cells, fmt.Sprintf("%.2f", float64(dev)/float64(dram)))
	}
	r.Rows = append(r.Rows, cells)

	// Probing 1/100 at 0.1 % and 10 % selectivity on the ESSD.
	for _, sel := range []struct {
		label string
		count int64
	}{
		{"Probing (1/100, 0.1%, ESSD)", scanRows / 1000},
		{"Probing (1/100, 10%, ESSD)", scanRows / 10},
	} {
		cells := []string{sel.label}
		for _, threads := range []int{1, 8, 32} {
			dev := deviceProbeTime(device.ESSD, sel.count, threads)
			dram := time.Duration(sel.count) * dramProbe
			cells = append(cells, fmt.Sprintf("%.2f", float64(dev)/float64(dram)))
		}
		r.Rows = append(r.Rows, cells)
	}
	r.AddNote("tuple reconstruction values < 1 are speedups over the DRAM-resident columnar baseline (paper: 0.60-1.02)")
	r.AddNote("paper reference points: scanning 1/100 = 335.69 (1 thread); probing 0.1%% = 5447.11 (1 thread), 78.95 (32 threads)")
	return r, nil
}
