// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns a Report whose rows mirror the
// series the paper plots; cmd/benchrunner prints them and bench_test.go
// wraps them as benchmarks. Absolute numbers come from the analytic
// device models (the substitution for the paper's physical testbed);
// the shapes — who wins, by what factor, where crossovers fall — are
// the reproduction targets, recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier ("table1", "fig3", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data series.
	Rows [][]string
	// Notes carry headline observations (crossovers, factors).
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
