package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"tierdb/internal/amm"
	"tierdb/internal/core"
	"tierdb/internal/device"
	"tierdb/internal/exec"
	"tierdb/internal/metrics"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/value"
	"tierdb/internal/wal"
)

// BenchStats is the machine-readable artifact of the CI bench gate:
// a small set of gate metrics (compared against the checked-in
// baseline by CompareBenchStats) plus the full engine metrics snapshot
// for post-hoc inspection. Every gate metric derives from the virtual
// clock and seeded workload, so it is bit-identical across machines —
// what CI compares is the cost model, not host noise.
type BenchStats struct {
	Experiment string             `json:"experiment"`
	Seed       int64              `json:"seed"`
	Metrics    map[string]float64 `json:"metrics"`
	Snapshot   metrics.Snapshot   `json:"snapshot"`
}

// CIBench runs the fixed CI workload: a 200k-row table with two columns
// evicted to a modeled CSSD behind an AMM cache, a mixed query set
// (DRAM scans, tiered scans, scan-to-probe switchovers, repeated hot
// queries), an OLTP burst with aborts, and a merge. Execution is
// serial so every gate metric is deterministic for a given seed.
func CIBench(seed int64) (BenchStats, *Report, error) {
	const rows = 200_000
	stats := BenchStats{Experiment: "ci", Seed: seed, Metrics: map[string]float64{}}

	s := schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "region", Type: value.Int64},
		{Name: "amount", Type: value.Int64},
		{Name: "payload", Type: value.Int64},
	})
	registry := metrics.NewRegistry()
	clock := &storage.Clock{}
	timed := storage.NewTimedStore(storage.NewMemStore(), device.CSSD, clock, 1)
	timed.Observe(registry)
	// Cache smaller than the SSCG working set, so the gate also covers
	// eviction behavior and a non-trivial hit rate.
	cache, err := amm.New(256, timed)
	if err != nil {
		return stats, nil, err
	}
	cache.Observe(registry)
	mgr := mvcc.NewManager()
	mgr.Observe(registry)
	tbl, err := table.New("cibench", s, table.Options{
		Store: timed, Cache: cache, Manager: mgr, Registry: registry,
	})
	if err != nil {
		return stats, nil, err
	}
	data := make([][]value.Value, rows)
	for i := range data {
		data[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64((i + int(seed)) % 100)),
			value.NewInt(int64(i % 10_000)),
			value.NewInt(int64(i % 7)),
		}
	}
	if err := tbl.BulkAppend(data); err != nil {
		return stats, nil, err
	}
	// id and region stay DRAM-resident; amount and payload tier out.
	if err := tbl.ApplyLayout([]bool{true, true, false, false}); err != nil {
		return stats, nil, err
	}

	clock.Reset()
	// Observability capture runs exactly as in production (trace ring +
	// observed-selectivity EWMAs) so the gate covers its overhead; it
	// never charges the virtual clock, keeping every modeled gate metric
	// bit-identical. The slow-query ring stays off: wall time is host
	// noise.
	recent := metrics.NewTraceRing(64)
	e := exec.New(tbl, exec.Options{Clock: clock, Registry: registry, TraceRing: recent})
	queries := []exec.Query{
		// DRAM scan over the region MRC.
		{Predicates: []exec.Predicate{
			{Column: 1, Op: exec.Between, Value: value.NewInt(10), Hi: value.NewInt(40)},
		}},
		// Tiered scan: a wide range over the evicted amount column.
		{Predicates: []exec.Predicate{
			{Column: 2, Op: exec.Between, Value: value.NewInt(0), Hi: value.NewInt(5_000)},
		}},
		// Scan-to-probe switchover: the id equality leaves one candidate
		// (fraction 1/200k < 0.01 %), so the tiered predicate probes.
		{Predicates: []exec.Predicate{
			{Column: 0, Op: exec.Eq, Value: value.NewInt(int64(rows / 2))},
			{Column: 2, Op: exec.Between, Value: value.NewInt(0), Hi: value.NewInt(10_000)},
		}},
	}
	// Two passes: the second re-touches the same pages, giving the AMM
	// cache hits to report.
	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			if _, err := e.Run(q, nil); err != nil {
				return stats, nil, err
			}
		}
	}

	// OLTP burst: 50 single-row transactions, every 10th aborted.
	for i := 0; i < 50; i++ {
		tx := mgr.Begin()
		row := []value.Value{
			value.NewInt(int64(rows + i)),
			value.NewInt(int64(i % 100)),
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 7)),
		}
		if err := tbl.Insert(tx, row); err != nil {
			return stats, nil, err
		}
		if i%10 == 9 {
			if err := mgr.Abort(tx); err != nil {
				return stats, nil, err
			}
		} else if _, err := mgr.Commit(tx); err != nil {
			return stats, nil, err
		}
	}
	// Online merge: the rebuild re-writes the SSCG through the timed
	// store, so the clock delta is the modeled rebuild cost.
	mergeStart := clock.Elapsed()
	if err := tbl.Merge(); err != nil {
		return stats, nil, err
	}
	mergeNS := clock.Elapsed() - mergeStart

	// Adaptive re-solve: the warm Theorem-2 path the placement daemon
	// runs each cycle (current layout as the reallocation baseline,
	// nonzero beta), on a fixed model of this table and query mix. The
	// gate metric is the modeled scan time of the chosen placement in
	// nanoseconds — bit-identical for a given seed, it regresses if the
	// explicit solver or the reallocation costing drifts.
	adaptiveNS, err := ciAdaptiveSolve(seed)
	if err != nil {
		return stats, nil, err
	}

	// Durability phase: write a fixed 2000-commit write-ahead log, crash
	// nothing, and replay it into a fresh table. The gate metric is the
	// modeled single-threaded DRAM sequential read of the replayed bytes
	// — a deterministic proxy for restart cost that regresses if the
	// record framing bloats or replay silently drops records.
	replayNS, err := ciRecovery(seed, s, registry)
	if err != nil {
		return stats, nil, err
	}

	snap := registry.Snapshot()
	ammStats := cache.Stats()
	stats.Snapshot = snap
	stats.Metrics = map[string]float64{
		"modeled_total_ns":   float64(clock.Elapsed()),
		"exec_dram_ns":       float64(snap.Counters["exec.dram_ns"]),
		"device_read_ns":     float64(snap.Counters["device.cssd.modeled_read_ns"]),
		"page_reads":         float64(clock.Reads()),
		"rows_scanned":       float64(snap.Counters["exec.rows.scanned"]),
		"amm_hit_rate":       ammStats.HitRate(),
		"switchovers":        float64(snap.Counters["exec.switch.scan_to_probe"]),
		"merge_rebuild_ns":   float64(mergeNS),
		"recovery_replay_ns": float64(replayNS),
		"adaptive_solve_ns":  adaptiveNS,
		// Deterministic count of observability capture work (query traces
		// ringed + selectivity samples recorded). Not direction-gated, but
		// its disappearance from a run fails the gate: capture must not be
		// silently lost.
		"obs_capture": float64(snap.Counters["obs.traces_captured"] + snap.Counters["selectivity.samples"]),
	}

	r := &Report{
		ID:     "ci",
		Title:  "CI bench gate: fixed workload, modeled costs and cache effectiveness",
		Header: []string{"Metric", "Value"},
	}
	for _, name := range sortedMetricNames(stats.Metrics) {
		v := stats.Metrics[name]
		cell := fmt.Sprintf("%.4g", v)
		if strings.HasSuffix(name, "_ns") {
			cell = time.Duration(int64(v)).Round(time.Microsecond).String()
		}
		r.AddRow(name, cell)
	}
	r.AddNote("all gate metrics derive from the virtual clock and a seeded workload: deterministic across machines")
	return stats, r, nil
}

// ciAdaptiveSolve models one adaptive-daemon cycle: a warm explicit
// re-solve (ExplicitForBudget with the CI layout as the incumbent and a
// nonzero reallocation price) over a fixed model of the CI table and
// query mix, under a budget that forces a real eviction choice. It
// returns the modeled scan time of the chosen placement in nanoseconds.
func ciAdaptiveSolve(seed int64) (float64, error) {
	const rowBytes = 8 * 200_000 // one Int64 column of the CI table
	w := &core.Workload{
		Columns: []core.Column{
			{Name: "id", Size: rowBytes, Selectivity: 1.0 / 200_000},
			{Name: "region", Size: rowBytes, Selectivity: 1.0 / 100},
			{Name: "amount", Size: rowBytes, Selectivity: 1.0 / 10_000},
			{Name: "payload", Size: rowBytes, Selectivity: 1.0 / 7},
		},
		Queries: []core.Query{
			{Columns: []int{1}, Frequency: float64(8 + seed%4)},
			{Columns: []int{2}, Frequency: 6},
			{Columns: []int{0, 2}, Frequency: 4},
			{Columns: []int{3, 1}, Frequency: 2},
		},
	}
	current := []bool{true, true, false, false}
	alloc, err := core.ExplicitForBudget(w, core.DefaultCostParams(), 2*rowBytes, current, 2e-10)
	if err != nil {
		return 0, err
	}
	return core.ScanCost(w, core.DefaultCostParams(), alloc.InDRAM) * 1e9, nil
}

// ciRecovery writes a seeded WAL through the real log layer, replays it
// into a fresh table and returns the modeled replay time (DRAM
// sequential read over the replayed bytes). Record counts are verified:
// replay dropping commits fails the run outright rather than shifting a
// metric.
func ciRecovery(seed int64, s *schema.Schema, registry *metrics.Registry) (time.Duration, error) {
	const commits = 2000
	fs := wal.NewMemFS()
	log, err := wal.Open(wal.Options{FS: fs, Dir: "wal", Policy: wal.SyncOff, Registry: registry})
	if err != nil {
		return 0, err
	}
	if err := log.AppendCreateTable("recovered", s.Fields()); err != nil {
		return 0, err
	}
	var ts mvcc.Timestamp = 1
	for i := 0; i < commits; i++ {
		ops := []mvcc.RedoOp{{Table: "recovered", Row: []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64((i + int(seed)) % 100)),
			value.NewInt(int64(i % 10_000)),
			value.NewInt(int64(i % 7)),
		}}}
		if _, err := log.AppendCommit(context.Background(), func() mvcc.Timestamp { ts++; return ts }, ops); err != nil {
			return 0, err
		}
	}
	if err := log.Close(); err != nil {
		return 0, err
	}
	h := &ciReplayHandler{mgr: mvcc.NewManager()}
	rstats, err := wal.Replay(fs, "wal", h)
	if err != nil {
		return 0, err
	}
	h.mgr.AdvanceTo(rstats.MaxTs)
	if h.tbl == nil || h.tbl.VisibleCount() != commits {
		return 0, fmt.Errorf("ci recovery replayed %d of %d commits", h.rows, commits)
	}
	return device.DRAM.SequentialReadTime(rstats.Bytes, 1), nil
}

// ciReplayHandler applies replayed records into a fresh engine table.
type ciReplayHandler struct {
	mgr  *mvcc.Manager
	tbl  *table.Table
	rows int
}

func (h *ciReplayHandler) CreateTable(name string, fields []schema.Field) error {
	s, err := schema.New(fields)
	if err != nil {
		return err
	}
	h.tbl, err = table.New(name, s, table.Options{Manager: h.mgr})
	return err
}

func (h *ciReplayHandler) ApplyLayout(name string, layout []bool) error {
	return h.tbl.ApplyLayout(layout)
}

func (h *ciReplayHandler) CreateIndex(name string, cols []int) error {
	if len(cols) == 1 {
		return h.tbl.CreateIndex(cols[0])
	}
	return h.tbl.CreateCompositeIndex(cols)
}

func (h *ciReplayHandler) Commit(ts mvcc.Timestamp, ops []mvcc.RedoOp) error {
	for _, op := range ops {
		if op.Delete {
			if err := h.tbl.ReplayDelete(op.Row, ts); err != nil {
				return err
			}
			h.rows--
			continue
		}
		if err := h.tbl.ReplayInsert(op.Row, ts); err != nil {
			return err
		}
		h.rows++
	}
	return nil
}

func (h *ciReplayHandler) Checkpoint(mvcc.Timestamp) {}

// sortedMetricNames returns the metric names in stable order.
func sortedMetricNames(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// higherIsWorse classifies a gate metric's regression direction: cost
// metrics (modeled nanoseconds, page reads, rows scanned) regress
// upward; rates and speedups (hit_rate, *_x) regress downward.
// Metrics with no rule (counts like switchovers) are informational and
// return ok=false.
func higherIsWorse(name string) (worse bool, ok bool) {
	switch {
	case strings.HasSuffix(name, "_ns"), name == "page_reads", name == "rows_scanned":
		return true, true
	case strings.HasSuffix(name, "hit_rate"), strings.HasSuffix(name, "_x"):
		return false, true
	}
	return false, false
}

// CompareBenchStats checks current against a baseline and returns one
// message per regression beyond the tolerance (e.g. 0.10 for 10 %).
// A cost metric regresses when it grows past baseline*(1+tol); a rate
// metric when it falls below baseline*(1-tol). Gate metrics present in
// the baseline but missing from the current run always fail: silently
// dropping a metric must not pass the gate.
func CompareBenchStats(current, baseline BenchStats, tolerance float64) []string {
	var regressions []string
	for _, name := range sortedMetricNames(baseline.Metrics) {
		base := baseline.Metrics[name]
		cur, present := current.Metrics[name]
		if !present {
			regressions = append(regressions,
				fmt.Sprintf("%s: missing from current run (baseline %.4g)", name, base))
			continue
		}
		worse, gated := higherIsWorse(name)
		if !gated || base == 0 {
			continue
		}
		if worse && cur > base*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.4g exceeds baseline %.4g by %.1f%% (tolerance %.0f%%)",
				name, cur, base, (cur/base-1)*100, tolerance*100))
		}
		if !worse && cur < base*(1-tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.4g falls short of baseline %.4g by %.1f%% (tolerance %.0f%%)",
				name, cur, base, (1-cur/base)*100, tolerance*100))
		}
	}
	return regressions
}
