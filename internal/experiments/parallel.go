package experiments

import (
	"fmt"
	"time"

	"tierdb/internal/device"
	"tierdb/internal/exec"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// PScan measures the morsel-driven parallel executor end to end: the
// same range scan runs at parallelism 1, 2, 4 and 8 over a DRAM (MRC)
// layout and a tiered (SSCG) layout, reporting modeled runtime and the
// speedup over serial execution. DRAM scans scale until the memory
// system saturates (4 streams in the device model); tiered scans scale
// only as far as the device's IO queue depth allows — the asymmetry
// that drives the paper's placement decisions.
func PScan(seed int64) (*Report, error) {
	const rows = 500_000
	r := &Report{
		ID:     "pscan",
		Title:  "Morsel-driven parallel scan: modeled runtime vs parallelism",
		Header: []string{"Layout", "Parallelism", "Modeled time", "Speedup", "Page reads"},
	}

	build := func(layout []bool) (*table.Table, *storage.Clock, error) {
		s := schema.MustNew([]schema.Field{
			{Name: "id", Type: value.Int64},
			{Name: "a", Type: value.Int64},
			{Name: "b", Type: value.Int64},
		})
		clock := &storage.Clock{}
		store := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, clock, 1)
		tbl, err := table.New("pscan", s, table.Options{Store: store})
		if err != nil {
			return nil, nil, err
		}
		data := make([][]value.Value, rows)
		for i := range data {
			data[i] = []value.Value{
				value.NewInt(int64(i)),
				value.NewInt(int64((i + int(seed)) % 100)),
				value.NewInt(int64(i % 1000)),
			}
		}
		if err := tbl.BulkAppend(data); err != nil {
			return nil, nil, err
		}
		if err := tbl.ApplyLayout(layout); err != nil {
			return nil, nil, err
		}
		return tbl, clock, nil
	}

	q := exec.Query{Predicates: []exec.Predicate{
		{Column: 1, Op: exec.Between, Value: value.NewInt(10), Hi: value.NewInt(60)},
	}}
	for _, layout := range []struct {
		name string
		cols []bool
	}{
		{"MRC (DRAM)", []bool{true, true, true}},
		{"SSCG (tiered)", []bool{true, false, false}},
	} {
		tbl, clock, err := build(layout.cols)
		if err != nil {
			return nil, err
		}
		var serial time.Duration
		for _, par := range []int{1, 2, 4, 8} {
			e := exec.New(tbl, exec.Options{Clock: clock, Parallelism: par})
			clock.Reset()
			if _, err := e.Run(q, nil); err != nil {
				return nil, err
			}
			elapsed := clock.Elapsed()
			reads := clock.Reads()
			if par == 1 {
				serial = elapsed
			}
			r.AddRow(layout.name, fmt.Sprintf("%d", par),
				elapsed.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", float64(serial)/float64(elapsed)),
				fmt.Sprintf("%d", reads))
		}
	}
	r.AddNote("DRAM scans scale with workers until memory bandwidth saturates (4 streams); SSCG scans scale with IO queue depth up to the device's saturation point")
	r.AddNote("modeled wall time charges the slowest worker's share (see DESIGN.md on parallel cost accounting)")
	return r, nil
}
