package experiments

import (
	"fmt"
	"time"

	"tierdb/internal/amm"
	"tierdb/internal/device"
	"tierdb/internal/exec"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/tpcc"
)

// table3Env bundles one ORDERLINE instance under a layout with a timed
// device and page cache.
type table3Env struct {
	tbl   *table.Table
	exec  *exec.Executor
	clock *storage.Clock
}

func newTable3Env(cfg tpcc.Config, layout []bool, cacheFrames int) (*table3Env, error) {
	clock := &storage.Clock{}
	timed := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, clock, 1)
	var cache *amm.Cache
	if cacheFrames > 0 {
		var err error
		cache, err = amm.New(cacheFrames, timed)
		if err != nil {
			return nil, err
		}
	}
	tbl, err := tpcc.BuildOrderLine(cfg, table.Options{Store: timed, Cache: cache}, layout)
	if err != nil {
		return nil, err
	}
	clock.Reset() // exclude load/merge time
	return &table3Env{
		tbl:   tbl,
		exec:  exec.New(tbl, exec.Options{Clock: clock}),
		clock: clock,
	}, nil
}

// runDeliveries executes one delivery per (warehouse, district) pair and
// returns the virtual time consumed.
func (env *table3Env) runDeliveries(cfg tpcc.Config) (time.Duration, error) {
	sched := tpcc.NewScheduler(cfg)
	env.clock.Reset()
	for round := 0; round < 3; round++ {
		for w := 1; w <= cfg.Warehouses; w++ {
			for d := 1; d <= cfg.DistrictsPerWarehouse; d++ {
				if _, err := tpcc.Delivery(env.tbl, env.exec, sched, w, d, 20180115); err != nil {
					return 0, err
				}
			}
		}
	}
	return env.clock.Elapsed(), nil
}

// runQ19 executes the CH query #19 equivalent once per warehouse.
func (env *table3Env) runQ19(cfg tpcc.Config) (time.Duration, error) {
	env.clock.Reset()
	for w := 1; w <= cfg.Warehouses; w++ {
		if _, err := tpcc.CHQuery19(env.tbl, env.exec, w, 4, 4, nil); err != nil {
			return 0, err
		}
	}
	return env.clock.Elapsed(), nil
}

// evictedShare returns the fraction of the table's attribute bytes that
// live on secondary storage.
func evictedShare(tbl *table.Table) float64 {
	sec := float64(tbl.SecondaryBytes())
	mem := float64(tbl.MemoryBytes())
	if sec+mem == 0 {
		return 0
	}
	return sec / (sec + mem)
}

// Table3 regenerates Table III: the end-to-end impact of tiering on
// TPC-C's delivery transaction and CH-benCHmark query #19, on the
// ORDERLINE table under the paper's layouts (w = 0.2 keeps only the
// four primary-key columns in DRAM; w = 0.4 adds ol_delivery_d and
// ol_quantity).
func Table3(seed int64) (*Report, error) {
	cfg := tpcc.Config{
		Warehouses:            8,
		DistrictsPerWarehouse: 10,
		OrdersPerDistrict:     60,
		Items:                 1000,
		Seed:                  seed,
	}
	// Page cache: ~2 % of the SSCG pages, as in the paper's setup.
	const cacheFrames = 64

	base, err := newTable3Env(cfg, nil, cacheFrames)
	if err != nil {
		return nil, err
	}
	w02, err := newTable3Env(cfg, tpcc.LayoutForBudget(0.2), cacheFrames)
	if err != nil {
		return nil, err
	}
	w04, err := newTable3Env(cfg, tpcc.LayoutForBudget(0.4), cacheFrames)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:     "table3",
		Title:  "End-to-end impact of tiering: TPC-C delivery and CH query #19 (paper Table III)",
		Header: []string{"Workload", "Data evicted", "baseline", "tiered", "Slowdown", "paper"},
	}

	// Delivery at w = 0.2. Fresh environments per run: delivery
	// mutates the table.
	baseDelivery, err := base.runDeliveries(cfg)
	if err != nil {
		return nil, err
	}
	tieredDelivery, err := w02.runDeliveries(cfg)
	if err != nil {
		return nil, err
	}
	r.AddRow("TPC-C delivery",
		fmt.Sprintf("%.0f%%", evictedShare(w02.tbl)*100),
		baseDelivery.Round(time.Microsecond).String(),
		tieredDelivery.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", float64(tieredDelivery)/float64(baseDelivery)),
		"1.02x @ 80% evicted")

	// CH query #19 at w = 0.2 and w = 0.4 (fresh, un-delivered state).
	base2, err := newTable3Env(cfg, nil, cacheFrames)
	if err != nil {
		return nil, err
	}
	baseQ19, err := base2.runQ19(cfg)
	if err != nil {
		return nil, err
	}
	w02b, err := newTable3Env(cfg, tpcc.LayoutForBudget(0.2), cacheFrames)
	if err != nil {
		return nil, err
	}
	q02, err := w02b.runQ19(cfg)
	if err != nil {
		return nil, err
	}
	r.AddRow("CH-query #19 (w=0.2)",
		fmt.Sprintf("%.0f%%", evictedShare(w02b.tbl)*100),
		baseQ19.Round(time.Microsecond).String(),
		q02.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", float64(q02)/float64(baseQ19)),
		"6.70x @ 80% evicted")

	w04b, err := newTable3Env(cfg, tpcc.LayoutForBudget(0.4), cacheFrames)
	if err != nil {
		return nil, err
	}
	q04, err := w04b.runQ19(cfg)
	if err != nil {
		return nil, err
	}
	r.AddRow("CH-query #19 (w=0.4)",
		fmt.Sprintf("%.0f%%", evictedShare(w04b.tbl)*100),
		baseQ19.Round(time.Microsecond).String(),
		q04.Round(time.Microsecond).String(),
		fmt.Sprintf("%.2fx", float64(q04)/float64(baseQ19)),
		"1.12x @ 63% evicted")

	_ = w04
	r.AddNote("baseline is the fully DRAM-resident layout; times are modeled device+DRAM virtual time")
	r.AddNote("w=0.2 keeps only the 4 primary-key MRCs, so the ol_quantity range predicate runs on the tiered column group; w=0.4 moves ol_delivery_d and ol_quantity back to DRAM and only the narrow ol_amount materialization stays tiered")
	return r, nil
}
