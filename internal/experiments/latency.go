package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tierdb/internal/amm"
	"tierdb/internal/device"
	"tierdb/internal/storage"
)

// dramTouch is the modeled cost of one dependent random DRAM access
// (cache miss); a full-width MRC attribute materialization costs two
// (value vector + dictionary), matching the paper's "two L3 cache
// misses" per attribute.
const dramTouch = 60 * time.Nanosecond

// pageParse is the DRAM-side cost of locating and decoding a tuple
// inside a fetched 4 KB page.
const pageParse = 500 * time.Nanosecond

// tupleOverhead is the fixed per-reconstruction cost every layout pays:
// row-id resolution, MVCC visibility check, result-buffer setup. It is
// calibrated so the DRAM baseline matches the per-tuple costs implied
// by the paper's Figure 8 (narrow ORDERLINE reconstructions are far
// from free even when fully DRAM-resident).
const tupleOverhead = 6 * time.Microsecond

// latencySample draws per-access reconstruction latencies for a table
// with mrcAttrs MRC attributes and an SSCG of groupAttrs attributes
// spanning pagesPerRow pages, against a device with an optional page
// cache. The cache is a real AMM instance so skewed access patterns
// produce genuine hit rates.
type latencyModel struct {
	mrcAttrs    int
	groupAttrs  int
	pagesPerRow int
	rowsPerPage int
	profile     device.Profile
	cache       *amm.Cache // may be nil (no caching)
	store       storage.Store
	threads     int
	rng         *rand.Rand
}

// newLatencyModel builds a model over `rows` rows with an optional page
// cache covering cacheFraction of the SSCG pages (the paper's Fig. 7
// setup: 2 % of the evicted data).
func newLatencyModel(rows, mrcAttrs, groupAttrs int, profile device.Profile, cacheFraction float64, threads int, seed int64) (*latencyModel, error) {
	m := &latencyModel{
		mrcAttrs:   mrcAttrs,
		groupAttrs: groupAttrs,
		profile:    profile,
		threads:    threads,
		rng:        rand.New(rand.NewSource(seed)),
	}
	rowWidth := groupAttrs * 8 // integer attributes, as in the synthetic data set
	if rowWidth == 0 {
		m.pagesPerRow = 0
		m.rowsPerPage = 0
		return m, nil
	}
	if rowWidth <= storage.PageSize {
		m.rowsPerPage = storage.PageSize / rowWidth
		m.pagesPerRow = 1
	} else {
		m.pagesPerRow = (rowWidth + storage.PageSize - 1) / storage.PageSize
	}
	// Materialize the page id space in a real store so the AMM cache
	// behaves exactly as in the engine.
	var pages int64
	if m.pagesPerRow == 1 {
		pages = int64((rows + m.rowsPerPage - 1) / m.rowsPerPage)
	} else {
		pages = int64(rows) * int64(m.pagesPerRow)
	}
	m.store = storage.NewMemStore()
	for i := int64(0); i < pages; i++ {
		if _, err := m.store.Allocate(); err != nil {
			return nil, err
		}
	}
	if cacheFraction > 0 {
		frames := int(float64(pages) * cacheFraction)
		if frames < 1 {
			frames = 1
		}
		cache, err := amm.New(frames, m.store)
		if err != nil {
			return nil, err
		}
		m.cache = cache
	}
	return m, nil
}

// reconstruct returns the modeled latency of one full-width tuple
// reconstruction of row.
func (m *latencyModel) reconstruct(row int) (time.Duration, error) {
	// Fixed per-tuple cost plus two dependent DRAM accesses per MRC
	// attribute.
	lat := tupleOverhead + time.Duration(2*m.mrcAttrs)*dramTouch
	if m.groupAttrs == 0 {
		return lat, nil
	}
	var first storage.PageID
	n := m.pagesPerRow
	if m.pagesPerRow == 1 {
		first = storage.PageID(row / m.rowsPerPage)
	} else {
		first = storage.PageID(row * m.pagesPerRow)
	}
	for p := 0; p < n; p++ {
		id := first + storage.PageID(p)
		if m.cache != nil {
			_, hit, err := m.cache.Get(id)
			if err != nil {
				return 0, err
			}
			m.cache.Release(id)
			if hit {
				lat += time.Duration(m.profile.ReadLatency) / 100 // DRAM-cached page
				continue
			}
		}
		lat += m.profile.SampleReadLatency(m.rng, m.threads)
	}
	return lat + pageParse, nil
}

// latencyStats summarizes a sample of reconstruction latencies.
type latencyStats struct {
	mean, p50, p99 time.Duration
}

func summarize(samples []time.Duration) latencyStats {
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	n := len(samples)
	return latencyStats{
		mean: sum / time.Duration(n),
		p50:  samples[n/2],
		p99:  samples[int(float64(n)*0.99)],
	}
}

// accessor generates row indexes: uniform or zipfian(alpha=1).
type accessor func() int

func uniformAccess(rng *rand.Rand, rows int) accessor {
	return func() int { return rng.Intn(rows) }
}

func zipfAccess(rng *rand.Rand, rows int) accessor {
	// rand.Zipf requires s > 1; the paper's alpha=1 is approximated
	// with s=1.07 (the generator's lower limit region).
	z := rand.NewZipf(rng, 1.07, 1, uint64(rows-1))
	return func() int { return int(z.Uint64()) }
}

// runReconstructions samples n reconstructions under the access pattern.
func (m *latencyModel) runReconstructions(n int, next accessor) (latencyStats, error) {
	samples := make([]time.Duration, n)
	for i := range samples {
		lat, err := m.reconstruct(next())
		if err != nil {
			return latencyStats{}, err
		}
		samples[i] = lat
	}
	return summarize(samples), nil
}

// Fig7 regenerates Figure 7: mean and 99th-percentile latencies of
// full-width tuple reconstructions on the synthetic 200-attribute data
// set, varying the number of SSCG-placed attributes from 20 to 200,
// across devices, with AMM's page cache at 2 % of the evicted data and
// uniformly distributed accesses (the worst case for caching).
func Fig7(seed int64) (*Report, error) {
	const rows = 200_000 // scaled from the paper's 10 M
	const attrs = 200
	const accesses = 20_000
	r := &Report{
		ID:    "fig7",
		Title: "Full-width tuple reconstruction latency vs SSCG width, synthetic table (paper Fig. 7)",
		Header: []string{
			"SSCG attrs", "IMDB (all-MRC)",
			"CSSD mean", "CSSD p99", "ESSD mean", "ESSD p99",
			"XPoint mean", "XPoint p99",
		},
	}
	// Baseline: fully DRAM-resident dictionary-encoded tuple.
	baseline := tupleOverhead + time.Duration(2*attrs)*dramTouch

	var crossover int
	for _, inSSCG := range []int{20, 50, 80, 110, 140, 170, 200} {
		cells := []string{fmt.Sprintf("%d", inSSCG), baseline.String()}
		for _, prof := range []device.Profile{device.CSSD, device.ESSD, device.XPoint} {
			m, err := newLatencyModel(rows, attrs-inSSCG, inSSCG, prof, 0.02, 1, seed)
			if err != nil {
				return nil, err
			}
			stats, err := m.runReconstructions(accesses, uniformAccess(rand.New(rand.NewSource(seed+1)), rows))
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.mean.Round(10*time.Nanosecond).String(),
				stats.p99.Round(10*time.Nanosecond).String())
			if prof.Name == "3D XPoint" && stats.mean < baseline && crossover == 0 {
				crossover = inSSCG
			}
		}
		r.Rows = append(r.Rows, cells)
	}
	if crossover > 0 {
		r.AddNote("3D XPoint SSCG reconstructions outperform the fully DRAM-resident layout from %d/%d attributes in the SSCG on (paper: >= 50%%)", crossover, attrs)
	} else {
		r.AddNote("WARNING: no XPoint/DRAM crossover observed")
	}
	r.AddNote("NAND p99 latencies exceed 3D XPoint by ~%dx (latency-optimized device, tight tail)",
		int(device.CSSD.TailFactor*float64(device.CSSD.ReadLatency)/(device.XPoint.TailFactor*float64(device.XPoint.ReadLatency))))
	return r, nil
}

// Fig8 regenerates Figure 8: reconstruction latency distributions for
// the ORDERLINE (4 MRC + 6 SSCG attributes) and BSEG (20 + 325) tables
// under uniform and zipfian(1) accesses, against the fully DRAM-resident
// baseline (IMDB/MRC).
func Fig8(seed int64) (*Report, error) {
	const accesses = 20_000
	type tableShape struct {
		name       string
		rows       int
		mrc, sscg  int
		rowBytesIn int // informational
	}
	tables := []tableShape{
		{"ORDERLINE", 300_000, 4, 6, 48},
		{"BSEG", 100_000, 20, 325, 2600},
	}
	r := &Report{
		ID:    "fig8",
		Title: "Tuple reconstruction latency, ORDERLINE and BSEG (paper Fig. 8)",
		Header: []string{
			"Table", "Access", "Device", "mean", "p50", "p99", "vs IMDB(MRC)",
		},
	}
	for _, ts := range tables {
		totalAttrs := ts.mrc + ts.sscg
		baseline := tupleOverhead + time.Duration(2*totalAttrs)*dramTouch
		for _, pattern := range []string{"uniform", "zipfian"} {
			for _, prof := range []device.Profile{device.CSSD, device.XPoint} {
				m, err := newLatencyModel(ts.rows, ts.mrc, ts.sscg, prof, 0.02, 1, seed)
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(seed + int64(len(r.Rows))))
				var next accessor
				if pattern == "uniform" {
					next = uniformAccess(rng, ts.rows)
				} else {
					next = zipfAccess(rng, ts.rows)
				}
				stats, err := m.runReconstructions(accesses, next)
				if err != nil {
					return nil, err
				}
				r.AddRow(ts.name, pattern, prof.Name,
					stats.mean.Round(10*time.Nanosecond).String(),
					stats.p50.Round(10*time.Nanosecond).String(),
					stats.p99.Round(10*time.Nanosecond).String(),
					fmt.Sprintf("%.2fx", float64(stats.mean)/float64(baseline)))
			}
		}
		r.AddRow(ts.name, "-", "IMDB (all MRC)", baseline.String(), baseline.String(),
			baseline.String(), "1.00x")
	}
	r.AddNote("wide BSEG tuples: SSCG on 3D XPoint beats the dictionary-encoded DRAM baseline (paper: up to ~2x for uniform accesses)")
	r.AddNote("narrow ORDERLINE tuples: tiering degrades reconstruction (paper: ~70%% slower uniform)")
	return r, nil
}

// newRand returns a seeded random source (helper shared by experiment
// drivers).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
