package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestCIBenchDeterministic runs the CI workload twice and requires
// bit-identical gate metrics — the property the CI regression gate
// stands on.
func TestCIBenchDeterministic(t *testing.T) {
	a, reportA, err := CIBench(42)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CIBench(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Metrics) == 0 {
		t.Fatal("no gate metrics")
	}
	for name, va := range a.Metrics {
		if vb := b.Metrics[name]; va != vb {
			t.Errorf("metric %s not deterministic: %g vs %g", name, va, vb)
		}
	}
	for _, name := range []string{
		"modeled_total_ns", "amm_hit_rate", "page_reads", "switchovers",
	} {
		if a.Metrics[name] <= 0 {
			t.Errorf("gate metric %s = %g, want > 0", name, a.Metrics[name])
		}
	}
	if a.Metrics["amm_hit_rate"] >= 1 {
		t.Errorf("hit rate %g leaves no room for misses; workload too small for the cache", a.Metrics["amm_hit_rate"])
	}
	if !strings.Contains(reportA.String(), "amm_hit_rate") {
		t.Error("report misses amm_hit_rate")
	}
	// The artifact must survive a JSON roundtrip unchanged (CI writes
	// it to disk and compares a parsed copy).
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(CompareBenchStats(back, a, 0)) != 0 {
		t.Error("JSON roundtrip changed gate metrics")
	}
}

// TestCompareBenchStats injects regressions in both directions and
// checks the gate catches them — and only them.
func TestCompareBenchStats(t *testing.T) {
	base := BenchStats{Metrics: map[string]float64{
		"modeled_total_ns": 1_000_000,
		"amm_hit_rate":     0.5,
		"page_reads":       100,
		"switchovers":      2,
	}}

	clone := func() BenchStats {
		m := map[string]float64{}
		for k, v := range base.Metrics {
			m[k] = v
		}
		return BenchStats{Metrics: m}
	}

	if regs := CompareBenchStats(clone(), base, 0.10); len(regs) != 0 {
		t.Errorf("identical stats flagged: %v", regs)
	}

	// Within tolerance: 5% slower passes a 10% gate.
	ok := clone()
	ok.Metrics["modeled_total_ns"] *= 1.05
	if regs := CompareBenchStats(ok, base, 0.10); len(regs) != 0 {
		t.Errorf("5%% drift flagged under 10%% tolerance: %v", regs)
	}

	// Injected cost regression: >10% more modeled time must fail.
	slow := clone()
	slow.Metrics["modeled_total_ns"] *= 1.2
	regs := CompareBenchStats(slow, base, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "modeled_total_ns") {
		t.Errorf("20%% cost regression not caught: %v", regs)
	}

	// Injected rate regression: hit rate falling >10% must fail.
	cold := clone()
	cold.Metrics["amm_hit_rate"] = 0.4
	regs = CompareBenchStats(cold, base, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "amm_hit_rate") {
		t.Errorf("hit-rate regression not caught: %v", regs)
	}
	// A rate going UP is an improvement, not a regression.
	warm := clone()
	warm.Metrics["amm_hit_rate"] = 0.9
	if regs := CompareBenchStats(warm, base, 0.10); len(regs) != 0 {
		t.Errorf("hit-rate improvement flagged: %v", regs)
	}

	// Informational metrics (no direction rule) never gate.
	drift := clone()
	drift.Metrics["switchovers"] = 50
	if regs := CompareBenchStats(drift, base, 0.10); len(regs) != 0 {
		t.Errorf("informational metric gated: %v", regs)
	}

	// Dropping a baseline metric fails loudly.
	missing := clone()
	delete(missing.Metrics, "page_reads")
	regs = CompareBenchStats(missing, base, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Errorf("missing metric not caught: %v", regs)
	}
}
