package experiments

import (
	"fmt"
	"sort"
	"time"

	"tierdb/internal/core"
	"tierdb/internal/erp"
	"tierdb/internal/solver"
)

// Table1 regenerates the paper's Table I: filter-attribute skew of the
// five largest financial-module tables of a production SAP ERP system,
// here from the synthetic workloads that reproduce the published
// statistics.
func Table1(seed int64) (*Report, error) {
	r := &Report{
		ID:     "table1",
		Title:  "Attribute filter skew of ERP tables (paper Table I)",
		Header: []string{"Table", "Attributes", "Filtered", "Filtered >=1%", "Paper (attrs/filt/>=1%)"},
	}
	for _, p := range erp.Profiles() {
		w, err := erp.Workload(p, seed)
		if err != nil {
			return nil, err
		}
		attrs, filtered, often := erp.Stats(w)
		r.AddRow(p.Name,
			fmt.Sprintf("%d", attrs),
			fmt.Sprintf("%d", filtered),
			fmt.Sprintf("%d", often),
			fmt.Sprintf("%d/%d/%d", p.Attributes, p.Filtered, p.FilteredOften))
	}
	return r, nil
}

// fig3Budgets sweeps the relative memory budget for the frontier plots.
func fig3Budgets() []float64 {
	var out []float64
	for w := 0.01; w <= 0.30001; w += 0.01 {
		out = append(out, w)
	}
	for w := 0.35; w <= 1.0001; w += 0.05 {
		out = append(out, w)
	}
	return out
}

// Fig3 regenerates Figure 3: optimal integer vs continuous solutions on
// the BSEG workload — relative performance over the share of data in
// DRAM, with the initial ~78 % eviction from never-filtered attributes
// and the sharp drop once BELNR no longer fits.
func Fig3(seed int64) (*Report, error) {
	w, err := erp.Workload(erp.Profiles()[0], seed)
	if err != nil {
		return nil, err
	}
	p := core.DefaultCostParams()
	r := &Report{
		ID:     "fig3",
		Title:  "Integer vs continuous solutions, BSEG table (paper Fig. 3)",
		Header: []string{"w (DRAM budget)", "relPerf ILP", "relPerf continuous", "cols in DRAM (ILP)"},
	}
	budgets := fig3Budgets()
	ilp, err := core.Frontier(w, p, budgets, core.FrontierILP)
	if err != nil {
		return nil, err
	}
	cont, err := core.Frontier(w, p, budgets, core.FrontierContinuous)
	if err != nil {
		return nil, err
	}
	for i := range budgets {
		r.AddRow(
			fmt.Sprintf("%.2f", budgets[i]),
			fmt.Sprintf("%.4f", ilp[i].RelativePerformance),
			fmt.Sprintf("%.4f", cont[i].RelativePerformance),
			fmt.Sprintf("%d", ilp[i].Allocation.CountInDRAM()),
		)
	}
	r.AddNote("initial eviction rate from never-filtered attributes: %.0f%% (paper: 78%%)",
		erp.UnfilteredShare(w)*100)
	// Find the eviction rate at which performance first drops below
	// 0.75 (the paper: <25% slowdown up to 95% eviction, sharp drop
	// beyond when BELNR no longer fits).
	for i := len(budgets) - 1; i >= 0; i-- {
		if ilp[i].RelativePerformance < 0.75 {
			r.AddNote("relative performance falls below 0.75 at w=%.2f (eviction rate %.0f%%)",
				budgets[i], (1-budgets[i])*100)
			break
		}
	}
	return r, nil
}

// comparisonMethods are the strategies Figures 4 and 5 compare.
var comparisonMethods = []struct {
	name  string
	solve func(w *core.Workload, p core.CostParams, budget int64) (core.Allocation, error)
}{
	{"ILP", func(w *core.Workload, p core.CostParams, b int64) (core.Allocation, error) {
		return core.OptimalILP(w, p, b)
	}},
	{"continuous", func(w *core.Workload, p core.CostParams, b int64) (core.Allocation, error) {
		return core.ExplicitForBudget(w, p, b, nil, 0)
	}},
	{"H1", func(w *core.Workload, p core.CostParams, b int64) (core.Allocation, error) {
		return core.SolveHeuristic(w, p, b, core.HeuristicFrequency)
	}},
	{"H2", func(w *core.Workload, p core.CostParams, b int64) (core.Allocation, error) {
		return core.SolveHeuristic(w, p, b, core.HeuristicSelectivity)
	}},
	{"H3", func(w *core.Workload, p core.CostParams, b int64) (core.Allocation, error) {
		return core.SolveHeuristic(w, p, b, core.HeuristicSelectivityFrequency)
	}},
}

// heuristicComparison runs the Figure 4/5 comparison on a workload:
// estimated runtime (total scan cost) per strategy over a budget sweep.
func heuristicComparison(id, title string, w *core.Workload) (*Report, error) {
	p := core.DefaultCostParams()
	r := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"w (DRAM budget)", "ILP", "continuous", "H1", "H2", "H3", "worst heuristic/ILP"},
	}
	maxGap := 0.0
	for _, budget := range []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		b := int64(budget * float64(w.TotalSize()))
		cells := []string{fmt.Sprintf("%.2f", budget)}
		var opt float64
		var worstHeuristic float64
		for i, m := range comparisonMethods {
			alloc, err := m.solve(w, p, b)
			if err != nil {
				return nil, fmt.Errorf("%s at w=%.2f: %w", m.name, budget, err)
			}
			if i == 0 {
				opt = alloc.Cost
			}
			if i >= 2 && alloc.Cost > worstHeuristic { // H1-H3 only
				worstHeuristic = alloc.Cost
			}
			cells = append(cells, fmt.Sprintf("%.3g", alloc.Cost))
		}
		gap := worstHeuristic / opt
		if gap > maxGap {
			maxGap = gap
		}
		cells = append(cells, fmt.Sprintf("%.2fx", gap))
		r.Rows = append(r.Rows, cells)
	}
	r.AddNote("largest heuristic gap over the sweep: %.1fx (paper: up to 3x)", maxGap)
	return r, nil
}

// Fig4 regenerates Figure 4: optimal and continuous solutions vs the
// benchmark heuristics H1-H3 on Example 1 (N=50, Q=500).
func Fig4(seed int64) (*Report, error) {
	w, err := core.Example1(core.Example1Config{Columns: 50, Queries: 500, Seed: seed})
	if err != nil {
		return nil, err
	}
	return heuristicComparison("fig4",
		"Model vs heuristics, Example 1 (N=50, Q=500) (paper Fig. 4)", w)
}

// Fig5 regenerates Figure 5: the same comparison on a workload variant
// with stronger selection interaction (higher column co-occurrence),
// where counting heuristics degrade further.
func Fig5(seed int64) (*Report, error) {
	w, err := core.Example1(core.Example1Config{
		Columns:             50,
		Queries:             500,
		Seed:                seed,
		CoOccurrence:        0.9,
		MeanColumnsPerQuery: 6,
	})
	if err != nil {
		return nil, err
	}
	return heuristicComparison("fig5",
		"Model vs heuristics, strong selection interaction (paper Fig. 5)", w)
}

// Fig6 regenerates Figure 6: solution structure over growing budgets —
// (a) optimal integer allocations, (b) the recursive continuous
// allocations, (c) continuous with filling. Each row is one budget; the
// matrix cell is 'X' when the column is DRAM-resident.
func Fig6(seed int64) (*Report, error) {
	w, err := core.Example1(core.Example1Config{Columns: 24, Queries: 200, Seed: seed})
	if err != nil {
		return nil, err
	}
	p := core.DefaultCostParams()
	r := &Report{
		ID:     "fig6",
		Title:  "Solution structures over budgets (paper Fig. 6)",
		Header: []string{"w", "(a) integer", "(b) continuous", "(c) cont.+filling"},
	}
	order, err := core.PerformanceOrder(w, p, nil, 0)
	if err != nil {
		return nil, err
	}
	// Render allocations in performance order so the recursive
	// staircase of the continuous solution is visible.
	render := func(a core.Allocation) string {
		var b []byte
		for _, c := range order {
			if a.InDRAM[c] {
				b = append(b, 'X')
			} else {
				b = append(b, '.')
			}
		}
		return string(b)
	}
	recursive := true
	var prev core.Allocation
	for i, budget := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		b := int64(budget * float64(w.TotalSize()))
		ilp, err := core.OptimalILP(w, p, b)
		if err != nil {
			return nil, err
		}
		cont, err := core.ExplicitForBudget(w, p, b, nil, 0)
		if err != nil {
			return nil, err
		}
		fill, err := core.FillingForBudget(w, p, b, nil, 0)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			for c := range prev.InDRAM {
				if prev.InDRAM[c] && !cont.InDRAM[c] {
					recursive = false
				}
			}
		}
		prev = cont
		r.AddRow(fmt.Sprintf("%.2f", budget), render(ilp), render(cont), render(fill))
	}
	if recursive {
		r.AddNote("continuous solutions are recursive: columns never leave DRAM as the budget grows (Remark 1)")
	} else {
		r.AddNote("WARNING: recursive structure violated")
	}
	return r, nil
}

// Table2 regenerates Table II: solver runtime of the integer model vs
// the explicit solution for growing problem sizes. full extends the
// sweep to the paper's largest instances (N=20000 and 50000).
func Table2(full bool) (*Report, error) {
	sizes := []struct{ n, q int }{
		{100, 1000}, {500, 5000}, {1000, 10000}, {5000, 50000}, {10000, 100000},
	}
	if full {
		sizes = append(sizes, struct{ n, q int }{20000, 200000}, struct{ n, q int }{50000, 500000})
	}
	p := core.DefaultCostParams()
	r := &Report{
		ID:     "table2",
		Title:  "Computation time: integer model vs explicit solution (paper Table II)",
		Header: []string{"Columns", "Queries", "coeff pass", "ILP B&B", "B&B nodes", "Explicit", "speedup"},
	}
	for _, sz := range sizes {
		w, err := core.Example1(core.Example1Config{Columns: sz.n, Queries: sz.q, Seed: 7})
		if err != nil {
			return nil, err
		}
		budget := int64(0.5 * float64(w.TotalSize()))

		// The coefficient pass over the workload is shared by every
		// strategy; time it separately so the solver comparison is
		// solver-vs-solver, as in the paper's Table II.
		start := time.Now()
		coeff := core.Coefficients(w, p)
		coeffTime := time.Since(start)

		// ILP: knapsack branch and bound over the coefficients.
		items := make([]solver.Item, len(w.Columns))
		for i, c := range w.Columns {
			items[i] = solver.Item{Value: -float64(c.Size) * coeff[i], Weight: c.Size}
		}
		start = time.Now()
		res, err := solver.Knapsack01Opts(items, budget, solver.Options{RelativeGap: 1e-6})
		if err != nil {
			return nil, err
		}
		ilpTime := time.Since(start)

		// Explicit solution: sort columns by critical alpha, walk the
		// performance order (Theorem 2).
		start = time.Now()
		type entry struct {
			idx      int
			critical float64
		}
		entries := make([]entry, 0, len(coeff))
		for i, si := range coeff {
			if -si > 0 {
				entries = append(entries, entry{i, -si})
			}
		}
		sort.Slice(entries, func(a, b int) bool { return entries[a].critical > entries[b].critical })
		var used int64
		x := make([]bool, len(coeff))
		for _, e := range entries {
			if used+w.Columns[e.idx].Size > budget {
				break
			}
			x[e.idx] = true
			used += w.Columns[e.idx].Size
		}
		explicitTime := time.Since(start)

		speedup := float64(ilpTime) / float64(explicitTime)
		r.AddRow(
			fmt.Sprintf("%d", sz.n),
			fmt.Sprintf("%d", sz.q),
			coeffTime.Round(10*time.Microsecond).String(),
			ilpTime.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%d", res.Nodes),
			explicitTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0fx", speedup),
		)
	}
	r.AddNote("ILP times are our specialized knapsack branch and bound; the paper's MOSEK pays general MIP machinery (2210s at N=50000), so the absolute gap here is smaller while the ordering (explicit orders of magnitude faster) is preserved")
	return r, nil
}
