package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func run(t *testing.T, name string, f func(int64) (*Report, error)) *Report {
	t.Helper()
	r, err := f(42)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if r.ID == "" || r.Title == "" || len(r.Header) == 0 || len(r.Rows) == 0 {
		t.Fatalf("%s: report incomplete: %+v", name, r)
	}
	if s := r.String(); !strings.Contains(s, r.ID) {
		t.Errorf("%s: String() missing ID", name)
	}
	return r
}

func cell(t *testing.T, r *Report, row, col int) string {
	t.Helper()
	if row >= len(r.Rows) || col >= len(r.Rows[row]) {
		t.Fatalf("cell (%d,%d) out of range", row, col)
	}
	return r.Rows[row][col]
}

func floatCell(t *testing.T, r *Report, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, r, row, col), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float", row, col, cell(t, r, row, col))
	}
	return v
}

func durationCell(t *testing.T, r *Report, row, col int) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(cell(t, r, row, col))
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a duration", row, col, cell(t, r, row, col))
	}
	return d
}

func TestTable1MatchesPaper(t *testing.T) {
	r := run(t, "table1", Table1)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// BSEG row: 345 attributes, 50 filtered.
	if cell(t, r, 0, 1) != "345" || cell(t, r, 0, 2) != "50" {
		t.Errorf("BSEG row = %v", r.Rows[0])
	}
}

func TestFig3Shape(t *testing.T) {
	r := run(t, "fig3", Fig3)
	// Relative performance is monotone non-decreasing in the budget
	// for the ILP column.
	prev := 0.0
	for i := range r.Rows {
		rp := floatCell(t, r, i, 1)
		if rp < prev-1e-9 {
			t.Fatalf("ILP frontier not monotone at row %d: %g < %g", i, rp, prev)
		}
		prev = rp
		// Continuous never beats ILP.
		if c := floatCell(t, r, i, 2); c > rp+1e-9 {
			t.Errorf("row %d: continuous %g beats ILP %g", i, c, rp)
		}
	}
	// Large budgets reach full performance; tiny budgets do not.
	if floatCell(t, r, len(r.Rows)-1, 1) < 0.999 {
		t.Error("full budget does not reach relative performance 1")
	}
	if floatCell(t, r, 0, 1) > 0.9 {
		t.Error("1% budget suspiciously fast (BELNR drop missing)")
	}
	// The 78% note must be present.
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "78%") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing initial-eviction note: %v", r.Notes)
	}
}

func TestFig4HeuristicsNeverBeatILP(t *testing.T) {
	r := run(t, "fig4", Fig4)
	for i := range r.Rows {
		opt := floatCell(t, r, i, 1)
		for col := 2; col <= 5; col++ {
			if v := floatCell(t, r, i, col); v < opt*(1-1e-9) {
				t.Errorf("row %d col %d: %g beats ILP %g", i, col, v, opt)
			}
		}
		if gap := floatCell(t, r, i, 6); gap < 1-1e-9 {
			t.Errorf("row %d: gap %g < 1", i, gap)
		}
	}
}

func TestFig5ShowsLargerInteractionGap(t *testing.T) {
	run(t, "fig5", Fig5)
}

func TestFig6RecursiveStructure(t *testing.T) {
	r := run(t, "fig6", Fig6)
	for _, n := range r.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("recursive structure violated: %s", n)
		}
	}
	// The continuous allocation matrices must be prefixes in
	// performance order: 'X's only at the start.
	for i := range r.Rows {
		cont := cell(t, r, i, 2)
		if idx := strings.Index(cont, "."); idx >= 0 && strings.Contains(cont[idx:], "X") {
			t.Errorf("row %d: continuous allocation %q not a prefix", i, cont)
		}
	}
}

func TestTable2ExplicitFasterAtScale(t *testing.T) {
	r := run(t, "table2", func(int64) (*Report, error) { return Table2(false) })
	last := len(r.Rows) - 1
	explicit := durationCell(t, r, last, 5)
	if explicit > 100*time.Millisecond {
		t.Errorf("explicit solve at N=10000 took %v, want ms range", explicit)
	}
}

func TestFig7CrossoverNote(t *testing.T) {
	r := run(t, "fig7", Fig7)
	for _, n := range r.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("crossover missing: %s", n)
		}
	}
	// XPoint mean latency decreases as more attributes move to the
	// SSCG (fewer dictionary decodes, same single page access).
	first := durationCell(t, r, 0, 6)
	lastRow := len(r.Rows) - 1
	last := durationCell(t, r, lastRow, 6)
	if last >= first {
		t.Errorf("XPoint latency did not fall with SSCG width: %v -> %v", first, last)
	}
}

func TestFig8WideVsNarrowTables(t *testing.T) {
	r := run(t, "fig8", Fig8)
	var orderlineXPoint, bsegXPoint float64
	for i := range r.Rows {
		if cell(t, r, i, 0) == "ORDERLINE" && cell(t, r, i, 1) == "uniform" && cell(t, r, i, 2) == "3D XPoint" {
			orderlineXPoint = floatCell(t, r, i, 6)
		}
		if cell(t, r, i, 0) == "BSEG" && cell(t, r, i, 1) == "uniform" && cell(t, r, i, 2) == "3D XPoint" {
			bsegXPoint = floatCell(t, r, i, 6)
		}
	}
	if orderlineXPoint <= 1 {
		t.Errorf("narrow ORDERLINE should degrade under tiering, got %gx", orderlineXPoint)
	}
	if bsegXPoint >= 1 {
		t.Errorf("wide BSEG on XPoint should beat full DRAM, got %gx", bsegXPoint)
	}
}

func TestFig9aLinearInWidth(t *testing.T) {
	r := run(t, "fig9a", Fig9a)
	// Row 0: CSSD, 1 thread. scan 1/10 should be ~10x scan 1/1.
	t1 := durationCell(t, r, 0, 2)
	t10 := durationCell(t, r, 0, 3)
	ratio := float64(t10) / float64(t1)
	if ratio < 8 || ratio > 12 {
		t.Errorf("scan 1/10 vs 1/1 ratio = %.1f, want ~10", ratio)
	}
}

func TestFig9bQueueDepthEffects(t *testing.T) {
	r := run(t, "fig9b", Fig9b)
	// Find ESSD rows: probing must speed up with threads.
	var essd1, essd32 time.Duration
	for i := range r.Rows {
		if cell(t, r, i, 0) == "ESSD" {
			if cell(t, r, i, 1) == "1" {
				essd1 = durationCell(t, r, i, 2)
			}
			if cell(t, r, i, 1) == "32" {
				essd32 = durationCell(t, r, i, 2)
			}
		}
	}
	if essd32 >= essd1 {
		t.Errorf("ESSD probing did not speed up with threads: %v -> %v", essd1, essd32)
	}
	// HDD probing must get worse per-thread under concurrency.
	var hdd1, hdd8 time.Duration
	for i := range r.Rows {
		if cell(t, r, i, 0) == "HDD" {
			if cell(t, r, i, 1) == "1" {
				hdd1 = durationCell(t, r, i, 2)
			}
			if cell(t, r, i, 1) == "8" {
				hdd8 = durationCell(t, r, i, 2)
			}
		}
	}
	if hdd8 <= hdd1 {
		t.Errorf("HDD probing should degrade under concurrency: %v -> %v", hdd1, hdd8)
	}
}

func TestTable3Shape(t *testing.T) {
	r := run(t, "table3", Table3)
	delivery := floatCell(t, r, 0, 4)
	q19Tight := floatCell(t, r, 1, 4)
	q19Loose := floatCell(t, r, 2, 4)
	if delivery > 1.5 {
		t.Errorf("delivery slowdown %.2f, want ~1 (paper 1.02)", delivery)
	}
	if q19Tight < 3 {
		t.Errorf("Q19 at w=0.2 slowdown %.2f, want large (paper 6.7)", q19Tight)
	}
	if q19Loose > q19Tight/2 {
		t.Errorf("Q19 at w=0.4 slowdown %.2f did not recover (w=0.2: %.2f)", q19Loose, q19Tight)
	}
}

func TestTable4Shape(t *testing.T) {
	r := run(t, "table4", Table4)
	// 100% SSCG reconstructions on XPoint must be speedups (<1).
	if v := floatCell(t, r, 1, 1); v >= 1 {
		t.Errorf("100%% SSCG uniform reconstruction = %.2f, want < 1", v)
	}
	// Scanning 1/100 must be a large slowdown.
	for i := range r.Rows {
		if strings.HasPrefix(cell(t, r, i, 0), "Scanning") {
			if v := floatCell(t, r, i, 1); v < 100 {
				t.Errorf("scanning slowdown = %.2f, want >= 100", v)
			}
		}
	}
	// Probing slowdown falls sharply with threads.
	for i := range r.Rows {
		if strings.HasPrefix(cell(t, r, i, 0), "Probing") {
			if floatCell(t, r, i, 3) >= floatCell(t, r, i, 1) {
				t.Errorf("probing slowdown did not fall with threads: %v", r.Rows[i])
			}
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("n=%d", 5)
	s := r.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered report missing %q:\n%s", want, s)
		}
	}
}
