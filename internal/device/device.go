// Package device models the storage devices of the paper's evaluation
// (Section IV): DRAM, a consumer SATA SSD (CSSD, Samsung 850 Pro), an
// enterprise NVMe SSD (ESSD, SanDisk Fusion ioMemory PX600), a SATA HDD
// (WD40EZRX) and a 3D XPoint drive (Intel Optane P4800X).
//
// The paper runs on the physical devices; this reproduction substitutes
// analytic device models driving a virtual clock. Each profile captures
// the characteristics the evaluation depends on: random 4 KB read
// latency (with tail behaviour for percentile plots), sequential
// bandwidth, and how throughput scales with request concurrency — NAND
// devices need deep IO queues for full performance, 3D XPoint delivers
// ~10x lower latency even at queue depth 1, and HDDs degrade under
// concurrent random access.
package device

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// PageSize is the IO granularity used throughout the system, as in the
// paper (4 KB page accesses to secondary storage).
const PageSize = 4096

// Profile describes one storage device for the analytic timing model.
type Profile struct {
	// Name identifies the device in reports ("CSSD", "3D XPoint", ...).
	Name string
	// ReadLatency is the mean service time of one random 4 KB read at
	// queue depth 1.
	ReadLatency time.Duration
	// WriteLatency is the mean service time of one 4 KB write at queue
	// depth 1.
	WriteLatency time.Duration
	// TailFactor is the ratio of the 99th-percentile latency to the
	// mean; NAND devices have heavy tails (garbage collection), 3D
	// XPoint is tight.
	TailFactor float64
	// SeqBandwidth is the sustained sequential read bandwidth in
	// bytes per second.
	SeqBandwidth float64
	// Saturation is the queue depth at which random-read throughput
	// saturates; additional concurrency no longer helps.
	Saturation int
	// ConcurrencyPenalty > 0 degrades service time by the factor
	// 1 + ConcurrencyPenalty*(threads-1) under concurrent random
	// access; used for HDDs whose head thrashes between request
	// streams.
	ConcurrencyPenalty float64
	// ScalableBandwidth marks devices whose SeqBandwidth figure is per
	// access stream rather than a device-wide total: aggregate
	// sequential bandwidth grows with concurrent streams up to
	// Saturation. DRAM behaves this way (each core drives its own
	// load on the memory channels); secondary-storage devices share
	// one device-total bandwidth.
	ScalableBandwidth bool
}

// The device profiles of the paper's testbed. Latencies and bandwidths
// follow the published specifications of the named devices; exact values
// do not matter for the reproduction, the ordering and ratios do.
var (
	// DRAM models main memory accessed at page granularity; the
	// latency approximates reading 4 KB spread over cache misses.
	DRAM = Profile{
		Name:              "DRAM",
		ReadLatency:       300 * time.Nanosecond,
		WriteLatency:      300 * time.Nanosecond,
		TailFactor:        1.5,
		SeqBandwidth:      10 << 30, // per-thread stream bandwidth
		Saturation:        4,
		ScalableBandwidth: true,
	}
	// CSSD is the consumer-grade Samsung SSD 850 Pro (SATA, 256 GB).
	CSSD = Profile{
		Name:         "CSSD",
		ReadLatency:  95 * time.Microsecond,
		WriteLatency: 120 * time.Microsecond,
		TailFactor:   6,
		SeqBandwidth: 530 << 20,
		Saturation:   32,
	}
	// ESSD is the enterprise SanDisk Fusion ioMemory PX600 (1 TB), a
	// bandwidth-optimized NVMe device that needs large IO queues.
	ESSD = Profile{
		Name:         "ESSD",
		ReadLatency:  80 * time.Microsecond,
		WriteLatency: 30 * time.Microsecond,
		TailFactor:   5,
		SeqBandwidth: 2700 << 20,
		Saturation:   128,
	}
	// HDD is the SATA Western Digital WD40EZRX (4 TB, 64 MB cache).
	HDD = Profile{
		Name:               "HDD",
		ReadLatency:        8500 * time.Microsecond,
		WriteLatency:       9000 * time.Microsecond,
		TailFactor:         3,
		SeqBandwidth:       150 << 20,
		Saturation:         1,
		ConcurrencyPenalty: 0.35,
	}
	// XPoint is the Intel Optane P4800X: ~10x lower random latency
	// than NAND even at queue depth 1, with a very tight distribution.
	XPoint = Profile{
		Name:         "3D XPoint",
		ReadLatency:  10 * time.Microsecond,
		WriteLatency: 10 * time.Microsecond,
		TailFactor:   1.6,
		SeqBandwidth: 2400 << 20,
		Saturation:   16,
	}
)

// Profiles returns the secondary-storage profiles of the paper's
// evaluation in presentation order.
func Profiles() []Profile {
	return []Profile{CSSD, ESSD, HDD, XPoint}
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range append(Profiles(), DRAM) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("device: unknown profile %q", name)
}

// contention returns the service-time inflation under concurrent random
// access (1 for devices without a concurrency penalty).
func (p Profile) contention(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	return 1 + p.ConcurrencyPenalty*float64(threads-1)
}

// RandomReadTime returns the modeled mean wall-clock time for one thread
// of `threads` concurrent workers to complete `pages` random 4 KB reads.
// Throughput improves with concurrency up to the saturation queue depth
// and is capped by the sequential bandwidth.
func (p Profile) RandomReadTime(pages int64, threads int) time.Duration {
	if pages <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	// Each worker issues its reads synchronously, so a single stream
	// never completes a read faster than the QD1 service time; the
	// device overlaps requests from different streams up to its
	// saturation queue depth, beyond which streams queue behind each
	// other.
	service := float64(p.ReadLatency) * p.contention(threads)
	queueing := 1.0
	if threads > p.Saturation {
		queueing = float64(threads) / float64(p.Saturation)
	}
	t := float64(pages) * service * queueing
	// Bandwidth cap: all streams together cannot move bytes faster
	// than the sequential bandwidth.
	if floor := float64(pages*PageSize) * float64(threads) / p.SeqBandwidth * float64(time.Second); t < floor {
		t = floor
	}
	return time.Duration(t)
}

// SequentialReadTime returns the modeled time for one thread of
// `threads` concurrent workers to sequentially read `bytes` bytes. The
// aggregate device bandwidth — device-total for secondary storage,
// per-stream scaling up to Saturation for ScalableBandwidth devices
// like DRAM — is shared across threads; one initial seek/latency is
// charged per stream.
func (p Profile) SequentialReadTime(bytes int64, threads int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	if threads < 1 {
		threads = 1
	}
	total := p.SeqBandwidth
	if p.ScalableBandwidth {
		streams := threads
		if p.Saturation > 0 && streams > p.Saturation {
			streams = p.Saturation
		}
		total *= float64(streams)
	}
	bw := total / float64(threads)
	seconds := float64(bytes)/bw + float64(p.ReadLatency)/float64(time.Second)*p.contention(threads)
	return time.Duration(seconds * float64(time.Second))
}

// SampleReadLatency draws one random 4 KB read latency from a lognormal
// distribution whose mean matches ReadLatency (with concurrency effects)
// and whose tail matches TailFactor at the 99th percentile. Used for the
// latency-distribution experiments (Figures 7 and 8).
func (p Profile) SampleReadLatency(rng *rand.Rand, threads int) time.Duration {
	mean := float64(p.ReadLatency) * p.contention(threads)
	// Lognormal with exp(mu + sigma*z): choose sigma so that
	// p99/mean == TailFactor: quantile z99 = 2.326.
	// p99/mean = exp(sigma*z99 - sigma^2/2)  =>  solve for sigma.
	sigma := solveSigma(p.TailFactor)
	mu := math.Log(mean) - sigma*sigma/2
	return time.Duration(math.Exp(mu + sigma*rng.NormFloat64()))
}

// solveSigma finds sigma with exp(sigma*z99 - sigma^2/2) = tail.
func solveSigma(tail float64) float64 {
	if tail <= 1 {
		return 0.01
	}
	const z99 = 2.326
	// sigma^2/2 - z99*sigma + ln(tail) = 0 => sigma = z99 - sqrt(z99^2 - 2 ln tail)
	d := z99*z99 - 2*math.Log(tail)
	if d < 0 {
		return z99 // extremely heavy tail; clamp
	}
	return z99 - math.Sqrt(d)
}
