package device

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"DRAM", "CSSD", "ESSD", "HDD", "3D XPoint"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("floppy"); err == nil {
		t.Error("ByName accepted unknown device")
	}
}

func TestLatencyOrdering(t *testing.T) {
	// The paper's central device fact: XPoint has ~10x lower random
	// latency than NAND; DRAM is far below everything; HDD is worst.
	if !(DRAM.ReadLatency < XPoint.ReadLatency &&
		XPoint.ReadLatency < ESSD.ReadLatency &&
		ESSD.ReadLatency <= CSSD.ReadLatency &&
		CSSD.ReadLatency < HDD.ReadLatency) {
		t.Error("device latency ordering violated")
	}
	ratio := float64(CSSD.ReadLatency) / float64(XPoint.ReadLatency)
	if ratio < 5 || ratio > 20 {
		t.Errorf("NAND/XPoint latency ratio = %.1f, want ~10", ratio)
	}
}

func TestRandomReadTimeScalesWithPages(t *testing.T) {
	one := CSSD.RandomReadTime(1, 1)
	thousand := CSSD.RandomReadTime(1000, 1)
	if got := float64(thousand) / float64(one); math.Abs(got-1000) > 1 {
		t.Errorf("1000-page time / 1-page time = %g, want 1000", got)
	}
}

func TestRandomReadTimeZeroAndNegative(t *testing.T) {
	if CSSD.RandomReadTime(0, 1) != 0 {
		t.Error("zero pages should take zero time")
	}
	if CSSD.RandomReadTime(-5, 1) != 0 {
		t.Error("negative pages should take zero time")
	}
	if CSSD.RandomReadTime(1, 0) != CSSD.RandomReadTime(1, 1) {
		t.Error("zero threads should behave like one thread")
	}
}

func TestNANDNeedsQueueDepth(t *testing.T) {
	// ESSD is bandwidth-optimized: per-thread time should stay flat
	// (device absorbs concurrency) until saturation, so aggregate
	// throughput rises with threads.
	pages := int64(10000)
	t1 := ESSD.RandomReadTime(pages, 1)
	t32 := ESSD.RandomReadTime(pages, 32)
	// Aggregate throughput = threads*pages / per-thread time.
	agg1 := float64(pages) / t1.Seconds()
	agg32 := 32 * float64(pages) / t32.Seconds()
	if agg32 < 8*agg1 {
		t.Errorf("ESSD aggregate throughput at 32 threads = %.0f pages/s, want >= 8x QD1 (%.0f)", agg32, agg1)
	}
}

func TestHDDDegradesUnderConcurrency(t *testing.T) {
	// Paper, Fig. 9: "HDDs perform well for pure sequential requests
	// but significantly slow down with concurrent requests".
	pages := int64(1000)
	t1 := HDD.RandomReadTime(pages, 1)
	t8 := HDD.RandomReadTime(pages, 8)
	agg1 := float64(pages) / t1.Seconds()
	agg8 := 8 * float64(pages) / t8.Seconds()
	if agg8 > agg1 {
		t.Errorf("HDD aggregate random throughput improved under concurrency: %.0f -> %.0f pages/s", agg1, agg8)
	}
}

func TestBandwidthCap(t *testing.T) {
	// Huge sequential-equivalent random workloads cannot exceed the
	// sequential bandwidth.
	pages := int64(1 << 20)
	for _, p := range Profiles() {
		tt := p.RandomReadTime(pages, p.Saturation)
		bytesPerSec := float64(pages*PageSize) / tt.Seconds() * float64(p.Saturation)
		if bytesPerSec > p.SeqBandwidth*1.01 {
			t.Errorf("%s: random read throughput %.0f B/s exceeds bandwidth %.0f", p.Name, bytesPerSec, p.SeqBandwidth)
		}
	}
}

func TestSequentialReadTime(t *testing.T) {
	// 1 GB at 530 MB/s is roughly 1.9 s.
	got := CSSD.SequentialReadTime(1<<30, 1)
	seconds := float64(1<<30) / float64(530<<20)
	want := time.Duration(seconds * float64(time.Second))
	if math.Abs(got.Seconds()-want.Seconds()) > 0.1 {
		t.Errorf("sequential 1 GB on CSSD = %v, want ~%v", got, want)
	}
	if CSSD.SequentialReadTime(0, 1) != 0 {
		t.Error("zero bytes should take zero time")
	}
	// Sharing bandwidth across threads slows each stream.
	if CSSD.SequentialReadTime(1<<30, 4) <= CSSD.SequentialReadTime(1<<30, 1) {
		t.Error("per-stream sequential time should grow with concurrent streams")
	}
}

func TestSampleReadLatencyMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []Profile{CSSD, XPoint} {
		n := 200000
		samples := make([]float64, n)
		var sum float64
		for i := range samples {
			samples[i] = float64(p.SampleReadLatency(rng, 1))
			sum += samples[i]
		}
		mean := sum / float64(n)
		if rel := math.Abs(mean-float64(p.ReadLatency)) / float64(p.ReadLatency); rel > 0.05 {
			t.Errorf("%s: sampled mean %.0fns off profile mean %v by %.1f%%", p.Name, mean, p.ReadLatency, rel*100)
		}
		sort.Float64s(samples)
		p99 := samples[int(0.99*float64(n))]
		gotTail := p99 / mean
		if math.Abs(gotTail-p.TailFactor)/p.TailFactor > 0.15 {
			t.Errorf("%s: sampled p99/mean = %.2f, want ~%.2f", p.Name, gotTail, p.TailFactor)
		}
	}
}

func TestXPointTailTighterThanNAND(t *testing.T) {
	if XPoint.TailFactor >= CSSD.TailFactor {
		t.Error("XPoint tail should be tighter than NAND")
	}
}
