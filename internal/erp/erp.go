// Package erp synthesizes enterprise-system tables and workloads with
// the characteristics the paper reports for a production SAP ERP system
// (Section I-A, Table I; Section III-B, Figure 3): hundreds of
// attributes of which only a small, skewed subset is ever filtered; a
// handful of attributes filtered in at least 1 % of query executions;
// most bytes concentrated in never-filtered attributes; and one dominant
// large hot column (BSEG's BELNR document number) whose eviction causes
// a sharp performance drop.
//
// The production data itself is proprietary; these generators reproduce
// the published aggregate characteristics, which is all that Table I and
// Figure 3 depend on.
package erp

import (
	"fmt"
	"math"
	"math/rand"

	"tierdb/internal/core"
)

// TableProfile describes the filter-skew statistics of one ERP table
// (the rows of the paper's Table I).
type TableProfile struct {
	// Name is the SAP table name.
	Name string
	// Attributes is the total attribute count.
	Attributes int
	// Filtered is the number of attributes filtered at least once.
	Filtered int
	// FilteredOften is the number of attributes filtered in >= 1 % of
	// query executions.
	FilteredOften int
	// Plans is the number of distinct cached plans for the table.
	Plans int
}

// Profiles returns the five financial-module tables of the paper's
// Table I (BSEG with the paper's 60 cached plans, others proportional).
func Profiles() []TableProfile {
	return []TableProfile{
		{Name: "BSEG", Attributes: 345, Filtered: 50, FilteredOften: 18, Plans: 60},
		{Name: "ACDOCA", Attributes: 338, Filtered: 51, FilteredOften: 19, Plans: 62},
		{Name: "VBAP", Attributes: 340, Filtered: 38, FilteredOften: 9, Plans: 45},
		{Name: "BKPF", Attributes: 128, Filtered: 42, FilteredOften: 16, Plans: 50},
		{Name: "COEP", Attributes: 131, Filtered: 22, FilteredOften: 6, Plans: 28},
	}
}

// totalExecutions is the normalized per-analysis-window execution count.
const totalExecutions = 100000

// Workload synthesizes a column selection workload matching a profile:
//
//   - columns [0, FilteredOften) are "hot": each appears in plans
//     covering at least 1 % of executions;
//   - columns [FilteredOften, Filtered) are "cold-filtered": they appear
//     in rare plans, usually combined with a hot (highly restrictive)
//     attribute, below the 1 % threshold;
//   - the remaining columns are never filtered and hold roughly 78 % of
//     the table's bytes (the paper's "initial eviction rate");
//   - column 0 models BELNR: the largest hot column, on which the
//     workload heavily relies.
func Workload(p TableProfile, seed int64) (*core.Workload, error) {
	if p.Attributes <= 0 || p.Filtered > p.Attributes || p.FilteredOften > p.Filtered {
		return nil, fmt.Errorf("erp: inconsistent profile %+v", p)
	}
	rng := rand.New(rand.NewSource(seed))
	n := p.Attributes
	cols := make([]core.Column, n)

	// Sizes. Hot and cold-filtered columns: log-uniform 1-32 MB;
	// BELNR: 64 MB (dominant). Unfiltered columns are scaled so they
	// hold ~78 % of the total bytes.
	var filteredBytes float64
	for i := 0; i < p.Filtered; i++ {
		mb := math.Exp(rng.Float64() * math.Log(32))
		if i == 0 {
			mb = 64 // BELNR-like document number
		}
		cols[i].Size = int64(mb * float64(1<<20))
		filteredBytes += float64(cols[i].Size)
	}
	unfilteredCount := n - p.Filtered
	if unfilteredCount > 0 {
		targetUnfiltered := filteredBytes * 0.78 / 0.22
		weights := make([]float64, unfilteredCount)
		var wsum float64
		for i := range weights {
			weights[i] = math.Exp(rng.Float64() * math.Log(16))
			wsum += weights[i]
		}
		for i := 0; i < unfilteredCount; i++ {
			sz := int64(targetUnfiltered * weights[i] / wsum)
			if sz < 1<<10 {
				sz = 1 << 10
			}
			cols[p.Filtered+i].Size = sz
		}
	}

	// Selectivities: hot columns are restrictive (document numbers,
	// dates); cold ones moderately so; unfiltered ones arbitrary.
	for i := range cols {
		cols[i].Name = fmt.Sprintf("%s_A%03d", p.Name, i)
		switch {
		case i == 0:
			cols[i].Selectivity = 1e-6 // BELNR: nearly unique
		case i < p.FilteredOften:
			cols[i].Selectivity = math.Pow(10, -(1 + 4*rng.Float64()))
		case i < p.Filtered:
			cols[i].Selectivity = math.Pow(10, -(0.5 + 2.5*rng.Float64()))
		default:
			cols[i].Selectivity = math.Pow(10, -3*rng.Float64())
		}
	}

	// Plans. Hot plans share the bulk of the executions; each hot
	// column is guaranteed >= 1 % coverage. Cold plans are rare and
	// usually pair a cold column with a restrictive hot one.
	hot := p.FilteredOften
	coldCount := p.Filtered - hot
	hotPlans := p.Plans - coldCount
	if hotPlans < hot {
		hotPlans = hot
	}
	var queries []core.Query
	// Zipf-ish frequencies over hot plans, normalized later.
	freqs := make([]float64, hotPlans)
	var fsum float64
	for i := range freqs {
		freqs[i] = 1 / math.Pow(float64(i+1), 1.1)
		fsum += freqs[i]
	}
	hotBudget := float64(totalExecutions) * 0.97
	for i := 0; i < hotPlans; i++ {
		// Plan i always contains hot column i%hot (guaranteeing
		// coverage), plus up to 3 more random hot columns.
		set := map[int]bool{i % hot: true}
		extra := rng.Intn(4)
		for len(set) < 1+extra {
			set[rng.Intn(hot)] = true
		}
		plan := make([]int, 0, len(set))
		for c := range set {
			plan = append(plan, c)
		}
		queries = append(queries, core.Query{
			Columns:   plan,
			Frequency: math.Max(1, math.Round(freqs[i]/fsum*hotBudget)),
		})
	}
	// Cold plans: below-threshold frequencies.
	coldBudgetPer := float64(totalExecutions) * 0.0003 // 0.03 % each
	for i := 0; i < coldCount; i++ {
		coldCol := hot + i
		plan := []int{coldCol}
		if rng.Float64() < 0.8 { // "usually combined with a highly restrictive attribute"
			plan = append(plan, rng.Intn(hot))
		}
		queries = append(queries, core.Query{
			Columns:   plan,
			Frequency: math.Max(1, math.Round(coldBudgetPer*(0.5+rng.Float64()))),
		})
	}

	w := &core.Workload{Columns: cols, Queries: queries}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("erp: generated invalid workload: %w", err)
	}
	return w, nil
}

// Stats computes a Table-I row from a workload: total attributes, the
// number filtered at least once, and the number filtered in >= 1 % of
// query executions.
func Stats(w *core.Workload) (attributes, filtered, filteredOften int) {
	attributes = len(w.Columns)
	var total float64
	coverage := make([]float64, len(w.Columns))
	for _, q := range w.Queries {
		total += q.Frequency
		for _, c := range q.Columns {
			coverage[c] += q.Frequency
		}
	}
	for _, cov := range coverage {
		if cov > 0 {
			filtered++
		}
		if total > 0 && cov >= 0.01*total {
			filteredOften++
		}
	}
	return attributes, filtered, filteredOften
}

// UnfilteredShare returns the fraction of the table's bytes held by
// never-filtered columns (the paper's "initial eviction rate" of ~78 %
// for BSEG).
func UnfilteredShare(w *core.Workload) float64 {
	g := w.AccessCounts()
	var unfiltered, total float64
	for i, c := range w.Columns {
		total += float64(c.Size)
		if g[i] == 0 {
			unfiltered += float64(c.Size)
		}
	}
	if total == 0 {
		return 0
	}
	return unfiltered / total
}
