package erp

import (
	"testing"

	"tierdb/internal/core"
	"tierdb/internal/table"
)

func TestProfilesMatchPaperTable1(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("profiles = %d, want 5", len(ps))
	}
	// The published Table I numbers.
	want := map[string][3]int{
		"BSEG":   {345, 50, 18},
		"ACDOCA": {338, 51, 19},
		"VBAP":   {340, 38, 9},
		"BKPF":   {128, 42, 16},
		"COEP":   {131, 22, 6},
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if p.Attributes != w[0] || p.Filtered != w[1] || p.FilteredOften != w[2] {
			t.Errorf("%s = %d/%d/%d, want %d/%d/%d", p.Name,
				p.Attributes, p.Filtered, p.FilteredOften, w[0], w[1], w[2])
		}
	}
}

func TestGeneratedWorkloadMatchesProfileStats(t *testing.T) {
	for _, p := range Profiles() {
		w, err := Workload(p, 42)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		attrs, filtered, often := Stats(w)
		if attrs != p.Attributes {
			t.Errorf("%s: attributes = %d, want %d", p.Name, attrs, p.Attributes)
		}
		if filtered != p.Filtered {
			t.Errorf("%s: filtered = %d, want %d", p.Name, filtered, p.Filtered)
		}
		// The >=1% threshold is statistical; allow +-2 columns.
		if often < p.FilteredOften-2 || often > p.FilteredOften+2 {
			t.Errorf("%s: filtered often = %d, want ~%d", p.Name, often, p.FilteredOften)
		}
	}
}

func TestBSEGUnfilteredShareNear78Percent(t *testing.T) {
	w, err := Workload(Profiles()[0], 7)
	if err != nil {
		t.Fatal(err)
	}
	share := UnfilteredShare(w)
	if share < 0.70 || share > 0.85 {
		t.Errorf("unfiltered byte share = %.2f, want ~0.78", share)
	}
}

func TestBELNRDominatesWorkload(t *testing.T) {
	w, err := Workload(Profiles()[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	// BELNR (column 0) must be the largest filtered column and appear
	// in the performance order early.
	for i := 1; i < 50; i++ {
		if w.Columns[i].Size > w.Columns[0].Size {
			t.Errorf("filtered column %d larger than BELNR", i)
		}
	}
	order, err := core.PerformanceOrder(w, core.DefaultCostParams(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := -1
	for i, c := range order {
		if c == 0 {
			pos = i
		}
	}
	if pos == -1 {
		t.Fatal("BELNR missing from performance order")
	}
}

func TestWorkloadDeterministicPerSeed(t *testing.T) {
	a, err := Workload(Profiles()[0], 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Workload(Profiles()[0], 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			t.Fatalf("column %d differs across same-seed runs", i)
		}
	}
	c, err := Workload(Profiles()[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Columns {
		if a.Columns[i] != c.Columns[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestWorkloadRejectsBadProfile(t *testing.T) {
	if _, err := Workload(TableProfile{Attributes: 0}, 1); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := Workload(TableProfile{Attributes: 10, Filtered: 20}, 1); err == nil {
		t.Error("filtered > attributes accepted")
	}
}

func TestBSEGSchemaShape(t *testing.T) {
	s := BSEGSchema()
	if s.Len() != BSEGAttributes {
		t.Errorf("schema has %d fields, want %d", s.Len(), BSEGAttributes)
	}
	if s.Field(0).Name != "BELNR" {
		t.Error("BELNR not first")
	}
	if s.IndexOf("BUKRS") != 1 || s.IndexOf("GJAHR") != 2 {
		t.Error("key columns misplaced")
	}
}

func TestBuildBSEGTable(t *testing.T) {
	tbl, err := BuildBSEGTable(200, table.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.MainRows() != 200 {
		t.Errorf("rows = %d", tbl.MainRows())
	}
	// Layout: 20 MRCs + 325 SSCG fields.
	layout := tbl.Layout()
	mrcs := 0
	for _, in := range layout {
		if in {
			mrcs++
		}
	}
	if mrcs != BSEGHotAttributes {
		t.Errorf("MRC count = %d, want %d", mrcs, BSEGHotAttributes)
	}
	if tbl.Group() == nil || len(tbl.Group().Fields()) != BSEGAttributes-BSEGHotAttributes {
		t.Error("SSCG shape wrong")
	}
	// Rows survive tiering.
	row, err := tbl.GetTuple(42)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int() != 42 {
		t.Errorf("BELNR(42) = %v", row[0])
	}
	// BSEG rows (345 attrs, ~2.8 KB + strings) may span pages; the
	// group must still reconstruct with few accesses.
	if ppr := tbl.Group().PagesPerReconstruction(); ppr > 2 {
		t.Errorf("pages per reconstruction = %d, want <= 2", ppr)
	}
}
