package erp

import (
	"fmt"
	"math/rand"

	"tierdb/internal/schema"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// BSEGAttributes is the attribute count of the paper's BSEG table.
const BSEGAttributes = 345

// BSEGHotAttributes is the number of attributes the paper keeps as MRCs
// for the BSEG benchmarks (Figure 8: "20 MRC-attributes and 325
// attributes in an SSCG").
const BSEGHotAttributes = 20

// BSEGSchema returns a 345-attribute schema shaped like the BSEG
// accounting-document line-item table: document numbers and keys first
// (the hot attributes), followed by a long tail of amounts, flags and
// codes.
func BSEGSchema() *schema.Schema {
	fields := make([]schema.Field, BSEGAttributes)
	for i := range fields {
		switch {
		case i == 0:
			fields[i] = schema.Field{Name: "BELNR", Type: value.Int64} // document number
		case i == 1:
			fields[i] = schema.Field{Name: "BUKRS", Type: value.Int64} // company code
		case i == 2:
			fields[i] = schema.Field{Name: "GJAHR", Type: value.Int64} // fiscal year
		case i < BSEGHotAttributes:
			fields[i] = schema.Field{Name: fmt.Sprintf("KEY%02d", i), Type: value.Int64}
		case i%7 == 3:
			fields[i] = schema.Field{Name: fmt.Sprintf("TXT%03d", i), Type: value.String, Width: 16}
		case i%5 == 1:
			fields[i] = schema.Field{Name: fmt.Sprintf("AMT%03d", i), Type: value.Float64}
		default:
			fields[i] = schema.Field{Name: fmt.Sprintf("FLD%03d", i), Type: value.Int64}
		}
	}
	return schema.MustNew(fields)
}

// BSEGRow generates one deterministic pseudo-random BSEG row.
func BSEGRow(s *schema.Schema, rowNum int, rng *rand.Rand) []value.Value {
	row := make([]value.Value, s.Len())
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		switch f.Type {
		case value.Int64:
			switch i {
			case 0:
				row[i] = value.NewInt(int64(rowNum)) // BELNR nearly unique
			case 1:
				row[i] = value.NewInt(int64(rng.Intn(8))) // few company codes
			case 2:
				row[i] = value.NewInt(int64(2010 + rng.Intn(8)))
			default:
				row[i] = value.NewInt(int64(rng.Intn(1000)))
			}
		case value.Float64:
			row[i] = value.NewFloat(float64(rng.Intn(1_000_000)) / 100)
		default:
			row[i] = value.NewString(fmt.Sprintf("T%07d", rng.Intn(100000)))
		}
	}
	return row
}

// BuildBSEGTable creates and loads a BSEG-like table with the given row
// count and applies the paper's benchmark layout: the first
// BSEGHotAttributes columns as MRCs, the remaining 325 in an SSCG.
func BuildBSEGTable(rows int, opts table.Options, seed int64) (*table.Table, error) {
	s := BSEGSchema()
	tbl, err := table.New("BSEG", s, opts)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([][]value.Value, rows)
	for r := range data {
		data[r] = BSEGRow(s, r, rng)
	}
	if err := tbl.BulkAppend(data); err != nil {
		return nil, err
	}
	layout := make([]bool, s.Len())
	for i := range layout {
		layout[i] = i < BSEGHotAttributes
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		return nil, err
	}
	return tbl, nil
}
