// Package column implements Memory-Resident Columns (MRCs): singular,
// fully DRAM-resident columns with order-preserving dictionary encoding
// and bit-packed value vectors (paper Section II-A). All sequential
// operations — filtering, joining, aggregating — run on MRCs; range
// predicates translate to code ranges thanks to order preservation.
package column

import (
	"fmt"

	"tierdb/internal/dict"
	"tierdb/internal/value"
)

// MRC is an immutable memory-resident column of a main partition.
type MRC struct {
	name  string
	typ   value.Type
	dict  *dict.Dictionary
	codes *dict.BitPacked
}

// Build constructs an MRC from the column's values.
func Build(name string, typ value.Type, values []value.Value) (*MRC, error) {
	d, codes, err := dict.Build(typ, values)
	if err != nil {
		return nil, fmt.Errorf("column %q: %w", name, err)
	}
	maxCode := uint32(0)
	if d.Size() > 0 {
		maxCode = uint32(d.Size() - 1)
	}
	return &MRC{name: name, typ: typ, dict: d, codes: dict.Pack(codes, maxCode)}, nil
}

// Name returns the column name.
func (c *MRC) Name() string { return c.name }

// Type returns the value type.
func (c *MRC) Type() value.Type { return c.typ }

// Len returns the number of rows.
func (c *MRC) Len() int { return c.codes.Len() }

// DistinctCount returns the dictionary size.
func (c *MRC) DistinctCount() int { return c.dict.Size() }

// Selectivity returns the paper's attribute selectivity estimate 1/n
// for n distinct values (Section II-B).
func (c *MRC) Selectivity() float64 {
	if c.dict.Size() == 0 {
		return 1
	}
	return 1 / float64(c.dict.Size())
}

// Bytes returns the DRAM footprint: bit-packed vector plus dictionary.
func (c *MRC) Bytes() int64 { return c.codes.Bytes() + c.dict.Bytes() }

// Get materializes the value at row i (two dependent accesses: value
// vector, then dictionary — the paper's "two L3 cache misses").
func (c *MRC) Get(i int) (value.Value, error) {
	if i < 0 || i >= c.codes.Len() {
		return value.Value{}, fmt.Errorf("column %q: row %d out of range (%d rows)", c.name, i, c.codes.Len())
	}
	return c.dict.Decode(c.codes.Get(i))
}

// Code returns the dictionary code at row i without decoding (late
// materialization).
func (c *MRC) Code(i int) uint32 { return c.codes.Get(i) }

// ScanEqual appends to out the positions equal to v, skipping rows for
// which skip returns true (MVCC-invisible rows); skip may be nil.
// Predicate evaluation happens on compressed codes.
func (c *MRC) ScanEqual(v value.Value, out []uint32, skip func(int) bool) ([]uint32, error) {
	return c.ScanEqualIn(v, 0, c.codes.Len(), out, skip)
}

// ScanEqualIn is ScanEqual restricted to rows in [rowLo, rowHi); the
// morsel-driven parallel executor calls it with disjoint row ranges.
func (c *MRC) ScanEqualIn(v value.Value, rowLo, rowHi int, out []uint32, skip func(int) bool) ([]uint32, error) {
	if v.Type() != c.typ {
		return nil, fmt.Errorf("column %q: predicate type %s, want %s", c.name, v.Type(), c.typ)
	}
	code, ok := c.dict.Encode(v)
	if !ok {
		return out, nil // value absent: empty result
	}
	return c.codes.ScanEqualIn(code, rowLo, rowHi, out, skip), nil
}

// ScanRange appends positions with lo <= value <= hi to out.
func (c *MRC) ScanRange(lo, hi value.Value, out []uint32, skip func(int) bool) ([]uint32, error) {
	return c.ScanRangeIn(lo, hi, 0, c.codes.Len(), out, skip)
}

// ScanRangeIn is ScanRange restricted to rows in [rowLo, rowHi).
func (c *MRC) ScanRangeIn(lo, hi value.Value, rowLo, rowHi int, out []uint32, skip func(int) bool) ([]uint32, error) {
	if lo.Type() != c.typ || hi.Type() != c.typ {
		return nil, fmt.Errorf("column %q: range predicate types %s/%s, want %s", c.name, lo.Type(), hi.Type(), c.typ)
	}
	loCode := c.dict.LowerBound(lo)
	hiCode := c.dict.UpperBound(hi)
	if loCode >= hiCode {
		return out, nil
	}
	return c.codes.ScanRangeIn(loCode, hiCode, rowLo, rowHi, out, skip), nil
}

// ProbeEqual reports for each position in candidates whether the value
// at the position equals v, appending matches to out (the scan→probe
// switch of the paper's executor uses this on DRAM-resident columns).
func (c *MRC) ProbeEqual(v value.Value, candidates []uint32, out []uint32) ([]uint32, error) {
	if v.Type() != c.typ {
		return nil, fmt.Errorf("column %q: predicate type %s, want %s", c.name, v.Type(), c.typ)
	}
	code, ok := c.dict.Encode(v)
	if !ok {
		return out, nil
	}
	for _, pos := range candidates {
		if c.codes.Get(int(pos)) == code {
			out = append(out, pos)
		}
	}
	return out, nil
}

// ProbeRange appends candidate positions whose value lies in [lo, hi].
func (c *MRC) ProbeRange(lo, hi value.Value, candidates []uint32, out []uint32) ([]uint32, error) {
	if lo.Type() != c.typ || hi.Type() != c.typ {
		return nil, fmt.Errorf("column %q: range predicate types %s/%s, want %s", c.name, lo.Type(), hi.Type(), c.typ)
	}
	loCode := c.dict.LowerBound(lo)
	hiCode := c.dict.UpperBound(hi)
	for _, pos := range candidates {
		if code := c.codes.Get(int(pos)); code >= loCode && code < hiCode {
			out = append(out, pos)
		}
	}
	return out, nil
}

// Dictionary exposes the underlying dictionary (read-only use).
func (c *MRC) Dictionary() *dict.Dictionary { return c.dict }
