package column

import (
	"math/rand"
	"testing"

	"tierdb/internal/value"
)

func intColumn(t *testing.T, vals ...int64) *MRC {
	t.Helper()
	vv := make([]value.Value, len(vals))
	for i, v := range vals {
		vv[i] = value.NewInt(v)
	}
	c, err := Build("test", value.Int64, vv)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildAndGet(t *testing.T) {
	c := intColumn(t, 5, 3, 5, 9, 3)
	if c.Len() != 5 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.DistinctCount() != 3 {
		t.Errorf("DistinctCount = %d", c.DistinctCount())
	}
	want := []int64{5, 3, 5, 9, 3}
	for i, w := range want {
		v, err := c.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int() != w {
			t.Errorf("Get(%d) = %d, want %d", i, v.Int(), w)
		}
	}
	if _, err := c.Get(99); err == nil {
		t.Error("out-of-range Get accepted")
	}
	if c.Name() != "test" || c.Type() != value.Int64 {
		t.Error("metadata wrong")
	}
}

func TestSelectivity(t *testing.T) {
	c := intColumn(t, 1, 2, 3, 4)
	if got := c.Selectivity(); got != 0.25 {
		t.Errorf("Selectivity = %g, want 0.25", got)
	}
}

func TestScanEqual(t *testing.T) {
	c := intColumn(t, 5, 3, 5, 9, 3)
	got, err := c.ScanEqual(value.NewInt(5), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ScanEqual(5) = %v", got)
	}
	// Absent value: empty result, no error.
	got, err = c.ScanEqual(value.NewInt(77), nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("ScanEqual(77) = %v, %v", got, err)
	}
	// Type mismatch errors.
	if _, err := c.ScanEqual(value.NewString("x"), nil, nil); err == nil {
		t.Error("type mismatch accepted")
	}
	// Skip masks rows.
	got, _ = c.ScanEqual(value.NewInt(5), nil, func(i int) bool { return i == 0 })
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("ScanEqual with skip = %v", got)
	}
}

func TestScanRange(t *testing.T) {
	c := intColumn(t, 10, 25, 40, 25, 5)
	got, err := c.ScanRange(value.NewInt(10), value.NewInt(30), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint32]bool{0: true, 1: true, 3: true}
	if len(got) != 3 {
		t.Fatalf("ScanRange = %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("unexpected position %d", p)
		}
	}
	// Empty range.
	got, err = c.ScanRange(value.NewInt(41), value.NewInt(50), nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty range = %v, %v", got, err)
	}
	if _, err := c.ScanRange(value.NewString("a"), value.NewString("b"), nil, nil); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestProbe(t *testing.T) {
	c := intColumn(t, 5, 3, 5, 9, 3)
	got, err := c.ProbeEqual(value.NewInt(5), []uint32{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ProbeEqual = %v", got)
	}
	got, err = c.ProbeRange(value.NewInt(3), value.NewInt(5), []uint32{0, 3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Errorf("ProbeRange = %v", got)
	}
	// Missing value probes to empty.
	got, _ = c.ProbeEqual(value.NewInt(100), []uint32{0, 1}, nil)
	if len(got) != 0 {
		t.Errorf("ProbeEqual(missing) = %v", got)
	}
	if _, err := c.ProbeEqual(value.NewString("x"), nil, nil); err == nil {
		t.Error("probe type mismatch accepted")
	}
	if _, err := c.ProbeRange(value.NewString("x"), value.NewString("y"), nil, nil); err == nil {
		t.Error("probe range type mismatch accepted")
	}
}

func TestScanMatchesProbeOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 5000
	vals := make([]value.Value, n)
	for i := range vals {
		vals[i] = value.NewInt(int64(rng.Intn(100)))
	}
	c, err := Build("rand", value.Int64, vals)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]uint32, n)
	for i := range all {
		all[i] = uint32(i)
	}
	for _, probe := range []int64{0, 17, 50, 99} {
		s, err := c.ScanEqual(value.NewInt(probe), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.ProbeEqual(value.NewInt(probe), all, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != len(p) {
			t.Fatalf("scan and probe disagree for %d: %d vs %d", probe, len(s), len(p))
		}
		for i := range s {
			if s[i] != p[i] {
				t.Fatalf("scan and probe positions disagree")
			}
		}
	}
}

func TestCodeAndDictionary(t *testing.T) {
	c := intColumn(t, 30, 10, 20)
	// Order-preserving: code(10)=0 < code(20)=1 < code(30)=2.
	if c.Code(1) != 0 || c.Code(2) != 1 || c.Code(0) != 2 {
		t.Errorf("codes = %d %d %d", c.Code(0), c.Code(1), c.Code(2))
	}
	if c.Dictionary().Size() != 3 {
		t.Error("Dictionary accessor broken")
	}
	if c.Bytes() <= 0 {
		t.Error("Bytes not positive")
	}
}

func TestBuildStringColumn(t *testing.T) {
	vals := []value.Value{value.NewString("b"), value.NewString("a"), value.NewString("b")}
	c, err := Build("s", value.String, vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ScanRange(value.NewString("a"), value.NewString("a"), nil, nil)
	if err != nil || len(got) != 1 || got[0] != 1 {
		t.Errorf("string range scan = %v, %v", got, err)
	}
}

func TestBuildTypeMismatch(t *testing.T) {
	if _, err := Build("x", value.Int64, []value.Value{value.NewString("s")}); err == nil {
		t.Error("mismatched build accepted")
	}
}
