package mvcc

import (
	"context"
	"errors"
	"sync"
	"testing"

	"tierdb/internal/value"
)

// fakeLog captures appended commits in order, optionally failing.
type fakeLog struct {
	mu   sync.Mutex
	ts   []Timestamp
	ops  [][]RedoOp
	fail error
}

func (f *fakeLog) AppendCommit(_ context.Context, alloc func() Timestamp, ops []RedoOp) (Timestamp, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return 0, f.fail
	}
	ts := alloc()
	f.ts = append(f.ts, ts)
	f.ops = append(f.ops, ops)
	return ts, nil
}

func TestCommitLogsRedo(t *testing.T) {
	m := NewManager()
	log := &fakeLog{}
	m.SetDurability(log)
	tx := m.Begin()
	tx.LogRedo(RedoOp{Table: "t", Row: []value.Value{value.NewInt(1)}})
	ts, err := m.Commit(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.ts) != 1 || log.ts[0] != ts {
		t.Fatalf("logged ts %v, committed %d", log.ts, ts)
	}
	if len(log.ops[0]) != 1 || log.ops[0][0].Table != "t" {
		t.Fatalf("logged ops %+v", log.ops[0])
	}
	// A read-only transaction must not touch the log.
	ro := m.Begin()
	if _, err := m.Commit(ro); err != nil {
		t.Fatal(err)
	}
	if len(log.ts) != 1 {
		t.Fatalf("read-only commit was logged")
	}
}

func TestCommitRollsBackOnLogFailure(t *testing.T) {
	m := NewManager()
	boom := errors.New("disk gone")
	m.SetDurability(&fakeLog{fail: boom})
	tx := m.Begin()
	tx.LogRedo(RedoOp{Table: "t"})
	aborted := false
	tx.OnAbort(func() { aborted = true })
	if _, err := m.Commit(tx); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !aborted || tx.Status() != Aborted {
		t.Fatalf("failed commit must roll back (aborted=%v status=%v)", aborted, tx.Status())
	}
	// The manager must not leak the transaction as active.
	if got := m.OldestActiveSnapshot(); got != m.LastCommit() {
		t.Fatalf("aborted tx still pins snapshot %d", got)
	}
}

// TestCommitOrderMatchesLogOrder hammers concurrent commits and checks
// the invariant the replay path depends on: the log's append order is
// exactly commit-timestamp order.
func TestCommitOrderMatchesLogOrder(t *testing.T) {
	m := NewManager()
	log := &fakeLog{}
	m.SetDurability(log)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tx := m.Begin()
				tx.LogRedo(RedoOp{Table: "t"})
				if _, err := m.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(log.ts) != 1600 {
		t.Fatalf("logged %d commits, want 1600", len(log.ts))
	}
	for i := 1; i < len(log.ts); i++ {
		if log.ts[i] <= log.ts[i-1] {
			t.Fatalf("log order violates ts order at %d: %d after %d", i, log.ts[i], log.ts[i-1])
		}
	}
}

func TestBulkCommitAppliesUnderGate(t *testing.T) {
	m := NewManager()
	log := &fakeLog{}
	m.SetDurability(log)
	ops := []RedoOp{{Table: "t", Row: []value.Value{value.NewInt(7)}}}
	var applied Timestamp
	ts, err := m.BulkCommit(ops, func(ts Timestamp) error {
		applied = ts
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != ts || len(log.ts) != 1 || log.ts[0] != ts {
		t.Fatalf("apply ts %d, commit ts %d, logged %v", applied, ts, log.ts)
	}
	if m.LastCommit() != ts {
		t.Fatalf("clock %d, want %d", m.LastCommit(), ts)
	}
}

func TestQuiescedLastCommitAndAdvanceTo(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if _, err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if q := m.QuiescedLastCommit(); q != m.LastCommit() {
		t.Fatalf("quiesced %d != last commit %d", q, m.LastCommit())
	}
	m.AdvanceTo(100)
	if m.LastCommit() != 100 {
		t.Fatalf("AdvanceTo: clock %d, want 100", m.LastCommit())
	}
	m.AdvanceTo(5) // never moves backwards
	if m.LastCommit() != 100 {
		t.Fatalf("AdvanceTo moved clock backwards to %d", m.LastCommit())
	}
}
