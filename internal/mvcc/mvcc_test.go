package mvcc

import (
	"errors"
	"sync"
	"testing"
)

func TestBeginAssignsIncreasingIDs(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	if t2.ID() <= t1.ID() {
		t.Errorf("tx ids not increasing: %d then %d", t1.ID(), t2.ID())
	}
	if t1.Status() != Active {
		t.Error("new tx not active")
	}
}

func TestCommitAdvancesTimestamp(t *testing.T) {
	m := NewManager()
	before := m.LastCommit()
	tx := m.Begin()
	ts, err := m.Commit(tx)
	if err != nil {
		t.Fatal(err)
	}
	if ts <= before {
		t.Errorf("commit ts %d not after %d", ts, before)
	}
	if m.LastCommit() != ts {
		t.Errorf("LastCommit = %d, want %d", m.LastCommit(), ts)
	}
	if tx.Status() != Committed {
		t.Error("tx not committed")
	}
	if _, err := m.Commit(tx); !errors.Is(err, ErrTxFinished) {
		t.Errorf("double commit: %v", err)
	}
	if err := m.Abort(tx); !errors.Is(err, ErrTxFinished) {
		t.Errorf("abort after commit: %v", err)
	}
}

func TestInsertVisibilityLifecycle(t *testing.T) {
	m := NewManager()
	v := NewVersions()

	writer := m.Begin()
	row := v.AppendPending(writer.ID())
	writer.OnCommit(func(ts Timestamp) { v.CommitInsert(row, ts) })

	// Only the writer sees its provisional insert.
	if !v.Visible(row, writer.Snapshot(), writer.ID()) {
		t.Error("writer cannot see its own insert")
	}
	reader := m.Begin()
	if v.Visible(row, reader.Snapshot(), reader.ID()) {
		t.Error("other tx sees provisional insert")
	}

	ts, err := m.Commit(writer)
	if err != nil {
		t.Fatal(err)
	}
	// The old reader snapshot still does not see it (snapshot isolation).
	if v.Visible(row, reader.Snapshot(), reader.ID()) {
		t.Error("old snapshot sees newly committed row")
	}
	// A new reader does.
	late := m.Begin()
	if !v.Visible(row, late.Snapshot(), late.ID()) {
		t.Error("new snapshot misses committed row")
	}
	if v.LiveAt(ts) != 1 {
		t.Errorf("LiveAt(%d) = %d, want 1", ts, v.LiveAt(ts))
	}
}

func TestAbortInsertNeverVisible(t *testing.T) {
	m := NewManager()
	v := NewVersions()
	tx := m.Begin()
	row := v.AppendPending(tx.ID())
	tx.OnAbort(func() { v.AbortInsert(row) })
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}
	late := m.Begin()
	if v.Visible(row, late.Snapshot(), late.ID()) {
		t.Error("aborted insert visible")
	}
	if v.Visible(row, late.Snapshot(), tx.ID()) {
		t.Error("aborted insert visible to its own tx id")
	}
}

func TestDeleteLifecycle(t *testing.T) {
	m := NewManager()
	v := NewVersions()
	row := v.AppendCommitted(m.LastCommit())

	deleter := m.Begin()
	if err := v.MarkDelete(row, deleter.ID()); err != nil {
		t.Fatal(err)
	}
	deleter.OnCommit(func(ts Timestamp) { v.CommitDelete(row, ts) })

	// Deleter no longer sees the row; concurrent readers still do.
	if v.Visible(row, deleter.Snapshot(), deleter.ID()) {
		t.Error("deleter still sees row after MarkDelete")
	}
	reader := m.Begin()
	if !v.Visible(row, reader.Snapshot(), reader.ID()) {
		t.Error("concurrent reader lost the row before commit")
	}

	if _, err := m.Commit(deleter); err != nil {
		t.Fatal(err)
	}
	// Old snapshot still sees it; new snapshot does not.
	if !v.Visible(row, reader.Snapshot(), reader.ID()) {
		t.Error("old snapshot lost row after delete commit")
	}
	late := m.Begin()
	if v.Visible(row, late.Snapshot(), late.ID()) {
		t.Error("new snapshot sees deleted row")
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewManager()
	v := NewVersions()
	row := v.AppendCommitted(m.LastCommit())

	t1 := m.Begin()
	t2 := m.Begin()
	if err := v.MarkDelete(row, t1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := v.MarkDelete(row, t2.ID()); !errors.Is(err, ErrWriteConflict) {
		t.Errorf("second delete intent: %v, want ErrWriteConflict", err)
	}
	// Re-marking by the same tx is idempotent.
	if err := v.MarkDelete(row, t1.ID()); err != nil {
		t.Errorf("re-mark by owner: %v", err)
	}
	// After abort the row is deletable again.
	v.AbortDelete(row, t1.ID())
	if err := v.MarkDelete(row, t2.ID()); err != nil {
		t.Errorf("delete after released intent: %v", err)
	}
}

func TestDeleteCommittedRowTwiceConflicts(t *testing.T) {
	m := NewManager()
	v := NewVersions()
	row := v.AppendCommitted(m.LastCommit())
	t1 := m.Begin()
	if err := v.MarkDelete(row, t1.ID()); err != nil {
		t.Fatal(err)
	}
	t1.OnCommit(func(ts Timestamp) { v.CommitDelete(row, ts) })
	if _, err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	if err := v.MarkDelete(row, t2.ID()); !errors.Is(err, ErrWriteConflict) {
		t.Errorf("delete of deleted row: %v, want ErrWriteConflict", err)
	}
}

func TestMarkDeleteOtherTxPendingInsertConflicts(t *testing.T) {
	m := NewManager()
	v := NewVersions()
	t1 := m.Begin()
	row := v.AppendPending(t1.ID())
	t2 := m.Begin()
	if err := v.MarkDelete(row, t2.ID()); !errors.Is(err, ErrWriteConflict) {
		t.Errorf("delete of foreign pending insert: %v, want ErrWriteConflict", err)
	}
}

func TestMarkDeleteOutOfRange(t *testing.T) {
	v := NewVersions()
	if err := v.MarkDelete(5, 1); err == nil {
		t.Error("out-of-range MarkDelete accepted")
	}
	if v.Visible(5, 10, 0) {
		t.Error("out-of-range row visible")
	}
}

func TestVersionsBytesAndLen(t *testing.T) {
	v := NewVersions()
	v.AppendCommitted(1)
	v.AppendCommitted(1)
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
	if v.Bytes() != 2*32 {
		t.Errorf("Bytes = %d, want 64", v.Bytes())
	}
}

func TestConcurrentTransactions(t *testing.T) {
	m := NewManager()
	v := NewVersions()
	const writers = 8
	const rowsPer = 200
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rowsPer; i++ {
				tx := m.Begin()
				row := v.AppendPending(tx.ID())
				tx.OnCommit(func(ts Timestamp) { v.CommitInsert(row, ts) })
				if _, err := m.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	final := m.Begin()
	if got := v.LiveAt(final.Snapshot()); got != writers*rowsPer {
		t.Errorf("LiveAt = %d, want %d", got, writers*rowsPer)
	}
}
