package mvcc

import (
	"context"

	"tierdb/internal/value"
)

// RedoOp is one logical write captured for the write-ahead log: enough
// to re-apply the effect of a committed transaction on restart. Deletes
// carry the full row content rather than a RowID because row ids are
// positional and do not survive a merge; replay removes the first
// committed-live row with identical content, which is multiset-correct.
type RedoOp struct {
	// Table names the table the op applies to.
	Table string
	// Delete distinguishes a row deletion from an insertion.
	Delete bool
	// Row is the full tuple inserted or deleted.
	Row []value.Value
}

// Durability is the write-ahead log surface the transaction manager
// drives. Implementations must make the ops durable (per the configured
// sync policy) before returning; alloc is called exactly once, inside
// the log's append critical section, so log order matches commit
// timestamp order.
type Durability interface {
	// AppendCommit logs one transaction's redo ops under the timestamp
	// returned by alloc and returns that timestamp. ctx carries the
	// request's trace span (if any); implementations attach their
	// append/fsync child spans to it.
	AppendCommit(ctx context.Context, alloc func() Timestamp, ops []RedoOp) (Timestamp, error)
}
