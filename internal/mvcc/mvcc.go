// Package mvcc implements the multi-version concurrency control scheme
// the engine uses for ACID compliance (paper Section II, cf. Hyrise's
// MVCC): every row carries begin/end commit timestamps, transactions
// read a snapshot, writes are provisional until commit, and write-write
// conflicts abort. MVCC columns always stay DRAM-resident (Section IV,
// "Transaction Handling"), which is why tiering does not impact
// transactional performance.
package mvcc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"tierdb/internal/metrics"
	"tierdb/internal/trace"
)

// Timestamp is a commit timestamp. Snapshot isolation: a transaction
// sees all versions committed at or before its snapshot.
type Timestamp = uint64

// TxID identifies a transaction.
type TxID = uint64

// Infinity marks a version that has not been deleted.
const Infinity Timestamp = math.MaxUint64

// ErrWriteConflict is returned when two transactions try to delete or
// update the same row.
var ErrWriteConflict = errors.New("mvcc: write-write conflict")

// ErrTxFinished is returned when operating on a committed or aborted
// transaction.
var ErrTxFinished = errors.New("mvcc: transaction already finished")

// Status is a transaction's lifecycle state.
type Status int

const (
	// Active transactions can read and write.
	Active Status = iota
	// Committed transactions have published their writes.
	Committed
	// Aborted transactions have rolled their writes back.
	Aborted
)

// Tx is one transaction handle.
type Tx struct {
	id       TxID
	snapshot Timestamp
	status   Status
	mgr      *Manager
	// onCommit callbacks stamp pending rows with the commit timestamp;
	// onAbort callbacks roll provisional state back.
	onCommit []func(ts Timestamp)
	onAbort  []func()
	// redo buffers the transaction's logical writes for the write-ahead
	// log; empty when durability is off.
	redo []RedoOp
}

// ID returns the transaction id.
func (t *Tx) ID() TxID { return t.id }

// Snapshot returns the snapshot timestamp the transaction reads at.
func (t *Tx) Snapshot() Timestamp { return t.snapshot }

// Status returns the lifecycle state.
func (t *Tx) Status() Status { return t.status }

// OnCommit registers a callback run with the commit timestamp.
func (t *Tx) OnCommit(fn func(ts Timestamp)) { t.onCommit = append(t.onCommit, fn) }

// OnAbort registers a rollback callback.
func (t *Tx) OnAbort(fn func()) { t.onAbort = append(t.onAbort, fn) }

// LogRedo buffers one logical write for the write-ahead log; callers
// only log when durability is configured.
func (t *Tx) LogRedo(op RedoOp) { t.redo = append(t.redo, op) }

// Redo exposes the buffered redo ops (tests, diagnostics).
func (t *Tx) Redo() []RedoOp { return t.redo }

// Manager hands out transactions and commit timestamps.
type Manager struct {
	mu         sync.Mutex
	lastCommit Timestamp
	nextTx     TxID
	active     map[TxID]Timestamp // snapshot of every unfinished transaction

	// gate is the commit gate: every commit holds it shared from
	// timestamp allocation through write publication, and a checkpoint
	// holds it exclusively (QuiescedLastCommit) to obtain a timestamp
	// with no commit at or below it still unpublished. Without it a
	// snapshot could miss a committed-but-not-yet-stamped row whose log
	// record is then truncated — a lost write.
	gate sync.RWMutex
	// dur, when set, receives every committed transaction's redo ops
	// before the commit is acknowledged.
	dur Durability

	// Per-transaction lifecycle counters (nil → no-op). Visibility
	// checks are deliberately not counted here: they run per row on the
	// scan hot path and are accounted batched by the callers instead.
	cBegin  *metrics.Counter
	cCommit *metrics.Counter
	cAbort  *metrics.Counter
}

// NewManager returns a manager; timestamp 0 is "before all data", so
// freshly loaded (non-transactional) data is stamped with timestamp 1.
func NewManager() *Manager {
	return &Manager{lastCommit: 1, nextTx: 1, active: make(map[TxID]Timestamp)}
}

// Observe registers transaction-lifecycle counters (mvcc.tx.begin,
// mvcc.tx.commit, mvcc.tx.abort) with a metrics registry.
func (m *Manager) Observe(r *metrics.Registry) {
	m.cBegin = r.Counter("mvcc.tx.begin")
	m.cCommit = r.Counter("mvcc.tx.commit")
	m.cAbort = r.Counter("mvcc.tx.abort")
}

// Begin starts a transaction reading the latest committed snapshot.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	tx := &Tx{id: m.nextTx, snapshot: m.lastCommit, mgr: m}
	m.nextTx++
	m.active[tx.id] = tx.snapshot
	m.cBegin.Inc()
	return tx
}

// OldestActiveSnapshot returns the smallest snapshot any unfinished
// transaction reads at, or the latest commit timestamp when none is
// active. The merge swap uses it as a purge watermark: rows deleted at
// or before this timestamp are invisible to every current and future
// reader and can be dropped; younger dead rows are re-based so open
// snapshots keep their exact visibility across the swap.
func (m *Manager) OldestActiveSnapshot() Timestamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldest := m.lastCommit
	for _, snap := range m.active {
		if snap < oldest {
			oldest = snap
		}
	}
	return oldest
}

// LastCommit returns the newest commit timestamp (the snapshot new
// transactions will read).
func (m *Manager) LastCommit() Timestamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastCommit
}

// SetDurability wires a write-ahead log into the commit path. Call it
// before the first transaction; nil turns durability off.
func (m *Manager) SetDurability(d Durability) { m.dur = d }

// AdvanceTo raises the commit clock to at least ts. Recovery calls it
// after replay so fresh commits never reuse a logged timestamp.
func (m *Manager) AdvanceTo(ts Timestamp) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts > m.lastCommit {
		m.lastCommit = ts
	}
}

// QuiescedLastCommit returns the newest commit timestamp with the
// guarantee that every commit at or below it is fully published (rows
// stamped, visible to snapshot scans). It acquires the commit gate
// exclusively, so it waits out in-flight commits; checkpoints use the
// result as their snapshot timestamp.
func (m *Manager) QuiescedLastCommit() Timestamp {
	m.gate.Lock()
	defer m.gate.Unlock()
	return m.LastCommit()
}

// allocLocked assigns the next commit timestamp and retires t from the
// active set; called (possibly via the durability layer) under the
// commit gate.
func (m *Manager) allocLocked(t *Tx) Timestamp {
	m.mu.Lock()
	m.lastCommit++
	ts := m.lastCommit
	if t != nil {
		delete(m.active, t.id)
	}
	m.mu.Unlock()
	return ts
}

// Commit makes the transaction durable (when a log is configured) and
// publishes its writes under the commit gate. It is CommitCtx without
// a trace context.
func (m *Manager) Commit(t *Tx) (Timestamp, error) {
	return m.CommitCtx(context.Background(), t)
}

// CommitCtx makes the transaction durable (when a log is configured)
// and publishes its writes under the commit gate. The timestamp is
// allocated inside the log's append critical section, so log order
// equals commit order. If the log append fails the transaction is
// rolled back and the error returned: nothing was acknowledged, nothing
// becomes visible.
//
// When ctx carries a trace span, the durable part of the commit is
// recorded as a "wal.commit" child span (with "wal.append"/"wal.fsync"
// grandchildren from the log itself).
func (m *Manager) CommitCtx(ctx context.Context, t *Tx) (Timestamp, error) {
	if t.status != Active {
		return 0, ErrTxFinished
	}
	m.gate.RLock()
	var ts Timestamp
	if m.dur != nil && len(t.redo) > 0 {
		span := trace.FromContext(ctx).Child("wal.commit", trace.Int("redo_ops", int64(len(t.redo))))
		allocated := false
		_, err := m.dur.AppendCommit(trace.NewContext(ctx, span), func() Timestamp {
			ts = m.allocLocked(t)
			allocated = true
			return ts
		}, t.redo)
		span.SetError(err)
		span.End()
		if err != nil {
			m.gate.RUnlock()
			if !allocated {
				m.mu.Lock()
				delete(m.active, t.id)
				m.mu.Unlock()
			}
			for i := len(t.onAbort) - 1; i >= 0; i-- {
				t.onAbort[i]()
			}
			t.status = Aborted
			m.cAbort.Inc()
			return 0, fmt.Errorf("mvcc: commit not durable, rolled back: %w", err)
		}
	} else {
		ts = m.allocLocked(t)
	}
	for _, fn := range t.onCommit {
		fn(ts)
	}
	m.gate.RUnlock()
	t.status = Committed
	m.cCommit.Inc()
	return ts, nil
}

// BulkCommit is BulkCommitCtx without a trace context.
func (m *Manager) BulkCommit(ops []RedoOp, apply func(ts Timestamp) error) (Timestamp, error) {
	return m.BulkCommitCtx(context.Background(), ops, apply)
}

// BulkCommitCtx allocates one commit timestamp for a non-transactional
// bulk write, logs ops (when durability is configured) and runs apply
// with the timestamp — all under the commit gate, so a concurrent
// checkpoint either sees the rows applied or replays their log record,
// never neither.
func (m *Manager) BulkCommitCtx(ctx context.Context, ops []RedoOp, apply func(ts Timestamp) error) (Timestamp, error) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	var ts Timestamp
	if m.dur != nil && len(ops) > 0 {
		span := trace.FromContext(ctx).Child("wal.commit", trace.Int("redo_ops", int64(len(ops))))
		_, err := m.dur.AppendCommit(trace.NewContext(ctx, span), func() Timestamp {
			ts = m.allocLocked(nil)
			return ts
		}, ops)
		span.SetError(err)
		span.End()
		if err != nil {
			return 0, err
		}
	} else {
		ts = m.allocLocked(nil)
	}
	if apply != nil {
		if err := apply(ts); err != nil {
			return ts, err
		}
	}
	return ts, nil
}

// Abort rolls the transaction's provisional writes back.
func (m *Manager) Abort(t *Tx) error {
	if t.status != Active {
		return ErrTxFinished
	}
	for i := len(t.onAbort) - 1; i >= 0; i-- {
		t.onAbort[i]()
	}
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
	t.status = Aborted
	m.cAbort.Inc()
	return nil
}

// Versions stores the begin/end timestamp vectors of one partition's
// rows plus provisional write ownership. All methods are safe for
// concurrent use.
type Versions struct {
	mu     sync.RWMutex
	begin  []Timestamp // 0 while the inserting tx is uncommitted
	end    []Timestamp // Infinity while live
	owner  []TxID      // inserting tx while the insert is provisional
	intent []TxID      // tx holding a provisional delete intent
}

// NewVersions returns an empty version store.
func NewVersions() *Versions { return &Versions{} }

// Len returns the number of rows tracked.
func (v *Versions) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.begin)
}

// AppendAt adds a committed row with explicit begin and end timestamps.
// The online merge uses it to rebuild a partition's version store while
// preserving each row's original commit history, so readers holding
// snapshots older than the merge keep seeing exactly the rows they saw
// before the swap (end == Infinity for live rows).
func (v *Versions) AppendAt(begin, end Timestamp) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.begin = append(v.begin, begin)
	v.end = append(v.end, end)
	v.owner = append(v.owner, 0)
	v.intent = append(v.intent, 0)
	return len(v.begin) - 1
}

// AppendCommitted adds a row that is immediately visible from ts on
// (bulk loads, merge output).
func (v *Versions) AppendCommitted(ts Timestamp) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.begin = append(v.begin, ts)
	v.end = append(v.end, Infinity)
	v.owner = append(v.owner, 0)
	v.intent = append(v.intent, 0)
	return len(v.begin) - 1
}

// AppendPending adds a provisional row owned by tx; it becomes visible
// to others only after CommitInsert.
func (v *Versions) AppendPending(tx TxID) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.begin = append(v.begin, 0)
	v.end = append(v.end, Infinity)
	v.owner = append(v.owner, tx)
	v.intent = append(v.intent, 0)
	return len(v.begin) - 1
}

// CommitInsert publishes a pending row at commit timestamp ts.
func (v *Versions) CommitInsert(row int, ts Timestamp) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.begin[row] = ts
	v.owner[row] = 0
}

// AbortInsert invalidates a pending row (it stays allocated but is
// never visible).
func (v *Versions) AbortInsert(row int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.begin[row] = Infinity
	v.end[row] = 0
	v.owner[row] = 0
}

// MarkDelete acquires the row's write intent for tx. It fails with
// ErrWriteConflict if another transaction holds the intent or the row is
// already deleted.
func (v *Versions) MarkDelete(row int, tx TxID) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if row < 0 || row >= len(v.begin) {
		return fmt.Errorf("mvcc: row %d out of range (%d rows)", row, len(v.begin))
	}
	if v.intent[row] != 0 && v.intent[row] != tx {
		return ErrWriteConflict
	}
	if v.owner[row] != 0 && v.owner[row] != tx {
		// Another transaction's provisional insert cannot be deleted.
		return ErrWriteConflict
	}
	if v.end[row] != Infinity {
		return ErrWriteConflict
	}
	v.intent[row] = tx
	return nil
}

// CommitDelete finalizes a delete intent at commit timestamp ts.
func (v *Versions) CommitDelete(row int, ts Timestamp) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.end[row] = ts
	v.intent[row] = 0
}

// AbortDelete releases a delete intent.
func (v *Versions) AbortDelete(row int, tx TxID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.intent[row] == tx {
		v.intent[row] = 0
	}
}

// RowState is a point-in-time copy of one row's version vector entry.
type RowState struct {
	// Begin is the insert commit timestamp: 0 while the insert is
	// provisional, Infinity after an aborted insert.
	Begin Timestamp
	// End is the delete commit timestamp (Infinity while live).
	End Timestamp
	// Pending reports provisional state: an uncommitted insert or an
	// unresolved delete intent.
	Pending bool
}

// State returns a copy of row's version entry. The merge swap uses it to
// reconcile deletes that committed while the rebuild ran off-lock.
func (v *Versions) State(row int) RowState {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if row < 0 || row >= len(v.begin) {
		return RowState{Begin: Infinity, End: 0}
	}
	return RowState{
		Begin:   v.begin[row],
		End:     v.end[row],
		Pending: (v.begin[row] == 0 && v.owner[row] != 0) || v.intent[row] != 0,
	}
}

// SetEnd stamps row's delete timestamp directly (no intent protocol).
// The merge swap uses it to replay deletes that committed against the
// old partition while the new one was being built.
func (v *Versions) SetEnd(row int, ts Timestamp) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if row >= 0 && row < len(v.begin) {
		v.end[row] = ts
	}
}

// Unsettled reports whether any row is in provisional state: an
// uncommitted insert or an unresolved delete intent. The merge swap
// waits until the partitions it is about to retire are settled, so no
// commit callback can race the version reconciliation.
func (v *Versions) Unsettled() bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for i := range v.begin {
		if (v.begin[i] == 0 && v.owner[i] != 0) || v.intent[i] != 0 {
			return true
		}
	}
	return false
}

// Visible reports whether row is visible to a reader with the given
// snapshot and transaction id (a transaction sees its own provisional
// writes; self may be 0 for non-transactional readers).
func (v *Versions) Visible(row int, snapshot Timestamp, self TxID) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if row < 0 || row >= len(v.begin) {
		return false
	}
	begin, end := v.begin[row], v.end[row]
	owner, intent := v.owner[row], v.intent[row]
	// A pending delete intent by self hides the row from self.
	if self != 0 && intent == self {
		return false
	}
	if begin == 0 { // provisional insert
		return self != 0 && owner == self
	}
	if begin == Infinity { // aborted insert
		return false
	}
	if begin > snapshot {
		return false
	}
	return end > snapshot
}

// LiveAt returns how many rows are visible at the given snapshot for a
// non-transactional reader.
func (v *Versions) LiveAt(snapshot Timestamp) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	n := 0
	for i := range v.begin {
		if v.begin[i] != 0 && v.begin[i] <= snapshot && v.end[i] > snapshot {
			n++
		}
	}
	return n
}

// Bytes returns the DRAM footprint of the version vectors (always
// DRAM-resident, per the paper's transaction-handling design).
func (v *Versions) Bytes() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return int64(len(v.begin)) * (8 + 8 + 8 + 8)
}
