package dict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tierdb/internal/value"
)

func intValues(vs ...int64) []value.Value {
	out := make([]value.Value, len(vs))
	for i, v := range vs {
		out[i] = value.NewInt(v)
	}
	return out
}

func TestBuildEncodesOrderPreserving(t *testing.T) {
	vals := intValues(30, 10, 20, 10, 30, 30)
	d, codes, err := Build(value.Int64, vals)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Fatalf("Size = %d, want 3", d.Size())
	}
	// Order preservation: code(10) < code(20) < code(30).
	want := []uint32{2, 0, 1, 0, 2, 2}
	for i, c := range codes {
		if c != want[i] {
			t.Errorf("codes[%d] = %d, want %d", i, c, want[i])
		}
	}
	for i, v := range vals {
		got, err := d.Decode(codes[i])
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Errorf("Decode(Encode(%v)) = %v", v, got)
		}
	}
}

func TestBuildRejectsMixedTypes(t *testing.T) {
	_, _, err := Build(value.Int64, []value.Value{value.NewInt(1), value.NewString("x")})
	if err == nil {
		t.Error("mixed types accepted")
	}
}

func TestEncodeMissingValue(t *testing.T) {
	d, _, _ := Build(value.Int64, intValues(1, 2, 3))
	if _, ok := d.Encode(value.NewInt(9)); ok {
		t.Error("Encode found missing value")
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	d, _, _ := Build(value.Int64, intValues(1))
	if _, err := d.Decode(5); err == nil {
		t.Error("Decode accepted out-of-range code")
	}
}

func TestBounds(t *testing.T) {
	d, _, _ := Build(value.Int64, intValues(10, 20, 30))
	if lb := d.LowerBound(value.NewInt(15)); lb != 1 {
		t.Errorf("LowerBound(15) = %d, want 1", lb)
	}
	if lb := d.LowerBound(value.NewInt(20)); lb != 1 {
		t.Errorf("LowerBound(20) = %d, want 1", lb)
	}
	if ub := d.UpperBound(value.NewInt(20)); ub != 2 {
		t.Errorf("UpperBound(20) = %d, want 2", ub)
	}
	if lb := d.LowerBound(value.NewInt(99)); lb != 3 {
		t.Errorf("LowerBound(99) = %d, want 3 (Size)", lb)
	}
	if ub := d.UpperBound(value.NewInt(5)); ub != 0 {
		t.Errorf("UpperBound(5) = %d, want 0", ub)
	}
}

func TestStringDictionary(t *testing.T) {
	vals := []value.Value{value.NewString("beta"), value.NewString("alpha"), value.NewString("gamma"), value.NewString("alpha")}
	d, codes, err := Build(value.String, vals)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Fatalf("Size = %d", d.Size())
	}
	if codes[1] != 0 || codes[3] != 0 {
		t.Error("alpha should have the smallest code")
	}
	if d.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
	if d.Type() != value.String {
		t.Error("Type mismatch")
	}
}

func TestBitPackedRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		maxCode := uint32(rng.Intn(1 << 20))
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = uint32(rng.Int63n(int64(maxCode) + 1))
		}
		v := Pack(codes, maxCode)
		if v.Len() != n {
			return false
		}
		for i, c := range codes {
			if v.Get(i) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitPackedWidth(t *testing.T) {
	v := Pack([]uint32{0, 1, 2, 3}, 3)
	if v.Bits() != 2 {
		t.Errorf("Bits = %d, want 2", v.Bits())
	}
	v = Pack([]uint32{0}, 0)
	if v.Bits() != 1 {
		t.Errorf("Bits(max 0) = %d, want 1", v.Bits())
	}
	// 1000 2-bit codes = 2000 bits = 32 words = 256 bytes.
	v = Pack(make([]uint32, 1000), 3)
	if v.Bytes() != 256 {
		t.Errorf("Bytes = %d, want 256", v.Bytes())
	}
}

func TestBitPackedCrossesWordBoundaries(t *testing.T) {
	// 20-bit codes force values to straddle 64-bit word boundaries.
	codes := make([]uint32, 100)
	for i := range codes {
		codes[i] = uint32(i * 10007 % (1 << 20))
	}
	v := Pack(codes, 1<<20-1)
	for i, c := range codes {
		if v.Get(i) != c {
			t.Fatalf("Get(%d) = %d, want %d", i, v.Get(i), c)
		}
	}
}

func TestScanEqualAndRange(t *testing.T) {
	codes := []uint32{5, 1, 5, 3, 5, 2}
	v := Pack(codes, 5)
	got := v.ScanEqual(5, nil, nil)
	want := []uint32{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("ScanEqual = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanEqual = %v, want %v", got, want)
		}
	}
	got = v.ScanRange(2, 4, nil, nil)
	want = []uint32{3, 5}
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("ScanRange = %v, want %v", got, want)
	}
	// Skip function filters positions.
	got = v.ScanEqual(5, nil, func(i int) bool { return i == 2 })
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("ScanEqual with skip = %v", got)
	}
}

func TestDictionaryCodeRangePredicate(t *testing.T) {
	// End-to-end: a range predicate on values maps to a code range.
	vals := intValues(15, 42, 8, 23, 42, 4, 16)
	d, codes, _ := Build(value.Int64, vals)
	packed := Pack(codes, uint32(d.Size()-1))
	lo := d.LowerBound(value.NewInt(10))
	hi := d.UpperBound(value.NewInt(25))
	positions := packed.ScanRange(lo, hi, nil, nil)
	// Values in [10,25]: 15 (pos 0), 23 (pos 3), 16 (pos 6).
	want := map[uint32]bool{0: true, 3: true, 6: true}
	if len(positions) != len(want) {
		t.Fatalf("positions = %v", positions)
	}
	for _, p := range positions {
		if !want[p] {
			t.Fatalf("unexpected position %d", p)
		}
	}
}
