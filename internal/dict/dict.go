// Package dict implements order-preserving dictionary encoding with
// bit-packed code vectors — the storage format of Memory-Resident
// Columns (MRCs) and the de-facto standard for main partitions of HTAP
// databases (paper Section II-A; SAP HANA, HyPer). The dictionary is a
// sorted array of distinct values; codes are positions in that array, so
// code order equals value order and range predicates translate to code
// ranges. Codes are packed with the minimal number of bits.
package dict

import (
	"fmt"
	"math/bits"
	"sort"

	"tierdb/internal/value"
)

// Dictionary is an immutable, order-preserving mapping between values of
// one column and dense integer codes.
type Dictionary struct {
	typ    value.Type
	values []value.Value // sorted ascending, distinct
}

// Build constructs a dictionary over vals and returns it together with
// the code of each input value. All values must share one type.
func Build(typ value.Type, vals []value.Value) (*Dictionary, []uint32, error) {
	for i, v := range vals {
		if v.Type() != typ {
			return nil, nil, fmt.Errorf("dict: value %d has type %s, want %s", i, v.Type(), typ)
		}
	}
	distinct := make([]value.Value, len(vals))
	copy(distinct, vals)
	sort.Slice(distinct, func(a, b int) bool { return distinct[a].Compare(distinct[b]) < 0 })
	// Deduplicate in place.
	out := distinct[:0]
	for i, v := range distinct {
		if i == 0 || !v.Equal(out[len(out)-1]) {
			out = append(out, v)
		}
	}
	d := &Dictionary{typ: typ, values: out}
	codes := make([]uint32, len(vals))
	for i, v := range vals {
		c, ok := d.Encode(v)
		if !ok {
			return nil, nil, fmt.Errorf("dict: value %s missing after build", v)
		}
		codes[i] = c
	}
	return d, codes, nil
}

// Type returns the column type of the dictionary.
func (d *Dictionary) Type() value.Type { return d.typ }

// Size returns the number of distinct values.
func (d *Dictionary) Size() int { return len(d.values) }

// Bytes estimates the DRAM footprint of the dictionary payload.
func (d *Dictionary) Bytes() int64 {
	var b int64
	for _, v := range d.values {
		switch d.typ {
		case value.String:
			b += int64(len(v.Str())) + 16 // string header
		default:
			b += 8
		}
	}
	return b
}

// Encode returns the code of v, or false if v is not in the dictionary.
func (d *Dictionary) Encode(v value.Value) (uint32, bool) {
	i := sort.Search(len(d.values), func(i int) bool { return d.values[i].Compare(v) >= 0 })
	if i < len(d.values) && d.values[i].Equal(v) {
		return uint32(i), true
	}
	return 0, false
}

// Decode returns the value of code c.
func (d *Dictionary) Decode(c uint32) (value.Value, error) {
	if int(c) >= len(d.values) {
		return value.Value{}, fmt.Errorf("dict: code %d out of range (%d values)", c, len(d.values))
	}
	return d.values[c], nil
}

// LowerBound returns the smallest code whose value is >= v; it equals
// Size() if every value is smaller. Because the dictionary is
// order-preserving, [LowerBound(lo), UpperBound(hi)) is the code range
// of the value range [lo, hi].
func (d *Dictionary) LowerBound(v value.Value) uint32 {
	return uint32(sort.Search(len(d.values), func(i int) bool { return d.values[i].Compare(v) >= 0 }))
}

// UpperBound returns the smallest code whose value is > v.
func (d *Dictionary) UpperBound(v value.Value) uint32 {
	return uint32(sort.Search(len(d.values), func(i int) bool { return d.values[i].Compare(v) > 0 }))
}

// BitPacked is an immutable vector of codes stored with the minimal
// fixed bit width (bit-packed value vector of an MRC).
type BitPacked struct {
	bitsPer uint
	n       int
	words   []uint64
}

// Pack stores codes with enough bits for maxCode.
func Pack(codes []uint32, maxCode uint32) *BitPacked {
	width := uint(bits.Len32(maxCode))
	if width == 0 {
		width = 1
	}
	v := &BitPacked{bitsPer: width, n: len(codes)}
	v.words = make([]uint64, (uint(len(codes))*width+63)/64)
	for i, c := range codes {
		v.set(i, c)
	}
	return v
}

func (v *BitPacked) set(i int, c uint32) {
	bitPos := uint(i) * v.bitsPer
	word, off := bitPos/64, bitPos%64
	v.words[word] |= uint64(c) << off
	if off+v.bitsPer > 64 {
		v.words[word+1] |= uint64(c) >> (64 - off)
	}
}

// Get returns the code at position i.
func (v *BitPacked) Get(i int) uint32 {
	bitPos := uint(i) * v.bitsPer
	word, off := bitPos/64, bitPos%64
	raw := v.words[word] >> off
	if off+v.bitsPer > 64 {
		raw |= v.words[word+1] << (64 - off)
	}
	return uint32(raw & (1<<v.bitsPer - 1))
}

// Len returns the number of codes.
func (v *BitPacked) Len() int { return v.n }

// Bits returns the per-code bit width.
func (v *BitPacked) Bits() uint { return v.bitsPer }

// Bytes returns the packed payload size in bytes.
func (v *BitPacked) Bytes() int64 { return int64(len(v.words) * 8) }

// ScanEqual appends to out the positions with code c, skipping positions
// where skip reports true (used for MVCC-invisible rows); skip may be
// nil. It returns out.
func (v *BitPacked) ScanEqual(c uint32, out []uint32, skip func(int) bool) []uint32 {
	return v.ScanEqualIn(c, 0, v.n, out, skip)
}

// ScanEqualIn appends positions in [rowLo, rowHi) with code c to out;
// morsel-driven parallel scans call it with disjoint row ranges.
func (v *BitPacked) ScanEqualIn(c uint32, rowLo, rowHi int, out []uint32, skip func(int) bool) []uint32 {
	rowLo, rowHi = clampRange(rowLo, rowHi, v.n)
	for i := rowLo; i < rowHi; i++ {
		if v.Get(i) == c && (skip == nil || !skip(i)) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// ScanRange appends positions with code in [lo, hi) to out.
func (v *BitPacked) ScanRange(lo, hi uint32, out []uint32, skip func(int) bool) []uint32 {
	return v.ScanRangeIn(lo, hi, 0, v.n, out, skip)
}

// ScanRangeIn appends positions in [rowLo, rowHi) with code in [lo, hi)
// to out.
func (v *BitPacked) ScanRangeIn(lo, hi uint32, rowLo, rowHi int, out []uint32, skip func(int) bool) []uint32 {
	rowLo, rowHi = clampRange(rowLo, rowHi, v.n)
	for i := rowLo; i < rowHi; i++ {
		if c := v.Get(i); c >= lo && c < hi && (skip == nil || !skip(i)) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// clampRange bounds a half-open row range to [0, n).
func clampRange(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
