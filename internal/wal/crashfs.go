package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// RecoverMode selects how much un-synced data "survives" a simulated
// crash. A real disk may persist any prefix of the writes issued after
// the last fsync, so the harness sweeps all three adversarial choices.
type RecoverMode int

const (
	// RecoverDropUnsynced keeps only explicitly synced bytes and
	// dir-synced namespace operations — the most lossy legal outcome.
	RecoverDropUnsynced RecoverMode = iota
	// RecoverKeepUnsynced keeps everything written, synced or not — the
	// least lossy outcome (the OS flushed right before the crash).
	RecoverKeepUnsynced
	// RecoverTornTail keeps the durable namespace but only half of each
	// file's un-synced tail, tearing the stream mid-record.
	RecoverTornTail
)

func (m RecoverMode) String() string {
	switch m {
	case RecoverDropUnsynced:
		return "drop-unsynced"
	case RecoverKeepUnsynced:
		return "keep-unsynced"
	case RecoverTornTail:
		return "torn-tail"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// RecoverModes lists every recovery mode the harness sweeps.
func RecoverModes() []RecoverMode {
	return []RecoverMode{RecoverDropUnsynced, RecoverKeepUnsynced, RecoverTornTail}
}

// inode is one file's content. synced is the explicit durability
// watermark: bytes beyond it were written but never fsynced.
type inode struct {
	data   []byte
	synced int
}

// CrashFS is a deterministic in-memory filesystem with crash
// injection: the crashAt'th mutating operation (write, sync, create,
// rename, remove, truncate, dir-sync) fails with ErrCrashed — a
// crashing write first applies half its buffer, tearing the stream at
// a byte boundary — and every operation after it fails too, modeling a
// process whose view of the disk has died. Recover derives the disk
// state a restarted process would observe.
//
// Namespace semantics follow POSIX: creates, renames and removes are
// volatile until SyncDir; file bytes are volatile until File.Sync.
// With no crash configured (NewMemFS) it is just a fast, deterministic
// in-memory FS.
type CrashFS struct {
	mu      sync.Mutex
	files   map[string]*inode // volatile namespace
	durable map[string]*inode // namespace as of the last SyncDir
	ops     int
	crashAt int // 1-based mutating-op number that fails; 0 disables
	crashed bool
}

// NewMemFS returns an in-memory FS with crash injection disabled.
func NewMemFS() *CrashFS { return NewCrashFS(0) }

// NewCrashFS returns an FS whose crashAt'th mutating operation (and
// everything after it) fails with ErrCrashed; 0 disables injection.
func NewCrashFS(crashAt int) *CrashFS {
	return &CrashFS{
		files:   make(map[string]*inode),
		durable: make(map[string]*inode),
		crashAt: crashAt,
	}
}

// Ops returns how many mutating operations have been attempted. A
// probe run with injection disabled uses it as the sweep bound.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the injected crash point has been reached.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// step accounts one mutating operation; callers hold c.mu. It returns
// ErrCrashed when the operation must fail, flipping the FS into the
// crashed state on the injected op.
func (c *CrashFS) step() error {
	if c.crashed {
		return ErrCrashed
	}
	c.ops++
	if c.crashAt > 0 && c.ops >= c.crashAt {
		c.crashed = true
		return ErrCrashed
	}
	return nil
}

// Recover returns the filesystem a restarted process would see after
// the crash, under the given survival mode. The returned FS is an
// independent deep copy with crash injection disabled; pass a crashAt
// to inject a second crash during recovery itself.
func (c *CrashFS) Recover(mode RecoverMode, crashAt int) *CrashFS {
	c.mu.Lock()
	defer c.mu.Unlock()
	src := c.durable
	if mode == RecoverKeepUnsynced {
		src = c.files
	}
	out := NewCrashFS(crashAt)
	for path, ino := range src {
		keep := ino.synced
		switch mode {
		case RecoverKeepUnsynced:
			keep = len(ino.data)
		case RecoverTornTail:
			keep = ino.synced + (len(ino.data)-ino.synced)/2
		}
		copied := &inode{data: append([]byte(nil), ino.data[:keep]...), synced: keep}
		out.files[path] = copied
		out.durable[path] = copied
	}
	return out
}

func (c *CrashFS) MkdirAll(string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return nil
}

func (c *CrashFS) Create(name string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return nil, err
	}
	ino := &inode{}
	c.files[name] = ino
	return &crashFile{fs: c, ino: ino}, nil
}

func (c *CrashFS) Open(name string) (io.ReadCloser, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	ino, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("crashfs: open %s: %w", name, os.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), ino.data...))), nil
}

func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for path := range c.files {
		if strings.HasPrefix(path, prefix) && !strings.Contains(path[len(prefix):], "/") {
			names = append(names, path[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (c *CrashFS) Rename(oldPath, newPath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	ino, ok := c.files[oldPath]
	if !ok {
		return fmt.Errorf("crashfs: rename %s: %w", oldPath, os.ErrNotExist)
	}
	delete(c.files, oldPath)
	c.files[newPath] = ino
	return nil
}

func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	if _, ok := c.files[name]; !ok {
		return fmt.Errorf("crashfs: remove %s: %w", name, os.ErrNotExist)
	}
	delete(c.files, name)
	return nil
}

func (c *CrashFS) Truncate(name string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	ino, ok := c.files[name]
	if !ok {
		return fmt.Errorf("crashfs: truncate %s: %w", name, os.ErrNotExist)
	}
	if int(size) < len(ino.data) {
		ino.data = ino.data[:size]
	}
	if ino.synced > len(ino.data) {
		ino.synced = len(ino.data)
	}
	return nil
}

func (c *CrashFS) SyncDir(string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.step(); err != nil {
		return err
	}
	durable := make(map[string]*inode, len(c.files))
	for path, ino := range c.files {
		durable[path] = ino
	}
	c.durable = durable
	return nil
}

// crashFile is a writable handle on a CrashFS inode.
type crashFile struct {
	fs  *CrashFS
	ino *inode
}

func (f *crashFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.step(); err != nil {
		if f.fs.ops == f.fs.crashAt {
			// The crashing write tears: half the buffer reaches the disk
			// image before the failure, cutting the stream mid-record.
			f.ino.data = append(f.ino.data, p[:len(p)/2]...)
		}
		return 0, err
	}
	f.ino.data = append(f.ino.data, p...)
	return len(p), nil
}

func (f *crashFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.step(); err != nil {
		return err
	}
	f.ino.synced = len(f.ino.data)
	return nil
}

func (f *crashFile) Close() error { return nil }
