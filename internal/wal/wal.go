package wal

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"tierdb/internal/metrics"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/trace"
)

// SyncPolicy selects when appended records become durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging every commit, with leader-
	// based group commit: concurrent committers share one fsync. Zero
	// committed-row loss at any crash point.
	SyncAlways SyncPolicy = iota
	// SyncGroup acknowledges commits immediately and fsyncs from a
	// background flusher every GroupInterval: a bounded loss window in
	// exchange for write latency, like asynchronous commit modes in
	// production engines.
	SyncGroup
	// SyncOff never fsyncs the log explicitly; crash durability is
	// whatever the OS flushed on its own. Checkpoints still sync.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("policy-%d", int(p))
}

// DefaultGroupInterval is the SyncGroup flush cadence when
// Options.GroupInterval is zero.
const DefaultGroupInterval = 2 * time.Millisecond

const (
	segPrefix = "wal-"
	segSuffix = ".log"
	// SnapSuffix marks checkpoint snapshot files in the WAL directory.
	SnapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func segName(seq int) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// segSeq parses a segment file name, returning -1 for non-segments.
func segSeq(name string) int {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return -1
	}
	var seq int
	if _, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%08d", &seq); err != nil {
		return -1
	}
	return seq
}

// Options configures a Log.
type Options struct {
	// FS is the filesystem to write through; nil selects OSFS.
	FS FS
	// Dir is the log directory (segments + checkpoint snapshots).
	Dir string
	// Policy selects the sync policy; zero value is SyncAlways.
	Policy SyncPolicy
	// GroupInterval is the SyncGroup flush cadence; 0 selects
	// DefaultGroupInterval.
	GroupInterval time.Duration
	// Registry receives the wal.* instruments; nil disables them.
	Registry *metrics.Registry
}

// Log is a segmented, CRC-framed write-ahead log. Appends serialize
// under one mutex — commit timestamps are allocated inside it, so log
// order always equals commit-timestamp order — while fsyncs run under a
// separate mutex so a sync leader batches every record appended before
// it acquires the file (group commit).
type Log struct {
	fs         FS
	dir        string
	policy     SyncPolicy
	groupEvery time.Duration

	mu        sync.Mutex // append/rotate critical section
	f         File
	seg       int
	appendSeq uint64 // records appended, monotonically
	scratch   []byte
	closed    bool

	syncMu    sync.Mutex // fsync critical section; never taken under mu
	syncedSeq uint64

	flushStop chan struct{}
	flushDone chan struct{}

	mAppends *metrics.Counter
	mBytes   *metrics.Counter
	mFsyncs  *metrics.Counter
	mChkpts  *metrics.Counter
}

// Open creates a Log appending to a fresh segment after any existing
// ones. Run Replay first: Open never reads old segments, it only picks
// the next segment number, so un-replayed records would be stranded
// (and eventually deleted by a checkpoint).
func Open(opts Options) (*Log, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.GroupInterval <= 0 {
		opts.GroupInterval = DefaultGroupInterval
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", opts.Dir, err)
	}
	names, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", opts.Dir, err)
	}
	next := 0
	for _, name := range names {
		if seq := segSeq(name); seq >= next {
			next = seq + 1
		}
	}
	l := &Log{
		fs:         opts.FS,
		dir:        opts.Dir,
		policy:     opts.Policy,
		groupEvery: opts.GroupInterval,
		seg:        next,
		mAppends:   opts.Registry.Counter("wal.appends"),
		mBytes:     opts.Registry.Counter("wal.bytes"),
		mFsyncs:    opts.Registry.Counter("wal.fsyncs"),
		mChkpts:    opts.Registry.Counter("wal.checkpoints"),
	}
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	if l.policy == SyncGroup {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// openSegmentLocked creates segment l.seg and makes it durable in the
// directory; callers hold l.mu (or have exclusive access).
func (l *Log) openSegmentLocked() error {
	f, err := l.fs.Create(joinDir(l.dir, segName(l.seg)))
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", l.seg, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.f = f
	return nil
}

// append frames rec onto the current segment and returns the record's
// append sequence number for syncUpTo.
func (l *Log) append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(rec)
}

func (l *Log) appendLocked(rec Record) (uint64, error) {
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	l.scratch = encodePayload(l.scratch[:0], rec)
	frame := appendFrame(nil, l.scratch)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.appendSeq++
	l.mAppends.Inc()
	l.mBytes.Add(int64(len(frame)))
	return l.appendSeq, nil
}

// syncUpTo makes every record up to seq durable. The first committer
// to take syncMu becomes the leader and syncs everything appended so
// far; later committers find syncedSeq already past their record.
func (l *Log) syncUpTo(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncedSeq >= seq {
		return nil
	}
	l.mu.Lock()
	f, cover := l.f, l.appendSeq
	l.mu.Unlock()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.mFsyncs.Inc()
	if cover > l.syncedSeq {
		l.syncedSeq = cover
	}
	return nil
}

// afterAppend applies the sync policy to a freshly appended record.
func (l *Log) afterAppend(seq uint64) error {
	if l.policy == SyncAlways {
		return l.syncUpTo(seq)
	}
	return nil
}

// flushLoop is the SyncGroup background flusher.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	tick := time.NewTicker(l.groupEvery)
	defer tick.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-tick.C:
			l.mu.Lock()
			seq := l.appendSeq
			l.mu.Unlock()
			if seq > 0 {
				l.syncUpTo(seq) // a crashed FS just stops flushing
			}
		}
	}
}

// AppendCommit implements mvcc.Durability: it logs one transaction's
// redo ops as a single atomic commit record. alloc runs inside the
// append critical section, so the commit-timestamp order of the log is
// exactly its record order — replay never needs to sort.
//
// A trace span in ctx gets "wal.append" and (under SyncAlways)
// "wal.fsync" children, splitting a traced commit's latency into
// serialization-under-lock and durability wait. The fsync child covers
// the whole syncUpTo — including time spent waiting on a group-commit
// leader — because that wait IS the request's durability latency.
func (l *Log) AppendCommit(ctx context.Context, alloc func() mvcc.Timestamp, ops []mvcc.RedoOp) (mvcc.Timestamp, error) {
	parent := trace.FromContext(ctx)
	appendSpan := parent.Child("wal.append")
	l.mu.Lock()
	ts := alloc()
	seq, err := l.appendLocked(Record{Kind: kindCommit, Ts: uint64(ts), Ops: ops})
	l.mu.Unlock()
	appendSpan.SetError(err)
	appendSpan.End()
	if err != nil {
		return ts, err
	}
	if l.policy == SyncAlways {
		fsyncSpan := parent.Child("wal.fsync")
		err = l.syncUpTo(seq)
		fsyncSpan.SetError(err)
		fsyncSpan.End()
		return ts, err
	}
	return ts, l.afterAppend(seq)
}

// AppendCreateTable logs a table creation.
func (l *Log) AppendCreateTable(name string, fields []schema.Field) error {
	seq, err := l.append(Record{Kind: kindCreateTable, Table: name, Fields: fields})
	if err != nil {
		return err
	}
	return l.afterAppend(seq)
}

// AppendLayout logs a layout change (per-column DRAM residency).
func (l *Log) AppendLayout(name string, layout []bool) error {
	seq, err := l.append(Record{Kind: kindLayout, Table: name, Layout: layout})
	if err != nil {
		return err
	}
	return l.afterAppend(seq)
}

// AppendIndex logs an index creation over the given key columns.
func (l *Log) AppendIndex(name string, cols []int) error {
	seq, err := l.append(Record{Kind: kindIndex, Table: name, Cols: cols})
	if err != nil {
		return err
	}
	return l.afterAppend(seq)
}

// BeginCheckpoint starts a checkpoint: it seals the current segment
// (sync + close) and opens a fresh one, so every record in sealed
// segments carries a timestamp allocated before this call. The caller
// then quiesces the transaction manager for the checkpoint timestamp —
// which therefore covers every sealed record — writes it via
// AppendCheckpointBegin, snapshots each table with WriteSnapshot and
// finishes with EndCheckpoint.
func (l *Log) BeginCheckpoint() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: seal segment %d: %w", l.seg, err)
	}
	l.mFsyncs.Inc()
	l.f.Close()
	l.seg++
	if err := l.openSegmentLocked(); err != nil {
		return err
	}
	l.syncedSeq = l.appendSeq
	return nil
}

// AppendCheckpointBegin logs that a checkpoint at ts has started; purely
// diagnostic (recovery keys off checkpoint-end), but it makes the log
// self-explaining in tooling.
func (l *Log) AppendCheckpointBegin(ts mvcc.Timestamp) error {
	seq, err := l.append(Record{Kind: kindCheckpointBegin, Ts: uint64(ts)})
	if err != nil {
		return err
	}
	return l.afterAppend(seq)
}

// WriteSnapshot durably writes one checkpoint artifact (temp file,
// fsync, rename, directory fsync) in the log directory. name must end
// in SnapSuffix.
func (l *Log) WriteSnapshot(name string, write func(io.Writer) error) error {
	if !strings.HasSuffix(name, SnapSuffix) {
		return fmt.Errorf("wal: snapshot name %q must end in %s", name, SnapSuffix)
	}
	tmp := joinDir(l.dir, name+tmpSuffix)
	final := joinDir(l.dir, name)
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// EndCheckpoint completes a checkpoint at ts: it durably logs the
// checkpoint-end record (synced regardless of policy — it licenses
// truncation) and then deletes all sealed segments, oldest first, so a
// crash mid-deletion always leaves a contiguous log suffix.
func (l *Log) EndCheckpoint(ts mvcc.Timestamp) error {
	seq, err := l.append(Record{Kind: kindCheckpointEnd, Ts: uint64(ts)})
	if err != nil {
		return err
	}
	if err := l.syncUpTo(seq); err != nil {
		return err
	}
	l.mu.Lock()
	current := l.seg
	l.mu.Unlock()
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: list for truncation: %w", err)
	}
	var old []int
	for _, name := range names {
		if s := segSeq(name); s >= 0 && s < current {
			old = append(old, s)
		}
	}
	sort.Ints(old)
	for _, s := range old {
		if err := l.fs.Remove(joinDir(l.dir, segName(s))); err != nil {
			return fmt.Errorf("wal: truncate segment %d: %w", s, err)
		}
	}
	if len(old) > 0 {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return fmt.Errorf("wal: sync dir: %w", err)
		}
	}
	l.mChkpts.Inc()
	return nil
}

// Sync forces everything appended so far durable, whatever the policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	seq := l.appendSeq
	l.mu.Unlock()
	if seq == 0 {
		return nil
	}
	return l.syncUpTo(seq)
}

// Close stops the flusher, syncs and closes the current segment.
// Appends after Close fail.
func (l *Log) Close() error {
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
		l.flushStop = nil
	}
	var syncErr error
	if l.policy != SyncOff {
		syncErr = l.Sync()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	return syncErr
}
