package wal

import (
	"fmt"
	"io"
	"strings"

	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
)

// ReplayHandler receives decoded records in exact log order. The
// handler decides idempotence (e.g. skipping commits already covered by
// a loaded snapshot); Replay only guarantees order and integrity.
type ReplayHandler interface {
	// CreateTable replays a table creation; called with the logged
	// schema. Must tolerate the table already existing (a checkpoint
	// snapshot may have restored it first).
	CreateTable(name string, fields []schema.Field) error
	// ApplyLayout replays a layout change.
	ApplyLayout(name string, layout []bool) error
	// CreateIndex replays an index creation (len(cols)==1 is a
	// single-column index).
	CreateIndex(name string, cols []int) error
	// Commit replays one committed transaction's redo ops.
	Commit(ts mvcc.Timestamp, ops []mvcc.RedoOp) error
	// Checkpoint observes a checkpoint-end record: every table snapshot
	// at ts was durable when it was written.
	Checkpoint(ts mvcc.Timestamp)
}

// ReplayStats summarizes a recovery pass for metrics and tests.
type ReplayStats struct {
	// Segments is how many log segments were read.
	Segments int
	// Records is how many records were replayed.
	Records int
	// Bytes is the total segment bytes scanned; recovery-time models
	// are driven by it.
	Bytes int64
	// TornBytes is the size of the torn tail truncated from the final
	// segment (0 when the log ended cleanly).
	TornBytes int64
	// MaxTs is the highest timestamp seen in any record; the
	// transaction manager must be advanced past it before reuse.
	MaxTs mvcc.Timestamp
}

// Replay reads every log segment in dir in order, delivers each record
// to h, and repairs the log for reuse: a torn tail in the FINAL segment
// is truncated away (the crash interrupted the last write), and
// leftover snapshot temp files are removed. A torn or corrupt record
// anywhere else cannot be produced by a crash — sealed segments are
// fully synced before a new one is opened — so it fails the replay.
func Replay(fs FS, dir string, h ReplayHandler) (ReplayStats, error) {
	var stats ReplayStats
	if err := fs.MkdirAll(dir); err != nil {
		return stats, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return stats, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []string
	for _, name := range names {
		if segSeq(name) >= 0 {
			segs = append(segs, name)
		}
		if strings.HasSuffix(name, tmpSuffix) {
			if err := fs.Remove(joinDir(dir, name)); err != nil {
				return stats, fmt.Errorf("wal: remove stale temp %s: %w", name, err)
			}
		}
	}
	// ReadDir sorts lexically and segment names are fixed-width
	// zero-padded, so segs is already in sequence order.
	for i, name := range segs {
		path := joinDir(dir, name)
		f, err := fs.Open(path)
		if err != nil {
			return stats, fmt.Errorf("wal: open segment %s: %w", name, err)
		}
		data, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			return stats, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		recs, tornAt, err := decodeSegment(data)
		if err != nil {
			return stats, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		if tornAt < len(data) {
			if i != len(segs)-1 {
				return stats, fmt.Errorf("wal: segment %s: %w: torn record in sealed segment", name, ErrBadRecord)
			}
			stats.TornBytes = int64(len(data) - tornAt)
			if err := fs.Truncate(path, int64(tornAt)); err != nil {
				return stats, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
			}
		}
		stats.Segments++
		stats.Bytes += int64(tornAt)
		for _, rec := range recs {
			if mvcc.Timestamp(rec.Ts) > stats.MaxTs {
				stats.MaxTs = mvcc.Timestamp(rec.Ts)
			}
			if err := deliver(h, rec); err != nil {
				return stats, fmt.Errorf("wal: replay %s: %w", name, err)
			}
			stats.Records++
		}
	}
	return stats, nil
}

func deliver(h ReplayHandler, rec Record) error {
	switch rec.Kind {
	case kindCommit:
		return h.Commit(mvcc.Timestamp(rec.Ts), rec.Ops)
	case kindCreateTable:
		return h.CreateTable(rec.Table, rec.Fields)
	case kindLayout:
		return h.ApplyLayout(rec.Table, rec.Layout)
	case kindIndex:
		return h.CreateIndex(rec.Table, rec.Cols)
	case kindCheckpointEnd:
		h.Checkpoint(mvcc.Timestamp(rec.Ts))
	case kindCheckpointBegin:
		// Diagnostic only; checkpoint-end is what licenses anything.
	}
	return nil
}

// ListSnapshots returns the checkpoint snapshot file names (not paths)
// in dir, sorted, ignoring temp files and log segments.
func ListSnapshots(fs FS, dir string) ([]string, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []string
	for _, name := range names {
		if strings.HasSuffix(name, SnapSuffix) {
			snaps = append(snaps, name)
		}
	}
	return snaps, nil
}
