// WAL record codec. Every record is framed as
//
//	uvarint(payload length) | crc32c(payload), 4 bytes LE | payload
//
// and the payload starts with a one-byte kind. Values are
// self-describing (type byte, then 8 fixed bytes for numerics or a
// uvarint-length string), consistent with persist's uvarint encoding.
// The decoder works on a fully read segment and never trusts a length
// it cannot verify against the remaining input, so corrupt or torn
// input yields an error — never a panic or an unbounded allocation.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/value"
)

// Record kinds. A transaction commits as ONE atomic record carrying all
// of its redo ops: a torn tail can only drop whole transactions, which
// makes prefix consistency structural rather than something recovery
// has to reconstruct from interleaved per-op records.
const (
	kindCommit          = 1 // ts, ops[]
	kindCreateTable     = 2 // name, fields[]
	kindLayout          = 3 // name, per-column DRAM residency
	kindIndex           = 4 // name, key columns (len 1 = single-column)
	kindCheckpointEnd   = 5 // ts: snapshots ≤ ts are durable, log truncated
	kindCheckpointBegin = 6 // ts: a checkpoint at ts started (diagnostic)
)

// ErrBadRecord reports a record that is structurally invalid even
// though its CRC matched — only possible via an encoder bug or a
// deliberately corrupted log, so replay fails loudly instead of
// silently skipping it.
var ErrBadRecord = errors.New("wal: malformed record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is the decoded form of any WAL record; which fields are
// meaningful depends on Kind.
type Record struct {
	Kind   uint8
	Ts     uint64        // kindCommit, kindCheckpoint{Begin,End}
	Ops    []mvcc.RedoOp // kindCommit
	Table  string        // DDL kinds
	Fields []schema.Field
	Layout []bool
	Cols   []int
}

// appendUvarint appends x in unsigned varint encoding.
func appendUvarint(buf []byte, x uint64) []byte {
	return binary.AppendUvarint(buf, x)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v value.Value) []byte {
	buf = append(buf, byte(v.Type()))
	switch v.Type() {
	case value.Int64:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
	case value.Float64:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	default:
		buf = appendString(buf, v.Str())
	}
	return buf
}

// encodePayload appends the record's payload (kind byte included).
func encodePayload(buf []byte, rec Record) []byte {
	buf = append(buf, rec.Kind)
	switch rec.Kind {
	case kindCommit:
		buf = appendUvarint(buf, rec.Ts)
		buf = appendUvarint(buf, uint64(len(rec.Ops)))
		for _, op := range rec.Ops {
			kind := byte(0)
			if op.Delete {
				kind = 1
			}
			buf = append(buf, kind)
			buf = appendString(buf, op.Table)
			buf = appendUvarint(buf, uint64(len(op.Row)))
			for _, v := range op.Row {
				buf = appendValue(buf, v)
			}
		}
	case kindCreateTable:
		buf = appendString(buf, rec.Table)
		buf = appendUvarint(buf, uint64(len(rec.Fields)))
		for _, f := range rec.Fields {
			buf = appendString(buf, f.Name)
			buf = append(buf, byte(f.Type))
			buf = appendUvarint(buf, uint64(f.Width))
		}
	case kindLayout:
		buf = appendString(buf, rec.Table)
		buf = appendUvarint(buf, uint64(len(rec.Layout)))
		for _, inDRAM := range rec.Layout {
			b := byte(0)
			if inDRAM {
				b = 1
			}
			buf = append(buf, b)
		}
	case kindIndex:
		buf = appendString(buf, rec.Table)
		buf = appendUvarint(buf, uint64(len(rec.Cols)))
		for _, c := range rec.Cols {
			buf = appendUvarint(buf, uint64(c))
		}
	case kindCheckpointEnd, kindCheckpointBegin:
		buf = appendUvarint(buf, rec.Ts)
	}
	return buf
}

// appendFrame frames payload into buf: length, CRC, payload.
func appendFrame(buf, payload []byte) []byte {
	buf = appendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// reader is a bounds-checked cursor over a decoded payload.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrBadRecord
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrBadRecord
	}
	r.pos += n
	return x, nil
}

// count reads a uvarint element count and rejects it when even at
// min bytes per element it cannot fit in the remaining payload — the
// bound that keeps corrupt counts from driving huge allocations.
func (r *reader) count(minBytesPerElem int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()/minBytesPerElem) {
		return 0, ErrBadRecord
	}
	return int(n), nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrBadRecord
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", ErrBadRecord
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) value() (value.Value, error) {
	t, err := r.byte()
	if err != nil {
		return value.Value{}, err
	}
	switch value.Type(t) {
	case value.Int64:
		b, err := r.bytes(8)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewInt(int64(binary.LittleEndian.Uint64(b))), nil
	case value.Float64:
		b, err := r.bytes(8)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case value.String:
		s, err := r.string()
		if err != nil {
			return value.Value{}, err
		}
		return value.NewString(s), nil
	}
	return value.Value{}, ErrBadRecord
}

// decodePayload decodes one record payload (as framed: kind byte first).
func decodePayload(payload []byte) (Record, error) {
	r := &reader{buf: payload}
	kind, err := r.byte()
	if err != nil {
		return Record{}, err
	}
	rec := Record{Kind: kind}
	switch kind {
	case kindCommit:
		if rec.Ts, err = r.uvarint(); err != nil {
			return Record{}, err
		}
		nOps, err := r.count(3) // op kind + empty name + empty row
		if err != nil {
			return Record{}, err
		}
		rec.Ops = make([]mvcc.RedoOp, 0, nOps)
		for i := 0; i < nOps; i++ {
			var op mvcc.RedoOp
			k, err := r.byte()
			if err != nil {
				return Record{}, err
			}
			if k > 1 {
				return Record{}, ErrBadRecord
			}
			op.Delete = k == 1
			if op.Table, err = r.string(); err != nil {
				return Record{}, err
			}
			nVals, err := r.count(1)
			if err != nil {
				return Record{}, err
			}
			op.Row = make([]value.Value, 0, nVals)
			for j := 0; j < nVals; j++ {
				v, err := r.value()
				if err != nil {
					return Record{}, err
				}
				op.Row = append(op.Row, v)
			}
			rec.Ops = append(rec.Ops, op)
		}
	case kindCreateTable:
		if rec.Table, err = r.string(); err != nil {
			return Record{}, err
		}
		nFields, err := r.count(3) // empty name + type + width
		if err != nil {
			return Record{}, err
		}
		rec.Fields = make([]schema.Field, 0, nFields)
		for i := 0; i < nFields; i++ {
			var f schema.Field
			if f.Name, err = r.string(); err != nil {
				return Record{}, err
			}
			t, err := r.byte()
			if err != nil {
				return Record{}, err
			}
			if value.Type(t) > value.String {
				return Record{}, ErrBadRecord
			}
			f.Type = value.Type(t)
			w, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			if w > 1<<24 {
				return Record{}, ErrBadRecord
			}
			f.Width = int(w)
			rec.Fields = append(rec.Fields, f)
		}
	case kindLayout:
		if rec.Table, err = r.string(); err != nil {
			return Record{}, err
		}
		n, err := r.count(1)
		if err != nil {
			return Record{}, err
		}
		rec.Layout = make([]bool, 0, n)
		for i := 0; i < n; i++ {
			b, err := r.byte()
			if err != nil {
				return Record{}, err
			}
			if b > 1 {
				return Record{}, ErrBadRecord
			}
			rec.Layout = append(rec.Layout, b == 1)
		}
	case kindIndex:
		if rec.Table, err = r.string(); err != nil {
			return Record{}, err
		}
		n, err := r.count(1)
		if err != nil {
			return Record{}, err
		}
		rec.Cols = make([]int, 0, n)
		for i := 0; i < n; i++ {
			c, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			if c > 1<<20 {
				return Record{}, ErrBadRecord
			}
			rec.Cols = append(rec.Cols, int(c))
		}
	case kindCheckpointEnd, kindCheckpointBegin:
		if rec.Ts, err = r.uvarint(); err != nil {
			return Record{}, err
		}
	default:
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, kind)
	}
	if r.remaining() != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, r.remaining())
	}
	return rec, nil
}

// decodeSegment decodes every complete, CRC-valid record in data.
// A frame that runs past the end of data or fails its CRC is treated
// as the torn tail: decoding stops and the byte offset of the torn
// frame is returned (tornAt == len(data) means the segment is clean).
// A record that is CRC-valid but structurally malformed is real
// corruption, not a tear, and fails the whole decode.
func decodeSegment(data []byte) (recs []Record, tornAt int, err error) {
	pos := 0
	for pos < len(data) {
		plen, n := binary.Uvarint(data[pos:])
		if n <= 0 || plen > uint64(len(data)-pos-n) {
			return recs, pos, nil // torn length prefix
		}
		hdr := pos + n
		if len(data)-hdr < 4 || plen > uint64(len(data)-hdr-4) {
			return recs, pos, nil // torn before/inside CRC or payload
		}
		crc := binary.LittleEndian.Uint32(data[hdr:])
		payload := data[hdr+4 : hdr+4+int(plen)]
		if crc32.Checksum(payload, crcTable) != crc {
			return recs, pos, nil // torn payload
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil, pos, err
		}
		recs = append(recs, rec)
		pos = hdr + 4 + int(plen)
	}
	return recs, pos, nil
}
