package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/value"
)

func testRecords() []Record {
	return []Record{
		{Kind: kindCreateTable, Table: "orders", Fields: []schema.Field{
			{Name: "id", Type: value.Int64},
			{Name: "price", Type: value.Float64},
			{Name: "tag", Type: value.String, Width: 8},
		}},
		{Kind: kindCommit, Ts: 7, Ops: []mvcc.RedoOp{
			{Table: "orders", Row: []value.Value{value.NewInt(1), value.NewFloat(1.5), value.NewString("a")}},
			{Table: "orders", Delete: true, Row: []value.Value{value.NewInt(2), value.NewFloat(-0.25), value.NewString("")}},
		}},
		{Kind: kindLayout, Table: "orders", Layout: []bool{true, false, true}},
		{Kind: kindIndex, Table: "orders", Cols: []int{0}},
		{Kind: kindIndex, Table: "orders", Cols: []int{0, 2}},
		{Kind: kindCheckpointBegin, Ts: 9},
		{Kind: kindCheckpointEnd, Ts: 9},
		{Kind: kindCommit, Ts: 10, Ops: nil},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range testRecords() {
		payload := encodePayload(nil, rec)
		got, err := decodePayload(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", rec, err)
		}
		if !reflect.DeepEqual(normalize(rec), normalize(got)) {
			t.Fatalf("round trip mismatch:\n in %+v\nout %+v", rec, got)
		}
	}
}

// normalize maps empty slices to nil so DeepEqual compares content.
func normalize(r Record) Record {
	if len(r.Ops) == 0 {
		r.Ops = nil
	}
	for i := range r.Ops {
		if len(r.Ops[i].Row) == 0 {
			r.Ops[i].Row = nil
		}
	}
	if len(r.Fields) == 0 {
		r.Fields = nil
	}
	if len(r.Layout) == 0 {
		r.Layout = nil
	}
	if len(r.Cols) == 0 {
		r.Cols = nil
	}
	return r
}

// TestDecodeSegmentEveryPrefix checks the torn-tail contract byte by
// byte: any prefix of a valid segment decodes to a prefix of its
// records with no error, and the reported torn offset is exactly the
// end of the last whole record.
func TestDecodeSegmentEveryPrefix(t *testing.T) {
	var data []byte
	var ends []int // data offset after each record
	for _, rec := range testRecords() {
		data = appendFrame(data, encodePayload(nil, rec))
		ends = append(ends, len(data))
	}
	for cut := 0; cut <= len(data); cut++ {
		recs, tornAt, err := decodeSegment(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		wantRecs := 0
		wantTorn := 0
		for i, end := range ends {
			if end <= cut {
				wantRecs = i + 1
				wantTorn = end
			}
		}
		if len(recs) != wantRecs || tornAt != wantTorn {
			t.Fatalf("cut %d: got %d records torn at %d, want %d at %d",
				cut, len(recs), tornAt, wantRecs, wantTorn)
		}
	}
}

func TestDecodeSegmentRejectsBitFlip(t *testing.T) {
	data := appendFrame(nil, encodePayload(nil, testRecords()[1]))
	data = appendFrame(data, encodePayload(nil, testRecords()[2]))
	// Flip one payload byte of the first record: its CRC fails, so
	// decoding must stop there (treated as a tear at offset 0).
	data[len(data)/4] ^= 0x40
	recs, tornAt, err := decodeSegment(data)
	if err != nil {
		t.Fatalf("bit flip must read as a tear, got %v", err)
	}
	if len(recs) != 0 || tornAt != 0 {
		t.Fatalf("bit flip: got %d records torn at %d, want 0 at 0", len(recs), tornAt)
	}
}

// replayCollector records delivered records for assertions.
type replayCollector struct {
	recs []Record
	err  error
}

func (c *replayCollector) CreateTable(name string, fields []schema.Field) error {
	c.recs = append(c.recs, Record{Kind: kindCreateTable, Table: name, Fields: fields})
	return c.err
}
func (c *replayCollector) ApplyLayout(name string, layout []bool) error {
	c.recs = append(c.recs, Record{Kind: kindLayout, Table: name, Layout: layout})
	return c.err
}
func (c *replayCollector) CreateIndex(name string, cols []int) error {
	c.recs = append(c.recs, Record{Kind: kindIndex, Table: name, Cols: cols})
	return c.err
}
func (c *replayCollector) Commit(ts mvcc.Timestamp, ops []mvcc.RedoOp) error {
	c.recs = append(c.recs, Record{Kind: kindCommit, Ts: uint64(ts), Ops: ops})
	return c.err
}
func (c *replayCollector) Checkpoint(ts mvcc.Timestamp) {
	c.recs = append(c.recs, Record{Kind: kindCheckpointEnd, Ts: uint64(ts)})
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, Dir: "wal", Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var ts mvcc.Timestamp
	alloc := func() mvcc.Timestamp { ts++; return ts }
	if err := l.AppendCreateTable("orders", testRecords()[0].Fields); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(context.Background(), alloc, testRecords()[1].Ops); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendLayout("orders", []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendIndex("orders", []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var c replayCollector
	stats, err := Replay(fs, "wal", &c)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.recs) != 4 || stats.Records != 4 {
		t.Fatalf("replayed %d records (stats %d), want 4", len(c.recs), stats.Records)
	}
	if c.recs[1].Ts != 1 || stats.MaxTs != 1 {
		t.Fatalf("commit ts %d, stats.MaxTs %d, want 1", c.recs[1].Ts, stats.MaxTs)
	}
	if !reflect.DeepEqual(c.recs[1].Ops, testRecords()[1].Ops) {
		t.Fatalf("ops mismatch: %+v", c.recs[1].Ops)
	}
	if stats.Bytes == 0 || stats.TornBytes != 0 {
		t.Fatalf("stats = %+v, want bytes > 0 and no torn tail", stats)
	}
}

func TestSyncAlwaysSurvivesDroppedUnsynced(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, Dir: "wal", Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var ts mvcc.Timestamp
	alloc := func() mvcc.Timestamp { ts++; return ts }
	for i := 0; i < 5; i++ {
		if _, err := l.AppendCommit(context.Background(), alloc, []mvcc.RedoOp{{Table: "t", Row: []value.Value{value.NewInt(int64(i))}}}); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate a crash by recovering only synced state.
	var c replayCollector
	stats, err := Replay(fs.Recover(RecoverDropUnsynced, 0), "wal", &c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 5 {
		t.Fatalf("SyncAlways lost records: replayed %d, want 5", stats.Records)
	}
}

func TestGroupFlusherSyncs(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, Dir: "wal", Policy: SyncGroup, GroupInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var ts mvcc.Timestamp
	alloc := func() mvcc.Timestamp { ts++; return ts }
	if _, err := l.AppendCommit(context.Background(), alloc, []mvcc.RedoOp{{Table: "t", Row: []value.Value{value.NewInt(1)}}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var c replayCollector
		stats, err := Replay(fs.Recover(RecoverDropUnsynced, 0), "wal", &c)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Records == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flusher never made the record durable")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, Dir: "wal", Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var ts mvcc.Timestamp
	alloc := func() mvcc.Timestamp { ts++; return ts }
	for i := 0; i < 3; i++ {
		if _, err := l.AppendCommit(context.Background(), alloc, []mvcc.RedoOp{{Table: "t", Row: []value.Value{value.NewInt(int64(i))}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}
	snapTs := ts
	if err := l.AppendCheckpointBegin(snapTs); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot("t.snap", func(w io.Writer) error {
		_, err := w.Write([]byte("snapshot-bytes"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.EndCheckpoint(snapTs); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint commit lands in the new segment.
	if _, err := l.AppendCommit(context.Background(), alloc, []mvcc.RedoOp{{Table: "t", Row: []value.Value{value.NewInt(99)}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	var segs, snaps int
	for _, n := range names {
		if segSeq(n) >= 0 {
			segs++
		}
		if n == "t.snap" {
			snaps++
		}
	}
	if segs != 1 || snaps != 1 {
		t.Fatalf("after checkpoint: %d segments, %d snapshots (names %v), want 1 and 1", segs, snaps, names)
	}
	var c replayCollector
	stats, err := Replay(fs, "wal", &c)
	if err != nil {
		t.Fatal(err)
	}
	// New segment holds: checkpoint-begin, checkpoint-end, final commit.
	if stats.Records != 3 {
		t.Fatalf("replayed %d records from truncated log, want 3", stats.Records)
	}
	last := c.recs[len(c.recs)-1]
	if last.Kind != kindCommit || last.Ops[0].Row[0].Int() != 99 {
		t.Fatalf("last record = %+v, want the post-checkpoint commit", last)
	}
	snaps = 0
	if names, err := ListSnapshots(fs, "wal"); err != nil || len(names) != 1 || names[0] != "t.snap" {
		t.Fatalf("ListSnapshots = %v, %v", names, err)
	}
}

func TestReplayTruncatesTornTail(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, Dir: "wal", Policy: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	var ts mvcc.Timestamp
	alloc := func() mvcc.Timestamp { ts++; return ts }
	if _, err := l.AppendCommit(context.Background(), alloc, []mvcc.RedoOp{{Table: "t", Row: []value.Value{value.NewInt(1)}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(context.Background(), alloc, []mvcc.RedoOp{{Table: "t", Row: []value.Value{value.NewInt(2)}}}); err != nil {
		t.Fatal(err)
	}
	// Crash with half the unsynced record on disk.
	crashed := fs.Recover(RecoverTornTail, 0)
	var c replayCollector
	stats, err := Replay(crashed, "wal", &c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || stats.TornBytes == 0 {
		t.Fatalf("stats = %+v, want 1 record and a truncated tail", stats)
	}
	// The repair is durable: replaying again sees a clean log.
	var c2 replayCollector
	stats2, err := Replay(crashed, "wal", &c2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Records != 1 || stats2.TornBytes != 0 {
		t.Fatalf("second replay stats = %+v, want clean log with 1 record", stats2)
	}
}

func TestCrashFSInjection(t *testing.T) {
	// Probe run counts ops; then crashing at each op must fail that op
	// and every later one.
	workload := func(fs FS) error {
		f, err := fs.Create("wal/a")
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("hello")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := fs.Rename("wal/a", "wal/b"); err != nil {
			return err
		}
		return fs.SyncDir("wal")
	}
	probe := NewMemFS()
	if err := workload(probe); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total != 5 { // create, write, sync, rename, syncdir
		t.Fatalf("probe counted %d ops, want 5", total)
	}
	for at := 1; at <= total; at++ {
		fs := NewCrashFS(at)
		err := workload(fs)
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash at %d: err = %v, want ErrCrashed", at, err)
		}
		if !fs.Crashed() {
			t.Fatalf("crash at %d: FS not marked crashed", at)
		}
		if _, err := fs.Open("wal/a"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash at %d: post-crash read err = %v, want ErrCrashed", at, err)
		}
	}
	// Crash at the write (op 2): torn write leaves half the buffer.
	fs := NewCrashFS(2)
	workload(fs)
	rec := fs.Recover(RecoverKeepUnsynced, 0)
	r, err := rec.Open("wal/a")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	if string(data) != "he" {
		t.Fatalf("torn write kept %q, want %q", data, "he")
	}
	// Crash after sync but before SyncDir: under drop-unsynced the file
	// content is durable but the namespace rename is not.
	fs = NewCrashFS(5)
	workload(fs)
	rec = fs.Recover(RecoverDropUnsynced, 0)
	if _, err := rec.Open("wal/b"); err == nil {
		t.Fatalf("rename must not be durable without SyncDir")
	}
}

func FuzzWALRecord(f *testing.F) {
	var seed []byte
	for _, rec := range testRecords() {
		seed = appendFrame(seed, encodePayload(nil, rec))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and never allocate unboundedly; errors and
		// tears are fine.
		recs, tornAt, err := decodeSegment(data)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("decode error %v is not ErrBadRecord", err)
			}
			return
		}
		if tornAt > len(data) {
			t.Fatalf("tornAt %d beyond input %d", tornAt, len(data))
		}
		// Whatever decoded must re-encode and decode identically.
		var out []byte
		for _, rec := range recs {
			out = appendFrame(out, encodePayload(nil, rec))
		}
		recs2, tornAt2, err := decodeSegment(out)
		if err != nil || tornAt2 != len(out) || len(recs2) != len(recs) {
			t.Fatalf("re-encode mismatch: %d/%d records, torn %d/%d, err %v",
				len(recs2), len(recs), tornAt2, len(out), err)
		}
		for i := range recs {
			if !reflect.DeepEqual(normalize(recs[i]), normalize(recs2[i])) {
				t.Fatalf("record %d mismatch:\n in %+v\nout %+v", i, recs[i], recs2[i])
			}
		}
	})
}

func TestSegmentNaming(t *testing.T) {
	for _, seq := range []int{0, 7, 99999999} {
		if got := segSeq(segName(seq)); got != seq {
			t.Fatalf("segSeq(segName(%d)) = %d", seq, got)
		}
	}
	for _, name := range []string{"t.snap", "wal-x.log", "wal-00000001.snap", fmt.Sprintf("x%s", segName(1))} {
		if segSeq(name) >= 0 {
			t.Fatalf("segSeq(%q) must be -1", name)
		}
	}
}
