// The WAL never touches the disk directly: every byte goes through the
// FS interface below. Production uses OSFS (thin os wrappers including
// the directory fsyncs real durability needs); the crash harness swaps
// in CrashFS, a deterministic in-memory filesystem that can kill the
// process's view of the disk at the Nth mutating operation and control
// exactly how much un-synced data "survives" the crash.
package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ErrCrashed is returned by a crash-injection filesystem for every
// operation after the injected crash point. The engine surfaces it to
// the caller like any other IO error.
var ErrCrashed = errors.New("wal: simulated disk crash")

// File is a writable log or snapshot file. Sync must not return until
// previously written bytes are durable.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the WAL and checkpointer need. All
// paths are full paths (the Log joins its directory itself). Rename,
// Remove and Create are durable only after SyncDir on the parent
// directory, matching POSIX semantics.
type FS interface {
	MkdirAll(dir string) error
	// Create opens a new file for writing, truncating any existing one.
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	Rename(oldPath, newPath string) error
	Remove(name string) error
	// Truncate shortens a file to size bytes and makes the new length
	// durable (used by recovery to drop a torn tail).
	Truncate(name string, size int64) error
	// SyncDir makes preceding namespace operations (create, rename,
	// remove) under dir durable.
	SyncDir(dir string) error
}

// OSFS is the production FS backed by the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error {
	if err := os.Truncate(name, size); err != nil {
		return err
	}
	f, err := os.OpenFile(name, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is how POSIX makes renames durable; some
	// filesystems reject it, which is not fatal for correctness there.
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// joinDir is a tiny helper shared by Log and Replay.
func joinDir(dir, name string) string { return filepath.Join(dir, name) }
