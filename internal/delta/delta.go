// Package delta implements the write-optimized, DRAM-resident delta
// partition (paper Section II, cf. C-Store's writable store): data
// modifications append here using an insert-only approach, each column
// keeps an unsorted dictionary with an additional B+-tree for fast value
// retrievals, and the partition is periodically merged into the
// read-optimized main partition. The delta stays fully DRAM-resident,
// which is why tiering does not affect modification throughput.
package delta

import (
	"errors"
	"fmt"
	"sync"

	"tierdb/internal/bptree"
	"tierdb/internal/metrics"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/value"
)

// ErrFrozen is returned when inserting into a frozen partition. The
// online merge freezes the delta it is about to fold into the main
// partition; new writes belong in the fresh active delta the table
// opened in the same critical section.
var ErrFrozen = errors.New("delta: partition is frozen")

// deltaColumn is one attribute of the delta: an unsorted dictionary
// (insertion order) plus the per-row code vector and a B+-tree value
// index.
type deltaColumn struct {
	codeOf map[value.Value]uint32
	values []value.Value
	codes  []uint32
	tree   *bptree.Tree
}

// Partition is a write-optimized delta partition. All methods are safe
// for concurrent use.
type Partition struct {
	mu       sync.RWMutex
	schema   *schema.Schema
	cols     []deltaColumn
	versions *mvcc.Versions
	frozen   bool

	// Observability handles (nil → no-op). Visibility checks are counted
	// batched per scan call, never per row, to keep the hot path cheap.
	cInserts   *metrics.Counter
	cVisChecks *metrics.Counter
}

// New returns an empty delta partition for the given schema.
func New(s *schema.Schema) *Partition {
	p := &Partition{
		schema:   s,
		cols:     make([]deltaColumn, s.Len()),
		versions: mvcc.NewVersions(),
	}
	for i := range p.cols {
		p.cols[i].codeOf = make(map[value.Value]uint32)
		p.cols[i].tree = bptree.New(s.Field(i).Type)
	}
	return p
}

// Schema returns the partition's schema.
func (p *Partition) Schema() *schema.Schema { return p.schema }

// Observe registers the partition's instruments (delta.inserts,
// delta.visibility_checks) with a metrics registry. A merged-away delta
// is replaced by a fresh Partition, so the owner must call Observe
// again after every merge.
func (p *Partition) Observe(r *metrics.Registry) {
	p.cInserts = r.Counter("delta.inserts")
	p.cVisChecks = r.Counter("delta.visibility_checks")
}

// Versions exposes the MVCC version store for the delta's rows.
func (p *Partition) Versions() *mvcc.Versions { return p.versions }

// Freeze marks the partition immutable for inserts: Insert, Append and
// AdoptRow fail with ErrFrozen from now on. Deletes (pure version-store
// updates) and in-flight commit callbacks still resolve, so readers and
// writers that raced the freeze finish normally; the physical row set is
// fixed, which is what lets the merge rebuild off the partition without
// holding any table lock.
func (p *Partition) Freeze() {
	p.mu.Lock()
	p.frozen = true
	p.mu.Unlock()
}

// Frozen reports whether the partition has been frozen.
func (p *Partition) Frozen() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.frozen
}

// AdoptRow appends a row carrying explicit begin/end version timestamps
// (end == mvcc.Infinity for a live row). The merge swap uses it to
// re-base frozen-delta rows that committed after the rebuild snapshot
// into the new active delta, preserving their commit history so every
// open snapshot keeps its exact visibility.
func (p *Partition) AdoptRow(row []value.Value, begin, end mvcc.Timestamp) (int, error) {
	if err := p.schema.CheckRow(row); err != nil {
		return 0, fmt.Errorf("delta: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen {
		return 0, ErrFrozen
	}
	pos := p.appendRow(row)
	if local := p.versions.AppendAt(begin, end); local != pos {
		return 0, fmt.Errorf("delta: version store out of sync: row %d vs %d", local, pos)
	}
	return pos, nil
}

// Rows returns the number of physically stored rows (including
// uncommitted and deleted ones).
func (p *Partition) Rows() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.cols) == 0 {
		return 0
	}
	return len(p.cols[0].codes)
}

// appendRow stores the row values and returns the new local position.
// Caller holds p.mu.
func (p *Partition) appendRow(row []value.Value) int {
	pos := len(p.cols[0].codes)
	for i, v := range row {
		c := &p.cols[i]
		code, ok := c.codeOf[v]
		if !ok {
			code = uint32(len(c.values))
			c.codeOf[v] = code
			c.values = append(c.values, v)
		}
		c.codes = append(c.codes, code)
		c.tree.Insert(v, uint32(pos))
	}
	return pos
}

// Insert appends a provisional row owned by tx; the row becomes visible
// to other transactions when tx commits. The returned position is local
// to the delta.
func (p *Partition) Insert(tx *mvcc.Tx, row []value.Value) (int, error) {
	if err := p.schema.CheckRow(row); err != nil {
		return 0, fmt.Errorf("delta: %w", err)
	}
	p.mu.Lock()
	if p.frozen {
		p.mu.Unlock()
		return 0, ErrFrozen
	}
	p.cInserts.Inc()
	pos := p.appendRow(row)
	local := p.versions.AppendPending(tx.ID())
	if local != pos {
		p.mu.Unlock()
		return 0, fmt.Errorf("delta: version store out of sync: row %d vs %d", local, pos)
	}
	p.mu.Unlock()
	tx.OnCommit(func(ts mvcc.Timestamp) { p.versions.CommitInsert(pos, ts) })
	tx.OnAbort(func() { p.versions.AbortInsert(pos) })
	return pos, nil
}

// Append adds a row that is immediately visible from ts on (bulk load
// path, no transaction).
func (p *Partition) Append(row []value.Value, ts mvcc.Timestamp) (int, error) {
	if err := p.schema.CheckRow(row); err != nil {
		return 0, fmt.Errorf("delta: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen {
		return 0, ErrFrozen
	}
	p.cInserts.Inc()
	pos := p.appendRow(row)
	p.versions.AppendCommitted(ts)
	return pos, nil
}

// Delete acquires a delete intent on a delta row for tx.
func (p *Partition) Delete(tx *mvcc.Tx, pos int) error {
	if err := p.versions.MarkDelete(pos, tx.ID()); err != nil {
		return err
	}
	tx.OnCommit(func(ts mvcc.Timestamp) { p.versions.CommitDelete(pos, ts) })
	tx.OnAbort(func() { p.versions.AbortDelete(pos, tx.ID()) })
	return nil
}

// Get returns the value at (pos, col) regardless of visibility; callers
// filter with Versions().Visible.
func (p *Partition) Get(pos, col int) (value.Value, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if col < 0 || col >= len(p.cols) {
		return value.Value{}, fmt.Errorf("delta: column %d out of range (%d)", col, len(p.cols))
	}
	c := &p.cols[col]
	if pos < 0 || pos >= len(c.codes) {
		return value.Value{}, fmt.Errorf("delta: row %d out of range (%d)", pos, len(c.codes))
	}
	return c.values[c.codes[pos]], nil
}

// GetRow materializes a full delta row.
func (p *Partition) GetRow(pos int) ([]value.Value, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.cols) == 0 || pos < 0 || pos >= len(p.cols[0].codes) {
		return nil, fmt.Errorf("delta: row %d out of range", pos)
	}
	out := make([]value.Value, len(p.cols))
	for i := range p.cols {
		c := &p.cols[i]
		out[i] = c.values[c.codes[pos]]
	}
	return out, nil
}

// ScanEqual appends positions (local to the delta) whose column equals v
// and which are visible at (snapshot, self). It uses the B+-tree index,
// the delta's fast value-retrieval path.
func (p *Partition) ScanEqual(col int, v value.Value, snapshot mvcc.Timestamp, self mvcc.TxID, out []uint32) ([]uint32, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if col < 0 || col >= len(p.cols) {
		return nil, fmt.Errorf("delta: column %d out of range (%d)", col, len(p.cols))
	}
	hits := p.cols[col].tree.Lookup(v)
	p.cVisChecks.Add(int64(len(hits)))
	for _, pos := range hits {
		if p.versions.Visible(int(pos), snapshot, self) {
			out = append(out, pos)
		}
	}
	return out, nil
}

// ScanRange appends visible positions with lo <= value <= hi.
func (p *Partition) ScanRange(col int, lo, hi value.Value, snapshot mvcc.Timestamp, self mvcc.TxID, out []uint32) ([]uint32, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if col < 0 || col >= len(p.cols) {
		return nil, fmt.Errorf("delta: column %d out of range (%d)", col, len(p.cols))
	}
	var checked int64
	p.cols[col].tree.Range(lo, hi, func(_ value.Value, positions []uint32) bool {
		checked += int64(len(positions))
		for _, pos := range positions {
			if p.versions.Visible(int(pos), snapshot, self) {
				out = append(out, pos)
			}
		}
		return true
	})
	p.cVisChecks.Add(checked)
	return out, nil
}

// VisibleRows returns the positions of all rows visible at (snapshot,
// self), in insertion order. Used by the merge process and full scans.
func (p *Partition) VisibleRows(snapshot mvcc.Timestamp, self mvcc.TxID) []int {
	p.mu.RLock()
	n := 0
	if len(p.cols) > 0 {
		n = len(p.cols[0].codes)
	}
	p.mu.RUnlock()
	p.cVisChecks.Add(int64(n))
	out := make([]int, 0, n)
	for pos := 0; pos < n; pos++ {
		if p.versions.Visible(pos, snapshot, self) {
			out = append(out, pos)
		}
	}
	return out
}

// Bytes estimates the DRAM footprint of the delta (dictionaries, code
// vectors, trees are ignored, MVCC vectors included).
func (p *Partition) Bytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var b int64
	for i := range p.cols {
		c := &p.cols[i]
		b += int64(len(c.codes)) * 4
		for _, v := range c.values {
			if v.Type() == value.String {
				b += int64(len(v.Str())) + 16
			} else {
				b += 8
			}
		}
	}
	return b + p.versions.Bytes()
}

// DistinctCount returns the number of distinct values inserted into the
// column so far (selectivity estimation for delta-resident data).
func (p *Partition) DistinctCount(col int) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if col < 0 || col >= len(p.cols) {
		return 0
	}
	return len(p.cols[col].values)
}
