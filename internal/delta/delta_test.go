package delta

import (
	"sync"
	"testing"

	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/value"
)

func testSchema() *schema.Schema {
	return schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "name", Type: value.String, Width: 16},
	})
}

func row(id int64, name string) []value.Value {
	return []value.Value{value.NewInt(id), value.NewString(name)}
}

func TestInsertCommitVisibility(t *testing.T) {
	m := mvcc.NewManager()
	p := New(testSchema())

	tx := m.Begin()
	pos, err := p.Insert(tx, row(1, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	// Visible to self, invisible to others.
	got, err := p.ScanEqual(0, value.NewInt(1), tx.Snapshot(), tx.ID(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != uint32(pos) {
		t.Errorf("self scan = %v", got)
	}
	other := m.Begin()
	got, _ = p.ScanEqual(0, value.NewInt(1), other.Snapshot(), other.ID(), nil)
	if len(got) != 0 {
		t.Errorf("other tx sees uncommitted row: %v", got)
	}
	if _, err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	late := m.Begin()
	got, _ = p.ScanEqual(0, value.NewInt(1), late.Snapshot(), late.ID(), nil)
	if len(got) != 1 {
		t.Errorf("committed row invisible: %v", got)
	}
}

func TestAbortHidesRow(t *testing.T) {
	m := mvcc.NewManager()
	p := New(testSchema())
	tx := m.Begin()
	if _, err := p.Insert(tx, row(7, "gone")); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}
	late := m.Begin()
	got, _ := p.ScanEqual(0, value.NewInt(7), late.Snapshot(), late.ID(), nil)
	if len(got) != 0 {
		t.Errorf("aborted row visible: %v", got)
	}
	if p.Rows() != 1 {
		t.Errorf("physical rows = %d, want 1 (insert-only)", p.Rows())
	}
}

func TestDelete(t *testing.T) {
	m := mvcc.NewManager()
	p := New(testSchema())
	pos, err := p.Append(row(5, "victim"), m.LastCommit())
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := p.Delete(tx, pos); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	late := m.Begin()
	got, _ := p.ScanEqual(0, value.NewInt(5), late.Snapshot(), late.ID(), nil)
	if len(got) != 0 {
		t.Errorf("deleted row visible: %v", got)
	}
	if n := len(p.VisibleRows(late.Snapshot(), late.ID())); n != 0 {
		t.Errorf("VisibleRows = %d, want 0", n)
	}
}

func TestScanRange(t *testing.T) {
	m := mvcc.NewManager()
	p := New(testSchema())
	for i := int64(0); i < 20; i++ {
		if _, err := p.Append(row(i, "x"), m.LastCommit()); err != nil {
			t.Fatal(err)
		}
	}
	late := m.Begin()
	got, err := p.ScanRange(0, value.NewInt(5), value.NewInt(9), late.Snapshot(), late.ID(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("ScanRange hit %d rows, want 5", len(got))
	}
}

func TestUnsortedDictionarySharesCodes(t *testing.T) {
	m := mvcc.NewManager()
	p := New(testSchema())
	p.Append(row(1, "dup"), m.LastCommit())
	p.Append(row(2, "dup"), m.LastCommit())
	p.Append(row(3, "other"), m.LastCommit())
	if got := p.DistinctCount(1); got != 2 {
		t.Errorf("DistinctCount(name) = %d, want 2", got)
	}
	if got := p.DistinctCount(0); got != 3 {
		t.Errorf("DistinctCount(id) = %d, want 3", got)
	}
	v, err := p.Get(1, 1)
	if err != nil || v.Str() != "dup" {
		t.Errorf("Get = %v, %v", v, err)
	}
	full, err := p.GetRow(2)
	if err != nil || full[0].Int() != 3 || full[1].Str() != "other" {
		t.Errorf("GetRow = %v, %v", full, err)
	}
}

func TestGetErrors(t *testing.T) {
	p := New(testSchema())
	if _, err := p.Get(0, 0); err == nil {
		t.Error("Get on empty delta accepted")
	}
	if _, err := p.Get(0, 9); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := p.GetRow(5); err == nil {
		t.Error("GetRow out of range accepted")
	}
	if _, err := p.ScanEqual(9, value.NewInt(0), 1, 0, nil); err == nil {
		t.Error("ScanEqual bad column accepted")
	}
	if _, err := p.ScanRange(9, value.NewInt(0), value.NewInt(1), 1, 0, nil); err == nil {
		t.Error("ScanRange bad column accepted")
	}
}

func TestInsertRejectsBadRows(t *testing.T) {
	m := mvcc.NewManager()
	p := New(testSchema())
	tx := m.Begin()
	if _, err := p.Insert(tx, []value.Value{value.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := p.Append([]value.Value{value.NewInt(1)}, 1); err == nil {
		t.Error("short append accepted")
	}
}

func TestBytesGrowsWithData(t *testing.T) {
	m := mvcc.NewManager()
	p := New(testSchema())
	empty := p.Bytes()
	for i := int64(0); i < 100; i++ {
		p.Append(row(i, "payload"), m.LastCommit())
	}
	if p.Bytes() <= empty {
		t.Error("Bytes did not grow")
	}
}

func TestConcurrentInserts(t *testing.T) {
	m := mvcc.NewManager()
	p := New(testSchema())
	var wg sync.WaitGroup
	const workers = 8
	const each = 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tx := m.Begin()
				if _, err := p.Insert(tx, row(int64(w*each+i), "w")); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	late := m.Begin()
	if n := len(p.VisibleRows(late.Snapshot(), late.ID())); n != workers*each {
		t.Errorf("visible rows = %d, want %d", n, workers*each)
	}
	if p.Schema().Len() != 2 {
		t.Error("Schema accessor broken")
	}
	if p.Versions().Len() != workers*each {
		t.Error("Versions accessor broken")
	}
	if p.DistinctCount(9) != 0 {
		t.Error("DistinctCount out of range should be 0")
	}
}
