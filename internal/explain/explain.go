// Package explain builds structured EXPLAIN/ANALYZE plans: a per-query
// view joining what the executor chose (filter order, access paths),
// what the cost model predicted (per-column modeled scan cost from the
// same decomposition the placement solver optimizes), and — in ANALYZE
// mode — what actually happened (per-operator wall time, rows, page
// reads, observed selectivity). A plan also carries a placement
// attribution section: per touched column, the tier it lives on, the
// modeled cost it contributed, and what the advisor's recommended
// placement would have cost instead (the regret of the current layout).
//
// The package is a leaf: it depends only on the cost model (core) and
// the trace schema (metrics), so every layer of the stack — exec, root
// API, wire protocol, tierctl, obsrv — can share its types.
package explain

import (
	"fmt"
	"strings"

	"tierdb/internal/core"
	"tierdb/internal/metrics"
)

// Mode distinguishes plan-only EXPLAIN from executed ANALYZE.
type Mode string

const (
	// ModeExplain plans the query without executing it: nodes are the
	// predicted operators, observed fields stay zero.
	ModeExplain Mode = "explain"
	// ModeAnalyze executes the query and annotates each node with
	// observed wall time, rows, page reads and selectivity.
	ModeAnalyze Mode = "analyze"
)

// PredicateSpec is the wire/HTTP form of one predicate: column by name,
// operator "eq" or "between", and untyped value strings the owning
// table resolves against its schema. It is deliberately stringly typed
// so the same struct serves tierctl flags, /explain query parameters
// and the OpExplain opcode.
type PredicateSpec struct {
	// Column is the column name.
	Column string `json:"column"`
	// Op is "eq" or "between".
	Op string `json:"op"`
	// Value is the equality operand, or the range's low bound.
	Value string `json:"value"`
	// Hi is the range's high bound ("between" only).
	Hi string `json:"hi,omitempty"`
}

// ParseQuerySpec parses the compact query syntax shared by
// `tierctl explain -q` and `/explain?q=`: comma-separated terms, each
// either `col=value` (equality) or `col=lo..hi` (between).
func ParseQuerySpec(s string) ([]PredicateSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var specs []PredicateSpec
	for _, term := range strings.Split(s, ",") {
		col, val, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok || col == "" || val == "" {
			return nil, fmt.Errorf("explain: bad predicate %q, want col=value or col=lo..hi", term)
		}
		if lo, hi, isRange := strings.Cut(val, ".."); isRange {
			if lo == "" || hi == "" {
				return nil, fmt.Errorf("explain: bad range %q, want col=lo..hi", term)
			}
			specs = append(specs, PredicateSpec{Column: col, Op: "between", Value: lo, Hi: hi})
		} else {
			specs = append(specs, PredicateSpec{Column: col, Op: "eq", Value: val})
		}
	}
	return specs, nil
}

// ColumnInput describes one schema column of the queried table as the
// placement model sees it: size, model selectivity (with its source),
// current tier and the advisor's recommended tier.
type ColumnInput struct {
	// Name is the column name.
	Name string
	// SizeBytes is the column's size as the cost model prices it.
	SizeBytes int64
	// Selectivity is the model selectivity the advisor's solve used.
	Selectivity float64
	// SelectivitySource is "estimated" (1/distinct) or "observed"
	// (EWMA of executed selectivities).
	SelectivitySource string
	// ObservedSamples is the observed-EWMA sample count.
	ObservedSamples int64
	// InDRAM is the live placement.
	InDRAM bool
	// Recommended is the advisor's recommended placement.
	Recommended bool
}

// PredicateDisplay carries a human-readable rendering of one resolved
// predicate ("region = 7", "amount between 100 and 200"), keyed by
// schema column index.
type PredicateDisplay struct {
	Column int
	Text   string
}

// Input is everything Build needs to assemble a Plan. The caller (the
// root package) gathers it from the table, the executor's trace and
// the advisor's solve so that modeled numbers come from exactly the
// machinery the placement decisions use.
type Input struct {
	Table          string
	Mode           Mode
	Device         string
	Parallelism    int
	ProbeThreshold float64
	// Costs are the cost-model parameters the advisor solves with.
	Costs core.CostParams
	// Columns is the full schema, in schema order.
	Columns []ColumnInput
	// QueryColumns are the schema indices of the predicate columns.
	QueryColumns []int
	// ProjectColumns are the schema indices materialized for output.
	ProjectColumns []int
	// Predicates render the resolved predicate per column.
	Predicates []PredicateDisplay
	// Trace is the executor's record: Predicates always; Operators only
	// in ANALYZE mode.
	Trace *metrics.Trace
	// WallNs is the query's total wall time (ANALYZE only).
	WallNs int64
	// TraceID links the plan to the distributed-trace span tree when
	// the query was sampled.
	TraceID string
}

// Node is one operator of the plan. Modeled fields come from the cost
// model; Observed* fields are filled only in ANALYZE mode.
type Node struct {
	// Operator is "scan", "probe", "index", "visible", "delta-scan",
	// "delta-probe" or "materialize".
	Operator string `json:"operator"`
	// Partition is "main" or "delta".
	Partition string `json:"partition,omitempty"`
	// Path is the access path: "mrc", "sscg", "index" or "".
	Path string `json:"path,omitempty"`
	// Column is the predicate's schema column index (-1 when the
	// operator has no predicate column).
	Column int `json:"column"`
	// ColumnName is the predicate column's name.
	ColumnName string `json:"column_name,omitempty"`
	// Predicate renders the filter, e.g. "region = 7".
	Predicate string `json:"predicate,omitempty"`
	// Tier is where the operator read from: "dram" or "secondary".
	Tier string `json:"tier,omitempty"`
	// ModeledCost is this operator's term of the model's scan cost
	// F(x), in seconds. Only main-partition predicate operators carry a
	// term; the terms sum exactly to the placement section's
	// current_modeled_cost.
	ModeledCost float64 `json:"modeled_cost,omitempty"`
	// ModeledFraction is the data-volume share the model predicts the
	// operator touches (product of earlier selectivities).
	ModeledFraction float64 `json:"modeled_fraction,omitempty"`
	// EstimatedSelectivity is the optimizer's per-predicate estimate.
	EstimatedSelectivity float64 `json:"estimated_selectivity,omitempty"`

	// ObservedSelectivity is rows_out/rows_in (ANALYZE).
	ObservedSelectivity float64 `json:"observed_selectivity,omitempty"`
	// MisestimateRatio is observed/estimated selectivity (ANALYZE).
	MisestimateRatio float64 `json:"misestimate_ratio,omitempty"`
	// RowsIn and RowsOut are the operator's candidate counts (ANALYZE).
	RowsIn  int `json:"rows_in,omitempty"`
	RowsOut int `json:"rows_out,omitempty"`
	// ObservedNs is the operator's wall time (ANALYZE).
	ObservedNs int64 `json:"observed_ns,omitempty"`
	// StartNs and EndNs bound the operator's interval; they equal the
	// corresponding exec.* span in the trace tree (ANALYZE).
	StartNs int64 `json:"start_ns,omitempty"`
	EndNs   int64 `json:"end_ns,omitempty"`
	// PageReads counts timed secondary-storage page reads (ANALYZE).
	PageReads int64 `json:"page_reads,omitempty"`
	// Morsels is the parallel fan-out (ANALYZE, parallel path).
	Morsels int `json:"morsels,omitempty"`
	// SwitchedToProbe marks the paper's scan-to-probe switchover.
	SwitchedToProbe bool `json:"switched_to_probe,omitempty"`
	// CandidateFraction is the fraction the switchover decision saw.
	CandidateFraction float64 `json:"candidate_fraction,omitempty"`
}

// ColumnAttribution is one row of the placement section: what the
// column costs this query under the live placement versus under the
// advisor's recommendation.
type ColumnAttribution struct {
	Column            int     `json:"column"`
	Name              string  `json:"name"`
	SizeBytes         int64   `json:"size_bytes"`
	Selectivity       float64 `json:"selectivity"`
	SelectivitySource string  `json:"selectivity_source"`
	ObservedSamples   int64   `json:"observed_samples,omitempty"`
	// TierNow and TierRecommended are "dram" or "secondary".
	TierNow         string `json:"tier_now"`
	TierRecommended string `json:"tier_recommended"`
	// ScanFraction is the data-volume share the model charges the
	// column (product of earlier selectivities in model scan order).
	ScanFraction float64 `json:"scan_fraction"`
	// ModeledCost is the column's term under the live placement;
	// RecommendedCost under the advisor's recommendation. Regret is
	// their difference — what the current layout costs this query
	// beyond the recommended one (negative when the incumbent happens
	// to be cheaper for this particular query).
	ModeledCost     float64 `json:"modeled_cost"`
	RecommendedCost float64 `json:"recommended_cost"`
	Regret          float64 `json:"regret"`
}

// Attribution is the plan-level placement section.
type Attribution struct {
	// CurrentCost is the query's modeled scan cost under the live
	// placement — exactly core.ScanCost of the single-query workload.
	CurrentCost float64 `json:"current_modeled_cost"`
	// RecommendedCost is the same query under the advisor's
	// recommended placement.
	RecommendedCost float64 `json:"recommended_modeled_cost"`
	// Regret is CurrentCost - RecommendedCost.
	Regret float64 `json:"regret"`
	// Columns attributes the totals per touched column.
	Columns []ColumnAttribution `json:"columns"`
}

// Plan is the structured EXPLAIN/ANALYZE result.
type Plan struct {
	Table          string  `json:"table"`
	Mode           Mode    `json:"mode"`
	Device         string  `json:"device,omitempty"`
	Parallelism    int     `json:"parallelism"`
	ProbeThreshold float64 `json:"probe_threshold"`
	// TraceID links to /trace/{id} when the query was sampled.
	TraceID string `json:"trace_id,omitempty"`
	// WallNs, RowsQualified, PageReads, DRAMNs and DeviceNs summarize
	// the execution (ANALYZE only).
	WallNs        int64       `json:"wall_ns,omitempty"`
	RowsQualified int         `json:"rows_qualified,omitempty"`
	PageReads     int64       `json:"page_reads,omitempty"`
	DRAMNs        int64       `json:"dram_ns,omitempty"`
	DeviceNs      int64       `json:"device_ns,omitempty"`
	Nodes         []Node      `json:"nodes"`
	Placement     Attribution `json:"placement"`
}

// tierName renders a placement bit.
func tierName(inDRAM bool) string {
	if inDRAM {
		return "dram"
	}
	return "secondary"
}

// Build assembles a Plan from the executor's trace and the advisor's
// placement inputs. Modeled costs come from core.QueryCostShares over a
// single-query workload, so the per-column terms sum exactly to
// core.ScanCost of that workload under the live placement — the same
// model, same decomposition, the solver optimizes.
func Build(in Input) (*Plan, error) {
	if in.Trace == nil {
		return nil, fmt.Errorf("explain: input carries no trace")
	}
	nCols := len(in.Columns)
	for _, c := range in.QueryColumns {
		if c < 0 || c >= nCols {
			return nil, fmt.Errorf("explain: query column %d out of range (schema has %d)", c, nCols)
		}
	}

	// Single-query workload: this query with frequency 1, priced over
	// the full schema so column indices line up.
	w := &core.Workload{Columns: make([]core.Column, nCols)}
	current := make([]bool, nCols)
	recommended := make([]bool, nCols)
	for i, c := range in.Columns {
		size := c.SizeBytes
		if size < 1 {
			size = 1
		}
		w.Columns[i] = core.Column{Name: c.Name, Size: size, Selectivity: c.Selectivity}
		current[i] = c.InDRAM
		recommended[i] = c.Recommended
	}

	p := &Plan{
		Table:          in.Table,
		Mode:           in.Mode,
		Device:         in.Device,
		Parallelism:    in.Parallelism,
		ProbeThreshold: in.ProbeThreshold,
		TraceID:        in.TraceID,
	}

	curShare := map[int]core.CostShare{}
	recShare := map[int]core.CostShare{}
	if len(in.QueryColumns) > 0 {
		q := core.Query{Columns: in.QueryColumns, Frequency: 1}
		for _, s := range core.QueryCostShares(w, in.Costs, current, q) {
			curShare[s.Column] = s
			p.Placement.CurrentCost += s.Cost
		}
		for _, s := range core.QueryCostShares(w, in.Costs, recommended, q) {
			recShare[s.Column] = s
			p.Placement.RecommendedCost += s.Cost
		}
	}
	p.Placement.Regret = p.Placement.CurrentCost - p.Placement.RecommendedCost
	p.Placement.Columns = make([]ColumnAttribution, 0, len(in.QueryColumns))
	// Attribute in model scan order, the order the shares were charged.
	for _, s := range orderedShares(w, in.Costs, current, in.QueryColumns) {
		c := in.Columns[s.Column]
		p.Placement.Columns = append(p.Placement.Columns, ColumnAttribution{
			Column:            s.Column,
			Name:              c.Name,
			SizeBytes:         w.Columns[s.Column].Size,
			Selectivity:       c.Selectivity,
			SelectivitySource: c.SelectivitySource,
			ObservedSamples:   c.ObservedSamples,
			TierNow:           tierName(c.InDRAM),
			TierRecommended:   tierName(c.Recommended),
			ScanFraction:      s.Fraction,
			ModeledCost:       s.Cost,
			RecommendedCost:   recShare[s.Column].Cost,
			Regret:            s.Cost - recShare[s.Column].Cost,
		})
	}

	predText := map[int]string{}
	for _, d := range in.Predicates {
		predText[d.Column] = d.Text
	}
	estSel := map[int]float64{}
	for _, pt := range in.Trace.Predicates {
		estSel[pt.Column] = pt.EstimatedSelectivity
	}
	name := func(col int) string {
		if col >= 0 && col < nCols {
			return in.Columns[col].Name
		}
		return ""
	}
	// chargeable tracks which columns still carry an unclaimed modeled
	// term: the first main-partition operator touching a column claims
	// it, so a scan followed by later probes on the same column does
	// not double-charge.
	chargeable := map[int]bool{}
	for c := range curShare {
		chargeable[c] = true
	}

	if len(in.Trace.Operators) > 0 {
		// ANALYZE: nodes mirror the executed operators one-to-one.
		for _, op := range in.Trace.Operators {
			n := Node{
				Operator:          op.Name,
				Partition:         op.Partition,
				Path:              op.Path,
				Column:            op.Column,
				ColumnName:        name(op.Column),
				Predicate:         predText[op.Column],
				RowsIn:            op.RowsIn,
				RowsOut:           op.RowsOut,
				ObservedNs:        op.EndNs - op.StartNs,
				StartNs:           op.StartNs,
				EndNs:             op.EndNs,
				PageReads:         op.PageReads,
				Morsels:           op.Morsels,
				SwitchedToProbe:   op.SwitchedToProbe,
				CandidateFraction: op.CandidateFraction,
			}
			if op.Column >= 0 {
				n.Tier = operatorTier(op.Path, current, op.Column)
				n.EstimatedSelectivity = estSel[op.Column]
				if op.RowsIn > 0 {
					n.ObservedSelectivity = float64(op.RowsOut) / float64(op.RowsIn)
					if n.EstimatedSelectivity > 0 {
						n.MisestimateRatio = n.ObservedSelectivity / n.EstimatedSelectivity
					}
				}
				if op.Partition == "main" && chargeable[op.Column] {
					chargeable[op.Column] = false
					n.ModeledCost = curShare[op.Column].Cost
					n.ModeledFraction = curShare[op.Column].Fraction
				}
			}
			p.Nodes = append(p.Nodes, n)
		}
		p.WallNs = in.WallNs
		p.RowsQualified = in.Trace.RowsQualified
		p.PageReads = in.Trace.PageReads
		p.DRAMNs = in.Trace.DRAMNs
		p.DeviceNs = in.Trace.DeviceNs
	} else {
		// EXPLAIN: predict the operators from the chosen filter order.
		frac := 1.0
		for i, pt := range in.Trace.Predicates {
			n := Node{
				Partition:            "main",
				Path:                 pt.Path,
				Column:               pt.Column,
				ColumnName:           name(pt.Column),
				Predicate:            predText[pt.Column],
				EstimatedSelectivity: pt.EstimatedSelectivity,
			}
			switch {
			case i == 0 && pt.Path == "index":
				n.Operator = "index"
			case i == 0:
				n.Operator = "scan"
			case pt.Path == "mrc" || pt.Path == "index":
				n.Operator = "probe"
			case frac <= in.ProbeThreshold:
				// The executor's switchover would take the probe path.
				n.Operator = "probe"
				n.SwitchedToProbe = true
				n.CandidateFraction = frac
			default:
				n.Operator = "scan"
			}
			if pt.Column >= 0 {
				n.Tier = operatorTier(pt.Path, current, pt.Column)
				if chargeable[pt.Column] {
					chargeable[pt.Column] = false
					n.ModeledCost = curShare[pt.Column].Cost
					n.ModeledFraction = curShare[pt.Column].Fraction
				}
			}
			p.Nodes = append(p.Nodes, n)
			frac *= pt.EstimatedSelectivity
		}
		if len(in.ProjectColumns) > 0 {
			p.Nodes = append(p.Nodes, Node{Operator: "materialize", Partition: "main", Column: -1})
		}
	}
	return p, nil
}

// orderedShares returns the current-placement shares for the query's
// columns in model scan order (empty when the query has no predicates).
func orderedShares(w *core.Workload, costs core.CostParams, x []bool, cols []int) []core.CostShare {
	if len(cols) == 0 {
		return nil
	}
	return core.QueryCostShares(w, costs, x, core.Query{Columns: cols, Frequency: 1})
}

// operatorTier maps an operator's access path to the tier it read:
// index and mrc structures are DRAM-resident, sscg pages live on the
// timed secondary device (the AMM may cache them, but the model prices
// them as device reads).
func operatorTier(path string, current []bool, col int) string {
	switch path {
	case "index", "mrc":
		return "dram"
	case "sscg":
		return "secondary"
	default:
		if col >= 0 && col < len(current) {
			return tierName(current[col])
		}
		return ""
	}
}
