package explain

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"tierdb/internal/core"
	"tierdb/internal/metrics"
)

func testInput() Input {
	return Input{
		Table:          "orders",
		Mode:           ModeAnalyze,
		Device:         "CSSD",
		Parallelism:    1,
		ProbeThreshold: 1e-4,
		Costs:          core.DefaultCostParams(),
		Columns: []ColumnInput{
			{Name: "id", SizeBytes: 8000, Selectivity: 1.0 / 1000, SelectivitySource: "estimated", InDRAM: true, Recommended: true},
			{Name: "region", SizeBytes: 8000, Selectivity: 0.04, SelectivitySource: "estimated", InDRAM: false, Recommended: true},
			{Name: "amount", SizeBytes: 8000, Selectivity: 0.5, SelectivitySource: "observed", ObservedSamples: 9, InDRAM: true, Recommended: false},
		},
		QueryColumns:   []int{1, 2},
		ProjectColumns: []int{0},
		Predicates: []PredicateDisplay{
			{Column: 1, Text: "region = 7"},
			{Column: 2, Text: "amount between 100 and 200"},
		},
		Trace: &metrics.Trace{
			Table:          "orders",
			Parallelism:    1,
			ProbeThreshold: 1e-4,
			Predicates: []metrics.PredicateTrace{
				{Column: 1, Op: "eq", Path: "sscg", EstimatedSelectivity: 0.04},
				{Column: 2, Op: "between", Path: "mrc", EstimatedSelectivity: 0.5},
			},
			Operators: []metrics.OperatorTrace{
				{Name: "scan", Partition: "main", Path: "sscg", Column: 1, RowsIn: 1000, RowsOut: 40, StartNs: 100, EndNs: 300, PageReads: 4},
				{Name: "probe", Partition: "main", Path: "mrc", Column: 2, RowsIn: 40, RowsOut: 20, StartNs: 300, EndNs: 350},
				{Name: "visible", Partition: "main", Column: -1, RowsIn: 20, RowsOut: 20, StartNs: 350, EndNs: 360},
				{Name: "materialize", Partition: "main", Column: -1, RowsIn: 20, RowsOut: 20, StartNs: 360, EndNs: 400},
			},
			RowsQualified: 20,
			Device:        "CSSD",
			DRAMNs:        150,
			DeviceNs:      800,
			PageReads:     4,
		},
		WallNs:  1000,
		TraceID: "00000000deadbeef",
	}
}

// The plan's placement section must reproduce the solver's own cost for
// the live placement exactly: same model, same decomposition.
func TestBuildMatchesSolverCost(t *testing.T) {
	in := testInput()
	p, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	w := &core.Workload{
		Columns: []core.Column{
			{Name: "id", Size: 8000, Selectivity: 1.0 / 1000},
			{Name: "region", Size: 8000, Selectivity: 0.04},
			{Name: "amount", Size: 8000, Selectivity: 0.5},
		},
		Queries: []core.Query{{Columns: []int{1, 2}, Frequency: 1}},
	}
	want := core.ScanCost(w, in.Costs, []bool{true, false, true})
	if p.Placement.CurrentCost != want {
		t.Errorf("CurrentCost = %g, solver says %g", p.Placement.CurrentCost, want)
	}
	wantRec := core.ScanCost(w, in.Costs, []bool{true, true, false})
	if p.Placement.RecommendedCost != wantRec {
		t.Errorf("RecommendedCost = %g, solver says %g", p.Placement.RecommendedCost, wantRec)
	}
	if p.Placement.Regret != want-wantRec {
		t.Errorf("Regret = %g, want %g", p.Placement.Regret, want-wantRec)
	}

	// Node modeled costs sum to the placement total: each predicate
	// column's term is claimed by exactly one main-partition operator.
	var nodeSum float64
	for _, n := range p.Nodes {
		nodeSum += n.ModeledCost
	}
	if nodeSum != p.Placement.CurrentCost {
		t.Errorf("node modeled costs sum to %g, placement total %g", nodeSum, p.Placement.CurrentCost)
	}
	// Per-column attributions also sum to the totals.
	var colCur, colRec float64
	for _, c := range p.Placement.Columns {
		colCur += c.ModeledCost
		colRec += c.RecommendedCost
	}
	if colCur != p.Placement.CurrentCost || colRec != p.Placement.RecommendedCost {
		t.Errorf("column attributions sum to %g/%g, totals %g/%g",
			colCur, colRec, p.Placement.CurrentCost, p.Placement.RecommendedCost)
	}
}

func TestBuildAnalyzeNodes(t *testing.T) {
	p, err := Build(testInput())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 4 {
		t.Fatalf("got %d nodes, want 4: %+v", len(p.Nodes), p.Nodes)
	}
	scan := p.Nodes[0]
	if scan.Operator != "scan" || scan.Tier != "secondary" || scan.PageReads != 4 {
		t.Errorf("scan node = %+v, want sscg scan from secondary with 4 page reads", scan)
	}
	if scan.ObservedSelectivity != 0.04 || scan.MisestimateRatio != 1 {
		t.Errorf("scan observed sel %g ratio %g, want 0.04 and 1", scan.ObservedSelectivity, scan.MisestimateRatio)
	}
	if scan.ObservedNs != 200 || scan.StartNs != 100 || scan.EndNs != 300 {
		t.Errorf("scan interval = [%d,%d] (%dns), want [100,300]", scan.StartNs, scan.EndNs, scan.ObservedNs)
	}
	if scan.Predicate != "region = 7" {
		t.Errorf("scan predicate = %q", scan.Predicate)
	}
	probe := p.Nodes[1]
	if probe.Operator != "probe" || probe.Tier != "dram" || probe.ObservedSelectivity != 0.5 {
		t.Errorf("probe node = %+v", probe)
	}
	if p.Nodes[2].Tier != "" || p.Nodes[2].ModeledCost != 0 {
		t.Errorf("visible node should carry no tier or model term: %+v", p.Nodes[2])
	}
	if p.RowsQualified != 20 || p.PageReads != 4 || p.WallNs != 1000 || p.TraceID != "00000000deadbeef" {
		t.Errorf("plan summary = %+v", p)
	}
}

// Plan-only mode predicts operators from the filter order without
// executing anything.
func TestBuildExplainPredictsOperators(t *testing.T) {
	in := testInput()
	in.Mode = ModeExplain
	in.Trace.Operators = nil
	in.WallNs = 0
	p, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	// Two predicates plus the projection's materialize.
	if len(p.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3: %+v", len(p.Nodes), p.Nodes)
	}
	if p.Nodes[0].Operator != "scan" || p.Nodes[0].Path != "sscg" {
		t.Errorf("first predicted node = %+v, want sscg scan", p.Nodes[0])
	}
	if p.Nodes[1].Operator != "probe" || p.Nodes[1].Path != "mrc" {
		t.Errorf("second predicted node = %+v, want mrc probe", p.Nodes[1])
	}
	if p.Nodes[2].Operator != "materialize" {
		t.Errorf("last predicted node = %+v, want materialize", p.Nodes[2])
	}
	if p.Nodes[0].RowsIn != 0 || p.Nodes[0].ObservedNs != 0 {
		t.Errorf("plan-only node carries observed fields: %+v", p.Nodes[0])
	}
	// The modeled placement section is identical to ANALYZE mode.
	if p.Placement.CurrentCost == 0 || len(p.Placement.Columns) != 2 {
		t.Errorf("plan-only placement section missing: %+v", p.Placement)
	}
}

func TestPlanJSONRoundtrip(t *testing.T) {
	p, err := Build(testInput())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*p, back) {
		t.Errorf("JSON roundtrip changed the plan:\n  before %+v\n  after  %+v", *p, back)
	}
}

func TestParseQuerySpec(t *testing.T) {
	specs, err := ParseQuerySpec("region=7, amount=100..200")
	if err != nil {
		t.Fatal(err)
	}
	want := []PredicateSpec{
		{Column: "region", Op: "eq", Value: "7"},
		{Column: "amount", Op: "between", Value: "100", Hi: "200"},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Errorf("ParseQuerySpec = %+v, want %+v", specs, want)
	}
	if got, err := ParseQuerySpec(""); err != nil || got != nil {
		t.Errorf("empty spec = %+v, %v", got, err)
	}
	for _, bad := range []string{"region", "region=", "=7", "amount=1..", "amount=..2"} {
		if _, err := ParseQuerySpec(bad); err == nil {
			t.Errorf("ParseQuerySpec(%q) accepted", bad)
		}
	}
}

func TestRenderText(t *testing.T) {
	p, err := Build(testInput())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderText(p)
	for _, want := range []string{
		"EXPLAIN ANALYZE · table orders",
		"main/scan[sscg] region = 7",
		"tier secondary",
		"placement attribution",
		"trace 00000000deadbeef",
		"regret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered plan missing %q:\n%s", want, out)
		}
	}
	// Plan-only rendering omits the observed summary line.
	in := testInput()
	in.Mode = ModeExplain
	in.Trace.Operators = nil
	po, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	out = RenderText(po)
	if strings.Contains(out, "obs sel") || strings.Contains(out, "wall ") {
		t.Errorf("plan-only rendering leaked observed fields:\n%s", out)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	in := testInput()
	in.Trace = nil
	if _, err := Build(in); err == nil {
		t.Error("Build accepted nil trace")
	}
	in = testInput()
	in.QueryColumns = []int{99}
	if _, err := Build(in); err == nil {
		t.Error("Build accepted out-of-range query column")
	}
}
