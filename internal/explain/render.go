package explain

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// RenderText renders the plan as the human-readable tree `tierctl
// explain` prints. The output is deterministic for a given plan, which
// the golden test relies on.
func RenderText(p *Plan) string {
	var b strings.Builder
	mode := "EXPLAIN"
	if p.Mode == ModeAnalyze {
		mode = "EXPLAIN ANALYZE"
	}
	fmt.Fprintf(&b, "%s · table %s", mode, p.Table)
	if p.Device != "" {
		fmt.Fprintf(&b, " · device %s", p.Device)
	}
	fmt.Fprintf(&b, " · parallelism %d · probe threshold %g\n", p.Parallelism, p.ProbeThreshold)
	if p.Mode == ModeAnalyze {
		fmt.Fprintf(&b, "wall %s · rows %d · page reads %d · modeled dram %s / device %s",
			fmtNs(p.WallNs), p.RowsQualified, p.PageReads, fmtNs(p.DRAMNs), fmtNs(p.DeviceNs))
		if p.TraceID != "" {
			fmt.Fprintf(&b, " · trace %s", p.TraceID)
		}
		b.WriteByte('\n')
	}
	b.WriteString("plan\n")
	for i, n := range p.Nodes {
		conn := "├─"
		if i == len(p.Nodes)-1 {
			conn = "└─"
		}
		fmt.Fprintf(&b, "%s %s", conn, nodeLabel(n))
		if n.Tier != "" {
			fmt.Fprintf(&b, " · tier %s", n.Tier)
		}
		if n.ModeledCost != 0 || n.ModeledFraction != 0 {
			fmt.Fprintf(&b, " · modeled %.4gs (fraction %.4g)", n.ModeledCost, n.ModeledFraction)
		}
		if n.EstimatedSelectivity != 0 {
			fmt.Fprintf(&b, " · est sel %.4g", n.EstimatedSelectivity)
		}
		if p.Mode == ModeAnalyze && n.Column >= 0 && n.RowsIn > 0 {
			fmt.Fprintf(&b, " · obs sel %.4g", n.ObservedSelectivity)
			if n.MisestimateRatio != 0 {
				fmt.Fprintf(&b, " (×%.2f)", n.MisestimateRatio)
			}
		}
		if p.Mode == ModeAnalyze {
			fmt.Fprintf(&b, " · rows %d→%d · %s", n.RowsIn, n.RowsOut, fmtNs(n.ObservedNs))
			if n.PageReads > 0 {
				fmt.Fprintf(&b, " · %d page reads", n.PageReads)
			}
			if n.Morsels > 0 {
				fmt.Fprintf(&b, " · %d morsels", n.Morsels)
			}
		}
		if n.SwitchedToProbe {
			fmt.Fprintf(&b, " · switched to probe (fraction %.4g)", n.CandidateFraction)
		}
		b.WriteByte('\n')
	}
	b.WriteString("placement attribution (modeled, this query)\n")
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  column\tsize\tsel\tsource\ttier\trecommended\tmodeled\twould cost\tregret")
	for _, c := range p.Placement.Columns {
		fmt.Fprintf(tw, "  %s\t%d\t%.4g\t%s\t%s\t%s\t%.4gs\t%.4gs\t%.4gs\n",
			c.Name, c.SizeBytes, c.Selectivity, c.SelectivitySource,
			c.TierNow, c.TierRecommended, c.ModeledCost, c.RecommendedCost, c.Regret)
	}
	tw.Flush()
	fmt.Fprintf(&b, "total · current %.6gs · recommended %.6gs · regret %.6gs\n",
		p.Placement.CurrentCost, p.Placement.RecommendedCost, p.Placement.Regret)
	return b.String()
}

// nodeLabel renders the operator head: "main/scan[mrc] region = 7".
func nodeLabel(n Node) string {
	var b strings.Builder
	if n.Partition != "" {
		b.WriteString(n.Partition)
		b.WriteByte('/')
	}
	b.WriteString(n.Operator)
	if n.Path != "" {
		fmt.Fprintf(&b, "[%s]", n.Path)
	}
	switch {
	case n.Predicate != "":
		b.WriteByte(' ')
		b.WriteString(n.Predicate)
	case n.ColumnName != "":
		b.WriteByte(' ')
		b.WriteString(n.ColumnName)
	}
	return b.String()
}

// fmtNs renders nanoseconds as a duration ("12.3µs").
func fmtNs(ns int64) string {
	return time.Duration(ns).String()
}
