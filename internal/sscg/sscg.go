// Package sscg implements Secondary-Storage Column Groups: the
// row-oriented, uncompressed representation of evicted attributes
// (paper Section II-A). All attributes of a group are stored adjacent in
// fixed-width slots, so a full-width tuple reconstruction touches a
// single 4 KB page (or the minimal number of consecutive pages for rows
// wider than a page), trading space for point-access locality. Scans of
// an SSCG-placed attribute must read every page of the group, which is
// exactly the slowdown the column selection model avoids by keeping
// sequentially accessed columns in DRAM.
package sscg

import (
	"fmt"
	"sync"

	"tierdb/internal/amm"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

// Group is an immutable row-oriented column group on secondary storage.
type Group struct {
	fields      []schema.Field
	offsets     []int
	rowWidth    int
	rows        int
	rowsPerPage int // > 0 when rows pack into single pages
	pagesPerRow int // > 1 when one row spans multiple pages
	pages       []storage.PageID
	store       storage.Store
	cache       *amm.Cache

	bufs sync.Pool
}

// Build encodes rows (each a slice of values matching fields) into
// pages of store. If cache is non-nil, reads go through it.
func Build(fields []schema.Field, rows [][]value.Value, store storage.Store, cache *amm.Cache) (*Group, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("sscg: no fields")
	}
	g := &Group{
		fields: append([]schema.Field(nil), fields...),
		store:  store,
		cache:  cache,
		rows:   len(rows),
	}
	g.offsets = make([]int, len(fields))
	for i, f := range fields {
		g.offsets[i] = g.rowWidth
		g.rowWidth += f.SlotWidth()
	}
	if g.rowWidth <= storage.PageSize {
		g.rowsPerPage = storage.PageSize / g.rowWidth
		g.pagesPerRow = 1
	} else {
		g.rowsPerPage = 0
		g.pagesPerRow = (g.rowWidth + storage.PageSize - 1) / storage.PageSize
	}
	g.bufs.New = func() any {
		b := make([]byte, storage.PageSize)
		return &b
	}

	if err := g.writeRows(rows); err != nil {
		// Return already-written pages to the freelist so an aborted
		// build (e.g. a storage fault mid-merge) leaks nothing; the
		// fault-injection tests assert the page count returns to its
		// pre-merge level. Best effort: the original error wins.
		if len(g.pages) > 0 {
			_, _ = storage.FreePages(store, g.pages)
		}
		return nil, err
	}
	return g, nil
}

// writeRows encodes and persists all rows.
func (g *Group) writeRows(rows [][]value.Value) error {
	rowBuf := make([]byte, g.rowWidth)
	page := make([]byte, storage.PageSize)
	inPage := 0
	flush := func() error {
		id, err := g.store.Allocate()
		if err != nil {
			return fmt.Errorf("sscg: allocate page: %w", err)
		}
		// Track the page before writing it: a failed write must still
		// reach the abort path's FreePages or the page leaks.
		g.pages = append(g.pages, id)
		if err := g.store.WritePage(id, page); err != nil {
			return fmt.Errorf("sscg: write page: %w", err)
		}
		for i := range page {
			page[i] = 0
		}
		inPage = 0
		return nil
	}
	for r, row := range rows {
		if len(row) != len(g.fields) {
			return fmt.Errorf("sscg: row %d has %d values, want %d", r, len(row), len(g.fields))
		}
		for f, v := range row {
			if v.Type() != g.fields[f].Type {
				return fmt.Errorf("sscg: row %d field %q: type %s, want %s", r, g.fields[f].Name, v.Type(), g.fields[f].Type)
			}
			slot := rowBuf[g.offsets[f] : g.offsets[f]+g.fields[f].SlotWidth()]
			if err := value.EncodeFixed(v, slot); err != nil {
				return fmt.Errorf("sscg: row %d field %q: %w", r, g.fields[f].Name, err)
			}
		}
		if g.pagesPerRow == 1 {
			copy(page[inPage*g.rowWidth:], rowBuf)
			inPage++
			if inPage == g.rowsPerPage {
				if err := flush(); err != nil {
					return err
				}
			}
		} else {
			// Spanning rows occupy pagesPerRow consecutive pages each.
			for off := 0; off < g.rowWidth; off += storage.PageSize {
				n := copy(page, rowBuf[off:])
				for i := n; i < len(page); i++ {
					page[i] = 0
				}
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if g.pagesPerRow == 1 && inPage > 0 {
		if err := flush(); err != nil {
			return err
		}
	}
	return nil
}

// Fields returns the group's fields.
func (g *Group) Fields() []schema.Field {
	return append([]schema.Field(nil), g.fields...)
}

// FieldIndex returns the position of the named field within the group,
// or -1.
func (g *Group) FieldIndex(name string) int {
	for i, f := range g.fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Rows returns the number of rows.
func (g *Group) Rows() int { return g.rows }

// RowWidth returns the fixed row width in bytes.
func (g *Group) RowWidth() int { return g.rowWidth }

// PageCount returns the number of 4 KB pages the group occupies.
func (g *Group) PageCount() int { return len(g.pages) }

// Bytes returns the secondary-storage footprint.
func (g *Group) Bytes() int64 { return int64(len(g.pages)) * storage.PageSize }

// PagesPerReconstruction returns how many page accesses one full-width
// tuple reconstruction needs (the paper's headline: 1 for tables up to
// a page wide).
func (g *Group) PagesPerReconstruction() int { return g.pagesPerRow }

// RowsPerPage returns how many rows share one 4 KB page (0 when a row
// spans multiple pages). Parallel scans align their morsel boundaries
// to it so no page is read by two workers.
func (g *Group) RowsPerPage() int { return g.rowsPerPage }

// WithBacking returns a read-only view of the group whose page reads go
// through store instead of the group's own. The layout, page ids and
// cache stay shared; the page buffer pool is private to the view, so
// parallel workers holding one view each never contend on buffers.
// Parallel scan workers pass per-worker timed forks of the same device
// so device time lands on per-worker clocks.
func (g *Group) WithBacking(store storage.Store) *Group {
	ng := &Group{
		fields:      g.fields,
		offsets:     g.offsets,
		rowWidth:    g.rowWidth,
		rows:        g.rows,
		rowsPerPage: g.rowsPerPage,
		pagesPerRow: g.pagesPerRow,
		pages:       g.pages,
		store:       store,
		cache:       g.cache,
	}
	ng.bufs.New = func() any {
		b := make([]byte, storage.PageSize)
		return &b
	}
	return ng
}

// Free invalidates the group's pages in the cache and returns them to
// the store's freelist (a no-op for stores without storage.PageFreer).
// Call it only on the canonical group — never on WithBacking views —
// and only once no reader can touch the group again: the online merge
// frees a retired main partition's group when the last pinned table
// view referencing it is released, and a failed rebuild frees the
// partially built group it abandons.
func (g *Group) Free() error {
	if len(g.pages) == 0 {
		return nil
	}
	if g.cache != nil {
		g.cache.Invalidate(g.pages)
	}
	_, err := storage.FreePages(g.store, g.pages)
	return err
}

// readPage fetches a page via the cache (if configured) or the store,
// passing the content to fn. The content is only valid during fn.
func (g *Group) readPage(id storage.PageID, fn func(data []byte) error) error {
	if g.cache != nil {
		data, _, err := g.cache.GetVia(id, g.store)
		if err != nil {
			return err
		}
		defer g.cache.Release(id)
		return fn(data)
	}
	bufp := g.bufs.Get().(*[]byte)
	defer g.bufs.Put(bufp)
	if err := g.store.ReadPage(id, *bufp); err != nil {
		return err
	}
	return fn(*bufp)
}

// checkRow validates a row index.
func (g *Group) checkRow(row int) error {
	if row < 0 || row >= g.rows {
		return fmt.Errorf("sscg: row %d out of range (%d rows)", row, g.rows)
	}
	return nil
}

// checkField validates a field index.
func (g *Group) checkField(field int) error {
	if field < 0 || field >= len(g.fields) {
		return fmt.Errorf("sscg: field %d out of range (%d fields)", field, len(g.fields))
	}
	return nil
}

// ReadRow reconstructs the full row: a single page access for packed
// layouts, pagesPerRow consecutive accesses for spanning layouts.
func (g *Group) ReadRow(row int) ([]value.Value, error) {
	if err := g.checkRow(row); err != nil {
		return nil, err
	}
	rowBytes := make([]byte, g.rowWidth)
	if g.pagesPerRow == 1 {
		pageIdx := row / g.rowsPerPage
		off := (row % g.rowsPerPage) * g.rowWidth
		err := g.readPage(g.pages[pageIdx], func(data []byte) error {
			copy(rowBytes, data[off:off+g.rowWidth])
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		base := row * g.pagesPerRow
		for p := 0; p < g.pagesPerRow; p++ {
			off := p * storage.PageSize
			err := g.readPage(g.pages[base+p], func(data []byte) error {
				copy(rowBytes[off:], data)
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return g.decodeRow(rowBytes)
}

// decodeRow parses a row buffer into values.
func (g *Group) decodeRow(rowBytes []byte) ([]value.Value, error) {
	out := make([]value.Value, len(g.fields))
	for f, fd := range g.fields {
		v, err := value.DecodeFixed(fd.Type, rowBytes[g.offsets[f]:g.offsets[f]+fd.SlotWidth()])
		if err != nil {
			return nil, fmt.Errorf("sscg: decode field %q: %w", fd.Name, err)
		}
		out[f] = v
	}
	return out, nil
}

// ReadField reads a single field of a row, touching only the page(s)
// covering its slot.
func (g *Group) ReadField(row, field int) (value.Value, error) {
	if err := g.checkRow(row); err != nil {
		return value.Value{}, err
	}
	if err := g.checkField(field); err != nil {
		return value.Value{}, err
	}
	fd := g.fields[field]
	slot := make([]byte, fd.SlotWidth())
	if g.pagesPerRow == 1 {
		pageIdx := row / g.rowsPerPage
		off := (row%g.rowsPerPage)*g.rowWidth + g.offsets[field]
		err := g.readPage(g.pages[pageIdx], func(data []byte) error {
			copy(slot, data[off:off+len(slot)])
			return nil
		})
		if err != nil {
			return value.Value{}, err
		}
	} else {
		base := row * g.pagesPerRow
		start := g.offsets[field]
		for got := 0; got < len(slot); {
			pageIdx := (start + got) / storage.PageSize
			pageOff := (start + got) % storage.PageSize
			n := min(len(slot)-got, storage.PageSize-pageOff)
			err := g.readPage(g.pages[base+pageIdx], func(data []byte) error {
				copy(slot[got:got+n], data[pageOff:pageOff+n])
				return nil
			})
			if err != nil {
				return value.Value{}, err
			}
			got += n
		}
	}
	return value.DecodeFixed(fd.Type, slot)
}

// Scan evaluates pred against every row's field, appending matching
// positions to out; skip (may be nil) masks rows. It reads every page of
// the group once — the expensive path the placement model avoids.
func (g *Group) Scan(field int, pred func(value.Value) bool, out []uint32, skip func(int) bool) ([]uint32, error) {
	return g.ScanRows(field, pred, 0, g.rows, out, skip)
}

// ScanRows evaluates pred against rows in [rowLo, rowHi), appending
// matching positions to out in ascending row order. Morsel-driven
// parallel scans call it with disjoint row ranges; ranges aligned to
// RowsPerPage boundaries read every covered page exactly once.
func (g *Group) ScanRows(field int, pred func(value.Value) bool, rowLo, rowHi int, out []uint32, skip func(int) bool) ([]uint32, error) {
	if err := g.checkField(field); err != nil {
		return nil, err
	}
	if rowLo < 0 {
		rowLo = 0
	}
	if rowHi > g.rows {
		rowHi = g.rows
	}
	if rowLo >= rowHi {
		return out, nil
	}
	fd := g.fields[field]
	if g.pagesPerRow == 1 {
		for pageIdx := rowLo / g.rowsPerPage; pageIdx <= (rowHi-1)/g.rowsPerPage; pageIdx++ {
			first := pageIdx * g.rowsPerPage
			lo := max(first, rowLo)
			hi := min(first+g.rowsPerPage, rowHi)
			err := g.readPage(g.pages[pageIdx], func(data []byte) error {
				for row := lo; row < hi; row++ {
					if skip != nil && skip(row) {
						continue
					}
					off := (row-first)*g.rowWidth + g.offsets[field]
					v, err := value.DecodeFixed(fd.Type, data[off:off+fd.SlotWidth()])
					if err != nil {
						return err
					}
					if pred(v) {
						out = append(out, uint32(row))
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for row := rowLo; row < rowHi; row++ {
		if skip != nil && skip(row) {
			continue
		}
		v, err := g.ReadField(row, field)
		if err != nil {
			return nil, err
		}
		if pred(v) {
			out = append(out, uint32(row))
		}
	}
	return out, nil
}

// Probe evaluates pred at the given candidate positions only, appending
// matches to out (point accesses, one page read per candidate).
func (g *Group) Probe(field int, pred func(value.Value) bool, candidates []uint32, out []uint32) ([]uint32, error) {
	if err := g.checkField(field); err != nil {
		return nil, err
	}
	for _, pos := range candidates {
		v, err := g.ReadField(int(pos), field)
		if err != nil {
			return nil, err
		}
		if pred(v) {
			out = append(out, pos)
		}
	}
	return out, nil
}
