package sscg

import (
	"fmt"
	"math/rand"
	"testing"

	"tierdb/internal/amm"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

// makeRows builds n rows over f int64 fields with deterministic values
// value(row, field) = row*1000 + field.
func makeRows(n, f int) ([]schema.Field, [][]value.Value) {
	fields := make([]schema.Field, f)
	for i := range fields {
		fields[i] = schema.Field{Name: fmt.Sprintf("c%d", i), Type: value.Int64}
	}
	rows := make([][]value.Value, n)
	for r := range rows {
		row := make([]value.Value, f)
		for c := range row {
			row[c] = value.NewInt(int64(r*1000 + c))
		}
		rows[r] = row
	}
	return fields, rows
}

func TestBuildPackedLayout(t *testing.T) {
	fields, rows := makeRows(100, 10) // rowWidth 80, 51 rows/page
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 100 {
		t.Errorf("Rows = %d", g.Rows())
	}
	if g.RowWidth() != 80 {
		t.Errorf("RowWidth = %d", g.RowWidth())
	}
	if g.PagesPerReconstruction() != 1 {
		t.Errorf("PagesPerReconstruction = %d, want 1", g.PagesPerReconstruction())
	}
	wantPages := (100 + 50) / 51 // 51 rows per 4096/80 page
	if g.PageCount() != wantPages {
		t.Errorf("PageCount = %d, want %d", g.PageCount(), wantPages)
	}
	if g.Bytes() != int64(wantPages)*storage.PageSize {
		t.Errorf("Bytes = %d", g.Bytes())
	}
}

func TestReadRowRoundTrip(t *testing.T) {
	fields, rows := makeRows(137, 7)
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 1, 50, 136} {
		got, err := g.ReadRow(r)
		if err != nil {
			t.Fatal(err)
		}
		for c, v := range got {
			if want := int64(r*1000 + c); v.Int() != want {
				t.Errorf("row %d field %d = %d, want %d", r, c, v.Int(), want)
			}
		}
	}
	if _, err := g.ReadRow(137); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := g.ReadRow(-1); err == nil {
		t.Error("negative row accepted")
	}
}

func TestReadField(t *testing.T) {
	fields, rows := makeRows(60, 5)
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := g.ReadField(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 42003 {
		t.Errorf("ReadField = %d", v.Int())
	}
	if _, err := g.ReadField(0, 9); err == nil {
		t.Error("out-of-range field accepted")
	}
}

func TestSpanningRowsWiderThanPage(t *testing.T) {
	// 600 int64 fields = 4800 bytes > 4096: rows span 2 pages (the
	// BSEG-like wide-table case).
	fields, rows := makeRows(20, 600)
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.PagesPerReconstruction() != 2 {
		t.Errorf("PagesPerReconstruction = %d, want 2", g.PagesPerReconstruction())
	}
	if g.PageCount() != 40 {
		t.Errorf("PageCount = %d, want 40", g.PageCount())
	}
	for _, r := range []int{0, 7, 19} {
		got, err := g.ReadRow(r)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 600; c += 97 {
			if want := int64(r*1000 + c); got[c].Int() != want {
				t.Errorf("row %d field %d = %d, want %d", r, c, got[c].Int(), want)
			}
		}
	}
	// A field whose slot straddles the page boundary: offset 4092
	// would require field at byte 4088..4096; field 511 starts at
	// 511*8 = 4088, field 512 at 4096. Both must decode correctly.
	for _, f := range []int{511, 512} {
		v, err := g.ReadField(3, f)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(3*1000 + f); v.Int() != want {
			t.Errorf("spanning field %d = %d, want %d", f, v.Int(), want)
		}
	}
}

func TestScan(t *testing.T) {
	fields, rows := makeRows(200, 4)
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Scan field 2 for value 123002 (row 123).
	got, err := g.Scan(2, func(v value.Value) bool { return v.Int() == 123002 }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 123 {
		t.Errorf("Scan = %v", got)
	}
	// Range-style predicate.
	got, err = g.Scan(0, func(v value.Value) bool { return v.Int() < 5000 }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 { // rows 0..4
		t.Errorf("range Scan hit %d rows, want 5", len(got))
	}
	// Skip masks rows.
	got, err = g.Scan(0, func(v value.Value) bool { return v.Int() < 5000 }, nil, func(r int) bool { return r == 0 })
	if err != nil || len(got) != 4 {
		t.Errorf("Scan with skip = %v, %v", got, err)
	}
	if _, err := g.Scan(9, nil, nil, nil); err == nil {
		t.Error("out-of-range scan field accepted")
	}
}

func TestProbe(t *testing.T) {
	fields, rows := makeRows(100, 3)
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Probe(1, func(v value.Value) bool { return v.Int()%2000 == 1 }, []uint32{0, 2, 4, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// value(r,1) = r*1000+1; %2000==1 for even r: all candidates match.
	if len(got) != 4 {
		t.Errorf("Probe = %v", got)
	}
	if _, err := g.Probe(7, nil, []uint32{0}, nil); err == nil {
		t.Error("out-of-range probe field accepted")
	}
}

func TestBuildRejectsBadRows(t *testing.T) {
	fields, rows := makeRows(3, 2)
	rows[1] = rows[1][:1] // short row
	if _, err := Build(fields, rows, storage.NewMemStore(), nil); err == nil {
		t.Error("short row accepted")
	}
	_, rows = makeRows(3, 2)
	rows[2][0] = value.NewString("wrong")
	if _, err := Build(fields, rows, storage.NewMemStore(), nil); err == nil {
		t.Error("wrong-typed row accepted")
	}
	if _, err := Build(nil, nil, storage.NewMemStore(), nil); err == nil {
		t.Error("empty fields accepted")
	}
}

func TestWithCache(t *testing.T) {
	fields, rows := makeRows(500, 8) // 64 rows/page, 8 pages
	store := storage.NewMemStore()
	cache, err := amm.New(4, store)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(fields, rows, store, cache)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated access to the same row must hit the cache.
	for i := 0; i < 10; i++ {
		if _, err := g.ReadRow(42); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Hits < 9 {
		t.Errorf("hits = %d, want >= 9", st.Hits)
	}
	// Zipfian-style skewed accesses should see a high hit rate even
	// with a small cache.
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(g.Rows()-1))
	for i := 0; i < 2000; i++ {
		if _, err := g.ReadRow(int(zipf.Uint64())); err != nil {
			t.Fatal(err)
		}
	}
	if hr := cache.Stats().HitRate(); hr < 0.5 {
		t.Errorf("zipfian hit rate = %.2f, want > 0.5", hr)
	}
}

func TestMixedTypeRows(t *testing.T) {
	fields := []schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "name", Type: value.String, Width: 12},
		{Name: "amount", Type: value.Float64},
	}
	rows := [][]value.Value{
		{value.NewInt(1), value.NewString("alpha"), value.NewFloat(1.5)},
		{value.NewInt(2), value.NewString("bravo"), value.NewFloat(-2.25)},
	}
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadRow(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 2 || got[1].Str() != "bravo" || got[2].Float() != -2.25 {
		t.Errorf("mixed row = %v", got)
	}
	if g.FieldIndex("name") != 1 || g.FieldIndex("missing") != -1 {
		t.Error("FieldIndex wrong")
	}
	if len(g.Fields()) != 3 {
		t.Error("Fields wrong")
	}
}

func TestSpanningScanAndProbe(t *testing.T) {
	fields, rows := makeRows(30, 600) // spanning layout
	g, err := Build(fields, rows, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Scan(599, func(v value.Value) bool { return v.Int() == 7*1000+599 }, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("spanning Scan = %v", got)
	}
	got, err = g.Probe(0, func(v value.Value) bool { return true }, []uint32{3, 9}, nil)
	if err != nil || len(got) != 2 {
		t.Errorf("spanning Probe = %v, %v", got, err)
	}
}
