package sscg

import (
	"fmt"
	"math/rand"
	"testing"

	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/value"
)

// FuzzRowRoundtrip drives Build and the three read paths (ReadRow,
// ReadField, Scan/ScanRows) over arbitrary field widths and row counts,
// including rows wider than one 4 KB page (the spanning layout) and
// rows that fill a page exactly. Every decoded value must equal the
// encoded input, and scans must match a brute-force oracle.
func FuzzRowRoundtrip(f *testing.F) {
	f.Add(uint16(10), uint16(8), uint8(2), int64(1))
	f.Add(uint16(3), uint16(4500), uint8(3), int64(2)) // row wider than a page
	f.Add(uint16(5), uint16(4072), uint8(0), int64(3)) // exactly one row per page
	f.Add(uint16(7), uint16(4081), uint8(0), int64(4)) // just over a page
	f.Add(uint16(1), uint16(1), uint8(4), int64(5))
	f.Add(uint16(100), uint16(40), uint8(1), int64(6))
	f.Fuzz(func(t *testing.T, nRows, strWidth uint16, extraInts uint8, seed int64) {
		rows := int(nRows%128) + 1
		width := int(strWidth%5000) + 1
		extra := int(extraInts % 5)
		fields := []schema.Field{
			{Name: "i", Type: value.Int64},
			{Name: "f", Type: value.Float64},
			{Name: "s", Type: value.String, Width: width},
		}
		for e := 0; e < extra; e++ {
			fields = append(fields, schema.Field{Name: fmt.Sprintf("x%d", e), Type: value.Int64})
		}
		rowWidth := 0
		for _, fd := range fields {
			rowWidth += fd.SlotWidth()
		}

		rng := rand.New(rand.NewSource(seed))
		data := make([][]value.Value, rows)
		for r := range data {
			row := make([]value.Value, len(fields))
			for c, fd := range fields {
				switch fd.Type {
				case value.Int64:
					row[c] = value.NewInt(rng.Int63n(1000) - 500)
				case value.Float64:
					row[c] = value.NewFloat(float64(rng.Intn(2000)) / 4)
				default:
					// Strings stay within the slot width and free of
					// trailing NULs, so encoding is lossless.
					b := make([]byte, rng.Intn(width+1))
					for i := range b {
						b[i] = byte('a' + rng.Intn(26))
					}
					row[c] = value.NewString(string(b))
				}
			}
			data[r] = row
		}

		g, err := Build(fields, data, storage.NewMemStore(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rowWidth <= storage.PageSize {
			if g.PagesPerReconstruction() != 1 {
				t.Fatalf("row width %d: packed layout expected, got %d pages/row", rowWidth, g.PagesPerReconstruction())
			}
		} else {
			want := (rowWidth + storage.PageSize - 1) / storage.PageSize
			if g.PagesPerReconstruction() != want {
				t.Fatalf("row width %d: %d pages/row, want %d", rowWidth, g.PagesPerReconstruction(), want)
			}
		}

		for r, wantRow := range data {
			got, err := g.ReadRow(r)
			if err != nil {
				t.Fatalf("ReadRow(%d): %v", r, err)
			}
			for c := range wantRow {
				if !got[c].Equal(wantRow[c]) {
					t.Fatalf("ReadRow(%d) field %d = %v, want %v", r, c, got[c], wantRow[c])
				}
			}
		}
		for i := 0; i < 20; i++ {
			r, c := rng.Intn(rows), rng.Intn(len(fields))
			got, err := g.ReadField(r, c)
			if err != nil {
				t.Fatalf("ReadField(%d, %d): %v", r, c, err)
			}
			if !got.Equal(data[r][c]) {
				t.Fatalf("ReadField(%d, %d) = %v, want %v", r, c, got, data[r][c])
			}
		}

		// Scan a random field for a value that exists, against an oracle.
		field := rng.Intn(len(fields))
		needle := data[rng.Intn(rows)][field]
		pred := func(v value.Value) bool { return v.Equal(needle) }
		got, err := g.Scan(field, pred, nil, nil)
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		var want []uint32
		for r := range data {
			if data[r][field].Equal(needle) {
				want = append(want, uint32(r))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Scan found %d rows, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Scan[%d] = %d, want %d", i, got[i], want[i])
			}
		}

		// ScanRows over a random sub-range equals the oracle restricted
		// to that range (the morsel-driven executor's contract).
		lo := rng.Intn(rows + 1)
		hi := lo + rng.Intn(rows+1-lo)
		got, err = g.ScanRows(field, pred, lo, hi, nil, nil)
		if err != nil {
			t.Fatalf("ScanRows(%d, %d): %v", lo, hi, err)
		}
		want = want[:0]
		for r := lo; r < hi; r++ {
			if data[r][field].Equal(needle) {
				want = append(want, uint32(r))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("ScanRows(%d, %d) found %d rows, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ScanRows[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}
