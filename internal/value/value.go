// Package value defines the runtime value representation and column
// types shared by the storage engine: 64-bit integers, 64-bit floats and
// strings. SSCGs store values uncompressed in fixed-width row slots
// (strings are padded to a per-column width), which is what gives the
// paper's row-oriented column groups their single-page tuple
// reconstruction property.
package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Type enumerates the supported column types.
type Type uint8

const (
	// Int64 is a signed 64-bit integer column.
	Int64 Type = iota
	// Float64 is a 64-bit IEEE float column.
	Float64
	// String is a variable-length string column; in fixed-width
	// contexts (SSCG rows) it is padded/truncated to the column width.
	String
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a dynamically typed cell value.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
}

// NewInt returns an Int64 value.
func NewInt(v int64) Value { return Value{typ: Int64, i: v} }

// NewFloat returns a Float64 value.
func NewFloat(v float64) Value { return Value{typ: Float64, f: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{typ: String, s: v} }

// Type returns the value's type.
func (v Value) Type() Type { return v.typ }

// Int returns the integer payload; valid only for Int64 values.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; valid only for Float64 values.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; valid only for String values.
func (v Value) Str() string { return v.s }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.typ {
	case Int64:
		return fmt.Sprintf("%d", v.i)
	case Float64:
		return fmt.Sprintf("%g", v.f)
	case String:
		return v.s
	default:
		return "<invalid>"
	}
}

// Compare orders v relative to o: -1, 0 or +1. Comparing values of
// different types panics; the engine's schema layer guarantees
// homogeneous comparisons.
func (v Value) Compare(o Value) int {
	if v.typ != o.typ {
		panic(fmt.Sprintf("value: comparing %s with %s", v.typ, o.typ))
	}
	switch v.typ {
	case Int64:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case Float64:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.s, o.s)
	}
}

// Equal reports whether v and o are the same typed value.
func (v Value) Equal(o Value) bool {
	return v.typ == o.typ && v.Compare(o) == 0
}

// FixedWidth returns the number of bytes the value type occupies in a
// fixed-width row slot; strWidth is the configured width for strings.
func FixedWidth(t Type, strWidth int) int {
	switch t {
	case Int64, Float64:
		return 8
	default:
		return strWidth
	}
}

// EncodeFixed writes v into buf using the fixed-width layout; buf must
// be exactly FixedWidth bytes. Strings are right-padded with zero bytes
// and silently truncated at the slot width, as in the fixed CHAR columns
// of the enterprise schemas the paper analyzes.
func EncodeFixed(v Value, buf []byte) error {
	switch v.typ {
	case Int64:
		if len(buf) != 8 {
			return fmt.Errorf("value: int64 slot is %d bytes, want 8", len(buf))
		}
		binary.LittleEndian.PutUint64(buf, uint64(v.i))
	case Float64:
		if len(buf) != 8 {
			return fmt.Errorf("value: float64 slot is %d bytes, want 8", len(buf))
		}
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v.f))
	case String:
		n := copy(buf, v.s)
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
	default:
		return fmt.Errorf("value: cannot encode type %s", v.typ)
	}
	return nil
}

// DecodeFixed reads a value of type t from a fixed-width slot.
func DecodeFixed(t Type, buf []byte) (Value, error) {
	switch t {
	case Int64:
		if len(buf) != 8 {
			return Value{}, fmt.Errorf("value: int64 slot is %d bytes, want 8", len(buf))
		}
		return NewInt(int64(binary.LittleEndian.Uint64(buf))), nil
	case Float64:
		if len(buf) != 8 {
			return Value{}, fmt.Errorf("value: float64 slot is %d bytes, want 8", len(buf))
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf))), nil
	case String:
		end := len(buf)
		for end > 0 && buf[end-1] == 0 {
			end--
		}
		return NewString(string(buf[:end])), nil
	default:
		return Value{}, fmt.Errorf("value: cannot decode type %s", t)
	}
}
