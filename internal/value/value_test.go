package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(-7); v.Type() != Int64 || v.Int() != -7 {
		t.Errorf("NewInt: %v", v)
	}
	if v := NewFloat(2.5); v.Type() != Float64 || v.Float() != 2.5 {
		t.Errorf("NewFloat: %v", v)
	}
	if v := NewString("abc"); v.Type() != String || v.Str() != "abc" {
		t.Errorf("NewString: %v", v)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewFloat(2.5), NewFloat(2.5), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewString("c"), NewString("b"), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMixedTypesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixed-type Compare did not panic")
		}
	}()
	NewInt(1).Compare(NewString("x"))
}

func TestEqual(t *testing.T) {
	if !NewInt(5).Equal(NewInt(5)) {
		t.Error("equal ints not Equal")
	}
	if NewInt(5).Equal(NewFloat(5)) {
		t.Error("cross-type Equal")
	}
}

func TestTypeString(t *testing.T) {
	if Int64.String() != "int64" || Float64.String() != "float64" || String.String() != "string" {
		t.Error("type names wrong")
	}
	if Type(99).String() == "" {
		t.Error("unknown type renders empty")
	}
}

func TestFixedWidth(t *testing.T) {
	if FixedWidth(Int64, 0) != 8 || FixedWidth(Float64, 0) != 8 {
		t.Error("numeric widths wrong")
	}
	if FixedWidth(String, 20) != 20 {
		t.Error("string width wrong")
	}
}

func TestEncodeDecodeFixedRoundTrip(t *testing.T) {
	intProp := func(v int64) bool {
		buf := make([]byte, 8)
		if err := EncodeFixed(NewInt(v), buf); err != nil {
			return false
		}
		got, err := DecodeFixed(Int64, buf)
		return err == nil && got.Int() == v
	}
	if err := quick.Check(intProp, nil); err != nil {
		t.Error(err)
	}
	floatProp := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		buf := make([]byte, 8)
		if err := EncodeFixed(NewFloat(v), buf); err != nil {
			return false
		}
		got, err := DecodeFixed(Float64, buf)
		return err == nil && got.Float() == v
	}
	if err := quick.Check(floatProp, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeString(t *testing.T) {
	buf := make([]byte, 10)
	if err := EncodeFixed(NewString("hello"), buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFixed(String, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Str() != "hello" {
		t.Errorf("round trip = %q", got.Str())
	}
	// Truncation at slot width.
	if err := EncodeFixed(NewString("0123456789abc"), buf); err != nil {
		t.Fatal(err)
	}
	got, _ = DecodeFixed(String, buf)
	if got.Str() != "0123456789" {
		t.Errorf("truncated = %q, want %q", got.Str(), "0123456789")
	}
	// Re-encoding a shorter string must clear stale bytes.
	if err := EncodeFixed(NewString("xy"), buf); err != nil {
		t.Fatal(err)
	}
	got, _ = DecodeFixed(String, buf)
	if got.Str() != "xy" {
		t.Errorf("stale bytes leaked: %q", got.Str())
	}
}

func TestEncodeFixedWrongSlotSize(t *testing.T) {
	if err := EncodeFixed(NewInt(1), make([]byte, 4)); err == nil {
		t.Error("short int slot accepted")
	}
	if err := EncodeFixed(NewFloat(1), make([]byte, 4)); err == nil {
		t.Error("short float slot accepted")
	}
	if _, err := DecodeFixed(Int64, make([]byte, 4)); err == nil {
		t.Error("short int decode accepted")
	}
	if _, err := DecodeFixed(Float64, make([]byte, 4)); err == nil {
		t.Error("short float decode accepted")
	}
}

func TestValueStringRendering(t *testing.T) {
	if NewInt(3).String() != "3" {
		t.Error("int rendering")
	}
	if NewFloat(2.5).String() != "2.5" {
		t.Error("float rendering")
	}
	if NewString("x").String() != "x" {
		t.Error("string rendering")
	}
}
