package histogram

import (
	"math"
	"math/rand"
	"testing"

	"tierdb/internal/value"
)

func intVals(vs ...int64) []value.Value {
	out := make([]value.Value, len(vs))
	for i, v := range vs {
		out[i] = value.NewInt(v)
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(value.Int64, nil, 4); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := Build(value.Int64, intVals(1), 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := Build(value.Int64, []value.Value{value.NewString("x")}, 4); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestEquiDepthBucketsBalanced(t *testing.T) {
	vals := make([]value.Value, 1000)
	for i := range vals {
		vals[i] = value.NewInt(int64(i))
	}
	h, err := Build(value.Int64, vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 10 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	if h.Total() != 1000 || h.DistinctCount() != 1000 {
		t.Errorf("total/distinct = %d/%d", h.Total(), h.DistinctCount())
	}
}

func TestRangeSelectivityUniform(t *testing.T) {
	vals := make([]value.Value, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = value.NewInt(int64(rng.Intn(1000)))
	}
	h, err := Build(value.Int64, vals, 32)
	if err != nil {
		t.Fatal(err)
	}
	// [0, 99] covers ~10% of a uniform domain.
	got := h.RangeSelectivity(value.NewInt(0), value.NewInt(99))
	if math.Abs(got-0.1) > 0.03 {
		t.Errorf("RangeSelectivity([0,99]) = %g, want ~0.1", got)
	}
	// Full domain covers everything.
	got = h.RangeSelectivity(value.NewInt(0), value.NewInt(999))
	if math.Abs(got-1) > 0.01 {
		t.Errorf("RangeSelectivity(full) = %g, want 1", got)
	}
	// Empty ranges.
	if h.RangeSelectivity(value.NewInt(5000), value.NewInt(6000)) != 0 {
		t.Error("out-of-domain range should be 0")
	}
	if h.RangeSelectivity(value.NewInt(10), value.NewInt(5)) != 0 {
		t.Error("inverted range should be 0")
	}
}

func TestRangeSelectivityHandlesSkew(t *testing.T) {
	// 90% of rows are the single value 7; equi-depth buckets adapt
	// while a uniform assumption would not.
	var vals []value.Value
	for i := 0; i < 9000; i++ {
		vals = append(vals, value.NewInt(7))
	}
	for i := 0; i < 1000; i++ {
		vals = append(vals, value.NewInt(int64(100+i)))
	}
	h, err := Build(value.Int64, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := h.RangeSelectivity(value.NewInt(0), value.NewInt(50))
	if got < 0.85 {
		t.Errorf("skewed range selectivity = %g, want ~0.9", got)
	}
	tail := h.RangeSelectivity(value.NewInt(100), value.NewInt(1099))
	if math.Abs(tail-0.1) > 0.05 {
		t.Errorf("tail selectivity = %g, want ~0.1", tail)
	}
}

func TestEqualSelectivity(t *testing.T) {
	vals := make([]value.Value, 1000)
	for i := range vals {
		vals[i] = value.NewInt(int64(i % 100))
	}
	h, err := Build(value.Int64, vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := h.EqualSelectivity(value.NewInt(42))
	if math.Abs(got-0.01) > 0.005 {
		t.Errorf("EqualSelectivity = %g, want ~0.01", got)
	}
	if h.EqualSelectivity(value.NewInt(-5)) != 0 {
		t.Error("below-domain equality should be 0")
	}
	if h.EqualSelectivity(value.NewInt(10000)) != 0 {
		t.Error("above-domain equality should be 0")
	}
	// Type mismatch falls back to 1/distinct.
	if got := h.EqualSelectivity(value.NewString("x")); got != 1.0/100 {
		t.Errorf("mismatch fallback = %g", got)
	}
}

func TestFloatHistogram(t *testing.T) {
	vals := make([]value.Value, 2000)
	rng := rand.New(rand.NewSource(2))
	for i := range vals {
		vals[i] = value.NewFloat(rng.Float64() * 100)
	}
	h, err := Build(value.Float64, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := h.RangeSelectivity(value.NewFloat(25), value.NewFloat(75))
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("float range selectivity = %g, want ~0.5", got)
	}
}

func TestStringHistogram(t *testing.T) {
	vals := []value.Value{
		value.NewString("apple"), value.NewString("banana"), value.NewString("cherry"),
		value.NewString("date"), value.NewString("elderberry"), value.NewString("fig"),
	}
	h, err := Build(value.String, vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := h.RangeSelectivity(value.NewString("a"), value.NewString("c"))
	if got <= 0 || got > 1 {
		t.Errorf("string range selectivity = %g", got)
	}
}

func TestDuplicatesDoNotStraddleBuckets(t *testing.T) {
	// 500 copies of each of 4 values with 8 requested buckets: equal
	// values must stay in one bucket.
	var vals []value.Value
	for v := 0; v < 4; v++ {
		for i := 0; i < 500; i++ {
			vals = append(vals, value.NewInt(int64(v)))
		}
	}
	h, err := Build(value.Int64, vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() > 4 {
		t.Errorf("buckets = %d, want <= 4 distinct-respecting buckets", h.Buckets())
	}
	got := h.EqualSelectivity(value.NewInt(2))
	if math.Abs(got-0.25) > 0.1 {
		t.Errorf("EqualSelectivity(dup) = %g, want ~0.25", got)
	}
}

// Property: range selectivity is monotone in range width and bounded
// by [0, 1].
func TestRangeSelectivityMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]value.Value, 5000)
	for i := range vals {
		vals[i] = value.NewInt(int64(rng.Intn(500)))
	}
	h, err := Build(value.Int64, vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		lo := int64(rng.Intn(500))
		width1 := int64(rng.Intn(100))
		width2 := width1 + int64(rng.Intn(100))
		s1 := h.RangeSelectivity(value.NewInt(lo), value.NewInt(lo+width1))
		s2 := h.RangeSelectivity(value.NewInt(lo), value.NewInt(lo+width2))
		if s1 < 0 || s1 > 1 || s2 < 0 || s2 > 1 {
			t.Fatalf("selectivity out of bounds: %g, %g", s1, s2)
		}
		if s2 < s1-1e-9 {
			t.Fatalf("wider range less selective: [%d,%d]=%g vs [%d,%d]=%g",
				lo, lo+width1, s1, lo, lo+width2, s2)
		}
	}
}
