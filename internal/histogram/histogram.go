// Package histogram implements equi-depth histograms for selectivity
// estimation. The paper estimates attribute selectivity as 1/n for
// equi-predicates "using distinct counts and histograms when available"
// (Section III-A, following Selinger-style estimation [27]); histograms
// refine the estimate for range predicates, which otherwise default to
// the equi-predicate value. The executor uses these estimates to order
// predicates, so better estimates directly improve the
// location-then-selectivity execution order.
package histogram

import (
	"fmt"
	"sort"

	"tierdb/internal/value"
)

// Histogram is an immutable equi-depth histogram over one column.
type Histogram struct {
	typ value.Type
	// bounds[i] is the inclusive upper bound of bucket i; buckets hold
	// (bounds[i-1], bounds[i]]. The first bucket starts at min.
	bounds []value.Value
	min    value.Value
	// counts[i] is the number of rows in bucket i.
	counts []int
	total  int
	// distinct is the column's distinct count (for equi-predicates).
	distinct int
}

// Build constructs an equi-depth histogram with up to `buckets` buckets
// over vals. All values must share one orderable type.
func Build(typ value.Type, vals []value.Value, buckets int) (*Histogram, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histogram: bucket count %d must be positive", buckets)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("histogram: no values")
	}
	sorted := make([]value.Value, len(vals))
	copy(sorted, vals)
	for i, v := range sorted {
		if v.Type() != typ {
			return nil, fmt.Errorf("histogram: value %d has type %s, want %s", i, v.Type(), typ)
		}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Compare(sorted[b]) < 0 })

	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if !sorted[i].Equal(sorted[i-1]) {
			distinct++
		}
	}

	h := &Histogram{typ: typ, min: sorted[0], total: len(sorted), distinct: distinct}
	per := (len(sorted) + buckets - 1) / buckets
	start := 0
	for start < len(sorted) {
		end := start + per
		if end > len(sorted) {
			end = len(sorted)
		}
		// Extend the bucket so equal values never straddle a boundary
		// (keeps equi-predicate math consistent).
		for end < len(sorted) && sorted[end].Equal(sorted[end-1]) {
			end++
		}
		h.bounds = append(h.bounds, sorted[end-1])
		h.counts = append(h.counts, end-start)
		start = end
	}
	return h, nil
}

// Type returns the column type.
func (h *Histogram) Type() value.Type { return h.typ }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.bounds) }

// Total returns the number of rows summarized.
func (h *Histogram) Total() int { return h.total }

// DistinctCount returns the exact distinct count observed at build
// time.
func (h *Histogram) DistinctCount() int { return h.distinct }

// EqualSelectivity estimates the fraction of rows equal to v: the
// containing bucket's share divided by an assumed uniform spread over
// the bucket's distinct values (approximated by distinct/buckets).
func (h *Histogram) EqualSelectivity(v value.Value) float64 {
	if v.Type() != h.typ {
		return 1.0 / float64(h.distinct)
	}
	b := h.bucketOf(v)
	if b < 0 {
		return 0
	}
	perBucketDistinct := float64(h.distinct) / float64(len(h.bounds))
	if perBucketDistinct < 1 {
		perBucketDistinct = 1
	}
	return float64(h.counts[b]) / float64(h.total) / perBucketDistinct
}

// RangeSelectivity estimates the fraction of rows in [lo, hi]: full
// buckets count entirely, boundary buckets contribute linearly
// interpolated shares (continuous-domain assumption).
func (h *Histogram) RangeSelectivity(lo, hi value.Value) float64 {
	if lo.Type() != h.typ || hi.Type() != h.typ || lo.Compare(hi) > 0 {
		return 0
	}
	var rows float64
	prevUpper := h.min
	for b, upper := range h.bounds {
		bucketLo := prevUpper
		if b > 0 {
			bucketLo = h.bounds[b-1]
		} else {
			bucketLo = h.min
		}
		prevUpper = upper
		// Bucket interval: [bucketLo, upper] for b=0, else (bucketLo, upper].
		if hi.Compare(bucketLo) < 0 {
			break
		}
		if lo.Compare(upper) > 0 {
			continue
		}
		frac := overlapFraction(h.typ, bucketLo, upper, lo, hi)
		rows += frac * float64(h.counts[b])
	}
	sel := rows / float64(h.total)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// bucketOf returns the bucket containing v, or -1 if v is outside the
// histogram's range.
func (h *Histogram) bucketOf(v value.Value) int {
	if v.Compare(h.min) < 0 {
		return -1
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i].Compare(v) >= 0 })
	if i == len(h.bounds) {
		return -1
	}
	return i
}

// overlapFraction estimates which share of the bucket [bLo, bHi] the
// query range [qLo, qHi] covers, interpolating linearly for numeric
// types and falling back to full overlap for strings.
func overlapFraction(t value.Type, bLo, bHi, qLo, qHi value.Value) float64 {
	lo, hi := bLo, bHi
	if qLo.Compare(lo) > 0 {
		lo = qLo
	}
	if qHi.Compare(hi) < 0 {
		hi = qHi
	}
	if lo.Compare(hi) > 0 {
		return 0
	}
	switch t {
	case value.Int64:
		span := float64(bHi.Int() - bLo.Int() + 1)
		cover := float64(hi.Int() - lo.Int() + 1)
		if span <= 0 {
			return 1
		}
		return cover / span
	case value.Float64:
		span := bHi.Float() - bLo.Float()
		if span <= 0 {
			return 1
		}
		cover := hi.Float() - lo.Float()
		f := cover / span
		if f <= 0 {
			// Point overlap in a continuous domain still matches the
			// boundary value; approximate with a thin slice.
			return 0.5 / span
		}
		return f
	default:
		return 1 // strings: assume the whole bucket qualifies
	}
}
