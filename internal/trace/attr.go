package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// attrKind discriminates an Attr's value type.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one typed span attribute. Values are stored unboxed — a
// string plus one uint64 word carrying int64 bits, float64 bits or a
// bool — so building attributes for a sampled span costs no interface
// allocations.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  uint64
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: kindString, str: v} }

// Int builds an int64 attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, num: uint64(v)} }

// Float builds a float64 attribute.
func Float(key string, v float64) Attr {
	return Attr{Key: key, kind: kindFloat, num: math.Float64bits(v)}
}

// Bool builds a bool attribute.
func Bool(key string, v bool) Attr {
	var n uint64
	if v {
		n = 1
	}
	return Attr{Key: key, kind: kindBool, num: n}
}

// Value returns the attribute's value boxed as any (for rendering).
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return int64(a.num)
	case kindFloat:
		return math.Float64frombits(a.num)
	case kindBool:
		return a.num != 0
	default:
		return a.str
	}
}

// String renders the attribute as key=value.
func (a Attr) String() string {
	switch a.kind {
	case kindString:
		return a.Key + "=" + a.str
	default:
		return fmt.Sprintf("%s=%v", a.Key, a.Value())
	}
}

// MarshalJSON renders {"key": ..., "value": ...} with the value as its
// native JSON type.
func (a Attr) MarshalJSON() ([]byte, error) {
	out := append([]byte(`{"key":`), strconv.AppendQuote(nil, a.Key)...)
	out = append(out, `,"value":`...)
	switch a.kind {
	case kindInt:
		out = strconv.AppendInt(out, int64(a.num), 10)
	case kindFloat:
		v, err := json.Marshal(math.Float64frombits(a.num))
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	case kindBool:
		out = strconv.AppendBool(out, a.num != 0)
	default:
		out = strconv.AppendQuote(out, a.str)
	}
	return append(out, '}'), nil
}

// UnmarshalJSON accepts the form produced by MarshalJSON.
func (a *Attr) UnmarshalJSON(b []byte) error {
	var raw struct {
		Key   string `json:"key"`
		Value any    `json:"value"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	switch v := raw.Value.(type) {
	case bool:
		*a = Bool(raw.Key, v)
	case float64:
		if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
			*a = Int(raw.Key, int64(v))
		} else {
			*a = Float(raw.Key, v)
		}
	case string:
		*a = String(raw.Key, v)
	default:
		*a = String(raw.Key, fmt.Sprint(v))
	}
	return nil
}
