// Package trace is tierdb's lightweight distributed-tracing layer: a
// span model (trace/span IDs, parent links, start/end nanoseconds,
// typed attributes) with context.Context propagation and a race-safe
// bounded span ring reusing the lock-free TraceRing idiom from
// internal/metrics.
//
// The design optimizes for the unsampled path: the sampling decision is
// made once, when a root span would be created, and an unsampled trace
// is represented by a nil *Span. Every Span method is nil-safe and
// returns immediately, so instrumented call sites need no branches and
// always-on tracing costs approximately nothing when unsampled (see
// BenchmarkTracingOverhead).
//
// Spans follow the same ownership rule as metrics.Trace: a span is
// written by the goroutine driving it (SetAttr/SetError/End) and only
// published to the ring — and thereby to readers — by End, whose atomic
// pointer store is the happens-before edge. Concurrent goroutines get
// their own child spans; they never write a shared one.
package trace

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across processes. The zero
// value means "not traced" and is never generated.
type TraceID uint64

// SpanID identifies one span within a trace. The zero value means "no
// parent" on root spans and is never generated as a span's own ID.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits (the wire and URL
// form used by /trace/{id}).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a hex string so JSON consumers are not
// exposed to 64-bit integer precision loss.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, id.String()), nil
}

// MarshalJSON renders the ID as a hex string.
func (id SpanID) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, id.String()), nil
}

// UnmarshalJSON accepts the hex-string form produced by MarshalJSON.
func (id *TraceID) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return err
	}
	v, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// UnmarshalJSON accepts the hex-string form produced by MarshalJSON.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return err
	}
	*id = SpanID(v)
	return nil
}

// ParseTraceID parses the hex form produced by TraceID.String. It
// rejects the zero ID, which never names a real trace.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	if v == 0 {
		return 0, fmt.Errorf("trace: bad trace id %q: zero", s)
	}
	return TraceID(v), nil
}

// Span is one timed operation in a trace. Fields are exported for JSON
// rendering; mutate them only through the methods, from the goroutine
// driving the span, before End.
type Span struct {
	// Seq is the span's position in the ring's publish sequence,
	// stamped by the ring at End (monotone, survives wrap-around).
	Seq uint64 `json:"seq"`
	// Trace is the trace this span belongs to.
	Trace TraceID `json:"trace_id"`
	// ID is the span's own identifier, unique within the trace.
	ID SpanID `json:"span_id"`
	// Parent is the parent span's ID (0 on root spans).
	Parent SpanID `json:"parent_id,omitempty"`
	// Name identifies the operation, dot-scoped ("client.send",
	// "server.request", "exec.query", "wal.fsync", ...).
	Name string `json:"name"`
	// StartNs and EndNs are wall-clock unix nanoseconds; EndNs is 0
	// until the span ends.
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// Attrs are the span's typed attributes.
	Attrs []Attr `json:"attrs,omitempty"`
	// Err carries the operation's error text when it failed.
	Err string `json:"err,omitempty"`

	tracer *Tracer
}

// Tracer creates spans, makes the per-trace sampling decision and owns
// the ring completed spans are published into. A nil *Tracer is valid
// and records nothing.
type Tracer struct {
	ring *Ring
	// rate is the root-span sampling probability in [0,1].
	rate float64
	// rng is the splitmix64 state shared by ID generation and
	// sampling; one atomic add per draw makes it race-safe.
	rng atomic.Uint64
	// onEnd, when set, observes every span as it is published.
	onEnd atomic.Pointer[func(*Span)]
}

// Options configures a Tracer.
type Options struct {
	// SampleRate is the fraction of root spans that are traced:
	// 0 disables tracing, 1 traces everything. Propagated traces
	// (StartRemote) are always recorded — the sampling decision was
	// made upstream.
	SampleRate float64
	// RingSize bounds the span ring (default 4096 spans).
	RingSize int
	// Seed overrides the RNG seed (0 = derive from the clock); tests
	// use it for deterministic IDs.
	Seed uint64
}

// DefaultRingSize is the span ring capacity when Options.RingSize is 0.
const DefaultRingSize = 4096

// New builds a Tracer. Rate is clamped to [0,1].
func New(opts Options) *Tracer {
	rate := opts.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	t := &Tracer{ring: NewRing(size), rate: rate}
	seed := opts.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) ^ 0x9e3779b97f4a7c15
	}
	t.rng.Store(seed)
	return t
}

// splitmix64 finalizer: a full-avalanche mix of the claimed counter
// value, giving well-distributed 64-bit IDs from sequential states.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next draws one nonzero pseudo-random 64-bit value.
func (t *Tracer) next() uint64 {
	for {
		if v := mix64(t.rng.Add(1)); v != 0 {
			return v
		}
	}
}

// sample makes one root sampling decision.
func (t *Tracer) sample() bool {
	if t == nil || t.rate <= 0 {
		return false
	}
	if t.rate >= 1 {
		return true
	}
	// 53 bits of the draw give a uniform float in [0,1).
	return float64(t.next()>>11)/(1<<53) < t.rate
}

// SampleRate returns the configured root sampling rate (0 on nil).
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return t.rate
}

// Ring returns the tracer's span ring (nil on a nil tracer).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// SetOnEnd installs fn to observe every span as it ends (nil clears).
// Used by consumers that want to track spans — e.g. loadgen keeping the
// slowest request — without scanning the ring.
func (t *Tracer) SetOnEnd(fn func(*Span)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.onEnd.Store(nil)
		return
	}
	t.onEnd.Store(&fn)
}

// Start begins a new root span, making the sampling decision: it
// returns nil — a valid span recording nothing — when the trace is not
// sampled.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if !t.sample() {
		// The unsampled path must cost nothing: copyAttrs (not a
		// retained reference) below is what lets the caller's varargs
		// slice stay on its stack, so this early return allocates zero.
		return nil
	}
	return &Span{
		Trace:   TraceID(t.next()),
		ID:      SpanID(t.next()),
		Name:    name,
		StartNs: time.Now().UnixNano(),
		Attrs:   copyAttrs(attrs),
		tracer:  t,
	}
}

// copyAttrs clones the varargs attribute slice before a span retains
// it. Retaining the parameter directly would make it escape at every
// call site — including the ~100% of calls that are unsampled and
// return nil — turning the "tracing off" hot path into one heap
// allocation per request.
func copyAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	return append([]Attr(nil), attrs...)
}

// StartRemote begins a span continuing a trace propagated from another
// process (the wire header). The upstream peer already made the
// sampling decision by sending the header, so the span is always
// recorded. Returns nil when the tracer is nil or id is zero.
func (t *Tracer) StartRemote(id TraceID, parent SpanID, name string, attrs ...Attr) *Span {
	if t == nil || id == 0 {
		return nil
	}
	return &Span{
		Trace:   id,
		ID:      SpanID(t.next()),
		Parent:  parent,
		Name:    name,
		StartNs: time.Now().UnixNano(),
		Attrs:   copyAttrs(attrs),
		tracer:  t,
	}
}

// Child begins a child span of s starting now (nil-safe: a nil parent
// yields a nil child).
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		Trace:   s.Trace,
		ID:      SpanID(s.tracer.next()),
		Parent:  s.ID,
		Name:    name,
		StartNs: time.Now().UnixNano(),
		Attrs:   copyAttrs(attrs),
		tracer:  s.tracer,
	}
}

// ChildAt records an already-completed child span with explicit
// timestamps and publishes it immediately. It is how post-hoc
// instrumentation — converting an exec metrics.Trace into a span
// family — lands measured sub-operations in the tree. No-op on nil.
func (s *Span) ChildAt(name string, startNs, endNs int64, attrs ...Attr) {
	if s == nil {
		return
	}
	c := &Span{
		Trace:   s.Trace,
		ID:      SpanID(s.tracer.next()),
		Parent:  s.ID,
		Name:    name,
		StartNs: startNs,
		EndNs:   endNs,
		Attrs:   copyAttrs(attrs),
		tracer:  s.tracer,
	}
	s.tracer.publish(c)
}

// SetAttr appends typed attributes (no-op on nil).
func (s *Span) SetAttr(attrs ...Attr) {
	if s != nil {
		s.Attrs = append(s.Attrs, attrs...)
	}
}

// SetError records the operation's failure (no-op on nil or nil err).
func (s *Span) SetError(err error) {
	if s != nil && err != nil {
		s.Err = err.Error()
	}
}

// End stamps the span's end time and publishes it to the tracer's
// ring. Safe to call once per span; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndNs = time.Now().UnixNano()
	if s.EndNs < s.StartNs {
		// A clock step backwards would break child-within-parent
		// invariants downstream; clamp to a zero-length span.
		s.EndNs = s.StartNs
	}
	s.tracer.publish(s)
}

// EndAt is End with an explicit timestamp (no-op on nil).
func (s *Span) EndAt(ns int64) {
	if s == nil {
		return
	}
	if ns < s.StartNs {
		ns = s.StartNs
	}
	s.EndNs = ns
	s.tracer.publish(s)
}

// Duration returns the span's wall duration (0 while unfinished or on
// nil).
func (s *Span) Duration() time.Duration {
	if s == nil || s.EndNs == 0 {
		return 0
	}
	return time.Duration(s.EndNs - s.StartNs)
}

// publish lands a completed span in the ring and runs the OnEnd hook.
func (t *Tracer) publish(s *Span) {
	if t == nil {
		return
	}
	t.ring.Add(s)
	if fn := t.onEnd.Load(); fn != nil {
		(*fn)(s)
	}
}

// ctxKey keys the current span in a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying s as the current span. A nil span
// returns ctx unchanged, so unsampled requests pay no context
// allocation.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when ctx carries none
// (including a nil ctx).
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
