package trace

import "testing"

// BenchmarkTracingOverhead measures what tracing costs a request that
// is (a) not traced at all, (b) considered but unsampled — the hot
// production configuration, which must stay ~free — and (c) sampled,
// paying for real span records.
func BenchmarkTracingOverhead(b *testing.B) {
	run := func(b *testing.B, tr *Tracer) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			span := tr.Start("bench.request", String("op", "select"))
			child := span.Child("bench.child")
			child.End()
			span.SetAttr(Int("rows", 1))
			span.End()
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("unsampled", func(b *testing.B) { run(b, New(Options{SampleRate: 0})) })
	b.Run("sampled", func(b *testing.B) { run(b, New(Options{SampleRate: 1})) })
}
