package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is one span plus its children — the tree form served by
// /trace/{id}.
type Node struct {
	Span     *Span   `json:"span"`
	Children []*Node `json:"children,omitempty"`
}

// BuildTree assembles spans of one trace into parent-linked trees.
// Spans whose parent is missing (aged out of the ring, or recorded by
// another process) become roots; multiple roots are possible and
// returned ordered by start time. Children are ordered by start time.
func BuildTree(spans []*Span) []*Node {
	nodes := make(map[SpanID]*Node, len(spans))
	for _, s := range spans {
		// On a duplicate span ID (ring mixing generations of a reused
		// ID) the first — oldest by the caller's ordering — wins.
		if _, ok := nodes[s.ID]; !ok {
			nodes[s.ID] = &Node{Span: s}
		}
	}
	var roots []*Node
	for _, s := range spans {
		n := nodes[s.ID]
		if n.Span != s {
			continue // duplicate dropped above
		}
		if p, ok := nodes[s.Parent]; ok && s.Parent != 0 && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*Node) {
		sort.Slice(ns, func(a, b int) bool {
			if ns[a].Span.StartNs != ns[b].Span.StartNs {
				return ns[a].Span.StartNs < ns[b].Span.StartNs
			}
			return ns[a].Span.Seq < ns[b].Span.Seq
		})
	}
	for _, n := range nodes {
		order(n.Children)
	}
	order(roots)
	return roots
}

// SlowestPath returns the span IDs on the slowest path from root: at
// every level it descends into the child with the largest duration.
// This is the chain /traces?slow=1 highlights — the sequence of
// operations that dominated the request's latency.
func SlowestPath(root *Node) map[SpanID]bool {
	path := make(map[SpanID]bool)
	for n := root; n != nil; {
		path[n.Span.ID] = true
		var next *Node
		for _, c := range n.Children {
			if next == nil || c.Span.Duration() > next.Span.Duration() {
				next = c
			}
		}
		n = next
	}
	return path
}

// RenderText renders trees as an indented text listing, one span per
// line with duration, offset from the root start, attributes and error.
// Spans whose ID is in highlight are marked with a leading '*' — the
// slowest-path marker.
func RenderText(roots []*Node, highlight map[SpanID]bool) string {
	var b strings.Builder
	for _, r := range roots {
		renderNode(&b, r, r.Span.StartNs, 0, highlight)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, baseNs int64, depth int, highlight map[SpanID]bool) {
	mark := ' '
	if highlight[n.Span.ID] {
		mark = '*'
	}
	fmt.Fprintf(b, "%c %s%-*s %10s  +%s  [%s]",
		mark, strings.Repeat("  ", depth), 24-2*depth, n.Span.Name,
		n.Span.Duration(), time.Duration(n.Span.StartNs-baseNs), n.Span.ID)
	for _, a := range n.Span.Attrs {
		fmt.Fprintf(b, " %s", a)
	}
	if n.Span.Err != "" {
		fmt.Fprintf(b, " err=%q", n.Span.Err)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, baseNs, depth+1, highlight)
	}
}
