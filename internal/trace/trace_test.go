package trace

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDRendering(t *testing.T) {
	id := TraceID(0xdeadbeef)
	if got := id.String(); got != "00000000deadbeef" {
		t.Fatalf("TraceID.String() = %q", got)
	}
	back, err := ParseTraceID(id.String())
	if err != nil || back != id {
		t.Fatalf("ParseTraceID roundtrip = %v, %v", back, err)
	}
	if _, err := ParseTraceID("0"); err == nil {
		t.Error("zero trace id accepted")
	}
	if _, err := ParseTraceID("nothex"); err == nil {
		t.Error("non-hex trace id accepted")
	}
	var s SpanID
	if err := json.Unmarshal([]byte(`"00000000000000ff"`), &s); err != nil || s != 0xff {
		t.Fatalf("SpanID json roundtrip = %v, %v", s, err)
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(Options{SampleRate: 1, RingSize: 64, Seed: 7})
	root := tr.Start("client.send", String("op", "select"))
	if root == nil {
		t.Fatal("sampled Start returned nil")
	}
	if root.Trace == 0 || root.ID == 0 || root.Parent != 0 {
		t.Fatalf("bad root identifiers: %+v", root)
	}
	child := root.Child("server.request", Int("rows", 3))
	if child.Trace != root.Trace || child.Parent != root.ID {
		t.Fatalf("bad child links: %+v", child)
	}
	child.SetError(errors.New("boom"))
	child.SetAttr(Bool("ok", false), Float("frac", 0.5))
	child.End()
	root.End()
	if root.EndNs < root.StartNs {
		t.Fatal("end before start")
	}
	spans := tr.Ring().ByTrace(root.Trace)
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(spans))
	}
	if spans[0].Name != "client.send" || spans[1].Name != "server.request" {
		t.Fatalf("wrong order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[1].Err != "boom" {
		t.Fatalf("child err = %q", spans[1].Err)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer sampled")
	}
	// Every span method must be a no-op on nil.
	s.SetAttr(String("k", "v"))
	s.SetError(errors.New("x"))
	s.ChildAt("y", 1, 2)
	s.Child("z").End()
	s.End()
	s.EndAt(5)
	if s.Duration() != 0 {
		t.Fatal("nil span has duration")
	}
	if tr.StartRemote(5, 0, "r") != nil {
		t.Fatal("nil tracer StartRemote sampled")
	}
	if tr.Ring().Snapshot() != nil || tr.Ring().ByTrace(1) != nil {
		t.Fatal("nil ring returned spans")
	}
	tr.SetOnEnd(func(*Span) {})
	if tr.SampleRate() != 0 {
		t.Fatal("nil tracer has a sample rate")
	}
	if FromContext(NewContext(context.Background(), nil)) != nil {
		t.Fatal("nil span stored in context")
	}
}

func TestSamplingRates(t *testing.T) {
	never := New(Options{SampleRate: 0, Seed: 1})
	always := New(Options{SampleRate: 1, Seed: 1})
	half := New(Options{SampleRate: 0.5, Seed: 1})
	const n = 2000
	sampled := 0
	for i := 0; i < n; i++ {
		if never.Start("x") != nil {
			t.Fatal("rate 0 sampled")
		}
		s := always.Start("x")
		if s == nil {
			t.Fatal("rate 1 skipped")
		}
		s.End()
		if h := half.Start("x"); h != nil {
			sampled++
			h.End()
		}
	}
	if sampled < n/4 || sampled > 3*n/4 {
		t.Fatalf("rate 0.5 sampled %d of %d", sampled, n)
	}
	// Out-of-range rates clamp rather than misbehave.
	if New(Options{SampleRate: 7, Seed: 1}).Start("x") == nil {
		t.Fatal("rate > 1 did not clamp to always")
	}
	if New(Options{SampleRate: -1, Seed: 1}).Start("x") != nil {
		t.Fatal("rate < 0 did not clamp to never")
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	// Rate 0: propagated traces must still record (upstream sampled).
	tr := New(Options{SampleRate: 0, RingSize: 8, Seed: 3})
	s := tr.StartRemote(TraceID(42), SpanID(7), "server.request")
	if s == nil {
		t.Fatal("StartRemote dropped a propagated trace")
	}
	if s.Trace != 42 || s.Parent != 7 {
		t.Fatalf("remote span links = %+v", s)
	}
	s.End()
	if got := tr.Ring().ByTrace(42); len(got) != 1 {
		t.Fatalf("ring holds %d spans", len(got))
	}
	if tr.StartRemote(0, 0, "x") != nil {
		t.Fatal("zero trace id accepted")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 9})
	s := tr.Start("root")
	ctx := NewContext(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("span lost in context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a span")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx tolerance is the contract
		t.Fatal("nil context produced a span")
	}
}

func TestRingOverwriteAndSeq(t *testing.T) {
	tr := New(Options{SampleRate: 1, RingSize: 4, Seed: 5})
	var last *Span
	for i := 0; i < 10; i++ {
		s := tr.Start("s")
		s.End()
		last = s
	}
	snap := tr.Ring().Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap))
	}
	if snap[0] != last {
		t.Fatal("newest span not first")
	}
	if tr.Ring().Added() != 10 {
		t.Fatalf("Added = %d", tr.Ring().Added())
	}
	if snap[0].Seq != 9 {
		t.Fatalf("seq = %d", snap[0].Seq)
	}
}

// TestRingConcurrent hammers the ring from many goroutines; run under
// -race this proves the lock-free publish path.
func TestRingConcurrent(t *testing.T) {
	tr := New(Options{SampleRate: 1, RingSize: 64, Seed: 11})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := tr.Start("w", Int("i", int64(i)))
				s.Child("c").End()
				s.End()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range tr.Ring().Snapshot() {
					_ = s.Duration()
				}
			}
		}
	}()
	wg.Add(-1)
	wg.Wait()
	close(stop)
	wg.Add(1)
	wg.Wait()
	if tr.Ring().Added() != 8*500*2 {
		t.Fatalf("Added = %d", tr.Ring().Added())
	}
}

func TestOnEndHook(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 13})
	var mu sync.Mutex
	var seen []string
	tr.SetOnEnd(func(s *Span) {
		mu.Lock()
		seen = append(seen, s.Name)
		mu.Unlock()
	})
	tr.Start("a").End()
	tr.SetOnEnd(nil)
	tr.Start("b").End()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "a" {
		t.Fatalf("hook saw %v", seen)
	}
}

func TestBuildTreeAndSlowestPath(t *testing.T) {
	tr := New(Options{SampleRate: 1, RingSize: 64, Seed: 17})
	root := tr.Start("client.send")
	srv := root.Child("server.request")
	// Two completed children with explicit durations: exec slower.
	srv.ChildAt("wal.commit", srv.StartNs, srv.StartNs+100)
	srv.ChildAt("exec.query", srv.StartNs, srv.StartNs+1000, String("table", "t"))
	srv.EndAt(srv.StartNs + 2000)
	root.EndAt(srv.StartNs + 3000)

	spans := tr.Ring().ByTrace(root.Trace)
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].Span != root {
		t.Fatalf("tree roots = %d", len(roots))
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Span.Name != "server.request" {
		t.Fatal("server span not under client span")
	}
	kids := roots[0].Children[0].Children
	if len(kids) != 2 {
		t.Fatalf("server span has %d children", len(kids))
	}
	// Clock sanity: children within parent.
	for _, n := range roots {
		checkClockSanity(t, n, nil)
	}
	path := SlowestPath(roots[0])
	if !path[root.ID] || !path[srv.ID] {
		t.Fatal("slowest path misses trunk")
	}
	var exec, wal *Span
	for _, k := range kids {
		switch k.Span.Name {
		case "exec.query":
			exec = k.Span
		case "wal.commit":
			wal = k.Span
		}
	}
	if !path[exec.ID] || path[wal.ID] {
		t.Fatal("slowest path picked the wrong leaf")
	}

	text := RenderText(roots, path)
	if !strings.Contains(text, "client.send") || !strings.Contains(text, "* ") {
		t.Fatalf("text render:\n%s", text)
	}
	if !strings.Contains(text, "table=t") {
		t.Fatalf("attrs missing from text render:\n%s", text)
	}

	// Orphans (parent aged out) surface as extra roots.
	orphan := &Span{Trace: root.Trace, ID: 999, Parent: 12345, Name: "lost", StartNs: 1, EndNs: 2}
	roots = BuildTree(append(spans, orphan))
	if len(roots) != 2 {
		t.Fatalf("orphan not a root: %d roots", len(roots))
	}
}

func checkClockSanity(t *testing.T, n *Node, parent *Span) {
	t.Helper()
	s := n.Span
	if s.EndNs < s.StartNs {
		t.Errorf("%s: end %d < start %d", s.Name, s.EndNs, s.StartNs)
	}
	if parent != nil {
		if s.StartNs < parent.StartNs || s.EndNs > parent.EndNs {
			t.Errorf("%s: [%d,%d] outside parent %s [%d,%d]",
				s.Name, s.StartNs, s.EndNs, parent.Name, parent.StartNs, parent.EndNs)
		}
	}
	for _, c := range n.Children {
		checkClockSanity(t, c, s)
	}
}

func TestAttrJSON(t *testing.T) {
	attrs := []Attr{
		String("s", "v"), Int("i", -3), Float("f", 1.5), Bool("b", true),
	}
	data, err := json.Marshal(attrs)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"key":"s","value":"v"},{"key":"i","value":-3},{"key":"f","value":1.5},{"key":"b","value":true}]`
	if string(data) != want {
		t.Fatalf("attrs json = %s", data)
	}
	var back []Attr
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range attrs {
		if back[i].Key != attrs[i].Key || back[i].Value() != attrs[i].Value() {
			t.Fatalf("attr %d roundtrip = %+v want %+v", i, back[i], attrs[i])
		}
	}
}

func TestSpanJSONIDsAreHex(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 19})
	s := tr.Start("x")
	s.End()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"trace_id":"`+s.Trace.String()+`"`) {
		t.Fatalf("span json lacks hex trace id: %s", data)
	}
}

// TestUnsampledPathAllocatesNothing is the ≈0-overhead proof behind
// BenchmarkTracingOverhead: at sample rate 0 the whole instrumentation
// surface — root sampling, context plumbing, every span method —
// performs zero allocations.
func TestUnsampledPathAllocatesNothing(t *testing.T) {
	tr := New(Options{SampleRate: 0, Seed: 23})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Start("q")
		sctx := NewContext(ctx, s)
		got := FromContext(sctx)
		c := got.Child("child")
		c.SetAttr(Int("rows", 1))
		c.End()
		got.ChildAt("done", 1, 2)
		got.End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled request allocated %.1f times", allocs)
	}
}

func TestDurations(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 29})
	s := tr.Start("x")
	if s.Duration() != 0 {
		t.Fatal("unfinished span has duration")
	}
	s.EndAt(s.StartNs + int64(3*time.Millisecond))
	if s.Duration() != 3*time.Millisecond {
		t.Fatalf("duration = %s", s.Duration())
	}
	// EndAt before start clamps.
	u := tr.Start("y")
	u.EndAt(u.StartNs - 5)
	if u.EndNs != u.StartNs {
		t.Fatal("EndAt did not clamp")
	}
}
