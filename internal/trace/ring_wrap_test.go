package trace

import (
	"fmt"
	"sync"
	"testing"
)

// checkSpans asserts the snapshot invariants that must survive
// wrap-around under concurrent writers: at most Cap spans, newest
// first, unique seqs, and no torn spans — every span's marker fields
// (StartNs, EndNs, Name), all derived from one value at Add time, must
// still agree when read back.
func checkSpans(t *testing.T, spans []*Span, capacity int) {
	t.Helper()
	if len(spans) > capacity {
		t.Fatalf("snapshot has %d spans, cap %d", len(spans), capacity)
	}
	seen := make(map[uint64]bool, len(spans))
	for i, s := range spans {
		if seen[s.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", s.Seq)
		}
		seen[s.Seq] = true
		if i > 0 && spans[i-1].Seq <= s.Seq {
			t.Fatalf("snapshot not newest-first: seq %d before %d", spans[i-1].Seq, s.Seq)
		}
		if s.EndNs != s.StartNs || s.Name != fmt.Sprintf("m%d", s.StartNs) {
			t.Fatalf("torn span: seq %d start %d end %d name %q", s.Seq, s.StartNs, s.EndNs, s.Name)
		}
	}
}

// TestRingWraparoundConcurrent hammers a small span ring with many
// writers so the publish sequence wraps many times, snapshotting
// throughout, then pins the exact final window after a sequential tail.
func TestRingWraparoundConcurrent(t *testing.T) {
	const (
		capacity = 8
		writers  = 8
		perW     = 400
	)
	r := NewRing(capacity)
	add := func(marker int64) {
		r.Add(&Span{Trace: 1, StartNs: marker, EndNs: marker, Name: fmt.Sprintf("m%d", marker)})
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				checkSpans(t, r.Snapshot(), capacity)
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				add(int64(w*perW + i))
			}
		}(w)
	}
	writersWG.Wait()
	close(done)
	readers.Wait()

	if got := r.Added(); got != writers*perW {
		t.Fatalf("Added = %d, want %d", got, writers*perW)
	}
	// A slow writer can be the last to store into a slot even though a
	// later seq already landed there, so the concurrent phase only
	// guarantees uniqueness and coherence. A sequential tail of Cap
	// spans deterministically owns every slot: the snapshot must then
	// be exactly the last Cap seqs, descending.
	for i := 0; i < capacity; i++ {
		add(int64(writers*perW + i))
	}
	final := r.Snapshot()
	checkSpans(t, final, capacity)
	if len(final) != capacity {
		t.Fatalf("final snapshot has %d spans, want %d", len(final), capacity)
	}
	added := r.Added()
	for i, s := range final {
		if want := added - 1 - uint64(i); s.Seq != want {
			t.Fatalf("final[%d].Seq = %d, want %d", i, s.Seq, want)
		}
	}
	// ByTrace sees the same window, ordered by start time.
	byTrace := r.ByTrace(1)
	if len(byTrace) != capacity {
		t.Fatalf("ByTrace returned %d spans, want %d", len(byTrace), capacity)
	}
	for i := 1; i < len(byTrace); i++ {
		if byTrace[i-1].StartNs > byTrace[i].StartNs {
			t.Fatalf("ByTrace not start-ordered at %d", i)
		}
	}
}
