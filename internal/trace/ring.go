package trace

import (
	"sort"
	"sync/atomic"
)

// Ring is a bounded lock-free ring of completed spans, the span layer's
// reuse of the metrics.TraceRing idiom: writers claim a slot with one
// atomic add and publish with one atomic pointer store; older spans are
// overwritten once the ring is full; readers get a point-in-time copy
// via Snapshot. A nil *Ring is valid and records nothing.
type Ring struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

// NewRing builds a ring holding up to capacity spans (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Span], capacity)}
}

// Add publishes s (stamping s.Seq), overwriting the oldest span once
// the ring is full. No-op on a nil ring or span.
func (r *Ring) Add(s *Span) {
	if r == nil || s == nil {
		return
	}
	seq := r.next.Add(1) - 1
	s.Seq = seq
	r.slots[seq%uint64(len(r.slots))].Store(s)
}

// Cap returns the ring's capacity (0 on nil).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Added returns the total number of spans ever published (0 on nil).
func (r *Ring) Added() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot returns the ring's current spans, newest first. Concurrent
// writers may overwrite slots during the scan; each returned span is
// still internally consistent (the pointer swap is atomic and spans are
// immutable after publish), but the set may mix generations.
func (r *Ring) Snapshot() []*Span {
	if r == nil {
		return nil
	}
	out := make([]*Span, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq > out[b].Seq })
	return out
}

// ByTrace returns all spans of one trace still present in the ring,
// ordered by start time (ties broken by publish sequence so the order
// is total).
func (r *Ring) ByTrace(id TraceID) []*Span {
	if r == nil || id == 0 {
		return nil
	}
	var out []*Span
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil && s.Trace == id {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartNs != out[b].StartNs {
			return out[a].StartNs < out[b].StartNs
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}
