package schema

import (
	"testing"

	"tierdb/internal/value"
)

func testFields() []Field {
	return []Field{
		{Name: "id", Type: value.Int64},
		{Name: "name", Type: value.String, Width: 16},
		{Name: "amount", Type: value.Float64},
	}
}

func TestNewAndAccessors(t *testing.T) {
	s, err := New(testFields())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Field(1).Name != "name" {
		t.Errorf("Field(1) = %q", s.Field(1).Name)
	}
	if s.IndexOf("amount") != 2 {
		t.Errorf("IndexOf(amount) = %d", s.IndexOf("amount"))
	}
	if s.IndexOf("missing") != -1 {
		t.Error("IndexOf(missing) != -1")
	}
	if got := s.RowWidth(); got != 8+16+8 {
		t.Errorf("RowWidth = %d, want 32", got)
	}
	fields := s.Fields()
	fields[0].Name = "mutated"
	if s.Field(0).Name != "id" {
		t.Error("Fields() exposed internal slice")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := New([]Field{{Name: "", Type: value.Int64}}); err == nil {
		t.Error("empty field name accepted")
	}
	if _, err := New([]Field{{Name: "a", Type: value.Int64}, {Name: "a", Type: value.Int64}}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := New([]Field{{Name: "s", Type: value.String, Width: 0}}); err == nil {
		t.Error("zero-width string accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(nil)
}

func TestSlotWidth(t *testing.T) {
	if (Field{Type: value.Int64}).SlotWidth() != 8 {
		t.Error("int slot width")
	}
	if (Field{Type: value.String, Width: 20}).SlotWidth() != 20 {
		t.Error("string slot width")
	}
}

func TestProject(t *testing.T) {
	s := MustNew(testFields())
	p, err := s.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Field(0).Name != "amount" || p.Field(1).Name != "id" {
		t.Errorf("Project = %v", p.Fields())
	}
	if _, err := s.Project([]int{5}); err == nil {
		t.Error("out-of-range projection accepted")
	}
}

func TestCheckRow(t *testing.T) {
	s := MustNew(testFields())
	good := []value.Value{value.NewInt(1), value.NewString("x"), value.NewFloat(2.5)}
	if err := s.CheckRow(good); err != nil {
		t.Errorf("CheckRow(good) = %v", err)
	}
	if err := s.CheckRow(good[:2]); err == nil {
		t.Error("short row accepted")
	}
	bad := []value.Value{value.NewInt(1), value.NewInt(2), value.NewFloat(2.5)}
	if err := s.CheckRow(bad); err == nil {
		t.Error("type-mismatched row accepted")
	}
}
