// Package schema describes table schemas: ordered, typed fields with
// fixed widths for secondary-storage row slots. The width of a string
// field bounds its stored length (CHAR-style), matching the fixed-width
// attribute encoding of the enterprise tables the paper analyzes.
package schema

import (
	"fmt"

	"tierdb/internal/value"
)

// Field is one attribute of a table.
type Field struct {
	// Name is the attribute name (unique within a schema).
	Name string
	// Type is the attribute's value type.
	Type value.Type
	// Width is the fixed slot width in bytes for String fields;
	// ignored (8) for numeric fields.
	Width int
}

// SlotWidth returns the field's fixed-width slot size in bytes.
func (f Field) SlotWidth() int { return value.FixedWidth(f.Type, f.Width) }

// Schema is an ordered list of fields.
type Schema struct {
	fields []Field
	index  map[string]int
}

// New builds a schema, validating field names and widths.
func New(fields []Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("schema: no fields")
	}
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("schema: field %d has empty name", i)
		}
		if _, dup := idx[f.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate field %q", f.Name)
		}
		if f.Type == value.String && f.Width <= 0 {
			return nil, fmt.Errorf("schema: string field %q needs positive width", f.Name)
		}
		idx[f.Name] = i
	}
	return &Schema{fields: fields, index: idx}, nil
}

// MustNew is New panicking on error; for statically known schemas.
func MustNew(fields []Field) *Schema {
	s, err := New(fields)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns field i.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of all fields.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// IndexOf returns the position of the named field, or -1.
func (s *Schema) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// RowWidth returns the summed fixed slot width of all fields.
func (s *Schema) RowWidth() int {
	w := 0
	for _, f := range s.fields {
		w += f.SlotWidth()
	}
	return w
}

// Project returns a new schema containing the given field positions, in
// order.
func (s *Schema) Project(cols []int) (*Schema, error) {
	fields := make([]Field, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(s.fields) {
			return nil, fmt.Errorf("schema: project index %d out of range (%d fields)", c, len(s.fields))
		}
		fields[i] = s.fields[c]
	}
	return New(fields)
}

// CheckRow validates that a row matches the schema's arity and types.
func (s *Schema) CheckRow(row []value.Value) error {
	if len(row) != len(s.fields) {
		return fmt.Errorf("schema: row has %d values, want %d", len(row), len(s.fields))
	}
	for i, v := range row {
		if v.Type() != s.fields[i].Type {
			return fmt.Errorf("schema: field %q: value type %s, want %s", s.fields[i].Name, v.Type(), s.fields[i].Type)
		}
	}
	return nil
}
