package tpcc

import (
	"testing"

	"tierdb/internal/exec"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

func smallConfig() Config {
	return Config{Warehouses: 2, DistrictsPerWarehouse: 3, OrdersPerDistrict: 9, Items: 100, Seed: 1}
}

func TestGenerateOrderLinesShape(t *testing.T) {
	cfg := smallConfig()
	rows := GenerateOrderLines(cfg)
	// 2 warehouses x 3 districts x 9 orders x 5..15 lines.
	if len(rows) < 2*3*9*5 || len(rows) > 2*3*9*15 {
		t.Fatalf("rows = %d, outside [270, 810]", len(rows))
	}
	sawUndelivered := false
	sawDelivered := false
	for _, r := range rows {
		if len(r) != 10 {
			t.Fatalf("row arity = %d", len(r))
		}
		w := r[OLWarehouseID].Int()
		if w < 1 || w > 2 {
			t.Fatalf("warehouse = %d", w)
		}
		q := r[OLQuantity].Int()
		if q < 1 || q > 10 {
			t.Fatalf("quantity = %d", q)
		}
		if r[OLDeliveryDate].Int() == undelivered {
			sawUndelivered = true
		} else {
			sawDelivered = true
		}
	}
	if !sawUndelivered || !sawDelivered {
		t.Error("expected a mix of delivered and undelivered lines")
	}
	// Deterministic per seed.
	again := GenerateOrderLines(cfg)
	if len(again) != len(rows) {
		t.Error("generation not deterministic")
	}
}

func TestLayoutForBudget(t *testing.T) {
	l02 := LayoutForBudget(0.2)
	mrcs := 0
	for _, in := range l02 {
		if in {
			mrcs++
		}
	}
	if mrcs != 4 {
		t.Errorf("w=0.2 MRCs = %d, want 4 (PK)", mrcs)
	}
	l04 := LayoutForBudget(0.4)
	if !l04[OLDeliveryDate] || !l04[OLQuantity] {
		t.Error("w=0.4 should add ol_delivery_d and ol_quantity")
	}
	if l02[OLQuantity] {
		t.Error("w=0.2 should keep ol_quantity tiered")
	}
}

func buildAll(t *testing.T, layout []bool) (*table.Table, *exec.Executor) {
	t.Helper()
	tbl, err := BuildOrderLine(smallConfig(), table.Options{}, layout)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, exec.New(tbl, exec.Options{})
}

func TestDeliveryTransaction(t *testing.T) {
	for _, layout := range [][]bool{nil, LayoutForBudget(0.2)} {
		tbl, e := buildAll(t, layout)
		sched := NewScheduler(smallConfig())
		before := countUndelivered(t, tbl, 1, 1)
		if before == 0 {
			t.Fatal("no undelivered orders generated")
		}
		amount, err := Delivery(tbl, e, sched, 1, 1, 20180101)
		if err != nil {
			t.Fatal(err)
		}
		if amount <= 0 {
			t.Error("delivery returned zero amount")
		}
		after := countUndelivered(t, tbl, 1, 1)
		if after >= before {
			t.Errorf("undelivered lines: %d -> %d, expected decrease", before, after)
		}
		// Repeated deliveries eventually drain the district.
		for i := 0; i < 10; i++ {
			if _, err := Delivery(tbl, e, sched, 1, 1, 20180102); err != nil {
				t.Fatal(err)
			}
		}
		if n := countUndelivered(t, tbl, 1, 1); n != 0 {
			t.Errorf("undelivered lines after draining = %d", n)
		}
		// A drained district delivers zero without error.
		amount, err = Delivery(tbl, e, sched, 1, 1, 20180103)
		if err != nil || amount != 0 {
			t.Errorf("drained delivery = %g, %v", amount, err)
		}
	}
}

func TestSchedulerTracksDistrictsIndependently(t *testing.T) {
	sched := NewScheduler(smallConfig())
	first := sched.pop(1, 1)
	if first != 9*2/3+1 {
		t.Errorf("first undelivered order = %d, want %d", first, 9*2/3+1)
	}
	if sched.pop(1, 2) != first {
		t.Error("district 2 should start at the same order id")
	}
	if sched.pop(1, 1) != first+1 {
		t.Error("district 1 should advance")
	}
	if sched.pop(99, 99) != -1 {
		t.Error("unknown district should be drained")
	}
}

// countUndelivered counts visible undelivered lines of a district.
func countUndelivered(t *testing.T, tbl *table.Table, w, d int) int {
	t.Helper()
	e := exec.New(tbl, exec.Options{})
	res, err := e.Run(exec.Query{Predicates: []exec.Predicate{
		{Column: OLWarehouseID, Op: exec.Eq, Value: value.NewInt(int64(w))},
		{Column: OLDistrictID, Op: exec.Eq, Value: value.NewInt(int64(d))},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, id := range res.IDs {
		dd, err := tbl.GetValue(id, OLDeliveryDate)
		if err != nil {
			t.Fatal(err)
		}
		if dd.Int() == undelivered {
			n++
		}
	}
	return n
}

func TestCHQuery19ConsistentAcrossLayouts(t *testing.T) {
	var want float64
	for i, layout := range [][]bool{nil, LayoutForBudget(0.4), LayoutForBudget(0.2)} {
		tbl, e := buildAll(t, layout)
		got, err := CHQuery19(tbl, e, 1, 3, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got <= 0 {
			t.Fatal("query 19 revenue is zero")
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("layout %d: revenue %g != %g (results must not depend on placement)", i, got, want)
		}
	}
}

func TestCHQuery19WithItemJoin(t *testing.T) {
	tbl, e := buildAll(t, nil)
	items, err := BuildItems(smallConfig(), table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ie := exec.New(items, exec.Options{})
	joinMap, err := ItemJoinMap(items, ie, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CHQuery19(tbl, e, 1, 1, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := CHQuery19(tbl, e, 1, 1, 10, joinMap)
	if err != nil {
		t.Fatal(err)
	}
	if joined <= 0 || joined >= full {
		t.Errorf("joined revenue %g, full %g; join should restrict", joined, full)
	}
}

func TestItemTable(t *testing.T) {
	items, err := BuildItems(Config{Items: 50}, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if items.MainRows() != 50 {
		t.Errorf("items = %d", items.MainRows())
	}
	v, err := items.GetValue(0, 0)
	if err != nil || v.Int() != 1 {
		t.Errorf("i_id(0) = %v, %v", v, err)
	}
}

func TestRecordWorkloadFeedsOptimizer(t *testing.T) {
	// The recorded plan mix must make the optimizer select the PK
	// columns first, as the paper reports.
	tbl, _ := buildAll(t, nil)
	pcAdapter := &fakeCache{}
	RecordWorkload(pcAdapter, 1000, 10)
	if len(pcAdapter.plans) < 4 {
		t.Errorf("recorded %d plans", len(pcAdapter.plans))
	}
	_ = tbl
}

type fakeCache struct {
	plans []struct {
		cols []int
		n    float64
	}
}

func (f *fakeCache) RecordN(cols []int, n float64) {
	f.plans = append(f.plans, struct {
		cols []int
		n    float64
	}{append([]int(nil), cols...), n})
}

func TestCHQuery1GroupsByLineNumber(t *testing.T) {
	var want map[string]float64
	for i, layout := range [][]bool{nil, LayoutForBudget(0.2)} {
		tbl, e := buildAll(t, layout)
		groups, err := CHQuery1(tbl, e, 20170000)
		if err != nil {
			t.Fatal(err)
		}
		if len(groups) < 5 {
			t.Fatalf("groups = %d, want >= 5 line numbers", len(groups))
		}
		got := make(map[string]float64, len(groups))
		for k, v := range groups {
			got[k.String()] = v
		}
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("layout changed group count: %d vs %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("group %s: %g != %g across layouts", k, got[k], v)
			}
		}
	}
}

func TestCHQuery6RevenueWindow(t *testing.T) {
	tbl, e := buildAll(t, LayoutForBudget(0.2))
	full, err := CHQuery6(tbl, e, 20170000, 20180000, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if full <= 0 {
		t.Fatal("no revenue in full window")
	}
	narrow, err := CHQuery6(tbl, e, 20170000, 20180000, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if narrow <= 0 || narrow >= full {
		t.Errorf("narrow quantity window revenue %g, full %g", narrow, full)
	}
	// Undelivered-only window is empty (delivery date 0 excluded).
	empty, err := CHQuery6(tbl, e, 20190000, 20200000, 1, 10)
	if err != nil || empty != 0 {
		t.Errorf("future window revenue = %g, %v", empty, err)
	}
}
