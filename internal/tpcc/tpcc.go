// Package tpcc implements the TPC-C substrate of the paper's end-to-end
// evaluation (Section IV, Table III): the ORDERLINE table (the largest
// of the benchmark), the delivery transaction whose order lines are
// updated through the DRAM-resident delta, and a CH-benCHmark query #19
// equivalent whose range predicate on ol_quantity lands on a tiered
// column under tight DRAM budgets.
package tpcc

import (
	"fmt"
	"math/rand"

	"tierdb/internal/exec"
	"tierdb/internal/schema"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// ORDERLINE column positions.
const (
	OLOrderID = iota
	OLDistrictID
	OLWarehouseID
	OLNumber
	OLItemID
	OLSupplyWarehouseID
	OLDeliveryDate
	OLQuantity
	OLAmount
	OLDistInfo
)

// PrimaryKeyColumns are the four ORDERLINE attributes the paper's
// allocation model keeps as MRCs under w = 0.2.
var PrimaryKeyColumns = []int{OLOrderID, OLDistrictID, OLWarehouseID, OLNumber}

// OrderLineSchema returns the 10-attribute ORDERLINE schema.
func OrderLineSchema() *schema.Schema {
	return schema.MustNew([]schema.Field{
		{Name: "ol_o_id", Type: value.Int64},
		{Name: "ol_d_id", Type: value.Int64},
		{Name: "ol_w_id", Type: value.Int64},
		{Name: "ol_number", Type: value.Int64},
		{Name: "ol_i_id", Type: value.Int64},
		{Name: "ol_supply_w_id", Type: value.Int64},
		{Name: "ol_delivery_d", Type: value.Int64},
		{Name: "ol_quantity", Type: value.Int64},
		{Name: "ol_amount", Type: value.Float64},
		{Name: "ol_dist_info", Type: value.String, Width: 24},
	})
}

// Config sizes the generated TPC-C data. The paper runs scale factor
// 3000 (300 M order lines); simulations scale down while keeping the
// same shape.
type Config struct {
	// Warehouses is the scale factor W.
	Warehouses int
	// DistrictsPerWarehouse defaults to TPC-C's 10.
	DistrictsPerWarehouse int
	// OrdersPerDistrict defaults to 30 (TPC-C: 3000; scaled down).
	OrdersPerDistrict int
	// Items is the item-table cardinality (TPC-C: 100000; scaled).
	Items int
	// Seed makes generation reproducible.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.Warehouses == 0 {
		c.Warehouses = 4
	}
	if c.DistrictsPerWarehouse == 0 {
		c.DistrictsPerWarehouse = 10
	}
	if c.OrdersPerDistrict == 0 {
		c.OrdersPerDistrict = 30
	}
	if c.Items == 0 {
		c.Items = 1000
	}
}

// undelivered marks ol_delivery_d of not-yet-delivered order lines.
const undelivered = 0

// GenerateOrderLines produces the ORDERLINE rows for the configuration:
// 5-15 lines per order, the most recent third of each district's orders
// undelivered (as after TPC-C's initial load, where orders 2101-3000
// are undelivered).
func GenerateOrderLines(cfg Config) [][]value.Value {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows [][]value.Value
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= cfg.DistrictsPerWarehouse; d++ {
			for o := 1; o <= cfg.OrdersPerDistrict; o++ {
				lines := 5 + rng.Intn(11)
				delivered := o <= cfg.OrdersPerDistrict*2/3
				for l := 1; l <= lines; l++ {
					date := int64(undelivered)
					if delivered {
						date = int64(20170000 + rng.Intn(365))
					}
					rows = append(rows, []value.Value{
						value.NewInt(int64(o)),
						value.NewInt(int64(d)),
						value.NewInt(int64(w)),
						value.NewInt(int64(l)),
						value.NewInt(int64(1 + rng.Intn(cfg.Items))),
						value.NewInt(int64(w)),
						value.NewInt(date),
						value.NewInt(int64(1 + rng.Intn(10))), // quantity 1..10
						value.NewFloat(float64(rng.Intn(999999)) / 100),
						value.NewString(fmt.Sprintf("dist-%02d-%08d", d, rng.Intn(1e8))),
					})
				}
			}
		}
	}
	return rows
}

// BuildOrderLine creates, loads and tiers the ORDERLINE table. layout
// may be nil for all-DRAM.
func BuildOrderLine(cfg Config, opts table.Options, layout []bool) (*table.Table, error) {
	tbl, err := table.New("ORDERLINE", OrderLineSchema(), opts)
	if err != nil {
		return nil, err
	}
	if err := tbl.BulkAppend(GenerateOrderLines(cfg)); err != nil {
		return nil, err
	}
	if layout == nil {
		layout = make([]bool, OrderLineSchema().Len())
		for i := range layout {
			layout[i] = true
		}
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		return nil, err
	}
	return tbl, nil
}

// LayoutForBudget returns the ORDERLINE layout the paper reports for a
// relative DRAM budget w: the four primary-key columns for w = 0.2, and
// additionally ol_delivery_d and ol_quantity for w = 0.4 (Section IV-A).
func LayoutForBudget(w float64) []bool {
	layout := make([]bool, OrderLineSchema().Len())
	for _, c := range PrimaryKeyColumns {
		layout[c] = true
	}
	if w >= 0.4 {
		layout[OLDeliveryDate] = true
		layout[OLQuantity] = true
	}
	return layout
}

// Scheduler plays the role of TPC-C's NEW-ORDER table for the delivery
// transaction: per district it tracks the oldest undelivered order id,
// so delivery never scans a (possibly tiered) delivery-date column —
// matching the paper's observation that "no performance-critical path
// accesses tiered data" for TPC-C.
type Scheduler struct {
	next map[[2]int]int
	max  int
}

// NewScheduler initializes the delivery queue for freshly generated
// data: the most recent third of each district's orders is undelivered.
func NewScheduler(cfg Config) *Scheduler {
	cfg.setDefaults()
	s := &Scheduler{next: make(map[[2]int]int), max: cfg.OrdersPerDistrict}
	first := cfg.OrdersPerDistrict*2/3 + 1
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= cfg.DistrictsPerWarehouse; d++ {
			s.next[[2]int{w, d}] = first
		}
	}
	return s
}

// pop returns the oldest undelivered order id of the district, or -1.
func (s *Scheduler) pop(warehouse, district int) int {
	key := [2]int{warehouse, district}
	o, ok := s.next[key]
	if !ok || o > s.max {
		return -1
	}
	s.next[key] = o + 1
	return o
}

// Delivery runs one TPC-C delivery transaction for a (warehouse,
// district): pop the oldest undelivered order from the scheduler, fetch
// its lines via the MRC primary-key columns, stamp them with the
// delivery date, and sum their amounts. Lookups run on MRCs; updates
// flow through the delta — the path the paper reports as unaffected by
// tiering (1.02x at 80 % eviction).
func Delivery(tbl *table.Table, e *exec.Executor, sched *Scheduler, warehouse, district int, date int64) (float64, error) {
	order := sched.pop(warehouse, district)
	if order < 0 {
		return 0, nil // nothing to deliver
	}
	mgr := tbl.Manager()
	tx := mgr.Begin()
	abort := func(err error) (float64, error) {
		if aerr := mgr.Abort(tx); aerr != nil {
			return 0, fmt.Errorf("%w (abort failed: %v)", err, aerr)
		}
		return 0, err
	}

	res, err := e.Run(exec.Query{Predicates: []exec.Predicate{
		{Column: OLWarehouseID, Op: exec.Eq, Value: value.NewInt(int64(warehouse))},
		{Column: OLDistrictID, Op: exec.Eq, Value: value.NewInt(int64(district))},
		{Column: OLOrderID, Op: exec.Eq, Value: value.NewInt(int64(order))},
	}}, tx)
	if err != nil {
		return abort(err)
	}

	var amount float64
	for _, id := range res.IDs {
		row, err := e.Reconstruct(id)
		if err != nil {
			return abort(err)
		}
		amount += row[OLAmount].Float()
		row[OLDeliveryDate] = value.NewInt(date)
		if err := tbl.Update(tx, id, row); err != nil {
			return abort(err)
		}
	}
	if _, err := mgr.Commit(tx); err != nil {
		return 0, err
	}
	return amount, nil
}

// CHQuery19 runs the CH-benCHmark query #19 equivalent over ORDERLINE:
// revenue = sum(ol_amount) for lines of a warehouse whose item joins a
// filtered item set and whose quantity lies in [qlo, qhi]. With the
// paper's warehouse count, the quantity predicate qualifies ~5 % of a
// warehouse's lines and — under w = 0.2 — executes against a tiered
// column, the paper's 6.7x slowdown case.
func CHQuery19(tbl *table.Table, e *exec.Executor, warehouse int, qlo, qhi int64, items map[value.Value][]table.RowID) (float64, error) {
	res, err := e.Run(exec.Query{Predicates: []exec.Predicate{
		{Column: OLWarehouseID, Op: exec.Eq, Value: value.NewInt(int64(warehouse))},
		{Column: OLQuantity, Op: exec.Between, Value: value.NewInt(qlo), Hi: value.NewInt(qhi)},
	}}, nil)
	if err != nil {
		return 0, err
	}
	ids := res.IDs
	if items != nil {
		pairs, err := e.JoinProbe(OLItemID, ids, items)
		if err != nil {
			return 0, err
		}
		ids = ids[:0]
		for _, p := range pairs {
			ids = append(ids, p[0])
		}
	}
	return e.Sum(OLAmount, ids)
}

// ItemSchema returns the (scaled) TPC-C ITEM schema used as the join
// build side of CH query #19.
func ItemSchema() *schema.Schema {
	return schema.MustNew([]schema.Field{
		{Name: "i_id", Type: value.Int64},
		{Name: "i_price", Type: value.Float64},
		{Name: "i_data", Type: value.String, Width: 24},
	})
}

// BuildItems creates the ITEM table (always fully DRAM-resident; it is
// small and hot).
func BuildItems(cfg Config, opts table.Options) (*table.Table, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	tbl, err := table.New("ITEM", ItemSchema(), opts)
	if err != nil {
		return nil, err
	}
	rows := make([][]value.Value, cfg.Items)
	for i := range rows {
		rows[i] = []value.Value{
			value.NewInt(int64(i + 1)),
			value.NewFloat(float64(100+rng.Intn(9900)) / 100),
			value.NewString(fmt.Sprintf("item-%08d", rng.Intn(1e8))),
		}
	}
	if err := tbl.BulkAppend(rows); err != nil {
		return nil, err
	}
	if err := tbl.Merge(); err != nil {
		return nil, err
	}
	return tbl, nil
}

// ItemJoinMap builds the hash map over a subset of items (those matching
// CH-Q19's item filters; fraction selects the share kept).
func ItemJoinMap(items *table.Table, e *exec.Executor, fraction float64) (map[value.Value][]table.RowID, error) {
	n := items.MainRows()
	keep := int(float64(n) * fraction)
	if keep < 1 {
		keep = 1
	}
	ids := make([]table.RowID, 0, keep)
	for r := 0; r < n && len(ids) < keep; r++ {
		ids = append(ids, table.RowID(r))
	}
	return e.BuildJoinMap(0, ids)
}

// RecordWorkload registers the TPC-C + CH plan mix in a plan cache for
// the placement optimizer: deliveries filter the PK columns frequently,
// CH-Q19 adds warehouse + quantity filters at analytical (lower)
// frequency, matching the paper's observation that the model selects
// the four PK attributes first.
func RecordWorkload(pc interface{ RecordN([]int, float64) }, deliveries, chQueries float64) {
	pc.RecordN([]int{OLWarehouseID, OLDistrictID}, deliveries)
	pc.RecordN([]int{OLWarehouseID, OLDistrictID, OLOrderID, OLNumber}, deliveries/2)
	pc.RecordN([]int{OLOrderID, OLDistrictID, OLWarehouseID}, deliveries/2)
	pc.RecordN([]int{OLWarehouseID, OLQuantity}, chQueries)
	pc.RecordN([]int{OLItemID, OLWarehouseID, OLQuantity}, chQueries/2)
}

// CHQuery1 is the CH-benCHmark query #1 equivalent over ORDERLINE:
// per-line-number sums of quantity and amount for lines delivered after
// a cutoff date (grouped aggregation; in the paper's layouts the group
// key ol_number is a primary-key MRC while the aggregates may be
// tiered).
func CHQuery1(tbl *table.Table, e *exec.Executor, deliveredAfter int64) (map[value.Value]float64, error) {
	res, err := e.Run(exec.Query{Predicates: []exec.Predicate{
		{Column: OLDeliveryDate, Op: exec.Between,
			Value: value.NewInt(deliveredAfter), Hi: value.NewInt(1 << 40)},
	}}, nil)
	if err != nil {
		return nil, err
	}
	return e.GroupBySum(OLNumber, OLAmount, res.IDs)
}

// CHQuery6 is the CH-benCHmark query #6 equivalent: total revenue of
// lines with quantity in [qlo, qhi] delivered in a date window — two
// range predicates whose placement the budget decides.
func CHQuery6(tbl *table.Table, e *exec.Executor, dateLo, dateHi, qlo, qhi int64) (float64, error) {
	res, err := e.Run(exec.Query{Predicates: []exec.Predicate{
		{Column: OLDeliveryDate, Op: exec.Between, Value: value.NewInt(dateLo), Hi: value.NewInt(dateHi)},
		{Column: OLQuantity, Op: exec.Between, Value: value.NewInt(qlo), Hi: value.NewInt(qhi)},
	}}, nil)
	if err != nil {
		return 0, err
	}
	return e.Sum(OLAmount, res.IDs)
}
