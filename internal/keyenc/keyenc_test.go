package keyenc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tierdb/internal/value"
)

func mustEncode(t *testing.T, vs ...value.Value) []byte {
	t.Helper()
	b, err := Encode(vs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestIntOrdering(t *testing.T) {
	prop := func(a, b int64) bool {
		ea := mustEncodeQuick(value.NewInt(a))
		eb := mustEncodeQuick(value.NewInt(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func mustEncodeQuick(vs ...value.Value) []byte {
	b, err := Encode(vs)
	if err != nil {
		panic(err)
	}
	return b
}

func TestFloatOrdering(t *testing.T) {
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea := mustEncodeQuick(value.NewFloat(a))
		eb := mustEncodeQuick(value.NewFloat(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatSpecialValues(t *testing.T) {
	ordered := []float64{math.Inf(-1), -1e300, -1, -1e-300, 0, 1e-300, 1, 1e300, math.Inf(1)}
	for i := 1; i < len(ordered); i++ {
		a := mustEncodeQuick(value.NewFloat(ordered[i-1]))
		b := mustEncodeQuick(value.NewFloat(ordered[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("%g should encode before %g", ordered[i-1], ordered[i])
		}
	}
}

func TestStringOrdering(t *testing.T) {
	prop := func(a, b string) bool {
		ea := mustEncodeQuick(value.NewString(a))
		eb := mustEncodeQuick(value.NewString(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringWithZeroBytes(t *testing.T) {
	// "a\x00b" must sort between "a" and "a\x01".
	a := mustEncodeQuick(value.NewString("a"))
	azb := mustEncodeQuick(value.NewString("a\x00b"))
	a1 := mustEncodeQuick(value.NewString("a\x01"))
	if !(bytes.Compare(a, azb) < 0 && bytes.Compare(azb, a1) < 0) {
		t.Error("zero-byte escaping breaks ordering")
	}
}

func TestCompositeOrdering(t *testing.T) {
	// Tuple comparison: first field dominates; field boundaries never
	// bleed (("ab", "c") vs ("a", "bc")).
	cases := []struct {
		a, b []value.Value
		want int
	}{
		{
			[]value.Value{value.NewInt(1), value.NewString("z")},
			[]value.Value{value.NewInt(2), value.NewString("a")},
			-1,
		},
		{
			[]value.Value{value.NewString("ab"), value.NewString("c")},
			[]value.Value{value.NewString("a"), value.NewString("bc")},
			1,
		},
		{
			[]value.Value{value.NewInt(5), value.NewFloat(1.5)},
			[]value.Value{value.NewInt(5), value.NewFloat(1.5)},
			0,
		},
		{
			[]value.Value{value.NewInt(5), value.NewFloat(-2)},
			[]value.Value{value.NewInt(5), value.NewFloat(3)},
			-1,
		},
	}
	for i, c := range cases {
		got := bytes.Compare(mustEncodeQuick(c.a...), mustEncodeQuick(c.b...))
		if got != c.want {
			t.Errorf("case %d: Compare = %d, want %d", i, got, c.want)
		}
	}
}

func TestCompositeRandomTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tupleCompare := func(a, b []value.Value) int {
		for i := range a {
			if c := a[i].Compare(b[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	gen := func() []value.Value {
		return []value.Value{
			value.NewInt(int64(rng.Intn(5) - 2)),
			value.NewString(string(rune('a' + rng.Intn(3)))),
			value.NewFloat(float64(rng.Intn(5)) - 2),
		}
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := gen(), gen()
		want := tupleCompare(a, b)
		got := bytes.Compare(mustEncodeQuick(a...), mustEncodeQuick(b...))
		if (want < 0) != (got < 0) || (want > 0) != (got > 0) {
			t.Fatalf("tuples %v vs %v: tuple compare %d, byte compare %d", a, b, want, got)
		}
	}
}

func TestEncodeString(t *testing.T) {
	s, err := EncodeString([]value.Value{value.NewInt(1)})
	if err != nil || len(s) != 8 {
		t.Errorf("EncodeString = %q, %v", s, err)
	}
}

func TestUnsupportedType(t *testing.T) {
	var zero value.Value // invalid/zero value has type Int64? verify via explicit bad type
	_ = zero
	bad := value.Value{}
	// The zero Value has Type Int64 and encodes fine; construct an
	// impossible type via the exported surface is not possible, so we
	// just confirm Encode succeeds for all public constructors.
	if _, err := Encode([]value.Value{bad}); err != nil {
		t.Errorf("zero value should encode as int64 zero: %v", err)
	}
	_ = mustEncode
}
