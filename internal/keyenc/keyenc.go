// Package keyenc provides order-preserving ("memcomparable") byte
// encodings of typed values and composite keys: for any two keys a, b,
// bytes.Compare(Encode(a), Encode(b)) equals the tuple comparison of a
// and b. Composite indexes (the paper mentions Hyrise's multi-column
// composite keys) store these encodings as string keys in the ordinary
// B+-tree, so a single tree handles any key arity.
package keyenc

import (
	"encoding/binary"
	"fmt"
	"math"

	"tierdb/internal/value"
)

// AppendValue appends the order-preserving encoding of v to dst.
//
//   - Int64: big-endian with the sign bit flipped, so negative values
//     sort before positive ones.
//   - Float64: IEEE-754 bits, sign-flipped for positives and fully
//     inverted for negatives (the standard sortable-double transform).
//   - String: raw bytes with 0x00 escaped as 0x00 0xFF and terminated
//     by 0x00 0x01, so shorter strings sort before their extensions and
//     field boundaries never bleed into each other.
func AppendValue(dst []byte, v value.Value) ([]byte, error) {
	switch v.Type() {
	case value.Int64:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.Int())^(1<<63))
		return append(dst, buf[:]...), nil
	case value.Float64:
		f := v.Float()
		if f == 0 {
			f = 0 // normalize -0 to +0 so equal values encode equally
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: invert everything
		} else {
			bits |= 1 << 63 // positive: set sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...), nil
	case value.String:
		for i := 0; i < len(v.Str()); i++ {
			b := v.Str()[i]
			if b == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, b)
			}
		}
		return append(dst, 0x00, 0x01), nil
	default:
		return nil, fmt.Errorf("keyenc: unsupported type %s", v.Type())
	}
}

// Encode returns the order-preserving encoding of a composite key.
func Encode(key []value.Value) ([]byte, error) {
	var out []byte
	for _, v := range key {
		var err error
		out, err = AppendValue(out, v)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodeString is Encode returning a string (usable as a B+-tree key of
// type value.String).
func EncodeString(key []value.Value) (string, error) {
	b, err := Encode(key)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
