package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func bruteForce(items []Item, capacity int64) float64 {
	best := math.Inf(-1)
	n := len(items)
	for mask := 0; mask < 1<<n; mask++ {
		var wgt int64
		var val float64
		ok := true
		for i := 0; i < n; i++ {
			taken := mask&(1<<i) != 0
			if items[i].Mandatory && !taken {
				ok = false
				break
			}
			if taken {
				wgt += items[i].Weight
				val += items[i].Value
			}
		}
		if ok && wgt <= capacity && val > best {
			best = val
		}
	}
	return best
}

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Value:  rng.Float64()*20 - 2, // some negative values
			Weight: int64(rng.Intn(50) + 1),
		}
	}
	return items
}

func TestKnapsackMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(12) + 1
		items := randomItems(rng, n)
		capacity := int64(rng.Intn(200))
		want := bruteForce(items, capacity)
		got, err := Knapsack01(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Value-want) > 1e-9 {
			t.Fatalf("trial %d: B&B value %g, brute force %g (items=%v cap=%d)", trial, got.Value, want, items, capacity)
		}
		if got.Weight > capacity {
			t.Fatalf("trial %d: weight %d exceeds capacity %d", trial, got.Weight, capacity)
		}
		// The reported take vector must reproduce the reported value.
		var val float64
		var wgt int64
		for i, taken := range got.Take {
			if taken {
				val += items[i].Value
				wgt += items[i].Weight
			}
		}
		if math.Abs(val-got.Value) > 1e-9 || wgt != got.Weight {
			t.Fatalf("trial %d: take vector inconsistent: %g/%d vs %g/%d", trial, val, wgt, got.Value, got.Weight)
		}
	}
}

func TestKnapsackDPMatchesBranchAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(20) + 1
		items := randomItems(rng, n)
		capacity := int64(rng.Intn(300))
		bb, err := Knapsack01(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := KnapsackDP(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bb.Value-dp.Value) > 1e-9 {
			t.Fatalf("trial %d: B&B %g vs DP %g", trial, bb.Value, dp.Value)
		}
	}
}

func TestKnapsackMandatoryItems(t *testing.T) {
	items := []Item{
		{Value: 1, Weight: 10, Mandatory: true},
		{Value: 100, Weight: 10},
		{Value: 50, Weight: 5},
	}
	res, err := Knapsack01(items, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Take[0] {
		t.Error("mandatory item not taken")
	}
	// Remaining capacity 6 fits only the weight-5 item.
	if res.Take[1] || !res.Take[2] {
		t.Errorf("take = %v, want [true false true]", res.Take)
	}
	if res.Value != 51 {
		t.Errorf("value = %g, want 51", res.Value)
	}
}

func TestKnapsackMandatoryExceedsCapacity(t *testing.T) {
	items := []Item{{Value: 1, Weight: 10, Mandatory: true}}
	if _, err := Knapsack01(items, 5); err != ErrBudgetExceeded {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := KnapsackDP(items, 5); err != ErrBudgetExceeded {
		t.Errorf("DP err = %v, want ErrBudgetExceeded", err)
	}
}

func TestKnapsackNegativeValueNeverTaken(t *testing.T) {
	items := []Item{
		{Value: -5, Weight: 1},
		{Value: 3, Weight: 1},
	}
	res, err := Knapsack01(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Take[0] {
		t.Error("negative-value item taken")
	}
	if res.Value != 3 {
		t.Errorf("value = %g, want 3", res.Value)
	}
}

func TestKnapsackRejectsNegativeWeight(t *testing.T) {
	if _, err := Knapsack01([]Item{{Value: 1, Weight: -1}}, 10); err == nil {
		t.Error("accepted negative weight")
	}
	if _, err := KnapsackDP([]Item{{Value: 1, Weight: -1}}, 10); err == nil {
		t.Error("DP accepted negative weight")
	}
}

func TestKnapsackEmptyAndZeroCapacity(t *testing.T) {
	res, err := Knapsack01(nil, 100)
	if err != nil || res.Value != 0 || res.Weight != 0 {
		t.Errorf("empty instance: %v %v", res, err)
	}
	res, err = Knapsack01([]Item{{Value: 5, Weight: 1}}, 0)
	if err != nil || res.Value != 0 {
		t.Errorf("zero capacity: %v %v", res, err)
	}
}

func TestKnapsackZeroWeightPositiveValueAlwaysTaken(t *testing.T) {
	res, err := Knapsack01([]Item{{Value: 5, Weight: 0}, {Value: 2, Weight: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Take[0] || res.Take[1] {
		t.Errorf("take = %v, want [true false]", res.Take)
	}
}

// Property: the B&B solution is never worse than a random feasible
// subset.
func TestKnapsackDominatesRandomSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(15) + 1
		items := randomItems(r, n)
		capacity := int64(r.Intn(200))
		res, err := Knapsack01(items, capacity)
		if err != nil {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			var wgt int64
			var val float64
			for i := range items {
				if rng.Intn(2) == 0 {
					wgt += items[i].Weight
					val += items[i].Value
				}
			}
			if wgt <= capacity && val > res.Value+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
