// Package solver provides exact solvers for the 0/1 knapsack-shaped
// integer programs that arise in column selection. The paper solves its
// ILP with MOSEK; this package replaces the external solver with a
// branch-and-bound search using the fractional (LP-relaxation) bound,
// which is exact for the same problem class.
package solver

import (
	"errors"
	"math"
	"sort"
)

// ErrBudgetExceeded is returned when mandatory items alone exceed the
// capacity.
var ErrBudgetExceeded = errors.New("solver: mandatory items exceed capacity")

// Item is one candidate of a 0/1 knapsack instance.
type Item struct {
	// Value is the profit of taking the item. Items with non-positive
	// value are never taken (taking them cannot improve the objective).
	Value float64
	// Weight is the capacity the item consumes; must be non-negative.
	Weight int64
	// Mandatory forces the item into the solution (e.g. pinned
	// columns); its weight is charged against the capacity first.
	Mandatory bool
}

// Result is the outcome of a knapsack solve.
type Result struct {
	// Take reports for every input item whether it is part of the
	// optimal solution.
	Take []bool
	// Value is the summed value of taken items.
	Value float64
	// Weight is the summed weight of taken items.
	Weight int64
	// Nodes is the number of branch-and-bound nodes explored; useful
	// for reporting solver effort (paper, Table II).
	Nodes int64
	// Optimal reports whether optimality was proven. It is false only
	// when the node limit was exhausted on a pathological instance, in
	// which case Take holds the best solution found (never worse than
	// the greedy-fill heuristic).
	Optimal bool
}

// DefaultNodeLimit bounds the branch-and-bound search (a backstop for
// pathologically correlated instances; ~seconds of work). Exceeding it
// yields the incumbent with Optimal=false instead of hanging.
const DefaultNodeLimit = 200_000_000

// min64 returns the smaller of two int64 values.
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Knapsack01 solves max sum(value_i * x_i) s.t. sum(weight_i * x_i) <=
// capacity exactly. It runs branch and bound over items sorted by value
// density with the fractional relaxation as upper bound, which solves
// even large instances quickly when the density ordering is informative
// (as it is for column selection, cf. paper Section III-E).
func Knapsack01(items []Item, capacity int64) (Result, error) {
	return Knapsack01Opts(items, capacity, Options{})
}

// Options tunes the branch-and-bound search.
type Options struct {
	// NodeLimit bounds the search; 0 selects DefaultNodeLimit.
	NodeLimit int64
	// RelativeGap is the relative MIP optimality gap: branches whose
	// bound improves the incumbent by less than RelativeGap*incumbent
	// are pruned. 0 means exact. Commercial solvers default to a
	// nonzero gap (MOSEK: 1e-4); column selection uses 1e-6.
	RelativeGap float64
}

// Knapsack01Opts is Knapsack01 with explicit search options.
func Knapsack01Opts(items []Item, capacity int64, opts Options) (Result, error) {
	nodeLimit := opts.NodeLimit
	if nodeLimit <= 0 {
		nodeLimit = DefaultNodeLimit
	}
	n := len(items)
	take := make([]bool, n)
	var mandatoryWeight int64
	var mandatoryValue float64
	for i, it := range items {
		if it.Weight < 0 {
			return Result{}, errors.New("solver: negative item weight")
		}
		if it.Mandatory {
			take[i] = true
			mandatoryWeight += it.Weight
			mandatoryValue += it.Value
		}
	}
	if mandatoryWeight > capacity {
		return Result{}, ErrBudgetExceeded
	}

	// Free items with positive value, sorted by descending density.
	type cand struct {
		idx     int
		value   float64
		weight  int64
		density float64
	}
	cands := make([]cand, 0, n)
	for i, it := range items {
		if it.Mandatory || it.Value <= 0 {
			continue
		}
		d := math.Inf(1)
		if it.Weight > 0 {
			d = it.Value / float64(it.Weight)
		}
		cands = append(cands, cand{idx: i, value: it.Value, weight: it.Weight, density: d})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].density != cands[b].density {
			return cands[a].density > cands[b].density
		}
		return cands[a].idx < cands[b].idx
	})

	remaining := capacity - mandatoryWeight
	cur := make([]bool, len(cands))

	var nodes int64
	// The incumbent is stored as a decided prefix plus a greedy-fill
	// suffix marker: the best solution seen takes cur[:bestK] as
	// decided and greedily fills from bestK with bestCap capacity.
	bestPrefix := make([]bool, len(cands))
	bestK := 0
	bestCap := remaining

	// Suffix aggregates let bound() shortcut: if every remaining item
	// fits, the bound is integral; the fill walk stops once no
	// remaining item can fit.
	suffixWeight := make([]int64, len(cands)+1)
	suffixValue := make([]float64, len(cands)+1)
	suffixMinWeight := make([]int64, len(cands)+1)
	suffixMinWeight[len(cands)] = math.MaxInt64
	for k := len(cands) - 1; k >= 0; k-- {
		suffixWeight[k] = suffixWeight[k+1] + cands[k].weight
		suffixValue[k] = suffixValue[k+1] + cands[k].value
		suffixMinWeight[k] = min64(suffixMinWeight[k+1], cands[k].weight)
	}

	// bound computes an upper bound for completing the solution from
	// item k with capLeft capacity, plus the value of the greedy-fill
	// integral completion. The bound is the minimum of the fractional
	// (Dantzig) bound and the Martello-Toth U2 bound; U2 is much
	// tighter when the critical item is large (the dominant-column
	// structure of ERP workloads), and the greedy-fill value
	// strengthens the incumbent at every node — together they keep
	// correlated instances tractable.
	bound := func(k int, capLeft int64) (ub, fill float64) {
		if suffixWeight[k] <= capLeft {
			v := suffixValue[k]
			return v, v // everything fits: integral bound
		}
		var prefix float64 // value of items taken before the critical one
		var prevDensity float64
		havePrev := false
		fillCap := capLeft
		critical := -1
		j := k
		for ; j < len(cands); j++ {
			c := cands[j]
			if suffixWeight[j] <= capLeft {
				prefix += suffixValue[j]
				fill += suffixValue[j]
				// All remaining fit after the prefix: bound integral.
				return prefix, fill
			}
			if c.weight <= capLeft {
				prefix += c.value
				capLeft -= c.weight
				fill += c.value
				fillCap -= c.weight
				if c.weight > 0 {
					prevDensity = c.value / float64(c.weight)
					havePrev = true
				}
				continue
			}
			critical = j
			break
		}
		if critical < 0 {
			return prefix, fill
		}
		cs := cands[critical]
		cPrime := float64(capLeft)
		dantzig := prefix + cs.value*cPrime/float64(cs.weight)
		// U2, branch "skip critical": fill the residual capacity at the
		// best following density.
		b0 := 0.0
		for j := critical + 1; j < len(cands); j++ {
			if cands[j].weight > 0 {
				b0 = cPrime * cands[j].value / float64(cands[j].weight)
				break
			}
		}
		// U2, branch "take critical": pay the overflow back at the best
		// preceding density (valid since densities are non-increasing).
		b1 := dantzig - prefix // fallback: Dantzig share of the item
		if havePrev {
			b1 = cs.value - (float64(cs.weight)-cPrime)*prevDensity
		}
		u2 := prefix + math.Max(b0, b1)
		ub = math.Min(dantzig, u2)

		// Greedy-fill completion continues past the critical item.
		for j := critical; j < len(cands); j++ {
			if fillCap < suffixMinWeight[j] {
				break // nothing further fits
			}
			if c := cands[j]; c.weight <= fillCap {
				fill += c.value
				fillCap -= c.weight
			}
		}
		return ub, fill
	}

	// Pruning tolerance: values are floats aggregated from many terms,
	// so near-ties are common; pruning within a relative epsilon keeps
	// the search from exploring exponentially many equal-value
	// branches while staying exact up to floating-point noise.
	epsFor := func(v float64) float64 {
		rel := 1e-9
		if opts.RelativeGap > rel {
			rel = opts.RelativeGap
		}
		e := rel * math.Abs(v)
		if e < 1e-12 {
			e = 1e-12
		}
		return e
	}
	var bestValue float64 = -1
	var dfs func(k int, capLeft int64, val float64)
	dfs = func(k int, capLeft int64, val float64) {
		if nodes >= nodeLimit {
			return
		}
		nodes++
		frac, fill := bound(k, capLeft)
		if val+fill > bestValue+epsFor(bestValue) {
			bestValue = val + fill
			copy(bestPrefix, cur[:k])
			bestK, bestCap = k, capLeft
		}
		if val+frac <= bestValue+epsFor(bestValue) {
			return
		}
		if k == len(cands) {
			return
		}
		c := cands[k]
		if c.weight <= capLeft {
			cur[k] = true
			dfs(k+1, capLeft-c.weight, val+c.value)
			cur[k] = false
		}
		dfs(k+1, capLeft, val)
	}
	dfs(0, remaining, 0)

	// Reconstruct the incumbent: decided prefix + greedy fill.
	best := make([]bool, len(cands))
	copy(best, bestPrefix[:bestK])
	fillCap := bestCap
	for k := bestK; k < len(cands); k++ {
		if cands[k].weight <= fillCap {
			best[k] = true
			fillCap -= cands[k].weight
		}
	}

	res := Result{Take: take, Value: mandatoryValue, Weight: mandatoryWeight, Nodes: nodes, Optimal: nodes < nodeLimit}
	for i, taken := range best {
		if taken {
			res.Take[cands[i].idx] = true
			res.Weight += cands[i].weight
			res.Value += cands[i].value
		}
	}
	return res, nil
}

// KnapsackDP solves the same problem by dynamic programming over integer
// weights. It is exponential in the bit width of the capacity and only
// intended as a cross-check oracle in tests; capacity must be modest.
func KnapsackDP(items []Item, capacity int64) (Result, error) {
	if capacity < 0 {
		return Result{}, errors.New("solver: negative capacity")
	}
	var mandatoryWeight int64
	var mandatoryValue float64
	for _, it := range items {
		if it.Weight < 0 {
			return Result{}, errors.New("solver: negative item weight")
		}
		if it.Mandatory {
			mandatoryWeight += it.Weight
			mandatoryValue += it.Value
		}
	}
	if mandatoryWeight > capacity {
		return Result{}, ErrBudgetExceeded
	}
	cap := int(capacity - mandatoryWeight)
	// value[w] = best value at weight exactly <= w; choice bitmap for
	// reconstruction.
	value := make([]float64, cap+1)
	taken := make([][]bool, len(items))
	for i, it := range items {
		taken[i] = make([]bool, cap+1)
		if it.Mandatory || it.Value <= 0 || it.Weight > int64(cap) {
			continue
		}
		wgt := int(it.Weight)
		for w := cap; w >= wgt; w-- {
			if v := value[w-wgt] + it.Value; v > value[w] {
				value[w] = v
				taken[i][w] = true
			}
		}
	}
	res := Result{Take: make([]bool, len(items)), Value: mandatoryValue + value[cap], Weight: mandatoryWeight}
	w := cap
	for i := len(items) - 1; i >= 0; i-- {
		if items[i].Mandatory {
			res.Take[i] = true
			continue
		}
		if w >= 0 && taken[i][w] {
			res.Take[i] = true
			res.Weight += items[i].Weight
			w -= int(items[i].Weight)
		}
	}
	return res, nil
}
