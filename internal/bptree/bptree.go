// Package bptree implements an in-memory B+-tree mapping values to row
// positions. The delta partition uses it for fast value retrievals over
// its unsorted dictionary (paper Section II), and tables use it as the
// DRAM-resident single-column index structure that query execution
// prefers over scans.
package bptree

import (
	"tierdb/internal/value"
)

// fanout is the maximum number of keys per node.
const fanout = 64

// Tree is a B+-tree from value.Value keys to lists of row positions.
// It supports duplicate insertions (positions accumulate per key). The
// zero value is not usable; call New. Not safe for concurrent mutation;
// concurrent readers are safe between mutations.
type Tree struct {
	typ  value.Type
	root node
	size int // distinct keys
}

type node interface {
	isLeaf() bool
}

type innerNode struct {
	keys     []value.Value // separator keys; len(children) == len(keys)+1
	children []node
}

func (*innerNode) isLeaf() bool { return false }

type leafNode struct {
	keys []value.Value
	vals [][]uint32
	next *leafNode
}

func (*leafNode) isLeaf() bool { return true }

// New returns an empty tree for keys of the given type.
func New(typ value.Type) *Tree {
	return &Tree{typ: typ, root: &leafNode{}}
}

// Type returns the key type.
func (t *Tree) Type() value.Type { return t.typ }

// Len returns the number of distinct keys.
func (t *Tree) Len() int { return t.size }

// Insert adds position pos under key k.
func (t *Tree) Insert(k value.Value, pos uint32) {
	newChild, sep := t.insert(t.root, k, pos)
	if newChild != nil {
		t.root = &innerNode{
			keys:     []value.Value{sep},
			children: []node{t.root, newChild},
		}
	}
}

// insert descends into n; on split it returns the new right sibling and
// its separator key.
func (t *Tree) insert(n node, k value.Value, pos uint32) (node, value.Value) {
	if leaf, ok := n.(*leafNode); ok {
		i := lowerBound(leaf.keys, k)
		if i < len(leaf.keys) && leaf.keys[i].Equal(k) {
			leaf.vals[i] = append(leaf.vals[i], pos)
			return nil, value.Value{}
		}
		leaf.keys = append(leaf.keys, value.Value{})
		leaf.vals = append(leaf.vals, nil)
		copy(leaf.keys[i+1:], leaf.keys[i:])
		copy(leaf.vals[i+1:], leaf.vals[i:])
		leaf.keys[i] = k
		leaf.vals[i] = []uint32{pos}
		t.size++
		if len(leaf.keys) <= fanout {
			return nil, value.Value{}
		}
		// Split.
		mid := len(leaf.keys) / 2
		right := &leafNode{
			keys: append([]value.Value(nil), leaf.keys[mid:]...),
			vals: append([][]uint32(nil), leaf.vals[mid:]...),
			next: leaf.next,
		}
		leaf.keys = leaf.keys[:mid]
		leaf.vals = leaf.vals[:mid]
		leaf.next = right
		return right, right.keys[0]
	}

	in := n.(*innerNode)
	ci := upperBound(in.keys, k)
	newChild, sep := t.insert(in.children[ci], k, pos)
	if newChild == nil {
		return nil, value.Value{}
	}
	in.keys = append(in.keys, value.Value{})
	in.children = append(in.children, nil)
	copy(in.keys[ci+1:], in.keys[ci:])
	copy(in.children[ci+2:], in.children[ci+1:])
	in.keys[ci] = sep
	in.children[ci+1] = newChild
	if len(in.keys) <= fanout {
		return nil, value.Value{}
	}
	mid := len(in.keys) / 2
	sepUp := in.keys[mid]
	right := &innerNode{
		keys:     append([]value.Value(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid]
	in.children = in.children[:mid+1]
	return right, sepUp
}

// Lookup returns the positions stored under k (nil if absent).
func (t *Tree) Lookup(k value.Value) []uint32 {
	leaf, i := t.findLeaf(k)
	if i < len(leaf.keys) && leaf.keys[i].Equal(k) {
		return leaf.vals[i]
	}
	return nil
}

// Range calls fn for every key in [lo, hi] in ascending order with its
// positions; fn returning false stops the iteration.
func (t *Tree) Range(lo, hi value.Value, fn func(k value.Value, positions []uint32) bool) {
	leaf, i := t.findLeaf(lo)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if leaf.keys[i].Compare(hi) > 0 {
				return
			}
			if !fn(leaf.keys[i], leaf.vals[i]) {
				return
			}
		}
		leaf = leaf.next
		i = 0
	}
}

// findLeaf locates the leaf that would contain k and the lower-bound
// index of k within it.
func (t *Tree) findLeaf(k value.Value) (*leafNode, int) {
	n := t.root
	for {
		if leaf, ok := n.(*leafNode); ok {
			return leaf, lowerBound(leaf.keys, k)
		}
		in := n.(*innerNode)
		n = in.children[upperBound(in.keys, k)]
	}
}

// lowerBound returns the first index with keys[i] >= k.
func lowerBound(keys []value.Value, k value.Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid].Compare(k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index with keys[i] > k.
func upperBound(keys []value.Value, k value.Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid].Compare(k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
