package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tierdb/internal/value"
)

func TestInsertLookupSmall(t *testing.T) {
	tr := New(value.Int64)
	tr.Insert(value.NewInt(5), 50)
	tr.Insert(value.NewInt(3), 30)
	tr.Insert(value.NewInt(5), 51)
	if got := tr.Lookup(value.NewInt(5)); len(got) != 2 || got[0] != 50 || got[1] != 51 {
		t.Errorf("Lookup(5) = %v", got)
	}
	if got := tr.Lookup(value.NewInt(3)); len(got) != 1 || got[0] != 30 {
		t.Errorf("Lookup(3) = %v", got)
	}
	if got := tr.Lookup(value.NewInt(9)); got != nil {
		t.Errorf("Lookup(9) = %v, want nil", got)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	if tr.Type() != value.Int64 {
		t.Error("Type mismatch")
	}
}

func TestInsertManySplits(t *testing.T) {
	tr := New(value.Int64)
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.Insert(value.NewInt(int64(k)), uint32(k))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for k := 0; k < n; k += 97 {
		got := tr.Lookup(value.NewInt(int64(k)))
		if len(got) != 1 || got[0] != uint32(k) {
			t.Fatalf("Lookup(%d) = %v", k, got)
		}
	}
}

func TestRangeAscendingOrder(t *testing.T) {
	tr := New(value.Int64)
	keys := []int64{40, 10, 30, 20, 50, 15}
	for i, k := range keys {
		tr.Insert(value.NewInt(k), uint32(i))
	}
	var got []int64
	tr.Range(value.NewInt(12), value.NewInt(40), func(k value.Value, pos []uint32) bool {
		got = append(got, k.Int())
		return true
	})
	want := []int64{15, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New(value.Int64)
	for k := int64(0); k < 100; k++ {
		tr.Insert(value.NewInt(k), uint32(k))
	}
	count := 0
	tr.Range(value.NewInt(0), value.NewInt(99), func(value.Value, []uint32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d keys, want 5", count)
	}
}

func TestRangeCrossesLeaves(t *testing.T) {
	tr := New(value.Int64)
	const n = 5000
	for k := int64(0); k < n; k++ {
		tr.Insert(value.NewInt(k), uint32(k))
	}
	var got int
	prev := int64(-1)
	tr.Range(value.NewInt(0), value.NewInt(n-1), func(k value.Value, pos []uint32) bool {
		if k.Int() <= prev {
			t.Fatalf("keys out of order: %d after %d", k.Int(), prev)
		}
		prev = k.Int()
		got++
		return true
	})
	if got != n {
		t.Errorf("Range visited %d keys, want %d", got, n)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(value.String)
	words := []string{"delta", "alpha", "charlie", "bravo"}
	for i, w := range words {
		tr.Insert(value.NewString(w), uint32(i))
	}
	if got := tr.Lookup(value.NewString("charlie")); len(got) != 1 || got[0] != 2 {
		t.Errorf("Lookup(charlie) = %v", got)
	}
	var order []string
	tr.Range(value.NewString("a"), value.NewString("zzz"), func(k value.Value, _ []uint32) bool {
		order = append(order, k.Str())
		return true
	})
	if !sort.StringsAreSorted(order) || len(order) != 4 {
		t.Errorf("Range order = %v", order)
	}
}

// Property: after inserting random (key, pos) pairs, every key's
// positions match a reference map and Range over the full key space
// visits keys in sorted order.
func TestTreeMatchesReferenceMap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(value.Int64)
		ref := make(map[int64][]uint32)
		n := rng.Intn(2000) + 1
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(300)) // force duplicates
			tr.Insert(value.NewInt(k), uint32(i))
			ref[k] = append(ref[k], uint32(i))
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			got := tr.Lookup(value.NewInt(k))
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(value.Int64)
	if got := tr.Lookup(value.NewInt(1)); got != nil {
		t.Errorf("Lookup on empty tree = %v", got)
	}
	called := false
	tr.Range(value.NewInt(0), value.NewInt(10), func(value.Value, []uint32) bool {
		called = true
		return true
	})
	if called {
		t.Error("Range on empty tree visited keys")
	}
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
}
