package exec

import (
	"math"
	"testing"
	"time"

	"tierdb/internal/metrics"
	"tierdb/internal/value"
)

// TestObservedSelectivityCapture runs the same predicate through the
// serial and the parallel executor and checks both feed the table's
// EWMA with the true qualifying fraction (a = id%10 ⇒ 1/10).
func TestObservedSelectivityCapture(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		tbl, clock := newTable(t, 40_000, nil)
		reg := metrics.NewRegistry()
		e := New(tbl, Options{Clock: clock, Parallelism: parallelism, Registry: reg})
		q := Query{Predicates: []Predicate{
			{Column: 1, Op: Eq, Value: value.NewInt(3)},
		}}
		for i := 0; i < 5; i++ {
			if _, err := e.Run(q, nil); err != nil {
				t.Fatal(err)
			}
		}
		sel, samples := tbl.ObservedSelectivity(1)
		if samples != 5 {
			t.Errorf("parallelism=%d: %d samples, want 5", parallelism, samples)
		}
		if math.Abs(sel-0.1) > 1e-9 {
			t.Errorf("parallelism=%d: observed selectivity %g, want 0.1", parallelism, sel)
		}
		if n := reg.Snapshot().Counters["selectivity.samples"]; n != 5 {
			t.Errorf("parallelism=%d: selectivity.samples = %d, want 5", parallelism, n)
		}
		// The static estimate for a=id%10 is also 1/10, so the
		// misestimate histogram must have recorded near-zero drift.
		h := reg.Snapshot().Histograms["selectivity.misestimate"]
		if h.Count != 5 {
			t.Errorf("parallelism=%d: misestimate count %d, want 5", parallelism, h.Count)
		}
		if h.Sum != 0 {
			t.Errorf("parallelism=%d: misestimate sum %d, want 0 (perfect estimate)", parallelism, h.Sum)
		}
	}
}

// TestObservedSelectivityConditionalFractions checks what each
// predicate of a conjunction records. The optimizer runs b = id%100
// first (more selective): a full scan observing its marginal fraction
// 1/100. The a = id%10 predicate then probes b's candidates — and since
// b=13 implies a=3 (the columns are correlated), its conditional
// fraction is 1, exactly the drift the misestimate histogram is there
// to expose (the independence estimate says 1/10).
func TestObservedSelectivityConditionalFractions(t *testing.T) {
	tbl, clock := newTable(t, 10_000, []bool{true, true, true, false})
	e := New(tbl, Options{Clock: clock})
	q := Query{Predicates: []Predicate{
		{Column: 1, Op: Eq, Value: value.NewInt(3)},
		{Column: 2, Op: Eq, Value: value.NewInt(13)},
	}}
	if _, err := e.Run(q, nil); err != nil {
		t.Fatal(err)
	}
	if sel, n := tbl.ObservedSelectivity(2); n != 1 || math.Abs(sel-0.01) > 1e-9 {
		t.Errorf("col b: sel=%g samples=%d, want marginal 0.01 with 1 sample", sel, n)
	}
	if sel, n := tbl.ObservedSelectivity(1); n != 1 || math.Abs(sel-1) > 1e-9 {
		t.Errorf("col a: sel=%g samples=%d, want conditional 1 with 1 sample", sel, n)
	}
}

// TestObservedSelectivityDisabled proves the capture knob: with
// DisableSelCapture no EWMA ever updates.
func TestObservedSelectivityDisabled(t *testing.T) {
	tbl, clock := newTable(t, 1_000, nil)
	e := New(tbl, Options{Clock: clock, DisableSelCapture: true})
	q := Query{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}}
	if _, err := e.Run(q, nil); err != nil {
		t.Fatal(err)
	}
	if _, samples := tbl.ObservedSelectivity(1); samples != 0 {
		t.Errorf("capture disabled but %d samples recorded", samples)
	}
}

// TestTraceRingCapture checks Run (not just RunTraced) captures into
// the recent ring, and that slow queries additionally enter the slow
// ring without ever exceeding its bound.
func TestTraceRingCapture(t *testing.T) {
	tbl, clock := newTable(t, 5_000, nil)
	recent := metrics.NewTraceRing(8)
	slow := metrics.NewTraceRing(4)
	reg := metrics.NewRegistry()
	e := New(tbl, Options{
		Clock:              clock,
		Registry:           reg,
		TraceRing:          recent,
		SlowRing:           slow,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	q := Query{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}}
	const runs = 10
	for i := 0; i < runs; i++ {
		if _, err := e.Run(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := recent.Added(); got != runs {
		t.Errorf("recent ring saw %d adds, want %d", got, runs)
	}
	if got := len(recent.Snapshot()); got != 8 {
		t.Errorf("recent ring holds %d, want its bound of 8", got)
	}
	if got := len(slow.Snapshot()); got != 4 {
		t.Errorf("slow ring holds %d, want its bound of 4", got)
	}
	for _, entry := range recent.Snapshot() {
		if entry.Trace == nil || entry.Trace.Table != "t" {
			t.Fatalf("ring entry has no trace: %+v", entry)
		}
		if entry.WallNs <= 0 {
			t.Errorf("entry without wall time: %+v", entry)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["exec.slow_queries"] != runs {
		t.Errorf("exec.slow_queries = %d, want %d", snap.Counters["exec.slow_queries"], runs)
	}
	if snap.Counters["obs.traces_captured"] != runs {
		t.Errorf("obs.traces_captured = %d, want %d", snap.Counters["obs.traces_captured"], runs)
	}
	if snap.Histograms["exec.wall_ns"].Count != runs {
		t.Errorf("exec.wall_ns count = %d, want %d", snap.Histograms["exec.wall_ns"].Count, runs)
	}
}
