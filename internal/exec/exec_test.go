package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"tierdb/internal/device"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// newTable builds a table with n rows over columns (id, a, b, c) where
// a = id%10, b = id%100, c = id%1000, optionally evicting columns.
func newTable(t *testing.T, n int, layout []bool) (*table.Table, *storage.Clock) {
	t.Helper()
	s := schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "a", Type: value.Int64},
		{Name: "b", Type: value.Int64},
		{Name: "c", Type: value.Int64},
	})
	clock := &storage.Clock{}
	store := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, clock, 1)
	tbl, err := table.New("t", s, table.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, n)
	for i := range rows {
		rows[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 10)),
			value.NewInt(int64(i % 100)),
			value.NewInt(int64(i % 1000)),
		}
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if layout == nil {
		layout = []bool{true, true, true, true}
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	return tbl, clock
}

// bruteForce evaluates the query by scanning every visible row.
func bruteForce(t *testing.T, tbl *table.Table, q Query) []table.RowID {
	t.Helper()
	snapshot := tbl.Manager().LastCommit()
	var out []table.RowID
	total := tbl.MainRows() + tbl.DeltaRows()
	for r := 0; r < total; r++ {
		id := table.RowID(r)
		if !tbl.Visible(id, snapshot, 0) {
			continue
		}
		ok := true
		for _, p := range q.Predicates {
			v, err := tbl.GetValue(id, p.Column)
			if err != nil {
				t.Fatal(err)
			}
			switch p.Op {
			case Eq:
				ok = ok && v.Equal(p.Value)
			case Between:
				ok = ok && v.Compare(p.Value) >= 0 && v.Compare(p.Hi) <= 0
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	return out
}

func sameIDs(a, b []table.RowID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[table.RowID]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}

func TestSinglePredicateAllLayouts(t *testing.T) {
	layouts := map[string][]bool{
		"all DRAM":   {true, true, true, true},
		"a evicted":  {true, false, true, true},
		"all but id": {true, false, false, false},
	}
	for name, layout := range layouts {
		t.Run(name, func(t *testing.T) {
			tbl, _ := newTable(t, 1000, layout)
			e := New(tbl, Options{})
			q := Query{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}}
			res, err := e.Run(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForce(t, tbl, q)
			if !sameIDs(res.IDs, want) {
				t.Errorf("got %d rows, want %d", len(res.IDs), len(want))
			}
		})
	}
}

func TestConjunctionMatchesBruteForce(t *testing.T) {
	for _, layout := range [][]bool{
		{true, true, true, true},
		{true, true, false, true},
		{true, false, false, false},
	} {
		tbl, _ := newTable(t, 2000, layout)
		e := New(tbl, Options{})
		q := Query{Predicates: []Predicate{
			{Column: 1, Op: Eq, Value: value.NewInt(7)},
			{Column: 2, Op: Eq, Value: value.NewInt(17)},
			{Column: 3, Op: Between, Value: value.NewInt(0), Hi: value.NewInt(600)},
		}}
		res, err := e.Run(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(t, tbl, q)
		if !sameIDs(res.IDs, want) {
			t.Errorf("layout %v: got %d rows, want %d", layout, len(res.IDs), len(want))
		}
	}
}

func TestNoPredicatesReturnsAllRows(t *testing.T) {
	tbl, _ := newTable(t, 100, nil)
	e := New(tbl, Options{})
	res, err := e.Run(Query{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 100 {
		t.Errorf("got %d rows, want 100", len(res.IDs))
	}
}

func TestQueryValidation(t *testing.T) {
	tbl, _ := newTable(t, 10, nil)
	e := New(tbl, Options{})
	if _, err := e.Run(Query{Predicates: []Predicate{{Column: 9, Op: Eq, Value: value.NewInt(0)}}}, nil); err == nil {
		t.Error("bad predicate column accepted")
	}
	if _, err := e.Run(Query{Predicates: []Predicate{{Column: 0, Op: Op(9), Value: value.NewInt(0)}}}, nil); err == nil {
		t.Error("bad operator accepted")
	}
	if _, err := e.Run(Query{Project: []int{9}}, nil); err == nil {
		t.Error("bad projection accepted")
	}
	q := Query{Predicates: []Predicate{
		{Column: 1, Op: Eq, Value: value.NewInt(1)},
		{Column: 2, Op: Eq, Value: value.NewString("wrong")},
	}}
	if _, err := e.Run(q, nil); err == nil {
		t.Error("type-mismatched second predicate accepted")
	}
}

func TestDeltaRowsIncluded(t *testing.T) {
	tbl, _ := newTable(t, 100, []bool{true, false, true, true})
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, []value.Value{
		value.NewInt(5000), value.NewInt(3), value.NewInt(3), value.NewInt(3),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	e := New(tbl, Options{})
	q := Query{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}}
	res, err := e.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(t, tbl, q)
	if !sameIDs(res.IDs, want) {
		t.Errorf("got %d rows, want %d (incl. delta)", len(res.IDs), len(want))
	}
	foundDelta := false
	for _, id := range res.IDs {
		if id >= uint64(tbl.MainRows()) {
			foundDelta = true
		}
	}
	if !foundDelta {
		t.Error("delta row missing from result")
	}
}

func TestUncommittedInvisibleToOthers(t *testing.T) {
	tbl, _ := newTable(t, 50, nil)
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, []value.Value{
		value.NewInt(999), value.NewInt(1), value.NewInt(1), value.NewInt(1),
	}); err != nil {
		t.Fatal(err)
	}
	e := New(tbl, Options{})
	// Another reader does not see the uncommitted row.
	q := Query{Predicates: []Predicate{{Column: 0, Op: Eq, Value: value.NewInt(999)}}}
	res, err := e.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 0 {
		t.Error("uncommitted row visible to other reader")
	}
	// The writing transaction sees it.
	res, err = e.Run(q, tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 {
		t.Error("writer cannot see own insert")
	}
}

func TestIndexPathUsedFirst(t *testing.T) {
	tbl, _ := newTable(t, 1000, []bool{true, true, true, false})
	if err := tbl.CreateIndex(0); err != nil {
		t.Fatal(err)
	}
	e := New(tbl, Options{})
	q := Query{Predicates: []Predicate{
		{Column: 3, Op: Between, Value: value.NewInt(0), Hi: value.NewInt(999)},
		{Column: 0, Op: Eq, Value: value.NewInt(123)},
	}}
	res, err := e.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != 123 {
		t.Errorf("res = %v", res.IDs)
	}
	// Ordering: the indexed predicate must come first.
	v := tbl.Pin()
	defer v.Release()
	ordered := e.orderPredicates(v, q.Predicates)
	if ordered[0].Column != 0 {
		t.Errorf("indexed predicate not first: %v", ordered[0])
	}
}

func TestPredicateOrderingLocationBeforeSelectivity(t *testing.T) {
	// Column b (sel 1/100) is evicted; column a (sel 1/10) stays in
	// DRAM. Per the paper, DRAM-resident a must run first despite its
	// worse selectivity.
	tbl, _ := newTable(t, 1000, []bool{true, true, false, true})
	e := New(tbl, Options{})
	preds := []Predicate{
		{Column: 2, Op: Eq, Value: value.NewInt(1)}, // evicted, sel 0.01
		{Column: 1, Op: Eq, Value: value.NewInt(1)}, // DRAM, sel 0.1
	}
	v := tbl.Pin()
	defer v.Release()
	ordered := e.orderPredicates(v, preds)
	if ordered[0].Column != 1 {
		t.Errorf("DRAM-resident predicate not first: column %d", ordered[0].Column)
	}
	// Within one location, ascending selectivity: id (sel 1/1000)
	// before a (sel 1/10).
	preds = []Predicate{
		{Column: 1, Op: Eq, Value: value.NewInt(1)},
		{Column: 0, Op: Eq, Value: value.NewInt(1)},
	}
	ordered = e.orderPredicates(v, preds)
	if ordered[0].Column != 0 {
		t.Errorf("most selective DRAM predicate not first: column %d", ordered[0].Column)
	}
}

func TestScanVsProbeConsistency(t *testing.T) {
	// Whatever path the executor picks (scan or probe on the tiered
	// column), results must match brute force. Use a first predicate
	// selective enough to trigger probing.
	tbl, _ := newTable(t, 20000, []bool{true, true, true, false})
	e := New(tbl, Options{})
	q := Query{Predicates: []Predicate{
		{Column: 0, Op: Eq, Value: value.NewInt(777)}, // sel 1/20000 < threshold
		{Column: 3, Op: Eq, Value: value.NewInt(777)},
	}}
	res, err := e.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(t, tbl, q)
	if !sameIDs(res.IDs, want) {
		t.Errorf("probe path: got %v, want %v", res.IDs, want)
	}
}

func TestProbingCheaperThanScanningTieredColumn(t *testing.T) {
	// With a highly selective DRAM predicate first, the tiered column
	// is probed (few page reads); forcing scan-first order would read
	// every page. Compare virtual clocks.
	layout := []bool{true, true, true, false}

	tblProbe, clockProbe := newTable(t, 50000, layout)
	e := New(tblProbe, Options{Clock: clockProbe})
	q := Query{Predicates: []Predicate{
		{Column: 0, Op: Eq, Value: value.NewInt(123)},
		{Column: 3, Op: Between, Value: value.NewInt(0), Hi: value.NewInt(500)},
	}}
	clockProbe.Reset()
	if _, err := e.Run(q, nil); err != nil {
		t.Fatal(err)
	}
	probeReads := clockProbe.Reads()

	tblScan, clockScan := newTable(t, 50000, layout)
	e2 := New(tblScan, Options{Clock: clockScan})
	clockScan.Reset()
	// Single tiered predicate: must scan all pages.
	if _, err := e2.Run(Query{Predicates: []Predicate{
		{Column: 3, Op: Between, Value: value.NewInt(0), Hi: value.NewInt(500)},
	}}, nil); err != nil {
		t.Fatal(err)
	}
	scanReads := clockScan.Reads()
	if probeReads >= scanReads/10 {
		t.Errorf("probing used %d page reads, scanning %d; expected >10x gap", probeReads, scanReads)
	}
}

func TestMaterializeProjection(t *testing.T) {
	tbl, _ := newTable(t, 500, []bool{true, false, false, true})
	e := New(tbl, Options{})
	q := Query{
		Predicates: []Predicate{{Column: 0, Op: Between, Value: value.NewInt(10), Hi: value.NewInt(12)}},
		Project:    []int{0, 1, 2, 3},
	}
	res, err := e.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for i, id := range res.IDs {
		want := int64(id)
		row := res.Rows[i]
		if row[0].Int() != want || row[1].Int() != want%10 || row[2].Int() != want%100 || row[3].Int() != want%1000 {
			t.Errorf("row %d = %v", id, row)
		}
	}
}

func TestReconstructMatchesGetTuple(t *testing.T) {
	tbl, clock := newTable(t, 300, []bool{true, false, false, false})
	e := New(tbl, Options{Clock: clock})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		id := table.RowID(rng.Intn(300))
		got, err := e.Reconstruct(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tbl.GetTuple(id)
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if !got[c].Equal(want[c]) {
				t.Errorf("row %d col %d: %v != %v", id, c, got[c], want[c])
			}
		}
	}
	if clock.Elapsed() == 0 {
		t.Error("reconstruction charged no time")
	}
}

func TestSumAndJoin(t *testing.T) {
	tbl, _ := newTable(t, 100, nil)
	e := New(tbl, Options{})
	ids := []table.RowID{0, 1, 2, 3}
	got, err := e.Sum(1, ids)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0+1+2+3 {
		t.Errorf("Sum = %g, want 6", got)
	}
	if _, err := e.Sum(0, nil); err != nil {
		t.Errorf("empty sum: %v", err)
	}

	build, err := e.BuildJoinMap(1, []table.RowID{0, 1, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := e.JoinProbe(1, []table.RowID{20, 21}, build)
	if err != nil {
		t.Fatal(err)
	}
	// a(20)=0 matches rows 0 and 10; a(21)=1 matches rows 1 and 11.
	if len(pairs) != 4 {
		t.Errorf("join pairs = %v", pairs)
	}
}

func TestSumStringColumnFails(t *testing.T) {
	s := schema.MustNew([]schema.Field{{Name: "s", Type: value.String, Width: 4}})
	tbl, err := table.New("t", s, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(tbl, Options{})
	if _, err := e.Sum(0, nil); err == nil {
		t.Error("summing strings accepted")
	}
}

func TestResultsDeterministicAcrossRuns(t *testing.T) {
	tbl, _ := newTable(t, 3000, []bool{true, false, true, false})
	e := New(tbl, Options{})
	q := Query{Predicates: []Predicate{
		{Column: 1, Op: Eq, Value: value.NewInt(4)},
		{Column: 3, Op: Between, Value: value.NewInt(100), Hi: value.NewInt(400)},
	}}
	first, err := e.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := e.Run(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(first.IDs) != fmt.Sprint(again.IDs) {
			t.Fatalf("run %d differs: %v vs %v", i, first.IDs, again.IDs)
		}
	}
}

func TestHistogramDrivenRangeOrdering(t *testing.T) {
	// Column b has 100 distinct values; a narrow range on it is far
	// more selective than a wide range on column c (1000 distinct).
	// Histogram-based estimation must order the narrow range first,
	// while the plain 1/distinct estimate would prefer column c.
	tbl, _ := newTable(t, 10000, nil)
	e := New(tbl, Options{})
	narrowOnB := Predicate{Column: 2, Op: Between, Value: value.NewInt(10), Hi: value.NewInt(11)}
	wideOnC := Predicate{Column: 3, Op: Between, Value: value.NewInt(0), Hi: value.NewInt(900)}
	v := tbl.Pin()
	defer v.Release()
	ordered := e.orderPredicates(v, []Predicate{wideOnC, narrowOnB})
	if ordered[0].Column != 2 {
		t.Errorf("narrow range not ordered first: got column %d", ordered[0].Column)
	}
	selNarrow := e.estimateSelectivity(narrowOnB)
	selWide := e.estimateSelectivity(wideOnC)
	if selNarrow >= selWide {
		t.Errorf("selectivity estimates inverted: narrow %g vs wide %g", selNarrow, selWide)
	}
	// Rough accuracy: narrow range matches 2% of rows.
	if selNarrow < 0.005 || selNarrow > 0.06 {
		t.Errorf("narrow estimate %g far from true 0.02", selNarrow)
	}
}

func TestGroupBySum(t *testing.T) {
	tbl, _ := newTable(t, 100, nil)
	e := New(tbl, Options{})
	ids := make([]table.RowID, 100)
	for i := range ids {
		ids[i] = table.RowID(i)
	}
	// Group by a (= id%10), sum id: each group holds ids g, g+10, ...
	groups, err := e.GroupBySum(1, 0, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 10 {
		t.Fatalf("groups = %d, want 10", len(groups))
	}
	for g := int64(0); g < 10; g++ {
		want := float64(0)
		for i := g; i < 100; i += 10 {
			want += float64(i)
		}
		if got := groups[value.NewInt(g)]; got != want {
			t.Errorf("group %d sum = %g, want %g", g, got, want)
		}
	}
	if _, err := e.GroupBySum(0, 3, nil); err != nil {
		t.Errorf("empty ids: %v", err)
	}
}

func TestGroupBySumStringAggregateFails(t *testing.T) {
	s := schema.MustNew([]schema.Field{
		{Name: "g", Type: value.Int64},
		{Name: "s", Type: value.String, Width: 4},
	})
	tbl, err := table.New("t", s, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(tbl, Options{})
	if _, err := e.GroupBySum(0, 1, nil); err == nil {
		t.Error("string aggregate accepted")
	}
}
