package exec

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"tierdb/internal/amm"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// newFaultTable builds a two-column table (id in DRAM, a tiered) whose
// SSCG pages go through an AMM cache backed by a fault-injecting store.
func newFaultTable(t *testing.T, n int) (*table.Table, *storage.FaultStore, *amm.Cache) {
	t.Helper()
	fs := storage.NewFaultStore(storage.NewMemStore())
	cache, err := amm.New(32, fs)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "a", Type: value.Int64},
	})
	tbl, err := table.New("faulty", s, table.Options{Store: fs, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, n)
	for i := range rows {
		rows[i] = []value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 10))}
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout([]bool{true, false}); err != nil {
		t.Fatal(err)
	}
	return tbl, fs, cache
}

// waitGoroutines polls until the goroutine count returns to the
// pre-scan baseline — a leaked worker would keep it elevated.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// checkFaultRecovery asserts the canonical post-fault invariants —
// exactly one error surfaced to the caller, no leaked workers, no
// pinned cache frames — and that after disarming, the parallel result
// matches the serial one.
func checkFaultRecovery(t *testing.T, tbl *table.Table, fs *storage.FaultStore, cache *amm.Cache, q Query, base int) {
	t.Helper()
	waitGoroutines(t, base)
	if pinned := cache.PinnedFrames(); pinned != 0 {
		t.Errorf("%d cache frames left pinned after failed scan", pinned)
	}
	fs.Disarm()
	got, err := New(tbl, Options{Parallelism: 4, MorselRows: 1024}).Run(q, nil)
	if err != nil {
		t.Fatalf("post-disarm parallel run: %v", err)
	}
	want, err := New(tbl, Options{}).Run(q, nil)
	if err != nil {
		t.Fatalf("post-disarm serial run: %v", err)
	}
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("post-disarm: %d ids, serial %d", len(got.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Fatalf("post-disarm id[%d] = %d, serial %d", i, got.IDs[i], want.IDs[i])
		}
	}
}

// TestParallelScanFaultInjection injects transient and sticky read
// faults under a 4-worker tiered scan: the caller gets ErrInjected
// exactly once, all workers drain (no goroutine leak), the cache keeps
// no pinned frames, and after disarming, results match serial again.
func TestParallelScanFaultInjection(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sticky bool
	}{{"transient", false}, {"sticky", true}} {
		t.Run(tc.name, func(t *testing.T) {
			tbl, fs, cache := newFaultTable(t, 20000)
			e := New(tbl, Options{Parallelism: 4, MorselRows: 1024})
			q := Query{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}}
			base := runtime.NumGoroutine()
			fs.FailReadAfter(5, tc.sticky)
			if _, err := e.Run(q, nil); !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("want ErrInjected, got %v", err)
			}
			checkFaultRecovery(t, tbl, fs, cache, q, base)
		})
	}
}

// TestParallelMaterializeFaultInjection pushes the fault into the
// parallel materialization phase: the filter runs on the DRAM column,
// so page reads (and the injected failure) happen while workers
// reconstruct tiered rows.
func TestParallelMaterializeFaultInjection(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sticky bool
	}{{"transient", false}, {"sticky", true}} {
		t.Run(tc.name, func(t *testing.T) {
			tbl, fs, cache := newFaultTable(t, 20000)
			e := New(tbl, Options{Parallelism: 4, MorselRows: 1024})
			q := Query{
				Predicates: []Predicate{{Column: 0, Op: Between, Value: value.NewInt(0), Hi: value.NewInt(19999)}},
				Project:    []int{0, 1},
			}
			base := runtime.NumGoroutine()
			fs.FailReadAfter(5, tc.sticky)
			if _, err := e.Run(q, nil); !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("want ErrInjected, got %v", err)
			}
			checkFaultRecovery(t, tbl, fs, cache, q, base)
		})
	}
}
