package exec

import (
	"errors"
	"testing"

	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// TestReadFaultSurfacesThroughExecutor verifies that an injected device
// fault during a tiered scan propagates as an error (never as a wrong
// result) and that the executor recovers once the device does.
func TestReadFaultSurfacesThroughExecutor(t *testing.T) {
	fs := storage.NewFaultStore(storage.NewMemStore())
	s := schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "a", Type: value.Int64},
	})
	tbl, err := table.New("faulty", s, table.Options{Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 500)
	for i := range rows {
		rows[i] = []value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 10))}
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout([]bool{true, false}); err != nil {
		t.Fatal(err)
	}
	e := New(tbl, Options{})
	q := Query{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}}

	fs.FailReadAfter(1, true)
	if _, err := e.Run(q, nil); !errors.Is(err, storage.ErrInjected) {
		t.Errorf("tiered scan under sticky fault: %v", err)
	}
	fs.Disarm()
	res, err := e.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 50 {
		t.Errorf("post-fault scan found %d rows, want 50", len(res.IDs))
	}
}
