// Package exec implements query execution over tiered tables following
// the paper's model (Section II-B): filters run via indexes when
// available; remaining filters are ordered first by location
// (DRAM-resident before tiered) and second by increasing selectivity;
// successive predicates receive position lists; and the executor
// switches from scanning to probing as soon as the fraction of
// qualifying tuples falls below a threshold (default 0.01 % of the
// table). DRAM-side costs are charged to a virtual clock; secondary-
// storage costs flow through the table's timed page store.
package exec

import (
	"fmt"
	"sort"
	"time"

	"tierdb/internal/device"
	"tierdb/internal/mvcc"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// Op is a predicate operator.
type Op int

const (
	// Eq is an equality predicate (column = value).
	Eq Op = iota
	// Between is an inclusive range predicate (lo <= column <= hi).
	Between
)

// Predicate is one conjunctive filter of a query.
type Predicate struct {
	// Column indexes the table schema.
	Column int
	// Op selects the comparison.
	Op Op
	// Value is the equality operand or range lower bound.
	Value value.Value
	// Hi is the inclusive range upper bound (Between only).
	Hi value.Value
}

// Query is a conjunctive filter-and-project query.
type Query struct {
	// Predicates are combined with AND.
	Predicates []Predicate
	// Project lists the columns to materialize for each qualifying
	// row; empty means positions only.
	Project []int
}

// Result carries qualifying row ids and, if requested, their projected
// values.
type Result struct {
	IDs  []table.RowID
	Rows [][]value.Value
}

// Options tunes the executor.
type Options struct {
	// Clock accumulates modeled DRAM-side execution time; nil disables
	// DRAM cost accounting.
	Clock *storage.Clock
	// ProbeThreshold is the qualifying fraction below which the
	// executor probes instead of scanning tiered columns (paper:
	// 0.01 % = 0.0001). Zero selects the default.
	ProbeThreshold float64
	// Threads is the concurrency level assumed for DRAM bandwidth
	// modeling; defaults to 1.
	Threads int
	// DRAMTouch is the modeled cost of one dependent random DRAM
	// access (cache miss); zero selects the default of 60 ns.
	DRAMTouch time.Duration
	// Parallelism is the number of worker goroutines for morsel-driven
	// main-partition scans, probes and materialization; values <= 1
	// select the serial executor. Results are byte-identical to the
	// serial path at any level.
	Parallelism int
	// MorselRows is the number of main-partition rows per morsel for
	// parallel scans; zero selects DefaultMorselRows. SSCG scan
	// morsels are additionally aligned to page boundaries.
	MorselRows int
}

// DefaultProbeThreshold is the paper's scan-to-probe switch point.
const DefaultProbeThreshold = 0.0001

// DefaultDRAMTouch approximates one random DRAM cache miss.
const DefaultDRAMTouch = 60 * time.Nanosecond

// Executor runs queries against one table.
type Executor struct {
	tbl         *table.Table
	clock       *storage.Clock
	threshold   float64
	threads     int
	dramTouch   time.Duration
	parallelism int
	morselRows  int
}

// New builds an executor for tbl.
func New(tbl *table.Table, opts Options) *Executor {
	if opts.ProbeThreshold == 0 {
		opts.ProbeThreshold = DefaultProbeThreshold
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.DRAMTouch == 0 {
		opts.DRAMTouch = DefaultDRAMTouch
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	if opts.MorselRows < 1 {
		opts.MorselRows = DefaultMorselRows
	}
	return &Executor{
		tbl:         tbl,
		clock:       opts.Clock,
		threshold:   opts.ProbeThreshold,
		threads:     opts.Threads,
		dramTouch:   opts.DRAMTouch,
		parallelism: opts.Parallelism,
		morselRows:  opts.MorselRows,
	}
}

// Parallelism returns the configured worker count (1 = serial).
func (e *Executor) Parallelism() int { return e.parallelism }

// charge adds modeled DRAM time to the clock.
func (e *Executor) charge(d time.Duration) {
	if e.clock != nil {
		e.clock.Advance(d)
	}
}

// chargeTouches charges n dependent DRAM accesses.
func (e *Executor) chargeTouches(n int) {
	if e.clock != nil && n > 0 {
		e.clock.Advance(time.Duration(n) * e.dramTouch)
	}
}

// Run executes q at the transaction's snapshot (tx may be nil for a
// read at the latest snapshot).
func (e *Executor) Run(q Query, tx *mvcc.Tx) (*Result, error) {
	var snapshot mvcc.Timestamp
	var self mvcc.TxID
	if tx != nil {
		snapshot, self = tx.Snapshot(), tx.ID()
	} else {
		snapshot = e.tbl.Manager().LastCommit()
	}
	if err := e.checkQuery(q); err != nil {
		return nil, err
	}

	ordered := e.orderPredicates(q.Predicates)

	var mainIDs []uint32
	var err error
	if e.parallelism > 1 {
		mainIDs, err = e.runMainParallel(ordered, snapshot, self)
	} else {
		mainIDs, err = e.runMain(ordered, snapshot, self)
	}
	if err != nil {
		return nil, err
	}
	deltaIDs, err := e.runDelta(ordered, snapshot, self)
	if err != nil {
		return nil, err
	}

	res := &Result{IDs: make([]table.RowID, 0, len(mainIDs)+len(deltaIDs))}
	for _, p := range mainIDs {
		res.IDs = append(res.IDs, table.RowID(p))
	}
	mainRows := uint64(e.tbl.MainRows())
	for _, p := range deltaIDs {
		res.IDs = append(res.IDs, mainRows+uint64(p))
	}
	if len(q.Project) > 0 {
		if e.parallelism > 1 {
			err = e.materializeParallel(res, q.Project)
		} else {
			err = e.materialize(res, q.Project)
		}
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// checkQuery validates predicate and projection column indexes.
func (e *Executor) checkQuery(q Query) error {
	n := e.tbl.Schema().Len()
	for _, p := range q.Predicates {
		if p.Column < 0 || p.Column >= n {
			return fmt.Errorf("exec: predicate column %d out of range (%d)", p.Column, n)
		}
		if p.Op != Eq && p.Op != Between {
			return fmt.Errorf("exec: unknown operator %d", p.Op)
		}
	}
	for _, c := range q.Project {
		if c < 0 || c >= n {
			return fmt.Errorf("exec: projected column %d out of range (%d)", c, n)
		}
	}
	return nil
}

// orderPredicates sorts predicates as the paper prescribes: indexed
// first, then DRAM-resident by ascending selectivity, then tiered by
// ascending selectivity. Equality predicates use the 1/distinct
// estimate; range predicates use the column's equi-depth histogram
// when available (Section III-A: "distinct counts and histograms").
func (e *Executor) orderPredicates(preds []Predicate) []Predicate {
	out := append([]Predicate(nil), preds...)
	rank := func(p Predicate) (int, float64) {
		sel := e.estimateSelectivity(p)
		if e.tbl.Index(p.Column) != nil {
			return 0, sel
		}
		if e.tbl.MRC(p.Column) != nil {
			return 1, sel
		}
		return 2, sel
	}
	sort.SliceStable(out, func(a, b int) bool {
		ra, sa := rank(out[a])
		rb, sb := rank(out[b])
		if ra != rb {
			return ra < rb
		}
		return sa < sb
	})
	return out
}

// estimateSelectivity returns the expected qualifying fraction of one
// predicate.
func (e *Executor) estimateSelectivity(p Predicate) float64 {
	switch p.Op {
	case Between:
		if p.Value.Type() == p.Hi.Type() {
			return e.tbl.RangeSelectivity(p.Column, p.Value, p.Hi)
		}
		return e.tbl.Selectivity(p.Column)
	default:
		return e.tbl.Selectivity(p.Column)
	}
}

// runMain evaluates the ordered predicates over the main partition and
// returns qualifying main-row positions.
func (e *Executor) runMain(preds []Predicate, snapshot mvcc.Timestamp, self mvcc.TxID) ([]uint32, error) {
	mainRows := e.tbl.MainRows()
	if mainRows == 0 {
		return nil, nil
	}
	skip := func(row int) bool {
		return !e.tbl.MainVersions().Visible(row, snapshot, self)
	}
	var cand []uint32
	first := true
	for _, p := range preds {
		var err error
		cand, err = e.applyMain(p, cand, first, skip)
		if err != nil {
			return nil, err
		}
		first = false
		if len(cand) == 0 {
			return nil, nil
		}
	}
	if first {
		// No predicates: all visible rows qualify.
		for row := 0; row < mainRows; row++ {
			if !skip(row) {
				cand = append(cand, uint32(row))
			}
		}
	}
	return cand, nil
}

// applyMain evaluates one predicate over the main partition, narrowing
// the candidate list (nil on the first predicate).
func (e *Executor) applyMain(p Predicate, cand []uint32, first bool, skip func(int) bool) ([]uint32, error) {
	mainRows := e.tbl.MainRows()

	// Index access path (always DRAM-resident).
	if idx := e.tbl.Index(p.Column); idx != nil && first {
		return e.indexLookup(p, skip), nil
	}

	if mrc := e.tbl.MRC(p.Column); mrc != nil {
		if first {
			// Full scan on the compressed DRAM column.
			e.charge(device.DRAM.SequentialReadTime(mrc.Bytes(), e.threads))
			switch p.Op {
			case Eq:
				return mrc.ScanEqual(p.Value, nil, skip)
			default:
				return mrc.ScanRange(p.Value, p.Hi, nil, skip)
			}
		}
		// Subsequent predicate: probe the candidate list (always
		// cheaper than re-scanning DRAM).
		e.chargeTouches(len(cand))
		switch p.Op {
		case Eq:
			return mrc.ProbeEqual(p.Value, cand, nil)
		default:
			return mrc.ProbeRange(p.Value, p.Hi, cand, nil)
		}
	}

	// Tiered column (SSCG-placed).
	gf := e.tbl.GroupField(p.Column)
	group := e.tbl.Group()
	if group == nil || gf < 0 {
		return nil, fmt.Errorf("exec: column %d has no storage (internal layout error)", p.Column)
	}
	pred, err := e.compile(p)
	if err != nil {
		return nil, err
	}
	fraction := 1.0
	if !first {
		fraction = float64(len(cand)) / float64(mainRows)
	}
	if first || fraction > e.threshold {
		// Scan the whole group (reads every page), then intersect.
		matches, err := group.Scan(gf, pred, nil, skip)
		if err != nil {
			return nil, err
		}
		if first {
			return matches, nil
		}
		return intersect(cand, matches), nil
	}
	// Probe: one page access per candidate.
	return group.Probe(gf, pred, cand, nil)
}

// indexLookup resolves a predicate through the column's B+-tree index,
// returning visible matching positions in ascending row order. Shared
// by the serial and parallel paths (index descent is DRAM-cheap and
// stays single-threaded either way).
func (e *Executor) indexLookup(p Predicate, skip func(int) bool) []uint32 {
	idx := e.tbl.Index(p.Column)
	var positions []uint32
	collect := func(_ value.Value, rows []uint32) bool {
		positions = append(positions, rows...)
		return true
	}
	switch p.Op {
	case Eq:
		positions = append(positions, idx.Lookup(p.Value)...)
	case Between:
		idx.Range(p.Value, p.Hi, collect)
	}
	e.chargeTouches(20 + len(positions)) // tree descent + leaf reads
	out := positions[:0]
	for _, pos := range positions {
		if !skip(int(pos)) {
			out = append(out, pos)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// compile turns a predicate into a value filter for SSCG evaluation.
func (e *Executor) compile(p Predicate) (func(value.Value) bool, error) {
	typ := e.tbl.Schema().Field(p.Column).Type
	if p.Value.Type() != typ {
		return nil, fmt.Errorf("exec: predicate on column %d has type %s, want %s", p.Column, p.Value.Type(), typ)
	}
	switch p.Op {
	case Eq:
		v := p.Value
		return func(x value.Value) bool { return x.Equal(v) }, nil
	case Between:
		if p.Hi.Type() != typ {
			return nil, fmt.Errorf("exec: range bound on column %d has type %s, want %s", p.Column, p.Hi.Type(), typ)
		}
		lo, hi := p.Value, p.Hi
		return func(x value.Value) bool { return x.Compare(lo) >= 0 && x.Compare(hi) <= 0 }, nil
	}
	return nil, fmt.Errorf("exec: unknown operator %d", p.Op)
}

// runDelta evaluates predicates over the delta partition.
func (e *Executor) runDelta(preds []Predicate, snapshot mvcc.Timestamp, self mvcc.TxID) ([]uint32, error) {
	d := e.tbl.Delta()
	if d.Rows() == 0 {
		return nil, nil
	}
	if len(preds) == 0 {
		rows := d.VisibleRows(snapshot, self)
		out := make([]uint32, len(rows))
		for i, r := range rows {
			out[i] = uint32(r)
		}
		return out, nil
	}
	var cand []uint32
	for i, p := range preds {
		if i == 0 {
			var err error
			switch p.Op {
			case Eq:
				cand, err = d.ScanEqual(p.Column, p.Value, snapshot, self, nil)
			default:
				cand, err = d.ScanRange(p.Column, p.Value, p.Hi, snapshot, self, nil)
			}
			if err != nil {
				return nil, err
			}
			e.chargeTouches(20 + len(cand))
		} else {
			pred, err := e.compile(p)
			if err != nil {
				return nil, err
			}
			out := cand[:0]
			for _, pos := range cand {
				v, err := d.Get(int(pos), p.Column)
				if err != nil {
					return nil, err
				}
				if pred(v) {
					out = append(out, pos)
				}
			}
			cand = out
			e.chargeTouches(len(cand))
		}
		if len(cand) == 0 {
			return nil, nil
		}
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
	return cand, nil
}

// materialize fills res.Rows with the projected columns of each
// qualifying row. For main-partition rows with SSCG-placed projections,
// one group page access delivers all grouped attributes of a row.
func (e *Executor) materialize(res *Result, project []int) error {
	mainRows := uint64(e.tbl.MainRows())
	group := e.tbl.Group()
	needGroup := false
	for _, c := range project {
		if e.tbl.GroupField(c) >= 0 {
			needGroup = true
		}
	}
	res.Rows = make([][]value.Value, len(res.IDs))
	for i, id := range res.IDs {
		row := make([]value.Value, len(project))
		var groupRow []value.Value
		if id < mainRows && needGroup && group != nil {
			var err error
			groupRow, err = group.ReadRow(int(id))
			if err != nil {
				return err
			}
		}
		for j, c := range project {
			if id < mainRows {
				if gf := e.tbl.GroupField(c); gf >= 0 && groupRow != nil {
					row[j] = groupRow[gf]
					continue
				}
				e.chargeTouches(2) // value vector + dictionary
			}
			v, err := e.tbl.GetValue(id, c)
			if err != nil {
				return err
			}
			row[j] = v
		}
		res.Rows[i] = row
	}
	return nil
}

// intersect returns the sorted intersection of two ascending position
// lists.
func intersect(a, b []uint32) []uint32 {
	out := make([]uint32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
