// Package exec implements query execution over tiered tables following
// the paper's model (Section II-B): filters run via indexes when
// available; remaining filters are ordered first by location
// (DRAM-resident before tiered) and second by increasing selectivity;
// successive predicates receive position lists; and the executor
// switches from scanning to probing as soon as the fraction of
// qualifying tuples falls below a threshold (default 0.01 % of the
// table). DRAM-side costs are charged to a virtual clock; secondary-
// storage costs flow through the table's timed page store.
package exec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"tierdb/internal/delta"
	"tierdb/internal/device"
	"tierdb/internal/metrics"
	"tierdb/internal/mvcc"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/trace"
	"tierdb/internal/value"
)

// Op is a predicate operator.
type Op int

const (
	// Eq is an equality predicate (column = value).
	Eq Op = iota
	// Between is an inclusive range predicate (lo <= column <= hi).
	Between
)

// Predicate is one conjunctive filter of a query.
type Predicate struct {
	// Column indexes the table schema.
	Column int
	// Op selects the comparison.
	Op Op
	// Value is the equality operand or range lower bound.
	Value value.Value
	// Hi is the inclusive range upper bound (Between only).
	Hi value.Value
}

// Query is a conjunctive filter-and-project query.
type Query struct {
	// Predicates are combined with AND.
	Predicates []Predicate
	// Project lists the columns to materialize for each qualifying
	// row; empty means positions only.
	Project []int
}

// Result carries qualifying row ids and, if requested, their projected
// values.
type Result struct {
	IDs  []table.RowID
	Rows [][]value.Value
}

// Options tunes the executor.
type Options struct {
	// Clock accumulates modeled DRAM-side execution time; nil disables
	// DRAM cost accounting.
	Clock *storage.Clock
	// ProbeThreshold is the qualifying fraction below which the
	// executor probes instead of scanning tiered columns (paper:
	// 0.01 % = 0.0001). Zero selects the default.
	ProbeThreshold float64
	// Threads is the concurrency level assumed for DRAM bandwidth
	// modeling; defaults to 1.
	Threads int
	// DRAMTouch is the modeled cost of one dependent random DRAM
	// access (cache miss); zero selects the default of 60 ns.
	DRAMTouch time.Duration
	// Parallelism is the number of worker goroutines for morsel-driven
	// main-partition scans, probes and materialization; values <= 1
	// select the serial executor. Results are byte-identical to the
	// serial path at any level.
	Parallelism int
	// MorselRows is the number of main-partition rows per morsel for
	// parallel scans; zero selects DefaultMorselRows. SSCG scan
	// morsels are additionally aligned to page boundaries.
	MorselRows int
	// Registry receives executor metrics (access-path counts, scan-to-
	// probe switchovers, morsels, rows, modeled DRAM time). Nil runs
	// unmetered at zero cost.
	Registry *metrics.Registry
	// TraceRing, when set, makes every query (Run and RunTraced alike)
	// capture a full metrics.Trace with its wall-clock duration into
	// the ring — the feed of the observability server's /traces
	// endpoint. Nil disables capture; Run then carries no trace at all.
	TraceRing *metrics.TraceRing
	// SlowRing additionally receives queries whose wall-clock duration
	// reaches SlowQueryThreshold (the slow-query log). Requires
	// TraceRing-style capture to be meaningful but works standalone.
	SlowRing *metrics.TraceRing
	// SlowQueryThreshold gates SlowRing; 0 disables the slow-query log.
	SlowQueryThreshold time.Duration
	// DisableSelCapture turns off observed-selectivity recording (the
	// per-column EWMAs on the table and the selectivity.misestimate
	// histogram). Capture costs one atomic CAS per predicate per query
	// — never per row.
	DisableSelCapture bool
}

// DefaultProbeThreshold is the paper's scan-to-probe switch point.
const DefaultProbeThreshold = 0.0001

// DefaultDRAMTouch approximates one random DRAM cache miss.
const DefaultDRAMTouch = 60 * time.Nanosecond

// Executor runs queries against one table.
type Executor struct {
	tbl         *table.Table
	clock       *storage.Clock
	threshold   float64
	threads     int
	dramTouch   time.Duration
	parallelism int
	morselRows  int
	recent      *metrics.TraceRing
	slow        *metrics.TraceRing
	slowThresh  time.Duration
	selCapture  bool
	m           execInstruments
}

// execInstruments holds the executor's registry handles, resolved once
// at construction so the hot paths pay only an atomic add (or nothing:
// every handle is nil when the registry is nil, and instrument methods
// are no-ops on nil receivers).
type execInstruments struct {
	queries          *metrics.Counter
	parallelQueries  *metrics.Counter
	indexLookups     *metrics.Counter
	mrcScans         *metrics.Counter
	mrcProbes        *metrics.Counter
	sscgScans        *metrics.Counter
	sscgProbes       *metrics.Counter
	switchovers      *metrics.Counter
	morsels          *metrics.Counter
	rowsQualified    *metrics.Counter
	rowsScanned      *metrics.Counter
	rowsMaterialized *metrics.Counter
	dramNs           *metrics.Counter
	dramScanBytes    *metrics.Counter
	slowQueries      *metrics.Counter
	tracesCaptured   *metrics.Counter
	selSamples       *metrics.Counter
	misestimate      *metrics.Histogram
	wallNs           *metrics.Histogram
}

// newExecInstruments resolves the executor's instruments from r (all
// nil for a nil registry).
func newExecInstruments(r *metrics.Registry) execInstruments {
	return execInstruments{
		queries:          r.Counter("exec.queries"),
		parallelQueries:  r.Counter("exec.queries.parallel"),
		indexLookups:     r.Counter("exec.path.index_lookups"),
		mrcScans:         r.Counter("exec.path.mrc_scans"),
		mrcProbes:        r.Counter("exec.path.mrc_probes"),
		sscgScans:        r.Counter("exec.path.sscg_scans"),
		sscgProbes:       r.Counter("exec.path.sscg_probes"),
		switchovers:      r.Counter("exec.switch.scan_to_probe"),
		morsels:          r.Counter("exec.morsels"),
		rowsQualified:    r.Counter("exec.rows.qualified"),
		rowsScanned:      r.Counter("exec.rows.scanned"),
		rowsMaterialized: r.Counter("exec.rows.materialized"),
		dramNs:           r.Counter("exec.dram_ns"),
		dramScanBytes:    r.Counter("exec.dram.scan_bytes"),
		slowQueries:      r.Counter("exec.slow_queries"),
		tracesCaptured:   r.Counter("obs.traces_captured"),
		selSamples:       r.Counter("selectivity.samples"),
		misestimate:      r.Histogram("selectivity.misestimate", metrics.MisestimateBuckets()),
		wallNs:           r.Histogram("exec.wall_ns", metrics.IOLatencyBuckets()),
	}
}

// New builds an executor for tbl.
func New(tbl *table.Table, opts Options) *Executor {
	if opts.ProbeThreshold == 0 {
		opts.ProbeThreshold = DefaultProbeThreshold
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.DRAMTouch == 0 {
		opts.DRAMTouch = DefaultDRAMTouch
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	if opts.MorselRows < 1 {
		opts.MorselRows = DefaultMorselRows
	}
	return &Executor{
		tbl:         tbl,
		clock:       opts.Clock,
		threshold:   opts.ProbeThreshold,
		threads:     opts.Threads,
		dramTouch:   opts.DRAMTouch,
		parallelism: opts.Parallelism,
		morselRows:  opts.MorselRows,
		recent:      opts.TraceRing,
		slow:        opts.SlowRing,
		slowThresh:  opts.SlowQueryThreshold,
		selCapture:  !opts.DisableSelCapture,
		m:           newExecInstruments(opts.Registry),
	}
}

// Parallelism returns the configured worker count (1 = serial).
func (e *Executor) Parallelism() int { return e.parallelism }

// charge adds modeled DRAM time to the clock, the exec.dram_ns counter
// and the active trace (tr may be nil).
func (e *Executor) charge(tr *metrics.Trace, d time.Duration) {
	if d <= 0 {
		return
	}
	if e.clock != nil {
		e.clock.Advance(d)
	}
	e.m.dramNs.Add(int64(d))
	tr.AddDRAM(int64(d))
}

// chargeTouches charges n dependent DRAM accesses.
func (e *Executor) chargeTouches(tr *metrics.Trace, n int) {
	if n > 0 {
		e.charge(tr, time.Duration(n)*e.dramTouch)
	}
}

// Run executes q at the transaction's snapshot (tx may be nil for a
// read at the latest snapshot). When a trace ring is configured, the
// query is captured exactly like RunTraced.
func (e *Executor) Run(q Query, tx *mvcc.Tx) (*Result, error) {
	return e.RunCtx(context.Background(), q, tx)
}

// RunCtx is Run with a context. A sampled request span carried by ctx
// (see tierdb/internal/trace) gets an "exec.query" child whose
// children mirror the executed operators — one span per filter
// application and per materialize/visibility pass, with morsel fan-out
// recorded as an attribute.
func (e *Executor) RunCtx(ctx context.Context, q Query, tx *mvcc.Tx) (*Result, error) {
	if e.recent == nil && e.slow == nil && trace.FromContext(ctx) == nil {
		return e.run(q, tx, nil)
	}
	res, _, err := e.RunTracedCtx(ctx, q, tx)
	return res, err
}

// RunTraced is Run with per-query tracing: the returned Trace records
// the filter ordering chosen, per-operator access paths (including
// scan-to-probe switchovers), morsels per worker, rows qualified and
// the modeled cost split per device. The trace's device attribution
// assumes no concurrent query shares the executor's clock; the trace
// is partially filled when an error is returned. When trace rings are
// configured, the trace also enters the recent ring (and the slow ring
// if the wall-clock duration reaches the slow-query threshold).
func (e *Executor) RunTraced(q Query, tx *mvcc.Tx) (*Result, *metrics.Trace, error) {
	return e.RunTracedCtx(context.Background(), q, tx)
}

// RunTracedCtx is RunTraced with a context; see RunCtx for the span
// family a sampled request span receives.
func (e *Executor) RunTracedCtx(ctx context.Context, q Query, tx *mvcc.Tx) (*Result, *metrics.Trace, error) {
	tr := &metrics.Trace{
		Table:          e.tbl.Name(),
		Parallelism:    e.parallelism,
		ProbeThreshold: e.threshold,
	}
	if timed, ok := e.tbl.Store().(*storage.TimedStore); ok {
		tr.Device = timed.Profile().Name
	}
	span := trace.FromContext(ctx).Child("exec.query", trace.String("table", e.tbl.Name()))
	start := time.Now()
	if span != nil {
		// Anchor operator intervals at the span's own start so children
		// never precede their parent by a clock read.
		tr.StartNs = span.StartNs
	} else {
		tr.StartNs = start.UnixNano()
	}
	res, err := e.run(q, tx, tr)
	e.capture(tr, start, time.Since(start), err, span)
	emitSpans(span, tr, err)
	return res, tr, err
}

// emitSpans converts a finished query's operator intervals into child
// spans of the request trace and closes the "exec.query" span. No-op
// on a nil (unsampled) span.
func emitSpans(span *trace.Span, tr *metrics.Trace, err error) {
	if span == nil {
		return
	}
	for i := range tr.Operators {
		op := &tr.Operators[i]
		attrs := make([]trace.Attr, 0, 5)
		attrs = append(attrs,
			trace.String("partition", op.Partition),
			trace.Int("rows_in", int64(op.RowsIn)),
			trace.Int("rows_out", int64(op.RowsOut)))
		if op.Path != "" {
			attrs = append(attrs, trace.String("path", op.Path))
		}
		if op.Morsels > 0 {
			attrs = append(attrs, trace.Int("morsels", int64(op.Morsels)))
		}
		span.ChildAt("exec."+op.Name, op.StartNs, op.EndNs, attrs...)
	}
	span.SetAttr(
		trace.Int("rows", int64(tr.RowsQualified)),
		trace.Int("dram_ns", tr.DRAMNs),
		trace.Int("device_ns", tr.DeviceNs))
	span.SetError(err)
	span.End()
}

// Explain prepares q exactly as Run would — same predicate ordering,
// access-path choices and selectivity estimates — without executing
// anything. The returned trace carries the chosen filter order in
// Predicates; Operators stay empty. Plan-only introspection must not
// disturb the engine, so nothing is charged, captured or recorded.
func (e *Executor) Explain(q Query) (*metrics.Trace, error) {
	if err := e.checkQuery(q); err != nil {
		return nil, err
	}
	tr := &metrics.Trace{
		Table:          e.tbl.Name(),
		Parallelism:    e.parallelism,
		ProbeThreshold: e.threshold,
	}
	if timed, ok := e.tbl.Store().(*storage.TimedStore); ok {
		tr.Device = timed.Profile().Name
	}
	v := e.tbl.Pin()
	defer v.Release()
	for _, p := range e.orderPredicates(v, q.Predicates) {
		tr.Predicate(metrics.PredicateTrace{
			Column:               p.Column,
			Op:                   opName(p.Op),
			Path:                 e.pathOf(v, p),
			EstimatedSelectivity: e.estimateSelectivity(p),
		})
	}
	return tr, nil
}

// opClock returns the device clock to diff for per-operator page-read
// attribution, nil when tracing is off or the store is untimed. Like
// the trace's query-level attribution, per-operator deltas assume no
// concurrent query shares the clock.
func (e *Executor) opClock(tr *metrics.Trace) *storage.Clock {
	if tr == nil {
		return nil
	}
	if timed, ok := e.tbl.Store().(*storage.TimedStore); ok {
		return timed.Clock()
	}
	return nil
}

// stampPageReads attributes a step's device page reads to the single
// operator the step appended (no-op when the step recorded none, or
// more than one — attribution must never double-count).
func stampPageReads(tr *metrics.Trace, mark int, reads int64) {
	if tr == nil || reads <= 0 || len(tr.Operators) != mark+1 {
		return
	}
	tr.Operators[mark].PageReads = reads
}

// capture publishes a finished query's trace into the recent ring and,
// past the slow-query threshold, the slow ring. No-op without rings.
func (e *Executor) capture(tr *metrics.Trace, start time.Time, wall time.Duration, err error, span *trace.Span) {
	if e.recent == nil && e.slow == nil {
		return
	}
	e.m.wallNs.Observe(int64(wall))
	entry := &metrics.TraceEntry{
		UnixNano: start.UnixNano(),
		WallNs:   int64(wall),
		Trace:    tr,
	}
	if span != nil {
		entry.TraceID = span.Trace.String()
	}
	if err != nil {
		entry.Err = err.Error()
	}
	e.recent.Add(entry)
	e.m.tracesCaptured.Inc()
	if e.slow != nil && e.slowThresh > 0 && wall >= e.slowThresh {
		// A fresh entry: each ring stamps its own sequence number.
		slowEntry := *entry
		e.slow.Add(&slowEntry)
		e.m.slowQueries.Inc()
	}
}

// observeSelectivity folds the measured qualifying fraction of one
// main-partition predicate application (rows out of rows in) into the
// column's EWMA on the table, and scores the optimizer's estimate in
// the selectivity.misestimate histogram (milli-nats of |ln(obs/est)|).
// A zero-match application is clamped to half a row so the log ratio
// and the EWMA stay finite and model-valid.
func (e *Executor) observeSelectivity(p Predicate, in, out int) {
	if !e.selCapture || in <= 0 {
		return
	}
	f := float64(out) / float64(in)
	if out == 0 {
		f = 1 / float64(2*in)
	}
	e.tbl.RecordObservedSelectivity(p.Column, f)
	e.m.selSamples.Inc()
	if est := e.estimateSelectivity(p); est > 0 {
		e.m.misestimate.Observe(int64(math.Abs(math.Log(f/est)) * 1000))
	}
}

// run executes q, filling tr in when non-nil.
func (e *Executor) run(q Query, tx *mvcc.Tx, tr *metrics.Trace) (*Result, error) {
	var snapshot mvcc.Timestamp
	var self mvcc.TxID
	if tx != nil {
		snapshot, self = tx.Snapshot(), tx.ID()
	} else {
		snapshot = e.tbl.Manager().LastCommit()
	}
	if err := e.checkQuery(q); err != nil {
		return nil, err
	}
	e.m.queries.Inc()
	if e.parallelism > 1 {
		e.m.parallelQueries.Inc()
	}

	// Pin the table's structure for the whole query: an online merge
	// swapping the main partition mid-query cannot tear the reads, and
	// the epoch reference keeps the pinned SSCG's pages allocated until
	// Release.
	v := e.tbl.Pin()
	defer v.Release()

	// Snapshot the device clock so the trace can attribute modeled
	// cost and page reads to this query.
	var devClock *storage.Clock
	var reads0 int64
	var elapsed0 time.Duration
	if tr != nil {
		if timed, ok := e.tbl.Store().(*storage.TimedStore); ok {
			devClock = timed.Clock()
		}
		if devClock != nil {
			reads0, elapsed0 = devClock.Reads(), devClock.Elapsed()
		}
	}

	ordered := e.orderPredicates(v, q.Predicates)
	if tr != nil {
		for _, p := range ordered {
			tr.Predicate(metrics.PredicateTrace{
				Column:               p.Column,
				Op:                   opName(p.Op),
				Path:                 e.pathOf(v, p),
				EstimatedSelectivity: e.estimateSelectivity(p),
			})
		}
	}

	var mainIDs []uint32
	var err error
	if e.parallelism > 1 {
		mainIDs, err = e.runMainParallel(v, ordered, snapshot, self, tr)
	} else {
		mainIDs, err = e.runMain(v, ordered, snapshot, self, tr)
	}
	if err != nil {
		return nil, err
	}
	deltaIDs, err := e.runDelta(v, ordered, snapshot, self, tr)
	if err != nil {
		return nil, err
	}

	res := &Result{IDs: make([]table.RowID, 0, len(mainIDs)+len(deltaIDs))}
	for _, p := range mainIDs {
		res.IDs = append(res.IDs, table.RowID(p))
	}
	mainRows := uint64(v.MainRows())
	for _, p := range deltaIDs {
		res.IDs = append(res.IDs, mainRows+uint64(p))
	}
	if len(q.Project) > 0 {
		if e.parallelism > 1 {
			err = e.materializeParallel(v, res, q.Project, tr)
		} else {
			err = e.materialize(v, res, q.Project, tr)
		}
		if err != nil {
			return nil, err
		}
	}
	e.m.rowsQualified.Add(int64(len(res.IDs)))
	if tr != nil {
		tr.RowsQualified = len(res.IDs)
		if devClock != nil {
			tr.PageReads = devClock.Reads() - reads0
			total := int64(devClock.Elapsed() - elapsed0)
			if devClock == e.clock {
				// Shared clock (the tierdb default): the delta includes
				// the DRAM charges this query made; split them out.
				tr.DeviceNs = max(total-tr.DRAMNs, 0)
			} else {
				tr.DeviceNs = total
			}
		}
	}
	return res, nil
}

// opName renders a predicate operator for traces.
func opName(op Op) string {
	if op == Between {
		return "between"
	}
	return "eq"
}

// pathOf returns the access-path rank label of p's column in the pinned
// view, mirroring orderPredicates' ranking.
func (e *Executor) pathOf(v *table.View, p Predicate) string {
	if v.Index(p.Column) != nil {
		return "index"
	}
	if v.MRC(p.Column) != nil {
		return "mrc"
	}
	return "sscg"
}

// checkQuery validates predicate and projection column indexes.
func (e *Executor) checkQuery(q Query) error {
	n := e.tbl.Schema().Len()
	for _, p := range q.Predicates {
		if p.Column < 0 || p.Column >= n {
			return fmt.Errorf("exec: predicate column %d out of range (%d)", p.Column, n)
		}
		if p.Op != Eq && p.Op != Between {
			return fmt.Errorf("exec: unknown operator %d", p.Op)
		}
	}
	for _, c := range q.Project {
		if c < 0 || c >= n {
			return fmt.Errorf("exec: projected column %d out of range (%d)", c, n)
		}
	}
	return nil
}

// orderPredicates sorts predicates as the paper prescribes: indexed
// first, then DRAM-resident by ascending selectivity, then tiered by
// ascending selectivity. Equality predicates use the 1/distinct
// estimate; range predicates use the column's equi-depth histogram
// when available (Section III-A: "distinct counts and histograms").
func (e *Executor) orderPredicates(v *table.View, preds []Predicate) []Predicate {
	out := append([]Predicate(nil), preds...)
	rank := func(p Predicate) (int, float64) {
		sel := e.estimateSelectivity(p)
		if v.Index(p.Column) != nil {
			return 0, sel
		}
		if v.MRC(p.Column) != nil {
			return 1, sel
		}
		return 2, sel
	}
	sort.SliceStable(out, func(a, b int) bool {
		ra, sa := rank(out[a])
		rb, sb := rank(out[b])
		if ra != rb {
			return ra < rb
		}
		return sa < sb
	})
	return out
}

// estimateSelectivity returns the expected qualifying fraction of one
// predicate.
func (e *Executor) estimateSelectivity(p Predicate) float64 {
	switch p.Op {
	case Between:
		if p.Value.Type() == p.Hi.Type() {
			return e.tbl.RangeSelectivity(p.Column, p.Value, p.Hi)
		}
		return e.tbl.Selectivity(p.Column)
	default:
		return e.tbl.Selectivity(p.Column)
	}
}

// runMain evaluates the ordered predicates over the main partition and
// returns qualifying main-row positions.
func (e *Executor) runMain(v *table.View, preds []Predicate, snapshot mvcc.Timestamp, self mvcc.TxID, tr *metrics.Trace) ([]uint32, error) {
	mainRows := v.MainRows()
	if mainRows == 0 {
		return nil, nil
	}
	skip := func(row int) bool {
		return !v.MainVersions().Visible(row, snapshot, self)
	}
	clk := e.opClock(tr)
	var cand []uint32
	first := true
	for _, p := range preds {
		mark, reads0 := 0, int64(0)
		if clk != nil {
			mark, reads0 = len(tr.Operators), clk.Reads()
		}
		var err error
		cand, err = e.applyMain(v, p, cand, first, skip, tr)
		if err != nil {
			return nil, err
		}
		if clk != nil {
			stampPageReads(tr, mark, clk.Reads()-reads0)
		}
		first = false
		if len(cand) == 0 {
			return nil, nil
		}
	}
	if first {
		// No predicates: all visible rows qualify.
		for row := 0; row < mainRows; row++ {
			if !skip(row) {
				cand = append(cand, uint32(row))
			}
		}
		e.m.rowsScanned.Add(int64(mainRows))
		tr.Op(metrics.OperatorTrace{
			Name: "visible", Partition: "main", Column: -1,
			RowsIn: mainRows, RowsOut: len(cand),
		})
	}
	return cand, nil
}

// applyMain evaluates one predicate over the main partition, narrowing
// the candidate list (nil on the first predicate).
func (e *Executor) applyMain(v *table.View, p Predicate, cand []uint32, first bool, skip func(int) bool, tr *metrics.Trace) ([]uint32, error) {
	mainRows := v.MainRows()

	// Index access path (always DRAM-resident).
	if idx := v.Index(p.Column); idx != nil && first {
		out := e.indexLookup(v, p, skip, tr)
		e.m.indexLookups.Inc()
		e.observeSelectivity(p, mainRows, len(out))
		tr.Op(metrics.OperatorTrace{
			Name: "index", Partition: "main", Path: "index", Column: p.Column,
			RowsIn: mainRows, RowsOut: len(out),
		})
		return out, nil
	}

	if mrc := v.MRC(p.Column); mrc != nil {
		if first {
			// Full scan on the compressed DRAM column.
			e.charge(tr, device.DRAM.SequentialReadTime(mrc.Bytes(), e.threads))
			e.m.mrcScans.Inc()
			e.m.rowsScanned.Add(int64(mainRows))
			e.m.dramScanBytes.Add(mrc.Bytes())
			var out []uint32
			var err error
			switch p.Op {
			case Eq:
				out, err = mrc.ScanEqual(p.Value, nil, skip)
			default:
				out, err = mrc.ScanRange(p.Value, p.Hi, nil, skip)
			}
			if err != nil {
				return nil, err
			}
			e.observeSelectivity(p, mainRows, len(out))
			tr.Op(metrics.OperatorTrace{
				Name: "scan", Partition: "main", Path: "mrc", Column: p.Column,
				RowsIn: mainRows, RowsOut: len(out),
			})
			return out, nil
		}
		// Subsequent predicate: probe the candidate list (always
		// cheaper than re-scanning DRAM).
		e.chargeTouches(tr, len(cand))
		e.m.mrcProbes.Inc()
		e.m.rowsScanned.Add(int64(len(cand)))
		var out []uint32
		var err error
		switch p.Op {
		case Eq:
			out, err = mrc.ProbeEqual(p.Value, cand, nil)
		default:
			out, err = mrc.ProbeRange(p.Value, p.Hi, cand, nil)
		}
		if err != nil {
			return nil, err
		}
		e.observeSelectivity(p, len(cand), len(out))
		tr.Op(metrics.OperatorTrace{
			Name: "probe", Partition: "main", Path: "mrc", Column: p.Column,
			RowsIn: len(cand), RowsOut: len(out),
		})
		return out, nil
	}

	// Tiered column (SSCG-placed).
	gf := v.GroupField(p.Column)
	group := v.Group()
	if group == nil || gf < 0 {
		return nil, fmt.Errorf("exec: column %d has no storage (internal layout error)", p.Column)
	}
	pred, err := e.compile(p)
	if err != nil {
		return nil, err
	}
	fraction := 1.0
	if !first {
		fraction = float64(len(cand)) / float64(mainRows)
	}
	if first || fraction > e.threshold {
		// Scan the whole group (reads every page), then intersect.
		e.m.sscgScans.Inc()
		e.m.rowsScanned.Add(int64(mainRows))
		matches, err := group.Scan(gf, pred, nil, skip)
		if err != nil {
			return nil, err
		}
		// The full-partition match count is the predicate's own marginal
		// fraction — measured before intersecting with the candidates.
		e.observeSelectivity(p, mainRows, len(matches))
		out := matches
		if !first {
			out = intersect(cand, matches)
		}
		op := metrics.OperatorTrace{
			Name: "scan", Partition: "main", Path: "sscg", Column: p.Column,
			RowsIn: mainRows, RowsOut: len(out),
		}
		if !first {
			op.RowsIn, op.CandidateFraction = len(cand), fraction
		}
		tr.Op(op)
		return out, nil
	}
	// Probe: one page access per candidate. This is the paper's
	// scan-to-probe switchover — the candidate fraction fell below the
	// threshold, so per-candidate page accesses beat a full scan.
	e.m.sscgProbes.Inc()
	e.m.switchovers.Inc()
	e.m.rowsScanned.Add(int64(len(cand)))
	out, err := group.Probe(gf, pred, cand, nil)
	if err != nil {
		return nil, err
	}
	e.observeSelectivity(p, len(cand), len(out))
	tr.Op(metrics.OperatorTrace{
		Name: "probe", Partition: "main", Path: "sscg", Column: p.Column,
		SwitchedToProbe: true, CandidateFraction: fraction,
		RowsIn: len(cand), RowsOut: len(out),
	})
	return out, nil
}

// indexLookup resolves a predicate through the column's B+-tree index,
// returning visible matching positions in ascending row order. Shared
// by the serial and parallel paths (index descent is DRAM-cheap and
// stays single-threaded either way).
func (e *Executor) indexLookup(v *table.View, p Predicate, skip func(int) bool, tr *metrics.Trace) []uint32 {
	idx := v.Index(p.Column)
	var positions []uint32
	collect := func(_ value.Value, rows []uint32) bool {
		positions = append(positions, rows...)
		return true
	}
	switch p.Op {
	case Eq:
		positions = append(positions, idx.Lookup(p.Value)...)
	case Between:
		idx.Range(p.Value, p.Hi, collect)
	}
	e.chargeTouches(tr, 20+len(positions)) // tree descent + leaf reads
	out := positions[:0]
	for _, pos := range positions {
		if !skip(int(pos)) {
			out = append(out, pos)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// compile turns a predicate into a value filter for SSCG evaluation.
func (e *Executor) compile(p Predicate) (func(value.Value) bool, error) {
	typ := e.tbl.Schema().Field(p.Column).Type
	if p.Value.Type() != typ {
		return nil, fmt.Errorf("exec: predicate on column %d has type %s, want %s", p.Column, p.Value.Type(), typ)
	}
	switch p.Op {
	case Eq:
		v := p.Value
		return func(x value.Value) bool { return x.Equal(v) }, nil
	case Between:
		if p.Hi.Type() != typ {
			return nil, fmt.Errorf("exec: range bound on column %d has type %s, want %s", p.Column, p.Hi.Type(), typ)
		}
		lo, hi := p.Value, p.Hi
		return func(x value.Value) bool { return x.Compare(lo) >= 0 && x.Compare(hi) <= 0 }, nil
	}
	return nil, fmt.Errorf("exec: unknown operator %d", p.Op)
}

// runDelta evaluates predicates over the delta side of the view. During
// an online merge the delta is split: the frozen partition (being folded
// into the new main) comes first in RowID order, then the active
// partition offset by the frozen row count — matching View.Visible's
// routing, so RowIDs assembled by run() resolve consistently.
func (e *Executor) runDelta(v *table.View, preds []Predicate, snapshot mvcc.Timestamp, self mvcc.TxID, tr *metrics.Trace) ([]uint32, error) {
	var out []uint32
	if fz := v.Frozen(); fz != nil {
		ids, err := e.runDeltaPart(fz, v.FrozenRows(), 0, "delta.frozen", preds, snapshot, self, tr)
		if err != nil {
			return nil, err
		}
		out = ids
	}
	ids, err := e.runDeltaPart(v.Active(), v.ActiveRows(), uint32(v.FrozenRows()), "delta", preds, snapshot, self, tr)
	if err != nil {
		return nil, err
	}
	return append(out, ids...), nil
}

// runDeltaPart evaluates predicates over one delta partition. bound
// caps the physical positions considered (the view's pin-time row count
// for the active delta, which keeps growing underneath us); offset
// shifts the returned positions into the view's combined delta RowID
// space.
func (e *Executor) runDeltaPart(d *delta.Partition, bound int, offset uint32, part string, preds []Predicate, snapshot mvcc.Timestamp, self mvcc.TxID, tr *metrics.Trace) ([]uint32, error) {
	if bound == 0 {
		return nil, nil
	}
	inBound := func(positions []uint32) []uint32 {
		out := positions[:0]
		for _, pos := range positions {
			if int(pos) < bound {
				out = append(out, pos)
			}
		}
		return out
	}
	shift := func(positions []uint32) []uint32 {
		if offset != 0 {
			for i := range positions {
				positions[i] += offset
			}
		}
		return positions
	}
	if len(preds) == 0 {
		rows := d.VisibleRows(snapshot, self)
		out := make([]uint32, 0, len(rows))
		for _, r := range rows {
			if r < bound {
				out = append(out, uint32(r))
			}
		}
		tr.Op(metrics.OperatorTrace{
			Name: "visible", Partition: part, Column: -1,
			RowsIn: bound, RowsOut: len(out),
		})
		return shift(out), nil
	}
	var cand []uint32
	for i, p := range preds {
		if i == 0 {
			var err error
			switch p.Op {
			case Eq:
				cand, err = d.ScanEqual(p.Column, p.Value, snapshot, self, nil)
			default:
				cand, err = d.ScanRange(p.Column, p.Value, p.Hi, snapshot, self, nil)
			}
			if err != nil {
				return nil, err
			}
			cand = inBound(cand)
			e.chargeTouches(tr, 20+len(cand))
			tr.Op(metrics.OperatorTrace{
				Name: "scan", Partition: part, Path: "index", Column: p.Column,
				RowsIn: bound, RowsOut: len(cand),
			})
		} else {
			in := len(cand)
			pred, err := e.compile(p)
			if err != nil {
				return nil, err
			}
			out := cand[:0]
			for _, pos := range cand {
				val, err := d.Get(int(pos), p.Column)
				if err != nil {
					return nil, err
				}
				if pred(val) {
					out = append(out, pos)
				}
			}
			cand = out
			e.chargeTouches(tr, len(cand))
			tr.Op(metrics.OperatorTrace{
				Name: "probe", Partition: part, Column: p.Column,
				RowsIn: in, RowsOut: len(cand),
			})
		}
		if len(cand) == 0 {
			return nil, nil
		}
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
	return shift(cand), nil
}

// materialize fills res.Rows with the projected columns of each
// qualifying row. For main-partition rows with SSCG-placed projections,
// one group page access delivers all grouped attributes of a row.
func (e *Executor) materialize(v *table.View, res *Result, project []int, tr *metrics.Trace) error {
	clk := e.opClock(tr)
	var reads0 int64
	if clk != nil {
		reads0 = clk.Reads()
	}
	mainRows := uint64(v.MainRows())
	group := v.Group()
	needGroup := false
	for _, c := range project {
		if v.GroupField(c) >= 0 {
			needGroup = true
		}
	}
	res.Rows = make([][]value.Value, len(res.IDs))
	for i, id := range res.IDs {
		row := make([]value.Value, len(project))
		var groupRow []value.Value
		if id < mainRows && needGroup && group != nil {
			var err error
			groupRow, err = group.ReadRow(int(id))
			if err != nil {
				return err
			}
		}
		for j, c := range project {
			if id < mainRows {
				if gf := v.GroupField(c); gf >= 0 && groupRow != nil {
					row[j] = groupRow[gf]
					continue
				}
				e.chargeTouches(tr, 2) // value vector + dictionary
			}
			val, err := v.GetValue(id, c)
			if err != nil {
				return err
			}
			row[j] = val
		}
		res.Rows[i] = row
	}
	e.m.rowsMaterialized.Add(int64(len(res.IDs)))
	op := metrics.OperatorTrace{
		Name: "materialize", Partition: "main", Column: -1,
		RowsIn: len(res.IDs), RowsOut: len(res.IDs),
	}
	if clk != nil {
		if d := clk.Reads() - reads0; d > 0 {
			op.PageReads = d
		}
	}
	tr.Op(op)
	return nil
}

// intersect returns the sorted intersection of two ascending position
// lists.
func intersect(a, b []uint32) []uint32 {
	out := make([]uint32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
