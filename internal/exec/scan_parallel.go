// Morsel-driven parallel execution of main-partition scans, probes and
// tuple materialization (cf. HyPer's morsel-driven parallelism): the row
// range is carved into fixed-size morsels, workers pull morsels from a
// shared counter (fast workers steal work from slow ones), and
// per-morsel results are merged back in morsel order. Because every
// morsel covers a disjoint ascending row range, the merged output is
// byte-identical to the serial executor's.
//
// Cost accounting follows the same parallel semantics: every worker
// charges a private virtual clock, and at the phase barrier the shared
// clock advances by the phase's wall-clock — the slowest worker, which
// under morsel-balanced scheduling is the per-worker mean — while
// page-read counts sum. See Clock.Absorb for why the mean stands in
// for the maximum.
package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tierdb/internal/column"
	"tierdb/internal/device"
	"tierdb/internal/metrics"
	"tierdb/internal/mvcc"
	"tierdb/internal/sscg"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// DefaultMorselRows is the number of main-partition rows per morsel.
// Large enough to amortize dispatch, small enough that a query over a
// million rows yields dozens of units for load balancing.
const DefaultMorselRows = 16384

// worker carries one worker's execution state for one parallel query: a
// private virtual clock (merged via Clock.Absorb at the barrier), a
// timed device view charging that clock, a private SSCG view with its
// own page-buffer pool, and DRAM cost counters.
type worker struct {
	clock       *storage.Clock
	store       storage.Store
	group       *sscg.Group
	touches     int64         // dependent DRAM accesses performed
	dram        time.Duration // modeled DRAM streaming time
	rowsScanned int           // scratch: MRC rows scanned this phase
	morsels     int64         // morsels this worker executed (for traces)
}

// newWorkers builds the per-worker state for one parallel query. When
// the table's device is timed, each worker gets a fork charging its
// private clock at the query's parallelism level, so the device model
// sees the true stream count. Workers view the pinned snapshot's SSCG,
// not the table's live one, so a mid-query merge swap is invisible.
func (e *Executor) newWorkers(v *table.View) []*worker {
	n := e.parallelism
	base := e.tbl.Store()
	timed, _ := base.(*storage.TimedStore)
	group := v.Group()
	ws := make([]*worker, n)
	for i := range ws {
		w := &worker{}
		if timed != nil {
			w.clock = &storage.Clock{}
			w.store = timed.Fork(w.clock, n)
		} else {
			w.store = base
		}
		if group != nil {
			w.group = group.WithBacking(w.store)
		}
		ws[i] = w
	}
	return ws
}

// settle charges the parallel phases' modeled cost to the shared
// clocks: DRAM and device time advance by the phase wall-clock (the
// per-worker share of the total, i.e. the slowest worker under
// balanced morsel scheduling), page-read counts by the total. It also
// reports per-worker morsel counts to the metrics registry and the
// active trace.
func (e *Executor) settle(ws []*worker, tr *metrics.Trace) {
	p := time.Duration(e.parallelism)
	var sum time.Duration
	var morsels int64
	counts := make([]int64, len(ws))
	for i, w := range ws {
		sum += w.dram + time.Duration(w.touches)*e.dramTouch
		morsels += w.morsels
		counts[i] = w.morsels
	}
	e.charge(tr, (sum+p-1)/p)
	if morsels > 0 {
		e.m.morsels.Add(morsels)
		tr.AddWorkerMorsels(counts)
	}
	if timed, ok := e.tbl.Store().(*storage.TimedStore); ok {
		clocks := make([]*storage.Clock, 0, len(ws))
		for _, w := range ws {
			clocks = append(clocks, w.clock)
		}
		timed.Clock().Absorb(e.parallelism, clocks...)
	}
}

// morselsOf sums the workers' executed-morsel counters; the delta
// around an operator yields that operator's morsel count for traces.
func morselsOf(ws []*worker) int64 {
	var n int64
	for _, w := range ws {
		n += w.morsels
	}
	return n
}

// readsOf sums the workers' private device-clock page-read counts.
// Called only at phase barriers (after runMorsels returns), so the
// loads race with nothing.
func readsOf(ws []*worker) int64 {
	var n int64
	for _, w := range ws {
		if w.clock != nil {
			n += w.clock.Reads()
		}
	}
	return n
}

// runMorsels fans nMorsels work units out to the workers. Each worker
// pulls the next morsel index from a shared counter and runs fn on it.
// The first error wins: it cancels the remaining morsels, every worker
// drains promptly, and the error is returned only after all workers
// have exited — no goroutine outlives the call.
func runMorsels(ws []*worker, nMorsels int, fn func(w *worker, m int) error) error {
	if nMorsels <= 0 {
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		once     sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for _, w := range ws {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for !failed.Load() {
				m := int(next.Add(1)) - 1
				if m >= nMorsels {
					return
				}
				w.morsels++
				if err := fn(w, m); err != nil {
					once.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// concat merges per-morsel position lists in morsel order. Every morsel
// covers a disjoint ascending row range, so the concatenation is
// globally sorted — the ordered-merge guarantee of the parallel path.
func concat(parts [][]uint32) []uint32 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]uint32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// chunkCount splits n candidates into up to four chunks per worker so
// morsel stealing can rebalance skew, but never more chunks than items.
func chunkCount(n, workers int) int {
	c := 4 * workers
	if c > n {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// chunkBounds returns the m-th of n even, order-preserving chunks of a
// list of length ln.
func chunkBounds(ln, n, m int) (lo, hi int) {
	return m * ln / n, (m + 1) * ln / n
}

// runMainParallel is runMain with morsel-driven workers; it evaluates
// the ordered predicates over the main partition and returns qualifying
// positions, identical to the serial path's output.
func (e *Executor) runMainParallel(v *table.View, preds []Predicate, snapshot mvcc.Timestamp, self mvcc.TxID, tr *metrics.Trace) ([]uint32, error) {
	mainRows := v.MainRows()
	if mainRows == 0 {
		return nil, nil
	}
	ws := e.newWorkers(v)
	defer e.settle(ws, tr)
	skip := func(row int) bool {
		return !v.MainVersions().Visible(row, snapshot, self)
	}
	var cand []uint32
	first := true
	for _, p := range preds {
		mark, reads0 := 0, int64(0)
		if tr != nil {
			mark, reads0 = len(tr.Operators), readsOf(ws)
		}
		var err error
		cand, err = e.applyMainParallel(v, p, cand, first, skip, ws, tr)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			stampPageReads(tr, mark, readsOf(ws)-reads0)
		}
		first = false
		if len(cand) == 0 {
			return nil, nil
		}
	}
	if first {
		// No predicates: all visible rows qualify.
		return e.visibleParallel(mainRows, skip, ws, tr)
	}
	return cand, nil
}

// visibleParallel collects all MVCC-visible main rows morsel-wise.
func (e *Executor) visibleParallel(mainRows int, skip func(int) bool, ws []*worker, tr *metrics.Trace) ([]uint32, error) {
	nMorsels := (mainRows + e.morselRows - 1) / e.morselRows
	parts := make([][]uint32, nMorsels)
	before := morselsOf(ws)
	err := runMorsels(ws, nMorsels, func(w *worker, m int) error {
		lo := m * e.morselRows
		hi := min(lo+e.morselRows, mainRows)
		var out []uint32
		for row := lo; row < hi; row++ {
			if !skip(row) {
				out = append(out, uint32(row))
			}
		}
		parts[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.m.rowsScanned.Add(int64(mainRows))
	out := concat(parts)
	tr.Op(metrics.OperatorTrace{
		Name: "visible", Partition: "main", Column: -1,
		RowsIn: mainRows, RowsOut: len(out), Morsels: int(morselsOf(ws) - before),
	})
	return out, nil
}

// applyMainParallel mirrors applyMain — same access-path decisions,
// same results — with the scan, probe and refinement work fanned out to
// the worker pool.
func (e *Executor) applyMainParallel(v *table.View, p Predicate, cand []uint32, first bool, skip func(int) bool, ws []*worker, tr *metrics.Trace) ([]uint32, error) {
	mainRows := v.MainRows()

	// Index access path: the tree descent is DRAM-cheap and stays
	// single-threaded; subsequent predicates refine in parallel.
	if idx := v.Index(p.Column); idx != nil && first {
		out := e.indexLookup(v, p, skip, tr)
		e.m.indexLookups.Inc()
		e.observeSelectivity(p, mainRows, len(out))
		tr.Op(metrics.OperatorTrace{
			Name: "index", Partition: "main", Path: "index", Column: p.Column,
			RowsIn: mainRows, RowsOut: len(out),
		})
		return out, nil
	}

	before := morselsOf(ws)
	opMorsels := func() int { return int(morselsOf(ws) - before) }

	if mrc := v.MRC(p.Column); mrc != nil {
		if first {
			e.m.mrcScans.Inc()
			e.m.rowsScanned.Add(int64(mainRows))
			e.m.dramScanBytes.Add(mrc.Bytes())
			out, err := e.scanMRCParallel(mainRows, mrc, p, skip, ws)
			if err != nil {
				return nil, err
			}
			e.observeSelectivity(p, mainRows, len(out))
			tr.Op(metrics.OperatorTrace{
				Name: "scan", Partition: "main", Path: "mrc", Column: p.Column,
				RowsIn: mainRows, RowsOut: len(out), Morsels: opMorsels(),
			})
			return out, nil
		}
		e.m.mrcProbes.Inc()
		e.m.rowsScanned.Add(int64(len(cand)))
		out, err := e.probeMRCParallel(mrc, p, cand, ws)
		if err != nil {
			return nil, err
		}
		e.observeSelectivity(p, len(cand), len(out))
		tr.Op(metrics.OperatorTrace{
			Name: "probe", Partition: "main", Path: "mrc", Column: p.Column,
			RowsIn: len(cand), RowsOut: len(out), Morsels: opMorsels(),
		})
		return out, nil
	}

	// Tiered column (SSCG-placed).
	gf := v.GroupField(p.Column)
	if v.Group() == nil || gf < 0 {
		return nil, fmt.Errorf("exec: column %d has no storage (internal layout error)", p.Column)
	}
	pred, err := e.compile(p)
	if err != nil {
		return nil, err
	}
	fraction := 1.0
	if !first {
		fraction = float64(len(cand)) / float64(mainRows)
	}
	if first || fraction > e.threshold {
		e.m.sscgScans.Inc()
		e.m.rowsScanned.Add(int64(mainRows))
		matches, err := e.scanGroupParallel(v, gf, pred, skip, ws)
		if err != nil {
			return nil, err
		}
		// Marginal fraction over the full partition, as on the serial path.
		e.observeSelectivity(p, mainRows, len(matches))
		out := matches
		if !first {
			out = intersect(cand, matches)
		}
		op := metrics.OperatorTrace{
			Name: "scan", Partition: "main", Path: "sscg", Column: p.Column,
			RowsIn: mainRows, RowsOut: len(out), Morsels: opMorsels(),
		}
		if !first {
			op.RowsIn, op.CandidateFraction = len(cand), fraction
		}
		tr.Op(op)
		return out, nil
	}
	// Scan-to-probe switchover, as on the serial path.
	e.m.sscgProbes.Inc()
	e.m.switchovers.Inc()
	e.m.rowsScanned.Add(int64(len(cand)))
	out, err := e.probeGroupParallel(gf, pred, cand, ws)
	if err != nil {
		return nil, err
	}
	e.observeSelectivity(p, len(cand), len(out))
	tr.Op(metrics.OperatorTrace{
		Name: "probe", Partition: "main", Path: "sscg", Column: p.Column,
		SwitchedToProbe: true, CandidateFraction: fraction,
		RowsIn: len(cand), RowsOut: len(out), Morsels: opMorsels(),
	})
	return out, nil
}

// scanMRCParallel runs the first (DRAM-resident) predicate as a
// morsel-parallel scan over the compressed column.
func (e *Executor) scanMRCParallel(mainRows int, mrc *column.MRC, p Predicate, skip func(int) bool, ws []*worker) ([]uint32, error) {
	nMorsels := (mainRows + e.morselRows - 1) / e.morselRows
	parts := make([][]uint32, nMorsels)
	err := runMorsels(ws, nMorsels, func(w *worker, m int) error {
		lo := m * e.morselRows
		hi := min(lo+e.morselRows, mainRows)
		var out []uint32
		var err error
		switch p.Op {
		case Eq:
			out, err = mrc.ScanEqualIn(p.Value, lo, hi, nil, skip)
		default:
			out, err = mrc.ScanRangeIn(p.Value, p.Hi, lo, hi, nil, skip)
		}
		if err != nil {
			return err
		}
		parts[m] = out
		w.rowsScanned += hi - lo
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Each worker streamed its share of the column's bytes with the
	// others running concurrently; one latency charge per stream.
	bytesPerRow := float64(mrc.Bytes()) / float64(mainRows)
	for _, w := range ws {
		if w.rowsScanned > 0 {
			w.dram += device.DRAM.SequentialReadTime(int64(float64(w.rowsScanned)*bytesPerRow), len(ws))
			w.rowsScanned = 0
		}
	}
	return concat(parts), nil
}

// probeMRCParallel refines the candidate list against a DRAM column,
// chunk-wise across workers.
func (e *Executor) probeMRCParallel(mrc *column.MRC, p Predicate, cand []uint32, ws []*worker) ([]uint32, error) {
	nChunks := chunkCount(len(cand), len(ws))
	parts := make([][]uint32, nChunks)
	err := runMorsels(ws, nChunks, func(w *worker, m int) error {
		lo, hi := chunkBounds(len(cand), nChunks, m)
		var out []uint32
		var err error
		switch p.Op {
		case Eq:
			out, err = mrc.ProbeEqual(p.Value, cand[lo:hi], nil)
		default:
			out, err = mrc.ProbeRange(p.Value, p.Hi, cand[lo:hi], nil)
		}
		if err != nil {
			return err
		}
		parts[m] = out
		w.touches += int64(hi - lo)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concat(parts), nil
}

// scanGroupParallel scans the SSCG morsel-wise. Morsel boundaries align
// to page boundaries so no page is read by two workers; device time
// flows through each worker's timed fork onto its private clock.
func (e *Executor) scanGroupParallel(v *table.View, gf int, pred func(value.Value) bool, skip func(int) bool, ws []*worker) ([]uint32, error) {
	mainRows := v.MainRows()
	align := v.Group().RowsPerPage()
	if align < 1 {
		align = 1 // page-spanning rows: every row owns its pages
	}
	morsel := (e.morselRows + align - 1) / align * align
	nMorsels := (mainRows + morsel - 1) / morsel
	parts := make([][]uint32, nMorsels)
	err := runMorsels(ws, nMorsels, func(w *worker, m int) error {
		lo := m * morsel
		hi := min(lo+morsel, mainRows)
		out, err := w.group.ScanRows(gf, pred, lo, hi, nil, skip)
		if err != nil {
			return err
		}
		parts[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concat(parts), nil
}

// probeGroupParallel probes candidate positions in the SSCG, chunk-wise
// across workers (one page access per candidate, overlapped streams).
func (e *Executor) probeGroupParallel(gf int, pred func(value.Value) bool, cand []uint32, ws []*worker) ([]uint32, error) {
	nChunks := chunkCount(len(cand), len(ws))
	parts := make([][]uint32, nChunks)
	err := runMorsels(ws, nChunks, func(w *worker, m int) error {
		lo, hi := chunkBounds(len(cand), nChunks, m)
		out, err := w.group.Probe(gf, pred, cand[lo:hi], nil)
		if err != nil {
			return err
		}
		parts[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concat(parts), nil
}

// materializeParallel fills res.Rows chunk-wise across workers. Each
// output slot is owned by exactly one worker (disjoint index ranges),
// so no merge is needed and the row order matches the serial path.
func (e *Executor) materializeParallel(v *table.View, res *Result, project []int, tr *metrics.Trace) error {
	ws := e.newWorkers(v)
	defer e.settle(ws, tr)
	before := morselsOf(ws)
	beforeReads := readsOf(ws)
	defer func() {
		op := metrics.OperatorTrace{
			Name: "materialize", Column: -1,
			RowsIn: len(res.IDs), RowsOut: len(res.IDs),
			Morsels: int(morselsOf(ws) - before),
		}
		if d := readsOf(ws) - beforeReads; d > 0 {
			op.PageReads = d
		}
		tr.Op(op)
		e.m.rowsMaterialized.Add(int64(len(res.IDs)))
	}()
	mainRows := uint64(v.MainRows())
	needGroup := false
	for _, c := range project {
		if v.GroupField(c) >= 0 {
			needGroup = true
		}
	}
	res.Rows = make([][]value.Value, len(res.IDs))
	nChunks := chunkCount(len(res.IDs), len(ws))
	return runMorsels(ws, nChunks, func(w *worker, m int) error {
		lo, hi := chunkBounds(len(res.IDs), nChunks, m)
		for i := lo; i < hi; i++ {
			id := res.IDs[i]
			row := make([]value.Value, len(project))
			var groupRow []value.Value
			if id < mainRows && needGroup && w.group != nil {
				var err error
				groupRow, err = w.group.ReadRow(int(id))
				if err != nil {
					return err
				}
			}
			for j, c := range project {
				if id < mainRows {
					if gf := v.GroupField(c); gf >= 0 && groupRow != nil {
						row[j] = groupRow[gf]
						continue
					}
					w.touches += 2 // value vector + dictionary
				}
				val, err := v.GetValue(id, c)
				if err != nil {
					return err
				}
				row[j] = val
			}
			res.Rows[i] = row
		}
		return nil
	})
}
