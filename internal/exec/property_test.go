package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tierdb/internal/schema"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// TestRandomQueriesMatchBruteForce is the executor's main property
// test: random tables, random layouts, random conjunctive queries —
// results must always equal the row-by-row evaluation, regardless of
// predicate ordering, scan/probe switching, or tiering.
func TestRandomQueriesMatchBruteForce(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		cols := 2 + rng.Intn(5)
		rows := 100 + rng.Intn(2000)

		fields := make([]schema.Field, cols)
		for i := range fields {
			fields[i] = schema.Field{Name: fmt.Sprintf("c%d", i), Type: value.Int64}
		}
		tbl, err := table.New("prop", schema.MustNew(fields), table.Options{})
		if err != nil {
			t.Fatal(err)
		}
		domains := make([]int, cols)
		for i := range domains {
			domains[i] = 1 + rng.Intn(50)
		}
		data := make([][]value.Value, rows)
		for r := range data {
			row := make([]value.Value, cols)
			for c := range row {
				row[c] = value.NewInt(int64(rng.Intn(domains[c])))
			}
			data[r] = row
		}
		if err := tbl.BulkAppend(data); err != nil {
			t.Fatal(err)
		}
		layout := make([]bool, cols)
		anyDRAM := false
		for i := range layout {
			layout[i] = rng.Intn(2) == 0
			anyDRAM = anyDRAM || layout[i]
		}
		if !anyDRAM {
			layout[0] = true
		}
		if err := tbl.ApplyLayout(layout); err != nil {
			t.Fatal(err)
		}
		// Sometimes add an index and some delta rows.
		if rng.Intn(2) == 0 {
			if err := tbl.CreateIndex(rng.Intn(cols)); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(2) == 0 {
			mgr := tbl.Manager()
			for j := 0; j < rng.Intn(50); j++ {
				tx := mgr.Begin()
				row := make([]value.Value, cols)
				for c := range row {
					row[c] = value.NewInt(int64(rng.Intn(domains[c])))
				}
				if err := tbl.Insert(tx, row); err != nil {
					t.Fatal(err)
				}
				if _, err := mgr.Commit(tx); err != nil {
					t.Fatal(err)
				}
			}
		}

		e := New(tbl, Options{ProbeThreshold: []float64{1, 0.01, DefaultProbeThreshold}[rng.Intn(3)]})
		for q := 0; q < 10; q++ {
			nPreds := 1 + rng.Intn(3)
			preds := make([]Predicate, nPreds)
			for i := range preds {
				col := rng.Intn(cols)
				if rng.Intn(2) == 0 {
					preds[i] = Predicate{Column: col, Op: Eq, Value: value.NewInt(int64(rng.Intn(domains[col])))}
				} else {
					lo := int64(rng.Intn(domains[col]))
					hi := lo + int64(rng.Intn(10))
					preds[i] = Predicate{Column: col, Op: Between, Value: value.NewInt(lo), Hi: value.NewInt(hi)}
				}
			}
			res, err := e.Run(Query{Predicates: preds}, nil)
			if err != nil {
				t.Fatalf("trial %d query %d: %v", trial, q, err)
			}
			want := bruteForce(t, tbl, Query{Predicates: preds})
			if !sameIDs(res.IDs, want) {
				t.Fatalf("trial %d query %d (layout %v, preds %+v): got %d rows, want %d",
					trial, q, layout, preds, len(res.IDs), len(want))
			}
		}
	}
}

// TestConcurrentReadersAndWriters exercises snapshot isolation under
// parallel load: with an insert-only workload, the count of visible
// matching rows must never shrink across a reader's successive queries.
func TestConcurrentReadersAndWriters(t *testing.T) {
	tbl, _ := newTable(t, 500, nil)
	e := New(tbl, Options{})
	mgr := tbl.Manager()
	var wg sync.WaitGroup

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tx := mgr.Begin()
				err := tbl.Insert(tx, []value.Value{
					value.NewInt(int64(10000 + w*1000 + i)),
					value.NewInt(3), value.NewInt(3), value.NewInt(3),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := mgr.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := -1
			for i := 0; i < 100; i++ {
				res, err := e.Run(Query{Predicates: []Predicate{
					{Column: 1, Op: Eq, Value: value.NewInt(3)},
				}}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.IDs) < prev {
					t.Errorf("visible count shrank: %d -> %d", prev, len(res.IDs))
					return
				}
				prev = len(res.IDs)
			}
		}()
	}
	wg.Wait()
}
