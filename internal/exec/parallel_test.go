package exec

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tierdb/internal/amm"
	"tierdb/internal/device"
	"tierdb/internal/schema"
	"tierdb/internal/storage"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// randCell produces the k-th domain value of column c; every column
// draws its cells from a small domain so predicates actually match.
func randCell(f schema.Field, k int) value.Value {
	switch f.Type {
	case value.Int64:
		return value.NewInt(int64(k))
	case value.Float64:
		return value.NewFloat(float64(k) * 0.5)
	default:
		return value.NewString(fmt.Sprintf("v%02d", k%100))
	}
}

// randomTable builds a table with a random schema (2–6 columns of mixed
// types), random contents, a random column placement (including
// all-tiered), an optional index, plus committed delta inserts and
// committed deletes, so parallel scans face real MVCC state.
func randomTable(t *testing.T, rng *rand.Rand) (*table.Table, *storage.Clock, []int) {
	t.Helper()
	nCols := 2 + rng.Intn(5)
	fields := make([]schema.Field, nCols)
	card := make([]int, nCols)
	for c := range fields {
		name := fmt.Sprintf("c%d", c)
		switch rng.Intn(3) {
		case 0:
			fields[c] = schema.Field{Name: name, Type: value.Int64}
		case 1:
			fields[c] = schema.Field{Name: name, Type: value.Float64}
		default:
			fields[c] = schema.Field{Name: name, Type: value.String, Width: 4 + rng.Intn(8)}
		}
		card[c] = 1 + rng.Intn(50)
	}
	clock := &storage.Clock{}
	store := storage.NewTimedStore(storage.NewMemStore(), device.XPoint, clock, 1)
	opts := table.Options{Store: store}
	if rng.Intn(2) == 0 {
		cache, err := amm.New(16+rng.Intn(64), store)
		if err != nil {
			t.Fatal(err)
		}
		opts.Cache = cache
	}
	tbl, err := table.New("t", schema.MustNew(fields), opts)
	if err != nil {
		t.Fatal(err)
	}
	n := 200 + rng.Intn(2800)
	rows := make([][]value.Value, n)
	for i := range rows {
		row := make([]value.Value, nCols)
		for c, f := range fields {
			row[c] = randCell(f, rng.Intn(card[c]))
		}
		rows[i] = row
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	layout := make([]bool, nCols)
	allTiered := rng.Intn(4) == 0
	for c := range layout {
		layout[c] = !allTiered && rng.Intn(2) == 0
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		t.Fatal(err)
	}
	if rng.Intn(3) == 0 {
		if err := tbl.CreateIndex(rng.Intn(nCols)); err != nil {
			t.Fatal(err)
		}
	}
	mgr := tbl.Manager()
	// Committed delta inserts.
	tx := mgr.Begin()
	for i := 0; i < rng.Intn(20); i++ {
		row := make([]value.Value, nCols)
		for c, f := range fields {
			row[c] = randCell(f, rng.Intn(card[c]))
		}
		if err := tbl.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Committed deletes of random main rows.
	tx = mgr.Begin()
	for i := 0; i < rng.Intn(20); i++ {
		if err := tbl.Delete(tx, table.RowID(rng.Intn(n))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	return tbl, clock, card
}

// randomQuery draws 0–3 type-correct predicates and a random projection
// over the table's columns.
func randomQuery(rng *rand.Rand, tbl *table.Table, card []int) Query {
	fields := tbl.Schema().Fields()
	var q Query
	for i := rng.Intn(4); i > 0; i-- {
		c := rng.Intn(len(fields))
		p := Predicate{Column: c}
		if rng.Intn(2) == 0 {
			p.Op = Eq
			p.Value = randCell(fields[c], rng.Intn(card[c]))
		} else {
			p.Op = Between
			lo := randCell(fields[c], rng.Intn(card[c]))
			hi := randCell(fields[c], rng.Intn(card[c]))
			if lo.Compare(hi) > 0 {
				lo, hi = hi, lo
			}
			p.Value, p.Hi = lo, hi
		}
		q.Predicates = append(q.Predicates, p)
	}
	if rng.Intn(2) == 0 {
		for c := range fields {
			if rng.Intn(2) == 0 {
				q.Project = append(q.Project, c)
			}
		}
	}
	return q
}

// TestParallelEqualsSerialProperty is the equivalence property test of
// the morsel-driven executor: over randomized schemas, placements,
// MVCC states and predicates, every parallelism level must return
// exactly the serial result — same IDs in the same order, and the same
// projected rows.
func TestParallelEqualsSerialProperty(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		tbl, _, card := randomTable(t, rng)
		serial := New(tbl, Options{})
		for query := 0; query < 4; query++ {
			q := randomQuery(rng, tbl, card)
			want, err := serial.Run(q, nil)
			if err != nil {
				t.Fatalf("trial %d query %d serial: %v", trial, query, err)
			}
			for _, par := range []int{2, 4, 8} {
				e := New(tbl, Options{Parallelism: par, MorselRows: 64 << rng.Intn(6)})
				got, err := e.Run(q, nil)
				if err != nil {
					t.Fatalf("trial %d query %d par %d: %v", trial, query, par, err)
				}
				if len(got.IDs) != len(want.IDs) {
					t.Fatalf("trial %d query %d par %d: %d ids, serial %d (query %+v)",
						trial, query, par, len(got.IDs), len(want.IDs), q)
				}
				for i := range want.IDs {
					if got.IDs[i] != want.IDs[i] {
						t.Fatalf("trial %d query %d par %d: id[%d] = %d, serial %d",
							trial, query, par, i, got.IDs[i], want.IDs[i])
					}
				}
				if len(got.Rows) != len(want.Rows) {
					t.Fatalf("trial %d query %d par %d: %d rows, serial %d",
						trial, query, par, len(got.Rows), len(want.Rows))
				}
				for i := range want.Rows {
					for j := range want.Rows[i] {
						if !got.Rows[i][j].Equal(want.Rows[i][j]) {
							t.Fatalf("trial %d query %d par %d: row %d col %d = %v, serial %v",
								trial, query, par, i, j, got.Rows[i][j], want.Rows[i][j])
						}
					}
				}
			}
		}
	}
}

// TestParallelAgainstBruteForce cross-checks the parallel executor
// against the row-at-a-time oracle on the fixed-schema table.
func TestParallelAgainstBruteForce(t *testing.T) {
	for _, layout := range [][]bool{
		{true, true, true, true},
		{true, false, true, false},
		{false, false, false, false},
	} {
		tbl, _ := newTable(t, 5000, layout)
		e := New(tbl, Options{Parallelism: 4, MorselRows: 512})
		for _, q := range []Query{
			{},
			{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}},
			{Predicates: []Predicate{
				{Column: 1, Op: Eq, Value: value.NewInt(7)},
				{Column: 3, Op: Between, Value: value.NewInt(100), Hi: value.NewInt(700)},
			}},
			{Predicates: []Predicate{
				{Column: 0, Op: Eq, Value: value.NewInt(777)}, // selective: probe path
				{Column: 3, Op: Eq, Value: value.NewInt(777)},
			}},
		} {
			res, err := e.Run(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForce(t, tbl, q)
			if !sameIDs(res.IDs, want) {
				t.Errorf("layout %v query %+v: got %d rows, want %d", layout, q, len(res.IDs), len(want))
			}
		}
	}
}

// TestParallelVisibilityUnderConcurrentWriters runs parallel scans
// while writer transactions concurrently insert into the delta and
// delete main rows: every scan must observe a consistent snapshot
// (uncommitted rows invisible) and never error or race.
func TestParallelVisibilityUnderConcurrentWriters(t *testing.T) {
	tbl, _ := newTable(t, 20000, []bool{true, true, true, false})
	e := New(tbl, Options{Parallelism: 4})
	mgr := tbl.Manager()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx := mgr.Begin()
			_ = tbl.Insert(tx, []value.Value{
				value.NewInt(int64(100000 + i)), value.NewInt(3),
				value.NewInt(int64(i % 100)), value.NewInt(int64(i % 1000)),
			})
			_ = tbl.Delete(tx, table.RowID(i%20000))
			if i%2 == 0 {
				_, _ = mgr.Commit(tx)
			} else {
				_ = mgr.Abort(tx)
			}
		}
	}()
	q := Query{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}}
	for i := 0; i < 50; i++ {
		res, err := e.Run(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(res.IDs); j++ {
			if res.IDs[j] <= res.IDs[j-1] {
				t.Fatalf("result not strictly ascending at %d: %d, %d", j, res.IDs[j-1], res.IDs[j])
			}
		}
	}
	close(stop)
	<-done
}

// TestParallelModeledSpeedup checks the cost model end to end: with
// max-per-worker wall-time charging and DRAM bandwidth that scales with
// streams, a 4-worker MRC scan must finish in less modeled time than
// the serial scan of the same data.
func TestParallelModeledSpeedup(t *testing.T) {
	tbl, clock := newTable(t, 200000, []bool{true, true, true, true})
	q := Query{Predicates: []Predicate{{Column: 2, Op: Between, Value: value.NewInt(10), Hi: value.NewInt(60)}}}

	elapsed := func(par int) time.Duration {
		e := New(tbl, Options{Clock: clock, Parallelism: par})
		clock.Reset()
		if _, err := e.Run(q, nil); err != nil {
			t.Fatal(err)
		}
		return clock.Elapsed()
	}
	serial := elapsed(1)
	parallel := elapsed(4)
	if parallel >= serial {
		t.Errorf("modeled time did not drop: serial %v, 4 workers %v", serial, parallel)
	}
	if float64(serial)/float64(parallel) < 2 {
		t.Errorf("modeled speedup %.2fx < 2x (serial %v, parallel %v)",
			float64(serial)/float64(parallel), serial, parallel)
	}
}
