package exec

import (
	"fmt"

	"tierdb/internal/table"
	"tierdb/internal/value"
)

// Reconstruct materializes a full tuple, charging the modeled DRAM costs
// of dictionary decoding: each MRC attribute needs two dependent random
// accesses (value vector, then dictionary — the paper's "two L3 cache
// misses"), while all SSCG attributes of the row arrive with the page
// access(es) charged by the timed store, plus one DRAM touch per
// attribute parsed out of the page.
//
// Like the other RowID-taking helpers, Reconstruct pins the table's
// current structure for the duration of the call; the id itself must
// come from a query run since the last merge (RowIDs are stable only
// between merges).
func (e *Executor) Reconstruct(id table.RowID) ([]value.Value, error) {
	v := e.tbl.Pin()
	defer v.Release()
	mainRows := uint64(v.MainRows())
	if id >= mainRows {
		row, err := v.GetTuple(id)
		if err != nil {
			return nil, err
		}
		e.chargeTouches(nil, len(row))
		return row, nil
	}
	n := e.tbl.Schema().Len()
	mrcAttrs := 0
	groupAttrs := 0
	for c := 0; c < n; c++ {
		if v.MRC(c) != nil {
			mrcAttrs++
		} else {
			groupAttrs++
		}
	}
	e.chargeTouches(nil, 2*mrcAttrs+groupAttrs)
	return v.GetTuple(id)
}

// Sum aggregates an Int64 or Float64 column over the given rows (a
// building block for the CH-benCHmark queries); for main-partition rows
// on an SSCG-placed column each access costs a page read.
func (e *Executor) Sum(col int, ids []table.RowID) (float64, error) {
	typ := e.tbl.Schema().Field(col).Type
	if typ == value.String {
		return 0, fmt.Errorf("exec: cannot sum string column %d", col)
	}
	v := e.tbl.Pin()
	defer v.Release()
	var total float64
	for _, id := range ids {
		if v.MRC(col) != nil || id >= uint64(v.MainRows()) {
			e.chargeTouches(nil, 2)
		}
		val, err := v.GetValue(id, col)
		if err != nil {
			return 0, err
		}
		if typ == value.Int64 {
			total += float64(val.Int())
		} else {
			total += val.Float()
		}
	}
	return total, nil
}

// JoinProbe performs the probe side of a hash join: for every row id of
// this executor's table, look its join-key value up in the prepared hash
// map and emit matching pairs. Build the map with BuildJoinMap on the
// other table's executor.
func (e *Executor) JoinProbe(col int, ids []table.RowID, build map[value.Value][]table.RowID) ([][2]table.RowID, error) {
	v := e.tbl.Pin()
	defer v.Release()
	var out [][2]table.RowID
	for _, id := range ids {
		e.chargeTouches(nil, 3) // key fetch + hash probe
		val, err := v.GetValue(id, col)
		if err != nil {
			return nil, err
		}
		for _, other := range build[val] {
			out = append(out, [2]table.RowID{id, other})
		}
	}
	return out, nil
}

// BuildJoinMap hashes the join-key column of the given rows.
func (e *Executor) BuildJoinMap(col int, ids []table.RowID) (map[value.Value][]table.RowID, error) {
	v := e.tbl.Pin()
	defer v.Release()
	m := make(map[value.Value][]table.RowID, len(ids))
	for _, id := range ids {
		e.chargeTouches(nil, 3)
		val, err := v.GetValue(id, col)
		if err != nil {
			return nil, err
		}
		m[val] = append(m[val], id)
	}
	return m, nil
}

// GroupBySum groups the given rows by groupCol and sums aggCol within
// each group (the aggregation building block of the CH-benCHmark
// queries). For main-partition rows whose group or aggregate column is
// SSCG-placed, each access costs a page read through the timed store.
func (e *Executor) GroupBySum(groupCol, aggCol int, ids []table.RowID) (map[value.Value]float64, error) {
	aggType := e.tbl.Schema().Field(aggCol).Type
	if aggType == value.String {
		return nil, fmt.Errorf("exec: cannot sum string column %d", aggCol)
	}
	v := e.tbl.Pin()
	defer v.Release()
	out := make(map[value.Value]float64)
	for _, id := range ids {
		e.chargeTouches(nil, 4) // group key + aggregate fetches
		g, err := v.GetValue(id, groupCol)
		if err != nil {
			return nil, err
		}
		val, err := v.GetValue(id, aggCol)
		if err != nil {
			return nil, err
		}
		if aggType == value.Int64 {
			out[g] += float64(val.Int())
		} else {
			out[g] += val.Float()
		}
	}
	return out, nil
}
