package exec

import (
	"testing"

	"tierdb/internal/metrics"
	"tierdb/internal/value"
)

// findOp returns the first operator trace matching name and path.
func findOp(tr *metrics.Trace, name, path string) (metrics.OperatorTrace, bool) {
	for _, op := range tr.Operators {
		if op.Name == name && op.Path == path {
			return op, true
		}
	}
	return metrics.OperatorTrace{}, false
}

// TestRunTracedSerial runs a two-predicate query over a table with an
// evicted column and checks the trace records the chosen filter
// ordering, the scan-to-probe switchover, qualified rows, the modeled
// cost split and the executor counters.
func TestRunTracedSerial(t *testing.T) {
	// Column 1 ("a") is SSCG-placed; 0, 2, 3 stay DRAM-resident.
	tbl, clock := newTable(t, 1000, []bool{true, false, true, true})
	r := metrics.NewRegistry()
	// id eq leaves 1 of 1000 candidates: fraction 0.001 < threshold
	// 0.01 forces the switchover onto the tiered predicate.
	e := New(tbl, Options{Clock: clock, ProbeThreshold: 0.01, Registry: r})
	q := Query{Predicates: []Predicate{
		{Column: 1, Op: Eq, Value: value.NewInt(3)},
		{Column: 0, Op: Eq, Value: value.NewInt(123)},
	}}
	res, tr, err := e.RunTraced(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("no trace")
	}

	// Filter ordering: the DRAM-resident predicate must run first.
	if len(tr.Predicates) != 2 {
		t.Fatalf("predicates = %+v, want 2 entries", tr.Predicates)
	}
	if tr.Predicates[0].Column != 0 || tr.Predicates[0].Path != "mrc" {
		t.Errorf("first ordered predicate = %+v, want col 0 via mrc", tr.Predicates[0])
	}
	if tr.Predicates[1].Column != 1 || tr.Predicates[1].Path != "sscg" {
		t.Errorf("second ordered predicate = %+v, want col 1 via sscg", tr.Predicates[1])
	}
	if s := tr.Predicates[0].EstimatedSelectivity; s <= 0 || s > 0.01 {
		t.Errorf("id selectivity estimate = %g, want (0, 0.01]", s)
	}

	scan, ok := findOp(tr, "scan", "mrc")
	if !ok {
		t.Fatalf("no mrc scan operator in %+v", tr.Operators)
	}
	if scan.RowsIn != 1000 || scan.RowsOut != 1 {
		t.Errorf("mrc scan in=%d out=%d, want 1000/1", scan.RowsIn, scan.RowsOut)
	}
	probe, ok := findOp(tr, "probe", "sscg")
	if !ok {
		t.Fatalf("no sscg probe operator in %+v", tr.Operators)
	}
	if !probe.SwitchedToProbe {
		t.Error("sscg probe not marked as switchover")
	}
	if probe.CandidateFraction != 0.001 {
		t.Errorf("candidate fraction = %g, want 0.001", probe.CandidateFraction)
	}

	// id 123 has a = 123%10 = 3, so exactly one row qualifies.
	if len(res.IDs) != 1 || tr.RowsQualified != 1 {
		t.Errorf("rows qualified = %d (trace %d), want 1", len(res.IDs), tr.RowsQualified)
	}

	// Modeled cost: DRAM time from the MRC scan, device time and page
	// reads from the SSCG probe.
	if tr.DRAMNs <= 0 {
		t.Error("trace has no DRAM cost")
	}
	if tr.PageReads <= 0 || tr.DeviceNs <= 0 {
		t.Errorf("device cost: reads=%d ns=%d, want both > 0", tr.PageReads, tr.DeviceNs)
	}

	snap := r.Snapshot()
	for name, want := range map[string]int64{
		"exec.queries":              1,
		"exec.path.mrc_scans":       1,
		"exec.path.sscg_probes":     1,
		"exec.switch.scan_to_probe": 1,
		"exec.rows.qualified":       1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["exec.rows.scanned"] < 1000 {
		t.Errorf("exec.rows.scanned = %d, want >= 1000", snap.Counters["exec.rows.scanned"])
	}
}

// TestRunTracedParallel checks the parallel path reports per-worker
// morsel counts that reconcile with the per-operator morsel counts and
// the exec.morsels counter, and that traced results match the serial
// executor's.
func TestRunTracedParallel(t *testing.T) {
	tbl, clock := newTable(t, 50_000, nil)
	r := metrics.NewRegistry()
	e := New(tbl, Options{Clock: clock, Parallelism: 4, MorselRows: 2048, Registry: r})
	q := Query{
		Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(7)}},
		Project:    []int{0, 1},
	}
	res, tr, err := e.RunTraced(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parallelism != 4 {
		t.Errorf("trace parallelism = %d", tr.Parallelism)
	}
	if len(tr.WorkerMorsels) == 0 || len(tr.WorkerMorsels) > 4 {
		t.Fatalf("worker morsels = %v, want 1..4 workers", tr.WorkerMorsels)
	}
	var workerSum int64
	for _, m := range tr.WorkerMorsels {
		workerSum += m
	}
	var opSum int64
	for _, op := range tr.Operators {
		opSum += int64(op.Morsels)
	}
	if workerSum == 0 || workerSum != opSum {
		t.Errorf("morsels: per-worker sum %d vs per-operator sum %d", workerSum, opSum)
	}
	if got := r.Snapshot().Counters["exec.morsels"]; got != workerSum {
		t.Errorf("exec.morsels = %d, want %d", got, workerSum)
	}

	mat, ok := findOp(tr, "materialize", "")
	if !ok {
		t.Fatalf("no materialize operator in %+v", tr.Operators)
	}
	if mat.RowsOut != len(res.IDs) {
		t.Errorf("materialize rows = %d, want %d", mat.RowsOut, len(res.IDs))
	}

	serial := New(tbl, Options{})
	want, err := serial.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(res.IDs, want.IDs) {
		t.Error("traced parallel result differs from serial result")
	}
	if tr.RowsQualified != len(want.IDs) {
		t.Errorf("rows qualified = %d, want %d", tr.RowsQualified, len(want.IDs))
	}
}

// TestRunUntracedUnmetered proves the disabled path: no registry, no
// trace, and execution still works with zero instruments installed.
func TestRunUntracedUnmetered(t *testing.T) {
	tbl, _ := newTable(t, 1000, nil)
	e := New(tbl, Options{})
	res, err := e.Run(Query{Predicates: []Predicate{{Column: 1, Op: Eq, Value: value.NewInt(3)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 100 {
		t.Errorf("rows = %d, want 100", len(res.IDs))
	}
}
