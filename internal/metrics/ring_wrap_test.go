package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// checkTraceEntries asserts the snapshot invariants that must survive
// wrap-around under concurrent writers: at most Cap entries, newest
// first, unique seqs, and no torn entries — every entry's marker fields
// (UnixNano, WallNs, Err), all derived from one value at Add time, must
// still agree when read back.
func checkTraceEntries(t *testing.T, entries []*TraceEntry, capacity int) {
	t.Helper()
	if len(entries) > capacity {
		t.Fatalf("snapshot has %d entries, cap %d", len(entries), capacity)
	}
	seen := make(map[uint64]bool, len(entries))
	for i, e := range entries {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", e.Seq)
		}
		seen[e.Seq] = true
		if i > 0 && entries[i-1].Seq <= e.Seq {
			t.Fatalf("snapshot not newest-first: seq %d before %d", entries[i-1].Seq, e.Seq)
		}
		if e.WallNs != e.UnixNano || e.Err != fmt.Sprintf("m%d", e.UnixNano) {
			t.Fatalf("torn entry: seq %d unix %d wall %d err %q", e.Seq, e.UnixNano, e.WallNs, e.Err)
		}
	}
}

// TestTraceRingWraparoundConcurrent hammers a small ring with many
// writers so the publish sequence wraps many times, snapshotting
// throughout, then pins the exact final window after a sequential tail.
func TestTraceRingWraparoundConcurrent(t *testing.T) {
	const (
		capacity = 8
		writers  = 8
		perW     = 400
	)
	r := NewTraceRing(capacity)
	add := func(marker int64) {
		r.Add(&TraceEntry{UnixNano: marker, WallNs: marker, Err: fmt.Sprintf("m%d", marker)})
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				checkTraceEntries(t, r.Snapshot(), capacity)
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				add(int64(w*perW + i))
			}
		}(w)
	}
	writersWG.Wait()
	close(done)
	readers.Wait()

	if got := r.Added(); got != writers*perW {
		t.Fatalf("Added = %d, want %d", got, writers*perW)
	}
	// A slow writer can be the last to store into a slot even though a
	// later seq already landed there, so the concurrent phase only
	// guarantees uniqueness and coherence. A sequential tail of Cap
	// entries deterministically owns every slot: the snapshot must then
	// be exactly the last Cap seqs, descending.
	for i := 0; i < capacity; i++ {
		add(int64(writers*perW + i))
	}
	final := r.Snapshot()
	checkTraceEntries(t, final, capacity)
	if len(final) != capacity {
		t.Fatalf("final snapshot has %d entries, want %d", len(final), capacity)
	}
	added := r.Added()
	for i, e := range final {
		if want := added - 1 - uint64(i); e.Seq != want {
			t.Fatalf("final[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}
