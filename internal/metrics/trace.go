package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Trace records what one query execution actually did: the filter
// ordering the optimizer chose, per-operator access-path decisions
// (including the scan-to-probe switchover against the 0.01 % paper
// threshold), morsels executed per worker, rows qualified, and the
// modeled cost split per device. The executor fills a Trace in when
// asked (Executor.RunTraced / Table.SelectTraced); a nil *Trace is
// valid everywhere and records nothing.
//
// A Trace is written by the goroutine driving the query (workers
// report through their per-worker state, merged at the phase barrier),
// so it needs no internal locking; read it only after the query
// returns.
type Trace struct {
	// Table is the queried table's name.
	Table string `json:"table"`
	// Parallelism is the worker count the executor ran with.
	Parallelism int `json:"parallelism"`
	// ProbeThreshold is the qualifying fraction below which tiered
	// predicates probe instead of scanning.
	ProbeThreshold float64 `json:"probe_threshold"`
	// Predicates is the evaluation order chosen by the optimizer.
	Predicates []PredicateTrace `json:"predicates,omitempty"`
	// Operators are the executed operators in order.
	Operators []OperatorTrace `json:"operators,omitempty"`
	// WorkerMorsels is the number of morsels each worker executed
	// (empty for serial queries).
	WorkerMorsels []int64 `json:"worker_morsels,omitempty"`
	// RowsQualified is the final result cardinality.
	RowsQualified int `json:"rows_qualified"`
	// Device names the secondary-storage device model.
	Device string `json:"device,omitempty"`
	// DRAMNs is the modeled DRAM-side cost in nanoseconds.
	DRAMNs int64 `json:"dram_ns"`
	// DeviceNs is the modeled secondary-storage cost in nanoseconds.
	DeviceNs int64 `json:"device_ns"`
	// PageReads is the number of timed secondary-storage page reads.
	PageReads int64 `json:"page_reads"`
	// StartNs is the query's wall-clock start (unix nanos); the first
	// operator's interval opens here. Set by the executor.
	StartNs int64 `json:"start_ns,omitempty"`

	// prevNs is the end of the last recorded operator; the next
	// operator's interval opens here so back-to-back operators tile the
	// query's wall time without gaps.
	prevNs int64
}

// PredicateTrace records one predicate's position in the chosen filter
// ordering.
type PredicateTrace struct {
	// Column is the schema column index.
	Column int `json:"column"`
	// Op is the comparison ("eq" or "between").
	Op string `json:"op"`
	// Path is the access path rank the ordering used: "index", "mrc"
	// (DRAM-resident) or "sscg" (tiered).
	Path string `json:"path"`
	// EstimatedSelectivity is the optimizer's qualifying-fraction
	// estimate.
	EstimatedSelectivity float64 `json:"estimated_selectivity"`
}

// OperatorTrace records one executed operator.
type OperatorTrace struct {
	// Name is the operator kind: "index", "scan", "probe", "visible",
	// "delta-scan", "delta-probe" or "materialize".
	Name string `json:"name"`
	// Partition is "main" or "delta".
	Partition string `json:"partition"`
	// Path is the storage the operator touched: "mrc", "sscg",
	// "index" or "" when not applicable.
	Path string `json:"path,omitempty"`
	// Column is the predicate column (-1 for materialize/visible).
	Column int `json:"column"`
	// SwitchedToProbe reports a tiered operator that took the probe
	// path because the candidate fraction fell below the threshold —
	// the paper's scan-to-probe switchover.
	SwitchedToProbe bool `json:"switched_to_probe,omitempty"`
	// CandidateFraction is the qualifying fraction the switchover
	// decision saw (0 for first predicates).
	CandidateFraction float64 `json:"candidate_fraction,omitempty"`
	// RowsIn is the candidate count entering the operator (the full
	// partition size for first predicates).
	RowsIn int `json:"rows_in"`
	// RowsOut is the qualifying count leaving the operator.
	RowsOut int `json:"rows_out"`
	// Morsels is the number of work units the operator fanned out
	// (0 on the serial path).
	Morsels int `json:"morsels,omitempty"`
	// PageReads is the number of timed secondary-storage page reads the
	// operator caused (0 for DRAM-only operators).
	PageReads int64 `json:"page_reads,omitempty"`
	// StartNs and EndNs bound the operator's wall-clock interval (unix
	// nanos). Operators are recorded at phase barriers by the driving
	// goroutine, so the interval opens at the previous operator's end
	// (or the query start) and closes at record time.
	StartNs int64 `json:"start_ns,omitempty"`
	EndNs   int64 `json:"end_ns,omitempty"`
}

// Op appends an executed operator (no-op on nil), stamping its
// wall-clock interval unless the caller set one explicitly.
func (t *Trace) Op(op OperatorTrace) {
	if t == nil {
		return
	}
	now := time.Now().UnixNano()
	if op.StartNs == 0 {
		switch {
		case t.prevNs != 0:
			op.StartNs = t.prevNs
		case t.StartNs != 0:
			op.StartNs = t.StartNs
		default:
			op.StartNs = now
		}
	}
	if op.EndNs == 0 {
		op.EndNs = now
	}
	if op.EndNs < op.StartNs {
		op.EndNs = op.StartNs
	}
	t.prevNs = op.EndNs
	t.Operators = append(t.Operators, op)
}

// Predicate appends one entry of the chosen filter ordering (no-op on
// nil).
func (t *Trace) Predicate(p PredicateTrace) {
	if t != nil {
		t.Predicates = append(t.Predicates, p)
	}
}

// AddDRAM charges modeled DRAM nanoseconds to the trace (no-op on nil).
func (t *Trace) AddDRAM(ns int64) {
	if t != nil {
		t.DRAMNs += ns
	}
}

// AddWorkerMorsels merges a phase's per-worker morsel counts
// element-wise (no-op on nil). Called once per parallel phase barrier.
func (t *Trace) AddWorkerMorsels(counts []int64) {
	if t == nil {
		return
	}
	for len(t.WorkerMorsels) < len(counts) {
		t.WorkerMorsels = append(t.WorkerMorsels, 0)
	}
	for i, c := range counts {
		t.WorkerMorsels[i] += c
	}
}

// String renders the trace as an indented human-readable summary.
func (t *Trace) String() string {
	if t == nil {
		return "(no trace)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query on %s: parallelism=%d threshold=%g rows=%d\n",
		t.Table, t.Parallelism, t.ProbeThreshold, t.RowsQualified)
	if len(t.Predicates) > 0 {
		b.WriteString("filter order:\n")
		for i, p := range t.Predicates {
			fmt.Fprintf(&b, "  %d. col=%d %s path=%s sel=%.3g\n",
				i+1, p.Column, p.Op, p.Path, p.EstimatedSelectivity)
		}
	}
	if len(t.Operators) > 0 {
		b.WriteString("operators:\n")
		for _, op := range t.Operators {
			fmt.Fprintf(&b, "  %s/%s", op.Partition, op.Name)
			if op.Path != "" {
				fmt.Fprintf(&b, "[%s]", op.Path)
			}
			if op.Column >= 0 {
				fmt.Fprintf(&b, " col=%d", op.Column)
			}
			fmt.Fprintf(&b, " in=%d out=%d", op.RowsIn, op.RowsOut)
			if op.Morsels > 0 {
				fmt.Fprintf(&b, " morsels=%d", op.Morsels)
			}
			if op.SwitchedToProbe {
				fmt.Fprintf(&b, " switched-to-probe (fraction=%.3g)", op.CandidateFraction)
			}
			b.WriteByte('\n')
		}
	}
	if len(t.WorkerMorsels) > 0 {
		fmt.Fprintf(&b, "worker morsels: %v\n", t.WorkerMorsels)
	}
	fmt.Fprintf(&b, "modeled cost: DRAM=%dns %s=%dns page_reads=%d\n",
		t.DRAMNs, deviceLabel(t.Device), t.DeviceNs, t.PageReads)
	return b.String()
}

// deviceLabel substitutes a placeholder for an unset device name.
func deviceLabel(name string) string {
	if name == "" {
		return "device"
	}
	return name
}
