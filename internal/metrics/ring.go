package metrics

import (
	"sort"
	"sync/atomic"
)

// TraceEntry is one captured query execution in a TraceRing: the trace
// itself plus wall-clock context the executor measured around it.
type TraceEntry struct {
	// Seq is the entry's position in the capture sequence (monotone,
	// starts at 0); it survives ring wrap-around, so consumers can tell
	// how many entries were dropped between two snapshots.
	Seq uint64 `json:"seq"`
	// UnixNano is the wall-clock start time of the query.
	UnixNano int64 `json:"unix_nano"`
	// WallNs is the query's wall-clock duration in nanoseconds (as
	// opposed to the trace's modeled DRAMNs/DeviceNs).
	WallNs int64 `json:"wall_ns"`
	// Err carries the query's error text when it failed (the trace is
	// then partially filled).
	Err string `json:"err,omitempty"`
	// TraceID links the entry to its distributed trace (16 hex digits)
	// when the query ran under a sampled request span; /trace/{id} on
	// the observability server resolves it to the full span tree.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the per-query execution trace.
	Trace *Trace `json:"trace"`
}

// TraceRing is a bounded lock-free ring of recently captured traces.
// Writers claim a slot with one atomic add and publish the entry with
// one atomic pointer store; the ring never holds more than its
// configured capacity — older entries are overwritten. Readers get a
// point-in-time copy via Snapshot. A nil *TraceRing is valid and
// records nothing, so capture call sites need no branches.
type TraceRing struct {
	slots []atomic.Pointer[TraceEntry]
	next  atomic.Uint64
}

// NewTraceRing builds a ring holding up to capacity entries
// (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{slots: make([]atomic.Pointer[TraceEntry], capacity)}
}

// Add stores e (stamping e.Seq) into the next slot, overwriting the
// oldest entry once the ring is full. No-op on a nil ring or entry.
func (r *TraceRing) Add(e *TraceEntry) {
	if r == nil || e == nil {
		return
	}
	seq := r.next.Add(1) - 1
	e.Seq = seq
	r.slots[seq%uint64(len(r.slots))].Store(e)
}

// Cap returns the ring's capacity (0 on nil).
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Added returns the total number of entries ever added (0 on nil);
// entries beyond Cap have been overwritten.
func (r *TraceRing) Added() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot returns the ring's current entries, newest first, at most
// Cap of them. Concurrent writers may overwrite slots while the
// snapshot is taken; each returned entry is still internally consistent
// (the pointer swap is atomic), but the set may mix generations.
func (r *TraceRing) Snapshot() []*TraceEntry {
	if r == nil {
		return nil
	}
	out := make([]*TraceEntry, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, e)
		}
	}
	// Newest first; Seq is unique, so the order is total.
	sort.Slice(out, func(a, b int) bool { return out[a].Seq > out[b].Seq })
	return out
}
