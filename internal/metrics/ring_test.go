package metrics

import (
	"sync"
	"testing"
)

func TestTraceRingBasics(t *testing.T) {
	r := NewTraceRing(4)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d entries", len(got))
	}
	for i := 0; i < 6; i++ {
		r.Add(&TraceEntry{WallNs: int64(i)})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(got))
	}
	// Newest first: wall 5,4,3,2 with sequence numbers 5,4,3,2.
	for i, e := range got {
		wantSeq := uint64(5 - i)
		if e.Seq != wantSeq || e.WallNs != int64(wantSeq) {
			t.Errorf("entry %d: seq=%d wall=%d, want seq=%d", i, e.Seq, e.WallNs, wantSeq)
		}
	}
	if r.Added() != 6 {
		t.Errorf("Added() = %d, want 6", r.Added())
	}
	if r.Cap() != 4 {
		t.Errorf("Cap() = %d, want 4", r.Cap())
	}
}

func TestTraceRingNil(t *testing.T) {
	var r *TraceRing
	r.Add(&TraceEntry{}) // must not panic
	if r.Snapshot() != nil || r.Cap() != 0 || r.Added() != 0 {
		t.Error("nil ring is not inert")
	}
}

func TestTraceRingMinimumCapacity(t *testing.T) {
	r := NewTraceRing(0)
	r.Add(&TraceEntry{})
	if r.Cap() != 1 || len(r.Snapshot()) != 1 {
		t.Errorf("zero-capacity ring: cap=%d len=%d, want 1/1", r.Cap(), len(r.Snapshot()))
	}
}

// TestTraceRingBoundedUnderRace hammers one ring from many goroutines
// while readers snapshot concurrently: the ring must never yield more
// than its capacity, every observed entry must be fully published, and
// no add may be lost (the final sequence count is exact).
func TestTraceRingBoundedUnderRace(t *testing.T) {
	const (
		writers = 8
		perW    = 5_000
		cap     = 64
	)
	r := NewTraceRing(cap)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if len(snap) > cap {
					t.Errorf("snapshot has %d entries, cap %d", len(snap), cap)
					return
				}
				for _, e := range snap {
					if e == nil || e.Trace == nil {
						t.Error("snapshot contains partially published entry")
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perW; i++ {
				r.Add(&TraceEntry{WallNs: int64(g*perW + i), Trace: &Trace{Table: "t"}})
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if r.Added() != writers*perW {
		t.Errorf("Added() = %d, want %d", r.Added(), writers*perW)
	}
	if got := len(r.Snapshot()); got != cap {
		t.Errorf("final snapshot has %d entries, want full ring of %d", got, cap)
	}
}
