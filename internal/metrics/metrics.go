// Package metrics is the engine-wide observability layer: a
// lightweight, race-safe registry of named instruments (atomic
// counters, gauges with high-watermarks, bounded histograms) plus the
// per-query Trace object the executor fills in. It has no external
// dependencies and is designed so that a disabled registry costs
// nothing on the hot paths: a nil *Registry hands out nil instruments,
// and every instrument method is a no-op on a nil receiver — call
// sites need no branches.
//
// The placement model (internal/core, internal/forecast) is only as
// good as the runtime statistics feeding it; this package is where the
// executor, the AMM page cache, the device models and the delta/MVCC
// layers report what actually happened, and what cmd/benchrunner
// serializes into the BENCH_*.json artifacts the CI regression gate
// compares across commits.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods
// are safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that also tracks its high-watermark.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by delta and raises the high-watermark if the
// new value exceeds it.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(delta))
}

// Set replaces the gauge value and raises the high-watermark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// raise lifts the high-watermark to at least v.
func (g *Gauge) raise(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-watermark (0 on a nil receiver).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a bounded histogram over int64 observations (typically
// nanoseconds): a fixed set of ascending upper bounds plus an overflow
// bucket. Observations are atomic; memory is fixed at construction.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Histogram struct {
	bounds  []int64 // ascending inclusive upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// newHistogram builds a histogram with the given ascending bounds.
func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; past-the-end selects the
	// overflow bucket.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the standard shape for IO latency histograms.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor <= 1 {
		factor = 2
	}
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	f := float64(start)
	for i := range out {
		out[i] = int64(f)
		f *= factor
	}
	return out
}

// IOLatencyBuckets covers 1 µs .. ~17 s in powers of two — wide enough
// for DRAM faults and spun-down HDDs alike.
func IOLatencyBuckets() []int64 { return ExpBuckets(1_000, 2, 25) }

// RequestLatencyBuckets covers 10 µs .. ~10 s in powers of two — the
// shape of network request latencies from loopback to a drained,
// deadline-bounded straggler (the server's request_ns histogram).
func RequestLatencyBuckets() []int64 { return ExpBuckets(10_000, 2, 21) }

// MisestimateBuckets holds upper bounds for the selectivity
// misestimation histogram. Observations are |ln(observed/estimated)|
// in milli-nats: 693 is a 2x mis-estimate, 2303 is 10x, 4605 is 100x.
func MisestimateBuckets() []int64 {
	return []int64{25, 50, 100, 200, 400, 693, 1000, 1500, 2303, 3000, 4605, 6908}
}

// Registry is a named set of instruments. Looking an instrument up is
// mutex-protected (do it once at setup); using an instrument is purely
// atomic. A nil *Registry is valid and hands out nil instruments, so a
// component observed with a nil registry runs unmetered at zero cost.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls keep the original bounds). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// GaugeSnapshot is the frozen state of one gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Bucket is one histogram bucket: observations <= Le (the overflow
// bucket has Le == -1). Count is the bucket's own observation count,
// not cumulative; renderers that need Prometheus-style cumulative `le`
// series accumulate over the ascending bounds.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram. Every
// configured bucket is present — bounds ascending, the overflow bucket
// (Le == -1) last, empty buckets included — so renderers can emit the
// full cumulative bucket series.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a frozen, JSON-serializable view of a registry. This is
// what tierdb.Stats() returns, what `tierctl stats` renders, and what
// cmd/benchrunner embeds in its BENCH_*.json artifacts.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values. Safe to call
// concurrently with instrument updates; a nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		hs.Buckets = make([]Bucket, len(h.buckets))
		for i := range h.buckets {
			le := int64(-1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets[i] = Bucket{Le: le, Count: h.buckets[i].Load()}
		}
		s.Histograms[name] = hs
	}
	return s
}

// Render formats the snapshot as an aligned, alphabetically sorted
// human-readable report (the `tierctl stats` output).
func (s Snapshot) Render() string {
	var b strings.Builder
	section := func(title string) { fmt.Fprintf(&b, "== %s ==\n", title) }
	if len(s.Counters) > 0 {
		section("counters")
		names := sortedKeys(s.Counters)
		w := maxWidth(names)
		for _, n := range names {
			fmt.Fprintf(&b, "%-*s  %d\n", w, n, s.Counters[n])
		}
	}
	if len(s.Gauges) > 0 {
		section("gauges")
		names := sortedKeys(s.Gauges)
		w := maxWidth(names)
		for _, n := range names {
			g := s.Gauges[n]
			fmt.Fprintf(&b, "%-*s  %d (max %d)\n", w, n, g.Value, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		section("histograms")
		names := sortedKeys(s.Histograms)
		for _, n := range names {
			h := s.Histograms[n]
			mean := int64(0)
			if h.Count > 0 {
				mean = h.Sum / h.Count
			}
			fmt.Fprintf(&b, "%s: count=%d sum=%d mean=%d\n", n, h.Count, h.Sum, mean)
			for _, bk := range h.Buckets {
				if bk.Count == 0 {
					continue
				}
				if bk.Le < 0 {
					fmt.Fprintf(&b, "  le=+Inf  %d\n", bk.Count)
				} else {
					fmt.Fprintf(&b, "  le=%-12d %d\n", bk.Le, bk.Count)
				}
			}
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// maxWidth returns the length of the longest string.
func maxWidth(names []string) int {
	w := 0
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	return w
}
