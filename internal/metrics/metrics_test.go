package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("counter lookup is not idempotent")
	}

	g := r.Gauge("g")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.Max() != 5 {
		t.Errorf("gauge = %d (max %d), want 1 (max 5)", g.Value(), g.Max())
	}
	g.Set(10)
	if g.Value() != 10 || g.Max() != 10 {
		t.Errorf("gauge after Set = %d (max %d), want 10 (max 10)", g.Value(), g.Max())
	}

	h := r.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5121 {
		t.Errorf("histogram count=%d sum=%d, want 5, 5121", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["h"]
	// Every configured bucket is exported, empty ones included: le=10
	// holds {1,10}, le=100 holds {11,99}, le=1000 nothing, overflow
	// {5000}.
	want := []Bucket{{Le: 10, Count: 2}, {Le: 100, Count: 2}, {Le: 1000, Count: 0}, {Le: -1, Count: 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i := range want {
		if hs.Buckets[i] != want[i] {
			t.Errorf("bucket[%d] = %+v, want %+v", i, hs.Buckets[i], want[i])
		}
	}
}

// TestNilSafety proves the disabled path: a nil registry hands out nil
// instruments and every operation is a silent no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Error("nil registry returned non-nil counter")
	}
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Add(1)
	g.Set(2)
	if g.Value() != 0 || g.Max() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("x", IOLatencyBuckets())
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram has observations")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var tr *Trace
	tr.Op(OperatorTrace{})
	tr.Predicate(PredicateTrace{})
	tr.AddDRAM(10)
	tr.AddWorkerMorsels([]int64{1, 2})
	if tr.String() != "(no trace)" {
		t.Error("nil trace renders content")
	}
}

// TestRegistryConcurrent hammers one shared counter, gauge and
// histogram from 8 goroutines (run under -race in CI) and asserts the
// exact totals — atomicity, not just absence of data races.
func TestRegistryConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 50_000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Instruments are looked up inside each goroutine to also
			// exercise concurrent registry lookups.
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist", []int64{10, 100})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(j % 150))
				g.Add(-1)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	g := r.Gauge("shared.gauge")
	if g.Value() != 0 {
		t.Errorf("gauge settled at %d, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > goroutines {
		t.Errorf("gauge high-watermark %d outside [1, %d]", g.Max(), goroutines)
	}
	h := r.Histogram("shared.hist", nil)
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	// Sum of j%150 over perG iterations, times 8 goroutines.
	var per int64
	for j := 0; j < perG; j++ {
		per += int64(j % 150)
	}
	if h.Sum() != goroutines*per {
		t.Errorf("histogram sum = %d, want %d", h.Sum(), goroutines*per)
	}
	snap := r.Snapshot()
	var bucketTotal int64
	for _, b := range snap.Histograms["shared.hist"].Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != goroutines*perG {
		t.Errorf("bucket counts sum to %d, want %d", bucketTotal, goroutines*perG)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1000, 2, 4)
	want := []int64{1000, 2000, 4000, 8000}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	// Degenerate arguments are clamped, not rejected.
	if got := ExpBuckets(0, 0, 0); len(got) != 1 || got[0] != 1 {
		t.Errorf("clamped ExpBuckets = %v", got)
	}
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(7)
	r.Gauge("g").Set(3)
	r.Histogram("h", []int64{50}).Observe(10)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.b"] != 7 || back.Gauges["g"].Value != 3 || back.Histograms["h"].Count != 1 {
		t.Errorf("roundtrip lost data: %+v", back)
	}
}

func TestRenderStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Add(2)
	r.Gauge("mid").Set(4)
	out := r.Snapshot().Render()
	if !strings.Contains(out, "a.first") || !strings.Contains(out, "z.last") {
		t.Fatalf("render missing counters:\n%s", out)
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Error("render not sorted")
	}
	if (Snapshot{}).Render() != "(no metrics recorded)\n" {
		t.Error("empty snapshot render")
	}
}

func TestTraceString(t *testing.T) {
	tr := &Trace{Table: "orders", Parallelism: 4, ProbeThreshold: 0.0001, Device: "CSSD"}
	tr.Predicate(PredicateTrace{Column: 1, Op: "eq", Path: "mrc", EstimatedSelectivity: 0.01})
	tr.Op(OperatorTrace{Name: "scan", Partition: "main", Path: "mrc", Column: 1, RowsIn: 100, RowsOut: 10})
	tr.Op(OperatorTrace{Name: "probe", Partition: "main", Path: "sscg", Column: 2,
		SwitchedToProbe: true, CandidateFraction: 0.00005, RowsIn: 10, RowsOut: 3})
	tr.AddDRAM(500)
	tr.AddWorkerMorsels([]int64{2, 1})
	tr.AddWorkerMorsels([]int64{1, 1, 1})
	if got := tr.WorkerMorsels; len(got) != 3 || got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Errorf("worker morsels = %v", got)
	}
	out := tr.String()
	for _, want := range []string{"orders", "switched-to-probe", "CSSD", "filter order"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace render missing %q:\n%s", want, out)
		}
	}
}
