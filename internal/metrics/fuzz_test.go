package metrics

import (
	"testing"
)

// FuzzRegistry drives the registry with an arbitrary op sequence and
// cross-checks every instrument against a shadow ledger: whatever
// byte-soup the fuzzer invents, counters must equal the sum of their
// adds, gauges must track value and high-watermark exactly, and
// histogram count/sum/bucket totals must stay consistent. Run in CI's
// fuzz smoke job (-fuzz FuzzRegistry -fuzztime 30s).
func FuzzRegistry(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte("counter gauge histogram snapshot"))
	f.Add([]byte{255, 0, 128, 7, 7, 7, 64, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewRegistry()
		names := []string{"a", "b.c", "d.e.f", ""}
		counters := map[string]int64{}
		gaugeVals := map[string]int64{}
		gaugeMax := map[string]int64{}
		histCount := map[string]int64{}
		histSum := map[string]int64{}

		for i := 0; i+2 < len(data); i += 3 {
			op, who, arg := data[i]%5, names[int(data[i+1])%len(names)], int64(int8(data[i+2]))
			switch op {
			case 0:
				r.Counter(who).Add(arg)
				counters[who] += arg
			case 1:
				r.Gauge(who).Add(arg)
				gaugeVals[who] += arg
				if gaugeVals[who] > gaugeMax[who] {
					gaugeMax[who] = gaugeVals[who]
				}
			case 2:
				r.Gauge(who).Set(arg)
				gaugeVals[who] = arg
				if arg > gaugeMax[who] {
					gaugeMax[who] = arg
				}
			case 3:
				r.Histogram(who, []int64{-10, 0, 10, 100}).Observe(arg)
				histCount[who]++
				histSum[who] += arg
			case 4:
				// Snapshot mid-stream must not disturb anything.
				_ = r.Snapshot().Render()
			}
		}

		snap := r.Snapshot()
		for who, want := range counters {
			if got := snap.Counters[who]; got != want {
				t.Fatalf("counter %q = %d, want %d", who, got, want)
			}
		}
		for who, want := range gaugeVals {
			g := snap.Gauges[who]
			if g.Value != want {
				t.Fatalf("gauge %q = %d, want %d", who, g.Value, want)
			}
			if g.Max != gaugeMax[who] {
				t.Fatalf("gauge %q max = %d, want %d", who, g.Max, gaugeMax[who])
			}
		}
		for who, want := range histCount {
			h := snap.Histograms[who]
			if h.Count != want {
				t.Fatalf("histogram %q count = %d, want %d", who, h.Count, want)
			}
			if h.Sum != histSum[who] {
				t.Fatalf("histogram %q sum = %d, want %d", who, h.Sum, histSum[who])
			}
			var buckets int64
			for _, b := range h.Buckets {
				buckets += b.Count
			}
			if buckets != want {
				t.Fatalf("histogram %q buckets sum to %d, want %d", who, buckets, want)
			}
		}
	})
}
