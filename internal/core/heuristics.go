package core

import (
	"fmt"
	"sort"
)

// Heuristic identifies one of the paper's benchmark eviction heuristics
// (Example 1, H1-H3). They represent the status quo of vertical
// partitioning advisors: LRU-like orderings over per-column metrics that
// ignore selection interaction.
type Heuristic int

const (
	// HeuristicFrequency is H1: keep the most frequently filtered
	// columns (largest g_i first), cf. AutoAdmin-style co-occurrence
	// counting.
	HeuristicFrequency Heuristic = iota
	// HeuristicSelectivity is H2: keep the most restrictive columns
	// (smallest s_i first).
	HeuristicSelectivity
	// HeuristicSelectivityFrequency is H3: keep columns with the
	// smallest ratio s_i/g_i first (cf. reactive unload).
	HeuristicSelectivityFrequency
)

// String returns the paper's name for the heuristic.
func (h Heuristic) String() string {
	switch h {
	case HeuristicFrequency:
		return "H1 (frequency)"
	case HeuristicSelectivity:
		return "H2 (selectivity)"
	case HeuristicSelectivityFrequency:
		return "H3 (selectivity/frequency)"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// SolveHeuristic allocates columns to DRAM following the given benchmark
// heuristic: columns are ranked by the heuristic's metric and placed in
// rank order; a column that no longer fits is skipped and later (smaller)
// columns may still be placed ("If a column does not fit into the DRAM
// budget anymore, it is checked if columns of higher order do so").
// Columns that are never filtered (g_i = 0) are not considered. Pinned
// columns are always placed.
func SolveHeuristic(w *Workload, p CostParams, budget int64, h Heuristic) (Allocation, error) {
	if err := w.Validate(); err != nil {
		return Allocation{}, err
	}
	g := w.AccessCounts()
	type entry struct {
		idx int
		key float64
	}
	entries := make([]entry, 0, len(w.Columns))
	for i, c := range w.Columns {
		if c.Pinned || g[i] <= 0 {
			continue
		}
		var key float64
		switch h {
		case HeuristicFrequency:
			key = -g[i] // descending occurrences
		case HeuristicSelectivity:
			key = c.Selectivity // ascending selectivity
		case HeuristicSelectivityFrequency:
			key = c.Selectivity / g[i] // ascending ratio
		default:
			return Allocation{}, fmt.Errorf("core: unknown heuristic %d", int(h))
		}
		entries = append(entries, entry{idx: i, key: key})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].key != entries[b].key {
			return entries[a].key < entries[b].key
		}
		return entries[a].idx < entries[b].idx
	})

	x := make([]bool, len(w.Columns))
	var used int64
	for i, c := range w.Columns {
		if c.Pinned {
			x[i] = true
			used += c.Size
		}
	}
	if used > budget {
		return Allocation{}, fmt.Errorf("core: pinned columns need %d bytes, budget is %d", used, budget)
	}
	for _, e := range entries {
		if used+w.Columns[e.idx].Size > budget {
			continue
		}
		x[e.idx] = true
		used += w.Columns[e.idx].Size
	}
	return makeAllocation(w, p, x), nil
}
