package core

import (
	"fmt"

	"tierdb/internal/solver"
)

// OptimalILP solves the integer problem (2)-(3): minimize F(x) subject
// to M(x) <= budget, x in {0,1}^N. Pinned columns are forced into DRAM
// and charged against the budget. The result is the exact optimum; for
// different budgets these optima form the Pareto-efficient frontier of
// Figure 3.
//
// Because scan order in the cost model depends only on selectivities,
// F decomposes as F(0) + sum_i a_i*S_i*x_i, so the ILP is a 0/1 knapsack
// with profits -a_i*S_i and weights a_i, solved exactly by branch and
// bound.
func OptimalILP(w *Workload, p CostParams, budget int64) (Allocation, error) {
	return OptimalILPRealloc(w, p, budget, nil, 0)
}

// OptimalILPRealloc solves the reallocation-aware integer problem
// (6)-(7) under a hard budget: minimize F(x) + beta * sum_i a_i*|x_i-y_i|
// subject to M(x) <= budget. current is the present allocation y (nil
// means nothing is DRAM-resident yet); beta is the per-byte cost of
// moving a column between tiers.
func OptimalILPRealloc(w *Workload, p CostParams, budget int64, current []bool, beta float64) (Allocation, error) {
	if err := w.Validate(); err != nil {
		return Allocation{}, err
	}
	if current != nil && len(current) != len(w.Columns) {
		return Allocation{}, fmt.Errorf("core: current allocation has %d entries, want %d", len(current), len(w.Columns))
	}
	if budget < 0 {
		return Allocation{}, fmt.Errorf("core: negative budget %d", budget)
	}
	coeff := Coefficients(w, p)
	items := make([]solver.Item, len(w.Columns))
	for i, c := range w.Columns {
		// Objective change of setting x_i=1 instead of 0 is
		// a_i*(S_i + beta*(1-2*y_i)); its negation is the knapsack
		// profit.
		y := 0.0
		if current != nil && current[i] {
			y = 1
		}
		items[i] = solver.Item{
			Value:     -float64(c.Size) * (coeff[i] + beta*(1-2*y)),
			Weight:    c.Size,
			Mandatory: c.Pinned,
		}
	}
	// A tiny relative MIP gap (like commercial solvers' default
	// tolerances) keeps pathologically correlated instances tractable
	// without measurably affecting solution quality.
	res, err := solver.Knapsack01Opts(items, budget, solver.Options{RelativeGap: 1e-6})
	if err != nil {
		return Allocation{}, fmt.Errorf("core: ILP solve failed: %w", err)
	}
	return makeAllocation(w, p, res.Take), nil
}

// ContinuousPenalty solves the penalty formulation (5): minimize
// F(x) + alpha*M(x) with x relaxed to [0,1]^N. By Lemma 1 the optimum is
// integer: column i is DRAM-resident iff S_i + alpha < 0 (pinned columns
// are always resident). By Theorem 1 the result is Pareto-efficient.
func ContinuousPenalty(w *Workload, p CostParams, alpha float64) (Allocation, error) {
	return ContinuousPenaltyRealloc(w, p, alpha, nil, 0)
}

// ContinuousPenaltyRealloc solves the reallocation-aware penalty
// problem (6): column i is DRAM-resident iff
// S_i + alpha + beta*(1-2*y_i) < 0 (Theorem 2, case analysis).
func ContinuousPenaltyRealloc(w *Workload, p CostParams, alpha float64, current []bool, beta float64) (Allocation, error) {
	if err := w.Validate(); err != nil {
		return Allocation{}, err
	}
	if current != nil && len(current) != len(w.Columns) {
		return Allocation{}, fmt.Errorf("core: current allocation has %d entries, want %d", len(current), len(w.Columns))
	}
	coeff := Coefficients(w, p)
	x := make([]bool, len(w.Columns))
	for i, c := range w.Columns {
		y := 0.0
		if current != nil && current[i] {
			y = 1
		}
		x[i] = c.Pinned || coeff[i]+alpha+beta*(1-2*y) < 0
	}
	return makeAllocation(w, p, x), nil
}

// ContinuousForBudget searches for the penalty parameter alpha whose
// associated allocation just satisfies the budget (paper, end of
// Section III-A). It evaluates the critical alpha values of all columns,
// which is exactly what the explicit solution of Theorem 2 exploits; the
// returned allocation is the largest Pareto point fitting the budget.
func ContinuousForBudget(w *Workload, p CostParams, budget int64) (Allocation, error) {
	if err := w.Validate(); err != nil {
		return Allocation{}, err
	}
	order, err := PerformanceOrder(w, p, nil, 0)
	if err != nil {
		return Allocation{}, err
	}
	x := make([]bool, len(w.Columns))
	var used int64
	for i, c := range w.Columns {
		if c.Pinned {
			x[i] = true
			used += c.Size
		}
	}
	if used > budget {
		return Allocation{}, fmt.Errorf("core: pinned columns need %d bytes, budget is %d", used, budget)
	}
	for _, i := range order {
		if x[i] {
			continue
		}
		if used+w.Columns[i].Size > budget {
			break // Pareto point boundary: stop at the first non-fitting column.
		}
		x[i] = true
		used += w.Columns[i].Size
	}
	return makeAllocation(w, p, x), nil
}
