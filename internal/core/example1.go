package core

import (
	"fmt"
	"math"
	"math/rand"
)

// Example1Config parameterizes the paper's reproducible column selection
// problem class (Example 1): N columns, Q queries, randomized sizes,
// selectivities and frequencies with the structural properties the paper
// describes — popular columns tend to have lower selectivity
// (negatively correlated g_i and s_i), and clusters of columns co-occur
// in queries so that selection interaction matters.
type Example1Config struct {
	// Columns is N; Queries is Q.
	Columns int
	Queries int
	// Seed makes the instance reproducible.
	Seed int64
	// MeanColumnsPerQuery is the average size of q_j (default 4).
	MeanColumnsPerQuery float64
	// CoOccurrence in [0,1] controls how strongly queries draw their
	// columns from a shared popular cluster instead of uniformly; 0
	// removes selection interaction structure (default 0.6).
	CoOccurrence float64
	// Correlation in [0,1] controls how strongly selectivity decreases
	// with popularity (default 0.3, the paper's "slightly negatively
	// correlated").
	Correlation float64
}

func (c *Example1Config) setDefaults() {
	if c.MeanColumnsPerQuery == 0 {
		c.MeanColumnsPerQuery = 4
	}
	if c.CoOccurrence == 0 {
		c.CoOccurrence = 0.6
	}
	if c.Correlation == 0 {
		c.Correlation = 0.3
	}
}

// Example1 generates a reproducible random instance of the paper's
// Example 1 (N=50, Q=500 in Figure 4; scaled up for Table II).
func Example1(cfg Example1Config) (*Workload, error) {
	cfg.setDefaults()
	if cfg.Columns <= 0 || cfg.Queries <= 0 {
		return nil, fmt.Errorf("core: Example1 needs positive column (%d) and query (%d) counts", cfg.Columns, cfg.Queries)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Column popularity follows a Zipf-like ranking: column 0 is the
	// most popular. Popularity drives both co-occurrence sampling and
	// (inversely, with noise) selectivity.
	n := cfg.Columns
	popularity := make([]float64, n)
	var popSum float64
	for i := range popularity {
		popularity[i] = 1 / math.Pow(float64(i+1), 0.8)
		popSum += popularity[i]
	}

	cols := make([]Column, n)
	for i := range cols {
		// Sizes are log-uniform between 1 MB and 1 GB: enterprise
		// tables mix narrow flags with wide document-number columns.
		sz := math.Exp(rng.Float64()*math.Log(1024) + math.Log(1)) // 1..1024 MB
		// Selectivity: base log-uniform in [1e-6, 1], pulled down for
		// popular columns by the configured correlation.
		sel := math.Exp(-rng.Float64() * 6 * math.Ln10 / 2.6) // ~[4e-3, 1] log-ish spread
		rank := float64(i) / float64(n)
		sel = sel*(1-cfg.Correlation) + cfg.Correlation*math.Pow(10, -3*(1-rank))*rng.Float64()
		if sel <= 0 {
			sel = 1e-6
		}
		if sel > 1 {
			sel = 1
		}
		cols[i] = Column{
			Name:        fmt.Sprintf("col_%03d", i),
			Size:        int64(sz * float64(1<<20)),
			Selectivity: sel,
		}
	}

	sampleByPopularity := func() int {
		target := rng.Float64() * popSum
		for i, p := range popularity {
			target -= p
			if target <= 0 {
				return i
			}
		}
		return n - 1
	}

	queries := make([]Query, cfg.Queries)
	for j := range queries {
		// Query width: 1 + Poisson-ish around the configured mean.
		width := 1
		for rng.Float64() < 1-1/cfg.MeanColumnsPerQuery && width < n {
			width++
		}
		seen := make(map[int]bool, width)
		qcols := make([]int, 0, width)
		for len(qcols) < width {
			var c int
			if rng.Float64() < cfg.CoOccurrence {
				c = sampleByPopularity()
			} else {
				c = rng.Intn(n)
			}
			if !seen[c] {
				seen[c] = true
				qcols = append(qcols, c)
			}
		}
		// Frequencies are skewed: a few plans dominate the cache.
		freq := math.Floor(math.Exp(rng.Float64() * math.Log(1000))) // 1..1000
		queries[j] = Query{Columns: qcols, Frequency: freq}
	}

	w := &Workload{Columns: cols, Queries: queries}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("core: generated invalid Example 1 instance: %w", err)
	}
	return w, nil
}
