package core

import (
	"math"
	"testing"
)

func example(t *testing.T, n, q int, seed int64) *Workload {
	t.Helper()
	w, err := Example1(Example1Config{Columns: n, Queries: q, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func relativeBudgets(w *Workload, fractions []float64) []int64 {
	total := w.TotalSize()
	budgets := make([]int64, len(fractions))
	for i, f := range fractions {
		budgets[i] = int64(f * float64(total))
	}
	return budgets
}

func TestOptimalILPRespectsBudget(t *testing.T) {
	w := example(t, 30, 200, 1)
	p := DefaultCostParams()
	for _, budget := range relativeBudgets(w, []float64{0, 0.1, 0.25, 0.5, 0.75, 1}) {
		alloc, err := OptimalILP(w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Memory > budget {
			t.Errorf("budget %d: allocation uses %d bytes", budget, alloc.Memory)
		}
		if got := MemoryUsed(w, alloc.InDRAM); got != alloc.Memory {
			t.Errorf("budget %d: reported memory %d, recomputed %d", budget, alloc.Memory, got)
		}
		if got := ScanCost(w, p, alloc.InDRAM); math.Abs(got-alloc.Cost) > 1e-9*got {
			t.Errorf("budget %d: reported cost %g, recomputed %g", budget, alloc.Cost, got)
		}
	}
}

func TestOptimalILPMonotoneInBudget(t *testing.T) {
	w := example(t, 40, 300, 2)
	p := DefaultCostParams()
	prev := math.Inf(1)
	for _, budget := range relativeBudgets(w, []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1}) {
		alloc, err := OptimalILP(w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Cost > prev+1e-9 {
			t.Errorf("budget %d: cost %g above smaller-budget cost %g", budget, alloc.Cost, prev)
		}
		prev = alloc.Cost
	}
}

func TestOptimalILPBeatsOrMatchesEverything(t *testing.T) {
	w := example(t, 30, 250, 3)
	p := DefaultCostParams()
	for _, budget := range relativeBudgets(w, []float64{0.1, 0.3, 0.5, 0.7}) {
		opt, err := OptimalILP(w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		others := []func() (Allocation, error){
			func() (Allocation, error) { return ExplicitForBudget(w, p, budget, nil, 0) },
			func() (Allocation, error) { return FillingForBudget(w, p, budget, nil, 0) },
			func() (Allocation, error) { return GreedyRatio(w, p, budget) },
			func() (Allocation, error) { return SolveHeuristic(w, p, budget, HeuristicFrequency) },
			func() (Allocation, error) { return SolveHeuristic(w, p, budget, HeuristicSelectivity) },
			func() (Allocation, error) { return SolveHeuristic(w, p, budget, HeuristicSelectivityFrequency) },
		}
		for i, f := range others {
			alloc, err := f()
			if err != nil {
				t.Fatal(err)
			}
			if alloc.Cost < opt.Cost-1e-9*opt.Cost {
				t.Errorf("budget %d: method %d cost %g beats ILP %g", budget, i, alloc.Cost, opt.Cost)
			}
		}
	}
}

func TestOptimalILPExhaustiveCrossCheck(t *testing.T) {
	// Brute force over all 2^12 allocations on a small instance.
	w := example(t, 12, 60, 4)
	p := DefaultCostParams()
	for _, budget := range relativeBudgets(w, []float64{0.2, 0.5, 0.8}) {
		opt, err := OptimalILP(w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		x := make([]bool, len(w.Columns))
		for mask := 0; mask < 1<<len(w.Columns); mask++ {
			for i := range x {
				x[i] = mask&(1<<i) != 0
			}
			if MemoryUsed(w, x) > budget {
				continue
			}
			if c := ScanCost(w, p, x); c < best {
				best = c
			}
		}
		if math.Abs(opt.Cost-best) > 1e-9*best {
			t.Errorf("budget %d: ILP cost %g, brute force %g", budget, opt.Cost, best)
		}
	}
}

func TestPinnedColumnsAlwaysResident(t *testing.T) {
	w := example(t, 20, 100, 5)
	w.Columns[3].Pinned = true
	w.Columns[17].Pinned = true
	p := DefaultCostParams()
	budget := w.Columns[3].Size + w.Columns[17].Size + 1024
	for _, solve := range []func() (Allocation, error){
		func() (Allocation, error) { return OptimalILP(w, p, budget) },
		func() (Allocation, error) { return ExplicitForBudget(w, p, budget, nil, 0) },
		func() (Allocation, error) { return FillingForBudget(w, p, budget, nil, 0) },
		func() (Allocation, error) { return GreedyRatio(w, p, budget) },
		func() (Allocation, error) { return SolveHeuristic(w, p, budget, HeuristicFrequency) },
	} {
		alloc, err := solve()
		if err != nil {
			t.Fatal(err)
		}
		if !alloc.InDRAM[3] || !alloc.InDRAM[17] {
			t.Errorf("pinned columns not DRAM-resident: %v %v", alloc.InDRAM[3], alloc.InDRAM[17])
		}
	}
}

func TestPinnedColumnsExceedingBudgetFail(t *testing.T) {
	w := example(t, 10, 50, 6)
	w.Columns[0].Pinned = true
	p := DefaultCostParams()
	if _, err := OptimalILP(w, p, w.Columns[0].Size-1); err == nil {
		t.Error("ILP accepted budget below pinned size")
	}
	if _, err := ExplicitForBudget(w, p, w.Columns[0].Size-1, nil, 0); err == nil {
		t.Error("explicit solution accepted budget below pinned size")
	}
}

func TestOptimalILPRejectsBadInputs(t *testing.T) {
	w := example(t, 5, 10, 7)
	p := DefaultCostParams()
	if _, err := OptimalILP(w, p, -1); err == nil {
		t.Error("accepted negative budget")
	}
	if _, err := OptimalILPRealloc(w, p, 100, []bool{true}, 1); err == nil {
		t.Error("accepted mismatched current allocation length")
	}
	bad := &Workload{Columns: []Column{{Size: -5, Selectivity: 0.5}}}
	if _, err := OptimalILP(bad, p, 100); err == nil {
		t.Error("accepted invalid workload")
	}
}

func TestZeroBudgetEvictsEverything(t *testing.T) {
	w := example(t, 15, 80, 8)
	p := DefaultCostParams()
	alloc, err := OptimalILP(w, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.CountInDRAM() != 0 {
		t.Errorf("zero budget placed %d columns in DRAM", alloc.CountInDRAM())
	}
}

func TestFullBudgetKeepsAllUsefulColumns(t *testing.T) {
	w := example(t, 15, 80, 9)
	p := DefaultCostParams()
	alloc, err := OptimalILP(w, p, w.TotalSize())
	if err != nil {
		t.Fatal(err)
	}
	benefits := Benefits(w, p)
	for i, b := range benefits {
		if b > 0 && !alloc.InDRAM[i] {
			t.Errorf("column %d has positive benefit %g but was evicted under full budget", i, b)
		}
	}
}
