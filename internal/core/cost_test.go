package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoColumnWorkload is a tiny hand-checkable instance: two columns, one
// query filtering both.
func twoColumnWorkload() *Workload {
	return &Workload{
		Columns: []Column{
			{Name: "a", Size: 100, Selectivity: 0.1},
			{Name: "b", Size: 200, Selectivity: 0.5},
		},
		Queries: []Query{
			{Columns: []int{0, 1}, Frequency: 2},
		},
	}
}

func TestScanCostHandComputed(t *testing.T) {
	w := twoColumnWorkload()
	p := CostParams{CMM: 1, CSS: 10}

	// Scan order: a (sel 0.1) before b (sel 0.5).
	// Both in DRAM: 2 * (1*100*1 + 1*200*0.1) = 2 * 120 = 240.
	both := []bool{true, true}
	if got := ScanCost(w, p, both); math.Abs(got-240) > 1e-9 {
		t.Errorf("ScanCost(both in DRAM) = %g, want 240", got)
	}
	// Only a in DRAM: 2 * (1*100 + 10*200*0.1) = 2 * 300 = 600.
	onlyA := []bool{true, false}
	if got := ScanCost(w, p, onlyA); math.Abs(got-600) > 1e-9 {
		t.Errorf("ScanCost(only a) = %g, want 600", got)
	}
	// Only b in DRAM: 2 * (10*100 + 1*200*0.1) = 2 * 1020 = 2040.
	onlyB := []bool{false, true}
	if got := ScanCost(w, p, onlyB); math.Abs(got-2040) > 1e-9 {
		t.Errorf("ScanCost(only b) = %g, want 2040", got)
	}
	// None: 2 * (10*100 + 10*200*0.1) = 2 * 1200 = 2400.
	none := []bool{false, false}
	if got := ScanCost(w, p, none); math.Abs(got-2400) > 1e-9 {
		t.Errorf("ScanCost(none) = %g, want 2400", got)
	}
}

func TestSelectionInteractionReducesLaterColumnWeight(t *testing.T) {
	// A restrictive predecessor predicate scales a column's eviction
	// penalty by the predecessor's selectivity — the core observation
	// behind the paper's cost model that frequency-counting heuristics
	// miss.
	wide := Column{Name: "wide", Size: 1 << 30, Selectivity: 0.9}
	restrictive := Column{Name: "restrictive", Size: 100, Selectivity: 1e-6}
	behind := &Workload{
		Columns: []Column{restrictive, wide},
		Queries: []Query{{Columns: []int{0, 1}, Frequency: 1}},
	}
	alone := &Workload{
		Columns: []Column{restrictive, wide},
		Queries: []Query{{Columns: []int{1}, Frequency: 1}},
	}
	p := CostParams{CMM: 1, CSS: 100}
	benefitBehind := Benefits(behind, p)[1]
	benefitAlone := Benefits(alone, p)[1]
	if benefitAlone <= 0 || benefitBehind <= 0 {
		t.Fatalf("benefits not positive: behind=%g alone=%g", benefitBehind, benefitAlone)
	}
	// The interaction multiplies the benefit by s(restrictive) = 1e-6.
	if ratio := benefitBehind / benefitAlone; math.Abs(ratio-1e-6) > 1e-12 {
		t.Errorf("benefit ratio behind/alone = %g, want 1e-6", ratio)
	}
}

func TestCoefficientsMatchFiniteDifference(t *testing.T) {
	w, err := Example1(Example1Config{Columns: 20, Queries: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultCostParams()
	coeff := Coefficients(w, p)
	rng := rand.New(rand.NewSource(1))
	// For random base allocations, flipping column i changes F by
	// exactly a_i * S_i (linearity of the cost model).
	for trial := 0; trial < 20; trial++ {
		x := make([]bool, len(w.Columns))
		for i := range x {
			x[i] = rng.Intn(2) == 0
		}
		base := ScanCost(w, p, x)
		for i := range w.Columns {
			x[i] = !x[i]
			flipped := ScanCost(w, p, x)
			x[i] = !x[i]
			var want float64
			if x[i] {
				want = base - float64(w.Columns[i].Size)*coeff[i] // leaving DRAM
			} else {
				want = base + float64(w.Columns[i].Size)*coeff[i]
			}
			if math.Abs(flipped-want) > 1e-9*math.Abs(base)+1e-15 {
				t.Fatalf("flip column %d: cost %g, want %g", i, flipped, want)
			}
		}
	}
}

func TestCoefficientsNonPositive(t *testing.T) {
	w, err := Example1(Example1Config{Columns: 30, Queries: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range Coefficients(w, DefaultCostParams()) {
		if s > 0 {
			t.Errorf("S_%d = %g > 0 with c_mm < c_ss", i, s)
		}
	}
}

func TestBenefitsZeroForUnfilteredColumns(t *testing.T) {
	w := &Workload{
		Columns: []Column{
			{Name: "used", Size: 10, Selectivity: 0.5},
			{Name: "unused", Size: 10, Selectivity: 0.5},
		},
		Queries: []Query{{Columns: []int{0}, Frequency: 5}},
	}
	b := Benefits(w, DefaultCostParams())
	if b[1] != 0 {
		t.Errorf("benefit of unfiltered column = %g, want 0", b[1])
	}
	if b[0] <= 0 {
		t.Errorf("benefit of filtered column = %g, want > 0", b[0])
	}
}

func TestMemoryUsedAndTotalSize(t *testing.T) {
	w := twoColumnWorkload()
	if got := w.TotalSize(); got != 300 {
		t.Errorf("TotalSize = %d, want 300", got)
	}
	if got := MemoryUsed(w, []bool{true, false}); got != 100 {
		t.Errorf("MemoryUsed = %d, want 100", got)
	}
	if got := MemoryUsed(w, []bool{true, true}); got != 300 {
		t.Errorf("MemoryUsed = %d, want 300", got)
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
	}{
		{"empty", Workload{}},
		{"zero size", Workload{Columns: []Column{{Size: 0, Selectivity: 0.5}}}},
		{"negative size", Workload{Columns: []Column{{Size: -1, Selectivity: 0.5}}}},
		{"zero selectivity", Workload{Columns: []Column{{Size: 1, Selectivity: 0}}}},
		{"selectivity above one", Workload{Columns: []Column{{Size: 1, Selectivity: 1.5}}}},
		{"column out of range", Workload{
			Columns: []Column{{Size: 1, Selectivity: 0.5}},
			Queries: []Query{{Columns: []int{1}, Frequency: 1}},
		}},
		{"negative column index", Workload{
			Columns: []Column{{Size: 1, Selectivity: 0.5}},
			Queries: []Query{{Columns: []int{-1}, Frequency: 1}},
		}},
		{"duplicate column in query", Workload{
			Columns: []Column{{Size: 1, Selectivity: 0.5}},
			Queries: []Query{{Columns: []int{0, 0}, Frequency: 1}},
		}},
		{"negative frequency", Workload{
			Columns: []Column{{Size: 1, Selectivity: 0.5}},
			Queries: []Query{{Columns: []int{0}, Frequency: -1}},
		}},
	}
	for _, tc := range cases {
		if err := tc.w.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid workload", tc.name)
		}
	}
}

func TestValidateAcceptsExample1(t *testing.T) {
	w, err := Example1(Example1Config{Columns: 50, Queries: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("Validate(Example1) = %v", err)
	}
	if len(w.Columns) != 50 || len(w.Queries) != 500 {
		t.Errorf("Example1 shape = %d cols, %d queries; want 50, 500", len(w.Columns), len(w.Queries))
	}
}

func TestRelativePerformanceBounds(t *testing.T) {
	w, err := Example1(Example1Config{Columns: 25, Queries: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultCostParams()
	all := make([]bool, len(w.Columns))
	for i := range all {
		all[i] = true
	}
	full := makeAllocation(w, p, all)
	if rp := RelativePerformance(w, p, full); math.Abs(rp-1) > 1e-12 {
		t.Errorf("RelativePerformance(full DRAM) = %g, want 1", rp)
	}
	none := makeAllocation(w, p, make([]bool, len(w.Columns)))
	if rp := RelativePerformance(w, p, none); rp >= 1 || rp <= 0 {
		t.Errorf("RelativePerformance(nothing in DRAM) = %g, want in (0,1)", rp)
	}
}

// Property: scan cost is monotone — adding a column to DRAM never makes
// the workload slower (with CMM < CSS).
func TestScanCostMonotoneProperty(t *testing.T) {
	w, err := Example1(Example1Config{Columns: 15, Queries: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultCostParams()
	prop := func(mask uint16, flip uint8) bool {
		x := make([]bool, len(w.Columns))
		for i := range x {
			x[i] = mask&(1<<i) != 0
		}
		i := int(flip) % len(w.Columns)
		if x[i] {
			return true
		}
		before := ScanCost(w, p, x)
		x[i] = true
		after := ScanCost(w, p, x)
		return after <= before+1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccessCounts(t *testing.T) {
	w := &Workload{
		Columns: []Column{
			{Size: 1, Selectivity: 0.5}, {Size: 1, Selectivity: 0.5}, {Size: 1, Selectivity: 0.5},
		},
		Queries: []Query{
			{Columns: []int{0, 1}, Frequency: 3},
			{Columns: []int{1}, Frequency: 4},
		},
	}
	g := w.AccessCounts()
	want := []float64{3, 7, 0}
	for i := range want {
		if g[i] != want[i] {
			t.Errorf("g[%d] = %g, want %g", i, g[i], want[i])
		}
	}
}

func TestQueryCostSharesSumToScanCost(t *testing.T) {
	// The decomposition must be exact, not approximate: queryScanCost
	// delegates to QueryCostShares, so frequency-weighted share sums
	// reproduce ScanCost bit-for-bit for any workload and placement.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nCols := 1 + rng.Intn(8)
		w := &Workload{}
		for i := 0; i < nCols; i++ {
			w.Columns = append(w.Columns, Column{
				Size:        1 + rng.Int63n(1<<20),
				Selectivity: rng.Float64(),
			})
		}
		for q := 0; q < 1+rng.Intn(4); q++ {
			var cols []int
			for i := 0; i < nCols; i++ {
				if rng.Intn(2) == 0 {
					cols = append(cols, i)
				}
			}
			if len(cols) == 0 {
				cols = []int{rng.Intn(nCols)}
			}
			w.Queries = append(w.Queries, Query{Columns: cols, Frequency: 1 + rng.Float64()*10})
		}
		x := make([]bool, nCols)
		for i := range x {
			x[i] = rng.Intn(2) == 0
		}
		p := CostParams{CMM: 1.0 / float64(10<<30), CSS: 1.0 / float64(1<<30)}

		var total float64
		for _, q := range w.Queries {
			var qcost float64
			shares := QueryCostShares(w, p, x, q)
			if len(shares) != len(q.Columns) {
				t.Fatalf("trial %d: %d shares for %d predicate columns", trial, len(shares), len(q.Columns))
			}
			for _, s := range shares {
				if s.InDRAM != x[s.Column] {
					t.Fatalf("trial %d: share for column %d reports InDRAM=%v, placement says %v",
						trial, s.Column, s.InDRAM, x[s.Column])
				}
				qcost += s.Cost
			}
			total += q.Frequency * qcost
		}
		if want := ScanCost(w, p, x); total != want {
			t.Fatalf("trial %d: shares sum to %g, ScanCost = %g", trial, total, want)
		}
	}
}

func TestQueryCostSharesHandComputed(t *testing.T) {
	w := twoColumnWorkload()
	p := CostParams{CMM: 1, CSS: 10}
	// Only a in DRAM; scan order a (sel 0.1) then b.
	shares := QueryCostShares(w, p, []bool{true, false}, w.Queries[0])
	if len(shares) != 2 {
		t.Fatalf("got %d shares, want 2", len(shares))
	}
	a, b := shares[0], shares[1]
	if a.Column != 0 || a.Fraction != 1 || !a.InDRAM || a.Cost != 100 {
		t.Errorf("share a = %+v, want column 0, fraction 1, in DRAM, cost 100", a)
	}
	if b.Column != 1 || b.Fraction != 0.1 || b.InDRAM || math.Abs(b.Cost-200) > 1e-9 {
		t.Errorf("share b = %+v, want column 1, fraction 0.1, evicted, cost 200", b)
	}
}
