package core

import (
	"math"
	"math/rand"
	"testing"
)

// Randomized cross-method properties over many Example 1 instances:
// the invariants that make the paper's theory useful must hold for
// every instance, not just the seeds the other tests pin down.
func TestRandomInstancesCrossMethodInvariants(t *testing.T) {
	p := DefaultCostParams()
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		w, err := Example1(Example1Config{
			Columns:      5 + rng.Intn(40),
			Queries:      20 + rng.Intn(300),
			Seed:         rng.Int63(),
			CoOccurrence: rng.Float64(),
			Correlation:  rng.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		budget := int64(rng.Float64() * float64(w.TotalSize()))

		ilp, err := OptimalILP(w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := ExplicitForBudget(w, p, budget, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		filling, err := FillingForBudget(w, p, budget, nil, 0)
		if err != nil {
			t.Fatal(err)
		}

		// Budgets respected.
		for name, a := range map[string]Allocation{"ilp": ilp, "explicit": explicit, "filling": filling} {
			if a.Memory > budget {
				t.Fatalf("trial %d: %s exceeds budget: %d > %d", trial, name, a.Memory, budget)
			}
		}
		// Ordering: ILP <= filling <= explicit (the relaxed MIP gap of
		// 1e-6 allows equal-within-noise).
		tol := 1e-6 * explicit.Cost
		if ilp.Cost > filling.Cost+tol || filling.Cost > explicit.Cost+tol {
			t.Fatalf("trial %d: cost ordering violated: ilp %g, filling %g, explicit %g",
				trial, ilp.Cost, filling.Cost, explicit.Cost)
		}
		// Theorem 1/2: the explicit solution is on the frontier — the
		// ILP at the explicit solution's own memory level cannot beat
		// it (beyond solver tolerance).
		onFrontier, err := OptimalILP(w, p, explicit.Memory)
		if err != nil {
			t.Fatal(err)
		}
		if explicit.Cost > onFrontier.Cost*(1+1e-6)+1e-15 {
			t.Fatalf("trial %d: explicit off frontier: %g vs %g at %d bytes",
				trial, explicit.Cost, onFrontier.Cost, explicit.Memory)
		}
		// Heuristics never beat the optimum.
		for _, h := range []Heuristic{HeuristicFrequency, HeuristicSelectivity, HeuristicSelectivityFrequency} {
			alloc, err := SolveHeuristic(w, p, budget, h)
			if err != nil {
				t.Fatal(err)
			}
			if alloc.Cost < ilp.Cost*(1-1e-6) {
				t.Fatalf("trial %d: %s beats ILP: %g < %g", trial, h, alloc.Cost, ilp.Cost)
			}
		}
	}
}

// TestRandomInstancesReallocationInvariants checks the Section III-D
// extension across random instances: (i) beta = 0 equals the
// unconstrained problem, (ii) the reallocation objective of the chosen
// allocation never exceeds keeping the current allocation, and (iii) a
// prohibitive beta freezes the placement.
func TestRandomInstancesReallocationInvariants(t *testing.T) {
	p := DefaultCostParams()
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		w, err := Example1(Example1Config{
			Columns: 5 + rng.Intn(25),
			Queries: 20 + rng.Intn(200),
			Seed:    rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		budget := int64((0.2 + 0.6*rng.Float64()) * float64(w.TotalSize()))
		current := make([]bool, len(w.Columns))
		var currentMem int64
		for i := range current {
			current[i] = rng.Intn(2) == 0
			if current[i] {
				currentMem += w.Columns[i].Size
			}
		}
		beta := p.CSS * rng.Float64()

		free, err := OptimalILP(w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		zeroBeta, err := OptimalILPRealloc(w, p, budget, current, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(zeroBeta.Cost-free.Cost) > 1e-6*free.Cost {
			t.Fatalf("trial %d: beta=0 cost %g != unconstrained %g", trial, zeroBeta.Cost, free.Cost)
		}

		chosen, err := OptimalILPRealloc(w, p, budget, current, beta)
		if err != nil {
			t.Fatal(err)
		}
		objective := func(x []bool) float64 {
			obj := ScanCost(w, p, x)
			for i := range x {
				if x[i] != current[i] {
					obj += beta * float64(w.Columns[i].Size)
				}
			}
			return obj
		}
		if currentMem <= budget {
			// Keeping the current allocation is feasible, so the
			// optimizer must not do worse than standing still.
			if objective(chosen.InDRAM) > objective(current)*(1+1e-6)+1e-15 {
				t.Fatalf("trial %d: realloc objective %g worse than staying at %g",
					trial, objective(chosen.InDRAM), objective(current))
			}
		}

		if currentMem <= budget {
			frozen, err := OptimalILPRealloc(w, p, budget, current, 1e9*p.CSS)
			if err != nil {
				t.Fatal(err)
			}
			for i := range current {
				if frozen.InDRAM[i] != current[i] {
					t.Fatalf("trial %d: prohibitive beta moved column %d", trial, i)
				}
			}
		}
	}
}

// TestRandomInstancesPerformanceOrderPrefix confirms Remark 1 across
// random instances: every explicit solution is a prefix of the
// performance order (plus pinned columns).
func TestRandomInstancesPerformanceOrderPrefix(t *testing.T) {
	p := DefaultCostParams()
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		w, err := Example1(Example1Config{
			Columns: 10 + rng.Intn(30),
			Queries: 50 + rng.Intn(200),
			Seed:    rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		order, err := PerformanceOrder(w, p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		budget := int64(rng.Float64() * float64(w.TotalSize()))
		alloc, err := ExplicitForBudget(w, p, budget, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Find where the prefix ends; everything after must be out.
		ended := false
		for _, c := range order {
			if alloc.InDRAM[c] && ended {
				t.Fatalf("trial %d: explicit solution is not a prefix of the performance order", trial)
			}
			if !alloc.InDRAM[c] {
				ended = true
			}
		}
	}
}
