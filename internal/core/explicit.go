package core

import (
	"fmt"
	"sort"
)

// PerformanceOrder computes the paper's "performance order" o_i
// (Remark 1, Theorem 2) explicitly, without solving any optimization
// program: each column's critical penalty alpha_i = -(S_i +
// beta*(1-2*y_i)) is the alpha value at which the column enters the
// optimal DRAM allocation. Sorting by descending critical alpha yields
// the fixed order in which columns join optimal allocations as the
// budget grows.
//
// Only columns that ever enter an allocation for some alpha > 0 (i.e.
// with positive critical alpha) appear in the order; never-filtered
// columns (S_i = 0, no reallocation pull) are excluded, matching the
// paper's trivial preprocessing step. Pinned columns are excluded too;
// callers place them unconditionally.
func PerformanceOrder(w *Workload, p CostParams, current []bool, beta float64) ([]int, error) {
	if current != nil && len(current) != len(w.Columns) {
		return nil, fmt.Errorf("core: current allocation has %d entries, want %d", len(current), len(w.Columns))
	}
	coeff := Coefficients(w, p)
	type entry struct {
		idx      int
		critical float64
	}
	entries := make([]entry, 0, len(w.Columns))
	for i := range w.Columns {
		if w.Columns[i].Pinned {
			continue
		}
		y := 0.0
		if current != nil && current[i] {
			y = 1
		}
		critical := -(coeff[i] + beta*(1-2*y))
		if critical > 0 {
			entries = append(entries, entry{idx: i, critical: critical})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].critical != entries[b].critical {
			return entries[a].critical > entries[b].critical
		}
		return entries[a].idx < entries[b].idx
	})
	order := make([]int, len(entries))
	for i, e := range entries {
		order[i] = e.idx
	}
	return order, nil
}

// ExplicitForBudget is the explicit solution of Theorem 2 ("Schlosser
// heuristic"): place pinned columns, then walk the performance order and
// stop at the first column that no longer fits the budget. The result is
// the largest Pareto-optimal allocation admissible for the budget and is
// computed in O(N log N + workload), as fast as the simple heuristics.
func ExplicitForBudget(w *Workload, p CostParams, budget int64, current []bool, beta float64) (Allocation, error) {
	return explicitAllocate(w, p, budget, current, beta, false)
}

// FillingForBudget is the explicit solution combined with the filling
// heuristic of Remark 2: after the first column of the performance order
// no longer fits, later (smaller) columns that still fit are placed too.
// This closely tracks the optimal integer solution (Figure 6(c)).
func FillingForBudget(w *Workload, p CostParams, budget int64, current []bool, beta float64) (Allocation, error) {
	return explicitAllocate(w, p, budget, current, beta, true)
}

func explicitAllocate(w *Workload, p CostParams, budget int64, current []bool, beta float64, fill bool) (Allocation, error) {
	if err := w.Validate(); err != nil {
		return Allocation{}, err
	}
	order, err := PerformanceOrder(w, p, current, beta)
	if err != nil {
		return Allocation{}, err
	}
	x := make([]bool, len(w.Columns))
	var used int64
	for i, c := range w.Columns {
		if c.Pinned {
			x[i] = true
			used += c.Size
		}
	}
	if used > budget {
		return Allocation{}, fmt.Errorf("core: pinned columns need %d bytes, budget is %d", used, budget)
	}
	for _, i := range order {
		if used+w.Columns[i].Size > budget {
			if fill {
				continue
			}
			break
		}
		x[i] = true
		used += w.Columns[i].Size
	}
	return makeAllocation(w, p, x), nil
}

// GreedyRatio implements the general recursive principle of Remark 3:
// repeatedly select the column maximizing additional performance per
// additional DRAM byte until the budget is exhausted. It re-evaluates
// the true cost function after every step, so unlike ExplicitForBudget
// it does not rely on the linear decomposition and carries over to
// arbitrary (e.g. optimizer-estimated) cost functions. For the paper's
// linear scan cost model the marginal gains are constant and GreedyRatio
// reproduces the filling solution.
func GreedyRatio(w *Workload, p CostParams, budget int64) (Allocation, error) {
	if err := w.Validate(); err != nil {
		return Allocation{}, err
	}
	x := make([]bool, len(w.Columns))
	var used int64
	for i, c := range w.Columns {
		if c.Pinned {
			x[i] = true
			used += c.Size
		}
	}
	if used > budget {
		return Allocation{}, fmt.Errorf("core: pinned columns need %d bytes, budget is %d", used, budget)
	}
	cost := ScanCost(w, p, x)
	for {
		bestIdx := -1
		bestRatio := 0.0
		bestCost := 0.0
		for i, c := range w.Columns {
			if x[i] || used+c.Size > budget {
				continue
			}
			x[i] = true
			trial := ScanCost(w, p, x)
			x[i] = false
			gain := cost - trial
			if gain <= 0 {
				continue
			}
			ratio := gain / float64(c.Size)
			if ratio > bestRatio {
				bestRatio = ratio
				bestIdx = i
				bestCost = trial
			}
		}
		if bestIdx < 0 {
			break
		}
		x[bestIdx] = true
		used += w.Columns[bestIdx].Size
		cost = bestCost
	}
	return Allocation{InDRAM: x, Cost: cost, Memory: used}, nil
}
