package core

// ParetoPoint is one point of the efficient frontier: an allocation
// together with the relative budget it was computed for.
type ParetoPoint struct {
	// Budget is the absolute DRAM budget A in bytes.
	Budget int64
	// RelativeBudget is w = A / TotalSize.
	RelativeBudget float64
	// Allocation is the optimal (or heuristic) allocation for Budget.
	Allocation Allocation
	// RelativePerformance is minimal cost / Allocation.Cost (<= 1).
	RelativePerformance float64
}

// FrontierMethod selects how frontier points are computed.
type FrontierMethod int

const (
	// FrontierILP computes each point with the exact integer program;
	// the resulting points are the true efficient frontier (Figure 3).
	FrontierILP FrontierMethod = iota
	// FrontierContinuous computes each point with the explicit
	// continuous/penalty solution; points are Pareto-efficient but only
	// the largest prefix allocation fitting each budget (Theorem 1).
	FrontierContinuous
	// FrontierFilling computes each point with the explicit solution
	// plus the filling heuristic of Remark 2.
	FrontierFilling
)

// Frontier computes allocations for a sweep of relative budgets
// w in [0,1]. It returns one ParetoPoint per requested budget.
func Frontier(w *Workload, p CostParams, relativeBudgets []float64, method FrontierMethod) ([]ParetoPoint, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	total := w.TotalSize()
	points := make([]ParetoPoint, 0, len(relativeBudgets))
	for _, rb := range relativeBudgets {
		budget := int64(rb * float64(total))
		var (
			alloc Allocation
			err   error
		)
		switch method {
		case FrontierILP:
			alloc, err = OptimalILP(w, p, budget)
		case FrontierContinuous:
			alloc, err = ExplicitForBudget(w, p, budget, nil, 0)
		case FrontierFilling:
			alloc, err = FillingForBudget(w, p, budget, nil, 0)
		}
		if err != nil {
			return nil, err
		}
		points = append(points, ParetoPoint{
			Budget:              budget,
			RelativeBudget:      rb,
			Allocation:          alloc,
			RelativePerformance: RelativePerformance(w, p, alloc),
		})
	}
	return points, nil
}

// IsParetoEfficient reports whether candidate is not dominated by any
// point in points: no point has both strictly lower cost and no more
// memory, or strictly less memory and no higher cost.
func IsParetoEfficient(candidate Allocation, points []Allocation) bool {
	for _, p := range points {
		if (p.Cost < candidate.Cost && p.Memory <= candidate.Memory) ||
			(p.Memory < candidate.Memory && p.Cost <= candidate.Cost) {
			return false
		}
	}
	return true
}
