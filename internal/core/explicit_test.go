package core

import (
	"math"
	"testing"
)

// TestLemma1PenaltySolutionsAreInteger is implicit in our representation
// (decision vectors are boolean); what we verify instead is the penalty
// solution's optimality: for every alpha, no other 0/1 vector has lower
// F(x) + alpha*M(x) on a brute-forceable instance.
func TestPenaltySolutionOptimal(t *testing.T) {
	w := example(t, 10, 60, 21)
	p := DefaultCostParams()
	coeff := Coefficients(w, p)
	// Probe alphas spanning the critical values.
	alphas := []float64{0}
	for _, s := range coeff {
		alphas = append(alphas, -s/2, -s, -s*2)
	}
	x := make([]bool, len(w.Columns))
	for _, alpha := range alphas {
		if alpha < 0 {
			continue
		}
		got, err := ContinuousPenalty(w, p, alpha)
		if err != nil {
			t.Fatal(err)
		}
		gotObj := got.Cost + alpha*float64(got.Memory)
		for mask := 0; mask < 1<<len(w.Columns); mask++ {
			for i := range x {
				x[i] = mask&(1<<i) != 0
			}
			obj := ScanCost(w, p, x) + alpha*float64(MemoryUsed(w, x))
			if obj < gotObj-1e-9*math.Abs(gotObj)-1e-15 {
				t.Fatalf("alpha=%g: found better objective %g < %g", alpha, obj, gotObj)
			}
		}
	}
}

// TestTheorem1ParetoEfficiency: penalty solutions for alpha > 0 are not
// dominated by any integer-feasible allocation.
func TestTheorem1ParetoEfficiency(t *testing.T) {
	w := example(t, 10, 60, 22)
	p := DefaultCostParams()
	coeff := Coefficients(w, p)
	x := make([]bool, len(w.Columns))
	for _, s := range coeff {
		alpha := -s * 0.9
		if alpha <= 0 {
			continue
		}
		cand, err := ContinuousPenalty(w, p, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for mask := 0; mask < 1<<len(w.Columns); mask++ {
			for i := range x {
				x[i] = mask&(1<<i) != 0
			}
			cost := ScanCost(w, p, x)
			mem := MemoryUsed(w, x)
			if cost < cand.Cost-1e-12 && mem <= cand.Memory ||
				mem < cand.Memory && cost <= cand.Cost+1e-12 {
				t.Fatalf("alpha=%g: allocation (cost=%g, mem=%d) dominates penalty solution (cost=%g, mem=%d)",
					alpha, cost, mem, cand.Cost, cand.Memory)
			}
		}
	}
}

// TestRemark1RecursiveStructure: a column that is part of the optimal
// continuous allocation for some alpha stays in for every smaller alpha
// (equivalently, larger budgets).
func TestRemark1RecursiveStructure(t *testing.T) {
	w := example(t, 30, 200, 23)
	p := DefaultCostParams()
	coeff := Coefficients(w, p)
	maxAlpha := 0.0
	for _, s := range coeff {
		if -s > maxAlpha {
			maxAlpha = -s
		}
	}
	var prev Allocation
	first := true
	for step := 20; step >= 0; step-- {
		alpha := maxAlpha * float64(step) / 20 * 1.01
		alloc, err := ContinuousPenalty(w, p, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !first {
			for i := range prev.InDRAM {
				if prev.InDRAM[i] && !alloc.InDRAM[i] {
					t.Fatalf("alpha=%g: column %d left DRAM as alpha decreased", alpha, i)
				}
			}
		}
		prev, first = alloc, false
	}
}

// TestExplicitMatchesContinuous: ExplicitForBudget (Theorem 2, computed
// from the performance order) reproduces ContinuousForBudget (computed
// from the alpha search) for any budget.
func TestExplicitMatchesContinuous(t *testing.T) {
	w := example(t, 40, 300, 24)
	p := DefaultCostParams()
	for _, f := range []float64{0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 0.9, 1} {
		budget := int64(f * float64(w.TotalSize()))
		exp, err := ExplicitForBudget(w, p, budget, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		cont, err := ContinuousForBudget(w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		for i := range exp.InDRAM {
			if exp.InDRAM[i] != cont.InDRAM[i] {
				t.Fatalf("budget %d: explicit and continuous disagree on column %d", budget, i)
			}
		}
	}
}

// TestExplicitSolutionsOnILPFrontier: the explicit solution for a budget
// equal to its own memory use coincides in cost with the ILP optimum —
// that is, explicit solutions lie on the efficient frontier (Theorem 1 +
// Theorem 2).
func TestExplicitSolutionsOnILPFrontier(t *testing.T) {
	w := example(t, 25, 150, 25)
	p := DefaultCostParams()
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		budget := int64(f * float64(w.TotalSize()))
		exp, err := ExplicitForBudget(w, p, budget, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalILP(w, p, exp.Memory)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt.Cost-exp.Cost) > 1e-9*opt.Cost {
			t.Errorf("budget %d: explicit cost %g off frontier (ILP %g at same memory)", budget, exp.Cost, opt.Cost)
		}
	}
}

func TestPerformanceOrderSortedByCriticalAlpha(t *testing.T) {
	w := example(t, 30, 200, 26)
	p := DefaultCostParams()
	order, err := PerformanceOrder(w, p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	coeff := Coefficients(w, p)
	for i := 1; i < len(order); i++ {
		if -coeff[order[i-1]] < -coeff[order[i]] {
			t.Errorf("performance order not sorted at %d: %g < %g", i, -coeff[order[i-1]], -coeff[order[i]])
		}
	}
	seen := make(map[int]bool)
	for _, idx := range order {
		if seen[idx] {
			t.Errorf("column %d appears twice in performance order", idx)
		}
		seen[idx] = true
	}
}

func TestPerformanceOrderExcludesUnfiltered(t *testing.T) {
	w := &Workload{
		Columns: []Column{
			{Name: "used", Size: 10, Selectivity: 0.5},
			{Name: "unused", Size: 10, Selectivity: 0.5},
		},
		Queries: []Query{{Columns: []int{0}, Frequency: 5}},
	}
	order, err := PerformanceOrder(w, DefaultCostParams(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != 0 {
		t.Errorf("performance order = %v, want [0]", order)
	}
}

func TestFillingAtLeastAsGoodAsExplicit(t *testing.T) {
	w := example(t, 40, 300, 27)
	p := DefaultCostParams()
	for _, f := range []float64{0.05, 0.15, 0.3, 0.5, 0.8} {
		budget := int64(f * float64(w.TotalSize()))
		exp, err := ExplicitForBudget(w, p, budget, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		fill, err := FillingForBudget(w, p, budget, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fill.Cost > exp.Cost+1e-9*exp.Cost {
			t.Errorf("budget %d: filling cost %g worse than explicit %g", budget, fill.Cost, exp.Cost)
		}
		if fill.Memory > budget {
			t.Errorf("budget %d: filling used %d bytes", budget, fill.Memory)
		}
	}
}

func TestGreedyRatioMatchesFillingOnLinearModel(t *testing.T) {
	w := example(t, 20, 120, 28)
	p := DefaultCostParams()
	for _, f := range []float64{0.2, 0.5, 0.8} {
		budget := int64(f * float64(w.TotalSize()))
		fill, err := FillingForBudget(w, p, budget, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := GreedyRatio(w, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		// Marginal gains are allocation-independent under the linear
		// model, so both walk the same density order.
		if math.Abs(fill.Cost-greedy.Cost) > 1e-9*fill.Cost {
			t.Errorf("budget %d: greedy ratio cost %g != filling cost %g", budget, greedy.Cost, fill.Cost)
		}
	}
}

// TestReallocationBetaSuppressesChurn: with the current allocation and a
// prohibitive beta, the solver keeps the current placement; with beta=0
// it is free to move.
func TestReallocationBetaSuppressesChurn(t *testing.T) {
	w := example(t, 20, 150, 29)
	p := DefaultCostParams()
	budget := int64(0.4 * float64(w.TotalSize()))
	free, err := OptimalILP(w, p, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb: current allocation = free optimum with one column flipped out.
	current := make([]bool, len(free.InDRAM))
	copy(current, free.InDRAM)
	flipped := -1
	for i, in := range current {
		if in {
			current[i] = false
			flipped = i
			break
		}
	}
	if flipped < 0 {
		t.Skip("no column selected at this budget")
	}
	hugeBeta := 1e6 * p.CSS
	sticky, err := OptimalILPRealloc(w, p, budget, current, hugeBeta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range current {
		if sticky.InDRAM[i] != current[i] {
			t.Errorf("with prohibitive beta, column %d moved", i)
		}
	}
	// With beta = 0, reallocation is free and the optimum is restored.
	loose, err := OptimalILPRealloc(w, p, budget, current, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loose.Cost-free.Cost) > 1e-9*free.Cost {
		t.Errorf("beta=0 realloc cost %g, want unconstrained optimum %g", loose.Cost, free.Cost)
	}
}

// TestReallocationExplicitMatchesILP: the explicit reallocation-aware
// solution is on the frontier of the reallocation ILP.
func TestReallocationExplicitMatchesILP(t *testing.T) {
	w := example(t, 15, 100, 30)
	p := DefaultCostParams()
	current := make([]bool, len(w.Columns))
	for i := range current {
		current[i] = i%3 == 0
	}
	beta := p.CSS / 2
	budget := int64(0.5 * float64(w.TotalSize()))
	exp, err := ExplicitForBudget(w, p, budget, current, beta)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both solutions under the full reallocation objective.
	objective := func(x []bool) float64 {
		obj := ScanCost(w, p, x)
		for i := range x {
			if x[i] != current[i] {
				obj += beta * float64(w.Columns[i].Size)
			}
		}
		return obj
	}
	opt, err := OptimalILPRealloc(w, p, exp.Memory, current, beta)
	if err != nil {
		t.Fatal(err)
	}
	if objective(exp.InDRAM) < objective(opt.InDRAM)-1e-9 {
		t.Errorf("explicit realloc solution beats ILP: %g < %g", objective(exp.InDRAM), objective(opt.InDRAM))
	}
	if objective(exp.InDRAM) > objective(opt.InDRAM)+1e-9*objective(opt.InDRAM) {
		t.Errorf("explicit realloc solution off ILP frontier: %g > %g", objective(exp.InDRAM), objective(opt.InDRAM))
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Allocation{InDRAM: []bool{true, false}, Cost: 5, Memory: 10}
	b := a.Clone()
	b.InDRAM[0] = false
	if !a.InDRAM[0] {
		t.Error("Clone shares the decision vector")
	}
}
