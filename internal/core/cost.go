package core

// Allocation is the result of a column selection: which columns are
// DRAM-resident, the modeled total scan cost F(x), and the DRAM space
// M(x) the selection occupies.
type Allocation struct {
	// InDRAM is the decision vector x: InDRAM[i] reports whether column
	// i is kept DRAM-resident (as an MRC).
	InDRAM []bool
	// Cost is the total scan cost F(x) of the workload under this
	// allocation, in the unit of CostParams (typically seconds).
	Cost float64
	// Memory is M(x), the DRAM bytes the selected columns occupy.
	Memory int64
}

// Clone returns a deep copy of the allocation.
func (a Allocation) Clone() Allocation {
	in := make([]bool, len(a.InDRAM))
	copy(in, a.InDRAM)
	return Allocation{InDRAM: in, Cost: a.Cost, Memory: a.Memory}
}

// CountInDRAM returns the number of DRAM-resident columns.
func (a Allocation) CountInDRAM() int {
	n := 0
	for _, in := range a.InDRAM {
		if in {
			n++
		}
	}
	return n
}

// ScanCost evaluates the total scan cost F(x) of formula (1)-(2): for
// every query, predicates run in ascending selectivity order, and the
// data volume each predicate touches is the column size scaled by the
// product of the selectivities of all previously executed predicates.
func ScanCost(w *Workload, p CostParams, x []bool) float64 {
	var total float64
	for _, q := range w.Queries {
		total += q.Frequency * queryScanCost(w, p, x, q)
	}
	return total
}

// CostShare is one predicate column's term of a query's modeled scan
// cost f_j(x): unit(tier) * size * fraction, where fraction is the
// product of the selectivities of the predicates the model orders
// before this one.
type CostShare struct {
	// Column indexes into w.Columns.
	Column int
	// Fraction is the data-volume share the predicate touches: the
	// product of earlier selectivities in the model's scan order.
	Fraction float64
	// InDRAM reports which tier's unit cost the term charged.
	InDRAM bool
	// Cost is the term's value in the unit of CostParams (seconds),
	// before frequency weighting.
	Cost float64
}

// QueryCostShares decomposes a single query's modeled scan cost f_j(x)
// into per-column terms, following the model's own ascending-selectivity
// scan order. queryScanCost sums exactly this decomposition, so the
// shares always add up to the query's contribution to ScanCost (before
// frequency weighting) — the two cannot diverge.
func QueryCostShares(w *Workload, p CostParams, x []bool, q Query) []CostShare {
	shares := make([]CostShare, 0, len(q.Columns))
	share := 1.0 // product of selectivities of already-executed predicates
	for _, k := range w.scanOrder(q) {
		c := w.Columns[k]
		unit := p.CSS
		in := false
		if x[k] {
			unit = p.CMM
			in = true
		}
		shares = append(shares, CostShare{
			Column:   k,
			Fraction: share,
			InDRAM:   in,
			Cost:     unit * float64(c.Size) * share,
		})
		share *= c.Selectivity
	}
	return shares
}

// queryScanCost computes f_j(x) for a single query.
func queryScanCost(w *Workload, p CostParams, x []bool, q Query) float64 {
	var cost float64
	for _, s := range QueryCostShares(w, p, x, q) {
		cost += s.Cost
	}
	return cost
}

// MemoryUsed returns M(x), the DRAM bytes occupied by the selection x.
func MemoryUsed(w *Workload, x []bool) int64 {
	var m int64
	for i, in := range x {
		if in {
			m += w.Columns[i].Size
		}
	}
	return m
}

// makeAllocation bundles a decision vector with its evaluated cost and
// memory footprint.
func makeAllocation(w *Workload, p CostParams, x []bool) Allocation {
	return Allocation{InDRAM: x, Cost: ScanCost(w, p, x), Memory: MemoryUsed(w, x)}
}

// Coefficients returns the per-column coefficients S_i of the paper's
// explicit solution (Section III-F):
//
//	S_i = sum_j b_j * (c_mm - c_ss) * prod_{k in q_j, s_k < s_i} s_k
//
// S_i is the change in F per byte of column i when moving it into DRAM;
// it is non-positive whenever c_mm <= c_ss. The total cost decomposes as
// F(x) = F(0) + sum_i a_i * S_i * x_i, which makes the integer program a
// 0/1 knapsack and underpins Lemma 1, Theorem 1 and Theorem 2.
func Coefficients(w *Workload, p CostParams) []float64 {
	s := make([]float64, len(w.Columns))
	diff := p.CMM - p.CSS
	for _, q := range w.Queries {
		share := 1.0
		for _, k := range w.scanOrder(q) {
			s[k] += q.Frequency * diff * share
			share *= w.Columns[k].Selectivity
		}
	}
	return s
}

// Benefits returns, for each column, the total runtime saved by keeping
// it DRAM-resident: -a_i * S_i. Columns that are never filtered have
// benefit zero (the paper's trivial preprocessing step evicts them
// first).
func Benefits(w *Workload, p CostParams) []float64 {
	s := Coefficients(w, p)
	b := make([]float64, len(s))
	for i, si := range s {
		b[i] = -float64(w.Columns[i].Size) * si
	}
	return b
}

// RelativePerformance returns the paper's Figure 3/4 metric: the minimal
// scan cost (all columns DRAM-resident) divided by the scan cost of the
// given allocation. It is 1 for a full-DRAM allocation and approaches
// CMM/CSS as everything is evicted.
func RelativePerformance(w *Workload, p CostParams, a Allocation) float64 {
	all := make([]bool, len(w.Columns))
	for i := range all {
		all[i] = true
	}
	best := ScanCost(w, p, all)
	if a.Cost == 0 {
		return 1
	}
	return best / a.Cost
}
