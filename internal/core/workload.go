// Package core implements the column selection model of Boissier,
// Schlosser and Uflacker, "Hybrid Data Layouts for Tiered HTAP Databases
// with Pareto-Optimal Data Placements" (ICDE 2018).
//
// The model decides which columns of a table stay DRAM-resident (as
// dictionary-encoded Memory-Resident Columns, MRCs) and which are evicted
// into a row-oriented Secondary-Storage Column Group (SSCG), given a DRAM
// budget. Costs are bandwidth-centric scan costs with selection
// interaction: conjunctive predicates are executed in ascending order of
// selectivity, and each executed predicate multiplicatively shrinks the
// fraction of rows the following predicates touch.
//
// The package provides the paper's full solution family:
//
//   - the exact integer program (2)-(3), solved via branch and bound
//     (package internal/solver);
//   - the penalty formulation (5) whose solutions are integer (Lemma 1)
//     and Pareto-efficient (Theorem 1);
//   - the reallocation-aware extension (6)-(7);
//   - the explicit solution of Theorem 2 ("Schlosser heuristic") that
//     derives the performance order o_i without any solver;
//   - the filling heuristic (Remark 2) and the greedy marginal-gain
//     heuristic (Remark 3);
//   - the benchmark heuristics H1-H3 the paper compares against.
package core

import (
	"errors"
	"fmt"
	"sort"
)

// Column describes a single attribute of the table under optimization.
type Column struct {
	// Name identifies the column; it is only used for reporting.
	Name string
	// Size is the column's size a_i in bytes (its DRAM footprint when
	// resident, and the amount of data a full scan reads).
	Size int64
	// Selectivity is the average share of rows matching an
	// equi-predicate on the column, defined as 1/n for n distinct
	// values (paper, Section II-B). Must be in (0, 1].
	Selectivity float64
	// Pinned forces the column to stay DRAM-resident regardless of the
	// optimization outcome (e.g. primary keys under an SLA).
	Pinned bool
}

// Query is one distinct plan of the workload: the set of columns its
// conjunctive predicates touch, and how often the plan was executed.
type Query struct {
	// Columns holds indexes into Workload.Columns of the attributes the
	// query filters on (the set q_j). Order is irrelevant; the cost
	// model sorts predicates by selectivity.
	Columns []int
	// Frequency is the query's number of occurrences b_j. Must be
	// non-negative.
	Frequency float64
}

// Workload is the column selection input: the table's columns and the
// observed queries over them, as extracted from a plan cache.
type Workload struct {
	Columns []Column
	Queries []Query
}

// CostParams calibrates the bandwidth-centric cost model. Both values
// express the time to read one byte from the respective tier, e.g.
// seconds per byte. Typically CMM < CSS.
type CostParams struct {
	// CMM is the scan cost parameter c_mm for main memory.
	CMM float64
	// CSS is the scan cost parameter c_ss for secondary storage.
	CSS float64
}

// DefaultCostParams returns cost parameters loosely calibrated to a
// 2017-era NUMA server: ~10 GB/s effective single-socket scan bandwidth
// from DRAM and ~1 GB/s from a NAND SSD.
func DefaultCostParams() CostParams {
	return CostParams{
		CMM: 1.0 / (10 << 30),
		CSS: 1.0 / (1 << 30),
	}
}

// Validate checks the workload for structural errors: empty column set,
// out-of-range column references, non-positive sizes, selectivities
// outside (0,1], or negative frequencies.
func (w *Workload) Validate() error {
	if len(w.Columns) == 0 {
		return errors.New("core: workload has no columns")
	}
	for i, c := range w.Columns {
		if c.Size <= 0 {
			return fmt.Errorf("core: column %d (%s) has non-positive size %d", i, c.Name, c.Size)
		}
		if c.Selectivity <= 0 || c.Selectivity > 1 {
			return fmt.Errorf("core: column %d (%s) has selectivity %g outside (0,1]", i, c.Name, c.Selectivity)
		}
	}
	for j, q := range w.Queries {
		if q.Frequency < 0 {
			return fmt.Errorf("core: query %d has negative frequency %g", j, q.Frequency)
		}
		seen := make(map[int]bool, len(q.Columns))
		for _, c := range q.Columns {
			if c < 0 || c >= len(w.Columns) {
				return fmt.Errorf("core: query %d references column %d, have %d columns", j, c, len(w.Columns))
			}
			if seen[c] {
				return fmt.Errorf("core: query %d references column %d twice", j, c)
			}
			seen[c] = true
		}
	}
	return nil
}

// TotalSize returns the summed size of all columns in bytes; the budget
// A(w) = w * TotalSize for a relative memory budget w in [0,1].
func (w *Workload) TotalSize() int64 {
	var total int64
	for _, c := range w.Columns {
		total += c.Size
	}
	return total
}

// AccessCounts returns g_i, the summed frequency of queries that include
// each column (paper, heuristic H1).
func (w *Workload) AccessCounts() []float64 {
	g := make([]float64, len(w.Columns))
	for _, q := range w.Queries {
		for _, c := range q.Columns {
			g[c] += q.Frequency
		}
	}
	return g
}

// scanOrder returns the column indexes of q sorted in the execution
// order assumed by the cost model: ascending selectivity (most
// restrictive predicate first), with ties broken by column index so the
// model is deterministic.
func (w *Workload) scanOrder(q Query) []int {
	order := make([]int, len(q.Columns))
	copy(order, q.Columns)
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if w.Columns[ca].Selectivity != w.Columns[cb].Selectivity {
			return w.Columns[ca].Selectivity < w.Columns[cb].Selectivity
		}
		return ca < cb
	})
	return order
}
