package workload

import (
	"sort"
	"sync"
)

// History tracks plan executions over moving time windows (the paper's
// Section VI: "varying time frames (moving windows) of historic
// workload data can be used to feed the model"). The caller closes a
// window whenever its time frame elapses (e.g. hourly or daily);
// History keeps the most recent `capacity` windows and produces aligned
// per-plan frequency series for the forecast package.
type History struct {
	mu       sync.Mutex
	capacity int
	current  *PlanCache
	windows  []map[string]Plan // oldest first
}

// NewHistory tracks up to capacity closed windows (minimum 1).
func NewHistory(capacity int) *History {
	if capacity < 1 {
		capacity = 1
	}
	return &History{capacity: capacity, current: NewPlanCache()}
}

// Record notes one execution of a plan in the current window.
func (h *History) Record(columns []int) {
	h.mu.Lock()
	cur := h.current
	h.mu.Unlock()
	cur.Record(columns)
}

// RecordN notes n executions.
func (h *History) RecordN(columns []int, n float64) {
	h.mu.Lock()
	cur := h.current
	h.mu.Unlock()
	cur.RecordN(columns, n)
}

// CurrentPlans returns the distinct plans of the open (not yet closed)
// window, ordered by descending count.
func (h *History) CurrentPlans() []Plan {
	h.mu.Lock()
	cur := h.current
	h.mu.Unlock()
	return cur.Plans()
}

// CloseWindow freezes the current window into the history and starts a
// new one. The oldest window is dropped beyond capacity.
func (h *History) CloseWindow() { h.Rotate() }

// Rotate closes the current window exactly like CloseWindow and returns
// the frozen window's distinct plans (descending count). The adaptive
// placement scheduler uses it to consume "the workload since the last
// cycle" in one step instead of CurrentPlans+CloseWindow, which would
// drop every Record landing between the two calls.
func (h *History) Rotate() []Plan {
	h.mu.Lock()
	defer h.mu.Unlock()
	plans := h.current.Plans()
	snapshot := make(map[string]Plan, len(plans))
	for _, p := range plans {
		snapshot[planKey(p.Columns)] = p
	}
	h.windows = append(h.windows, snapshot)
	if len(h.windows) > h.capacity {
		h.windows = h.windows[len(h.windows)-h.capacity:]
	}
	h.current = NewPlanCache()
	return plans
}

// Windows returns the number of closed windows.
func (h *History) Windows() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.windows)
}

// PlanSeries is one distinct plan with its aligned per-window
// frequencies (0 where the plan did not run).
type PlanSeries struct {
	Columns []int
	Counts  []float64 // one entry per closed window, oldest first
}

// Series returns every plan seen in any closed window with its aligned
// frequency series, ordered by total count descending (ties by key).
func (h *History) Series() []PlanSeries {
	h.mu.Lock()
	defer h.mu.Unlock()
	keys := make(map[string][]int)
	for _, w := range h.windows {
		for k, p := range w {
			if _, seen := keys[k]; !seen {
				keys[k] = append([]int(nil), p.Columns...)
			}
		}
	}
	out := make([]PlanSeries, 0, len(keys))
	for k, cols := range keys {
		counts := make([]float64, len(h.windows))
		for i, w := range h.windows {
			if p, ok := w[k]; ok {
				counts[i] = p.Count
			}
		}
		out = append(out, PlanSeries{Columns: cols, Counts: counts})
	}
	sort.Slice(out, func(a, b int) bool {
		ta, tb := 0.0, 0.0
		for _, c := range out[a].Counts {
			ta += c
		}
		for _, c := range out[b].Counts {
			tb += c
		}
		if ta != tb {
			return ta > tb
		}
		return planKey(out[a].Columns) < planKey(out[b].Columns)
	})
	return out
}
