package workload

import (
	"sync"
	"testing"

	"tierdb/internal/schema"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

func TestRecordDeduplicatesPlans(t *testing.T) {
	pc := NewPlanCache()
	pc.Record([]int{2, 0})
	pc.Record([]int{0, 2}) // same plan, different order
	pc.Record([]int{1})
	if pc.Len() != 2 {
		t.Errorf("Len = %d, want 2", pc.Len())
	}
	plans := pc.Plans()
	if plans[0].Count != 2 || len(plans[0].Columns) != 2 {
		t.Errorf("plans[0] = %+v", plans[0])
	}
	if plans[0].Columns[0] != 0 || plans[0].Columns[1] != 2 {
		t.Errorf("columns not normalized: %v", plans[0].Columns)
	}
}

func TestRecordN(t *testing.T) {
	pc := NewPlanCache()
	pc.RecordN([]int{1}, 50)
	pc.RecordN([]int{1}, 25)
	pc.RecordN([]int{1}, 0)  // ignored
	pc.RecordN([]int{1}, -3) // ignored
	plans := pc.Plans()
	if len(plans) != 1 || plans[0].Count != 75 {
		t.Errorf("plans = %+v", plans)
	}
}

func TestReset(t *testing.T) {
	pc := NewPlanCache()
	pc.Record([]int{0})
	pc.Reset()
	if pc.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestPlansStableOrder(t *testing.T) {
	pc := NewPlanCache()
	pc.RecordN([]int{0}, 10)
	pc.RecordN([]int{1}, 10)
	pc.RecordN([]int{2}, 99)
	plans := pc.Plans()
	if plans[0].Columns[0] != 2 {
		t.Error("highest-count plan not first")
	}
	if plans[1].Columns[0] != 0 || plans[2].Columns[0] != 1 {
		t.Error("tie break not by key")
	}
}

func TestConcurrentRecord(t *testing.T) {
	pc := NewPlanCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				pc.Record([]int{g % 4})
			}
		}(g)
	}
	wg.Wait()
	var total float64
	for _, p := range pc.Plans() {
		total += p.Count
	}
	if total != 8000 {
		t.Errorf("total executions = %g, want 8000", total)
	}
}

func loadedTable(t *testing.T) *table.Table {
	t.Helper()
	s := schema.MustNew([]schema.Field{
		{Name: "a", Type: value.Int64},
		{Name: "b", Type: value.Int64},
		{Name: "c", Type: value.Int64},
	})
	tbl, err := table.New("t", s, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]value.Value, 200)
	for i := range rows {
		rows[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 10)),
			value.NewInt(int64(i % 2)),
		}
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestExtract(t *testing.T) {
	tbl := loadedTable(t)
	pc := NewPlanCache()
	pc.RecordN([]int{0, 1}, 100)
	pc.RecordN([]int{2}, 5)
	w, err := Extract(tbl, pc, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Columns) != 3 || len(w.Queries) != 2 {
		t.Fatalf("workload shape: %d cols, %d queries", len(w.Columns), len(w.Queries))
	}
	if !w.Columns[0].Pinned || w.Columns[1].Pinned {
		t.Error("pinning wrong")
	}
	if w.Columns[0].Selectivity != 1.0/200 {
		t.Errorf("selectivity a = %g", w.Columns[0].Selectivity)
	}
	if w.Columns[2].Selectivity != 0.5 {
		t.Errorf("selectivity c = %g", w.Columns[2].Selectivity)
	}
	for i, c := range w.Columns {
		if c.Size <= 0 {
			t.Errorf("column %d size %d", i, c.Size)
		}
	}
	g := w.AccessCounts()
	if g[0] != 100 || g[1] != 100 || g[2] != 5 {
		t.Errorf("access counts = %v", g)
	}
}

func TestExtractErrors(t *testing.T) {
	tbl := loadedTable(t)
	pc := NewPlanCache()
	pc.Record([]int{0})
	if _, err := Extract(tbl, pc, []int{99}); err == nil {
		t.Error("bad pinned column accepted")
	}
	pc2 := NewPlanCache()
	pc2.Record([]int{7}) // out of table range
	if _, err := Extract(tbl, pc2, nil); err == nil {
		t.Error("out-of-range plan column accepted")
	}
}

func TestExtractEmptyPlanCache(t *testing.T) {
	tbl := loadedTable(t)
	w, err := Extract(tbl, NewPlanCache(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 0 {
		t.Error("expected no queries")
	}
}
