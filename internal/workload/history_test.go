package workload

import (
	"sync"
	"testing"
)

func TestHistoryWindowLifecycle(t *testing.T) {
	h := NewHistory(3)
	h.RecordN([]int{0}, 10)
	h.CloseWindow()
	h.RecordN([]int{0}, 20)
	h.RecordN([]int{1, 2}, 5)
	h.CloseWindow()
	if h.Windows() != 2 {
		t.Fatalf("Windows = %d", h.Windows())
	}
	series := h.Series()
	if len(series) != 2 {
		t.Fatalf("series = %d plans", len(series))
	}
	// Highest-total plan first: {0} with 30.
	if len(series[0].Columns) != 1 || series[0].Columns[0] != 0 {
		t.Errorf("series[0] plan = %v", series[0].Columns)
	}
	if series[0].Counts[0] != 10 || series[0].Counts[1] != 20 {
		t.Errorf("series[0] counts = %v", series[0].Counts)
	}
	// Plan {1,2} absent in window 0: aligned zero.
	if series[1].Counts[0] != 0 || series[1].Counts[1] != 5 {
		t.Errorf("series[1] counts = %v", series[1].Counts)
	}
}

func TestHistoryCapacityEviction(t *testing.T) {
	h := NewHistory(2)
	for i := 0; i < 5; i++ {
		h.RecordN([]int{0}, float64(i+1))
		h.CloseWindow()
	}
	if h.Windows() != 2 {
		t.Fatalf("Windows = %d, want 2", h.Windows())
	}
	series := h.Series()
	if series[0].Counts[0] != 4 || series[0].Counts[1] != 5 {
		t.Errorf("kept windows = %v, want [4 5]", series[0].Counts)
	}
}

func TestHistoryMinimumCapacity(t *testing.T) {
	h := NewHistory(0)
	h.Record([]int{1})
	h.CloseWindow()
	h.Record([]int{1})
	h.CloseWindow()
	if h.Windows() != 1 {
		t.Errorf("Windows = %d, want 1", h.Windows())
	}
}

func TestHistoryEmptyWindowCounts(t *testing.T) {
	h := NewHistory(3)
	h.RecordN([]int{0}, 7)
	h.CloseWindow()
	h.CloseWindow() // empty window
	series := h.Series()
	if len(series) != 1 || len(series[0].Counts) != 2 {
		t.Fatalf("series = %+v", series)
	}
	if series[0].Counts[1] != 0 {
		t.Errorf("empty window count = %g", series[0].Counts[1])
	}
}

func TestHistoryConcurrent(t *testing.T) {
	h := NewHistory(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Record([]int{g})
			}
		}(g)
	}
	wg.Wait()
	h.CloseWindow()
	total := 0.0
	for _, s := range h.Series() {
		for _, c := range s.Counts {
			total += c
		}
	}
	if total != 2000 {
		t.Errorf("total recorded = %g, want 2000", total)
	}
}
