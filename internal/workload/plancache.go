// Package workload captures executed query plans — the database's plan
// cache — and turns them into column selection inputs (paper Section
// I-B: "We separate attributes ... by analyzing the database's plan
// cache"). Each distinct set of filtered columns is one plan; its
// execution count is the query frequency b_j of the optimization model.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tierdb/internal/core"
	"tierdb/internal/table"
)

// Plan is one distinct cached plan: the filtered column set and how
// often it ran.
type Plan struct {
	Columns []int
	Count   float64
}

// PlanCache accumulates plan executions. Safe for concurrent use.
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*Plan
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[string]*Plan)}
}

// Record notes one execution of a plan filtering the given columns.
// Column order within a plan does not matter.
func (pc *PlanCache) Record(columns []int) {
	cols := append([]int(nil), columns...)
	sort.Ints(cols)
	key := planKey(cols)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.entries[key]; ok {
		e.Count++
		return
	}
	pc.entries[key] = &Plan{Columns: cols, Count: 1}
}

// RecordN notes n executions at once (bulk import of an external plan
// cache).
func (pc *PlanCache) RecordN(columns []int, n float64) {
	if n <= 0 {
		return
	}
	cols := append([]int(nil), columns...)
	sort.Ints(cols)
	key := planKey(cols)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.entries[key]; ok {
		e.Count += n
		return
	}
	pc.entries[key] = &Plan{Columns: cols, Count: n}
}

// Plans returns all distinct plans, ordered by descending count (ties
// by key) for stable output.
func (pc *PlanCache) Plans() []Plan {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]Plan, 0, len(pc.entries))
	for _, e := range pc.entries {
		out = append(out, Plan{Columns: append([]int(nil), e.Columns...), Count: e.Count})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return planKey(out[a].Columns) < planKey(out[b].Columns)
	})
	return out
}

// Len returns the number of distinct plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

// Reset clears all recorded plans (e.g. when starting a new moving
// window over the workload history).
func (pc *PlanCache) Reset() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.entries = make(map[string]*Plan)
}

func planKey(sorted []int) string {
	var b strings.Builder
	for i, c := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// Extract builds the column selection input for a table from its
// statistics (sizes, selectivities) and the recorded plans. Columns
// listed in pinned are marked Pinned (e.g. primary keys under an SLA).
func Extract(tbl *table.Table, pc *PlanCache, pinned []int) (*core.Workload, error) {
	return ExtractPlans(tbl, pc.Plans(), pinned)
}

// ExtractPlans is Extract over an explicit plan list instead of a live
// cache — the shape a closed history window (History.Rotate) hands the
// adaptive placement scheduler.
func ExtractPlans(tbl *table.Table, plans []Plan, pinned []int) (*core.Workload, error) {
	s := tbl.Schema()
	cols := make([]core.Column, s.Len())
	for i := 0; i < s.Len(); i++ {
		cols[i] = core.Column{
			Name:        s.Field(i).Name,
			Size:        tbl.ColumnBytes(i),
			Selectivity: tbl.Selectivity(i),
		}
		if cols[i].Size <= 0 {
			cols[i].Size = 1 // empty tables: keep the model well-formed
		}
	}
	for _, p := range pinned {
		if p < 0 || p >= len(cols) {
			return nil, fmt.Errorf("workload: pinned column %d out of range (%d)", p, len(cols))
		}
		cols[p].Pinned = true
	}
	queries := make([]core.Query, 0, len(plans))
	for _, p := range plans {
		for _, c := range p.Columns {
			if c < 0 || c >= len(cols) {
				return nil, fmt.Errorf("workload: plan references column %d, table has %d", c, len(cols))
			}
		}
		queries = append(queries, core.Query{Columns: p.Columns, Frequency: p.Count})
	}
	w := &core.Workload{Columns: cols, Queries: queries}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: extracted workload invalid: %w", err)
	}
	return w, nil
}
