package persist

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"tierdb/internal/schema"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

func buildTable(t testing.TB, rows int) *table.Table {
	t.Helper()
	s := schema.MustNew([]schema.Field{
		{Name: "id", Type: value.Int64},
		{Name: "price", Type: value.Float64},
		{Name: "tag", Type: value.String, Width: 16},
	})
	tbl, err := table.New("snap", s, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]value.Value, rows)
	for i := range data {
		data[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewFloat(float64(i) * 1.5),
			value.NewString(fmt.Sprintf("tag-%d", i%5)),
		}
	}
	if err := tbl.BulkAppend(data); err != nil {
		t.Fatal(err)
	}
	if err := tbl.ApplyLayout([]bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex(0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateCompositeIndex([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tbl := buildTable(t, 200)
	var buf bytes.Buffer
	if err := Save(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != "snap" {
		t.Errorf("name = %q", restored.Name())
	}
	if restored.VisibleCount() != 200 {
		t.Errorf("rows = %d", restored.VisibleCount())
	}
	// Layout restored: id MRC, rest SSCG.
	layout := restored.Layout()
	if !layout[0] || layout[1] || layout[2] {
		t.Errorf("layout = %v", layout)
	}
	// Data intact across both tiers.
	for _, r := range []uint64{0, 42, 199} {
		got, err := restored.GetTuple(r)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tbl.GetTuple(r)
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if !got[c].Equal(want[c]) {
				t.Errorf("row %d col %d: %v != %v", r, c, got[c], want[c])
			}
		}
	}
	// Indexes rebuilt.
	if restored.Index(0) == nil {
		t.Error("single-column index not rebuilt")
	}
	if len(restored.CompositeIndexes()) != 1 {
		t.Error("composite index not rebuilt")
	}
}

func TestSnapshotExcludesUncommittedAndDeleted(t *testing.T) {
	tbl := buildTable(t, 10)
	mgr := tbl.Manager()
	// Committed delete.
	tx := mgr.Begin()
	if err := tbl.Delete(tx, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Uncommitted insert.
	tx2 := mgr.Begin()
	if err := tbl.Insert(tx2, []value.Value{
		value.NewInt(999), value.NewFloat(1), value.NewString("pending"),
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.VisibleCount() != 9 {
		t.Errorf("restored rows = %d, want 9 (delete applied, pending insert dropped)", restored.VisibleCount())
	}
}

func TestSnapshotIncludesCommittedDelta(t *testing.T) {
	tbl := buildTable(t, 5)
	mgr := tbl.Manager()
	tx := mgr.Begin()
	if err := tbl.Insert(tx, []value.Value{
		value.NewInt(100), value.NewFloat(2), value.NewString("delta"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.VisibleCount() != 6 {
		t.Errorf("restored rows = %d, want 6", restored.VisibleCount())
	}
}

func TestSaveLoadFile(t *testing.T) {
	tbl := buildTable(t, 50)
	path := filepath.Join(t.TempDir(), "table.snap")
	if err := SaveFile(path, tbl); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.VisibleCount() != 50 {
		t.Errorf("rows = %d", restored.VisibleCount())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.snap"), table.Options{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTADB00xxxx")), table.Options{}); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("foreign magic: %v", err)
	}
	if _, err := Load(bytes.NewReader(nil), table.Options{}); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated snapshot: take a valid prefix.
	tbl := buildTable(t, 20)
	var buf bytes.Buffer
	if err := Save(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut]), table.Options{}); err == nil {
			t.Errorf("truncated snapshot at %d bytes accepted", cut)
		}
	}
}

func TestRoundTripSpecialValues(t *testing.T) {
	s := schema.MustNew([]schema.Field{
		{Name: "i", Type: value.Int64},
		{Name: "f", Type: value.Float64},
		{Name: "s", Type: value.String, Width: 8},
	})
	tbl, err := table.New("edge", s, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]value.Value{
		{value.NewInt(-1 << 62), value.NewFloat(-0.0), value.NewString("")},
		{value.NewInt(1<<62 - 1), value.NewFloat(1e308), value.NewString("Ångström")},
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Merge(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.GetTuple(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 1<<62-1 || got[1].Float() != 1e308 || got[2].Str() != "Ångström" {
		t.Errorf("special values corrupted: %v", got)
	}
}
