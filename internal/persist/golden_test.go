package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tierdb/internal/table"
	"tierdb/internal/value"
)

// TestGoldenTIERDB01 pins backward compatibility: the checked-in
// fixture was written by the TIERDB01 encoder, and current Load must
// keep reading it bit-exactly. Future format changes must bump the
// magic (as TIERDB02 did) instead of silently breaking old checkpoints.
func TestGoldenTIERDB01(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_tierdb01.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, magicV1) {
		t.Fatalf("fixture magic = %q, want TIERDB01", data[:8])
	}
	tbl, snapTs, err := LoadAt(bytes.NewReader(data), table.Options{})
	if err != nil {
		t.Fatalf("current Load no longer reads a TIERDB01 snapshot: %v", err)
	}
	if snapTs != 0 {
		t.Errorf("v1 snapshot timestamp = %d, want 0 (standalone)", snapTs)
	}
	if tbl.Name() != "golden" {
		t.Errorf("name = %q", tbl.Name())
	}
	fields := tbl.Schema().Fields()
	if len(fields) != 3 || fields[0].Name != "id" || fields[1].Name != "price" ||
		fields[2].Name != "tag" || fields[2].Type != value.String || fields[2].Width != 8 {
		t.Errorf("schema = %+v", fields)
	}
	layout := tbl.Layout()
	if !layout[0] || layout[1] || layout[2] {
		t.Errorf("layout = %v, want [true false false]", layout)
	}
	if tbl.Index(0) == nil {
		t.Error("single-column index not rebuilt")
	}
	comps := tbl.CompositeIndexes()
	if len(comps) != 1 || len(comps[0]) != 2 || comps[0][0] != 0 || comps[0][1] != 2 {
		t.Errorf("composite indexes = %v, want [[0 2]]", comps)
	}
	if tbl.VisibleCount() != 5 {
		t.Fatalf("rows = %d, want 5", tbl.VisibleCount())
	}
	want := []struct {
		id    int64
		price float64
		tag   string
	}{
		{1, 1.5, "alpha"},
		{2, -2.25, "beta"},
		{3, 0, ""},
		{4, 1e12, "delta"},
		{5, -0.001, "εpsilon"},
	}
	for i, w := range want {
		got, err := tbl.GetTuple(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if got[0].Int() != w.id || got[1].Float() != w.price || got[2].Str() != w.tag {
			t.Errorf("row %d = %v, want %+v", i, got, w)
		}
	}
}

// TestSaveAtEmbedsSnapshotTimestamp checks the v2 contract recovery
// depends on: rows restore visible from exactly the saved timestamp
// and the restored table's clock is advanced to it.
func TestSaveAtEmbedsSnapshotTimestamp(t *testing.T) {
	tbl := buildTable(t, 10)
	mgr := tbl.Manager()
	snapTs := mgr.QuiescedLastCommit()
	// A commit after the snapshot timestamp must be excluded even
	// though it exists when SaveAt runs.
	tx := mgr.Begin()
	if err := tbl.Insert(tx, []value.Value{
		value.NewInt(999), value.NewFloat(9), value.NewString("late"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveAt(&buf, tbl, snapTs); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), magicV2) {
		t.Fatalf("SaveAt magic = %q, want TIERDB02", buf.Bytes()[:8])
	}
	restored, gotTs, err := LoadAt(bytes.NewReader(buf.Bytes()), table.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gotTs != snapTs {
		t.Errorf("restored snapshot ts %d, want %d", gotTs, snapTs)
	}
	if restored.Manager().LastCommit() < snapTs {
		t.Errorf("restored clock %d behind snapshot %d", restored.Manager().LastCommit(), snapTs)
	}
	if restored.VisibleCount() != 10 {
		t.Errorf("restored %d rows, want 10 (post-snapshot commit excluded)", restored.VisibleCount())
	}
	// Visibility point preserved: nothing visible just below snapTs.
	if n := restored.Delta().Versions().LiveAt(snapTs - 1); n != 0 {
		t.Errorf("%d rows visible before the snapshot timestamp", n)
	}
}

func FuzzSnapshotLoad(f *testing.F) {
	tbl := buildTable(f, 8)
	var buf bytes.Buffer
	if err := Save(&buf, tbl); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	if golden, err := os.ReadFile(filepath.Join("testdata", "golden_tierdb01.snap")); err == nil {
		f.Add(golden)
	}
	f.Add([]byte("TIERDB02"))
	f.Add(append([]byte("TIERDB02"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Load must never panic and never allocate past the input's own
		// size class; corrupt input must classify as ErrBadSnapshot.
		tbl, _, err := LoadAt(bytes.NewReader(data), table.Options{})
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("corrupt snapshot error %v is not ErrBadSnapshot", err)
			}
			return
		}
		// Accepted input must round-trip through Save.
		var out bytes.Buffer
		if err := Save(&out, tbl); err != nil {
			t.Fatalf("re-save of accepted snapshot failed: %v", err)
		}
		if _, _, err := LoadAt(bytes.NewReader(out.Bytes()), table.Options{}); err != nil {
			t.Fatalf("re-load of re-saved snapshot failed: %v", err)
		}
	})
}
