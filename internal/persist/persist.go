// Package persist implements table snapshots: a durable, versioned
// binary format holding a table's schema, its column layout (which
// attributes are MRCs vs SSCG-placed) and all visible rows, plus the
// index definitions to rebuild. One of the paper's motivations for
// smaller DRAM footprints is reduced recovery times — after a restart
// only the MRC share of a snapshot must be decoded back into DRAM
// structures, while SSCG pages rebuild on cheap secondary storage.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"tierdb/internal/delta"
	"tierdb/internal/schema"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// magic identifies snapshot files; the trailing digits version the
// format.
var magic = []byte("TIERDB01")

// ErrBadSnapshot is returned for corrupt or foreign files.
var ErrBadSnapshot = errors.New("persist: not a tierdb snapshot")

// Save writes a snapshot of the table's visible rows at the latest
// commit, together with schema, layout and index definitions.
func Save(w io.Writer, tbl *table.Table) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	if err := writeString(bw, tbl.Name()); err != nil {
		return err
	}
	s := tbl.Schema()
	if err := writeUvarint(bw, uint64(s.Len())); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		if err := writeString(bw, f.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(f.Type)); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(f.Width)); err != nil {
			return err
		}
	}
	layout := tbl.Layout()
	for _, in := range layout {
		b := byte(0)
		if in {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}

	// Index definitions.
	singles := make([]int, 0)
	for c := 0; c < s.Len(); c++ {
		if tbl.Index(c) != nil {
			singles = append(singles, c)
		}
	}
	if err := writeUvarint(bw, uint64(len(singles))); err != nil {
		return err
	}
	for _, c := range singles {
		if err := writeUvarint(bw, uint64(c)); err != nil {
			return err
		}
	}
	composites := tbl.CompositeIndexes()
	if err := writeUvarint(bw, uint64(len(composites))); err != nil {
		return err
	}
	for _, cols := range composites {
		if err := writeUvarint(bw, uint64(len(cols))); err != nil {
			return err
		}
		for _, c := range cols {
			if err := writeUvarint(bw, uint64(c)); err != nil {
				return err
			}
		}
	}

	// Rows: visible main-partition rows, then visible delta rows (the
	// frozen partition of an in-flight merge first, matching RowID
	// order). The snapshot timestamp is taken before the structural pin
	// so every row visible at the snapshot physically exists within the
	// view's bounds.
	snapshot := tbl.Manager().LastCommit()
	v := tbl.Pin()
	defer v.Release()
	var rows [][]value.Value
	for r := 0; r < v.MainRows(); r++ {
		if !v.MainVersions().Visible(r, snapshot, 0) {
			continue
		}
		tuple, err := v.GetTuple(uint64(r))
		if err != nil {
			return fmt.Errorf("persist: read main row %d: %w", r, err)
		}
		rows = append(rows, tuple)
	}
	collect := func(d *delta.Partition, bound int) error {
		for _, pos := range d.VisibleRows(snapshot, 0) {
			if pos >= bound {
				continue
			}
			tuple, err := d.GetRow(pos)
			if err != nil {
				return fmt.Errorf("persist: read delta row %d: %w", pos, err)
			}
			rows = append(rows, tuple)
		}
		return nil
	}
	if fz := v.Frozen(); fz != nil {
		if err := collect(fz, v.FrozenRows()); err != nil {
			return err
		}
	}
	if err := collect(v.Active(), v.ActiveRows()); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(rows))); err != nil {
		return err
	}
	for _, row := range rows {
		for _, v := range row {
			if err := writeValue(bw, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores a snapshot into a fresh table using the given storage
// options, reapplying the saved layout and rebuilding indexes.
func Load(r io.Reader, opts table.Options) (*table.Table, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(head) != string(magic) {
		return nil, ErrBadSnapshot
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	nFields, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	fields := make([]schema.Field, nFields)
	for i := range fields {
		fname, err := readString(br)
		if err != nil {
			return nil, err
		}
		typ, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		width, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		fields[i] = schema.Field{Name: fname, Type: value.Type(typ), Width: int(width)}
	}
	s, err := schema.New(fields)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot schema: %w", err)
	}
	layout := make([]bool, nFields)
	for i := range layout {
		b, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		layout[i] = b == 1
	}

	nSingles, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	singles := make([]int, nSingles)
	for i := range singles {
		c, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		singles[i] = int(c)
	}
	nComposites, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	composites := make([][]int, nComposites)
	for i := range composites {
		n, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		cols := make([]int, n)
		for j := range cols {
			c, err := readUvarint(br)
			if err != nil {
				return nil, err
			}
			cols[j] = int(c)
		}
		composites[i] = cols
	}

	nRows, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	rows := make([][]value.Value, nRows)
	for r := range rows {
		row := make([]value.Value, nFields)
		for c := range row {
			v, err := readValue(br, fields[c].Type)
			if err != nil {
				return nil, fmt.Errorf("persist: row %d field %d: %w", r, c, err)
			}
			row[c] = v
		}
		rows[r] = row
	}

	tbl, err := table.New(name, s, opts)
	if err != nil {
		return nil, err
	}
	if err := tbl.BulkAppend(rows); err != nil {
		return nil, err
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		return nil, err
	}
	for _, c := range singles {
		if err := tbl.CreateIndex(c); err != nil {
			return nil, err
		}
	}
	for _, cols := range composites {
		if err := tbl.CreateCompositeIndex(cols); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// SaveFile snapshots to a file (atomically via a temp file + rename).
func SaveFile(path string, tbl *table.Table) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, tbl); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a snapshot file.
func LoadFile(path string, opts table.Options) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts)
}

// --- primitive encoding ----------------------------------------------------

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("persist: string length %d implausible", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(w *bufio.Writer, v value.Value) error {
	switch v.Type() {
	case value.Int64:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Int()))
		_, err := w.Write(buf[:])
		return err
	case value.Float64:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		_, err := w.Write(buf[:])
		return err
	case value.String:
		return writeString(w, v.Str())
	default:
		return fmt.Errorf("persist: cannot encode type %s", v.Type())
	}
}

func readValue(r *bufio.Reader, t value.Type) (value.Value, error) {
	switch t {
	case value.Int64:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return value.Value{}, err
		}
		return value.NewInt(int64(binary.LittleEndian.Uint64(buf[:]))), nil
	case value.Float64:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return value.Value{}, err
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case value.String:
		s, err := readString(r)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewString(s), nil
	default:
		return value.Value{}, fmt.Errorf("persist: cannot decode type %s", t)
	}
}
