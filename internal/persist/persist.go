// Package persist implements table snapshots: a durable, versioned
// binary format holding a table's schema, its column layout (which
// attributes are MRCs vs SSCG-placed) and all visible rows, plus the
// index definitions to rebuild. One of the paper's motivations for
// smaller DRAM footprints is reduced recovery times — after a restart
// only the MRC share of a snapshot must be decoded back into DRAM
// structures, while SSCG pages rebuild on cheap secondary storage.
//
// Format versions: TIERDB01 snapshots are standalone (rows restore as
// a fresh bulk load). TIERDB02 adds the snapshot timestamp right after
// the magic, which makes snapshots self-describing for write-ahead-log
// recovery: restored rows keep their visibility point and replay can
// skip any logged operation the snapshot already covers. Load reads
// both; Save writes TIERDB02.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"tierdb/internal/delta"
	"tierdb/internal/mvcc"
	"tierdb/internal/schema"
	"tierdb/internal/table"
	"tierdb/internal/value"
)

// Snapshot magics; the trailing digits version the format.
var (
	magicV1 = []byte("TIERDB01")
	magicV2 = []byte("TIERDB02")
)

// ErrBadSnapshot is returned for corrupt, truncated or foreign files.
var ErrBadSnapshot = errors.New("persist: not a tierdb snapshot")

// bad wraps a low-level decode error (unexpected EOF, short read) as
// ErrBadSnapshot so callers can classify corruption with errors.Is.
func bad(err error) error {
	if err == nil || errors.Is(err, ErrBadSnapshot) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
}

// Save writes a TIERDB02 snapshot of the table's rows visible at the
// latest commit.
func Save(w io.Writer, tbl *table.Table) error {
	return SaveAt(w, tbl, tbl.Manager().LastCommit())
}

// SaveAt writes a TIERDB02 snapshot of the rows visible at the given
// commit timestamp. Checkpoints pass a quiesced timestamp (see
// mvcc.Manager.QuiescedLastCommit) so the snapshot is exact: every
// commit at or below it is included, none above it.
func SaveAt(w io.Writer, tbl *table.Table, snapshot mvcc.Timestamp) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2); err != nil {
		return err
	}
	if err := writeUvarint(bw, snapshot); err != nil {
		return err
	}
	if err := writeString(bw, tbl.Name()); err != nil {
		return err
	}
	s := tbl.Schema()
	if err := writeUvarint(bw, uint64(s.Len())); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		if err := writeString(bw, f.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(f.Type)); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(f.Width)); err != nil {
			return err
		}
	}
	layout := tbl.Layout()
	for _, in := range layout {
		b := byte(0)
		if in {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}

	// Index definitions.
	singles := make([]int, 0)
	for c := 0; c < s.Len(); c++ {
		if tbl.Index(c) != nil {
			singles = append(singles, c)
		}
	}
	if err := writeUvarint(bw, uint64(len(singles))); err != nil {
		return err
	}
	for _, c := range singles {
		if err := writeUvarint(bw, uint64(c)); err != nil {
			return err
		}
	}
	composites := tbl.CompositeIndexes()
	if err := writeUvarint(bw, uint64(len(composites))); err != nil {
		return err
	}
	for _, cols := range composites {
		if err := writeUvarint(bw, uint64(len(cols))); err != nil {
			return err
		}
		for _, c := range cols {
			if err := writeUvarint(bw, uint64(c)); err != nil {
				return err
			}
		}
	}

	// Rows: visible main-partition rows, then visible delta rows (the
	// frozen partition of an in-flight merge first, matching RowID
	// order). Every row visible at the snapshot physically exists within
	// the view's bounds.
	v := tbl.Pin()
	defer v.Release()
	var rows [][]value.Value
	for r := 0; r < v.MainRows(); r++ {
		if !v.MainVersions().Visible(r, snapshot, 0) {
			continue
		}
		tuple, err := v.GetTuple(uint64(r))
		if err != nil {
			return fmt.Errorf("persist: read main row %d: %w", r, err)
		}
		rows = append(rows, tuple)
	}
	collect := func(d *delta.Partition, bound int) error {
		for _, pos := range d.VisibleRows(snapshot, 0) {
			if pos >= bound {
				continue
			}
			tuple, err := d.GetRow(pos)
			if err != nil {
				return fmt.Errorf("persist: read delta row %d: %w", pos, err)
			}
			rows = append(rows, tuple)
		}
		return nil
	}
	if fz := v.Frozen(); fz != nil {
		if err := collect(fz, v.FrozenRows()); err != nil {
			return err
		}
	}
	if err := collect(v.Active(), v.ActiveRows()); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(rows))); err != nil {
		return err
	}
	for _, row := range rows {
		for _, v := range row {
			if err := writeValue(bw, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores a snapshot into a fresh table using the given storage
// options, reapplying the saved layout and rebuilding indexes.
func Load(r io.Reader, opts table.Options) (*table.Table, error) {
	tbl, _, err := LoadAt(r, opts)
	return tbl, err
}

// LoadAt is Load returning the snapshot timestamp as well: 0 for a
// TIERDB01 snapshot (standalone bulk load), the embedded quiesced
// timestamp for TIERDB02. For a v2 snapshot the restored rows are
// visible from exactly that timestamp and the table's transaction
// manager is advanced to it, so log replay can skip every operation
// with a timestamp at or below it.
func LoadAt(r io.Reader, opts table.Options) (*table.Table, mvcc.Timestamp, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, 0, bad(err)
	}
	var snapshot mvcc.Timestamp
	switch string(head) {
	case string(magicV1):
		// Standalone snapshot: rows restore as a fresh bulk load.
	case string(magicV2):
		ts, err := readUvarint(br)
		if err != nil {
			return nil, 0, bad(err)
		}
		if ts == math.MaxUint64 {
			return nil, 0, fmt.Errorf("%w: snapshot timestamp %d", ErrBadSnapshot, ts)
		}
		snapshot = ts
	default:
		return nil, 0, ErrBadSnapshot
	}
	name, err := readString(br)
	if err != nil {
		return nil, 0, bad(err)
	}
	nFields, err := readUvarint(br)
	if err != nil {
		return nil, 0, bad(err)
	}
	if nFields == 0 || nFields > maxFields {
		return nil, 0, fmt.Errorf("%w: %d fields", ErrBadSnapshot, nFields)
	}
	fields := make([]schema.Field, 0, nFields)
	for i := 0; i < int(nFields); i++ {
		fname, err := readString(br)
		if err != nil {
			return nil, 0, bad(err)
		}
		typ, err := br.ReadByte()
		if err != nil {
			return nil, 0, bad(err)
		}
		if value.Type(typ) > value.String {
			return nil, 0, fmt.Errorf("%w: field type %d", ErrBadSnapshot, typ)
		}
		width, err := readUvarint(br)
		if err != nil {
			return nil, 0, bad(err)
		}
		if width > maxStringLen {
			return nil, 0, fmt.Errorf("%w: field width %d", ErrBadSnapshot, width)
		}
		fields = append(fields, schema.Field{Name: fname, Type: value.Type(typ), Width: int(width)})
	}
	s, err := schema.New(fields)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: schema: %v", ErrBadSnapshot, err)
	}
	layout := make([]bool, nFields)
	for i := range layout {
		b, err := br.ReadByte()
		if err != nil {
			return nil, 0, bad(err)
		}
		if b > 1 {
			return nil, 0, fmt.Errorf("%w: layout byte %d", ErrBadSnapshot, b)
		}
		layout[i] = b == 1
	}

	readCols := func(n uint64) ([]int, error) {
		if n > nFields {
			return nil, fmt.Errorf("%w: %d index columns over %d fields", ErrBadSnapshot, n, nFields)
		}
		cols := make([]int, 0, n)
		for i := 0; i < int(n); i++ {
			c, err := readUvarint(br)
			if err != nil {
				return nil, bad(err)
			}
			if c >= nFields {
				return nil, fmt.Errorf("%w: index column %d out of range", ErrBadSnapshot, c)
			}
			cols = append(cols, int(c))
		}
		return cols, nil
	}
	nSingles, err := readUvarint(br)
	if err != nil {
		return nil, 0, bad(err)
	}
	singles, err := readCols(nSingles)
	if err != nil {
		return nil, 0, err
	}
	nComposites, err := readUvarint(br)
	if err != nil {
		return nil, 0, bad(err)
	}
	if nComposites > maxFields {
		return nil, 0, fmt.Errorf("%w: %d composite indexes", ErrBadSnapshot, nComposites)
	}
	composites := make([][]int, 0, nComposites)
	for i := 0; i < int(nComposites); i++ {
		n, err := readUvarint(br)
		if err != nil {
			return nil, 0, bad(err)
		}
		cols, err := readCols(n)
		if err != nil {
			return nil, 0, err
		}
		composites = append(composites, cols)
	}

	nRows, err := readUvarint(br)
	if err != nil {
		return nil, 0, bad(err)
	}
	// Grow incrementally instead of trusting the row count: a corrupt
	// count then fails on EOF after allocating only what the input
	// actually backs.
	rows := make([][]value.Value, 0, min(nRows, 4096))
	for r := 0; r < int(nRows); r++ {
		row := make([]value.Value, len(fields))
		for c := range row {
			v, err := readValue(br, fields[c].Type)
			if err != nil {
				return nil, 0, fmt.Errorf("%w: row %d field %d: %v", ErrBadSnapshot, r, c, err)
			}
			row[c] = v
		}
		rows = append(rows, row)
	}

	tbl, err := table.New(name, s, opts)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if snapshot > 0 {
		tbl.Manager().AdvanceTo(snapshot)
		if err := tbl.BulkAppendAt(rows, snapshot); err != nil {
			return nil, 0, err
		}
	} else if err := tbl.BulkAppend(rows); err != nil {
		return nil, 0, err
	}
	if err := tbl.ApplyLayout(layout); err != nil {
		return nil, 0, err
	}
	for _, c := range singles {
		if err := tbl.CreateIndex(c); err != nil {
			return nil, 0, err
		}
	}
	for _, cols := range composites {
		if err := tbl.CreateCompositeIndex(cols); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	}
	return tbl, snapshot, nil
}

// SaveFile snapshots to a file, atomically and durably: temp file,
// fsync, rename, then fsync of the parent directory — without the two
// fsyncs a snapshot could be silently empty (or the rename lost) after
// a power failure despite the temp+rename dance.
func SaveFile(path string, tbl *table.Table) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, tbl); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory to make a completed rename durable; some
// filesystems reject directory fsync, which is not fatal there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// LoadFile restores a snapshot file.
func LoadFile(path string, opts table.Options) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, opts)
}

// --- primitive encoding ----------------------------------------------------

// Decode bounds: a snapshot cannot plausibly exceed these, and bounding
// them keeps corrupt uvarints from driving huge allocations.
const (
	maxFields    = 1 << 16
	maxStringLen = 1 << 24
	readChunk    = 1 << 16
)

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("persist: string length %d implausible", n)
	}
	// Read in bounded chunks so a lying length allocates no more than
	// one chunk beyond what the input actually contains.
	buf := make([]byte, 0, min(n, readChunk))
	for uint64(len(buf)) < n {
		chunk := min(n-uint64(len(buf)), readChunk)
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return "", err
		}
	}
	return string(buf), nil
}

func writeValue(w *bufio.Writer, v value.Value) error {
	switch v.Type() {
	case value.Int64:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Int()))
		_, err := w.Write(buf[:])
		return err
	case value.Float64:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		_, err := w.Write(buf[:])
		return err
	case value.String:
		return writeString(w, v.Str())
	default:
		return fmt.Errorf("persist: cannot encode type %s", v.Type())
	}
}

func readValue(r *bufio.Reader, t value.Type) (value.Value, error) {
	switch t {
	case value.Int64:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return value.Value{}, err
		}
		return value.NewInt(int64(binary.LittleEndian.Uint64(buf[:]))), nil
	case value.Float64:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return value.Value{}, err
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case value.String:
		s, err := readString(r)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewString(s), nil
	default:
		return value.Value{}, fmt.Errorf("persist: cannot decode type %s", t)
	}
}
