package forecast

import (
	"math"
	"testing"
	"testing/quick"

	"tierdb/internal/core"
)

func TestSESConstantSeries(t *testing.T) {
	got, err := SES(Series{10, 10, 10, 10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("SES(constant) = %g, want 10", got)
	}
}

func TestSESWeightsRecentValues(t *testing.T) {
	rising, _ := SES(Series{0, 0, 0, 100}, 0.8)
	if rising < 50 {
		t.Errorf("SES after jump = %g, want > 50", rising)
	}
	stale, _ := SES(Series{100, 0, 0, 0}, 0.8)
	if stale > 10 {
		t.Errorf("SES after decay = %g, want < 10", stale)
	}
}

func TestSESErrors(t *testing.T) {
	if _, err := SES(nil, 0.5); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := SES(Series{1}, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := SES(Series{1}, 1.5); err == nil {
		t.Error("alpha>1 accepted")
	}
}

func TestHoltExtrapolatesTrend(t *testing.T) {
	// Perfectly linear series: forecast continues the line.
	got, err := Holt(Series{10, 20, 30, 40}, 0.9, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 2 {
		t.Errorf("Holt(linear, h=1) = %g, want ~50", got)
	}
	got, _ = Holt(Series{10, 20, 30, 40}, 0.9, 0.9, 3)
	if math.Abs(got-70) > 5 {
		t.Errorf("Holt(linear, h=3) = %g, want ~70", got)
	}
}

func TestHoltClampsNegative(t *testing.T) {
	got, err := Holt(Series{100, 60, 20}, 0.9, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 {
		t.Errorf("Holt forecast negative: %g", got)
	}
}

func TestHoltSingleValue(t *testing.T) {
	got, err := Holt(Series{7}, 0.5, 0.5, 1)
	if err != nil || got != 7 {
		t.Errorf("Holt(single) = %g, %v", got, err)
	}
}

func TestHoltErrors(t *testing.T) {
	if _, err := Holt(nil, 0.5, 0.5, 1); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Holt(Series{1, 2}, 0, 0.5, 1); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Holt(Series{1, 2}, 0.5, 2, 1); err == nil {
		t.Error("beta>1 accepted")
	}
}

func TestPredictMethods(t *testing.T) {
	s := Series{10, 20, 30}
	cases := []struct {
		m    Method
		want float64
		tol  float64
	}{
		{MethodLastWindow, 30, 0},
		{MethodMean, 20, 0},
	}
	for _, c := range cases {
		got, err := Predict(s, Options{Method: c.m})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Predict(%d) = %g, want %g", c.m, got, c.want)
		}
	}
	if _, err := Predict(s, Options{Method: Method(99)}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Predict(nil, Options{Method: MethodLastWindow}); err == nil {
		t.Error("empty series accepted for last-window")
	}
	if _, err := Predict(nil, Options{Method: MethodMean}); err == nil {
		t.Error("empty series accepted for mean")
	}
}

func TestPredictWorkload(t *testing.T) {
	template := &core.Workload{
		Columns: []core.Column{
			{Name: "a", Size: 100, Selectivity: 0.1},
			{Name: "b", Size: 100, Selectivity: 0.5},
		},
		Queries: []core.Query{
			{Columns: []int{0}, Frequency: 1},
			{Columns: []int{0, 1}, Frequency: 1},
		},
	}
	series := []Series{
		{100, 80, 60, 40}, // shrinking plan
		{10, 20, 30, 40},  // growing plan
	}
	w, err := PredictWorkload(template, series, Options{Method: MethodHolt, Alpha: 0.9, Beta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 2 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	if w.Queries[0].Frequency >= 40 {
		t.Errorf("shrinking plan forecast = %g, want < 40", w.Queries[0].Frequency)
	}
	if w.Queries[1].Frequency <= 40 {
		t.Errorf("growing plan forecast = %g, want > 40", w.Queries[1].Frequency)
	}
	// The template must not be mutated.
	if template.Queries[0].Frequency != 1 {
		t.Error("template mutated")
	}
}

func TestPredictWorkloadErrors(t *testing.T) {
	template := &core.Workload{
		Columns: []core.Column{{Name: "a", Size: 100, Selectivity: 0.1}},
		Queries: []core.Query{{Columns: []int{0}, Frequency: 1}},
	}
	if _, err := PredictWorkload(template, nil, Options{}); err == nil {
		t.Error("mismatched series count accepted")
	}
	if _, err := PredictWorkload(template, []Series{nil}, Options{}); err == nil {
		t.Error("empty series accepted")
	}
}

// Property: SES output always lies within the series' min/max range.
func TestSESBoundedProperty(t *testing.T) {
	prop := func(raw []float64, alphaRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := make(Series, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, x := range raw {
			v := math.Abs(math.Mod(x, 1000))
			if math.IsNaN(v) {
				v = 0
			}
			s[i] = v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		alpha := math.Abs(math.Mod(alphaRaw, 1))
		if alpha == 0 {
			alpha = 0.5
		}
		got, err := SES(s, alpha)
		if err != nil {
			return false
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
