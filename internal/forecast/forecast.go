// Package forecast implements the workload-prediction extension the
// paper sketches as future work (Section VI): query frequencies are
// tracked over moving time windows, per-plan frequency series are
// extrapolated with exponential smoothing (optionally with a Holt
// linear trend), and the predicted frequencies feed the column
// selection model to compute placements for *anticipated* workloads
// instead of historical ones.
package forecast

import (
	"errors"
	"fmt"

	"tierdb/internal/core"
)

// Series is a per-window frequency history of one plan, oldest first.
type Series []float64

// SES extrapolates the next value with simple exponential smoothing:
// level_t = alpha*x_t + (1-alpha)*level_{t-1}. alpha in (0,1].
func SES(s Series, alpha float64) (float64, error) {
	if len(s) == 0 {
		return 0, errors.New("forecast: empty series")
	}
	if alpha <= 0 || alpha > 1 {
		return 0, fmt.Errorf("forecast: alpha %g outside (0,1]", alpha)
	}
	level := s[0]
	for _, x := range s[1:] {
		level = alpha*x + (1-alpha)*level
	}
	return level, nil
}

// Holt extrapolates `horizon` windows ahead with Holt's linear-trend
// double exponential smoothing. alpha smooths the level, beta the
// trend; both in (0,1]. Negative forecasts clamp to zero (frequencies
// cannot be negative).
func Holt(s Series, alpha, beta float64, horizon int) (float64, error) {
	if len(s) == 0 {
		return 0, errors.New("forecast: empty series")
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return 0, fmt.Errorf("forecast: alpha %g / beta %g outside (0,1]", alpha, beta)
	}
	if horizon < 1 {
		horizon = 1
	}
	if len(s) == 1 {
		return s[0], nil
	}
	level := s[0]
	trend := s[1] - s[0]
	for _, x := range s[1:] {
		prevLevel := level
		level = alpha*x + (1-alpha)*(level+trend)
		trend = beta*(level-prevLevel) + (1-beta)*trend
	}
	f := level + float64(horizon)*trend
	if f < 0 {
		f = 0
	}
	return f, nil
}

// Method selects the extrapolation model.
type Method int

const (
	// MethodSES uses simple exponential smoothing (stable workloads).
	MethodSES Method = iota
	// MethodHolt adds a linear trend (growing or shrinking plans).
	MethodHolt
	// MethodLastWindow uses the most recent window verbatim (the
	// paper's moving-window baseline without prediction).
	MethodLastWindow
	// MethodMean uses the arithmetic mean of all windows.
	MethodMean
)

// Options tunes Predict.
type Options struct {
	// Method selects the model; default MethodHolt.
	Method Method
	// Alpha is the level smoothing factor (default 0.5).
	Alpha float64
	// Beta is the trend smoothing factor (default 0.3, Holt only).
	Beta float64
	// Horizon is how many windows ahead to predict (default 1).
	Horizon int
}

func (o *Options) setDefaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Beta == 0 {
		o.Beta = 0.3
	}
	if o.Horizon == 0 {
		o.Horizon = 1
	}
}

// Predict extrapolates one plan series.
func Predict(s Series, opts Options) (float64, error) {
	opts.setDefaults()
	switch opts.Method {
	case MethodSES:
		return SES(s, opts.Alpha)
	case MethodHolt:
		return Holt(s, opts.Alpha, opts.Beta, opts.Horizon)
	case MethodLastWindow:
		if len(s) == 0 {
			return 0, errors.New("forecast: empty series")
		}
		return s[len(s)-1], nil
	case MethodMean:
		if len(s) == 0 {
			return 0, errors.New("forecast: empty series")
		}
		var sum float64
		for _, x := range s {
			sum += x
		}
		return sum / float64(len(s)), nil
	default:
		return 0, fmt.Errorf("forecast: unknown method %d", int(opts.Method))
	}
}

// PredictWorkload builds the anticipated workload: columns are taken
// from the template, and each query's frequency is the extrapolation of
// its per-window series. series[i] must align with template.Queries[i];
// plans absent from a window carry frequency 0 there.
func PredictWorkload(template *core.Workload, series []Series, opts Options) (*core.Workload, error) {
	if len(series) != len(template.Queries) {
		return nil, fmt.Errorf("forecast: %d series for %d queries", len(series), len(template.Queries))
	}
	out := &core.Workload{
		Columns: append([]core.Column(nil), template.Columns...),
		Queries: make([]core.Query, len(template.Queries)),
	}
	for i, q := range template.Queries {
		f, err := Predict(series[i], opts)
		if err != nil {
			return nil, fmt.Errorf("forecast: query %d: %w", i, err)
		}
		out.Queries[i] = core.Query{Columns: append([]int(nil), q.Columns...), Frequency: f}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("forecast: predicted workload invalid: %w", err)
	}
	return out, nil
}
