// Package client is the Go client of the tierdbd network service: a
// connection-pooled, pipelining speaker of the CRC-framed binary
// protocol in internal/server.
//
// Every pooled connection supports pipelining natively: requests from
// any number of goroutines are written back-to-back (serialized by a
// write mutex) and a single reader goroutine matches response frames to
// callers in FIFO order — the server guarantees responses in request
// order per connection. Calls are therefore safe for arbitrary
// concurrent use; concurrency beyond one connection's sequential
// service rate spreads round-robin across the pool.
//
// Admission-control rejections surface as errors matching
// server.ErrOverloaded (and server.ErrDraining during shutdown), so a
// closed-loop caller can back off and retry without parsing strings.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tierdb/internal/explain"
	"tierdb/internal/metrics"
	"tierdb/internal/obsrv"
	"tierdb/internal/schema"
	"tierdb/internal/server"
	"tierdb/internal/trace"
	"tierdb/internal/value"
)

// Config tunes a Client. The zero value of every field selects a
// default; only Addr is required.
type Config struct {
	// Addr is the tierdbd address (host:port).
	Addr string
	// PoolSize is the number of pooled connections; 0 selects
	// DefaultPoolSize.
	PoolSize int
	// DialTimeout bounds connection establishment; 0 selects
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// RequestTimeout bounds one request round-trip including its queue
	// time in the pipeline; 0 selects DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxPipeline caps requests in flight on one connection; further
	// senders block (bounded, client-side). 0 selects
	// DefaultMaxPipeline.
	MaxPipeline int
	// Tracer enables client-side tracing: sampled requests get a
	// "client.send" span and carry their trace ID to the server in the
	// wire header, so the server's spans join the same /trace/{id}
	// tree. Nil disables tracing. Peers that predate the header are
	// detected on first contact and the header is dropped for the rest
	// of the client's life (see the OpTraced compat rules in
	// internal/server/proto.go).
	Tracer *trace.Tracer
}

// Defaults for Config's zero values.
const (
	DefaultPoolSize       = 4
	DefaultDialTimeout    = 5 * time.Second
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxPipeline    = 64
)

// ErrClosed is returned by requests after Close.
var ErrClosed = errors.New("client: closed")

// Client is a pooled connection to one tierdbd instance. Safe for
// concurrent use.
type Client struct {
	cfg  Config
	next atomic.Uint64
	// legacy is set once a peer rejects the OpTraced envelope as an
	// unknown opcode; from then on requests go out header-less.
	legacy atomic.Bool

	mu     sync.Mutex
	conns  []*conn // fixed length PoolSize; nil slots dial on demand
	closed bool
}

// Dial connects to a tierdbd instance, establishing (and verifying)
// one pooled connection eagerly so a bad address fails here rather
// than on the first request.
func Dial(cfg Config) (*Client, error) {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxPipeline <= 0 {
		cfg.MaxPipeline = DefaultMaxPipeline
	}
	c := &Client{cfg: cfg, conns: make([]*conn, cfg.PoolSize)}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cn
	return c, nil
}

// Close tears down every pooled connection. In-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for i, cn := range c.conns {
		if cn != nil {
			cn.close(ErrClosed)
			c.conns[i] = nil
		}
	}
	return nil
}

func (c *Client) dial() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := &conn{
		nc:      nc,
		br:      bufio.NewReader(nc),
		bw:      bufio.NewWriter(nc),
		pending: make(chan chan result, c.cfg.MaxPipeline),
	}
	go cn.readLoop()
	return cn, nil
}

// pick returns a live connection round-robin, replacing dead slots.
func (c *Client) pick() (*conn, error) {
	slot := int(c.next.Add(1) % uint64(c.cfg.PoolSize))
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	cn := c.conns[slot]
	if cn != nil && cn.alive() {
		return cn, nil
	}
	fresh, err := c.dial()
	if err != nil {
		return nil, err
	}
	if cn != nil {
		cn.close(errors.New("client: connection replaced"))
	}
	c.conns[slot] = fresh
	return fresh, nil
}

// do runs one request round-trip on a pooled connection, tracing it
// when the client has a sampling tracer configured.
func (c *Client) do(req server.Request) (server.Response, error) {
	span := c.startSpan(req)
	if span != nil {
		req.TraceID, req.SpanID = span.Trace, span.ID
	}
	resp, err := c.do1(req)
	if req.TraceID != 0 && resp.Status == server.StatusBadRequest && errors.Is(err, server.ErrProtocol) {
		// The peer may predate the trace header (OpTraced decodes as an
		// unknown opcode there). StatusBadRequest guarantees the
		// operation did not execute, so retrying header-less is safe —
		// for any opcode. If the bare retry gets past decoding, the
		// header was the problem: remember the peer is legacy and stop
		// sending it.
		req.TraceID, req.SpanID = 0, 0
		resp, err = c.do1(req)
		if resp.Status != server.StatusBadRequest {
			c.legacy.Store(true)
		}
	}
	c.finishSpan(span, resp, err)
	return resp, err
}

// do1 runs one request round-trip on a pooled connection.
func (c *Client) do1(req server.Request) (server.Response, error) {
	cn, err := c.pick()
	if err != nil {
		return server.Response{}, err
	}
	return cn.do(req, c.cfg.RequestTimeout)
}

// startSpan makes the client-side sampling decision for one request.
func (c *Client) startSpan(req server.Request) *trace.Span {
	if c.cfg.Tracer == nil || c.legacy.Load() {
		return nil
	}
	span := c.cfg.Tracer.Start("client.send", trace.String("op", server.OpName(req.Op)))
	if span != nil && req.Table != "" {
		span.SetAttr(trace.String("table", req.Table))
	}
	return span
}

// finishSpan completes a request's client span.
func (c *Client) finishSpan(span *trace.Span, resp server.Response, err error) {
	if span == nil {
		return
	}
	if err != nil {
		span.SetError(err)
	} else {
		span.SetAttr(trace.Int("rows", int64(len(resp.IDs))))
	}
	span.End()
}

// result is what the read loop delivers to a waiting caller.
type result struct {
	payload []byte
	err     error
}

// conn is one pipelined connection: writers serialize on wmu and
// enqueue a response slot; readLoop matches response frames to slots in
// FIFO order.
type conn struct {
	nc      net.Conn
	br      *bufio.Reader
	wmu     sync.Mutex
	bw      *bufio.Writer
	pending chan chan result

	emu       sync.Mutex
	err       error
	closeOnce sync.Once
}

func (cn *conn) alive() bool {
	cn.emu.Lock()
	defer cn.emu.Unlock()
	return cn.err == nil
}

// close marks the connection dead with cause, fails every pending
// caller, and closes the socket.
func (cn *conn) close(cause error) {
	cn.emu.Lock()
	if cn.err == nil {
		cn.err = cause
	}
	cn.emu.Unlock()
	cn.closeOnce.Do(func() {
		cn.nc.Close()
		// readLoop's final sweep fails the pending queue. A sender
		// racing with the close may still enqueue after the sweep; its
		// subsequent write fails and do() returns the close cause
		// directly, so no caller is left waiting on an orphaned slot.
	})
}

// readLoop owns the read half: one response frame per pending slot, in
// order. On any read error it poisons the connection and fails all
// pending and late-arriving slots.
func (cn *conn) readLoop() {
	var cause error
	for {
		payload, err := readFrameClient(cn.br)
		if err != nil {
			if err == io.EOF {
				cause = io.ErrUnexpectedEOF
			} else {
				cause = err
			}
			break
		}
		select {
		case slot := <-cn.pending:
			slot <- result{payload: payload}
		default:
			// A frame nobody asked for: a session-admission reject
			// (the server sheds over-capacity connects with one typed
			// error frame) or a protocol bug. Either way the
			// connection is done; surface the typed error.
			if resp, err := decodeUnsolicited(payload); err == nil {
				cause = resp
			} else {
				cause = fmt.Errorf("%w: unsolicited frame", server.ErrProtocol)
			}
			goto out
		}
	}
out:
	cn.close(cause)
	// Drain slots that were enqueued before (or racing with) the
	// close; their frames will never arrive.
	for {
		select {
		case slot := <-cn.pending:
			slot <- result{err: cause}
		default:
			return
		}
	}
}

// readFrameClient mirrors the server-side frame reader.
func readFrameClient(br *bufio.Reader) ([]byte, error) {
	return server.ReadFrame(br)
}

// decodeUnsolicited interprets a frame received with no pending request
// as a connection-level error status.
func decodeUnsolicited(payload []byte) (error, error) {
	resp, err := server.DecodeBareResponse(payload)
	if err != nil {
		return nil, err
	}
	return statusError(resp), nil
}

// do writes one request and waits for its response slot.
func (cn *conn) do(req server.Request, timeout time.Duration) (server.Response, error) {
	slot := make(chan result, 1)
	cn.wmu.Lock()
	if !cn.alive() {
		cn.emu.Lock()
		err := cn.err
		cn.emu.Unlock()
		cn.wmu.Unlock()
		return server.Response{}, err
	}
	// Enqueue while still holding wmu so pending-queue order is always
	// identical to wire order — readLoop matches response frames to
	// slots strictly FIFO, and an enqueue outside the write lock would
	// let another caller's request reach the wire first. When the
	// pipeline is full this blocks other writers on this connection:
	// bounded backpressure, since slots drain at the connection's
	// service rate (and close's sweep empties the queue on failure).
	select {
	case cn.pending <- slot:
	case <-time.After(timeout):
		cn.wmu.Unlock()
		return server.Response{}, fmt.Errorf("client: pipeline full for %s", timeout)
	}
	cn.nc.SetWriteDeadline(time.Now().Add(timeout))
	err := server.WriteRequest(cn.bw, req)
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		cn.close(fmt.Errorf("client: write: %w", err))
		// Fail fast with the close cause rather than waiting on the
		// slot: if the connection died concurrently, readLoop's final
		// sweep may have finished before our slot was enqueued, and
		// then nothing would ever deliver into it.
		cn.emu.Lock()
		cause := cn.err
		cn.emu.Unlock()
		return server.Response{}, cause
	}
	select {
	case res := <-slot:
		if res.err != nil {
			return server.Response{}, res.err
		}
		resp, err := server.DecodeResponse(req.Op, res.payload)
		if err != nil {
			cn.close(err)
			return server.Response{}, err
		}
		if resp.Status != server.StatusOK {
			return resp, statusError(resp)
		}
		return resp, nil
	case <-time.After(timeout):
		// Leave the slot in the pipeline; the read loop delivers the
		// late response into the buffered channel, keeping FIFO
		// alignment for everyone else.
		return server.Response{}, fmt.Errorf("client: request timed out after %s", timeout)
	}
}

// statusError maps a non-OK response to a typed error.
func statusError(resp server.Response) error {
	switch resp.Status {
	case server.StatusOverloaded:
		return fmt.Errorf("%w: %s", server.ErrOverloaded, resp.Msg)
	case server.StatusDraining:
		return fmt.Errorf("%w: %s", server.ErrDraining, resp.Msg)
	case server.StatusBadRequest:
		return fmt.Errorf("%w: %s", server.ErrProtocol, resp.Msg)
	default:
		return errors.New(resp.Msg)
	}
}

// --- typed API ------------------------------------------------------

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.do(server.Request{Op: server.OpPing})
	return err
}

// CreateTable creates a table.
func (c *Client) CreateTable(table string, fields []schema.Field) error {
	_, err := c.do(server.Request{Op: server.OpCreateTable, Table: table, Fields: fields})
	return err
}

// Insert appends one row in its own transaction.
func (c *Client) Insert(table string, row []value.Value) error {
	_, err := c.do(server.Request{Op: server.OpInsert, Table: table, Row: row})
	return err
}

// Delete removes the row in its own transaction.
func (c *Client) Delete(table string, id uint64) error {
	_, err := c.do(server.Request{Op: server.OpDelete, Table: table, RowID: id})
	return err
}

// Update replaces the row in its own transaction.
func (c *Client) Update(table string, id uint64, row []value.Value) error {
	_, err := c.do(server.Request{Op: server.OpUpdate, Table: table, RowID: id, Row: row})
	return err
}

// BulkLoad appends rows as one atomic batch and merges them into the
// main partition.
func (c *Client) BulkLoad(table string, rows [][]value.Value) error {
	_, err := c.do(server.Request{Op: server.OpBulkLoad, Table: table, Rows: rows})
	return err
}

// Eq builds an equality predicate.
func Eq(column string, v value.Value) server.Predicate {
	return server.Predicate{Column: column, Op: server.PredEq, Value: v}
}

// Between builds an inclusive range predicate.
func Between(column string, lo, hi value.Value) server.Predicate {
	return server.Predicate{Column: column, Op: server.PredBetween, Value: lo, Hi: hi}
}

// Select runs a conjunctive filter query projecting the named columns.
func (c *Client) Select(table string, preds []server.Predicate, project ...string) (*server.Result, error) {
	resp, err := c.do(server.Request{Op: server.OpSelect, Table: table, Predicates: preds, Project: project})
	if err != nil {
		return nil, err
	}
	return &server.Result{IDs: resp.IDs, Rows: resp.Rows}, nil
}

// SelectTraced is Select returning the rendered query trace as well.
func (c *Client) SelectTraced(table string, preds []server.Predicate, project ...string) (*server.Result, string, error) {
	resp, err := c.do(server.Request{Op: server.OpSelect, Table: table, Predicates: preds, Project: project, Traced: true})
	if err != nil {
		return nil, "", err
	}
	return &server.Result{IDs: resp.IDs, Rows: resp.Rows}, resp.Trace, nil
}

// Checkpoint forces a durable checkpoint (an error without a WAL).
func (c *Client) Checkpoint() error {
	_, err := c.do(server.Request{Op: server.OpCheckpoint})
	return err
}

// Stats fetches the engine's metrics snapshot.
func (c *Client) Stats() (metrics.Snapshot, error) {
	resp, err := c.do(server.Request{Op: server.OpStats})
	if err != nil {
		return metrics.Snapshot{}, err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(resp.Blob, &snap); err != nil {
		return metrics.Snapshot{}, fmt.Errorf("client: parse stats: %w", err)
	}
	return snap, nil
}

// Rows returns the table's visible row count.
func (c *Client) Rows(table string) (int, error) {
	resp, err := c.do(server.Request{Op: server.OpRows, Table: table})
	if err != nil {
		return 0, err
	}
	return int(resp.Count), nil
}

// Tables lists the table names.
func (c *Client) Tables() ([]string, error) {
	resp, err := c.do(server.Request{Op: server.OpTables})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// Advise runs the layout advisor on the table's captured workload.
func (c *Client) Advise(table string, q obsrv.AdvisorQuery) (*obsrv.AdvisorReport, error) {
	blob, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(server.Request{Op: server.OpAdvise, Table: table, Blob: blob})
	if err != nil {
		return nil, err
	}
	var rep obsrv.AdvisorReport
	if err := json.Unmarshal(resp.Blob, &rep); err != nil {
		return nil, fmt.Errorf("client: parse advisor report: %w", err)
	}
	return &rep, nil
}

// Explain asks the server for an EXPLAIN (analyze=false) or EXPLAIN
// ANALYZE (analyze=true) plan of the given query.
func (c *Client) Explain(table string, specs []explain.PredicateSpec, project []string, analyze bool) (*explain.Plan, error) {
	resp, err := c.do(server.Request{
		Op: server.OpExplain, Table: table,
		Specs: specs, Project: project, Analyze: analyze,
	})
	if err != nil {
		return nil, err
	}
	var plan explain.Plan
	if err := json.Unmarshal(resp.Blob, &plan); err != nil {
		return nil, fmt.Errorf("client: parse explain plan: %w", err)
	}
	return &plan, nil
}

// ApplyLayout applies a per-column DRAM residency layout.
func (c *Client) ApplyLayout(table string, inDRAM []bool) error {
	_, err := c.do(server.Request{Op: server.OpApplyLayout, Table: table, Layout: inDRAM})
	return err
}

// AdaptiveStatus reports the adaptive placement scheduler's state and
// last per-table decisions.
func (c *Client) AdaptiveStatus() (*obsrv.AdaptiveReport, error) {
	return c.adaptive(server.AdaptiveStatus)
}

// SetAdaptive turns the periodic adaptive placement loop on or off and
// returns the resulting state.
func (c *Client) SetAdaptive(enabled bool) (*obsrv.AdaptiveReport, error) {
	sub := byte(server.AdaptiveDisable)
	if enabled {
		sub = server.AdaptiveEnable
	}
	return c.adaptive(sub)
}

func (c *Client) adaptive(sub byte) (*obsrv.AdaptiveReport, error) {
	resp, err := c.do(server.Request{Op: server.OpAdaptive, Sub: sub})
	if err != nil {
		return nil, err
	}
	var rep obsrv.AdaptiveReport
	if err := json.Unmarshal(resp.Blob, &rep); err != nil {
		return nil, fmt.Errorf("client: parse adaptive report: %w", err)
	}
	return &rep, nil
}
