// Wire protocol of the tierdbd network service. Every message —
// request and response alike — travels as one frame:
//
//	uvarint(payload length) | crc32c(payload), 4 bytes LE | payload
//
// the same framing the write-ahead log uses on disk, for the same
// reason: a receiver can always tell a truncated or bit-flipped frame
// from a valid one before it interprets a single payload byte. Request
// payloads start with a one-byte opcode, response payloads with a
// one-byte status. Values are self-describing (type byte, then 8 fixed
// bytes for numerics or a uvarint-length string), consistent with the
// WAL and persist codecs.
//
// The decoder never trusts a length it cannot verify against the
// remaining input: hostile input yields ErrProtocol — never a panic and
// never an unbounded allocation. Frame-level damage (bad CRC, oversize,
// torn frame) poisons the stream and the session must close; a
// payload-level decode error inside a CRC-valid frame leaves the stream
// aligned, so the session can answer StatusBadRequest and continue.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"tierdb/internal/explain"
	"tierdb/internal/schema"
	"tierdb/internal/trace"
	"tierdb/internal/value"
)

// MaxFrame bounds a frame payload (requests and responses). Frames
// claiming more are rejected before any allocation happens.
const MaxFrame = 64 << 20

// Request opcodes.
const (
	OpPing        = 1  // -> empty
	OpCreateTable = 2  // name, fields[] -> empty
	OpInsert      = 3  // table, row -> empty
	OpDelete      = 4  // table, rowID -> empty
	OpUpdate      = 5  // table, rowID, row -> empty
	OpBulkLoad    = 6  // table, rows[][] -> empty
	OpSelect      = 7  // table, predicates[], projection[], traced -> ids, rows, trace
	OpCheckpoint  = 8  // -> empty
	OpStats       = 9  // -> JSON metrics.Snapshot
	OpRows        = 10 // table -> count
	OpTables      = 11 // -> names[]
	OpAdvise      = 12 // table, JSON AdvisorQuery -> JSON AdvisorReport
	OpApplyLayout = 13 // table, inDRAM[] -> empty
	OpAdaptive    = 14 // subcommand -> JSON AdaptiveReport

	// OpTraced is not an operation: it is the optional trace-header
	// envelope. Its payload is
	//
	//	[OpTraced][uvarint TraceID][uvarint parent SpanID][inner request payload]
	//
	// where the inner payload is any ordinary request (opcode first).
	// Framing is untouched, so the header is backward-compatible by
	// construction: an old server decodes OpTraced as an unknown opcode
	// inside a CRC-valid frame — a payload-level error that answers
	// StatusBadRequest and leaves the stream aligned — and the client
	// falls back to header-less requests for that connection. Old
	// clients simply never send the envelope. Both directions are
	// proven by the compat roundtrip tests.
	OpTraced = 15

	// OpExplain asks for an EXPLAIN (analyze=0) or EXPLAIN ANALYZE
	// (analyze=1) plan: table, specs[], projection[], analyze ->
	// JSON explain.Plan.
	OpExplain = 16
)

// OpAdaptive subcommands.
const (
	AdaptiveStatus  = 0 // report only
	AdaptiveEnable  = 1 // turn the periodic loop on, then report
	AdaptiveDisable = 2 // turn the periodic loop off, then report
)

// Response status codes. Everything except StatusOK carries a message
// string as the body.
const (
	StatusOK         = 0
	StatusEngineErr  = 1 // the engine rejected the operation
	StatusOverloaded = 2 // admission control shed the request
	StatusBadRequest = 3 // CRC-valid frame, malformed or invalid payload
	StatusDraining   = 4 // server is shutting down
)

// Predicate operators on the wire.
const (
	PredEq      = 0
	PredBetween = 1
)

// ErrProtocol reports a violation of the wire protocol: a torn or
// oversized frame, a CRC mismatch, or a payload that does not decode.
// It is the only error the codec ever produces for hostile input.
var ErrProtocol = errors.New("server: protocol error")

// ErrOverloaded is returned (by the client) and signalled (by the
// server) when admission control sheds a request or session instead of
// queuing it unboundedly. Callers should back off and retry.
var ErrOverloaded = errors.New("server: overloaded")

// ErrDraining is signalled for requests that arrive while the server is
// shutting down gracefully.
var ErrDraining = errors.New("server: draining")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Predicate is one conjunctive filter of a network query. Columns are
// addressed by name; Op is PredEq or PredBetween.
type Predicate struct {
	Column string
	Op     byte
	Value  value.Value
	Hi     value.Value // PredBetween upper bound
}

// Result carries a query answer: qualifying row ids and, when a
// projection was requested, the projected rows.
type Result struct {
	IDs  []uint64
	Rows [][]value.Value
}

// Request is the decoded form of any request frame; which fields are
// meaningful depends on Op.
type Request struct {
	Op         byte
	Table      string
	Fields     []schema.Field          // OpCreateTable
	Row        []value.Value           // OpInsert, OpUpdate
	Rows       [][]value.Value         // OpBulkLoad
	RowID      uint64                  // OpDelete, OpUpdate
	Predicates []Predicate             // OpSelect
	Project    []string                // OpSelect
	Traced     bool                    // OpSelect
	Blob       []byte                  // OpAdvise (JSON query)
	Layout     []bool                  // OpApplyLayout
	Sub        byte                    // OpAdaptive subcommand
	Specs      []explain.PredicateSpec // OpExplain
	Analyze    bool                    // OpExplain

	// TraceID and SpanID are the optional trace header (the OpTraced
	// envelope): the originating trace and the sender's span, which
	// the server's span will link to as its parent. TraceID 0 means
	// untraced — the envelope is omitted on the wire.
	TraceID trace.TraceID
	SpanID  trace.SpanID
}

// Response is the decoded form of any response frame; which fields are
// meaningful depends on the request's Op and on Status.
type Response struct {
	Status byte
	Msg    string // non-OK statuses
	IDs    []uint64
	Rows   [][]value.Value
	Trace  string
	Blob   []byte
	Names  []string
	Count  uint64
}

// --- encoding -------------------------------------------------------

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendValue(buf []byte, v value.Value) []byte {
	buf = append(buf, byte(v.Type()))
	switch v.Type() {
	case value.Int64:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
	case value.Float64:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	default:
		buf = appendString(buf, v.Str())
	}
	return buf
}

func appendRow(buf []byte, row []value.Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = appendValue(buf, v)
	}
	return buf
}

// encodeRequest appends the request payload (opcode byte first). A
// nonzero TraceID prefixes the payload with the OpTraced envelope.
func encodeRequest(buf []byte, req Request) []byte {
	if req.TraceID != 0 {
		buf = append(buf, OpTraced)
		buf = binary.AppendUvarint(buf, uint64(req.TraceID))
		buf = binary.AppendUvarint(buf, uint64(req.SpanID))
	}
	buf = append(buf, req.Op)
	switch req.Op {
	case OpPing, OpCheckpoint, OpStats, OpTables:
		// no body
	case OpCreateTable:
		buf = appendString(buf, req.Table)
		buf = binary.AppendUvarint(buf, uint64(len(req.Fields)))
		for _, f := range req.Fields {
			buf = appendString(buf, f.Name)
			buf = append(buf, byte(f.Type))
			buf = binary.AppendUvarint(buf, uint64(f.Width))
		}
	case OpInsert:
		buf = appendString(buf, req.Table)
		buf = appendRow(buf, req.Row)
	case OpDelete:
		buf = appendString(buf, req.Table)
		buf = binary.AppendUvarint(buf, req.RowID)
	case OpUpdate:
		buf = appendString(buf, req.Table)
		buf = binary.AppendUvarint(buf, req.RowID)
		buf = appendRow(buf, req.Row)
	case OpBulkLoad:
		buf = appendString(buf, req.Table)
		buf = binary.AppendUvarint(buf, uint64(len(req.Rows)))
		for _, row := range req.Rows {
			buf = appendRow(buf, row)
		}
	case OpSelect:
		buf = appendString(buf, req.Table)
		buf = binary.AppendUvarint(buf, uint64(len(req.Predicates)))
		for _, p := range req.Predicates {
			buf = appendString(buf, p.Column)
			buf = append(buf, p.Op)
			buf = appendValue(buf, p.Value)
			if p.Op == PredBetween {
				buf = appendValue(buf, p.Hi)
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(req.Project)))
		for _, name := range req.Project {
			buf = appendString(buf, name)
		}
		t := byte(0)
		if req.Traced {
			t = 1
		}
		buf = append(buf, t)
	case OpRows:
		buf = appendString(buf, req.Table)
	case OpAdvise:
		buf = appendString(buf, req.Table)
		buf = appendBytes(buf, req.Blob)
	case OpApplyLayout:
		buf = appendString(buf, req.Table)
		buf = binary.AppendUvarint(buf, uint64(len(req.Layout)))
		for _, inDRAM := range req.Layout {
			b := byte(0)
			if inDRAM {
				b = 1
			}
			buf = append(buf, b)
		}
	case OpAdaptive:
		buf = append(buf, req.Sub)
	case OpExplain:
		buf = appendString(buf, req.Table)
		buf = binary.AppendUvarint(buf, uint64(len(req.Specs)))
		for _, sp := range req.Specs {
			buf = appendString(buf, sp.Column)
			op := byte(PredEq)
			if sp.Op == "between" {
				op = PredBetween
			}
			buf = append(buf, op)
			buf = appendString(buf, sp.Value)
			buf = appendString(buf, sp.Hi)
		}
		buf = binary.AppendUvarint(buf, uint64(len(req.Project)))
		for _, name := range req.Project {
			buf = appendString(buf, name)
		}
		a := byte(0)
		if req.Analyze {
			a = 1
		}
		buf = append(buf, a)
	}
	return buf
}

// encodeResponse appends the response payload (status byte first). The
// response body layout is keyed by the request opcode it answers.
func encodeResponse(buf []byte, op byte, resp Response) []byte {
	buf = append(buf, resp.Status)
	if resp.Status != StatusOK {
		return appendString(buf, resp.Msg)
	}
	switch op {
	case OpSelect:
		buf = binary.AppendUvarint(buf, uint64(len(resp.IDs)))
		for _, id := range resp.IDs {
			buf = binary.AppendUvarint(buf, id)
		}
		buf = binary.AppendUvarint(buf, uint64(len(resp.Rows)))
		for _, row := range resp.Rows {
			buf = appendRow(buf, row)
		}
		buf = appendString(buf, resp.Trace)
	case OpStats, OpAdvise, OpAdaptive, OpExplain:
		buf = appendBytes(buf, resp.Blob)
	case OpRows:
		buf = binary.AppendUvarint(buf, resp.Count)
	case OpTables:
		buf = binary.AppendUvarint(buf, uint64(len(resp.Names)))
		for _, n := range resp.Names {
			buf = appendString(buf, n)
		}
	}
	return buf
}

// appendFrame frames payload into buf: length, CRC, payload.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// writeFrame frames and writes one payload.
func writeFrame(w io.Writer, payload []byte) error {
	_, err := w.Write(appendFrame(make([]byte, 0, len(payload)+9), payload))
	return err
}

// WriteRequest frames and writes one request payload.
func WriteRequest(w io.Writer, req Request) error {
	return writeFrame(w, encodeRequest(make([]byte, 0, 64), req))
}

// WriteResponse frames and writes one response for the given request
// opcode. The server uses this path internally; it is exported so
// alternative server implementations (and protocol tests) can answer
// clients without reimplementing the codec.
func WriteResponse(w io.Writer, op byte, resp Response) error {
	return writeFrame(w, encodeResponse(make([]byte, 0, 64), op, resp))
}

// DecodeBareResponse decodes a response payload received outside any
// request/response pairing — only error statuses are legal there (the
// one-frame reject a shed connection receives).
func DecodeBareResponse(payload []byte) (Response, error) {
	resp, err := DecodeResponse(0, payload)
	if err != nil {
		return Response{}, err
	}
	if resp.Status == StatusOK {
		return Response{}, fmt.Errorf("%w: unsolicited OK response", ErrProtocol)
	}
	return resp, nil
}

// ReadFrame reads one frame and returns its CRC-verified payload. A
// clean EOF at a frame boundary returns io.EOF; anything torn,
// oversized or corrupt returns ErrProtocol. The stream must be
// considered poisoned after any non-EOF error.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: frame length: %w", ErrProtocol, err)
	}
	if plen > MaxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrProtocol, plen, MaxFrame)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: frame CRC: %w", ErrProtocol, err)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: torn frame: %w", ErrProtocol, err)
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrProtocol)
	}
	return payload, nil
}

// --- decoding -------------------------------------------------------

// reader is a bounds-checked cursor over a decoded payload.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrProtocol
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrProtocol
	}
	r.pos += n
	return x, nil
}

// count reads a uvarint element count and rejects it when even at min
// bytes per element it cannot fit in the remaining payload — the bound
// that keeps hostile counts from driving huge allocations.
func (r *reader) count(minBytesPerElem int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()/minBytesPerElem) {
		return 0, ErrProtocol
	}
	return int(n), nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrProtocol
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) lenBytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, ErrProtocol
	}
	return r.bytes(int(n))
}

func (r *reader) string() (string, error) {
	b, err := r.lenBytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) value() (value.Value, error) {
	t, err := r.byte()
	if err != nil {
		return value.Value{}, err
	}
	switch value.Type(t) {
	case value.Int64:
		b, err := r.bytes(8)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewInt(int64(binary.LittleEndian.Uint64(b))), nil
	case value.Float64:
		b, err := r.bytes(8)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case value.String:
		s, err := r.string()
		if err != nil {
			return value.Value{}, err
		}
		return value.NewString(s), nil
	}
	return value.Value{}, ErrProtocol
}

func (r *reader) row() ([]value.Value, error) {
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	row := make([]value.Value, 0, n)
	for i := 0; i < n; i++ {
		v, err := r.value()
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

func (r *reader) done() error {
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, r.remaining())
	}
	return nil
}

// decodeRequest decodes one request payload (as framed: opcode first).
func decodeRequest(payload []byte) (Request, error) {
	r := &reader{buf: payload}
	op, err := r.byte()
	if err != nil {
		return Request{}, err
	}
	req := Request{Op: op}
	if op == OpTraced {
		id, err := r.uvarint()
		if err != nil {
			return Request{}, err
		}
		if id == 0 {
			return Request{}, fmt.Errorf("%w: zero trace id in header", ErrProtocol)
		}
		span, err := r.uvarint()
		if err != nil {
			return Request{}, err
		}
		req.TraceID, req.SpanID = trace.TraceID(id), trace.SpanID(span)
		if op, err = r.byte(); err != nil {
			return Request{}, err
		}
		if op == OpTraced {
			return Request{}, fmt.Errorf("%w: nested trace header", ErrProtocol)
		}
		req.Op = op
	}
	switch op {
	case OpPing, OpCheckpoint, OpStats, OpTables:
		// no body
	case OpCreateTable:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		n, err := r.count(3) // empty name + type + width
		if err != nil {
			return Request{}, err
		}
		req.Fields = make([]schema.Field, 0, n)
		for i := 0; i < n; i++ {
			var f schema.Field
			if f.Name, err = r.string(); err != nil {
				return Request{}, err
			}
			t, err := r.byte()
			if err != nil {
				return Request{}, err
			}
			if value.Type(t) > value.String {
				return Request{}, fmt.Errorf("%w: unknown value type %d", ErrProtocol, t)
			}
			f.Type = value.Type(t)
			w, err := r.uvarint()
			if err != nil {
				return Request{}, err
			}
			if w > 1<<24 {
				return Request{}, fmt.Errorf("%w: field width %d", ErrProtocol, w)
			}
			f.Width = int(w)
			req.Fields = append(req.Fields, f)
		}
	case OpInsert:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		if req.Row, err = r.row(); err != nil {
			return Request{}, err
		}
	case OpDelete:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		if req.RowID, err = r.uvarint(); err != nil {
			return Request{}, err
		}
	case OpUpdate:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		if req.RowID, err = r.uvarint(); err != nil {
			return Request{}, err
		}
		if req.Row, err = r.row(); err != nil {
			return Request{}, err
		}
	case OpBulkLoad:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		n, err := r.count(1)
		if err != nil {
			return Request{}, err
		}
		req.Rows = make([][]value.Value, 0, n)
		for i := 0; i < n; i++ {
			row, err := r.row()
			if err != nil {
				return Request{}, err
			}
			req.Rows = append(req.Rows, row)
		}
	case OpSelect:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		nPred, err := r.count(3) // empty column + op + value type
		if err != nil {
			return Request{}, err
		}
		req.Predicates = make([]Predicate, 0, nPred)
		for i := 0; i < nPred; i++ {
			var p Predicate
			if p.Column, err = r.string(); err != nil {
				return Request{}, err
			}
			if p.Op, err = r.byte(); err != nil {
				return Request{}, err
			}
			if p.Op != PredEq && p.Op != PredBetween {
				return Request{}, fmt.Errorf("%w: unknown predicate op %d", ErrProtocol, p.Op)
			}
			if p.Value, err = r.value(); err != nil {
				return Request{}, err
			}
			if p.Op == PredBetween {
				if p.Hi, err = r.value(); err != nil {
					return Request{}, err
				}
			}
			req.Predicates = append(req.Predicates, p)
		}
		nProj, err := r.count(1)
		if err != nil {
			return Request{}, err
		}
		req.Project = make([]string, 0, nProj)
		for i := 0; i < nProj; i++ {
			name, err := r.string()
			if err != nil {
				return Request{}, err
			}
			req.Project = append(req.Project, name)
		}
		t, err := r.byte()
		if err != nil {
			return Request{}, err
		}
		if t > 1 {
			return Request{}, fmt.Errorf("%w: bad traced flag %d", ErrProtocol, t)
		}
		req.Traced = t == 1
	case OpRows:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
	case OpAdvise:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		if req.Blob, err = r.lenBytes(); err != nil {
			return Request{}, err
		}
	case OpApplyLayout:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		n, err := r.count(1)
		if err != nil {
			return Request{}, err
		}
		req.Layout = make([]bool, 0, n)
		for i := 0; i < n; i++ {
			b, err := r.byte()
			if err != nil {
				return Request{}, err
			}
			if b > 1 {
				return Request{}, fmt.Errorf("%w: bad layout byte %d", ErrProtocol, b)
			}
			req.Layout = append(req.Layout, b == 1)
		}
	case OpAdaptive:
		if req.Sub, err = r.byte(); err != nil {
			return Request{}, err
		}
		if req.Sub > AdaptiveDisable {
			return Request{}, fmt.Errorf("%w: unknown adaptive subcommand %d", ErrProtocol, req.Sub)
		}
	case OpExplain:
		if req.Table, err = r.string(); err != nil {
			return Request{}, err
		}
		nSpec, err := r.count(4) // empty column + op + two empty operands
		if err != nil {
			return Request{}, err
		}
		req.Specs = make([]explain.PredicateSpec, 0, nSpec)
		for i := 0; i < nSpec; i++ {
			var sp explain.PredicateSpec
			if sp.Column, err = r.string(); err != nil {
				return Request{}, err
			}
			op, err := r.byte()
			if err != nil {
				return Request{}, err
			}
			switch op {
			case PredEq:
				sp.Op = "eq"
			case PredBetween:
				sp.Op = "between"
			default:
				return Request{}, fmt.Errorf("%w: unknown predicate op %d", ErrProtocol, op)
			}
			if sp.Value, err = r.string(); err != nil {
				return Request{}, err
			}
			if sp.Hi, err = r.string(); err != nil {
				return Request{}, err
			}
			req.Specs = append(req.Specs, sp)
		}
		nProj, err := r.count(1)
		if err != nil {
			return Request{}, err
		}
		req.Project = make([]string, 0, nProj)
		for i := 0; i < nProj; i++ {
			name, err := r.string()
			if err != nil {
				return Request{}, err
			}
			req.Project = append(req.Project, name)
		}
		a, err := r.byte()
		if err != nil {
			return Request{}, err
		}
		if a > 1 {
			return Request{}, fmt.Errorf("%w: bad analyze flag %d", ErrProtocol, a)
		}
		req.Analyze = a == 1
	default:
		return Request{}, fmt.Errorf("%w: unknown opcode %d", ErrProtocol, op)
	}
	if err := r.done(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// DecodeResponse decodes one response payload for the given request
// opcode (as framed: status first).
func DecodeResponse(op byte, payload []byte) (Response, error) {
	r := &reader{buf: payload}
	status, err := r.byte()
	if err != nil {
		return Response{}, err
	}
	resp := Response{Status: status}
	if status != StatusOK {
		if status > StatusDraining {
			return Response{}, fmt.Errorf("%w: unknown status %d", ErrProtocol, status)
		}
		if resp.Msg, err = r.string(); err != nil {
			return Response{}, err
		}
		return resp, r.done()
	}
	switch op {
	case OpSelect:
		nIDs, err := r.count(1)
		if err != nil {
			return Response{}, err
		}
		resp.IDs = make([]uint64, 0, nIDs)
		for i := 0; i < nIDs; i++ {
			id, err := r.uvarint()
			if err != nil {
				return Response{}, err
			}
			resp.IDs = append(resp.IDs, id)
		}
		nRows, err := r.count(1)
		if err != nil {
			return Response{}, err
		}
		resp.Rows = make([][]value.Value, 0, nRows)
		for i := 0; i < nRows; i++ {
			row, err := r.row()
			if err != nil {
				return Response{}, err
			}
			resp.Rows = append(resp.Rows, row)
		}
		if resp.Trace, err = r.string(); err != nil {
			return Response{}, err
		}
	case OpStats, OpAdvise, OpAdaptive, OpExplain:
		if resp.Blob, err = r.lenBytes(); err != nil {
			return Response{}, err
		}
	case OpRows:
		if resp.Count, err = r.uvarint(); err != nil {
			return Response{}, err
		}
	case OpTables:
		n, err := r.count(1)
		if err != nil {
			return Response{}, err
		}
		resp.Names = make([]string, 0, n)
		for i := 0; i < n; i++ {
			name, err := r.string()
			if err != nil {
				return Response{}, err
			}
			resp.Names = append(resp.Names, name)
		}
	}
	return resp, r.done()
}
