package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tierdb/internal/explain"
	"tierdb/internal/metrics"
	"tierdb/internal/obsrv"
	"tierdb/internal/schema"
	"tierdb/internal/server"
	"tierdb/internal/server/client"
	"tierdb/internal/value"
)

// fakeEngine is a concurrency-safe in-memory engine: one map of table
// name to rows. A non-nil gate makes every mutating op block until the
// gate closes, which is how the tests pin requests inflight.
type fakeEngine struct {
	mu     sync.Mutex
	tables map[string][][]value.Value
	gate   chan struct{}
	fail   atomic.Bool
}

func newFakeEngine() *fakeEngine {
	return &fakeEngine{tables: map[string][][]value.Value{"t": {}}}
}

func (e *fakeEngine) wait() {
	if e.gate != nil {
		<-e.gate
	}
}

func (e *fakeEngine) CreateTable(_ context.Context, name string, fields []schema.Field) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; ok {
		return fmt.Errorf("table %q exists", name)
	}
	e.tables[name] = nil
	return nil
}

func (e *fakeEngine) Insert(_ context.Context, table string, row []value.Value) error {
	e.wait()
	if e.fail.Load() {
		return errors.New("injected failure")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rows, ok := e.tables[table]
	if !ok {
		return fmt.Errorf("no table %q", table)
	}
	e.tables[table] = append(rows, row)
	return nil
}

func (e *fakeEngine) Delete(_ context.Context, table string, id uint64) error {
	e.wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	rows := e.tables[table]
	if id >= uint64(len(rows)) {
		return fmt.Errorf("no row %d", id)
	}
	e.tables[table] = append(rows[:id], rows[id+1:]...)
	return nil
}

func (e *fakeEngine) Update(_ context.Context, table string, id uint64, row []value.Value) error {
	e.wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	rows := e.tables[table]
	if id >= uint64(len(rows)) {
		return fmt.Errorf("no row %d", id)
	}
	rows[id] = row
	return nil
}

func (e *fakeEngine) BulkLoad(_ context.Context, table string, rows [][]value.Value) error {
	e.wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[table] = append(e.tables[table], rows...)
	return nil
}

func (e *fakeEngine) Select(_ context.Context, table string, preds []server.Predicate, project []string, traced bool) (*server.Result, string, error) {
	e.wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	rows, ok := e.tables[table]
	if !ok {
		return nil, "", fmt.Errorf("no table %q", table)
	}
	res := &server.Result{}
	for i, row := range rows {
		res.IDs = append(res.IDs, uint64(i))
		if len(project) > 0 {
			res.Rows = append(res.Rows, row)
		}
	}
	trace := ""
	if traced {
		trace = "fake trace"
	}
	return res, trace, nil
}

func (e *fakeEngine) Checkpoint(context.Context) error { return nil }
func (e *fakeEngine) StatsJSON() ([]byte, error)       { return []byte(`{"counters":{"x":1}}`), nil }

func (e *fakeEngine) Rows(table string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rows, ok := e.tables[table]
	if !ok {
		return 0, fmt.Errorf("no table %q", table)
	}
	return len(rows), nil
}

func (e *fakeEngine) Tables() []string { return []string{"t"} }

func (e *fakeEngine) Advise(table string, query []byte) ([]byte, error) {
	return []byte(`{"table":"` + table + `"}`), nil
}

func (e *fakeEngine) ApplyLayout(table string, inDRAM []bool) error { return nil }

func (e *fakeEngine) Adaptive(sub byte) ([]byte, error) {
	return []byte(fmt.Sprintf(`{"enabled":%v}`, sub == server.AdaptiveEnable)), nil
}

func (e *fakeEngine) Explain(_ context.Context, table string, specs []explain.PredicateSpec, project []string, analyze bool) ([]byte, error) {
	return json.Marshal(explain.Plan{
		Table: table,
		Mode:  map[bool]explain.Mode{false: explain.ModeExplain, true: explain.ModeAnalyze}[analyze],
		Nodes: make([]explain.Node, len(specs)),
	})
}

// boot starts a server over the fake engine on a random loopback port.
func boot(t *testing.T, e server.Engine, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(e, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown() })
	return srv, ln.Addr().String()
}

// TestClientRoundtrips drives every typed client call against the fake.
func TestClientRoundtrips(t *testing.T) {
	e := newFakeEngine()
	reg := metrics.NewRegistry()
	_, addr := boot(t, e, server.Config{Registry: reg})
	c, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("u", []schema.Field{{Name: "id", Type: value.Int64}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("u", nil); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := c.Insert("t", []value.Value{value.NewInt(1), value.NewString("a")}); err != nil {
		t.Fatal(err)
	}
	if err := c.BulkLoad("t", [][]value.Value{{value.NewInt(2)}, {value.NewInt(3)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Update("t", 0, []value.Value{value.NewInt(9)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("t", 2); err != nil {
		t.Fatal(err)
	}
	n, err := c.Rows("t")
	if err != nil || n != 2 {
		t.Fatalf("Rows = %d, %v; want 2", n, err)
	}
	res, err := c.Select("t", []server.Predicate{client.Eq("id", value.NewInt(9))}, "id")
	if err != nil || len(res.IDs) != 2 || len(res.Rows) != 2 {
		t.Fatalf("Select = %+v, %v", res, err)
	}
	_, trace, err := c.SelectTraced("t", nil)
	if err != nil || trace != "fake trace" {
		t.Fatalf("SelectTraced trace = %q, %v", trace, err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Stats()
	if err != nil || snap.Counters["x"] != 1 {
		t.Fatalf("Stats = %+v, %v", snap, err)
	}
	names, err := c.Tables()
	if err != nil || len(names) != 1 {
		t.Fatalf("Tables = %v, %v", names, err)
	}
	if _, err := c.Advise("t", obsrv.AdvisorQuery{}); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyLayout("t", []bool{true}); err != nil {
		t.Fatal(err)
	}
	// Engine errors surface with their message and do not kill the
	// session.
	if err := c.Insert("nope", nil); err == nil || !strings.Contains(err.Error(), "no table") {
		t.Fatalf("missing table: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("session should survive an engine error: %v", err)
	}

	snapshot := reg.Snapshot()
	if snapshot.Counters["server.requests_total"] < 10 {
		t.Errorf("requests_total = %d", snapshot.Counters["server.requests_total"])
	}
	if snapshot.Histograms["server.request_ns"].Count < 10 {
		t.Errorf("request_ns count = %d", snapshot.Histograms["server.request_ns"].Count)
	}
	if snapshot.Gauges["server.sessions"].Max < 1 {
		t.Errorf("sessions max = %d", snapshot.Gauges["server.sessions"].Max)
	}
}

// TestInflightShedding proves MaxInflight sheds with ErrOverloaded
// instead of queuing: with the engine gated shut and capacity 2, a
// burst of concurrent requests sees exactly the capacity succeed once
// the gate opens, and at least one typed reject.
func TestInflightShedding(t *testing.T) {
	e := newFakeEngine()
	e.gate = make(chan struct{})
	reg := metrics.NewRegistry()
	_, addr := boot(t, e, server.Config{MaxInflight: 2, Registry: reg})
	c, err := client.Dial(client.Config{Addr: addr, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const burst = 8
	var overloaded, ok atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			err := c.Insert("t", []value.Value{value.NewInt(int64(i))})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, server.ErrOverloaded):
				overloaded.Add(1)
			default:
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	close(start)
	// With the gate shut, exactly 2 requests hold inflight slots and
	// the other 6 must come back shed. Wait for all sheds before
	// releasing the gate so no late arrival can sneak through a freed
	// slot.
	deadline := time.Now().Add(10 * time.Second)
	for overloaded.Load() < burst-2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests shed after 10s", overloaded.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(e.gate)
	wg.Wait()

	if got := ok.Load(); got != 2 {
		t.Errorf("%d requests passed a MaxInflight=2 gate while it was shut", got)
	}
	if overloaded.Load() == 0 {
		t.Error("no request was shed with ErrOverloaded")
	}
	if ok.Load()+overloaded.Load() != burst {
		t.Errorf("accounted %d+%d of %d", ok.Load(), overloaded.Load(), burst)
	}
	if rejects := reg.Snapshot().Counters["server.rejects"]; rejects != overloaded.Load() {
		t.Errorf("server.rejects = %d, want %d", rejects, overloaded.Load())
	}
	// After the overload clears, shed callers retry successfully.
	if err := c.Insert("t", []value.Value{value.NewInt(99)}); err != nil {
		t.Errorf("post-overload insert: %v", err)
	}
}

// TestSessionShedding proves MaxSessions sheds whole connections with a
// typed error.
func TestSessionShedding(t *testing.T) {
	e := newFakeEngine()
	_, addr := boot(t, e, server.Config{MaxSessions: 1})
	c1, err := client.Dial(client.Config{Addr: addr, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	// The second connection is shed at admission. The reject frame may
	// race the dial, so the error surfaces on the first request.
	c2, err := client.Dial(client.Config{Addr: addr, PoolSize: 1})
	if err == nil {
		defer c2.Close()
		err = c2.Ping()
	}
	if !errors.Is(err, server.ErrOverloaded) {
		t.Fatalf("second session error = %v, want ErrOverloaded", err)
	}
	// The admitted session is unaffected.
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelining issues many concurrent requests over a single pooled
// connection and checks every response matches its request.
func TestPipelining(t *testing.T) {
	e := newFakeEngine()
	_, addr := boot(t, e, server.Config{})
	c, err := client.Dial(client.Config{Addr: addr, PoolSize: 1, MaxPipeline: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Insert("t", []value.Value{value.NewInt(int64(i))}); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got, err := c.Rows("t")
	if err != nil || got != n {
		t.Fatalf("Rows = %d, %v; want %d", got, err, n)
	}
}

// TestPipelineSaturationFIFO hammers a single connection whose pipeline
// is tiny, so nearly every request takes the pipeline-full path, and
// checks each caller receives its own response. The fake engine's
// Advise echoes the request's table name, so a response delivered to
// the wrong caller is detected even though all frames are same-shaped.
// Regression test: enqueuing into the pending queue without holding the
// write lock let queue order diverge from wire order, crossing
// responses between callers under saturation.
func TestPipelineSaturationFIFO(t *testing.T) {
	e := newFakeEngine()
	_, addr := boot(t, e, server.Config{})
	c, err := client.Dial(client.Config{Addr: addr, PoolSize: 1, MaxPipeline: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 300
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			table := fmt.Sprintf("t%d", i)
			rep, err := c.Advise(table, obsrv.AdvisorQuery{})
			if err != nil {
				t.Errorf("advise %s: %v", table, err)
				return
			}
			if rep.Table != table {
				t.Errorf("advise %s: got response for %s", table, rep.Table)
			}
		}(i)
	}
	wg.Wait()
}

// TestGracefulDrain proves Shutdown waits for an inflight request to
// finish and answer, and that connections after shutdown are refused.
func TestGracefulDrain(t *testing.T) {
	e := newFakeEngine()
	e.gate = make(chan struct{})
	srv, addr := boot(t, e, server.Config{DrainTimeout: 5 * time.Second})
	c, err := client.Dial(client.Config{Addr: addr, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflightErr := make(chan error, 1)
	go func() {
		inflightErr <- c.Insert("t", []value.Value{value.NewInt(1)})
	}()
	time.Sleep(100 * time.Millisecond) // request reaches the gate

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown() }()
	time.Sleep(100 * time.Millisecond)
	if !srv.Draining() {
		t.Fatal("server not draining")
	}
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned with a request still inflight")
	default:
	}

	close(e.gate) // let the inflight request finish
	if err := <-inflightErr; err != nil {
		t.Fatalf("inflight request failed during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if n, _ := e.Rows("t"); n != 1 {
		t.Fatalf("inflight insert not applied: %d rows", n)
	}
	// New connections are refused outright.
	c2, err := client.Dial(client.Config{Addr: addr})
	if err == nil {
		err = c2.Ping()
		c2.Close()
	}
	if err == nil {
		t.Fatal("connect after shutdown succeeded")
	}
}

// TestDrainForceCloses proves a hung request cannot hold Shutdown
// hostage past DrainTimeout.
func TestDrainForceCloses(t *testing.T) {
	e := newFakeEngine()
	e.gate = make(chan struct{})
	defer close(e.gate)
	srv, addr := boot(t, e, server.Config{DrainTimeout: 200 * time.Millisecond})
	c, err := client.Dial(client.Config{Addr: addr, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Insert("t", []value.Value{value.NewInt(1)}) // hangs on the gate
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	if err := srv.Shutdown(); err == nil {
		t.Fatal("Shutdown reported a clean drain despite a hung request")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %s despite DrainTimeout", elapsed)
	}
}

// TestHostileSession feeds garbage to a live server: the session must
// answer with a typed protocol error (or just close), never hang, and
// the server must keep serving well-formed clients.
func TestHostileSession(t *testing.T) {
	e := newFakeEngine()
	_, addr := boot(t, e, server.Config{})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte("\xde\xad\xbe\xef not a frame at all"))
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	n, _ := nc.Read(buf) // error frame or EOF — either is fine
	_ = n
	nc.Close()

	c, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("server damaged by hostile session: %v", err)
	}
}
