package server

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"testing"

	"tierdb/internal/value"
)

// TestTraceHeaderRoundtrip proves the OpTraced envelope carries the
// trace identity across the wire for every opcode without disturbing
// the inner request body.
func TestTraceHeaderRoundtrip(t *testing.T) {
	for _, req := range sampleRequests() {
		req.TraceID = 0xdeadbeefcafef00d
		req.SpanID = 0x42
		var stream bytes.Buffer
		if err := WriteRequest(&stream, req); err != nil {
			t.Fatalf("op %d: write: %v", req.Op, err)
		}
		payload, err := ReadFrame(bufio.NewReader(&stream))
		if err != nil {
			t.Fatalf("op %d: read frame: %v", req.Op, err)
		}
		if payload[0] != OpTraced {
			t.Fatalf("op %d: traced request does not start with the envelope opcode: %d", req.Op, payload[0])
		}
		got, err := decodeRequest(payload)
		if err != nil {
			t.Fatalf("op %d: decode: %v", req.Op, err)
		}
		if got.TraceID != req.TraceID || got.SpanID != req.SpanID {
			t.Errorf("op %d: trace identity lost: got %s/%s", req.Op, got.TraceID, got.SpanID)
		}
		if !reflect.DeepEqual(normalizeReq(req), normalizeReq(got)) {
			t.Errorf("op %d roundtrip mismatch:\n sent %+v\n got  %+v", req.Op, req, got)
		}
	}
}

// TestTraceHeaderAbsentWhenUnsampled proves a zero TraceID encodes the
// bare legacy payload — byte-identical to what a pre-tracing client
// sends, which is the whole backward-compatibility story.
func TestTraceHeaderAbsentWhenUnsampled(t *testing.T) {
	req := Request{Op: OpInsert, Table: "t", Row: []value.Value{value.NewInt(1)}}
	bare := encodeRequest(nil, req)
	if bare[0] == OpTraced {
		t.Fatalf("unsampled request grew a trace envelope")
	}
	traced := encodeRequest(nil, Request{Op: OpInsert, Table: "t", Row: []value.Value{value.NewInt(1)}, TraceID: 1, SpanID: 2})
	if !bytes.Equal(traced[len(traced)-len(bare):], bare) {
		t.Fatalf("envelope is not a pure prefix:\n bare   %x\n traced %x", bare, traced)
	}
}

// TestTraceHeaderRejects covers the envelope's protocol errors: a zero
// trace ID (reserved to mean "no trace") and a nested envelope.
func TestTraceHeaderRejects(t *testing.T) {
	inner := encodeRequest(nil, Request{Op: OpPing})

	zero := append([]byte{OpTraced, 0x00, 0x05}, inner...)
	if _, err := decodeRequest(zero); !errors.Is(err, ErrProtocol) {
		t.Errorf("zero trace id: got %v, want ErrProtocol", err)
	}

	nested := append([]byte{OpTraced, 0x01, 0x02}, append([]byte{OpTraced, 0x03, 0x04}, inner...)...)
	if _, err := decodeRequest(nested); !errors.Is(err, ErrProtocol) {
		t.Errorf("nested envelope: got %v, want ErrProtocol", err)
	}

	truncated := []byte{OpTraced, 0x07}
	if _, err := decodeRequest(truncated); err == nil {
		t.Errorf("truncated envelope decoded without error")
	}
}
